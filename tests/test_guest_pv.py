"""Paravirtualization specifics: hypercalls, shared info, MMU batching."""

import pytest

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import shared_info_gfn
from repro.guest import (
    KernelOptions,
    boot_vm,
    build_kernel,
    workloads,
)
from repro.util.units import MIB, PAGE_SIZE

GUEST_MEM = 16 * MIB


def boot_pv(workload, timer_period=0, max_instructions=12_000_000):
    hv = Hypervisor(memory_bytes=64 * MIB)
    vm = hv.create_vm(GuestConfig(name="pv", memory_bytes=GUEST_MEM,
                                  virt_mode=VirtMode.PARAVIRT,
                                  mmu_mode=MMUVirtMode.SHADOW))
    kernel = build_kernel(KernelOptions(pv=True, memory_bytes=GUEST_MEM,
                                        timer_period=timer_period))
    diag = boot_vm(hv, vm, kernel, workload, max_instructions)
    return hv, vm, diag


def boot_hvm(workload, virt_mode=VirtMode.HW_ASSIST,
             mmu_mode=MMUVirtMode.SHADOW, max_instructions=12_000_000):
    hv = Hypervisor(memory_bytes=64 * MIB)
    vm = hv.create_vm(GuestConfig(name="hvm", memory_bytes=GUEST_MEM,
                                  virt_mode=virt_mode, mmu_mode=mmu_mode))
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEM))
    diag = boot_vm(hv, vm, kernel, workload, max_instructions)
    return hv, vm, diag


def test_pv_guest_boots_via_hypercalls():
    hv, vm, diag = boot_pv(workloads.hello())
    assert diag.clean and diag.user_result == 42
    breakdown = vm.exit_stats.counts
    assert breakdown.get("vmcall:set_vbar") == 1
    assert breakdown.get("vmcall:set_ptbr") == 1
    assert any(key.startswith("vmcall:iret") for key in breakdown)


def test_pv_has_no_pt_write_traps():
    # PV's contract: PT updates are hypercall batches, never traps.
    hv, vm, diag = boot_pv(workloads.pt_stress(50))
    assert diag.user_result == 50
    assert vm.stats.shadow_pt_writes == 0
    assert vm.exit_stats.counts.get("vmcall:mmu_batch", 0) >= 100


def test_pv_batching_amortizes_map_exits():
    # Mapping 32 pages one-per-call vs 8-per-batch: the batched path
    # takes roughly 1/8th the MMU hypercalls.
    _, single, _ = boot_pv(workloads.map_batch(batches=32, batch_size=1))
    _, batched, _ = boot_pv(workloads.map_batch(batches=4, batch_size=8))
    one = single.exit_stats.counts.get("vmcall:mmu_batch", 0)
    eight = batched.exit_stats.counts.get("vmcall:mmu_batch", 0)
    assert one >= 32
    assert eight <= one // 4


def test_pv_shared_info_page_carries_trap_state():
    hv, vm, diag = boot_pv(workloads.syscall_storm(20))
    assert diag.user_result == 20
    shared_gpa = shared_info_gfn(vm) << 12
    # After the final (exit) syscall was reflected, the shared page
    # holds the trap block the guest reads with plain loads.
    assert vm.guest_mem.read_u32(shared_gpa + 4) == 1  # SYSCALL cause

    # Syscall handling must NOT involve per-CSR emulation exits: the PV
    # kernel reads cause/value from the shared page.
    te_hv, te_vm, _ = boot_hvm(workloads.syscall_storm(20),
                               virt_mode=VirtMode.TRAP_EMULATE)
    pv_exits = vm.exit_stats.total_exits
    te_exits = te_vm.exit_stats.total_exits
    assert pv_exits < te_exits / 1.5


def test_pv_timer_ticks():
    hv, vm, diag = boot_pv(workloads.idle_ticks(2), timer_period=150_000,
                           max_instructions=30_000_000)
    assert diag.ticks >= 2


def test_pv_correctness_on_memtouch():
    from repro.guest.workloads import expected_memtouch

    _, _, diag = boot_pv(workloads.memtouch(24, 4))
    assert diag.user_result == expected_memtouch(24, 4)
    assert diag.demand_faults == 24


def test_pv_probes_marked_not_applicable():
    _, _, diag = boot_pv(workloads.hello())
    assert diag.mode_ok == 2 and diag.ie_ok == 2
