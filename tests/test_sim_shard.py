"""Shard messaging and the epoch executor."""

import pickle

import pytest

from repro.sim.shard import (
    COORDINATOR,
    ShardExecutor,
    ShardMessage,
    parallel_map,
    route_messages,
)
from repro.util.errors import ConfigError


def _msg(time, src, seq, dst=0, kind="k"):
    return ShardMessage(time=time, src_shard=src, seq=seq, kind=kind,
                        dst_shard=dst)


def test_message_ordering_ignores_payload():
    # (time, src_shard, seq) totally orders; kind/payload never compared.
    a = _msg(5, 1, 1, kind="zzz")
    b = _msg(5, 2, 1, kind="aaa")
    c = _msg(4, 9, 9)
    assert sorted([b, a, c]) == [c, a, b]


def test_route_messages_partitions_and_sorts():
    msgs = [
        _msg(2, 1, 1, dst=0),
        _msg(1, 0, 1, dst=1),
        _msg(1, 0, 2, dst=COORDINATOR),
        _msg(1, 1, 1, dst=0),
    ]
    inboxes, coord = route_messages(msgs, shards=2)
    assert [(m.time, m.src_shard, m.seq) for m in inboxes[0]] == [
        (1, 1, 1), (2, 1, 1)]
    assert [m.dst_shard for m in inboxes[1]] == [1]
    assert len(coord) == 1 and coord[0].seq == 2


def test_route_messages_rejects_unknown_shard():
    with pytest.raises(ConfigError, match="shard 7"):
        route_messages([_msg(1, 0, 1, dst=7)], shards=2)


def test_message_pickles():
    msg = ShardMessage(time=1, src_shard=0, seq=1, kind="arrive",
                       dst_shard=1, payload=("vm", "host"))
    assert pickle.loads(pickle.dumps(msg)) == msg


def _square(x):
    return x * x


def test_parallel_map_matches_inline_and_preserves_order():
    items = list(range(20))
    assert parallel_map(_square, items, jobs=1) == [x * x for x in items]
    assert parallel_map(_square, items, jobs=3) == [x * x for x in items]


def test_executor_persists_across_maps():
    with ShardExecutor(jobs=2) as executor:
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert executor.map(_square, [4, 5]) == [16, 25]


def test_executor_rejects_bad_jobs():
    with pytest.raises(ConfigError):
        ShardExecutor(jobs=0)
