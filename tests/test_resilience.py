"""Failure domains, constrained placement, evacuation, and the
detect→evacuate→re-place→verify resilience loop."""

import pytest

from repro.cluster import (
    AdmissionError,
    ConstraintSet,
    EvacuationConfig,
    Host,
    HostSpec,
    Placement,
    RELAX_ORDER,
    ResilienceController,
    VMSpec,
    failover,
    first_fit,
    reservation_satisfied,
    worst_fit,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec, RetryPolicy
from repro.util.errors import ConfigError
from repro.util.units import GIB

SPEC = HostSpec(cores=4, cpu_capacity=4.0, memory_bytes=16 * GIB)


def vm(name, cpu=1.0, mem=2 * GIB):
    return VMSpec(name, cpu_demand=cpu, memory_bytes=mem)


def racked_hosts(n=4, per_rack=2, spec=SPEC):
    return [Host(spec, i, domain=f"rack{i // per_rack}") for i in range(n)]


class TestConstraintSet:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ConstraintSet(max_per_domain=0)
        with pytest.raises(ConfigError):
            ConstraintSet(reserve_failures=-1)
        with pytest.raises(ConfigError):
            ConstraintSet(anti_affinity_groups={"a": ["x"], "b": ["x"]})

    def test_group_lookup(self):
        cs = ConstraintSet(anti_affinity_groups={"svc": ["a", "b", "c"]})
        assert cs.group_of("a") == "svc"
        assert cs.group_of("zzz") is None
        assert cs.peers_of("a") == frozenset({"b", "c"})
        assert cs.peers_of("zzz") == frozenset()
        assert not cs.is_empty()
        assert ConstraintSet().is_empty()

    def test_domain_labels(self):
        hosts = racked_hosts()
        assert [h.domain for h in hosts] == \
            ["rack0", "rack0", "rack1", "rack1"]
        # The spec-level default applies when no override is given.
        assert Host(SPEC, 9).domain == SPEC.failure_domain
        placement = first_fit([vm("a")], hosts)
        assert placement.domain_of("a") == "rack0"
        assert placement.domains == ["rack0", "rack1"]


class TestConstrainedPlacement:
    def test_anti_affinity_spreads_across_domains(self):
        hosts = racked_hosts()
        cs = ConstraintSet(anti_affinity_groups={"svc": ["a", "b"]})
        placement = first_fit([vm("a"), vm("b")], hosts, constraints=cs)
        assert placement.domain_of("a") != placement.domain_of("b")
        assert placement.relaxations == {}

    def test_relaxes_to_host_spread_then_unconstrained(self):
        # Two hosts, one rack: domain-spread is unsatisfiable for the
        # second replica, host-spread still is for the third.
        hosts = [Host(SPEC, i, domain="rack0") for i in range(2)]
        cs = ConstraintSet(
            anti_affinity_groups={"svc": ["a", "b", "c"]})
        placement = first_fit([vm("a"), vm("b"), vm("c")], hosts,
                              constraints=cs)
        assert placement.relaxations["b"] == "host-spread"
        assert placement.host_of("a") is not placement.host_of("b")
        assert placement.relaxations["c"] == "unconstrained"
        assert RELAX_ORDER == ("domain-spread", "host-spread",
                               "unconstrained")

    def test_max_per_domain_allows_bounded_colocation(self):
        hosts = racked_hosts()
        cs = ConstraintSet(anti_affinity_groups={"svc": ["a", "b", "c"]},
                           max_per_domain=2)
        placement = first_fit([vm("a"), vm("b"), vm("c")], hosts,
                              constraints=cs)
        assert placement.relaxations == {}
        by_domain = {}
        for name in "abc":
            d = placement.domain_of(name)
            by_domain[d] = by_domain.get(d, 0) + 1
        assert max(by_domain.values()) <= 2

    def test_unconstrained_call_sites_unchanged(self):
        a = [Host(SPEC, i) for i in range(2)]
        b = [Host(SPEC, i) for i in range(2)]
        p1 = first_fit([vm("a"), vm("b")], a)
        p2 = first_fit([vm("a"), vm("b")], b, constraints=ConstraintSet())
        assert [sorted(h.vms) for h in p1.hosts] == \
            [sorted(h.vms) for h in p2.hosts]


class TestReservation:
    def test_capacity_level_check(self):
        hosts = racked_hosts()
        first_fit([vm("a", mem=8 * GIB)], hosts)
        # 8 GiB on the doomed host, 3 x 16 GiB spare elsewhere: fine.
        assert reservation_satisfied(hosts, reserve=1)
        assert not reservation_satisfied(hosts, reserve=4)
        assert reservation_satisfied(hosts, reserve=0)

    def test_admission_refuses_instead_of_relaxing(self):
        hosts = [Host(SPEC, i) for i in range(2)]
        cs = ConstraintSet(reserve_failures=1)
        first_fit([vm(f"v{i}", mem=4 * GIB) for i in range(4)], hosts,
                  constraints=cs)
        # 16 GiB used; the fuller host can still evacuate. One more VM
        # and it could not: admission control refuses, it never relaxes.
        with pytest.raises(AdmissionError):
            first_fit([vm("straw", mem=8 * GIB)], hosts, constraints=cs)
        assert all("straw" not in h.vms for h in hosts)


class TestHostFail:
    def test_fail_is_idempotent(self):
        host = Host(SPEC, 0)
        start = host.crashes
        assert host.fail() is True
        assert host.fail() is False
        assert host.crashes == start + 1
        assert not host.alive

    def test_maybe_crash_skips_dead_hosts(self):
        injector = FaultInjector(FaultPlan(seed=7, specs=[
            FaultSpec("host.crash", rate=1.0),
        ]))
        host = Host(SPEC, 0)
        assert host.maybe_crash(injector)
        assert not host.maybe_crash(injector)  # already dead: no-op
        assert host.crashes == 1
        assert not Host(SPEC, 1).maybe_crash(None)


class TestFailoverEdges:
    def test_zero_survivors_loses_all_with_full_specs(self):
        hosts = [Host(SPEC, i) for i in range(2)]
        vms = [vm("a"), vm("b", mem=4 * GIB)]
        placement = first_fit(vms, hosts)
        for h in hosts:
            h.fail()
        report = failover(placement)
        assert report.recovered == []
        assert sorted(report.lost_names) == ["a", "b"]
        # Full specs survive, so placement can be retried later.
        assert {v.name: v.memory_bytes for v in report.lost} == \
            {"a": 2 * GIB, "b": 4 * GIB}

    def test_vm_too_big_for_any_survivor_is_lost(self):
        hosts = [Host(SPEC, i) for i in range(3)]
        big = vm("big", mem=12 * GIB)
        placement = first_fit(
            [big, vm("filler0", mem=10 * GIB), vm("filler1", mem=10 * GIB)],
            hosts)
        hosts[0].fail()
        report = failover(placement)
        assert report.lost == [big]
        assert report.gave_up == []

    def test_move_order_is_deterministic(self):
        def run():
            hosts = [Host(SPEC, i) for i in range(4)]
            vms = [vm("n1", mem=1 * GIB), vm("n0", mem=1 * GIB),
                   vm("big", mem=8 * GIB), vm("mid", mem=4 * GIB)]
            placement = first_fit(vms, hosts)
            hosts[0].fail()
            return failover(placement)

        r1, r2 = run(), run()
        assert r1.moves == r2.moves
        # Largest-first drain; names break the 1 GiB tie.
        assert [m[0] for m in r1.moves] == ["big", "mid", "n0", "n1"]

    def test_failover_honors_constraints_with_relax(self):
        hosts = racked_hosts()
        cs = ConstraintSet(anti_affinity_groups={"svc": ["a", "b"]})
        placement = first_fit([vm("a"), vm("b")], hosts, constraints=cs)
        dead = placement.host_of("a")
        dead.fail()
        report = failover(placement, constraints=cs)
        assert report.recovered == ["a"]
        # "a" landed outside its peer's rack when possible.
        assert placement.domain_of("a") != placement.domain_of("b") or \
            report.relaxations.get("a") in RELAX_ORDER[1:]


class TestEvacuation:
    def test_evacuate_prices_moves(self):
        hosts = [Host(SPEC, i) for i in range(2)]
        placement = first_fit([vm("a", mem=4 * GIB)], hosts)
        hosts[0].fail()
        report = failover(placement, evacuate=EvacuationConfig())
        assert report.recovered == ["a"]
        assert report.evacuation_time_us > 0
        assert report.evacuation_downtime_us > 0
        assert report.evacuation_retries == 0

    def test_link_drops_retry_then_give_up(self):
        def run(drops):
            hosts = [Host(SPEC, i) for i in range(2)]
            placement = first_fit([vm("a", mem=4 * GIB)], hosts)
            hosts[0].fail()
            injector = FaultInjector(FaultPlan(seed=11, specs=[
                FaultSpec("migrate.link_drop", rate=1.0, count=drops),
            ]))
            cfg = EvacuationConfig(
                retry_policy=RetryPolicy(max_retries=2))
            return failover(placement, evacuate=cfg, injector=injector), \
                injector

        absorbed, _ = run(drops=2)
        assert absorbed.recovered == ["a"]
        assert absorbed.evacuation_retries == 2
        assert absorbed.evacuation_backoff_us > 0

        exhausted, inj = run(drops=3)
        assert exhausted.recovered == []
        assert exhausted.gave_up == ["a"]
        assert exhausted.lost_names == ["a"]
        _, replay_inj = run(drops=3)
        assert inj.trace_bytes() == replay_inj.trace_bytes()


class TestResilienceController:
    def test_quiescent_cluster_is_a_noop(self):
        hosts = racked_hosts()
        placement = first_fit([vm("a")], hosts)
        report = ResilienceController(placement).run()
        assert report.rounds == 0
        assert report.moves == []
        assert report.verified

    def test_cascade_mid_recovery_forces_replan(self):
        hosts = [Host(SPEC, i) for i in range(3)]
        placement = first_fit([vm("a")], hosts)
        hosts[0].fail()
        injector = FaultInjector(FaultPlan(seed=3, specs=[
            # Fires at the very first post-pricing poll: the chosen
            # (emptiest) target dies with the move in flight.
            FaultSpec("host.crash", rate=1.0, after=0, count=1),
        ]))
        controller = ResilienceController(placement, injector=injector)
        report = controller.run()
        assert report.initial_failures == ["host-0"]
        assert report.cascade_failures == ["host-1"]
        assert report.replans == 1
        assert report.recovered == ["a"]
        assert placement.host_of("a").name == "host-2"
        assert report.verified

    def test_cascade_strands_more_vms_next_round(self):
        hosts = [Host(SPEC, i) for i in range(4)]
        placement = first_fit(
            [vm("a"), vm("b", mem=4 * GIB), vm("c", mem=6 * GIB)], hosts)
        hosts[0].fail()  # strands a, b, c
        injector = FaultInjector(FaultPlan(seed=5, specs=[
            # The second poll kills a survivor that just took a VM;
            # the next detect round must drain it again.
            FaultSpec("host.crash", rate=1.0, after=3, count=1),
        ]))
        controller = ResilienceController(placement, injector=injector)
        report = controller.run()
        assert report.rounds >= 2
        assert len(report.cascade_failures) == 1
        assert report.verified
        alive = {h.name for h in hosts if h.alive}
        for name in ("a", "b", "c"):
            if name not in report.lost_names:
                assert placement.host_of(name).name in alive

    def test_controller_respects_constraints_and_reports_loss(self):
        hosts = racked_hosts()
        cs = ConstraintSet(anti_affinity_groups={"svc": ["a", "b"]},
                           reserve_failures=1)
        placement = first_fit([vm("a"), vm("b")], hosts, constraints=cs)
        placement.host_of("a").fail()
        report = ResilienceController(placement, constraints=cs).run()
        # Reservation is stripped on re-placement (liveness first);
        # spread is kept: "a" lands away from "b"'s rack.
        assert report.recovered == ["a"]
        assert placement.domain_of("a") != placement.domain_of("b")
        assert report.verified

    def test_controller_metrics_scope(self):
        from repro.obs.registry import MetricsRegistry
        registry = MetricsRegistry()
        hosts = [Host(SPEC, i) for i in range(2)]
        placement = first_fit([vm("a")], hosts)
        hosts[0].fail()
        controller = ResilienceController(
            placement, metrics=registry.scope("cluster.resilience"))
        controller.run()
        snap = registry.snapshot()["metrics"]
        assert snap["cluster.resilience.moves"]["value"] == 1
        assert snap["cluster.resilience.recovered"]["value"] == 1
