"""Block and network device models (emulated flavours)."""

import pytest

from repro.devices.block import (
    BLK_CMD,
    BLK_COUNT,
    BLK_DMA,
    BLK_NSECT,
    BLK_SECTOR,
    BLK_STATUS,
    BlockDevice,
    CMD_READ,
    CMD_WRITE,
    SECTOR_SIZE,
    STATUS_ERROR,
    STATUS_READY,
)
from repro.devices.irq import InterruptController
from repro.devices.net import (
    NET_RX_ADDR,
    NET_RX_CMD,
    NET_RX_LEN,
    NET_STATUS,
    NET_TX_ADDR,
    NET_TX_CMD,
    NET_TX_LEN,
    NetDevice,
)
from repro.mem.physmem import PhysicalMemory
from repro.util.errors import DeviceError
from repro.util.units import MIB


class SinkStub:
    def __init__(self):
        self.count = 0

    def assert_irq(self, cause):
        self.count += 1


@pytest.fixture
def env():
    pm = PhysicalMemory(1 * MIB)
    sink = SinkStub()
    pic = InterruptController(sink)
    return pm, pic, sink


class TestBlockDevice:
    def test_write_then_read_roundtrip(self, env):
        pm, pic, sink = env
        disk = BlockDevice(pm, pic.line(1), capacity_sectors=16)
        payload = bytes(range(256)) * 2  # one sector
        pm.write_bytes(0x4000, payload)
        disk.port_write(BLK_SECTOR, 3)
        disk.port_write(BLK_COUNT, 1)
        disk.port_write(BLK_DMA, 0x4000)
        disk.port_write(BLK_CMD, CMD_WRITE)
        assert disk.port_read(BLK_STATUS) == STATUS_READY
        assert disk.read_sectors(3, 1) == payload
        # read back to a different buffer
        disk.port_write(BLK_DMA, 0x5000)
        disk.port_write(BLK_CMD, CMD_READ)
        assert pm.read_bytes(0x5000, SECTOR_SIZE) == payload
        assert disk.reads == 1 and disk.writes == 1
        assert sink.count == 2  # one IRQ per completed command

    def test_multi_sector_transfer(self, env):
        pm, pic, _ = env
        disk = BlockDevice(pm, pic.line(1), capacity_sectors=16)
        data = b"AB" * (SECTOR_SIZE)  # two sectors worth
        pm.write_bytes(0x4000, data)
        disk.port_write(BLK_SECTOR, 0)
        disk.port_write(BLK_COUNT, 2)
        disk.port_write(BLK_DMA, 0x4000)
        disk.port_write(BLK_CMD, CMD_WRITE)
        assert disk.read_sectors(0, 2) == data
        assert disk.sectors_transferred == 2

    def test_out_of_range_sets_error_status(self, env):
        pm, pic, _ = env
        disk = BlockDevice(pm, pic.line(1), capacity_sectors=4)
        disk.port_write(BLK_SECTOR, 3)
        disk.port_write(BLK_COUNT, 2)  # runs past the end
        disk.port_write(BLK_DMA, 0x4000)
        disk.port_write(BLK_CMD, CMD_READ)
        assert disk.port_read(BLK_STATUS) == STATUS_ERROR

    def test_bad_command_is_error(self, env):
        pm, pic, _ = env
        disk = BlockDevice(pm, pic.line(1))
        disk.port_write(BLK_COUNT, 1)
        disk.port_write(BLK_CMD, 99)
        assert disk.port_read(BLK_STATUS) == STATUS_ERROR

    def test_capacity_port(self, env):
        pm, pic, _ = env
        disk = BlockDevice(pm, pic.line(1), capacity_sectors=77)
        assert disk.port_read(BLK_NSECT) == 77

    def test_load_image(self, env):
        pm, pic, _ = env
        disk = BlockDevice(pm, pic.line(1), capacity_sectors=4)
        disk.load_image(b"boot", sector=1)
        assert disk.read_sectors(1, 1)[:4] == b"boot"
        with pytest.raises(DeviceError):
            disk.load_image(b"x" * (5 * SECTOR_SIZE))


class TestNetDevice:
    def test_transmit(self, env):
        pm, pic, _ = env
        sent = []
        nic = NetDevice(pm, pic.line(2), tx_sink=sent.append)
        pm.write_bytes(0x4000, b"hello frame")
        nic.port_write(NET_TX_ADDR, 0x4000)
        nic.port_write(NET_TX_LEN, 11)
        nic.port_write(NET_TX_CMD, 1)
        assert sent == [b"hello frame"]
        assert nic.tx_frames == 1 and nic.tx_bytes == 11

    def test_receive_path(self, env):
        pm, pic, sink = env
        nic = NetDevice(pm, pic.line(2))
        nic.inject_rx(b"incoming")
        assert sink.count == 1
        assert nic.port_read(NET_STATUS) & 2  # rx waiting
        nic.port_write(NET_RX_ADDR, 0x6000)
        nic.port_write(NET_RX_CMD, 1)
        assert nic.port_read(NET_RX_LEN) == 8
        assert pm.read_bytes(0x6000, 8) == b"incoming"
        assert not nic.port_read(NET_STATUS) & 2

    def test_rx_pop_when_empty(self, env):
        pm, pic, _ = env
        nic = NetDevice(pm, pic.line(2))
        nic.port_write(NET_RX_ADDR, 0x6000)
        nic.port_write(NET_RX_CMD, 1)
        assert nic.port_read(NET_RX_LEN) == 0

    def test_oversize_frames_rejected(self, env):
        pm, pic, _ = env
        nic = NetDevice(pm, pic.line(2))
        with pytest.raises(DeviceError):
            nic.inject_rx(b"x" * 10000)
        with pytest.raises(DeviceError):
            nic.port_write(NET_TX_LEN, 10000)
