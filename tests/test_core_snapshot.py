"""VM snapshot/restore and the binary codec."""

import pytest

from repro.core import (
    GuestConfig,
    Hypervisor,
    MMUVirtMode,
    VirtMode,
    VMSnapshot,
    restore_vm,
    snapshot_vm,
)
from repro.core.hypervisor import HypercallNumbers, RunOutcome
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.util.errors import ConfigError
from repro.util.units import MIB

GUEST_MEM = 16 * MIB


def running_vm(hv, name="snap", virt_mode=VirtMode.HW_ASSIST,
               mmu_mode=MMUVirtMode.NESTED, pages=20, passes=1500,
               warmup=120_000):
    vm = hv.create_vm(GuestConfig(name=name, memory_bytes=GUEST_MEM,
                                  virt_mode=virt_mode, mmu_mode=mmu_mode))
    kernel = build_kernel(KernelOptions(
        pv=virt_mode is VirtMode.PARAVIRT, memory_bytes=GUEST_MEM))
    hv.load_program(vm, kernel)
    hv.load_program(vm, workloads.memtouch(pages, passes))
    hv.reset_vcpu(vm, kernel.entry)
    hv.run(vm, max_guest_instructions=warmup)
    return vm


class TestRoundtrip:
    def test_codec_roundtrip_is_identity(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = running_vm(hv)
        snap = snapshot_vm(vm)
        decoded = VMSnapshot.from_bytes(snap.to_bytes())
        assert decoded.pc == snap.pc
        assert decoded.regs == snap.regs
        assert decoded.csr == snap.csr
        assert decoded.vcsr == snap.vcsr
        assert decoded.pages == snap.pages
        assert decoded.mapped_gfns == snap.mapped_gfns
        assert decoded.console_text == snap.console_text
        assert decoded.timer_state == snap.timer_state
        assert decoded.config.virt_mode == snap.config.virt_mode
        # re-encoding is stable
        assert decoded.to_bytes() == snap.to_bytes()

    def test_zero_pages_elided(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = running_vm(hv)
        snap = snapshot_vm(vm)
        assert len(snap.pages) < 200  # of 4096 mapped
        assert len(snap.mapped_gfns) == vm.num_pages

    def test_blob_is_compact(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = running_vm(hv)
        blob = snapshot_vm(vm).to_bytes()
        assert len(blob) < 1 * MIB  # vs 16 MiB of guest RAM + 2 MiB disks


class TestRestore:
    @pytest.mark.parametrize("vmode,mmode", [
        (VirtMode.HW_ASSIST, MMUVirtMode.NESTED),
        (VirtMode.HW_ASSIST, MMUVirtMode.SHADOW),
        (VirtMode.TRAP_EMULATE, MMUVirtMode.SHADOW),
    ])
    def test_restored_vm_finishes_correctly(self, vmode, mmode):
        hv = Hypervisor(memory_bytes=96 * MIB)
        vm = running_vm(hv, virt_mode=vmode, mmu_mode=mmode)
        snap = snapshot_vm(vm)
        clone = restore_vm(hv, snap, name="clone")
        outcome = hv.run(clone, max_guest_instructions=60_000_000)
        diag = read_diag(clone.guest_mem)
        assert outcome is RunOutcome.SHUTDOWN
        assert diag.user_result == expected_memtouch(20, 1500)

    def test_clone_and_original_diverge_independently(self):
        hv = Hypervisor(memory_bytes=96 * MIB)
        vm = running_vm(hv)
        snap = snapshot_vm(vm)
        clone = restore_vm(hv, snap, name="clone")
        clone.guest_mem.write_u32(0x9000 + 64, 0xDEAD)  # scribble on clone
        assert vm.guest_mem.read_u32(0x9000 + 64) != 0xDEAD

    def test_restore_on_different_hypervisor(self):
        hv1 = Hypervisor(memory_bytes=64 * MIB)
        hv2 = Hypervisor(memory_bytes=64 * MIB)
        vm = running_vm(hv1)
        clone = restore_vm(hv2, snapshot_vm(vm))
        outcome = hv2.run(clone, max_guest_instructions=60_000_000)
        assert outcome is RunOutcome.SHUTDOWN

    def test_console_history_preserved(self):
        hv = Hypervisor(memory_bytes=96 * MIB)
        vm = running_vm(hv)
        clone = restore_vm(hv, snapshot_vm(vm), name="c2")
        assert clone.devices["console"].text == vm.devices["console"].text

    def test_ballooned_pages_stay_unmapped(self):
        hv = Hypervisor(memory_bytes=96 * MIB)
        vm = hv.create_vm(GuestConfig(name="b", memory_bytes=GUEST_MEM,
                                      virt_mode=VirtMode.HW_ASSIST,
                                      mmu_mode=MMUVirtMode.NESTED))
        from repro.cpu.assembler import Assembler
        prog = Assembler().assemble(f"""
.org 0x1000
    li a0, 3000
    vmcall {int(HypercallNumbers.BALLOON_GIVE)}
    hlt
""")
        hv.load_program(vm, prog)
        hv.reset_vcpu(vm, 0x1000)
        hv.run(vm, max_guest_instructions=100)
        snap = snapshot_vm(vm)
        clone = restore_vm(hv, snap, name="bc")
        assert not clone.guest_mem.is_mapped(3000)
        assert 3000 in clone.ballooned_gfns


class TestCodecErrors:
    def test_bad_magic(self):
        with pytest.raises(ConfigError, match="magic"):
            VMSnapshot.from_bytes(b"XXXX" + b"\x00" * 64)

    def test_truncated(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        blob = snapshot_vm(running_vm(hv)).to_bytes()
        with pytest.raises(ConfigError, match="truncated"):
            VMSnapshot.from_bytes(blob[: len(blob) // 2])

    def test_trailing_garbage(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        blob = snapshot_vm(running_vm(hv)).to_bytes()
        with pytest.raises(ConfigError, match="trailing"):
            VMSnapshot.from_bytes(blob + b"junk")

    def test_bad_version(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        blob = bytearray(snapshot_vm(running_vm(hv)).to_bytes())
        blob[4:8] = (99).to_bytes(4, "little")
        with pytest.raises(ConfigError, match="version"):
            VMSnapshot.from_bytes(bytes(blob))
