"""BareMMU: TLB-fronted native translation."""

import pytest

from repro.cpu.mmu import BareMMU
from repro.mem.costs import CostModel
from repro.mem.paging import (
    AccessType,
    AddressSpace,
    PTE_USER,
    PTE_WRITABLE,
    PageFault,
)
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.util.units import MIB, PAGE_SIZE


@pytest.fixture
def env():
    pm = PhysicalMemory(1 * MIB)
    alloc = FrameAllocator(pm, reserved_frames=8)
    mmu = BareMMU(pm, CostModel())
    space = AddressSpace(pm, alloc)
    return pm, alloc, mmu, space


def test_paging_disabled_is_identity(env):
    _, _, mmu, _ = env
    pa, cycles = mmu.translate(0x1234, AccessType.READ, user=False)
    assert pa == 0x1234 and cycles == 0


def test_walk_cost_then_tlb_hit(env):
    pm, alloc, mmu, space = env
    frame = alloc.alloc()
    space.map(0x5000, frame * PAGE_SIZE, PTE_WRITABLE)
    mmu.set_root(space.root_pa)
    costs = mmu.costs
    pa1, c1 = mmu.translate(0x5008, AccessType.READ, user=False)
    assert pa1 == frame * PAGE_SIZE + 8
    assert c1 == costs.tlb_hit_cycles + 2 * costs.mem_ref_cycles
    pa2, c2 = mmu.translate(0x5010, AccessType.READ, user=False)
    assert pa2 == frame * PAGE_SIZE + 0x10
    assert c2 == costs.tlb_hit_cycles  # cached


def test_set_root_flushes_tlb(env):
    pm, alloc, mmu, space = env
    frame = alloc.alloc()
    space.map(0x5000, frame * PAGE_SIZE, PTE_WRITABLE)
    mmu.set_root(space.root_pa)
    mmu.translate(0x5000, AccessType.READ, user=False)
    assert len(mmu.tlb) == 1
    mmu.set_root(space.root_pa)
    assert len(mmu.tlb) == 0


def test_invlpg_drops_single_translation(env):
    pm, alloc, mmu, space = env
    f1, f2 = alloc.alloc(), alloc.alloc()
    space.map(0x5000, f1 * PAGE_SIZE, PTE_WRITABLE)
    space.map(0x6000, f2 * PAGE_SIZE, PTE_WRITABLE)
    mmu.set_root(space.root_pa)
    mmu.translate(0x5000, AccessType.READ, user=False)
    mmu.translate(0x6000, AccessType.READ, user=False)
    mmu.invlpg(0x5000)
    assert 0x5 not in mmu.tlb and 0x6 in mmu.tlb


def test_fault_propagates(env):
    _, _, mmu, space = env
    mmu.set_root(space.root_pa)
    with pytest.raises(PageFault):
        mmu.translate(0x9000, AccessType.READ, user=False)


def test_stale_tlb_after_pte_change_until_invlpg(env):
    # Architectural behaviour: changing a PTE without INVLPG leaves the
    # stale translation visible -- exactly like hardware.
    pm, alloc, mmu, space = env
    f1, f2 = alloc.alloc(), alloc.alloc()
    space.map(0x5000, f1 * PAGE_SIZE, PTE_WRITABLE)
    mmu.set_root(space.root_pa)
    pa_before, _ = mmu.translate(0x5000, AccessType.READ, user=False)
    space.map(0x5000, f2 * PAGE_SIZE, PTE_WRITABLE)  # remap
    pa_stale, _ = mmu.translate(0x5000, AccessType.READ, user=False)
    assert pa_stale == pa_before  # still the old frame
    mmu.invlpg(0x5000)
    pa_fresh, _ = mmu.translate(0x5000, AccessType.READ, user=False)
    assert pa_fresh == f2 * PAGE_SIZE
