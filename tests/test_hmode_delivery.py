"""H-mode asynchronous-delivery property: the PR-9 retire-edge rule,
bit-for-bit against the reference interpreter.

The architected rule: a pending, unmasked IRQ latched at retire edge N
is delivered before the fetch of instruction N+1. H-mode is the one
engine that claims *zero* VMM involvement for delegated causes -- the
trap vectors straight into the guest with the bare machine's CSR
writes and trap cost -- so the property here is stronger than the
guest-visible agreement the fuzzer checks: with translation costs
zeroed (a bare machine translates for free with paging off; removing
the G-stage charge makes the timelines comparable), an H-mode guest's
**cycles and instret must equal the bare interpreter's exactly** at
every edge placement within the preemption loop's block.
"""

import pytest

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.cpu.interp import CPUCore
from repro.cpu.isa import CSR, Cause, Op, encode
from repro.cpu.mmu import BareMMU
from repro.devices.irq import IRQ_TIMER_LINE, InterruptController
from repro.devices.schedule import EventSchedule, attach_schedule
from repro.mem.costs import CostModel
from repro.mem.physmem import PhysicalMemory

MEM = 0x100000
ENTRY = 0x1000
VEC = 0x2000
TRIPS = 40
#: Instruction budget: stops both machines mid-loop, before the HLT,
#: so no exit-handler cost ever lands on the H-mode timeline.
LIMIT = 90

#: Retire edges 1..4 are the head (MOVI, CSRW, STI, MOVI); the loop
#: block is ADD/SUB/BNE, so edges 5.. walk its three offsets. The sweep
#: covers every offset of the block across several iterations.
EDGE_SWEEP = list(range(1, 17))


def _image():
    E = encode
    head = b"".join([
        E(Op.MOVI, rd=15, imm32=VEC),
        E(Op.CSRW, ra=15, simm12=int(CSR.VBAR)),
        E(Op.STI),
        E(Op.MOVI, rd=1, imm32=TRIPS),
    ])
    loop = ENTRY + len(head)
    body = b"".join([
        E(Op.ADD, rd=2, ra=2, imm32=1),
        E(Op.SUB, rd=1, ra=1, imm32=1),
        E(Op.BNE, ra=1, rb=0, imm32=loop),
        E(Op.HLT),
    ])
    vec = encode(Op.ADD, rd=5, ra=5, imm32=1) + encode(Op.IRET)
    return {ENTRY: head + body, VEC: vec}


def _costs():
    # Identical instruction costs everywhere; translation free on both
    # sides (the bare MMU charges nothing with paging off, the H-mode
    # MMU's hit/G-stage charges are zeroed).
    return CostModel(tlb_hit_cycles=0, gstage_ref_cycles=0)


def _run_bare(due):
    costs = _costs()
    pm = PhysicalMemory(MEM)
    for addr, data in _image().items():
        pm.write_bytes(addr, data)
    cpu = CPUCore(BareMMU(pm, costs, tlb_entries=64), costs,
                  port_bus=None, jit=False)
    cpu.reset(ENTRY)
    pic = InterruptController(sink=cpu)
    attach_schedule(cpu, EventSchedule([(due, IRQ_TIMER_LINE)], pic))
    cpu.run(max_instructions=LIMIT)
    return cpu


def _run_hmode(due):
    hv = Hypervisor(memory_bytes=8 * MEM, costs=_costs(), tlb_entries=64)
    vm = hv.create_vm(GuestConfig(
        name="t", memory_bytes=MEM, virt_mode=VirtMode.HW_ASSIST,
        mmu_mode=MMUVirtMode.HMODE, tlb_entries=64, prealloc=True))
    for addr, data in _image().items():
        vm.guest_mem.write_bytes(addr, data)
    hv.reset_vcpu(vm, ENTRY)
    cpu = vm.vcpus[0].cpu
    cpu.events = EventSchedule([(due, IRQ_TIMER_LINE)], vm.pic)
    out = hv.run(vm, max_guest_instructions=LIMIT, max_cycles=10_000_000)
    return out, cpu


class TestHModeDeliveryRule:
    @pytest.mark.parametrize("due", EDGE_SWEEP)
    def test_bit_identical_to_interpreter_at_every_edge(self, due):
        bare = _run_bare(due)
        out, hm = _run_hmode(due)
        assert out is RunOutcome.INSTR_LIMIT
        # The delegated delivery happened, in the guest, with no exit.
        assert hm.regs[5] == bare.regs[5] == 1
        assert hm.csr[CSR.ECAUSE] == int(Cause.IRQ_TIMER)
        # The strong property: identical timelines, not just agreement.
        assert hm.instret == bare.instret == LIMIT
        assert hm.cycles == bare.cycles
        assert hm.pc == bare.pc
        assert list(hm.regs) == list(bare.regs)
        assert hm.csr[CSR.EPC] == bare.csr[CSR.EPC]
        assert hm.csr[CSR.ESTATUS] == bare.csr[CSR.ESTATUS]

    def test_delivery_precedes_the_next_fetch(self):
        # The rule itself, stated on the trap frame: an event due at
        # edge N writes EPC = the pc *after* instruction N, i.e. the
        # handler runs before the fetch of N+1. Edge 6 retires the
        # loop's SUB; the next fetch would be the BNE.
        bare = _run_bare(6)
        _out, hm = _run_hmode(6)
        assert hm.csr[CSR.EPC] == bare.csr[CSR.EPC]
        loop = ENTRY + 24  # head: MOVI(8) + CSRW(4) + STI(4) + MOVI(8)
        assert bare.csr[CSR.EPC] == loop + 16  # the BNE: fetch of N+1
