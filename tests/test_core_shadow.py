"""Shadow MMU: fills, guest faults, PT write protection, views."""

import pytest

from repro.core.shadow import ShadowMMU
from repro.core.vm import GuestMemory
from repro.cpu.exits import ExitReason, VMExit
from repro.mem.costs import CostModel
from repro.mem.paging import (
    AccessType,
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    PageFault,
    make_pte,
    split_vaddr,
)
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.util.units import MIB, PAGE_SIZE

GUEST_PAGES = 64
ROOT_GPA = 0x10000  # gfn 16
PT_GPA = 0x11000  # gfn 17


class GuestEnv:
    """A tiny guest-physical world with hand-built guest page tables."""

    def __init__(self, ring_compression=True, trap_pt_writes=True):
        self.pm = PhysicalMemory(4 * MIB)
        self.alloc = FrameAllocator(self.pm, reserved_frames=8)
        self.gm = GuestMemory(self.pm, GUEST_PAGES)
        for gfn in range(GUEST_PAGES):
            self.gm.map_page(gfn, self.alloc.alloc())
        self.mmu = ShadowMMU(
            self.pm, self.alloc, self.gm, CostModel(),
            ring_compression=ring_compression,
            trap_pt_writes=trap_pt_writes,
        )
        self._next_pt_gpa = PT_GPA

    def guest_map(self, va, gfn, flags):
        """Install a guest PTE for va -> guest frame gfn."""
        dir_idx, tbl_idx, _ = split_vaddr(va)
        pde_gpa = ROOT_GPA + dir_idx * 4
        pde = self.gm.read_u32(pde_gpa)
        if not pde & PTE_PRESENT:
            pt_gpa = self._next_pt_gpa
            self._next_pt_gpa += PAGE_SIZE
            self.gm.write_u32(
                pde_gpa,
                make_pte(pt_gpa >> 12, PTE_PRESENT | PTE_WRITABLE | PTE_USER),
            )
            pde = self.gm.read_u32(pde_gpa)
        pt_gpa = (pde >> 12) << 12
        self.gm.write_u32(pt_gpa + tbl_idx * 4,
                          make_pte(gfn, flags | PTE_PRESENT))

    def enable(self):
        self.mmu.switch_guest_root(ROOT_GPA)

    def translate_with_fill(self, va, access, user=True):
        """Translate, servicing shadow-fill exits like the VMM would."""
        for _ in range(4):
            try:
                return self.mmu.translate(va, access, user)
            except VMExit as exit_:
                assert exit_.reason is ExitReason.PAGE_FAULT
                assert exit_.qual("kind") == "shadow_fill"
                self.mmu.fill(exit_.qual("va"), exit_.qual("access"))
        raise AssertionError("fill did not converge")


def test_real_mode_passthrough():
    env = GuestEnv()
    pa, cycles = env.mmu.translate(0x2000, AccessType.READ, user=False)
    assert pa == env.gm.gpa_to_hpa(0x2000)
    assert cycles == 0


def test_fill_then_hit_translates_to_host_frame():
    env = GuestEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.enable()
    pa, _ = env.translate_with_fill(0x40000123, AccessType.READ)
    assert pa == (env.gm.map[5] << 12) | 0x123
    # subsequent access needs no exit
    pa2, cycles = env.mmu.translate(0x40000200, AccessType.READ, user=True)
    assert pa2 == (env.gm.map[5] << 12) | 0x200
    assert env.mmu.fills == 1


def test_guest_fault_propagates_as_page_fault():
    env = GuestEnv()
    env.enable()
    with pytest.raises(PageFault) as info:
        env.mmu.translate(0x50000000, AccessType.READ, user=True)
    assert not info.value.present


def test_guest_protection_fault_respects_virtual_privilege():
    env = GuestEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE)  # kernel-only
    env.enable()
    # virtually in kernel mode: allowed (despite real user mode)
    env.mmu.set_view(kernel=True)
    env.translate_with_fill(0x40000000, AccessType.READ, user=True)
    # virtually in user mode: guest PTE forbids
    env.mmu.set_view(kernel=False)
    with pytest.raises(PageFault) as info:
        env.mmu.translate(0x40000000, AccessType.READ, user=True)
    assert info.value.present and info.value.user


def test_lazy_dirty_write_upgrade_sets_guest_dirty_bit():
    env = GuestEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.enable()
    env.translate_with_fill(0x40000000, AccessType.READ)
    # Guest PTE has A but not D yet.
    dir_idx, tbl_idx, _ = split_vaddr(0x40000000)
    pte_gpa = PT_GPA + tbl_idx * 4
    pte = env.gm.read_u32(pte_gpa)
    assert pte & PTE_ACCESSED and not pte & PTE_DIRTY
    # First write faults again (shadow was read-only), then sets D.
    env.translate_with_fill(0x40000000, AccessType.WRITE)
    assert env.gm.read_u32(pte_gpa) & PTE_DIRTY


def test_pt_write_exit_kind():
    env = GuestEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    # Map the guest PT page itself into guest VA space (as a kernel
    # would) and try to write it.
    env.guest_map(0x00011000, gfn=17, flags=PTE_WRITABLE | PTE_USER)
    env.enable()
    env.translate_with_fill(0x40000000, AccessType.READ)  # registers PT gfn
    with pytest.raises(VMExit) as info:
        env.mmu.translate(0x00011000, AccessType.WRITE, user=True)
    assert info.value.qual("kind") == "pt_write"


def test_pv_mode_does_not_trap_pt_writes():
    env = GuestEnv(trap_pt_writes=False)
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.guest_map(0x00011000, gfn=17, flags=PTE_WRITABLE | PTE_USER)
    env.enable()
    env.translate_with_fill(0x40000000, AccessType.READ)
    # Writing the PT page is a normal write under the PV contract.
    env.translate_with_fill(0x00011000, AccessType.WRITE)


def test_dirty_log_exit_kind():
    env = GuestEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.enable()
    env.translate_with_fill(0x40000000, AccessType.WRITE)
    env.mmu.write_protect_gfn(5)
    with pytest.raises(VMExit) as info:
        env.mmu.translate(0x40000000, AccessType.WRITE, user=True)
    assert info.value.qual("kind") == "dirty_log"
    assert info.value.qual("gfn") == 5
    # after unprotecting, the write goes through (via a fill)
    env.mmu.unprotect_gfn(5)
    env.translate_with_fill(0x40000000, AccessType.WRITE)


def test_view_switch_flushes_and_separates_spaces():
    env = GuestEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE)  # kernel-only
    env.enable()
    env.mmu.set_view(kernel=True)
    env.translate_with_fill(0x40000000, AccessType.READ)
    assert env.mmu.view_switches >= 0
    switches_before = env.mmu.view_switches
    env.mmu.set_view(kernel=False)
    assert env.mmu.view_switches == switches_before + 1
    assert len(env.mmu.tlb) == 0  # flushed


def test_handle_guest_pt_write_invalidates_leaf():
    env = GuestEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.enable()
    env.translate_with_fill(0x40000000, AccessType.READ)
    # The VMM applies a guest PTE update: remap va to gfn 6.
    dir_idx, tbl_idx, _ = split_vaddr(0x40000000)
    pte_gpa = PT_GPA + tbl_idx * 4
    env.gm.write_u32(pte_gpa, make_pte(6, PTE_PRESENT | PTE_WRITABLE | PTE_USER))
    env.mmu.handle_guest_pt_write(pte_gpa)
    pa, _ = env.translate_with_fill(0x40000000, AccessType.READ)
    assert pa == env.gm.map[6] << 12


def test_handle_guest_root_write_clears_subtree():
    env = GuestEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.enable()
    env.translate_with_fill(0x40000000, AccessType.READ)
    # Zap the PDE: the whole 4 MiB range must revert to guest faults.
    dir_idx, _, _ = split_vaddr(0x40000000)
    pde_gpa = ROOT_GPA + dir_idx * 4
    env.gm.write_u32(pde_gpa, 0)
    env.mmu.handle_guest_pt_write(pde_gpa)
    with pytest.raises(PageFault):
        env.mmu.translate(0x40000000, AccessType.READ, user=True)


def test_drop_gfn_removes_mappings():
    env = GuestEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.enable()
    env.translate_with_fill(0x40000000, AccessType.WRITE)
    env.mmu.drop_gfn(5)
    # Next access must fault back to the VMM (fill), not use stale maps.
    with pytest.raises(VMExit):
        env.mmu.translate(0x40000000, AccessType.READ, user=True)


def test_invlpg_unmaps_shadow_entry():
    env = GuestEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.enable()
    env.translate_with_fill(0x40000000, AccessType.READ)
    env.mmu.invlpg(0x40000000)
    with pytest.raises(VMExit):
        env.mmu.translate(0x40000000, AccessType.READ, user=True)


def test_destroy_returns_table_frames():
    env = GuestEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.enable()
    env.translate_with_fill(0x40000000, AccessType.READ)
    allocated_before = env.alloc.allocated_frames
    env.mmu.destroy()
    assert env.alloc.allocated_frames < allocated_before
