"""Statistics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    RunningStats,
    Summary,
    geomean,
    jain_fairness,
    percentile,
)


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 50) == 5.0
        assert percentile([5.0], 0) == 5.0

    def test_median_of_even_sample_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_two_element_interpolation(self):
        assert percentile([1, 2], 50) == 1.5
        assert percentile([1, 2], 25) == 1.25
        assert percentile([2, 1], 75) == 1.75  # order-insensitive

    def test_extremes(self):
        data = [3, 1, 4, 1, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 5

    def test_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_within_data_bounds(self, data, p):
        value = percentile(data, p)
        span = max(abs(min(data)), abs(max(data)), 1.0)
        eps = 1e-9 * span  # interpolation rounding slack
        assert min(data) - eps <= value <= max(data) + eps


class TestJainFairness:
    def test_equal_shares_are_fair(self):
        assert jain_fairness([1, 1, 1, 1]) == pytest.approx(1.0)

    def test_single_hog_is_max_unfair(self):
        assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_fairness([0, 0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([])

    @given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=1,
                    max_size=20))
    def test_bounded(self, shares):
        f = jain_fairness(shares)
        assert 0.0 <= f <= 1.0 + 1e-9


class TestGeomean:
    def test_known_value(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([])


class TestSummary:
    def test_basic_fields(self):
        s = Summary.of([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == 3
        assert s.minimum == 1
        assert s.maximum == 5
        assert s.p50 == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary.of([])

    def test_from_values_is_alias_of_of(self):
        data = [0.5, 2.0, 9.0]
        assert Summary.from_values(data) == Summary.of(data)

    def test_dict_round_trip(self):
        s = Summary.of([1, 2, 3, 4, 5, 6, 7, 8])
        d = s.to_dict()
        assert set(d) == {"count", "mean", "stdev", "minimum",
                          "p50", "p95", "p99", "maximum"}
        assert all(isinstance(v, (int, float)) for v in d.values())
        assert Summary.from_dict(d) == s

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=40))
    def test_dict_round_trip_holds_for_any_sample(self, data):
        s = Summary.of(data)
        assert Summary.from_dict(s.to_dict()) == s


class TestRunningStats:
    def test_matches_direct_computation(self):
        data = [1.0, 2.0, 2.0, 3.5, 10.0]
        rs = RunningStats()
        for v in data:
            rs.add(v)
        mean = sum(data) / len(data)
        var = sum((v - mean) ** 2 for v in data) / len(data)
        assert rs.count == len(data)
        assert rs.mean == pytest.approx(mean)
        assert rs.variance == pytest.approx(var)
        assert rs.minimum == 1.0
        assert rs.maximum == 10.0

    def test_no_samples_raises(self):
        rs = RunningStats()
        with pytest.raises(ValueError):
            _ = rs.mean

    def test_merge_equals_single_stream(self):
        a, b, combined = RunningStats(), RunningStats(), RunningStats()
        for i in range(10):
            a.add(float(i))
            combined.add(float(i))
        for i in range(10, 25):
            b.add(float(i))
            combined.add(float(i))
        a.merge(b)
        assert a.count == combined.count
        assert a.mean == pytest.approx(combined.mean)
        assert a.variance == pytest.approx(combined.variance)
        assert a.minimum == combined.minimum
        assert a.maximum == combined.maximum

    def test_merge_with_empty(self):
        a, b = RunningStats(), RunningStats()
        a.add(1.0)
        a.merge(b)  # no-op
        assert a.count == 1
        b.merge(a)
        assert b.count == 1
        assert b.mean == 1.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=60),
           st.integers(min_value=0, max_value=60))
    def test_merge_split_invariant(self, data, split):
        split = min(split, len(data))
        left, right = RunningStats(), RunningStats()
        for v in data[:split]:
            left.add(v)
        for v in data[split:]:
            right.add(v)
        left.merge(right)
        whole = RunningStats()
        for v in data:
            whole.add(v)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean, rel=1e-6, abs=1e-6)
