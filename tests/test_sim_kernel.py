"""Discrete-event simulator kernel."""

import pytest

from repro.sim.kernel import (
    Interrupted,
    SEC,
    Simulator,
    Timeout,
    WaitEvent,
    WaitProcess,
)


def test_timeout_advances_clock():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield Timeout(10)
        trace.append(sim.now)
        yield Timeout(5)
        trace.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert trace == [0, 10, 15]


def test_events_wake_waiters_with_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        value = yield WaitEvent(ev)
        got.append((sim.now, value))

    def firer():
        yield Timeout(7)
        ev.succeed("payload")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == [(7, "payload")]


def test_wait_on_already_fired_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(123)
    got = []

    def waiter():
        value = yield WaitEvent(ev)
        got.append(value)

    sim.spawn(waiter())
    sim.run()
    assert got == [123]


def test_event_double_fire_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()


def test_wait_process_returns_result():
    sim = Simulator()

    def child():
        yield Timeout(3)
        return 42

    results = []

    def parent():
        proc = sim.spawn(child(), name="child")
        value = yield WaitProcess(proc)
        results.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert results == [(3, 42)]


def test_wait_on_finished_process():
    sim = Simulator()

    def child():
        return 9
        yield  # pragma: no cover

    def parent():
        proc = sim.spawn(child())
        yield Timeout(5)
        value = yield WaitProcess(proc)
        return value

    p = sim.spawn(parent())
    assert sim.run_until_process(p) == 9


def test_interrupt_cancels_timeout():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield Timeout(1000)
            log.append("slept")
        except Interrupted as exc:
            log.append(("interrupted", sim.now, exc.reason))
            yield Timeout(1)
            log.append("resumed")

    proc = sim.spawn(sleeper())
    sim.call_at(10, lambda: proc.interrupt("wakeup"))
    sim.run()
    assert log == [("interrupted", 10, "wakeup"), "resumed"]
    assert sim.now == 11  # the stale 1000-tick timer must not fire late


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield Timeout(1)

    proc = sim.spawn(quick())
    sim.run()
    proc.interrupt()  # must not raise


def test_unhandled_interrupt_kills_process():
    sim = Simulator()

    def stubborn():
        yield Timeout(100)

    proc = sim.spawn(stubborn())
    sim.call_at(5, lambda: proc.interrupt())
    sim.run()
    assert not proc.alive


def test_run_until_limit_stops_clock():
    sim = Simulator()

    def ticker():
        while True:
            yield Timeout(10)

    sim.spawn(ticker())
    assert sim.run(until=35) == 35
    assert sim.now == 35


def test_deterministic_tie_breaking():
    sim = Simulator()
    order = []

    def mk(name):
        def proc():
            yield Timeout(5)
            order.append(name)
        return proc()

    for name in ("a", "b", "c"):
        sim.spawn(mk(name), name=name)
    sim.run()
    assert order == ["a", "b", "c"]  # spawn order preserved at equal time


def test_call_at_past_rejected():
    sim = Simulator()
    sim.call_at(5, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(1, lambda: None)


def test_run_until_process_deadlock_detected():
    sim = Simulator()

    def waiter():
        yield WaitEvent(sim.event())  # nobody will fire it

    proc = sim.spawn(waiter())
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run_until_process(proc)


def test_run_until_process_time_limit():
    sim = Simulator()

    def slow():
        yield Timeout(10 * SEC)

    proc = sim.spawn(slow())
    with pytest.raises(RuntimeError, match="time limit"):
        sim.run_until_process(proc, limit=SEC)


def test_bad_yield_type_raises():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(TypeError):
        sim.run()
