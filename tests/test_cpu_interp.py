"""Interpreter semantics: ALU, memory, control flow, cycle accounting."""

import pytest

from repro.cpu.assembler import Assembler
from repro.cpu.interp import CPUCore, StopReason
from repro.cpu.isa import CSR, Cause, MODE_USER
from repro.cpu.mmu import BareMMU
from repro.mem.costs import CostModel
from repro.mem.physmem import PhysicalMemory
from repro.util.errors import GuestError
from repro.util.units import MIB


def run_program(src, *, steps=100_000, setup=None, costs=None):
    prog = Assembler().assemble(".org 0x1000\n" + src)
    pm = PhysicalMemory(1 * MIB)
    prog.load(pm)
    cpu = CPUCore(BareMMU(pm, costs or CostModel()))
    cpu.reset(0x1000)
    cpu.regs[13] = 0x80000  # sp
    if setup:
        setup(cpu, pm)
    result = cpu.run(max_instructions=steps)
    return cpu, pm, result


class TestALU:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 3, 4, 7),
        ("add", 0xFFFFFFFF, 1, 0),  # wraparound
        ("sub", 3, 5, 0xFFFFFFFE),
        ("mul", 7, 6, 42),
        ("mul", 0x10000, 0x10000, 0),  # overflow wraps
        ("divu", 42, 5, 8),
        ("remu", 42, 5, 2),
        ("and", 0xF0F0, 0x0FF0, 0x00F0),
        ("or", 0xF000, 0x000F, 0xF00F),
        ("xor", 0xFF, 0x0F, 0xF0),
        ("shl", 1, 5, 32),
        ("shl", 1, 33, 2),  # shift amount masked to 5 bits
        ("shr", 0x80000000, 31, 1),
        ("sar", 0x80000000, 31, 0xFFFFFFFF),  # arithmetic
        ("slt", 0xFFFFFFFF, 0, 1),  # -1 < 0 signed
        ("sltu", 0xFFFFFFFF, 0, 0),  # max > 0 unsigned
    ])
    def test_binary_op(self, op, a, b, expected):
        cpu, _, _ = run_program(f"""
    li a0, {a}
    li a1, {b}
    {op} a2, a0, a1
    hlt
""")
        assert cpu.regs[3] == expected

    def test_r0_is_hardwired_zero(self):
        cpu, _, _ = run_program("""
    li zero, 99
    add a0, zero, 5
    hlt
""")
        assert cpu.regs[0] == 0
        assert cpu.regs[1] == 5

    def test_divide_by_zero_traps(self):
        cpu, _, _ = run_program("""
    li a0, trap
    csrw VBAR, a0
    li a0, 10
    divu a1, a0, zero
    hlt
trap:
    csrr a2, ECAUSE
    hlt
""")
        assert cpu.regs[3] == int(Cause.DIV0)

    def test_mov_and_movi(self):
        cpu, _, _ = run_program("""
    li a0, 0xABCD
    mov a1, a0
    hlt
""")
        assert cpu.regs[2] == 0xABCD


class TestMemory:
    def test_word_load_store(self):
        cpu, pm, _ = run_program("""
    li a0, 0x20000
    li a1, 0xCAFED00D
    st [a0+4], a1
    ld a2, [a0+4]
    hlt
""")
        assert cpu.regs[3] == 0xCAFED00D
        assert pm.read_u32(0x20004) == 0xCAFED00D

    def test_byte_load_store(self):
        cpu, pm, _ = run_program("""
    li a0, 0x20000
    li a1, 0x1AB
    stb [a0+0], a1
    ldb a2, [a0+0]
    hlt
""")
        assert cpu.regs[3] == 0xAB
        assert pm.read_u8(0x20000) == 0xAB

    def test_negative_displacement(self):
        cpu, _, _ = run_program("""
    li a0, 0x20010
    li a1, 7
    st [a0-16], a1
    ld a2, [a0-16]
    hlt
""")
        assert cpu.regs[3] == 7


class TestControlFlow:
    def test_call_and_return(self):
        cpu, _, _ = run_program("""
    call f
    li a1, 2
    hlt
f:
    li a0, 1
    ret
""")
        assert cpu.regs[1] == 1 and cpu.regs[2] == 2

    @pytest.mark.parametrize("br,a,b,taken", [
        ("beq", 5, 5, True), ("beq", 5, 6, False),
        ("bne", 5, 6, True), ("bne", 5, 5, False),
        ("blt", 0xFFFFFFFF, 0, True),   # signed -1 < 0
        ("blt", 1, 0, False),
        ("bge", 0, 0xFFFFFFFF, True),   # 0 >= -1 signed
        ("bltu", 1, 2, True),
        ("bltu", 0xFFFFFFFF, 0, False),
        ("bgeu", 0xFFFFFFFF, 0, True),
    ])
    def test_branches(self, br, a, b, taken):
        cpu, _, _ = run_program(f"""
    li a0, {a}
    li a1, {b}
    {br} a0, a1, yes
    li a2, 0
    hlt
yes:
    li a2, 1
    hlt
""")
        assert cpu.regs[3] == (1 if taken else 0)

    def test_jalr_indirect(self):
        cpu, _, _ = run_program("""
    li a0, target
    jalr lr, a0
    hlt
target:
    li a1, 9
    jalr zero, lr
""")
        assert cpu.regs[2] == 9

    def test_loop_instruction_count(self):
        cpu, _, result = run_program("""
    li a0, 100
loop:
    sub a0, a0, 1
    bnez a0, loop
    hlt
""")
        # 2 li-equivalents? one li + 100*(sub+bne) + hlt
        assert result.instructions == 1 + 200 + 1


class TestRunLoop:
    def test_halt_stops(self):
        _, _, result = run_program("hlt\n")
        assert result.stop is StopReason.HALT

    def test_instruction_limit(self):
        _, _, result = run_program("loop: jmp loop\n", steps=50)
        assert result.stop is StopReason.INSTR_LIMIT
        assert result.instructions == 50

    def test_cycle_limit(self):
        prog = Assembler().assemble(".org 0x1000\nloop: jmp loop\n")
        pm = PhysicalMemory(1 * MIB)
        prog.load(pm)
        cpu = CPUCore(BareMMU(pm, CostModel()))
        cpu.reset(0x1000)
        result = cpu.run(max_cycles=100)
        assert result.stop is StopReason.CYCLE_LIMIT
        assert result.cycles >= 100

    def test_cycles_accumulate(self):
        costs = CostModel()
        cpu, _, result = run_program("""
    li a0, 1
    li a1, 2
    mul a2, a0, a1
    hlt
""", costs=costs)
        expected = 4 * costs.instr_cycles + costs.mul_extra_cycles
        assert result.cycles == expected


class TestTriplefault:
    def test_trap_without_vector_is_fatal(self):
        with pytest.raises(GuestError, match="triple fault"):
            run_program("syscall 0\nhlt\n")

    def test_unfetchable_vector_is_fatal_not_a_hang(self):
        # Point PTBR at all-zero memory: the next fetch page-faults, and
        # so does every fetch of the vector the trap would re-enter.
        # Before the vector-fetch check this looped forever inside run()
        # with instret frozen, so max_instructions never bound it.
        src = """
    li a0, vec
    csrw VBAR, a0
    li a1, 0x80000
    csrw PTBR, a1
    hlt
vec:
    iret
"""
        with pytest.raises(GuestError, match="triple fault"):
            run_program(src, steps=1_000)

    def test_unfetchable_vector_identical_on_both_engines(self):
        src = ".org 0x1000\nli a0, vec\ncsrw VBAR, a0\nli a1, 0x80000\ncsrw PTBR, a1\nhlt\nvec:\niret\n"
        states = []
        for jit in (False, True):
            prog = Assembler().assemble(src)
            pm = PhysicalMemory(1 * MIB)
            prog.load(pm)
            cpu = CPUCore(BareMMU(pm, CostModel()), jit=jit)
            cpu.reset(0x1000)
            with pytest.raises(GuestError, match="triple fault"):
                cpu.run(max_instructions=1_000)
            states.append((cpu.cycles, cpu.instret, cpu.pc, tuple(cpu.regs),
                           tuple(cpu.csr)))
        assert states[0] == states[1]
