"""Deterministic asynchronous-event delivery: schedules, PIC edges,
IRQ fault sites, the line watchdog, and the console RX path.

The architected rule under test: a pending, unmasked IRQ latched at
retire edge N is delivered before the fetch of instruction N+1, with
timer before device in priority -- and every engine (reference
interpreter, block JIT, and the VMM configs via the fuzz harness)
agrees bit-for-bit on where that edge lands.
"""

import pytest

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.cpu.interp import CPUCore, StopReason
from repro.cpu.isa import CSR, Cause, Op, encode
from repro.cpu.mmu import BareMMU
from repro.devices.console import CONS_STATUS, CONS_TX, ConsoleDevice
from repro.devices.irq import (
    IRQ_CONSOLE_LINE,
    IRQ_TIMER_LINE,
    IRQ_VIRTIO_BLK_LINE,
    NUM_LINES,
    PIC_STATUS,
    InterruptController,
)
from repro.devices.schedule import NEVER, EventSchedule, attach_schedule
from repro.faults import FaultInjector, FaultPlan, FaultSpec, IRQLineWatchdog
from repro.mem.costs import CostModel
from repro.mem.physmem import PhysicalMemory
from repro.util.errors import ConfigError, DeviceError

MEM = 0x40000
ENTRY = 0x1000
VEC = 0x2000


def _injector(*specs, seed=7):
    return FaultInjector(FaultPlan(seed=seed, specs=list(specs)))


def _pin(site, after=0):
    """Exactly one fault at the (after+1)-th opportunity."""
    return FaultSpec(site, rate=1.0, after=after, count=1)


def _sti_loop_image(trips):
    """STI, then a counted ADD/SUB/BNE loop, then HLT; vector counts
    deliveries in r5 and irets in place."""
    E = encode
    head = b"".join([
        E(Op.MOVI, rd=15, imm32=VEC),
        E(Op.CSRW, ra=15, simm12=int(CSR.VBAR)),
        E(Op.STI),
        E(Op.MOVI, rd=1, imm32=trips),
    ])
    loop = ENTRY + len(head)
    body = b"".join([
        E(Op.ADD, rd=2, ra=2, imm32=1),
        E(Op.SUB, rd=1, ra=1, imm32=1),
        E(Op.BNE, ra=1, rb=0, imm32=loop),
        E(Op.HLT),
    ])
    vec = E(Op.ADD, rd=5, ra=5, imm32=1) + E(Op.IRET)
    return {ENTRY: head + body, VEC: vec}


def _cpu(image, jit, events=None, injector=None, exit_on_fire=False):
    costs = CostModel()
    pm = PhysicalMemory(MEM)
    for addr, data in image.items():
        pm.write_bytes(addr, data)
    cpu = CPUCore(BareMMU(pm, costs, tlb_entries=16), costs,
                  port_bus=None, jit=jit)
    cpu.reset(ENTRY)
    if events is not None:
        pic = InterruptController(sink=cpu, injector=injector)
        attach_schedule(cpu, EventSchedule(
            events, pic, injector=injector, exit_on_fire=exit_on_fire))
    return cpu


def _snapshot(cpu):
    return (cpu.pc, cpu.halted, list(cpu.regs), list(cpu.csr),
            sorted(c.name for c in cpu.pending_irqs),
            cpu.cycles, cpu.instret)


# -- EventSchedule ----------------------------------------------------------


class TestEventSchedule:
    def test_seeded_is_deterministic(self):
        def heap(seed):
            s = EventSchedule.seeded(seed, 600, InterruptController())
            return sorted(s._heap)

        assert heap(42) == heap(42)
        assert heap(42) != heap(43)

    def test_seeded_stays_inside_horizon_timer_train(self):
        s = EventSchedule.seeded(9, 600, InterruptController())
        timer_dues = [d for d, _seq, ln in s._heap if ln == IRQ_TIMER_LINE]
        assert timer_dues, "horizon 600 always fits at least one timer"
        assert all(d < 600 for d in timer_dues)

    def test_fire_due_pops_everything_due(self):
        pic = InterruptController()
        s = EventSchedule([(5, 0), (5, 3), (9, 0), (20, 3)], pic)
        assert s.next_due == 5
        assert s.fire_due(10) == 3
        assert s.next_due == 20
        assert pic.raise_counts[0] == 2 and pic.raise_counts[3] == 1
        assert s.fire_due(25) == 1
        assert s.next_due == NEVER
        assert len(s) == 0

    def test_console_event_queues_an_input_byte(self):
        console = ConsoleDevice()
        pic = InterruptController()
        s = EventSchedule([(1, IRQ_CONSOLE_LINE)], pic, console=console)
        s.fire_due(1)
        assert console.port_read(CONS_STATUS) & 2
        assert console.port_read(CONS_TX) == ord("k")

    def test_tie_at_one_edge_fires_in_insertion_order(self):
        order = []

        class Sink:
            def assert_irq(self, cause):
                order.append(cause)

        pic = InterruptController(sink=Sink())
        s = EventSchedule([(4, IRQ_VIRTIO_BLK_LINE), (4, IRQ_TIMER_LINE)], pic)
        s.fire_due(4)
        assert order == [Cause.IRQ_DEVICE, Cause.IRQ_TIMER]


# -- the retire-edge delivery rule ------------------------------------------


class TestDeliveryRule:
    def test_interp_delivers_pinned_event(self):
        cpu = _cpu(_sti_loop_image(40), jit=False, events=[(10, 0)])
        res = cpu.run(max_instructions=10_000)
        assert res.stop is StopReason.HALT
        assert cpu.regs[5] == 1  # exactly one handler round-trip
        assert cpu.csr[CSR.ECAUSE] == int(Cause.IRQ_TIMER)

    def test_exit_on_fire_stops_at_the_exact_edge(self):
        cpu = _cpu(_sti_loop_image(40), jit=False, events=[(10, 0)],
                   exit_on_fire=True)
        res = cpu.run(max_instructions=10_000)
        assert res.stop is StopReason.EVENT
        assert cpu.instret == 10  # edge N, before the fetch of N+1
        assert Cause.IRQ_TIMER in cpu.pending_irqs

    @pytest.mark.parametrize("due", [1, 9, 10, 11, 37, 100])
    def test_jit_matches_interp_bit_for_bit(self, due):
        image = _sti_loop_image(40)
        a = _cpu(image, jit=False, events=[(due, 0), (due + 13, 3)])
        b = _cpu(image, jit=True, events=[(due, 0), (due + 13, 3)])
        ra = a.run(max_instructions=10_000)
        rb = b.run(max_instructions=10_000)
        assert ra.stop == rb.stop
        assert _snapshot(a) == _snapshot(b)
        assert a.regs[5] >= 1  # the schedule actually preempted

    def test_event_wakes_a_halted_core(self):
        E = encode
        image = {
            ENTRY: b"".join([
                E(Op.MOVI, rd=15, imm32=VEC),
                E(Op.CSRW, ra=15, simm12=int(CSR.VBAR)),
                E(Op.STI),
                E(Op.HLT),          # sleeps at retire edge 4
                E(Op.HLT),          # resumed-past-first-HLT lands here
            ]),
            VEC: E(Op.ADD, rd=5, ra=5, imm32=1) + E(Op.IRET),
        }
        for jit in (False, True):
            cpu = _cpu(image, jit=jit, events=[(4, 0)])
            res = cpu.run(max_instructions=100)
            assert res.stop is StopReason.HALT
            assert cpu.regs[5] == 1
            assert cpu.instret == 7  # 4 + handler ADD/IRET + final HLT

    def test_masked_event_stays_latched_not_delivered(self):
        E = encode
        image = {ENTRY: b"".join([
            E(Op.ADD, rd=2, ra=2, imm32=1),
            E(Op.ADD, rd=2, ra=2, imm32=1),
            E(Op.ADD, rd=2, ra=2, imm32=1),
            E(Op.HLT),
        ])}
        cpu = _cpu(image, jit=False, events=[(2, 0)])
        res = cpu.run(max_instructions=100)
        # assert_irq unhalts, but with IE clear nothing delivers and the
        # core halts again at the skid HLT... there is none: pc runs off
        # into zero words -- so bound the run instead.
        assert Cause.IRQ_TIMER in cpu.pending_irqs
        assert res.stop is not StopReason.HALT or cpu.regs[5] == 0


# -- the PR-9 wedge, audited across every VMM pump path ---------------------


class TestHLTAtDueEdgeVMM:
    """An intercepted HLT landing exactly on a due event edge must not
    wedge the pump. PR 9 fixed this for the hw-assist path by firing
    due events before the idle check; that fix lives in the *shared*
    run loop, but each engine reaches it through a different pump path
    (native pending-IRQ wake, virtual-IRQ injection, BT re-entry,
    H-mode delegated delivery) -- so every path is pinned here, with
    the event due at every edge up to and including the HLT's own
    retire edge.
    """

    CONFIGS = [
        ("hw-shadow", VirtMode.HW_ASSIST, MMUVirtMode.SHADOW),
        ("hw-nested", VirtMode.HW_ASSIST, MMUVirtMode.NESTED),
        ("hw-hmode", VirtMode.HW_ASSIST, MMUVirtMode.HMODE),
        ("bt-shadow", VirtMode.BINARY_TRANSLATION, MMUVirtMode.SHADOW),
    ]

    #: MOVI retires at 1, CSRW at 2, STI at 3, the HLT at edge 4.
    HLT_EDGE = 4

    @staticmethod
    def _sleep_image():
        E = encode
        return {
            ENTRY: b"".join([
                E(Op.MOVI, rd=15, imm32=VEC),
                E(Op.CSRW, ra=15, simm12=int(CSR.VBAR)),
                E(Op.STI),
                E(Op.HLT),
                E(Op.HLT),  # resumed-past-first-HLT lands here
            ]),
            VEC: E(Op.ADD, rd=5, ra=5, imm32=1) + E(Op.IRET),
        }

    def _run(self, virt_mode, mmu_mode, due):
        hv = Hypervisor(memory_bytes=0x800000)
        vm = hv.create_vm(GuestConfig(
            name="t", memory_bytes=0x100000, virt_mode=virt_mode,
            mmu_mode=mmu_mode, prealloc=True))
        for addr, data in self._sleep_image().items():
            vm.guest_mem.write_bytes(addr, data)
        hv.reset_vcpu(vm, ENTRY)
        cpu = vm.vcpus[0].cpu
        cpu.events = EventSchedule(
            [(due, IRQ_TIMER_LINE)], vm.pic,
            exit_on_fire=virt_mode is not VirtMode.HW_ASSIST)
        out = hv.run(vm, max_guest_instructions=100, max_cycles=2_000_000)
        return out, cpu

    @pytest.mark.parametrize("name,virt_mode,mmu_mode", CONFIGS,
                             ids=[c[0] for c in CONFIGS])
    @pytest.mark.parametrize("due", [1, 2, 3, HLT_EDGE])
    def test_due_edge_never_wedges_the_pump(self, name, virt_mode,
                                            mmu_mode, due):
        out, cpu = self._run(virt_mode, mmu_mode, due)
        # Not CYCLE_LIMIT (the wedge's signature: the pump spinning or
        # fast-forwarding forever) and not a sleep-through: the handler
        # ran exactly once, whether the event preceded the HLT or hit
        # its exact retire edge.
        assert out is RunOutcome.HALTED
        assert cpu.regs[5] == 1
        assert not cpu.pending_irqs

    @pytest.mark.parametrize("name,virt_mode,mmu_mode", CONFIGS,
                             ids=[c[0] for c in CONFIGS])
    def test_hlt_edge_wake_matches_bare_core(self, name, virt_mode,
                                             mmu_mode):
        # The due-at-HLT-edge wake must land at the same architectural
        # point as on a bare machine: handler round-trip, then the
        # second HLT -- 7 retired instructions, identically numbered
        # in every engine (BT callouts retire like intercepted-and-
        # emulated instructions).
        bare = _cpu(self._sleep_image(), jit=False,
                    events=[(self.HLT_EDGE, IRQ_TIMER_LINE)])
        bare.run(max_instructions=100)
        assert bare.instret == 7
        out, cpu = self._run(virt_mode, mmu_mode, self.HLT_EDGE)
        assert out is RunOutcome.HALTED
        assert cpu.instret == bare.instret
        assert cpu.regs[5] == bare.regs[5] == 1


# -- InterruptController edges ----------------------------------------------


class TestControllerEdges:
    def test_ack_of_never_raised_line_is_a_noop(self):
        pic = InterruptController()
        pic.port_write(PIC_STATUS, 1 << 9)
        assert pic.pending_mask() == 0
        assert pic.raised_count == 0

    def test_out_of_range_lines_rejected(self):
        pic = InterruptController()
        with pytest.raises(DeviceError):
            pic.raise_line(NUM_LINES)
        with pytest.raises(DeviceError):
            pic.raise_line(-1)
        with pytest.raises(DeviceError):
            pic.line(NUM_LINES)

    def test_double_raise_is_idempotent_and_counted(self):
        pic = InterruptController()
        pic.raise_line(3)
        pic.raise_line(3)
        assert pic.pending_mask() == 1 << 3
        assert pic.raised_count == 2
        assert pic.coalesced_count == 1
        assert pic.metrics.counter("coalesced.line3").value == 1

    def test_timer_beats_device_when_lines_race(self):
        # Both causes latched at the same retire edge: the CPU must
        # take the timer first, then the device cause on the next edge.
        image = {ENTRY: encode(Op.STI) + encode(Op.HLT) * 4,
                 VEC: encode(Op.IRET)}
        cpu = _cpu(image, jit=False)
        cpu.csr[CSR.VBAR] = VEC
        pic = InterruptController(sink=cpu)
        pic.raise_line(IRQ_VIRTIO_BLK_LINE)
        pic.raise_line(IRQ_TIMER_LINE)
        cpu.csr[CSR.IE] = 1
        cpu.step()
        assert cpu.csr[CSR.ECAUSE] == int(Cause.IRQ_TIMER)
        assert cpu.pending_irqs == {Cause.IRQ_DEVICE}
        cpu.csr[CSR.IE] = 1  # delivery cleared it
        cpu.step()
        assert cpu.csr[CSR.ECAUSE] == int(Cause.IRQ_DEVICE)
        assert not cpu.pending_irqs


# -- IRQ fault sites --------------------------------------------------------


class TestIRQFaultSites:
    def test_lost_drops_the_raise_entirely(self):
        causes = []

        class Sink:
            def assert_irq(self, cause):
                causes.append(cause)

        inj = _injector(_pin("irq.lost"))
        pic = InterruptController(sink=Sink(), injector=inj)
        pic.raise_line(0)
        pic.raise_line(0)
        assert pic.lost_count == 1
        assert pic.raised_count == 1  # only the second landed
        assert causes == [Cause.IRQ_TIMER]

    def test_spurious_asserts_device_cause_with_no_line(self):
        causes = []

        class Sink:
            def assert_irq(self, cause):
                causes.append(cause)

        inj = _injector(_pin("irq.spurious"))
        pic = InterruptController(sink=Sink(), injector=inj)
        pic.raise_line(IRQ_TIMER_LINE)
        assert pic.spurious_count == 1
        assert causes == [Cause.IRQ_TIMER, Cause.IRQ_DEVICE]
        assert pic.pending_mask() == 1 << IRQ_TIMER_LINE  # no device bit

    def test_delayed_pushes_the_event_back(self):
        inj = _injector(_pin("irq.delayed"))
        pic = InterruptController()
        s = EventSchedule([(5, 0)], pic, injector=inj)
        assert s.fire_due(5) == 0
        assert s.deferred_count == 1
        assert 5 < s.next_due <= 5 + 8
        assert s.fire_due(s.next_due) == 1  # lands late, not lost
        assert pic.raise_counts[0] == 1

    def test_storm_requeues_consecutive_edges(self):
        inj = _injector(_pin("irq.storm"))
        pic = InterruptController()
        s = EventSchedule([(5, 0)], pic, injector=inj)
        assert s.fire_due(5) == 1
        assert 1 <= s.storm_extra <= 4
        assert len(s) == s.storm_extra
        assert s.next_due == 6  # the burst starts at the very next edge

    def test_faulted_schedule_still_bit_identical_across_engines(self):
        image = _sti_loop_image(60)
        specs = [FaultSpec("irq.delayed", rate=0.5),
                 FaultSpec("irq.storm", rate=0.5),
                 FaultSpec("irq.lost", rate=0.3),
                 FaultSpec("irq.spurious", rate=0.3)]
        events = [(7, 0), (19, 3), (33, 0), (60, 3)]
        a = _cpu(image, jit=False, events=events,
                 injector=_injector(*specs, seed=99))
        b = _cpu(image, jit=True, events=events,
                 injector=_injector(*specs, seed=99))
        a.run(max_instructions=10_000)
        b.run(max_instructions=10_000)
        assert _snapshot(a) == _snapshot(b)


# -- IRQLineWatchdog --------------------------------------------------------


class TestIRQLineWatchdog:
    def test_stuck_line_is_detected_and_force_acked(self):
        pic = InterruptController()
        dog = IRQLineWatchdog(pic, stuck_polls=3)
        pic.raise_line(4)
        assert dog.check() == []  # raise visible this poll: not stuck
        assert dog.check() == []
        assert dog.check() == []
        assert dog.check() == [("stuck", 4)]
        assert not pic.pending[4]  # recovery: force-acknowledged
        assert dog.stuck_lines == 1
        assert dog.metrics.counter("stuck.line4").value == 1

    def test_serviced_line_never_trips(self):
        pic = InterruptController()
        dog = IRQLineWatchdog(pic, stuck_polls=2)
        pic.raise_line(4)
        dog.check()
        pic.port_write(PIC_STATUS, 1 << 4)  # guest acks in time
        assert dog.check() == []
        assert dog.stuck_lines == 0

    def test_fresh_raises_reset_the_streak(self):
        pic = InterruptController()
        dog = IRQLineWatchdog(pic, stuck_polls=2)
        pic.raise_line(4)
        dog.check()
        pic.raise_line(4)  # still being raised: line is live, not stuck
        assert dog.check() == []

    def test_storm_detected_from_raise_rate(self):
        pic = InterruptController()
        dog = IRQLineWatchdog(pic, storm_threshold=8)
        for _ in range(8):
            pic.raise_line(2)
        events = dog.check()
        assert ("storm", 2) in events
        assert dog.storms_detected == 1
        assert dog.check() == [] or dog.check()[0][0] == "stuck"

    def test_config_validation(self):
        pic = InterruptController()
        with pytest.raises(ConfigError):
            IRQLineWatchdog(pic, stuck_polls=0)
        with pytest.raises(ConfigError):
            IRQLineWatchdog(pic, storm_threshold=0)
        with pytest.raises(ConfigError):
            IRQLineWatchdog(object())


# -- console RX path --------------------------------------------------------


class TestConsoleRX:
    def test_rx_queue_and_status_bit(self):
        console = ConsoleDevice()
        assert console.port_read(CONS_STATUS) == 1  # TX ready, no RX
        console.push_input(0x41)
        console.push_input(0x42)
        assert console.port_read(CONS_STATUS) == 3
        assert console.port_read(CONS_TX) == 0x41
        assert console.port_read(CONS_TX) == 0x42
        assert console.chars_received == 2
        assert console.port_read(CONS_TX) == 0  # empty: reads as zero

    def test_push_raises_bound_irq_line(self):
        pic = InterruptController()
        console = ConsoleDevice(irq=pic.line(IRQ_CONSOLE_LINE))
        console.push_input(0x6B)
        assert pic.pending_mask() == 1 << IRQ_CONSOLE_LINE
