"""Functional live migration of real VMs."""

import pytest

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.migration import LiveMigrator
from repro.util.errors import MigrationError
from repro.util.units import MIB

GUEST_MEM = 16 * MIB
PAGES, PASSES = 32, 2500


def start_guest(virt_mode, mmu_mode, warmup=100_000):
    src = Hypervisor(memory_bytes=64 * MIB)
    dst = Hypervisor(memory_bytes=64 * MIB)
    vm = src.create_vm(GuestConfig(name="m", memory_bytes=GUEST_MEM,
                                   virt_mode=virt_mode, mmu_mode=mmu_mode))
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEM))
    src.load_program(vm, kernel)
    src.load_program(vm, workloads.memtouch(PAGES, PASSES))
    src.reset_vcpu(vm, kernel.entry)
    src.run(vm, max_guest_instructions=warmup)
    return src, dst, vm


@pytest.mark.parametrize("vmode,mmode", [
    (VirtMode.HW_ASSIST, MMUVirtMode.NESTED),
    (VirtMode.HW_ASSIST, MMUVirtMode.SHADOW),
    (VirtMode.TRAP_EMULATE, MMUVirtMode.SHADOW),
    (VirtMode.BINARY_TRANSLATION, MMUVirtMode.SHADOW),
])
def test_migrated_guest_finishes_correctly(vmode, mmode):
    src, dst, vm = start_guest(vmode, mmode)
    migrator = LiveMigrator(src, dst, bytes_per_cycle=4.0)
    result = migrator.migrate(vm, quantum_instructions=30_000, max_rounds=5,
                              threshold_pages=4)
    outcome = dst.run(result.dest_vm, max_guest_instructions=60_000_000)
    diag = read_diag(result.dest_vm.guest_mem)
    assert outcome is RunOutcome.SHUTDOWN
    assert diag.user_result == expected_memtouch(PAGES, PASSES)
    assert diag.fault_cause == 0


def test_rounds_track_working_set():
    src, dst, vm = start_guest(VirtMode.HW_ASSIST, MMUVirtMode.NESTED)
    migrator = LiveMigrator(src, dst, bytes_per_cycle=4.0)
    result = migrator.migrate(vm, quantum_instructions=30_000, max_rounds=5,
                              threshold_pages=4)
    assert result.rounds == 5  # never converges below the working set
    assert result.round_sizes[0] == vm.num_pages
    # Steady-state rounds carry roughly the touched working set
    # (32 heap pages plus a few kernel/diag pages).
    for size in result.round_sizes[1:-1]:
        assert PAGES - 5 <= size <= PAGES + 16


def test_downtime_scales_with_final_round():
    src, dst, vm = start_guest(VirtMode.HW_ASSIST, MMUVirtMode.NESTED)
    migrator = LiveMigrator(src, dst, bytes_per_cycle=4.0)
    result = migrator.migrate(vm, quantum_instructions=30_000)
    expected = int(
        (result.final_round_pages * 4096 + 4096) / 4.0
    )
    assert result.downtime_cycles == expected


def test_console_and_disk_state_travel():
    src, dst, vm = start_guest(VirtMode.HW_ASSIST, MMUVirtMode.NESTED)
    vm.devices["virtio_blk"].data[0:4] = b"DATA"
    migrator = LiveMigrator(src, dst, bytes_per_cycle=4.0)
    result = migrator.migrate(vm)
    assert result.dest_vm.devices["console"].text == vm.devices["console"].text
    assert bytes(result.dest_vm.devices["virtio_blk"].data[0:4]) == b"DATA"


def test_guest_runs_during_migration():
    src, dst, vm = start_guest(VirtMode.HW_ASSIST, MMUVirtMode.NESTED)
    migrator = LiveMigrator(src, dst, bytes_per_cycle=4.0)
    result = migrator.migrate(vm, quantum_instructions=25_000, max_rounds=6)
    assert result.guest_instructions_during >= 25_000 * 4


def test_source_dirty_tracking_is_detached_after():
    src, dst, vm = start_guest(VirtMode.HW_ASSIST, MMUVirtMode.NESTED)
    migrator = LiveMigrator(src, dst, bytes_per_cycle=4.0)
    migrator.migrate(vm)
    assert vm.name not in src.dirty_handlers
    assert vm.guest_mem.write_hook is None


def test_invalid_bandwidth_rejected():
    src = Hypervisor(memory_bytes=64 * MIB)
    dst = Hypervisor(memory_bytes=64 * MIB)
    with pytest.raises(MigrationError):
        LiveMigrator(src, dst, bytes_per_cycle=0)
