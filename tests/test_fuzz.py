"""Differential fuzzer tests: determinism, shrinking, bug shims, corpus.

The fuzzer's whole value is byte-reproducibility: the same root seed
must generate the same cases, campaigns must not depend on worker
count, and the shrinker must produce the same minimal repro every
time. The committed corpus under ``tests/fuzz_corpus/`` is replayed
both ways -- it must still flag under the bug shim it was recorded
against and must pass clean at HEAD.
"""

import os

import pytest

from repro.fuzz import gen
from repro.fuzz.bugs import apply_bug, known_bugs
from repro.fuzz.campaign import manifest_identity, run_campaign
from repro.fuzz.corpus import load_corpus, replay_entry
from repro.fuzz.diff import default_opts, run_case
from repro.fuzz.shrink import shrink_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")

#: A case that diverges under the reintroduced PR-5 trap-vector bug
#: (found by campaign, pinned here so the shrinker tests are fast).
#: Re-pinned twice: when seeded event schedules went default-on (the
#: old (3, 10) stopped reproducing), and again when the H-mode
#: templates joined the generator and reshuffled every seed's draws
#: ((13, 13) went clean). This one shrinks to a single cell.
PR5_SEED, PR5_CASE = 1, 15


# -- generator determinism --------------------------------------------------


class TestGeneratorDeterminism:
    def test_same_seed_same_cases(self):
        for index in range(8):
            a = gen.generate_case(41, index)
            b = gen.generate_case(41, index)
            assert a.cells == b.cells
            assert a.layout == b.layout
            assert a.template_counts == b.template_counts

    def test_different_seeds_differ(self):
        a = gen.generate_case(41, 0)
        b = gen.generate_case(42, 0)
        assert a.cells != b.cells

    def test_layout_rederives_from_identity(self):
        spec = gen.generate_case(43, 5)
        assert gen.derive_layout(43, 5) == spec.layout

    def test_image_segments_fit_memory(self):
        for index in range(6):
            spec = gen.generate_case(44, index)
            for addr, data in gen.build_image(spec).items():
                assert addr + len(data) <= gen.MEM_BYTES


# -- interrupt-enabled generation -------------------------------------------


class TestInterruptTemplates:
    def test_generator_emits_interrupt_templates(self):
        counts = {}
        for case in range(20):
            for k, v in gen.generate_case(61, case).template_counts.items():
                counts[k] = counts.get(k, 0) + v
        for name in ("sti_cli", "irq_loop", "iret_ie", "kick_storm"):
            assert counts.get(name, 0) >= 1, f"{name} never generated"

    def test_generator_emits_hmode_templates(self):
        # Delegation-CSR churn and two-stage paging stress must appear:
        # they are the generator's only direct H-mode surface (the
        # hw-hmode backend runs *every* case, but these cells exercise
        # the virtualized CSRs and the exit-free PTBR/INVLPG path).
        counts = {}
        for case in range(20):
            for k, v in gen.generate_case(61, case).template_counts.items():
                counts[k] = counts.get(k, 0) + v
        for name in ("hdeleg", "two_stage"):
            assert counts.get(name, 0) >= 1, f"{name} never generated"

    def test_estatus_writes_are_not_masked(self):
        # The old generator forced IE clear in every CSRW-to-ESTATUS;
        # with delivery deterministic the bit must survive. Scan enough
        # csrw cells to see at least one ESTATUS write with bit1 set.
        from repro.cpu.isa import CSR, Op, decode

        saw_ie = False
        for case in range(120):
            spec = gen.generate_case(83, case)
            for cell in spec.cells:
                words = [int.from_bytes(cell[i:i + 4], "little")
                         for i in range(0, len(cell), 4)]
                for j in range(len(words) - 2):
                    try:
                        movi = decode(words[j], words[j + 1])
                        csrw = decode(words[j + 2],
                                      words[j + 3] if j + 3 < len(words) else 0)
                    except Exception:
                        continue
                    if (movi.op is Op.MOVI and csrw.op is Op.CSRW
                            and (csrw.simm12 & 0xFFF) == int(CSR.ESTATUS)
                            and movi.imm32 & 2):
                        saw_ie = True
            if saw_ie:
                break
        assert saw_ie

    @pytest.mark.parametrize("case", [56, 135, 241])
    def test_seed1_interrupt_cases_stay_clean(self, case):
        # The first unmasked-IE campaign flagged these: case 56 wedged
        # hardware-assist on a HLT intercepted exactly at a due retire
        # edge (the pump loop never fired the event that should wake
        # it), and 135/241 ran stale BT items after an intra-block
        # self-modifying store (the bare JIT had the epoch bail, the
        # translator did not). Both fixed; keep them clean.
        opts = default_opts()
        opts["fault_rate"] = 0.05
        result = run_case(1, case, opts)
        assert result["verdict"]["kind"] == "ok", result["verdict"]

    def test_events_off_and_on_reach_different_states(self):
        # The schedule must actually change execution somewhere in a
        # small sweep -- otherwise delivery is silently disabled.
        from repro.fuzz.diff import run_bare

        differed = False
        for i in range(6):
            segments = gen.build_image(gen.generate_case(61, i))
            plain = run_bare(segments, jit=False)
            scheduled = run_bare(segments, jit=False, event_seed=i + 1)
            if (plain["instret"], plain["regs"], plain["mem"]) != (
                    scheduled["instret"], scheduled["regs"], scheduled["mem"]):
                differed = True
                break
        assert differed


# -- campaign ---------------------------------------------------------------


class TestCampaign:
    def test_jobs_do_not_change_results(self, tmp_path):
        # Worker fan-out is an implementation detail: the manifest
        # (minus wall-clock timing) must be byte-identical.
        opts = default_opts()
        serial = run_campaign(61, 10, jobs=1, opts=opts)
        fanned = run_campaign(61, 10, jobs=2, opts=opts)
        assert (manifest_identity(serial["manifest"])
                == manifest_identity(fanned["manifest"]))

    def test_ic_loop_cases_shard_identically(self):
        # The seed-61 range is rich in inline-cache stress loops
        # (invlpg/root-switch/SMC mid-loop); their verdicts and outcome
        # classes must not depend on worker fan-out.
        counts = {}
        for case in range(10):
            for k, v in gen.generate_case(61, case).template_counts.items():
                counts[k] = counts.get(k, 0) + v
        assert counts.get("ic_loop", 0) >= 5
        opts = default_opts()
        serial = run_campaign(61, 10, jobs=1, opts=opts)
        fanned = run_campaign(61, 10, jobs=3, opts=opts)
        assert (manifest_identity(serial["manifest"])
                == manifest_identity(fanned["manifest"]))

    def test_clean_campaign_has_no_failures(self):
        out = run_campaign(61, 6, jobs=1, opts=default_opts())
        assert out["failures"] == []
        fz = out["manifest"]["extra"]["fuzz"]
        assert fz["cases"] == 6
        assert sum(fz["outcome_classes"].values()) >= 6

    def test_campaign_writes_artifacts(self, tmp_path):
        opts = default_opts()
        opts["bug"] = "pr5-vector-loop"
        out = run_campaign(PR5_SEED, PR5_CASE + 1, jobs=1, opts=opts,
                           shrink=True, out_dir=str(tmp_path))
        assert out["failures"]
        names = sorted(os.listdir(tmp_path))
        assert "manifest.json" in names
        assert any(n.startswith("repro-") and n.endswith(".json")
                   for n in names)
        assert any(n.endswith(".py") for n in names)


# -- bug shims and shrinking ------------------------------------------------


class TestBugShims:
    def test_known_bugs_listed(self):
        assert "pr5-vector-loop" in known_bugs()
        assert "bt-stale-smc" in known_bugs()

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError):
            with apply_bug("no-such-bug"):
                pass

    def test_pr5_bug_caught_and_shrinks_small(self):
        opts = default_opts()
        opts["bug"] = "pr5-vector-loop"
        original = run_case(PR5_SEED, PR5_CASE, opts)
        assert original["verdict"]["kind"] != "ok"
        shrunk = shrink_case(PR5_SEED, PR5_CASE, opts, original)
        assert shrunk["result"]["verdict"]["kind"] != "ok"
        assert shrunk["body_instructions"] < 20

    def test_shrinker_is_deterministic(self):
        opts = default_opts()
        opts["bug"] = "pr5-vector-loop"
        original = run_case(PR5_SEED, PR5_CASE, opts)
        a = shrink_case(PR5_SEED, PR5_CASE, opts, original)
        b = shrink_case(PR5_SEED, PR5_CASE, opts, original)
        assert a["cells"] == b["cells"]  # byte-identical minimal repro
        assert a["evals"] == b["evals"]


# -- committed corpus -------------------------------------------------------


def _corpus_entries():
    return load_corpus(CORPUS_DIR)


class TestCorpusReplay:
    def test_corpus_is_nonempty(self):
        entries = _corpus_entries()
        assert len(entries) >= 2
        bugs = {e["opts"].get("bug") for e in entries}
        assert "pr5-vector-loop" in bugs
        assert "bt-stale-smc" in bugs

    @pytest.mark.parametrize(
        "entry", _corpus_entries(),
        ids=lambda e: f"{e['opts'].get('bug')}-s{e['root_seed']}"
                      f"-c{e['case_index']}")
    def test_entry_flags_under_shim_and_passes_at_head(self, entry):
        buggy = replay_entry(entry, with_bug=True)
        assert buggy["verdict"]["kind"] == entry["verdict"]["kind"]
        clean = replay_entry(entry, with_bug=False)
        assert clean["verdict"]["kind"] == "ok", (
            "committed corpus repro regressed at HEAD: "
            f"{clean['verdict']}"
        )
