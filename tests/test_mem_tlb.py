"""Software TLB."""

import pytest

from repro.mem.paging import (
    AccessType,
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_NOEXEC,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    make_pte,
)
from repro.mem.tlb import TLB


def entry(pfn=1, flags=PTE_PRESENT | PTE_WRITABLE | PTE_USER | PTE_ACCESSED | PTE_DIRTY):
    return make_pte(pfn, flags)


def test_miss_then_hit():
    tlb = TLB(4)
    assert tlb.lookup(5, AccessType.READ, user=False) is None
    tlb.insert(5, entry())
    assert tlb.lookup(5, AccessType.READ, user=False) == entry()
    assert tlb.stats.misses == 1 and tlb.stats.hits == 1


def test_lru_eviction_order():
    tlb = TLB(2)
    tlb.insert(1, entry(1))
    tlb.insert(2, entry(2))
    tlb.lookup(1, AccessType.READ, user=False)  # 1 becomes MRU
    tlb.insert(3, entry(3))  # evicts 2
    assert 1 in tlb and 3 in tlb and 2 not in tlb
    assert tlb.stats.evictions == 1


def test_user_bit_enforced_on_hit():
    tlb = TLB(4)
    tlb.insert(1, entry(flags=PTE_PRESENT | PTE_ACCESSED))  # kernel-only
    assert tlb.lookup(1, AccessType.READ, user=True) is None  # miss
    assert tlb.lookup(1, AccessType.READ, user=False) is not None


def test_write_requires_writable_and_dirty():
    tlb = TLB(4)
    # writable but not dirty: a write must miss (hardware re-walks to
    # set D before the store commits).
    tlb.insert(1, entry(flags=PTE_PRESENT | PTE_WRITABLE | PTE_ACCESSED))
    assert tlb.lookup(1, AccessType.WRITE, user=False) is None
    tlb.insert(1, entry(flags=PTE_PRESENT | PTE_WRITABLE | PTE_ACCESSED | PTE_DIRTY))
    assert tlb.lookup(1, AccessType.WRITE, user=False) is not None
    # read-only entry also misses on write
    tlb.insert(2, entry(flags=PTE_PRESENT | PTE_ACCESSED | PTE_DIRTY))
    assert tlb.lookup(2, AccessType.WRITE, user=False) is None


def test_noexec_blocks_fetch_hits():
    tlb = TLB(4)
    tlb.insert(1, entry(flags=PTE_PRESENT | PTE_ACCESSED | PTE_NOEXEC))
    assert tlb.lookup(1, AccessType.EXEC, user=False) is None
    assert tlb.lookup(1, AccessType.READ, user=False) is not None


def test_invalidate_single_entry():
    tlb = TLB(4)
    tlb.insert(1, entry())
    tlb.insert(2, entry())
    tlb.invalidate(1)
    assert 1 not in tlb and 2 in tlb
    assert tlb.stats.invalidations == 1
    tlb.invalidate(99)  # not present: no count
    assert tlb.stats.invalidations == 1


def test_flush_clears_everything():
    tlb = TLB(4)
    for vpn in range(4):
        tlb.insert(vpn, entry())
    tlb.flush()
    assert len(tlb) == 0
    assert tlb.stats.flushes == 1


def test_reinsert_updates_in_place():
    tlb = TLB(2)
    tlb.insert(1, entry(pfn=1))
    tlb.insert(1, entry(pfn=2))
    assert len(tlb) == 1
    pte = tlb.lookup(1, AccessType.READ, user=False)
    assert pte >> 12 == 2


def test_hit_rate_and_reset():
    tlb = TLB(4)
    tlb.insert(1, entry())
    tlb.lookup(1, AccessType.READ, user=False)
    tlb.lookup(2, AccessType.READ, user=False)
    assert tlb.stats.accesses == 2
    assert tlb.stats.hit_rate == pytest.approx(0.5)
    snap = tlb.stats.reset()
    assert snap.hits == 1
    assert tlb.stats.accesses == 0
    assert TLB(1).stats.hit_rate == 0.0


def test_capacity_validation():
    with pytest.raises(ValueError):
        TLB(0)
