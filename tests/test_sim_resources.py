"""Resources and token buckets."""

import pytest

from repro.sim.kernel import SEC, Simulator, Timeout
from repro.sim.resources import Resource, TokenBucket


def test_resource_serializes_holders():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def worker(name, hold):
        yield from res.acquire()
        log.append((name, "in", sim.now))
        yield Timeout(hold)
        log.append((name, "out", sim.now))
        res.release()

    sim.spawn(worker("a", 10))
    sim.spawn(worker("b", 5))
    sim.run()
    assert log == [
        ("a", "in", 0), ("a", "out", 10),
        ("b", "in", 10), ("b", "out", 15),
    ]


def test_resource_capacity_two_admits_two():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    entered = []

    def worker(name):
        yield from res.acquire()
        entered.append((name, sim.now))
        yield Timeout(10)
        res.release()

    for name in "abc":
        sim.spawn(worker(name))
    sim.run()
    assert entered == [("a", 0), ("b", 0), ("c", 10)]


def test_release_without_acquire_rejected():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_available_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=3)

    def worker():
        yield from res.acquire()
        yield Timeout(5)
        res.release()

    assert res.available == 3
    sim.spawn(worker())
    sim.run(until=1)
    assert res.available == 2
    sim.run()
    assert res.available == 3


def test_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


class TestTokenBucket:
    def test_burst_then_throttle(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=10.0, burst=5.0)  # 10 tokens/sec
        times = []

        def consumer():
            for _ in range(3):
                yield from bucket.consume(5.0)
                times.append(sim.now)

        proc = sim.spawn(consumer())
        sim.run_until_process(proc)
        assert times[0] == 0  # burst satisfies the first request
        # Each further 5-token request needs ~0.5 simulated seconds.
        assert times[1] == pytest.approx(0.5 * SEC, rel=0.01)
        assert times[2] == pytest.approx(1.0 * SEC, rel=0.01)

    def test_request_above_burst_rejected(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=1.0, burst=2.0)

        def consumer():
            yield from bucket.consume(3.0)

        sim.spawn(consumer())
        with pytest.raises(ValueError):
            sim.run()

    def test_nonpositive_consume_rejected(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=1.0, burst=1.0)

        def consumer():
            yield from bucket.consume(0)

        sim.spawn(consumer())
        with pytest.raises(ValueError):
            sim.run()

    def test_peek_refills_over_time(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=2.0, burst=10.0)

        def consumer():
            yield from bucket.consume(10.0)
            yield Timeout(1 * SEC)

        proc = sim.spawn(consumer())
        sim.run_until_process(proc)
        assert bucket.peek() == pytest.approx(2.0, rel=0.01)

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TokenBucket(sim, rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(sim, rate=1, burst=0)
