"""Hypervisor-under-hypervisor: inner software VMMs in an H-mode guest.

The differential contract: an L2 guest managed by an inner hypervisor
whose "physical" memory is an H-mode L1 guest's RAM must be
indistinguishable -- on every piece of guest-visible state -- from the
same L2 configuration run on a plain host hypervisor. H-mode hosting
changes *where* the inner VMM's bytes live, never what its software
shadow/nested paths compute.
"""

import pytest

from repro.core import (
    GuestConfig,
    Hypervisor,
    MMUVirtMode,
    VirtMode,
    build_nested_host,
    create_l2_vm,
    guest_ram_window,
)
from repro.guest import KernelOptions, boot_vm, build_kernel, workloads
from repro.util.errors import ConfigError, MemoryError_
from repro.util.units import MIB, PAGE_SHIFT

L2_MEMORY = 16 * MIB
MAX_INSTRUCTIONS = 30_000_000

INNER_PATHS = [
    ("hw-shadow", VirtMode.HW_ASSIST, MMUVirtMode.SHADOW),
    ("hw-nested", VirtMode.HW_ASSIST, MMUVirtMode.NESTED),
]


def _boot_l2(hv, vm, workload):
    kernel = build_kernel(KernelOptions(pv=False, memory_bytes=L2_MEMORY))
    return boot_vm(hv, vm, kernel, workload, MAX_INSTRUCTIONS)


def _guest_visible(vm, diag):
    """Everything an L2 guest could observe about its own execution."""
    cpu = vm.vcpus[0].cpu
    return {
        "regs": list(cpu.regs),
        "pc": cpu.pc,
        "csr": list(cpu.csr),
        "instret": cpu.instret,
        "cycles": cpu.cycles,
        "halted": vm.vcpus[0].halted,
        "console": vm.device("console").text,
        "diag": diag,
        "memory": vm.guest_mem.read_bytes(0, vm.guest_mem.size),
    }


def test_l1_ram_window_is_contiguous():
    host = build_nested_host()
    base, size = host.window
    assert base % (1 << PAGE_SHIFT) == 0
    assert size == host.l1_vm.guest_mem.num_pages << PAGE_SHIFT
    assert host.inner.physmem.size == size
    # The window really is the L1 guest's backing, frame by frame.
    for gfn in (0, 1, host.l1_vm.guest_mem.num_pages - 1):
        hfn = host.l1_vm.guest_mem.map[gfn]
        assert hfn == (base >> PAGE_SHIFT) + gfn


def test_guest_ram_window_rejects_holes_and_scatter():
    hv = Hypervisor(memory_bytes=64 * MIB)
    vm = hv.create_vm(GuestConfig(name="g", memory_bytes=4 * MIB,
                                  virt_mode=VirtMode.HW_ASSIST,
                                  mmu_mode=MMUVirtMode.HMODE))
    # Scatter: swap two frames.
    vm.guest_mem.map[0], vm.guest_mem.map[1] = (
        vm.guest_mem.map[1], vm.guest_mem.map[0])
    with pytest.raises(MemoryError_):
        guest_ram_window(vm)
    vm.guest_mem.map[0], vm.guest_mem.map[1] = (
        vm.guest_mem.map[1], vm.guest_mem.map[0])
    # Hole: unmap a gfn (a ballooned guest has no flat window).
    vm.guest_mem.unmap_page(1)
    with pytest.raises(MemoryError_):
        guest_ram_window(vm)


def test_l2_hmode_rejected():
    host = build_nested_host()
    with pytest.raises(ConfigError):
        create_l2_vm(host, VirtMode.HW_ASSIST, MMUVirtMode.HMODE)


@pytest.mark.parametrize("label,vmode,mmode", INNER_PATHS)
def test_l2_boots_inside_hmode_guest(label, vmode, mmode):
    host = build_nested_host()
    vm = create_l2_vm(host, vmode, mmode, name=f"l2-{label}")
    diag = _boot_l2(host.inner, vm, workloads.memtouch())
    assert diag.clean
    assert diag.user_result == workloads.expected_memtouch()
    # The L2 state is physically inside the L1 guest: the kernel image,
    # located through the inner VMM's own gPA map, reads back identical
    # through the OUTER guest's guest-physical space.
    kernel = build_kernel(KernelOptions(pv=False, memory_bytes=L2_MEMORY))
    hpa = vm.guest_mem.gpa_to_hpa(kernel.base)
    image = host.inner.physmem.read_bytes(hpa, 4096)
    assert any(image)
    assert host.l1_vm.guest_mem.read_bytes(hpa, 4096) == image


@pytest.mark.parametrize("label,vmode,mmode", INNER_PATHS)
def test_l2_differential_vs_plain_host(label, vmode, mmode):
    # Inside the H-mode guest.
    host = build_nested_host()
    nested_vm = create_l2_vm(host, vmode, mmode, name="l2")
    nested_diag = _boot_l2(host.inner, nested_vm, workloads.memtouch())

    # The same configuration on a plain host hypervisor.
    plain_hv = Hypervisor(memory_bytes=24 * MIB)
    plain_vm = plain_hv.create_vm(
        GuestConfig(name="l2", memory_bytes=L2_MEMORY,
                    virt_mode=vmode, mmu_mode=mmode)
    )
    plain_diag = _boot_l2(plain_hv, plain_vm, workloads.memtouch())

    nested_state = _guest_visible(nested_vm, nested_diag)
    plain_state = _guest_visible(plain_vm, plain_diag)
    assert nested_state.keys() == plain_state.keys()
    for key in nested_state:
        assert nested_state[key] == plain_state[key], key
