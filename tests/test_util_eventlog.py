"""Bounded event log."""

import pytest

from repro.util.eventlog import Event, EventLog


def test_emit_and_iterate():
    log = EventLog(capacity=10)
    log.emit(1, "sched", "dispatch", task="vm0")
    log.emit(2, "mmu", "fill")
    events = list(log)
    assert len(events) == 2
    assert events[0].category == "sched"
    assert events[0].payload == {"task": "vm0"}
    assert events[1].time == 2


def test_capacity_bound_drops_oldest():
    log = EventLog(capacity=3)
    for i in range(5):
        log.emit(i, "c", f"m{i}")
    assert len(log) == 3
    assert log.dropped == 2
    assert log.total == 5
    assert [e.message for e in log] == ["m2", "m3", "m4"]


def test_disabled_log_records_nothing():
    log = EventLog(enabled=False)
    log.emit(1, "c", "m")
    assert len(log) == 0
    assert log.total == 0


def test_filter_by_category_and_time():
    log = EventLog()
    log.emit(1, "a", "x")
    log.emit(2, "b", "y")
    log.emit(3, "a", "z")
    assert [e.message for e in log.filter(category="a")] == ["x", "z"]
    assert [e.message for e in log.filter(since=2)] == ["y", "z"]
    assert [e.message for e in log.filter(category="a", since=2)] == ["z"]


def test_clear_resets_counters():
    log = EventLog(capacity=2)
    for i in range(4):
        log.emit(i, "c", "m")
    log.clear()
    assert len(log) == 0 and log.dropped == 0 and log.total == 0


def test_event_str_contains_fields():
    text = str(Event(7, "io", "kick", {"port": 4}))
    assert "7" in text and "io" in text and "kick" in text and "port" in text


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        EventLog(capacity=0)
