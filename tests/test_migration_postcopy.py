"""Functional post-copy migration."""

import pytest

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.migration import LiveMigrator, PostCopyMigrator
from repro.util.errors import MigrationError
from repro.util.units import MIB

GUEST_MEM = 16 * MIB
PAGES, PASSES = 28, 2500


def start_guest(mmu_mode=MMUVirtMode.NESTED):
    src = Hypervisor(memory_bytes=64 * MIB)
    dst = Hypervisor(memory_bytes=64 * MIB)
    vm = src.create_vm(GuestConfig(name="pc", memory_bytes=GUEST_MEM,
                                   virt_mode=VirtMode.HW_ASSIST,
                                   mmu_mode=mmu_mode))
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEM))
    src.load_program(vm, kernel)
    src.load_program(vm, workloads.memtouch(PAGES, PASSES))
    src.reset_vcpu(vm, kernel.entry)
    src.run(vm, max_guest_instructions=100_000)
    return src, dst, vm


def test_guest_resumes_remotely_and_finishes_correctly():
    src, dst, vm = start_guest()
    migrator = PostCopyMigrator(src, dst, bytes_per_cycle=4.0)
    result = migrator.migrate_and_run(vm)
    diag = read_diag(result.dest_vm.guest_mem)
    assert result.outcome is RunOutcome.SHUTDOWN
    assert diag.user_result == expected_memtouch(PAGES, PASSES)
    assert diag.fault_cause == 0


def test_every_page_arrives_exactly_once():
    src, dst, vm = start_guest()
    migrator = PostCopyMigrator(src, dst, bytes_per_cycle=4.0)
    result = migrator.migrate_and_run(vm)
    assert result.remote_faults + result.pushed_pages == result.total_pages
    assert result.dest_vm.guest_mem.map.keys() == vm.guest_mem.map.keys()


def test_downtime_is_tiny_compared_to_precopy():
    src, dst, vm = start_guest()
    post = PostCopyMigrator(src, dst, bytes_per_cycle=4.0).migrate_and_run(vm)

    src2, dst2, vm2 = start_guest()
    pre = LiveMigrator(src2, dst2, bytes_per_cycle=4.0).migrate(
        vm2, quantum_instructions=30_000
    )
    # Post-copy downtime is CPU-state only; pre-copy ships the residual
    # working set while paused.
    assert post.downtime_cycles < pre.downtime_cycles / 10


def test_demand_faults_hit_the_working_set_first():
    src, dst, vm = start_guest()
    migrator = PostCopyMigrator(src, dst, bytes_per_cycle=4.0,
                                push_batch_pages=16)
    result = migrator.migrate_and_run(vm)
    # Only the touched working set (plus kernel pages) demand-faults;
    # the bulk arrives via background push.
    assert 0 < result.remote_faults < 150
    assert result.pushed_pages > result.remote_faults
    assert result.fetch_fraction < 0.05


def test_memory_identity_after_migration():
    src, dst, vm = start_guest()
    marker_gpa = 0x9000 + 64
    vm.guest_mem.write_u32(marker_gpa, 0x5117_BEEF & 0xFFFFFFFF)
    migrator = PostCopyMigrator(src, dst, bytes_per_cycle=4.0)
    result = migrator.migrate_and_run(vm, max_guest_instructions=1)
    # Even pages the guest never touched must be identical once the
    # background push completes.
    for gfn in vm.guest_mem.map:
        assert (result.dest_vm.guest_mem.read_gfn(gfn)
                == vm.guest_mem.read_gfn(gfn)), gfn


def test_requires_hw_assist():
    src = Hypervisor(memory_bytes=64 * MIB)
    dst = Hypervisor(memory_bytes=64 * MIB)
    vm = src.create_vm(GuestConfig(name="te", memory_bytes=GUEST_MEM,
                                   virt_mode=VirtMode.TRAP_EMULATE,
                                   mmu_mode=MMUVirtMode.SHADOW))
    migrator = PostCopyMigrator(src, dst)
    with pytest.raises(MigrationError):
        migrator.migrate_and_run(vm)


def test_parameter_validation():
    src = Hypervisor(memory_bytes=64 * MIB)
    dst = Hypervisor(memory_bytes=64 * MIB)
    with pytest.raises(MigrationError):
        PostCopyMigrator(src, dst, bytes_per_cycle=0)
    with pytest.raises(MigrationError):
        PostCopyMigrator(src, dst, push_batch_pages=0)


def _ept_chain_names(hv):
    return [name for name, _ in hv._ept_fault_handlers]


class TestFaultHandlerLifecycle:
    def test_fetch_handler_retired_after_migration(self):
        src, dst, vm = start_guest()
        PostCopyMigrator(src, dst, bytes_per_cycle=4.0).migrate_and_run(vm)
        assert "postcopy_fetch" not in _ept_chain_names(dst)

    def test_fetch_handler_retired_when_run_raises(self):
        src, dst, vm = start_guest()
        migrator = PostCopyMigrator(src, dst, bytes_per_cycle=4.0)

        def dying_run(*args, **kwargs):
            raise MigrationError("destination host died mid-run")

        dst.run = dying_run
        with pytest.raises(MigrationError):
            migrator.migrate_and_run(vm)
        # The failed migration must not leak its fetch handler into the
        # destination's dispatch chain (it would shadow later owners).
        assert "postcopy_fetch" not in _ept_chain_names(dst)

    def test_two_sequential_migrations_share_a_destination(self):
        src, dst, vm = start_guest()
        first = PostCopyMigrator(src, dst, bytes_per_cycle=4.0)
        r1 = first.migrate_and_run(vm)
        assert r1.outcome is RunOutcome.SHUTDOWN

        src2 = Hypervisor(memory_bytes=64 * MIB)
        vm2 = src2.create_vm(GuestConfig(name="pc2", memory_bytes=GUEST_MEM,
                                         virt_mode=VirtMode.HW_ASSIST,
                                         mmu_mode=MMUVirtMode.NESTED))
        kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEM))
        src2.load_program(vm2, kernel)
        src2.load_program(vm2, workloads.memtouch(PAGES, PASSES))
        src2.reset_vcpu(vm2, kernel.entry)
        src2.run(vm2, max_guest_instructions=100_000)
        r2 = PostCopyMigrator(src2, dst, bytes_per_cycle=4.0).migrate_and_run(vm2)
        assert r2.outcome is RunOutcome.SHUTDOWN
        diag = read_diag(r2.dest_vm.guest_mem)
        assert diag.user_result == expected_memtouch(PAGES, PASSES)


def test_budget_counts_actual_retired_instructions():
    """A guest exiting early each entry must not burn whole quanta."""
    src, dst, vm = start_guest()
    migrator = PostCopyMigrator(src, dst, bytes_per_cycle=4.0,
                                push_quantum_instructions=5000)
    real_run = dst.run
    retired = []

    def stingy_run(vm_, max_guest_instructions=None, **kwargs):
        # Each entry retires at most a fifth of the requested quantum.
        before = vm_.vcpus[0].cpu.instret
        outcome = real_run(
            vm_,
            max_guest_instructions=min(1000, max_guest_instructions or 1000),
            **kwargs,
        )
        retired.append(vm_.vcpus[0].cpu.instret - before)
        return outcome

    dst.run = stingy_run
    migrator.migrate_and_run(vm, max_guest_instructions=10_000)
    # Charging full quanta regardless of retirement would stop the loop
    # after ~2 entries (~2k retired); accurate accounting keeps running
    # the guest until the budget is genuinely consumed.
    assert sum(retired) >= 9_000
