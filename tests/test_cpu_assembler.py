"""Two-pass assembler."""

import pytest

from repro.cpu.assembler import Assembler, AssemblyError
from repro.cpu.disasm import disassemble_one
from repro.cpu.isa import Op, decode


def assemble(src, base=0):
    return Assembler().assemble(src, base=base)


def first_instruction(prog):
    word = int.from_bytes(prog.data[:4], "little")
    imm = int.from_bytes(prog.data[4:8], "little") if len(prog.data) >= 8 else 0
    return decode(word, imm)


class TestDirectives:
    def test_org_sets_base_and_labels(self):
        prog = assemble(".org 0x2000\nstart:\n    nop\n")
        assert prog.base == 0x2000
        assert prog.symbols["start"] == 0x2000
        assert prog.entry == 0x2000

    def test_org_must_come_first(self):
        with pytest.raises(AssemblyError):
            assemble("nop\n.org 0x100\n")

    def test_equ_constants(self):
        prog = assemble(".equ FOO, 0x42\n    li a0, FOO\n")
        ins = first_instruction(prog)
        assert ins.imm32 == 0x42

    def test_duplicate_equ_rejected(self):
        with pytest.raises(AssemblyError):
            assemble(".equ A, 1\n.equ A, 2\n")

    def test_word_and_space(self):
        prog = assemble(".word 0x11223344\n.space 4\n.word 1+2\n")
        assert prog.data[:4] == bytes.fromhex("44332211")
        assert prog.data[4:8] == b"\x00" * 4
        assert int.from_bytes(prog.data[8:12], "little") == 3

    def test_word_with_label(self):
        prog = assemble("target:\n    nop\n.word target\n")
        assert int.from_bytes(prog.data[4:8], "little") == 0

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError):
            assemble(".bogus 1\n")


class TestInstructions:
    def test_alu_register_form(self):
        ins = first_instruction(assemble("add a0, a1, a2\n"))
        assert ins.op is Op.ADD and not ins.has_imm32
        assert (ins.rd, ins.ra, ins.rb) == (1, 2, 3)

    def test_alu_immediate_form(self):
        ins = first_instruction(assemble("add a0, a1, 100\n"))
        assert ins.has_imm32 and ins.imm32 == 100

    def test_negative_immediate(self):
        ins = first_instruction(assemble("add sp, sp, -8\n"))
        assert ins.imm32 == (-8) & 0xFFFFFFFF

    def test_load_store_displacement(self):
        ins = first_instruction(assemble("ld a0, [sp+12]\n"))
        assert ins.op is Op.LD and ins.simm12 == 12 and ins.ra == 13
        ins = first_instruction(assemble("st [sp-4], a0\n"))
        assert ins.op is Op.ST and ins.simm12 == -4 and ins.rb == 1

    def test_displacement_range_checked(self):
        with pytest.raises(AssemblyError):
            assemble("ld a0, [sp+5000]\n")

    def test_branch_targets_are_absolute(self):
        prog = assemble(".org 0x100\nloop:\n    nop\n    beq a0, a1, loop\n")
        word = int.from_bytes(prog.data[4:8], "little")
        imm = int.from_bytes(prog.data[8:12], "little")
        ins = decode(word, imm)
        assert ins.op is Op.BEQ and ins.imm32 == 0x100

    def test_forward_reference(self):
        prog = assemble("    jmp end\n    nop\nend:\n    nop\n")
        ins = first_instruction(prog)
        assert ins.op is Op.JAL and ins.imm32 == prog.base + 12

    def test_csr_by_name_and_number(self):
        ins = first_instruction(assemble("csrw PTBR, a0\n"))
        assert ins.op is Op.CSRW and ins.simm12 == 1
        ins = first_instruction(assemble("csrr a0, 5\n"))
        assert ins.op is Op.CSRR and ins.simm12 == 5

    def test_unknown_csr_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("csrr a0, NOPE\n")

    def test_io_ports(self):
        ins = first_instruction(assemble("out 0x40, a0\n"))
        assert ins.op is Op.OUT and ins.simm12 == 0x40 and ins.ra == 1
        ins = first_instruction(assemble("in a1, 0x41\n"))
        assert ins.op is Op.IN and ins.simm12 == 0x41 and ins.rd == 2

    def test_syscall_vmcall_numbers(self):
        assert first_instruction(assemble("syscall 7\n")).simm12 == 7
        assert first_instruction(assemble("vmcall 3\n")).simm12 == 3


class TestPseudoInstructions:
    def test_call_ret_jmp(self):
        prog = assemble("f:\n    ret\nmain:\n    call f\n    jmp main\n")
        # ret = jalr zero, lr
        ins = first_instruction(prog)
        assert ins.op is Op.JALR and ins.rd == 0 and ins.ra == 14

    def test_beqz_bnez(self):
        ins = first_instruction(assemble("x:\n    beqz a0, x\n"))
        assert ins.op is Op.BEQ and ins.rb == 0

    def test_push_pop_expand(self):
        prog = assemble("push a0\npop a1\n")
        # push = add sp,sp,-4 (8 bytes) + st (4); pop = ld (4) + add (8)
        assert prog.size == 24

    def test_li_alias(self):
        ins = first_instruction(assemble("li t0, 0xFFFFFFFF\n"))
        assert ins.op is Op.MOVI and ins.imm32 == 0xFFFFFFFF


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate a0\n")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblyError):
            assemble("jmp nowhere\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("a:\n nop\na:\n nop\n")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("add q0, a0, a1\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("add a0, a1\n")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as info:
            assemble("nop\nbogus x\n")
        assert "line 2" in str(info.value)


class TestComments:
    def test_both_comment_styles(self):
        prog = assemble("nop ; trailing\n# full line\nnop # other\n")
        assert prog.size == 8

    def test_label_expressions(self):
        prog = assemble("base:\n    nop\n    li a0, base+8\n")
        word = int.from_bytes(prog.data[4:8], "little")
        imm = int.from_bytes(prog.data[8:12], "little")
        assert decode(word, imm).imm32 == prog.base + 8


def test_load_into_physmem():
    from repro.mem.physmem import PhysicalMemory
    from repro.util.units import MIB

    prog = assemble(".org 0x1000\n    li a0, 7\n")
    pm = PhysicalMemory(1 * MIB)
    addr = prog.load(pm)
    assert addr == 0x1000
    assert pm.read_bytes(0x1000, prog.size) == prog.data


def test_disasm_roundtrip_of_assembled_program():
    src = """
.org 0x100
start:
    li   a0, 42
    add  a1, a0, 8
    ld   t0, [sp+4]
    st   [sp+0], t0
    beq  a0, a1, start
    call start
    ret
    syscall 1
    csrw VBAR, a0
    out  0x10, a0
    hlt
"""
    prog = Assembler().assemble(src)
    # Re-assembling the disassembly must produce identical bytes.
    offset = 0
    lines = []
    while offset < prog.size:
        text, length = disassemble_one(prog.data, offset)
        lines.append(text)
        offset += length
    reassembled = Assembler().assemble(".org 0x100\n" + "\n".join(lines))
    assert reassembled.data == prog.data
