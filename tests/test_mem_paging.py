"""Page-table entries, the walker, and AddressSpace."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.paging import (
    AccessType,
    AddressSpace,
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_NOEXEC,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    PageFault,
    PageTableWalker,
    make_pte,
    pte_frame,
    split_vaddr,
)
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.util.errors import MemoryError_
from repro.util.units import MIB, PAGE_SIZE


@pytest.fixture
def env():
    pm = PhysicalMemory(1 * MIB)
    alloc = FrameAllocator(pm, reserved_frames=1)
    return pm, alloc


class TestEntryFormat:
    def test_make_and_extract(self):
        pte = make_pte(0x123, PTE_PRESENT | PTE_WRITABLE)
        assert pte_frame(pte) == 0x123
        assert pte & PTE_PRESENT and pte & PTE_WRITABLE

    def test_flag_overlap_rejected(self):
        with pytest.raises(MemoryError_):
            make_pte(1, 0x1000)

    def test_pfn_range_checked(self):
        with pytest.raises(MemoryError_):
            make_pte(1 << 20, 0)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_split_vaddr_reassembles(self, va):
        d, t, o = split_vaddr(va)
        assert 0 <= d < 1024 and 0 <= t < 1024 and 0 <= o < 4096
        assert (d << 22) | (t << 12) | o == va & 0xFFFFFFFF


class TestAddressSpace:
    def test_map_and_lookup(self, env):
        pm, alloc = env
        space = AddressSpace(pm, alloc)
        frame = alloc.alloc()
        space.map(0x400000, frame * PAGE_SIZE, PTE_WRITABLE)
        pte = space.lookup(0x400000)
        assert pte is not None
        assert pte_frame(pte) == frame
        assert space.lookup(0x401000) is None
        assert space.mapped_pages == 1

    def test_unaligned_rejected(self, env):
        pm, alloc = env
        space = AddressSpace(pm, alloc)
        with pytest.raises(MemoryError_):
            space.map(0x100, 0, PTE_WRITABLE)
        with pytest.raises(MemoryError_):
            space.map(0, 0x100, PTE_WRITABLE)

    def test_unmap(self, env):
        pm, alloc = env
        space = AddressSpace(pm, alloc)
        space.map(0x1000, 0x2000, 0)
        space.unmap(0x1000)
        assert space.lookup(0x1000) is None
        assert space.mapped_pages == 0
        space.unmap(0x999000)  # unmapping nothing is fine

    def test_remap_does_not_double_count(self, env):
        pm, alloc = env
        space = AddressSpace(pm, alloc)
        space.map(0x1000, 0x2000, 0)
        space.map(0x1000, 0x3000, 0)
        assert space.mapped_pages == 1
        assert pte_frame(space.lookup(0x1000)) == 3

    def test_protect_changes_flags(self, env):
        pm, alloc = env
        space = AddressSpace(pm, alloc)
        space.map(0x1000, 0x2000, PTE_WRITABLE | PTE_USER)
        space.protect(0x1000, PTE_USER)
        pte = space.lookup(0x1000)
        assert not pte & PTE_WRITABLE and pte & PTE_USER
        with pytest.raises(MemoryError_):
            space.protect(0x5000, 0)

    def test_mappings_iterates_all(self, env):
        pm, alloc = env
        space = AddressSpace(pm, alloc)
        vas = [0x1000, 0x400000, 0x7FC00000]
        for i, va in enumerate(vas):
            space.map(va, (i + 1) * PAGE_SIZE, PTE_USER)
        found = dict(space.mappings())
        assert sorted(found) == sorted(vas)

    def test_clear_pde_drops_subtree_and_frees_table(self, env):
        pm, alloc = env
        space = AddressSpace(pm, alloc)
        space.map(0x400000, 0x1000, 0)
        space.map(0x400000 + PAGE_SIZE, 0x2000, 0)
        before = alloc.allocated_frames
        space.clear_pde(1)  # 0x400000 >> 22 == 1
        assert space.lookup(0x400000) is None
        assert space.mapped_pages == 0
        assert alloc.allocated_frames == before - 1  # PT page returned

    def test_destroy_frees_table_frames(self, env):
        pm, alloc = env
        before = alloc.allocated_frames
        space = AddressSpace(pm, alloc)
        space.map(0x1000, 0x2000, 0)
        space.map(0x40000000, 0x3000, 0)
        space.destroy()
        assert alloc.allocated_frames == before


class TestWalker:
    def _space(self, env, va=0x1000, flags=PTE_WRITABLE | PTE_USER):
        pm, alloc = env
        space = AddressSpace(pm, alloc)
        frame = alloc.alloc()
        pm.write_u32(frame * PAGE_SIZE, 0xCAFEBABE)
        space.map(va, frame * PAGE_SIZE, flags)
        return pm, space, frame

    def test_successful_walk(self, env):
        pm, space, frame = self._space(env)
        walker = PageTableWalker(pm)
        result = walker.walk(space.root_pa, 0x1004, AccessType.READ, user=True)
        assert result.paddr == frame * PAGE_SIZE + 4
        assert result.mem_refs == 2
        assert walker.walks == 1 and walker.faults == 0

    def test_not_present_faults(self, env):
        pm, space, _ = self._space(env)
        walker = PageTableWalker(pm)
        with pytest.raises(PageFault) as info:
            walker.walk(space.root_pa, 0x2000, AccessType.READ, user=False)
        assert not info.value.present
        assert walker.faults == 1

    def test_user_cannot_touch_kernel_page(self, env):
        pm, space, _ = self._space(env, flags=PTE_WRITABLE)  # no USER bit
        walker = PageTableWalker(pm)
        with pytest.raises(PageFault) as info:
            walker.walk(space.root_pa, 0x1000, AccessType.READ, user=True)
        assert info.value.present  # protection, not absence
        # kernel access is fine
        walker.walk(space.root_pa, 0x1000, AccessType.READ, user=False)

    def test_write_to_readonly_faults(self, env):
        pm, space, _ = self._space(env, flags=PTE_USER)  # read-only
        walker = PageTableWalker(pm)
        with pytest.raises(PageFault):
            walker.walk(space.root_pa, 0x1000, AccessType.WRITE, user=True)

    def test_noexec_blocks_fetch(self, env):
        pm, space, _ = self._space(env, flags=PTE_USER | PTE_NOEXEC)
        walker = PageTableWalker(pm)
        with pytest.raises(PageFault):
            walker.walk(space.root_pa, 0x1000, AccessType.EXEC, user=True)
        walker.walk(space.root_pa, 0x1000, AccessType.READ, user=True)

    def test_accessed_and_dirty_bits_set(self, env):
        pm, space, _ = self._space(env)
        walker = PageTableWalker(pm)
        walker.walk(space.root_pa, 0x1000, AccessType.READ, user=False)
        pte = space.lookup(0x1000)
        assert pte & PTE_ACCESSED and not pte & PTE_DIRTY
        walker.walk(space.root_pa, 0x1000, AccessType.WRITE, user=False)
        pte = space.lookup(0x1000)
        assert pte & PTE_DIRTY

    def test_no_side_effects_when_set_ad_false(self, env):
        pm, space, _ = self._space(env)
        walker = PageTableWalker(pm)
        walker.walk(space.root_pa, 0x1000, AccessType.WRITE, user=False,
                    set_ad=False)
        pte = space.lookup(0x1000)
        assert not pte & PTE_ACCESSED and not pte & PTE_DIRTY

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1),
                    min_size=1, max_size=24, unique=True))
    def test_walk_agrees_with_lookup(self, vpns):
        pm = PhysicalMemory(2 * MIB)
        alloc = FrameAllocator(pm, reserved_frames=1)
        space = AddressSpace(pm, alloc)
        mapping = {}
        for i, vpn in enumerate(vpns):
            # map each vpn to a distinct (fake) frame number
            space.map(vpn * PAGE_SIZE, (i + 100) * PAGE_SIZE,
                      PTE_WRITABLE | PTE_USER)
            mapping[vpn] = i + 100
        walker = PageTableWalker(pm)
        for vpn, frame in mapping.items():
            result = walker.walk(space.root_pa, vpn * PAGE_SIZE,
                                 AccessType.READ, user=True)
            assert result.paddr == frame * PAGE_SIZE
