"""ASCII chart renderer."""

import pytest
from hypothesis import given, strategies as st

from repro.util.chart import MARKERS, ascii_chart


def test_basic_render_contains_everything():
    text = ascii_chart(
        {"up": [(1, 1), (2, 2), (3, 3)], "down": [(1, 3), (2, 2), (3, 1)]},
        title="T", x_label="xs", y_label="ys",
    )
    assert "T" in text
    assert "[x: xs]" in text and "[y: ys]" in text
    assert "* = up" in text and "o = down" in text
    # both extremes labelled on the y-axis
    assert "3" in text and "1" in text


def test_points_land_at_grid_extremes():
    text = ascii_chart({"s": [(0, 0), (10, 10)]}, width=20, height=5)
    rows = [line for line in text.splitlines() if "|" in line]
    assert rows[0].rstrip().endswith("*")  # max point: top right
    assert rows[-1].split("|")[1][0] == "*"  # min point: bottom left


def test_log_axes():
    text = ascii_chart(
        {"s": [(1, 1), (10, 100), (100, 10000)]},
        log_x=True, log_y=True,
    )
    assert "10,000" in text
    with pytest.raises(ValueError):
        ascii_chart({"s": [(0, 1)]}, log_x=True)
    with pytest.raises(ValueError):
        ascii_chart({"s": [(1, -5)]}, log_y=True)


def test_degenerate_inputs_rejected():
    with pytest.raises(ValueError):
        ascii_chart({})
    with pytest.raises(ValueError):
        ascii_chart({"s": []})
    with pytest.raises(ValueError):
        ascii_chart({"s": [(1, 1)]}, width=4)


def test_flat_series_renders():
    text = ascii_chart({"flat": [(0, 5), (1, 5), (2, 5)]})
    assert "*" in text


@given(st.lists(st.tuples(
    st.floats(min_value=-1e6, max_value=1e6),
    st.floats(min_value=-1e6, max_value=1e6)), min_size=1, max_size=40))
def test_never_crashes_on_linear_axes(points):
    text = ascii_chart({"fuzz": points}, width=40, height=8)
    lines = text.splitlines()
    grid_rows = [line for line in lines if "|" in line]
    assert len(grid_rows) == 8
    # every marker cell is inside the grid width
    for row in grid_rows:
        assert len(row.split("|", 1)[1]) <= 40


def test_many_series_cycle_markers():
    series = {f"s{i}": [(i, i)] for i in range(10)}
    text = ascii_chart(series)
    for i in range(len(MARKERS)):
        assert f"{MARKERS[i]} = s{i}" in text
