"""Command-line interface."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "e1" in out and "hw-nested" in out and "hello" in out


def test_run_single_experiment(capsys):
    assert main(["run", "e5"]) == 0
    out = capsys.readouterr().out
    assert "E5a" in out and "credit" in out
    assert "E5b" in out  # the extra latency table prints too


def test_run_json_emits_metrics_manifest(capsys):
    assert main(["run", "e5", "--json"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["schema"] == "pyvisor.metrics.manifest/1"
    assert manifest["experiment"] == "E5"
    # Baseline registration guarantees coverage even for a
    # scheduler-only experiment.
    assert len(manifest["subsystems"]) >= 6
    dispatches = manifest["metrics"]["sched.dispatches"]
    assert dispatches["type"] == "counter"
    assert dispatches["value"] > 0
    # Wake-latency histograms come through as summaries.
    names = manifest["subsystems"]["sched"]
    assert any(n.endswith("wake_latency_us") for n in names)


def test_run_unknown_experiment(capsys):
    assert main(["run", "e99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_boot_default(capsys):
    assert main(["boot"]) == 0
    out = capsys.readouterr().out
    assert "user result       : 42" in out
    assert "virtualization OK : True" in out


def test_boot_trap_emulate_reports_violation(capsys):
    assert main(["boot", "--mode", "trap-emulate"]) == 0
    out = capsys.readouterr().out
    assert "virtualization OK : False" in out


def test_boot_native(capsys):
    assert main(["boot", "--mode", "native", "--workload", "syscall_storm"]) == 0
    out = capsys.readouterr().out
    assert "exits             : 0" in out


def test_boot_bad_arguments(capsys):
    assert main(["boot", "--mode", "nope"]) == 2
    assert main(["boot", "--workload", "nope"]) == 2


def test_run_e8s_sharded_json(capsys):
    assert main(["run", "e8s", "--quick", "--shards", "2", "--jobs", "2",
                 "--fleet", "80", "--json"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["schema"] == "pyvisor.metrics.manifest/1"
    assert manifest["experiment"] == "E8s"
    assert manifest["extra"]["cluster_sharded"]["shards"] == 2
    assert "cluster.shard.000.epochs" in manifest["metrics"]


def test_run_shard_flags_ignored_for_unaware_experiments(capsys):
    # --shards/--jobs only reach shard-aware experiments; others run as
    # before.
    assert main(["run", "e5", "--shards", "4", "--jobs", "2"]) == 0
    assert "E5a" in capsys.readouterr().out


def test_fuzz_faults_on_by_default(capsys):
    assert main(["fuzz", "--seed", "1", "--cases", "2", "--json"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["extra"]["fuzz"]["opts"]["fault_rate"] == 0.05


def test_fuzz_no_faults_flag(capsys):
    assert main(["fuzz", "--seed", "1", "--cases", "2", "--no-faults",
                 "--json"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["extra"]["fuzz"]["opts"]["fault_rate"] == 0.0


def test_shardbench_writes_payload(tmp_path, capsys):
    out = tmp_path / "BENCH_SHARD.json"
    baseline = tmp_path / "baseline.json"
    assert main(["shardbench", "--quick", "--out", str(out), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["parity_ok"] is True
    assert out.exists()
    # The run gates cleanly against its own payload as baseline.
    baseline.write_text(out.read_text())
    assert main(["shardbench", "--quick", "--out", str(out),
                 "--baseline", str(baseline)]) == 0


def test_fuzz_events_on_by_default_and_no_events_flag(capsys):
    assert main(["fuzz", "--seed", "1", "--cases", "2", "--json"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["extra"]["fuzz"]["opts"]["events"] is True
    assert main(["fuzz", "--seed", "1", "--cases", "2", "--no-events",
                 "--json"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["extra"]["fuzz"]["opts"]["events"] is False


def test_faults_list_enumerates_registered_sites(capsys):
    assert main(["faults", "--list"]) == 0
    out = capsys.readouterr().out
    for site in ("irq.lost", "irq.spurious", "irq.storm", "irq.delayed",
                 "virtio.ring_stuck", "host.crash"):
        assert site in out
    assert "[irq]" in out and "[virtio]" in out
    assert "registered fault sites" in out


def test_faults_without_list_errors(capsys):
    assert main(["faults"]) == 2
