"""Binary-translation engine: correctness, caching, chaining, callouts."""

import pytest

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.cpu.assembler import Assembler
from repro.util.units import MIB

GUEST_MEM = 16 * MIB


def bt_vm(hv, **kw):
    return hv.create_vm(
        GuestConfig(name=kw.pop("name", "bt"), memory_bytes=GUEST_MEM,
                    virt_mode=VirtMode.BINARY_TRANSLATION,
                    mmu_mode=MMUVirtMode.SHADOW, **kw)
    )


def run_bt(src, cache=True, chaining=True, max_instructions=200_000):
    hv = Hypervisor(memory_bytes=64 * MIB)
    vm = bt_vm(hv)
    vm.bt.cache_enabled = cache
    vm.bt.chaining_enabled = chaining
    prog = Assembler().assemble(".org 0x1000\n" + src)
    hv.load_program(vm, prog)
    hv.reset_vcpu(vm, 0x1000)
    outcome = hv.run(vm, max_guest_instructions=max_instructions)
    return hv, vm, outcome


BASIC = """
    li a0, 10
    li a1, 0
loop:
    add a1, a1, a0
    sub a0, a0, 1
    bnez a0, loop
    csrw SCRATCH, a1     ; privileged: becomes a callout
    csrr a2, SCRATCH
    li a0, 1
    out 0xf0, a0
    hlt
"""


def test_translated_kernel_code_computes_correctly():
    _, vm, outcome = run_bt(BASIC)
    assert outcome is RunOutcome.SHUTDOWN
    assert vm.vcpus[0].cpu.regs[3] == 55
    assert vm.vcpus[0].vcsr[7] == 55  # SCRATCH is virtual state


def test_sensitive_instructions_are_corrected():
    _, vm, outcome = run_bt("""
    sti                  ; rewritten: must set the VIRTUAL IE
    csrr a1, IE
    csrr a2, MODE        ; must read virtual kernel mode (0)
    cli
    csrr a3, IE
    li a0, 1
    out 0xf0, a0
    hlt
""")
    assert outcome is RunOutcome.SHUTDOWN
    cpu = vm.vcpus[0].cpu
    assert cpu.regs[2] == 1  # IE observed as set
    assert cpu.regs[3] == 0  # MODE observed as kernel
    assert cpu.regs[4] == 0  # CLI observed
    assert cpu.mode == 1  # yet the real core never left user mode


def test_block_cache_hits_on_reexecution():
    _, vm, _ = run_bt(BASIC)
    assert vm.stats.bt_block_hits > 0
    assert vm.stats.bt_block_misses > 0
    assert vm.stats.bt_block_misses < vm.stats.bt_block_hits


def test_cache_disabled_retranslates_every_block():
    _, with_cache, _ = run_bt(BASIC, cache=True)
    _, without_cache, _ = run_bt(BASIC, cache=False)
    assert (without_cache.stats.bt_translated_instructions
            > 2 * with_cache.stats.bt_translated_instructions)
    assert without_cache.stats.bt_block_hits == 0


def test_chaining_reduces_dispatch_cost():
    _, chained, _ = run_bt(BASIC, chaining=True)
    _, unchained, _ = run_bt(BASIC, chaining=False)
    assert chained.stats.bt_chained > 0
    assert unchained.stats.bt_chained == 0
    assert (chained.vcpus[0].cpu.cycles
            < unchained.vcpus[0].cpu.cycles)


def test_callouts_avoid_world_switches():
    _, vm, _ = run_bt(BASIC)
    # CSRW/CSRR ran as callouts: no PRIV-trap exits.
    priv_exits = sum(
        count for key, count in vm.exit_stats.counts.items()
        if "guest_trap" in key and "csr" in key
    )
    assert priv_exits == 0
    assert vm.stats.bt_callouts >= 2


def test_syscall_reflection_inside_translator():
    _, vm, outcome = run_bt("""
    li a0, vec
    csrw VBAR, a0
    syscall 9
    li a3, 123           ; after iret
    li a0, 1
    out 0xf0, a0
    hlt
vec:
    csrr a1, ECAUSE
    csrr a2, EVAL
    iret
""")
    assert outcome is RunOutcome.SHUTDOWN
    cpu = vm.vcpus[0].cpu
    assert cpu.regs[2] == 1  # SYSCALL cause
    assert cpu.regs[3] == 9
    assert cpu.regs[4] == 123


def test_invalidate_gfn_drops_translations():
    hv = Hypervisor(memory_bytes=64 * MIB)
    vm = bt_vm(hv)
    prog = Assembler().assemble(".org 0x1000\n" + BASIC)
    hv.load_program(vm, prog)
    hv.reset_vcpu(vm, 0x1000)
    hv.run(vm, max_guest_instructions=200_000)
    assert vm.bt.cached_blocks > 0
    vm.bt.invalidate_gfn(1)  # kernel code lives in gfn 1
    assert vm.bt.cached_blocks == 0


def test_flush_clears_everything():
    hv = Hypervisor(memory_bytes=64 * MIB)
    vm = bt_vm(hv)
    prog = Assembler().assemble(".org 0x1000\n" + BASIC)
    hv.load_program(vm, prog)
    hv.reset_vcpu(vm, 0x1000)
    hv.run(vm, max_guest_instructions=200_000)
    vm.bt.flush()
    assert vm.bt.cached_blocks == 0


TWO_PAGE = """
    li a0, 50
outer:
    call far             ; far lives in the next guest frame (gfn 2)
    sub a0, a0, 1
    bnez a0, outer
    li a0, 1
    out 0xf0, a0
    hlt
    .space 4096
far:
    add a1, a1, 1
    ret
"""


def test_unrelated_invalidation_keeps_chains():
    """invalidate_gfn must only drop chains touching the invalidated
    frame's blocks -- not every chain in the engine (regression)."""
    hv = Hypervisor(memory_bytes=64 * MIB)
    vm = bt_vm(hv)
    prog = Assembler().assemble(".org 0x1000\n" + TWO_PAGE)
    hv.load_program(vm, prog)
    hv.reset_vcpu(vm, 0x1000)
    # Stop mid-loop: everything is translated and chained by now.
    outcome = hv.run(vm, max_guest_instructions=100)
    assert outcome is RunOutcome.INSTR_LIMIT

    blocks_before = vm.bt.cached_blocks
    chains_before = set(vm.bt._chains)
    assert blocks_before > 0 and chains_before

    # Invalidate the frame holding only `far`; gfn-1 blocks and the
    # chains that link them must survive untouched.
    vm.bt.invalidate_gfn(2)
    assert 0 < vm.bt.cached_blocks < blocks_before
    surviving = set(vm.bt._chains)
    assert surviving  # chained dispatch in gfn 1 still wired up
    assert surviving <= chains_before
    for src_va, dst_va in surviving:
        assert src_va >> 12 != 2 and dst_va >> 12 != 2

    # A frame with no translations at all is a strict no-op.
    blocks_now, chains_now = vm.bt.cached_blocks, set(vm.bt._chains)
    vm.bt.invalidate_gfn(7)
    assert vm.bt.cached_blocks == blocks_now
    assert set(vm.bt._chains) == chains_now

    # Resuming after the partial invalidation retranslates `far` and
    # finishes the remaining iterations correctly.
    outcome = hv.run(vm, max_guest_instructions=200_000)
    assert outcome is RunOutcome.SHUTDOWN
    assert vm.vcpus[0].cpu.regs[2] == 50  # far ran 50 times in total


DIV0_IN_GUARDED = """
    li a0, vec
    csrw VBAR, a0        ; callout: the block keeps going
    li a1, 40
    li a2, 0x800
    st [a2+0], a1        ; memory op arms the closure's fault bookkeeping
    ld a3, [a2+0]
    li t0, 0
    remu t1, a1, t0      ; DIV0 trap *after* the guarded accesses
    li a3, 0xbeef        ; must not run before the trap
    hlt
vec:
    csrr a2, ECAUSE
    li a0, 1
    out 0xf0, a0
    hlt
"""


@pytest.mark.parametrize(
    "src",
    [BASIC, TWO_PAGE, DIV0_IN_GUARDED],
    ids=["basic", "two_page", "div0_guarded"],
)
def test_fused_blocks_match_item_interpreter(src):
    """Closure-fused translated blocks must be cycle-exact with the
    per-item reference walk."""
    states = []
    for fused in (False, True):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = bt_vm(hv)
        vm.bt.compile_enabled = fused
        prog = Assembler().assemble(".org 0x1000\n" + src)
        hv.load_program(vm, prog)
        hv.reset_vcpu(vm, 0x1000)
        outcome = hv.run(vm, max_guest_instructions=200_000)
        cpu = vm.vcpus[0].cpu
        states.append((
            outcome, cpu.cycles, cpu.instret, cpu.pc,
            tuple(cpu.regs), tuple(cpu.csr), tuple(vm.vcpus[0].vcsr),
            vm.stats.bt_callouts, vm.stats.bt_chained,
        ))
    assert states[0] == states[1]


PTBR_SWITCH = """
    li a0, 0x20000       ; page directory
    li a1, 0x21007       ; PDE -> page table at 0x21000, P|W|U
    st [a0+0], a1
    li a0, 0x21000
    li a2, 0x2007        ; vpn 2 -> frame 0x2000 (the vector page), P|W|U
    st [a0+8], a2        ; PT[2]; vpn 1 -- this code page -- stays unmapped
    li a0, vec
    csrw VBAR, a0
    li t0, tail          ; VA whose fetch must fault under the new root
    li t1, 0x20000
    csrw PTBR, t1        ; fetch translation changes HERE
tail:
    li t2, 0xdead        ; decoded under the old root: must never execute
    hlt
    .space 4096
vec:
    csrr a1, ECAUSE
    csrr a2, EVAL
    li a0, 1
    out 0xf0, a0
    hlt
"""


def test_ptbr_write_ends_translated_block():
    """A CSRW PTBR mid-block changes instruction-fetch translation; the
    instructions decoded after it under the old root must not run.  The
    translator has to end the block at the write so dispatch re-fetches
    (and here re-faults: vpn 1 is unmapped under the new root) exactly
    like hardware."""
    from repro.cpu.isa import Cause

    _, vm, outcome = run_bt(PTBR_SWITCH)
    assert outcome is RunOutcome.SHUTDOWN
    cpu = vm.vcpus[0].cpu
    assert cpu.regs[7] != 0xdead  # the stale tail never executed
    assert cpu.regs[2] == int(Cause.PF_EXEC)  # ECAUSE seen by the vector
    assert cpu.regs[3] == cpu.regs[5]  # EVAL == VA of the stale tail
