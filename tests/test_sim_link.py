"""Network link model."""

import pytest

from repro.sim.kernel import SEC, Simulator
from repro.sim.link import NetworkLink
from repro.util.errors import ConfigError
from repro.util.units import MIB


def test_transmission_time_formula():
    sim = Simulator()
    link = NetworkLink(sim, bandwidth_bytes_per_sec=1 * MIB, latency=250)
    assert link.transmission_time(0) == 250
    assert link.transmission_time(1 * MIB) == SEC + 250


def test_transfer_advances_time_and_counts():
    sim = Simulator()
    link = NetworkLink(sim, bandwidth_bytes_per_sec=1 * MIB, latency=0)

    def proc():
        result = yield from link.transfer(512 * 1024)
        return result

    p = sim.spawn(proc())
    result = sim.run_until_process(p)
    assert result.duration == SEC // 2
    assert link.bytes_sent == 512 * 1024
    assert link.transfers == 1


def test_concurrent_transfers_serialize():
    sim = Simulator()
    link = NetworkLink(sim, bandwidth_bytes_per_sec=1 * MIB, latency=0)
    finished = []

    def sender(name, nbytes):
        result = yield from link.transfer(nbytes)
        finished.append((name, result.finished_at))

    sim.spawn(sender("a", 1 * MIB))
    sim.spawn(sender("b", 1 * MIB))
    sim.run()
    assert finished == [("a", SEC), ("b", 2 * SEC)]


def test_zero_byte_transfer_with_latency():
    sim = Simulator()
    link = NetworkLink(sim, bandwidth_bytes_per_sec=1 * MIB, latency=100)

    def proc():
        result = yield from link.transfer(0)
        return result

    p = sim.spawn(proc())
    result = sim.run_until_process(p)
    assert result.duration == 100


def test_invalid_parameters():
    # ConfigError, not bare ValueError: the "one catchable base class"
    # contract of repro.util.errors.
    sim = Simulator()
    with pytest.raises(ConfigError):
        NetworkLink(sim, bandwidth_bytes_per_sec=0)
    with pytest.raises(ConfigError):
        NetworkLink(sim, bandwidth_bytes_per_sec=1, latency=-1)
    link = NetworkLink(sim, bandwidth_bytes_per_sec=1)
    with pytest.raises(ConfigError):
        link.transmission_time(-5)
