"""Direct tests of the in-monitor instruction emulator."""

import pytest

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.emulate import emulate_guest_store, emulate_privileged
from repro.cpu.isa import CSR, MODE_KERNEL, MODE_USER, Op, decode, encode
from repro.util.errors import GuestError
from repro.util.units import MIB


@pytest.fixture
def vcpu():
    hv = Hypervisor(memory_bytes=64 * MIB)
    vm = hv.create_vm(GuestConfig(name="emu", memory_bytes=16 * MIB,
                                  virt_mode=VirtMode.TRAP_EMULATE,
                                  mmu_mode=MMUVirtMode.SHADOW))
    hv.reset_vcpu(vm, 0x1000)
    return vm.vcpus[0]


def ins(op, **kw):
    data = encode(op, **kw)
    word = int.from_bytes(data[:4], "little")
    imm = int.from_bytes(data[4:8], "little") if len(data) > 4 else 0
    return decode(word, imm)


class TestCSRs:
    def test_csrr_reads_virtual_state(self, vcpu):
        vcpu.vcsr[CSR.VBAR] = 0x4242
        name = emulate_privileged(vcpu, ins(Op.CSRR, rd=1, simm12=int(CSR.VBAR)))
        assert name == "csrr"
        assert vcpu.cpu.regs[1] == 0x4242
        assert vcpu.cpu.pc == 0x1004  # advanced

    def test_csrr_counters_come_from_core(self, vcpu):
        vcpu.cpu.cycles = 777
        emulate_privileged(vcpu, ins(Op.CSRR, rd=1, simm12=int(CSR.CYCLES)))
        assert vcpu.cpu.regs[1] == 777

    def test_csrw_writes_virtual_not_real(self, vcpu):
        vcpu.cpu.regs[1] = 0xABCD
        emulate_privileged(vcpu, ins(Op.CSRW, ra=1, simm12=int(CSR.SCRATCH)))
        assert vcpu.vcsr[CSR.SCRATCH] == 0xABCD
        assert vcpu.cpu.csr[CSR.SCRATCH] == 0  # host CSR untouched

    def test_csrw_ptbr_installs_guest_root(self, vcpu):
        vcpu.cpu.regs[1] = 0x100000
        emulate_privileged(vcpu, ins(Op.CSRW, ra=1, simm12=int(CSR.PTBR)))
        assert vcpu.vcsr[CSR.PTBR] == 0x100000
        assert vcpu.cpu.mmu.guest_root == 0x100000

    def test_readonly_csr_write_reflects_illegal(self, vcpu):
        # Native semantics: a write to a read-only CSR is an ILLEGAL
        # trap delivered to the *guest*, not a host error. With a guest
        # vector installed the trap is reflected there...
        from repro.cpu.isa import Cause

        vcpu.vcsr[CSR.VBAR] = 0x3000
        name = emulate_privileged(vcpu, ins(Op.CSRW, ra=1,
                                            simm12=int(CSR.MODE)))
        assert name == "illegal_csr"
        assert vcpu.cpu.pc == 0x3000
        assert vcpu.vcsr[CSR.ECAUSE] == int(Cause.ILLEGAL)
        assert vcpu.vcsr[CSR.EVAL] == int(CSR.MODE)
        assert vcpu.vcsr[CSR.EPC] == 0x1000  # the faulting pc, not advanced

    def test_unknown_csr_write_without_vector_triple_faults(self, vcpu):
        from repro.cpu.exits import VMExit

        with pytest.raises(VMExit):
            emulate_privileged(vcpu, ins(Op.CSRW, ra=1, simm12=999))


class TestModeChanges:
    def test_sti_cli_touch_virtual_ie(self, vcpu):
        emulate_privileged(vcpu, ins(Op.STI))
        assert vcpu.vcsr[CSR.IE] == 1
        emulate_privileged(vcpu, ins(Op.CLI))
        assert vcpu.vcsr[CSR.IE] == 0
        assert vcpu.cpu.csr[CSR.IE] == 0

    def test_iret_restores_virtual_mode_and_jumps(self, vcpu):
        vcpu.vcsr[CSR.ESTATUS] = MODE_USER | (1 << 1)
        vcpu.vcsr[CSR.EPC] = 0x200000
        name = emulate_privileged(vcpu, ins(Op.IRET))
        assert name == "iret"
        assert vcpu.virtual_mode == MODE_USER
        assert vcpu.vcsr[CSR.IE] == 1
        assert vcpu.cpu.pc == 0x200000
        assert vcpu.cpu.mode == MODE_USER  # real mode was already user

    def test_iret_triggers_view_switch(self, vcpu):
        mmu = vcpu.cpu.mmu
        assert mmu.kernel_view
        vcpu.vcsr[CSR.ESTATUS] = MODE_USER
        vcpu.vcsr[CSR.EPC] = 0x200000
        emulate_privileged(vcpu, ins(Op.IRET))
        assert not mmu.kernel_view

    def test_hlt_sets_virtual_halt(self, vcpu):
        emulate_privileged(vcpu, ins(Op.HLT))
        assert vcpu.halted


class TestIO:
    def test_out_reaches_virtual_bus(self, vcpu):
        vcpu.cpu.regs[1] = ord("Z")
        emulate_privileged(vcpu, ins(Op.OUT, ra=1, simm12=0x10),
                           port_bus=vcpu.vm.port_bus)
        assert vcpu.vm.devices["console"].text == "Z"

    def test_in_reads_virtual_bus(self, vcpu):
        emulate_privileged(vcpu, ins(Op.IN, rd=2, simm12=0x11),
                           port_bus=vcpu.vm.port_bus)
        assert vcpu.cpu.regs[2] == 1  # console status

    def test_io_without_bus_rejected(self, vcpu):
        with pytest.raises(GuestError):
            emulate_privileged(vcpu, ins(Op.IN, rd=1, simm12=0x10))


class TestGuestStore:
    def test_non_store_rejected(self, vcpu):
        with pytest.raises(GuestError):
            emulate_guest_store(vcpu, ins(Op.ADD), vcpu.vm.guest_mem,
                                vcpu.cpu.mmu)

    def test_unemulatable_op_rejected(self, vcpu):
        with pytest.raises(GuestError):
            emulate_privileged(vcpu, ins(Op.ADD))
