"""vCPU schedulers: proportional share, boost, caps, preemption."""

import pytest

from repro.sched import (
    CpuBoundWork,
    CreditScheduler,
    InteractiveWork,
    RoundRobinScheduler,
    StrideScheduler,
    VCpuTask,
    run_schedule,
)
from repro.sched.entities import TaskState
from repro.sim.kernel import MSEC, SEC
from repro.util.errors import SchedulerError


def hogs(weights, prefix="vm"):
    return [VCpuTask(f"{prefix}{i}", weight=w, workload=CpuBoundWork())
            for i, w in enumerate(weights)]


class TestEntities:
    def test_weight_validation(self):
        with pytest.raises(SchedulerError):
            VCpuTask("x", weight=0)
        with pytest.raises(SchedulerError):
            VCpuTask("x", cap_percent=0)
        with pytest.raises(SchedulerError):
            VCpuTask("x", cap_percent=101)

    def test_interactive_workload_alternates(self):
        work = InteractiveWork(burst_us=10, block_us=20, repeats=2)
        phases = list(work.phases())
        assert phases == [("run", 10), ("block", 20)] * 2

    def test_cpu_bound_finite(self):
        task = VCpuTask("x", workload=CpuBoundWork(total_us=100))
        assert task.remaining_in_phase == 100

    def test_invalid_interactive(self):
        with pytest.raises(SchedulerError):
            InteractiveWork(burst_us=0)


class TestProportionalShare:
    @pytest.mark.parametrize("factory", [CreditScheduler, StrideScheduler])
    def test_weighted_shares(self, factory):
        stats = run_schedule(factory(), hogs([1, 2, 4]), 10 * SEC)
        assert stats.share_error < 0.01
        assert stats.fairness > 0.99
        assert stats.achieved_share["vm2"] == pytest.approx(4 / 7, abs=0.02)

    def test_round_robin_ignores_weights(self):
        stats = run_schedule(RoundRobinScheduler(), hogs([1, 2, 4]), 10 * SEC)
        assert stats.share_error > 0.1
        assert stats.achieved_share["vm0"] == pytest.approx(1 / 3, abs=0.02)

    def test_equal_weights_equal_shares(self):
        stats = run_schedule(CreditScheduler(), hogs([256] * 4), 5 * SEC)
        for share in stats.achieved_share.values():
            assert share == pytest.approx(0.25, abs=0.02)

    def test_single_task_gets_everything(self):
        stats = run_schedule(CreditScheduler(), hogs([256]), 1 * SEC)
        assert stats.achieved_share["vm0"] == pytest.approx(1.0, abs=0.01)


class TestCreditFeatures:
    def _io_mix(self):
        return hogs([256, 256, 256]) + [
            VCpuTask("io", weight=256,
                     workload=InteractiveWork(burst_us=500, block_us=5 * MSEC))
        ]

    def test_boost_collapses_wake_latency(self):
        boosted = run_schedule(CreditScheduler(boost=True), self._io_mix(),
                               3 * SEC)
        plain = run_schedule(CreditScheduler(boost=False), self._io_mix(),
                             3 * SEC)
        assert boosted.wake_latency["io"].p50 < 200
        assert plain.wake_latency["io"].p50 > 1000
        assert (boosted.wake_latency["io"].mean
                < plain.wake_latency["io"].mean / 10)

    def test_cap_limits_share(self):
        tasks = hogs([256]) + [
            VCpuTask("capped", weight=256, cap_percent=20,
                     workload=CpuBoundWork())
        ]
        stats = run_schedule(CreditScheduler(), tasks, 10 * SEC)
        assert stats.achieved_share["capped"] <= 0.22
        assert stats.achieved_share["vm0"] >= 0.75

    def test_cap_does_not_apply_without_contention(self):
        tasks = [VCpuTask("solo", weight=256, cap_percent=50,
                          workload=CpuBoundWork())]
        stats = run_schedule(CreditScheduler(), tasks, 2 * SEC)
        # The cap still binds even alone: it is a hard ceiling.
        assert stats.achieved_share["solo"] <= 0.55

    def test_duplicate_task_rejected(self):
        sched = CreditScheduler()
        task = VCpuTask("x", workload=CpuBoundWork())
        sched.add_task(task, 0)
        with pytest.raises(SchedulerError):
            sched.add_task(task, 0)


class TestStride:
    def test_deterministic_sequence(self):
        s1 = run_schedule(StrideScheduler(), hogs([1, 3]), 2 * SEC)
        s2 = run_schedule(StrideScheduler(), hogs([1, 3]), 2 * SEC)
        assert s1.cpu_time == s2.cpu_time

    def test_duplicate_rejected(self):
        sched = StrideScheduler()
        task = VCpuTask("x", workload=CpuBoundWork())
        sched.add_task(task, 0)
        with pytest.raises(SchedulerError):
            sched.add_task(task, 0)


class TestMultiCore:
    def test_two_cores_double_capacity(self):
        stats = run_schedule(CreditScheduler(num_cores=2), hogs([256] * 4),
                             5 * SEC, num_cores=2)
        total = sum(stats.achieved_share.values())
        assert total == pytest.approx(1.0, abs=0.02)  # of 2-core capacity
        for share in stats.achieved_share.values():
            assert share == pytest.approx(0.25, abs=0.02)

    def test_fewer_tasks_than_cores(self):
        stats = run_schedule(CreditScheduler(num_cores=4), hogs([256]),
                             1 * SEC, num_cores=4)
        # One hog can use at most one core = 25% of capacity.
        assert stats.achieved_share["vm0"] == pytest.approx(0.25, abs=0.02)


class TestCompletion:
    def test_finite_tasks_complete(self):
        tasks = [VCpuTask("f", workload=CpuBoundWork(total_us=50 * MSEC))]
        stats = run_schedule(CreditScheduler(), tasks, 1 * SEC)
        assert tasks[0].state is TaskState.DONE
        assert stats.cpu_time["f"] == 50 * MSEC

    def test_interactive_repeats_then_done(self):
        tasks = [VCpuTask("i", workload=InteractiveWork(
            burst_us=1 * MSEC, block_us=1 * MSEC, repeats=5))]
        run_schedule(CreditScheduler(), tasks, 1 * SEC)
        assert tasks[0].state is TaskState.DONE
        assert tasks[0].cpu_time == 5 * MSEC
        assert tasks[0].blocks == 5
