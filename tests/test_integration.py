"""Cross-subsystem integration: the mechanisms compose on real VMs.

These are the scenarios a real platform lives through: overcommitted
hosts running deduplicated, partially swapped guests that then get
live-migrated or snapshotted -- all while the guests keep computing
correct results.
"""

import pytest

from repro.core import (
    GuestConfig,
    Hypervisor,
    MMUVirtMode,
    VirtMode,
    VMScheduler,
    restore_vm,
    snapshot_vm,
)
from repro.core.hypervisor import RunOutcome
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.migration import LiveMigrator, PostCopyMigrator
from repro.overcommit import HostSwap, PageSharer
from repro.util.units import MIB

GUEST_MEM = 16 * MIB
PAGES, PASSES = 20, 2500
EXPECTED = expected_memtouch(PAGES, PASSES)


def start(hv, name, warmup=100_000, mmu=MMUVirtMode.NESTED):
    vm = hv.create_vm(GuestConfig(name=name, memory_bytes=GUEST_MEM,
                                  virt_mode=VirtMode.HW_ASSIST,
                                  mmu_mode=mmu))
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEM))
    hv.load_program(vm, kernel)
    hv.load_program(vm, workloads.memtouch(PAGES, PASSES))
    hv.reset_vcpu(vm, kernel.entry)
    hv.run(vm, max_guest_instructions=warmup)
    return vm


def finish_ok(hv, vm):
    outcome = hv.run(vm, max_guest_instructions=80_000_000)
    diag = read_diag(vm.guest_mem)
    assert outcome is RunOutcome.SHUTDOWN, (vm.name, outcome)
    assert diag.user_result == EXPECTED, (vm.name, diag.user_result)
    assert diag.fault_cause == 0


def test_sharing_plus_swap_on_the_same_guests():
    hv = Hypervisor(memory_bytes=96 * MIB)
    vms = [start(hv, f"g{i}") for i in range(2)]
    sharer = PageSharer(hv)
    scan = sharer.scan()
    assert scan.pages_merged > 1000
    swap = HostSwap(hv)
    for vm in vms:
        swap.install(vm)
    # Everything is shared right after the scan, so nothing is
    # evictable -- the swap layer must refuse rather than corrupt.
    assert swap.evict_some(50) == 0
    # Let the guests break some COWs, giving swap private pages to take.
    for vm in vms:
        hv.run(vm, max_guest_instructions=40_000)
    assert sharer.cow_breaks > 0
    evicted = swap.evict_some(20)
    assert evicted > 0
    for vm in vms:
        finish_ok(hv, vm)


def test_migrate_a_guest_with_shared_pages():
    src = Hypervisor(memory_bytes=96 * MIB)
    dst = Hypervisor(memory_bytes=64 * MIB)
    a = start(src, "a")
    b = start(src, "b")
    PageSharer(src).scan()
    # Migrate one of the sharers away; the destination gets private
    # copies (page contents travel, sharing does not).
    result = LiveMigrator(src, dst, bytes_per_cycle=4.0).migrate(
        a, quantum_instructions=30_000
    )
    finish_ok(dst, result.dest_vm)
    finish_ok(src, b)


def test_snapshot_a_partially_swapped_guest_fails_loudly_or_works():
    # Snapshotting requires all pages resident; swap them back first.
    hv = Hypervisor(memory_bytes=64 * MIB)
    vm = start(hv, "s")
    swap = HostSwap(hv)
    swap.install(vm)
    swap.swap_out(vm, 2000)
    # swapped page is absent from the snapshot's mapped set
    snap = snapshot_vm(vm)
    assert 2000 not in snap.mapped_gfns
    swap.swap_in(vm, 2000)
    snap_full = snapshot_vm(vm)
    assert 2000 in snap_full.mapped_gfns
    clone = restore_vm(hv, snap_full, name="sc")
    finish_ok(hv, clone)
    finish_ok(hv, vm)


def test_snapshot_then_migrate_the_clone():
    hv1 = Hypervisor(memory_bytes=96 * MIB)
    hv2 = Hypervisor(memory_bytes=64 * MIB)
    vm = start(hv1, "orig")
    clone = restore_vm(hv1, snapshot_vm(vm), name="clone")
    result = LiveMigrator(hv1, hv2, bytes_per_cycle=4.0).migrate(
        clone, quantum_instructions=30_000
    )
    finish_ok(hv2, result.dest_vm)
    finish_ok(hv1, vm)


def test_postcopy_into_a_scheduled_host():
    # Destination host is already running another guest under the VM
    # scheduler; the post-copied arrival joins and both finish.
    src = Hypervisor(memory_bytes=64 * MIB)
    dst = Hypervisor(memory_bytes=64 * MIB)
    resident = start(dst, "resident", warmup=50_000)
    traveler = start(src, "traveler")
    post = PostCopyMigrator(src, dst, bytes_per_cycle=4.0)
    result = post.migrate_and_run(traveler)
    assert result.outcome is RunOutcome.SHUTDOWN
    assert read_diag(result.dest_vm.guest_mem).user_result == EXPECTED
    finish_ok(dst, resident)


def test_scheduler_runs_shared_guests():
    hv = Hypervisor(memory_bytes=96 * MIB)
    vms = [start(hv, f"g{i}", warmup=60_000) for i in range(2)]
    PageSharer(hv).scan()
    sched = VMScheduler(hv, quantum_cycles=30_000)
    for vm in vms:
        sched.add(vm)
    report = sched.run()
    for vm in vms:
        assert report.outcomes[vm.name] is RunOutcome.SHUTDOWN
        assert read_diag(vm.guest_mem).user_result == EXPECTED
