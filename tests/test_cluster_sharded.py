"""The sharded cluster simulation: determinism, parity, fault plans."""

import pickle

import pytest

from repro.cluster.balancer import plan_rebalance
from repro.cluster.coordinator import (
    ClusterSimConfig,
    _build_shards,
    run_cluster_shard_epoch,
    run_sharded_cluster,
)
from repro.cluster.host import Host, HostSpec, VMSpec
from repro.faults.injector import FaultInjector, FaultPlan, FaultSpec
from repro.util.errors import ConfigError
from repro.util.units import GIB

CFG = ClusterSimConfig(fleet_size=80, shards=4, epochs=4, seed=11,
                       crash_rate=0.02, arrivals_per_epoch=2)


def test_jobs_invariance_byte_identical():
    # The tentpole invariant: fixed shards, any jobs -> same bytes.
    r1 = run_sharded_cluster(CFG, jobs=1)
    r2 = run_sharded_cluster(CFG, jobs=4)
    assert r1.bytes == r2.bytes
    assert r1.sha256 == r2.sha256
    assert r1.stats == r2.stats


def test_single_shard_reproducible():
    cfg = ClusterSimConfig(fleet_size=60, shards=1, epochs=3, seed=5,
                           crash_rate=0.05)
    assert (run_sharded_cluster(cfg, jobs=1).bytes
            == run_sharded_cluster(cfg, jobs=1).bytes)


def test_shard_count_is_part_of_identity():
    # Repartitioning forks different RNG streams; results legitimately
    # differ (exactly as a different seed would).
    two = ClusterSimConfig(fleet_size=80, shards=2, epochs=4, seed=11,
                           crash_rate=0.02, arrivals_per_epoch=2)
    assert run_sharded_cluster(CFG).sha256 != run_sharded_cluster(two).sha256


def test_merged_manifest_shape():
    report = run_sharded_cluster(CFG, jobs=1, experiment="E8s")
    manifest = report.manifest
    assert manifest["experiment"] == "E8s"
    assert manifest["extra"]["cluster_sharded"]["shards"] == 4
    # Per-shard namespaces survive the merge; shared faults counters sum.
    names = manifest["metrics"]
    assert any(n.startswith("cluster.shard.000.") for n in names)
    assert any(n.startswith("cluster.shard.003.") for n in names)
    assert "faults.injected.total" in names
    assert "cluster.coordinator.evac.requests" in names
    # Finalized: no raw histogram samples left.
    assert all("values" not in snap for snap in names.values())


def test_epoch_function_is_pure_under_pickling():
    # The inline path hands the worker function live state; the pooled
    # path hands it a pickled copy. Both must produce identical results
    # -- that equivalence is what jobs-invariance rests on.
    states = _build_shards(CFG)
    state = states[0]
    clone = pickle.loads(pickle.dumps(state))
    _, summaries_a, out_a = run_cluster_shard_epoch((state, 0, ()))
    _, summaries_b, out_b = run_cluster_shard_epoch((clone, 0, ()))
    assert summaries_a == summaries_b
    assert out_a == out_b


def test_per_shard_fault_plans_are_decoupled_and_reproducible():
    plan = FaultPlan(seed=42, specs=[FaultSpec("host.crash", rate=0.5)])
    shard0, shard1 = plan.for_shard(0), plan.for_shard(1)
    assert shard0.seed != shard1.seed != plan.seed
    assert shard0.specs == plan.specs
    # Same shard, same schedule -- byte for byte.
    a, b = FaultInjector(shard0), FaultInjector(plan.for_shard(0))
    for _ in range(64):
        a.fires("host.crash")
        b.fires("host.crash")
    assert a.trace_bytes() == b.trace_bytes()
    # Different shard, different schedule.
    c = FaultInjector(shard1)
    for _ in range(64):
        c.fires("host.crash")
    assert c.trace_bytes() != a.trace_bytes()
    with pytest.raises(ConfigError):
        plan.for_shard(-1)


def test_cross_shard_evacuation_delivers_vms():
    # With crashes on, some VM crosses a shard boundary via the
    # coordinator; the run still conserves VMs (resident + unplaced ==
    # initial + accepted arrivals).
    cfg = ClusterSimConfig(fleet_size=80, shards=4, epochs=6, seed=3,
                           crash_rate=0.05, arrivals_per_epoch=0)
    report = run_sharded_cluster(cfg, jobs=1)
    metrics = report.manifest["metrics"]
    assert metrics["cluster.coordinator.evac.requests"]["value"] > 0
    replaced = metrics["cluster.coordinator.evac.replaced"]["value"]
    assert replaced > 0
    accepted = metrics.get("cluster.coordinator.admission.accepted",
                           {"value": 0})["value"]
    assert (report.stats["vms_resident"] + report.stats["evac_unplaced"]
            == cfg.fleet_size + accepted)


def test_host_summary_round_trip():
    spec = HostSpec(cores=8, cpu_capacity=8.0, memory_bytes=16 * GIB)
    host = Host(spec, 3)
    host.place(VMSpec("b", cpu_demand=1.0, memory_bytes=2 * GIB))
    host.place(VMSpec("a", cpu_demand=2.0, memory_bytes=4 * GIB))
    summary = host.summary(shard=2)
    assert summary.shard == 2
    assert [vm.name for vm in summary.vms] == ["a", "b"]  # sorted
    assert summary.cpu_demand == host.cpu_demand
    assert summary.memory_free == host.memory_free
    assert summary.fits(VMSpec("c", memory_bytes=8 * GIB))
    assert not summary.fits(VMSpec("d", memory_bytes=16 * GIB))
    assert pickle.loads(pickle.dumps(summary)) == summary


def test_plan_rebalance_moves_load_off_hot_host():
    spec = HostSpec(cores=4, cpu_capacity=4.0, memory_bytes=32 * GIB)
    hot = Host(spec, 0)
    for i in range(4):
        hot.place(VMSpec(f"v{i}", cpu_demand=1.0, memory_bytes=1 * GIB))
    cold = Host(spec, 1)
    moves = plan_rebalance([hot.summary(0), cold.summary(1)],
                           high_watermark=0.85, low_watermark=0.70,
                           max_moves=4)
    assert moves and moves[0].src == hot.name and moves[0].dst == cold.name
    assert moves[0].src_shard == 0 and moves[0].dst_shard == 1
    # Planned end state respects the high watermark on the source.
    moved = {m.vm.name for m in moves}
    remaining = sum(v.cpu_demand for v in hot.vms.values()
                    if v.name not in moved)
    assert remaining <= 0.85 * spec.cpu_capacity


def test_plan_rebalance_respects_memory_and_budget():
    spec = HostSpec(cores=4, cpu_capacity=4.0, memory_bytes=4 * GIB)
    hot = Host(spec, 0)
    hot.place(VMSpec("big", cpu_demand=4.0, memory_bytes=4 * GIB))
    full = Host(spec, 1)
    full.place(VMSpec("filler", cpu_demand=0.1, memory_bytes=3 * GIB))
    # No target has 4 GiB free: no moves.
    assert plan_rebalance([hot.summary(0), full.summary(0)]) == []
    with pytest.raises(ConfigError):
        plan_rebalance([], high_watermark=0.5, low_watermark=0.9)


def test_config_validation():
    with pytest.raises(ConfigError):
        ClusterSimConfig(fleet_size=0).validate()
    with pytest.raises(ConfigError):
        ClusterSimConfig(shards=0).validate()
    with pytest.raises(ConfigError):
        ClusterSimConfig(demand_jitter=1.5).validate()
    with pytest.raises(ConfigError):
        run_sharded_cluster(ClusterSimConfig(fleet_size=10, epochs=1), jobs=0)
