"""Fast smoke runs of the experiment runners (tiny parameters).

The full-size runs with shape assertions live in benchmarks/; these
keep `pytest tests/` exercising the harness code end to end.
"""

import pytest

from repro.bench import (
    run_e1,
    run_e2,
    run_e4,
    run_e5,
    run_e6,
    run_e7,
    run_e8,
    run_e8_scale,
    run_e9_bt,
    run_shard_scaling,
)
from repro.sim.kernel import SEC


def test_e1_small():
    result = run_e1(syscalls=40)
    assert result.experiment == "E1"
    modes = result.raw["modes"]
    assert len(modes) == 7
    assert "hw+hmode" in modes
    assert not modes["trap-emulate"].correct
    assert modes["native"].exits == 0
    assert "trap-emulate" in result.render()


def test_e2_small():
    result = run_e2(pt_cycles=30, walk_pages=64, walk_accesses=1500)
    pt = result.raw["pt_stress"]
    assert pt["nested"].total_cycles < pt["shadow"].total_cycles


def test_e4_small():
    result = run_e4(requests=16)
    cases = result.raw["cases"]
    assert cases["blk-emulated"]["virt"].exits > cases["blk-virtio-b4"]["virt"].exits


def test_e5_small():
    result = run_e5(duration_us=1 * SEC)
    assert result.raw["credit"].share_error < 0.05
    assert "latency_table" in result.raw


def test_e6_small():
    result = run_e6(dirty_rates=[0, 8000], vm_pages=16384)
    assert result.raw[0]["pre"].converged
    assert result.raw[8000]["pre"].rounds > 1


def test_e7_small():
    result = run_e7(vm_counts=[2, 8])
    assert len(result.table.rows) == 2


def test_e8_small():
    result = run_e8(densities=[1, 4], fleet_size=12)
    assert result.raw["savings"].hosts_after < 12


def test_e8_scale_small():
    result = run_e8_scale(fleet_sizes=[60], shards=2, jobs=1, epochs=2)
    assert result.experiment == "E8s"
    report = result.raw["reports"][60]
    assert report.stats["vms_resident"] > 0
    manifest = result.manifest()
    assert manifest["experiment"] == "E8s"
    assert manifest["extra"]["cluster_sharded"]["shards"] == 2


def test_shard_scaling_small():
    result = run_shard_scaling(quick=True, fleet_size=60, shards=2,
                               epochs=2, jobs_list=[1, 2])
    assert result.parity_ok
    assert result.points[0]["jobs"] == 1
    payload = result.to_json()
    assert payload["schema"] == "pyvisor.bench.shard/1"
    assert payload["cpu_count"] >= 1
    # Same machine, same run: the baseline check passes against itself.
    assert result.check_baseline(payload) == []


def test_e9b_small():
    result = run_e9_bt(syscalls=60)
    assert result.raw["no cache"].total_cycles > result.raw["full BT"].total_cycles


def test_tables_render_without_error():
    result = run_e5(duration_us=SEC // 2)
    text = result.render()
    assert "scheduler" in text
