"""Cluster: hosts, placement, interference, power, balancing."""

import pytest

from repro.cluster import (
    Host,
    HostSpec,
    LoadBalancer,
    Placement,
    PowerModel,
    VMSpec,
    best_fit,
    consolidation_savings,
    first_fit,
    host_performance,
    plan_consolidation,
    worst_fit,
)
from repro.sim.kernel import Simulator
from repro.sim.link import NetworkLink
from repro.util.errors import ConfigError
from repro.util.units import GIB, MIB

SPEC = HostSpec(cores=4, cpu_capacity=4.0, memory_bytes=16 * GIB)


def vm(name, cpu=1.0, mem=2 * GIB, interactive=False):
    return VMSpec(name, cpu_demand=cpu, memory_bytes=mem,
                  interactive=interactive)


class TestHost:
    def test_place_and_accounting(self):
        host = Host(SPEC, 0)
        host.place(vm("a", cpu=1.5, mem=4 * GIB))
        assert host.memory_used == 4 * GIB
        assert host.cpu_demand == 1.5
        assert host.memory_free == 12 * GIB

    def test_memory_is_hard_constraint(self):
        host = Host(SPEC, 0)
        host.place(vm("a", mem=12 * GIB))
        assert not host.fits(vm("b", mem=8 * GIB))
        with pytest.raises(ConfigError):
            host.place(vm("b", mem=8 * GIB))

    def test_cpu_oversubscription_allowed(self):
        host = Host(SPEC, 0)
        for i in range(6):
            host.place(vm(f"v{i}", cpu=1.0, mem=1 * GIB))
        assert host.cpu_demand == 6.0
        assert host.cpu_utilization == 1.0  # clipped

    def test_duplicate_and_missing_vm(self):
        host = Host(SPEC, 0)
        host.place(vm("a"))
        with pytest.raises(ConfigError):
            host.place(vm("a"))
        with pytest.raises(ConfigError):
            host.remove("nope")

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            HostSpec(cores=0).validate()
        with pytest.raises(ConfigError):
            HostSpec(idle_watts=300, peak_watts=200).validate()


class TestPlacement:
    def _hosts(self, n=3):
        return [Host(SPEC, i) for i in range(n)]

    def test_first_fit_fills_in_order(self):
        hosts = self._hosts()
        placement = first_fit([vm(f"v{i}", mem=6 * GIB) for i in range(4)],
                              hosts)
        assert len(hosts[0].vms) == 2
        assert len(hosts[1].vms) == 2
        assert placement.hosts_used == 2

    def test_best_fit_packs_tightest(self):
        hosts = self._hosts(2)
        hosts[0].place(vm("pre", mem=10 * GIB))
        best_fit([vm("new", mem=4 * GIB)], hosts)
        assert "new" in hosts[0].vms  # squeezed into the fuller host

    def test_worst_fit_spreads(self):
        hosts = self._hosts(2)
        hosts[0].place(vm("pre", mem=10 * GIB))
        worst_fit([vm("new", mem=4 * GIB)], hosts)
        assert "new" in hosts[1].vms

    def test_placement_failure(self):
        hosts = self._hosts(1)
        with pytest.raises(ConfigError):
            first_fit([vm("big", mem=20 * GIB)], hosts)

    def test_consolidation_minimizes_hosts(self):
        vms = [vm(f"v{i}", cpu=1.0, mem=4 * GIB) for i in range(8)]
        placement = plan_consolidation(vms, SPEC, cpu_overcommit=2.0)
        assert placement.hosts_used == 2  # 4 VMs x 4 GiB per 16 GiB host
        assert placement.total_vms == 8

    def test_consolidation_respects_cpu_cap(self):
        vms = [vm(f"v{i}", cpu=2.0, mem=1 * GIB) for i in range(8)]
        tight = plan_consolidation(vms, SPEC, cpu_overcommit=1.0)
        loose = plan_consolidation(vms, SPEC, cpu_overcommit=2.0)
        assert tight.hosts_used > loose.hosts_used

    def test_host_of_lookup(self):
        vms = [vm("a"), vm("b")]
        placement = plan_consolidation(vms, SPEC)
        assert placement.host_of("a") is not None
        assert placement.host_of("zz") is None


class TestInterference:
    def _loaded(self, n, interactive_first=True):
        host = Host(HostSpec(cores=4, cpu_capacity=4.0,
                             memory_bytes=64 * GIB), 0)
        for i in range(n):
            host.place(vm(f"v{i}", cpu=1.0, mem=1 * GIB,
                          interactive=(i == 0 and interactive_first)))
        return host

    def test_linear_region(self):
        perf = host_performance(self._loaded(2), virt_overhead=0.0)
        assert perf.aggregate_throughput == pytest.approx(2.0)
        assert not perf.saturated

    def test_knee_at_capacity(self):
        perf4 = host_performance(self._loaded(4), virt_overhead=0.0)
        perf8 = host_performance(self._loaded(8), virt_overhead=0.0)
        assert perf4.aggregate_throughput == pytest.approx(4.0)
        assert perf8.aggregate_throughput == pytest.approx(4.0)
        assert perf8.throughput["v1"] == pytest.approx(0.5)

    def test_latency_blows_up_near_saturation(self):
        low = host_performance(self._loaded(2))
        high = host_performance(self._loaded(4))
        assert high.latency_factor["v0"] > 5 * low.latency_factor["v0"]

    def test_virt_overhead_shaves_capacity(self):
        none = host_performance(self._loaded(6), virt_overhead=0.0)
        taxed = host_performance(self._loaded(6), virt_overhead=0.10)
        assert taxed.aggregate_throughput < none.aggregate_throughput

    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigError):
            host_performance(self._loaded(1), virt_overhead=-0.1)


class TestPower:
    def test_idle_host_powered_off(self):
        model = PowerModel()
        assert model.host_watts(Host(SPEC, 0)) == 0.0

    def test_watts_scale_with_utilization(self):
        model = PowerModel()
        light = Host(SPEC, 0)
        light.place(vm("a", cpu=1.0, mem=1 * GIB))
        heavy = Host(SPEC, 1)
        for i in range(4):
            heavy.place(vm(f"b{i}", cpu=1.0, mem=1 * GIB))
        assert model.host_watts(light) < model.host_watts(heavy)
        assert model.host_watts(heavy) == SPEC.peak_watts

    def test_consolidation_savings_report(self):
        vms = [vm(f"v{i}", cpu=1.0, mem=2 * GIB) for i in range(12)]
        before_hosts = []
        for i, v in enumerate(vms):
            host = Host(SPEC, 100 + i)
            host.place(v)
            before_hosts.append(host)
        before = Placement(hosts=before_hosts)
        after = plan_consolidation(vms, SPEC, cpu_overcommit=1.5)
        savings = consolidation_savings(before, after)
        assert savings.hosts_after < savings.hosts_before
        assert savings.annual_saving > 0
        assert savings.consolidation_ratio > 2
        assert savings.saving_per_retired_host > 0

    def test_mismatched_placements_rejected(self):
        a = Placement(hosts=[Host(SPEC, 0)])
        host = Host(SPEC, 1)
        host.place(vm("x"))
        b = Placement(hosts=[host])
        with pytest.raises(ConfigError):
            consolidation_savings(a, b)


class TestBalancer:
    def _link(self):
        return NetworkLink(Simulator(), bandwidth_bytes_per_sec=125 * MIB,
                           latency=100)

    def test_relieves_overload(self):
        hosts = [Host(SPEC, i) for i in range(3)]
        for i in range(8):
            hosts[0].place(vm(f"hot{i}", cpu=1.0, mem=1 * GIB))
        placement = Placement(hosts=hosts)
        balancer = LoadBalancer(self._link(), high_watermark=0.9,
                                low_watermark=0.8)
        report = balancer.rebalance(placement)
        assert report.migration_count > 0
        assert report.imbalance_after < report.imbalance_before
        assert all(h.cpu_demand / h.spec.cpu_capacity <= 0.95
                   for h in hosts)
        assert report.total_downtime_us > 0

    def test_noop_when_balanced(self):
        hosts = [Host(SPEC, i) for i in range(2)]
        hosts[0].place(vm("a", cpu=1.0, mem=1 * GIB))
        hosts[1].place(vm("b", cpu=1.0, mem=1 * GIB))
        balancer = LoadBalancer(self._link())
        report = balancer.rebalance(Placement(hosts=hosts))
        assert report.migration_count == 0

    def test_no_target_no_migration(self):
        hosts = [Host(SPEC, 0)]  # nowhere to go
        for i in range(8):
            hosts[0].place(vm(f"v{i}", cpu=1.0, mem=1 * GIB))
        balancer = LoadBalancer(self._link())
        report = balancer.rebalance(Placement(hosts=hosts))
        assert report.migration_count == 0

    def test_watermark_validation(self):
        with pytest.raises(ConfigError):
            LoadBalancer(self._link(), high_watermark=0.5, low_watermark=0.8)
