"""Cycle-quantum scheduling of real VMs (functional consolidation)."""

import pytest

from repro.core import (
    GuestConfig,
    Hypervisor,
    MMUVirtMode,
    VirtMode,
    VMScheduler,
)
from repro.core.hypervisor import RunOutcome
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_cpu_bound
from repro.util.errors import SchedulerError
from repro.util.units import MIB

GUEST_MEM = 16 * MIB


def make_guest(hv, name, workload):
    vm = hv.create_vm(GuestConfig(name=name, memory_bytes=GUEST_MEM,
                                  virt_mode=VirtMode.HW_ASSIST,
                                  mmu_mode=MMUVirtMode.NESTED))
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEM))
    hv.load_program(vm, kernel)
    hv.load_program(vm, workload)
    hv.reset_vcpu(vm, kernel.entry)
    return vm


def test_two_guests_interleave_and_both_finish():
    hv = Hypervisor(memory_bytes=96 * MIB)
    iterations = 30_000
    vms = [make_guest(hv, f"g{i}", workloads.cpu_bound(iterations))
           for i in range(2)]
    sched = VMScheduler(hv, quantum_cycles=20_000)
    for vm in vms:
        sched.add(vm)
    report = sched.run()
    expected = expected_cpu_bound(iterations)
    for vm in vms:
        assert report.outcomes[vm.name] is RunOutcome.SHUTDOWN
        assert read_diag(vm.guest_mem).user_result == expected
        # genuinely interleaved: many dispatches each
        assert report.dispatches[vm.name] > 3


def test_equal_weights_equal_progress():
    hv = Hypervisor(memory_bytes=96 * MIB)
    vms = [make_guest(hv, f"g{i}", workloads.cpu_bound(40_000))
           for i in range(2)]
    sched = VMScheduler(hv, quantum_cycles=20_000)
    for vm in vms:
        sched.add(vm, weight=256)
    report = sched.run()
    a, b = (report.cycles[vm.name] for vm in vms)
    assert abs(a - b) / max(a, b) < 0.1


def test_heavier_weight_finishes_first():
    hv = Hypervisor(memory_bytes=96 * MIB)
    light = make_guest(hv, "light", workloads.cpu_bound(40_000))
    heavy = make_guest(hv, "heavy", workloads.cpu_bound(40_000))
    sched = VMScheduler(hv, quantum_cycles=10_000)
    sched.add(light, weight=64)
    sched.add(heavy, weight=256)
    report = sched.run()
    assert report.finish_order[0] == "heavy"
    # Both still completed correctly.
    assert report.outcomes["light"] is RunOutcome.SHUTDOWN


def test_idle_guest_is_parked_not_spun():
    hv = Hypervisor(memory_bytes=96 * MIB)
    worker = make_guest(hv, "worker", workloads.cpu_bound(30_000))
    idler = make_guest(hv, "idler", workloads.hello())  # exits immediately
    sched = VMScheduler(hv, quantum_cycles=20_000)
    sched.add(worker)
    sched.add(idler)
    report = sched.run()
    assert report.outcomes["idler"] is RunOutcome.SHUTDOWN
    # The idler stopped consuming once done; the worker got the rest.
    assert report.cycles["worker"] > 5 * report.cycles["idler"]


def test_budget_stops_run():
    hv = Hypervisor(memory_bytes=96 * MIB)
    vm = make_guest(hv, "big", workloads.cpu_bound(10_000_000))
    sched = VMScheduler(hv, quantum_cycles=20_000)
    sched.add(vm)
    report = sched.run(max_total_cycles=100_000)
    assert report.outcomes["big"] is RunOutcome.CYCLE_LIMIT
    assert report.cycles["big"] < 250_000


def test_validation():
    hv = Hypervisor(memory_bytes=96 * MIB)
    with pytest.raises(SchedulerError):
        VMScheduler(hv, quantum_cycles=0)
    vm = make_guest(hv, "v", workloads.hello())
    sched = VMScheduler(hv)
    sched.add(vm)
    with pytest.raises(SchedulerError):
        sched.add(vm)
    with pytest.raises(SchedulerError):
        sched.add(make_guest(hv, "w", workloads.hello()), weight=0)
