"""Fault injection, detection, and recovery (the E10 subsystem)."""

import pytest

from repro.cluster import Host, HostSpec, VMSpec, failover, first_fit
from repro.core.hypervisor import RunOutcome
from repro.devices.block import (
    BLK_CMD,
    BLK_COUNT,
    BLK_DMA,
    BLK_SECTOR,
    BLK_STATUS,
    CMD_READ,
    CMD_WRITE,
    STATUS_ERROR,
    STATUS_READY,
)
from repro.faults import (
    DeviceTimeoutMonitor,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    GuestProgressWatchdog,
    MicroRebooter,
    RetryPolicy,
)
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.migration import LiveMigrator
from repro.sim.kernel import Simulator
from repro.sim.link import NetworkLink
from repro.util.errors import (
    ConfigError,
    DeviceError,
    LinkError,
    MemoryError_,
    MigrationError,
)
from repro.util.units import GIB, MIB, PAGE_SIZE

from tests.conftest import GUEST_MEM, make_vm


def _injector(*specs, seed=7):
    return FaultInjector(FaultPlan(seed=seed, specs=list(specs)))


# -- injector ----------------------------------------------------------------


def test_fixed_seed_schedule_is_byte_for_byte_reproducible():
    def run(seed):
        inj = _injector(
            FaultSpec("link.drop", rate=0.3),
            FaultSpec("block.io_error", rate=0.1, after=5),
            seed=seed,
        )
        for i in range(200):
            inj.fires("link.drop")
            if i % 3 == 0:
                inj.fires("block.io_error")
            inj.fires("never.planned")
        return inj.trace_bytes()

    assert run(42) == run(42)
    assert run(42) != run(43)


def test_spec_pins_exact_opportunity():
    inj = _injector(FaultSpec("link.drop", rate=1.0, after=3, count=2))
    fired_at = [i for i in range(10) if inj.fires("link.drop")]
    assert fired_at == [3, 4]  # exactly the (after+1)-th and next, no more
    assert inj.fired("link.drop") == 2
    assert inj.opportunities("link.drop") == 10


def test_unplanned_site_never_fires_and_never_perturbs_others():
    """Per-site forked RNG streams: drawing at one site must not shift
    another site's schedule."""
    a = _injector(FaultSpec("link.drop", rate=0.5))
    b = _injector(FaultSpec("link.drop", rate=0.5))
    seq_a = [a.fires("link.drop") for _ in range(100)]
    seq_b = []
    for _ in range(100):
        b.fires("other.site")  # unplanned: no RNG draw
        seq_b.append(b.fires("link.drop"))
    assert seq_a == seq_b
    assert any(seq_a) and not all(seq_a)


def test_plan_validation():
    with pytest.raises(ConfigError):
        FaultPlan(seed=1, specs=[FaultSpec("link.drop", rate=1.5)]).validate()
    with pytest.raises(ConfigError):
        FaultPlan(
            seed=1,
            specs=[FaultSpec("link.drop", rate=0.1),
                   FaultSpec("link.drop", rate=0.2)],
        ).validate()


def test_unknown_site_rejected_at_plan_build():
    # The typo'd site must fail loudly at validate() time, not silently
    # never fire at run time.
    with pytest.raises(ConfigError, match="unknown fault site"):
        FaultPlan(
            seed=1, specs=[FaultSpec("migrate.link_drp", rate=1.0)]
        ).validate()
    with pytest.raises(ConfigError, match="unknown fault site"):
        FaultInjector(FaultPlan.from_rates(seed=1, rates={"nope.site": 0.5}))


def test_register_site_extends_registry():
    from repro.faults.injector import known_sites, register_site

    assert "migrate.link_drop" in known_sites()
    register_site("test.custom_site", "unit-test-only site")
    try:
        FaultPlan(
            seed=1, specs=[FaultSpec("test.custom_site", rate=1.0)]
        ).validate()
        # Idempotent re-registration is fine; a conflicting description
        # is rejected.
        register_site("test.custom_site", "unit-test-only site")
        with pytest.raises(ConfigError):
            register_site("test.custom_site", "a different description")
    finally:
        from repro.faults import injector as _inj

        _inj._KNOWN_SITES.pop("test.custom_site", None)


def test_docstring_site_table_matches_catalog():
    # Every ``subsystem.point`` token in the module docstring must be a
    # registered site and vice versa, so the docs can't drift from the
    # registry again (a typo'd table entry once shipped unnoticed).
    import re

    from repro.faults import injector as inj_mod
    from repro.faults.injector import site_catalog

    documented = set(re.findall(r"``([a-z_]+\.[a-z_]+)``", inj_mod.__doc__))
    catalog = {name for name, _desc in site_catalog()}
    assert documented == catalog


def test_catalog_names_and_subsystem_tags_are_consistent():
    # site_catalog() is the single source for ``repro faults --list``;
    # every entry must be sorted, described, and carry a well-formed
    # ``subsystem.point`` name (the CLI derives its [subsystem] tag by
    # splitting on the first dot).
    import re

    from repro.faults.injector import site_catalog

    sites = site_catalog()
    names = [name for name, _d in sites]
    assert names == sorted(names)
    for name, description in sites:
        assert re.fullmatch(r"[a-z_]+\.[a-z_]+", name), name
        assert description, f"{name} has no description"
    assert "hmode.delegation_miss" in names
    assert "hmode.gstage_stall" in names


def test_cli_faults_list_shows_hmode_sites(capsys):
    import argparse

    from repro.cli import _cmd_faults

    assert _cmd_faults(argparse.Namespace(list=True)) == 0
    out = capsys.readouterr().out
    assert "hmode.delegation_miss" in out
    assert "hmode.gstage_stall" in out
    assert "[hmode]" in out


def test_hmode_sites_have_forked_streams_like_irq():
    # Planning the hmode sites must not shift any other site's
    # schedule: per-site streams are forked, so the irq.lost sequence
    # is identical with and without the hmode specs in the plan.
    without = _injector(FaultSpec("irq.lost", rate=0.5))
    with_hmode = _injector(
        FaultSpec("irq.lost", rate=0.5),
        FaultSpec("hmode.delegation_miss", rate=0.5),
        FaultSpec("hmode.gstage_stall", rate=0.5),
    )
    seq_a = [without.fires("irq.lost") for _ in range(100)]
    seq_b = []
    for _ in range(100):
        with_hmode.fires("hmode.delegation_miss")
        with_hmode.fires("hmode.gstage_stall")
        seq_b.append(with_hmode.fires("irq.lost"))
    assert seq_a == seq_b
    assert any(seq_a) and not all(seq_a)


def test_hmode_sites_pin_like_any_other():
    inj = _injector(
        FaultSpec("hmode.delegation_miss", rate=1.0, after=3, count=1))
    fired_at = [i for i in range(8) if inj.fires("hmode.delegation_miss")]
    assert fired_at == [3]
    assert inj.fired("hmode.delegation_miss") == 1


# -- watchdog + device timeout monitor ---------------------------------------


def test_watchdog_fires_only_on_flatlined_progress():
    wd = GuestProgressWatchdog(idle_pump_limit=3)
    assert not any(wd.beat(instret) for instret in (100, 200, 300))
    assert not wd.beat(300)
    assert not wd.beat(300)
    assert wd.beat(300)  # third consecutive idle pump
    assert wd.hangs_detected == 1
    assert not wd.beat(400)  # re-armed, progress again


def test_device_timeout_monitor_resets_stuck_block_device(hypervisor):
    inj = _injector(FaultSpec("block.stuck", rate=1.0, after=1, count=1))
    vm = make_vm(hypervisor, with_emulated_io=True)
    dev = vm.devices["block"]
    dev.injector = inj

    dev.port_write(BLK_SECTOR, 0)
    dev.port_write(BLK_COUNT, 1)
    dev.port_write(BLK_DMA, 0x2000)
    dev.port_write(BLK_CMD, CMD_READ)  # completes fine
    assert dev.ops_completed == 1

    dev.port_write(BLK_CMD, CMD_READ)  # wedges: accepted, never completes
    assert dev.stuck and dev.ops_completed == 1

    monitor = DeviceTimeoutMonitor(dev, stall_checks=2)
    assert not monitor.check()  # first poll: outstanding, not yet stalled
    assert monitor.check()  # second poll: timeout -> reset + replay
    assert monitor.timeouts == 1
    assert dev.resets == 1 and not dev.stuck
    assert dev.ops_completed == 2  # the wedged command was replayed
    assert dev.status == STATUS_READY


def test_block_io_error_fault_completes_with_error_status(hypervisor):
    inj = _injector(FaultSpec("block.io_error", rate=1.0, count=1))
    vm = make_vm(hypervisor, name="ioerr", with_emulated_io=True)
    dev = vm.devices["block"]
    dev.injector = inj
    dev.port_write(BLK_SECTOR, 0)
    dev.port_write(BLK_COUNT, 1)
    dev.port_write(BLK_DMA, 0x2000)
    dev.port_write(BLK_CMD, CMD_WRITE)
    assert dev.port_read(BLK_STATUS) == STATUS_ERROR
    assert dev.io_errors == 1
    dev.port_write(BLK_CMD, CMD_WRITE)  # transient: retry succeeds
    assert dev.port_read(BLK_STATUS) == STATUS_READY


def test_virtio_stuck_ring_recovers_on_reset(hypervisor):
    inj = _injector(FaultSpec("virtio.ring_stuck", rate=1.0, count=1))
    vm = make_vm(hypervisor, name="vring", with_virtio=True)
    dev = vm.devices["virtio_blk"]
    dev.injector = inj
    # Configure a minimal one-descriptor ring by hand.
    mem = vm.guest_mem
    dev.queue.desc_gpa, dev.queue.avail_gpa, dev.queue.used_gpa = (
        0x1000, 0x2000, 0x3000,
    )
    dev.queue.size = 8
    dev._drain()  # kick path: the injected fault wedges the ring
    assert dev.stuck and dev.stalled_kicks == 1
    monitor = DeviceTimeoutMonitor(dev, stall_checks=1)
    dev.queue.kicks += 1  # monitor sees an outstanding kick
    assert monitor.check()
    assert not dev.stuck and dev.resets == 1


# -- error-cause chaining at subsystem boundaries ----------------------------


def test_device_error_chains_memory_fault(hypervisor):
    vm = make_vm(hypervisor, name="dma", with_emulated_io=True)
    dev = vm.devices["block"]
    dev.port_write(BLK_SECTOR, 0)
    dev.port_write(BLK_COUNT, 1)
    dev.port_write(BLK_DMA, GUEST_MEM + 0x1000)  # beyond guest RAM
    with pytest.raises(DeviceError) as excinfo:
        dev.port_write(BLK_CMD, CMD_READ)
    assert isinstance(excinfo.value.__cause__, MemoryError_)


def test_link_rejects_bad_config_with_config_error():
    sim = Simulator()
    with pytest.raises(ConfigError):
        NetworkLink(sim, bandwidth_bytes_per_sec=1 * MIB, degrade_factor=0.5)
    with pytest.raises(ConfigError):
        NetworkLink(sim, bandwidth_bytes_per_sec=1 * MIB, partition_ticks=-1)


def test_link_drop_raises_link_error_and_burns_time():
    sim = Simulator()
    inj = _injector(FaultSpec("link.drop", rate=1.0, count=1))
    link = NetworkLink(sim, bandwidth_bytes_per_sec=1 * MIB, injector=inj)
    caught = []

    def proc():
        try:
            yield from link.transfer(1 * MIB)
        except LinkError as err:
            caught.append(err)
        result = yield from link.transfer(1 * MIB)  # retry succeeds
        return result

    p = sim.spawn(proc())
    result = sim.run_until_process(p)
    assert len(caught) == 1 and link.drops == 1
    assert result.nbytes == 1 * MIB
    # The failed attempt burned a deterministic fraction of the wire
    # time before dying, so completion lands later than a clean send.
    assert result.finished_at > link.transmission_time(1 * MIB)


def test_link_partition_blocks_until_heal():
    sim = Simulator()
    inj = _injector(FaultSpec("link.partition", rate=1.0, count=1))
    link = NetworkLink(sim, bandwidth_bytes_per_sec=1 * MIB, injector=inj)
    outcomes = []

    def proc():
        for _ in range(2):
            try:
                yield from link.transfer(1024)
                outcomes.append("ok")
            except LinkError:
                outcomes.append("dropped")
                link.heal()
        return None

    p = sim.spawn(proc())
    sim.run_until_process(p)
    assert outcomes == ["dropped", "ok"]
    assert link.partitions == 1


# -- retry policy ------------------------------------------------------------


def test_retry_policy_backoff_is_capped_exponential():
    policy = RetryPolicy(max_retries=5, backoff_base_cycles=100,
                         backoff_cap_cycles=500)
    assert [policy.backoff_cycles(a) for a in (1, 2, 3, 4)] == [
        100, 200, 400, 500,
    ]
    with pytest.raises(ConfigError):
        policy.backoff_cycles(0)


# -- migration under faults --------------------------------------------------


def _boot_mig_vm(hv, pages=12, passes=400, name="fault-mig"):
    vm = make_vm(hv, name=name)
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEM))
    hv.load_program(vm, kernel)
    hv.load_program(vm, workloads.memtouch(pages, passes))
    hv.reset_vcpu(vm, kernel.entry)
    hv.run(vm, max_guest_instructions=50_000)
    return vm, expected_memtouch(pages, passes)


def test_migration_survives_link_drop_resuming_from_dirty_bitmap():
    from repro.core import Hypervisor

    src = Hypervisor(memory_bytes=64 * MIB)
    dst = Hypervisor(memory_bytes=64 * MIB)
    vm, expected = _boot_mig_vm(src)
    inj = _injector(FaultSpec("migration.xfer_drop", rate=1.0, after=100,
                              count=1))
    migrator = LiveMigrator(src, dst, injector=inj,
                            retry_policy=RetryPolicy(max_retries=3))
    baseline_pages = len(vm.guest_mem.map)  # round 0 alone sends these
    result = migrator.migrate(vm)
    assert result.retries == 1
    assert result.backoff_cycles > 0
    # Resume, not restart: nothing was re-sent after the drop, so the
    # total stays strictly below "100 delivered + a fresh full copy".
    assert result.pages_copied < 100 + baseline_pages + 64
    outcome = dst.run(result.dest_vm, max_guest_instructions=80_000_000)
    diag = read_diag(result.dest_vm.guest_mem)
    assert outcome is RunOutcome.SHUTDOWN and diag.user_result == expected


def test_migration_error_after_budget_chains_link_error():
    from repro.core import Hypervisor

    src = Hypervisor(memory_bytes=64 * MIB)
    dst = Hypervisor(memory_bytes=64 * MIB)
    vm, _ = _boot_mig_vm(src, name="doomed")
    inj = _injector(FaultSpec("migration.xfer_drop", rate=1.0))  # every try
    migrator = LiveMigrator(src, dst, injector=inj,
                            retry_policy=RetryPolicy(max_retries=2))
    with pytest.raises(MigrationError) as excinfo:
        migrator.migrate(vm)
    assert isinstance(excinfo.value.__cause__, LinkError)
    # The abandoned migration must not leak dirty logging onto the
    # still-running source.
    assert vm.guest_mem.write_hook is None
    assert vm.name not in src.dirty_handlers


def test_migration_detects_and_resends_corrupt_pages():
    from repro.core import Hypervisor

    src = Hypervisor(memory_bytes=64 * MIB)
    dst = Hypervisor(memory_bytes=64 * MIB)
    vm, expected = _boot_mig_vm(src, name="crcmig")
    inj = _injector(FaultSpec("migration.page_corrupt", rate=1.0, after=10,
                              count=3))
    migrator = LiveMigrator(src, dst, injector=inj)
    result = migrator.migrate(vm)
    assert result.corrupt_pages_detected == 3
    # Destination memory is bit-identical to the source despite the
    # injected wire corruption.
    for gfn in vm.guest_mem.map:
        assert result.dest_vm.guest_mem.read_gfn(gfn) == (
            vm.guest_mem.read_gfn(gfn)
        )
    outcome = dst.run(result.dest_vm, max_guest_instructions=80_000_000)
    diag = read_diag(result.dest_vm.guest_mem)
    assert outcome is RunOutcome.SHUTDOWN and diag.user_result == expected


# -- hung-VM detection + micro-reboot ----------------------------------------


def test_watchdog_detects_stalled_vcpu_and_microreboot_recovers(hypervisor):
    # passes=4000 keeps the guest live past the 50k-instruction boot run,
    # so the stall hits a VM with work outstanding.
    vm, expected = _boot_mig_vm(hypervisor, passes=4000, name="hangvm")
    hypervisor.injector = _injector(
        FaultSpec("vcpu.stall", rate=1.0, after=2, count=1)
    )
    rebooter = MicroRebooter(hypervisor)
    rebooter.checkpoint(vm)
    instret_before = vm.vcpus[0].cpu.instret

    wd = GuestProgressWatchdog(idle_pump_limit=4)
    outcome = hypervisor.run(vm, max_guest_instructions=80_000_000,
                             watchdog=wd)
    assert outcome is RunOutcome.HUNG
    assert wd.hangs_detected == 1
    assert vm.vcpus[0].stalled

    recovered = rebooter.reboot(vm)
    assert rebooter.reboots == 1
    assert not recovered.vcpus[0].stalled  # hypervisor state rebuilt
    assert recovered.vcpus[0].cpu.instret >= instret_before  # guest survived

    final = hypervisor.run(recovered, max_guest_instructions=80_000_000)
    diag = read_diag(recovered.guest_mem)
    assert final is RunOutcome.SHUTDOWN and diag.user_result == expected


def test_stalled_vcpu_terminates_even_without_watchdog(hypervisor):
    vm, _ = _boot_mig_vm(hypervisor, passes=4000, name="nowd")
    hypervisor.injector = _injector(
        FaultSpec("vcpu.stall", rate=1.0, count=1)
    )
    outcome = hypervisor.run(vm, max_guest_instructions=80_000_000)
    assert outcome is RunOutcome.HUNG  # safety-net stall limit


def test_microreboot_rolls_back_corrupted_pages(hypervisor):
    vm, _ = _boot_mig_vm(hypervisor, name="poison")
    rebooter = MicroRebooter(hypervisor)
    rebooter.checkpoint(vm)
    victim = sorted(vm.guest_mem.map)[4]
    good = vm.guest_mem.read_gfn(victim)
    vm.guest_mem.write_gfn(victim, b"\xde" * PAGE_SIZE)
    rebooter.mark_corrupted(vm.name, [victim])
    recovered = rebooter.reboot(vm)
    assert recovered.guest_mem.read_gfn(victim) == good


# -- host failover -----------------------------------------------------------


def test_host_crash_failover_replaces_vms_on_survivors():
    spec = HostSpec(name="h", cores=4, cpu_capacity=4.0, memory_bytes=8 * GIB)
    hosts = [Host(spec, i) for i in range(4)]
    vms = [VMSpec(name=f"vm{i}", memory_bytes=1 * GIB) for i in range(8)]
    placement = first_fit(vms, hosts)
    inj = _injector(FaultSpec("host.crash", rate=1.0, after=0, count=1))
    crashed = [h for h in hosts if h.maybe_crash(inj)]
    assert [h.name for h in crashed] == ["h-0"]
    stranded = len(crashed[0].vms)
    assert stranded == 8  # first-fit packed everything onto h-0

    report = failover(placement)
    assert report.failed_hosts == ["h-0"]
    assert len(report.recovered) == stranded and not report.lost
    assert not crashed[0].vms  # drained
    for vm in vms:
        host = placement.host_of(vm.name)
        assert host is not None and host.alive


def test_failover_reports_lost_vms_when_survivors_are_full():
    spec = HostSpec(name="h", cores=4, cpu_capacity=4.0, memory_bytes=4 * GIB)
    hosts = [Host(spec, i) for i in range(2)]
    vms = [VMSpec(name=f"vm{i}", memory_bytes=2 * GIB) for i in range(4)]
    placement = first_fit(vms, hosts)  # both hosts full
    hosts[0].fail()
    report = failover(placement)
    assert len(report.lost) == 2 and not report.recovered
    # lost keeps the full spec (not just the name) so a controller can
    # retry placement once capacity returns.
    assert all(isinstance(vm, VMSpec) for vm in report.lost)
    assert placement.host_of(report.lost[0].name) is None
