"""Workload programs: every syscall and driver path, with oracles."""

import pytest

from repro.core import GuestConfig, Hypervisor, Machine, MMUVirtMode, VirtMode
from repro.guest import (
    KernelOptions,
    boot_native,
    boot_vm,
    build_kernel,
    workloads,
)
from repro.guest.workloads import expected_cpu_bound, expected_memtouch
from repro.util.units import MIB

GUEST_MEM = 16 * MIB


@pytest.fixture(scope="module")
def kernel():
    return build_kernel(KernelOptions(memory_bytes=GUEST_MEM))


def run_native(kernel, workload, max_instructions=8_000_000):
    machine = Machine(memory_bytes=GUEST_MEM)
    diag = boot_native(machine, kernel, workload, max_instructions)
    return machine, diag


def run_hv(kernel, workload, max_instructions=8_000_000):
    hv = Hypervisor(memory_bytes=64 * MIB)
    vm = hv.create_vm(GuestConfig(name="w", memory_bytes=GUEST_MEM,
                                  virt_mode=VirtMode.HW_ASSIST,
                                  mmu_mode=MMUVirtMode.NESTED))
    diag = boot_vm(hv, vm, kernel, workload, max_instructions)
    return vm, diag


class TestCpuBound:
    def test_checksum_matches_oracle(self, kernel):
        _, diag = run_native(kernel, workloads.cpu_bound(500))
        assert diag.user_result == expected_cpu_bound(500)

    def test_oracle_is_nontrivial(self):
        assert expected_cpu_bound(10) != expected_cpu_bound(11)


class TestMemtouch:
    def test_result_and_demand_faults(self, kernel):
        machine, diag = run_native(kernel, workloads.memtouch(20, 3))
        assert diag.user_result == expected_memtouch(20, 3)
        assert diag.demand_faults == 20  # one per page, first pass only

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            workloads.memtouch(pages=0)
        with pytest.raises(ValueError):
            workloads.memtouch(pages=5000)


class TestRandomWalk:
    def test_runs_and_touches_working_set(self, kernel):
        machine, diag = run_native(kernel, workloads.random_walk(16, 500))
        assert diag.fault_cause == 0
        assert diag.demand_faults == 16

    def test_pages_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            workloads.random_walk(pages=100)


class TestSyscalls:
    def test_storm_counts_syscalls(self, kernel):
        _, diag = run_native(kernel, workloads.syscall_storm(250))
        # 250 yields + 1 exit
        assert diag.syscalls == 251
        assert diag.user_result == 250


class TestPtStress:
    def test_map_unmap_cycles(self, kernel):
        _, diag = run_native(kernel, workloads.pt_stress(40))
        assert diag.user_result == 40
        # 40 maps + 40 unmaps + 1 exit = 81 syscalls
        assert diag.syscalls == 81


class TestMapBatch:
    def test_batches(self, kernel):
        _, diag = run_native(kernel, workloads.map_batch(8, 4))
        assert diag.user_result == 32
        assert diag.syscalls == 9

    def test_pool_limit_enforced(self):
        with pytest.raises(ValueError):
            workloads.map_batch(batches=200, batch_size=8)


class TestBlockIO:
    def test_emulated_writes_reach_disk(self, kernel):
        machine, diag = run_native(kernel, workloads.blk_write(8))
        assert diag.user_result == 8
        assert machine.block.writes == 8

    def test_emulated_read_roundtrip(self, kernel):
        machine, diag = run_native(kernel, workloads.blk_write(4))
        assert machine.block.writes == 4
        vm, diag = run_hv(kernel, workloads.blk_write(4))
        assert vm.devices["block"].writes == 4

    def test_virtio_batch_single_kick(self, kernel):
        machine, diag = run_native(kernel, workloads.vblk_write(3, 4))
        assert diag.user_result == 12
        assert machine.virtio_blk.writes == 12
        assert machine.virtio_blk.queue.kicks == 3

    def test_virtio_batch_size_limited_by_ring(self):
        with pytest.raises(ValueError):
            workloads.vblk_write(1, 8)  # 24 descriptors > 16


class TestNetIO:
    def test_emulated_send(self, kernel):
        machine, diag = run_native(kernel, workloads.net_send(6, 64))
        assert machine.net.tx_frames == 6
        assert machine.net.tx_bytes == 6 * 64

    def test_virtio_send_batch(self, kernel):
        machine, diag = run_native(kernel, workloads.vnet_send(2, 8))
        assert diag.user_result == 16
        assert machine.virtio_net.tx_frames == 16

    def test_virtio_net_batch_limit(self):
        with pytest.raises(ValueError):
            workloads.vnet_send(1, 17)

    def test_net_echo_roundtrip_native(self, kernel):
        machine = Machine(memory_bytes=GUEST_MEM)
        frames = [b"ping-%d!" % i + bytes(8) for i in range(3)]
        for frame in frames:
            machine.net.inject_rx(frame)
        from repro.guest import boot_native
        diag = boot_native(machine, kernel, workloads.net_echo(3))
        assert diag.user_result == sum(len(f) for f in frames)
        assert machine.net.rx_frames == 3
        assert machine.net.tx_frames == 3
        assert list(machine.net.sent) == frames  # byte-exact echoes

    def test_net_echo_roundtrip_vm(self, kernel):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = hv.create_vm(GuestConfig(name="echo", memory_bytes=GUEST_MEM,
                                      virt_mode=VirtMode.HW_ASSIST,
                                      mmu_mode=MMUVirtMode.NESTED))
        nic = vm.devices["net"]
        nic.inject_rx(b"hello vm")
        from repro.guest import boot_vm
        diag = boot_vm(hv, vm, kernel, workloads.net_echo(1))
        assert diag.user_result == 8
        assert list(nic.sent) == [b"hello vm"]


class TestDeviceIRQs:
    def test_block_completion_interrupts_guest(self, kernel):
        _, diag = run_native(kernel, workloads.blk_write(5))
        assert diag.device_irqs >= 5


class TestProgramSizes:
    def test_workloads_fit_user_region(self):
        for builder in (
            workloads.hello, workloads.cpu_bound, workloads.memtouch,
            lambda: workloads.random_walk(16, 10),
            workloads.syscall_storm, workloads.pt_stress,
            workloads.map_batch, workloads.blk_write,
            workloads.vblk_write, workloads.net_send, workloads.vnet_send,
            workloads.idle_ticks,
        ):
            prog = builder()
            assert prog.base == 0x200000
            assert prog.size <= 0x10000
