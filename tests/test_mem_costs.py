"""Cost model."""

import pytest

from repro.mem.costs import CostModel
from repro.util.errors import ConfigError


def test_defaults_validate():
    CostModel().validate()


def test_with_overrides_selected_fields():
    base = CostModel()
    tweaked = base.with_(vmexit_cycles=9999)
    assert tweaked.vmexit_cycles == 9999
    assert tweaked.mem_ref_cycles == base.mem_ref_cycles
    assert base.vmexit_cycles != 9999  # original untouched (frozen)


def test_negative_cost_rejected():
    with pytest.raises(ConfigError):
        CostModel().with_(trap_cycles=-1).validate()


def test_frozen():
    with pytest.raises(Exception):
        CostModel().vmexit_cycles = 5
