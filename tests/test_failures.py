"""Failure injection: resource exhaustion, guest crashes, bad input.

A platform earns trust by failing loudly and precisely, never by
corrupting a guest. These tests drive the unhappy paths.
"""

import pytest

from repro.core import GuestConfig, Hypervisor, Machine, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.cpu.assembler import Assembler
from repro.cpu.isa import Cause
from repro.guest import KernelOptions, boot_vm, build_kernel, read_diag, workloads
from repro.migration import LiveMigrator
from repro.util.errors import GuestError, MemoryError_
from repro.util.units import MIB

GUEST_MEM = 16 * MIB


class TestHostExhaustion:
    def test_vm_creation_fails_cleanly_when_host_is_full(self):
        hv = Hypervisor(memory_bytes=32 * MIB)
        hv.create_vm(GuestConfig(name="a", memory_bytes=16 * MIB))
        with pytest.raises(MemoryError_, match="out of physical frames"):
            hv.create_vm(GuestConfig(name="b", memory_bytes=16 * MIB))

    def test_migration_to_undersized_destination_fails(self):
        src = Hypervisor(memory_bytes=64 * MIB)
        dst = Hypervisor(memory_bytes=8 * MIB)  # cannot hold the guest
        vm = src.create_vm(GuestConfig(name="m", memory_bytes=16 * MIB))
        with pytest.raises(MemoryError_):
            LiveMigrator(src, dst).migrate(vm)


class TestGuestCrashes:
    def _run_crasher(self, user_body, vmode=VirtMode.HW_ASSIST,
                     mmode=MMUVirtMode.NESTED):
        from repro.guest.workloads import _assemble

        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = hv.create_vm(GuestConfig(name="crash", memory_bytes=GUEST_MEM,
                                      virt_mode=vmode, mmu_mode=mmode))
        kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEM))
        diag = boot_vm(hv, vm, kernel, _assemble(user_body),
                       max_guest_instructions=2_000_000)
        return hv, vm, diag

    @pytest.mark.parametrize("vmode,mmode", [
        (VirtMode.HW_ASSIST, MMUVirtMode.NESTED),
        (VirtMode.HW_ASSIST, MMUVirtMode.SHADOW),
        (VirtMode.TRAP_EMULATE, MMUVirtMode.SHADOW),
    ])
    def test_wild_pointer_is_contained_and_reported(self, vmode, mmode):
        # User code dereferences an unmapped address outside the heap:
        # the kernel records the fault and powers off with code 2.
        _, vm, diag = self._run_crasher("""
    li  t0, 0x3f00000
    ld  t1, [t0+0]
    syscall 0
""", vmode, mmode)
        assert diag.fault_cause == int(Cause.PF_READ)
        assert vm.devices["power"].code == 2

    def test_user_cannot_touch_kernel_memory(self):
        # The kernel image is mapped without the USER bit.
        _, vm, diag = self._run_crasher("""
    li  t0, 0x1000
    st  [t0+0], t0
    syscall 0
""")
        assert diag.fault_cause == int(Cause.PF_WRITE)

    def test_user_cannot_write_user_code_protection(self):
        # Writing the *page tables* region from user mode must fault.
        _, vm, diag = self._run_crasher("""
    li  t0, 0x100000
    st  [t0+0], t0
    syscall 0
""")
        assert diag.fault_cause == int(Cause.PF_WRITE)

    def test_unknown_syscall_is_fatal_not_silent(self):
        _, vm, diag = self._run_crasher("""
    syscall 99
""")
        assert vm.devices["power"].code == 2

    def test_privileged_instruction_from_user_is_contained(self):
        _, vm, diag = self._run_crasher("""
    csrw VBAR, zero
    syscall 0
""")
        # PRIV trap reaches the kernel's fatal handler.
        assert diag.fault_cause == int(Cause.PRIV)

    def test_heap_pool_exhaustion_is_fatal(self):
        # Touch more heap pages than the kernel's frame pool holds.
        _, vm, diag = self._run_crasher("""
    li   s0, 0x700000        ; HEAP_BASE
    li   s1, 1100            ; pool holds 1024 frames
loop:
    st   [s0+0], s0
    add  s0, s0, 4096
    sub  s1, s1, 1
    bnez s1, loop
    syscall 0
""")
        assert vm.devices["power"].code == 2
        assert diag.demand_faults == 1024  # every pool frame was used


class TestNativeCrashes:
    def test_native_wild_store_also_contained(self):
        from repro.guest.workloads import _assemble

        machine = Machine(memory_bytes=GUEST_MEM)
        kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEM))
        from repro.guest import boot_native
        diag = boot_native(machine, kernel, _assemble("""
    li  t0, 0x3f00000
    st  [t0+0], t0
    syscall 0
"""))
        assert diag.fault_cause == int(Cause.PF_WRITE)


class TestMalformedGuests:
    def test_running_off_the_end_of_ram_is_fatal(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = hv.create_vm(GuestConfig(name="empty", memory_bytes=GUEST_MEM))
        # All-zero memory decodes as NOPs; start near the top so the pc
        # slides off the end of guest RAM.
        hv.reset_vcpu(vm, GUEST_MEM - 64)
        with pytest.raises(GuestError, match="beyond guest RAM"):
            hv.run(vm, max_guest_instructions=1000)

    def test_guest_error_names_the_vm(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = hv.create_vm(GuestConfig(name="doomed", memory_bytes=GUEST_MEM))
        prog = Assembler().assemble(".org 0x1000\n    syscall 0\n")
        hv.load_program(vm, prog)
        hv.reset_vcpu(vm, 0x1000)
        with pytest.raises(GuestError, match="doomed"):
            hv.run(vm, max_guest_instructions=100)
