"""Property: shadow and nested MMUs implement the same guest semantics.

For randomly generated guest page tables and access sequences, both
MMU implementations must (a) fault exactly when a software walk of the
guest's own tables says the access is illegal, and (b) otherwise map
the address to the same guest frame. This is the core contract of
memory virtualization: the guest cannot tell which MMU it runs on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.nested import NestedMMU
from repro.core.shadow import ShadowMMU
from repro.core.vm import GuestMemory
from repro.cpu.exits import VMExit
from repro.mem.costs import CostModel
from repro.mem.paging import (
    AccessType,
    PTE_NOEXEC,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    PageFault,
    make_pte,
    split_vaddr,
)
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.util.units import MIB, PAGE_SHIFT, PAGE_SIZE

GUEST_PAGES = 64
ROOT_GPA = 0x10000
PT0_GPA = 0x11000  # leaf tables for up to 4 directory slots
DATA_GFNS = list(range(32, 56))

_ACCESS = st.sampled_from(list(AccessType))
_FLAGS = st.integers(min_value=0, max_value=7)  # W/U/NX combinations


@st.composite
def guest_layout(draw):
    """(mappings, accesses): random guest PTs and an access sequence."""
    dir_slots = [0, 1]  # two 4 MiB regions
    mappings = {}
    count = draw(st.integers(min_value=1, max_value=10))
    for _ in range(count):
        dir_idx = draw(st.sampled_from(dir_slots))
        tbl_idx = draw(st.integers(min_value=0, max_value=15))
        gfn = draw(st.sampled_from(DATA_GFNS))
        bits = draw(_FLAGS)
        flags = PTE_PRESENT
        if bits & 1:
            flags |= PTE_WRITABLE
        if bits & 2:
            flags |= PTE_USER
        if bits & 4:
            flags |= PTE_NOEXEC
        mappings[(dir_idx, tbl_idx)] = (gfn, flags)
    accesses = draw(st.lists(
        st.tuples(
            st.sampled_from(dir_slots),
            st.integers(min_value=0, max_value=16),  # 16 = unmapped slot
            st.integers(min_value=0, max_value=PAGE_SIZE - 4),
            _ACCESS,
            st.booleans(),
        ),
        min_size=1, max_size=12,
    ))
    return mappings, accesses


def build_guest(mappings):
    pm = PhysicalMemory(4 * MIB)
    alloc = FrameAllocator(pm, reserved_frames=8)
    gm = GuestMemory(pm, GUEST_PAGES)
    for gfn in range(GUEST_PAGES):
        gm.map_page(gfn, alloc.alloc())
    # Guest page tables: one leaf table per used directory slot.
    used_dirs = sorted({d for d, _t in mappings})
    for i, dir_idx in enumerate(used_dirs):
        pt_gpa = PT0_GPA + i * PAGE_SIZE
        gm.write_u32(ROOT_GPA + dir_idx * 4,
                     make_pte(pt_gpa >> PAGE_SHIFT,
                              PTE_PRESENT | PTE_WRITABLE | PTE_USER))
        for (d, tbl_idx), (gfn, flags) in mappings.items():
            if d == dir_idx:
                gm.write_u32(pt_gpa + tbl_idx * 4, make_pte(gfn, flags))
    return pm, alloc, gm


def oracle(mappings, dir_idx, tbl_idx, access, user):
    """The architectural answer: gfn, or None for a guest fault."""
    entry = mappings.get((dir_idx, tbl_idx))
    if entry is None:
        return None
    gfn, flags = entry
    if user and not flags & PTE_USER:
        return None
    if access is AccessType.WRITE and not flags & PTE_WRITABLE:
        return None
    if access is AccessType.EXEC and flags & PTE_NOEXEC:
        return None
    return gfn


def translate_fully(mmu, va, access, user):
    """Translate, servicing VMM-side faults; return hpa or PageFault."""
    for _ in range(6):
        try:
            hpa, _cycles = mmu.translate(va, access, user)
            return hpa
        except VMExit as exit_:
            kind = exit_.qual("kind")
            if kind == "shadow_fill":
                mmu.fill(exit_.qual("va"), exit_.qual("access"))
            else:
                raise AssertionError(f"unexpected VMM fault {kind}")
    raise AssertionError("fill loop did not converge")


class TestShadowNestedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(guest_layout())
    def test_same_faults_same_frames(self, layout):
        mappings, accesses = layout

        pm_s, alloc_s, gm_s = build_guest(mappings)
        shadow = ShadowMMU(pm_s, alloc_s, gm_s, CostModel(),
                           ring_compression=False, trap_pt_writes=False)
        shadow.switch_guest_root(ROOT_GPA)

        pm_n, alloc_n, gm_n = build_guest(mappings)
        nested = NestedMMU(pm_n, alloc_n, gm_n, CostModel())
        for gfn, hfn in gm_n.map.items():
            nested.ept_map(gfn, hfn)
        nested.set_root(ROOT_GPA)

        for dir_idx, tbl_idx, offset, access, user in accesses:
            va = (dir_idx << 22) | (tbl_idx << 12) | offset
            expected_gfn = oracle(mappings, dir_idx, tbl_idx, access, user)
            for name, mmu, gm in (("shadow", shadow, gm_s),
                                  ("nested", nested, gm_n)):
                if expected_gfn is None:
                    with pytest.raises(PageFault):
                        translate_fully(mmu, va, access, user)
                else:
                    hpa = translate_fully(mmu, va, access, user)
                    assert hpa == (gm.map[expected_gfn] << PAGE_SHIFT) | offset, (
                        name, hex(va), access, user)
