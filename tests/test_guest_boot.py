"""NanoOS boot and correctness matrix across every execution mode."""

import pytest

from repro.core import GuestConfig, Hypervisor, Machine, MMUVirtMode, VirtMode
from repro.guest import (
    KernelOptions,
    boot_native,
    boot_vm,
    build_kernel,
    workloads,
)
from repro.util.units import MIB

GUEST_MEM = 16 * MIB

VM_MODES = [
    ("te-shadow", VirtMode.TRAP_EMULATE, MMUVirtMode.SHADOW, False),
    ("bt-shadow", VirtMode.BINARY_TRANSLATION, MMUVirtMode.SHADOW, False),
    ("pv-shadow", VirtMode.PARAVIRT, MMUVirtMode.SHADOW, True),
    ("hw-shadow", VirtMode.HW_ASSIST, MMUVirtMode.SHADOW, False),
    ("hw-nested", VirtMode.HW_ASSIST, MMUVirtMode.NESTED, False),
]


def boot_in_mode(label, vmode, mmode, pv, workload, timer_period=0,
                 max_instructions=8_000_000):
    kernel = build_kernel(
        KernelOptions(pv=pv, memory_bytes=GUEST_MEM,
                      timer_period=timer_period)
    )
    hv = Hypervisor(memory_bytes=64 * MIB)
    vm = hv.create_vm(GuestConfig(name=label, memory_bytes=GUEST_MEM,
                                  virt_mode=vmode, mmu_mode=mmode))
    diag = boot_vm(hv, vm, kernel, workload, max_instructions)
    return hv, vm, diag


def test_native_boot_hello():
    machine = Machine(memory_bytes=GUEST_MEM)
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEM))
    diag = boot_native(machine, kernel, workloads.hello())
    assert diag.clean
    assert diag.user_result == 42
    assert diag.mode_ok == 1 and diag.ie_ok == 1
    assert "hi" in machine.console.text


@pytest.mark.parametrize("label,vmode,mmode,pv", VM_MODES)
def test_vm_boot_hello(label, vmode, mmode, pv):
    _, vm, diag = boot_in_mode(label, vmode, mmode, pv, workloads.hello())
    assert diag.clean
    assert diag.user_result == 42
    assert "hi" in vm.devices["console"].text


def test_trap_and_emulate_detects_popek_goldberg_violation():
    _, _, diag = boot_in_mode("te", VirtMode.TRAP_EMULATE,
                              MMUVirtMode.SHADOW, False, workloads.hello())
    assert diag.mode_ok == 0 and diag.ie_ok == 0
    assert not diag.correct_virtualization


@pytest.mark.parametrize("label,vmode,mmode,pv", [m for m in VM_MODES
                                                  if m[1] is not VirtMode.TRAP_EMULATE])
def test_other_modes_are_correct(label, vmode, mmode, pv):
    _, _, diag = boot_in_mode(label, vmode, mmode, pv, workloads.hello())
    assert diag.correct_virtualization


def test_demand_paging_counts_heap_faults():
    _, _, diag = boot_in_mode("dp", VirtMode.HW_ASSIST, MMUVirtMode.NESTED,
                              False, workloads.memtouch(pages=12, passes=1))
    assert diag.demand_faults == 12


def test_timer_ticks_reach_guest():
    _, vm, diag = boot_in_mode(
        "ticks", VirtMode.HW_ASSIST, MMUVirtMode.NESTED, False,
        workloads.idle_ticks(3), timer_period=100_000,
    )
    assert diag.ticks >= 3
    assert diag.user_result >= 3


def test_timer_ticks_under_trap_emulate():
    _, vm, diag = boot_in_mode(
        "ticks-te", VirtMode.TRAP_EMULATE, MMUVirtMode.SHADOW, False,
        workloads.idle_ticks(2), timer_period=100_000,
        max_instructions=20_000_000,
    )
    assert diag.ticks >= 2


def test_exit_profile_differs_by_mode():
    results = {}
    for label, vmode, mmode, pv in VM_MODES:
        _, vm, _ = boot_in_mode(label, vmode, mmode, pv,
                                workloads.syscall_storm(100))
        results[label] = vm.exit_stats.total_exits
    # The canonical ordering: T&E is the chattiest, HW-assist quietest.
    assert results["te-shadow"] > results["pv-shadow"]
    assert results["pv-shadow"] > results["hw-shadow"]
    assert results["hw-shadow"] >= results["hw-nested"]


def test_kernel_requires_minimum_memory():
    with pytest.raises(ValueError):
        build_kernel(KernelOptions(memory_bytes=4 * MIB))
