"""Closed-loop pressure controller + EPT dispatch-chain composition."""

import pytest

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.migration import PostCopyMigrator
from repro.overcommit import (
    ControllerConfig,
    HostSwap,
    MemoryPressureController,
    PageSharer,
)
from repro.util.errors import ConfigError
from repro.util.units import MIB

GUEST_MEM = 16 * MIB
ADMIT_FRAMES = (GUEST_MEM >> 12) + 128


def boot(hv, name, pages=64, passes=2, warmup=0):
    vm = hv.create_vm(GuestConfig(name=name, memory_bytes=GUEST_MEM,
                                  virt_mode=VirtMode.HW_ASSIST,
                                  mmu_mode=MMUVirtMode.NESTED))
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEM))
    hv.load_program(vm, kernel)
    hv.load_program(vm, workloads.memtouch(pages, passes))
    hv.reset_vcpu(vm, kernel.entry)
    if warmup:
        hv.run(vm, max_guest_instructions=warmup)
    return vm


def run_all(hv, vms, controller=None, quantum=100_000):
    """Round-robin every VM to completion, ticking between rounds."""
    outcomes = {}
    pending = list(vms)
    while pending:
        still = []
        for vm in pending:
            out = hv.run(vm, max_guest_instructions=quantum)
            if out is RunOutcome.INSTR_LIMIT:
                still.append(vm)
            else:
                outcomes[vm.name] = out
        if controller is not None:
            controller.tick()
        pending = still
    return outcomes


def assert_correct(vms, pages=64, passes=2):
    expected = expected_memtouch(pages, passes)
    for vm in vms:
        diag = read_diag(vm.guest_mem)
        assert diag.user_result == expected, vm.name


class TestDispatchChainComposition:
    def test_concurrent_owners_route_every_fault_correctly(self):
        """HostSwap + PageSharer + an incoming post-copy migration on
        one destination hypervisor: every EPT fault must reach its
        owner. Pre-chain, whichever owner installed ``ept_fault_hook``
        last stole the others' faults -- a timeshared local guest's
        swapped pages came back as fresh zero frames (silent
        corruption) while a migration was in flight."""
        dst = Hypervisor(memory_bytes=96 * MIB)
        swap = HostSwap(dst)
        sharer = PageSharer(dst)
        local = boot(dst, "local", pages=28, passes=2500, warmup=100_000)
        swap.install(local)
        # Push the local guest's early pages (kernel + touched data)
        # out to the host store, then dedupe what stayed resident.
        assert swap.evict_some(800) == 800
        sharer.scan([local])

        src = Hypervisor(memory_bytes=64 * MIB)
        vm = boot(src, "mig", pages=28, passes=2500, warmup=100_000)
        migrator = PostCopyMigrator(src, dst, bytes_per_cycle=4.0)

        # Timeshare the destination: between migration quanta the local
        # guest runs too, faulting on its swapped pages mid-migration.
        real_run = dst.run
        local_outcome = [RunOutcome.INSTR_LIMIT]

        def timesharing_run(vm_, **kwargs):
            outcome = real_run(vm_, **kwargs)
            if vm_ is not local and local_outcome[0] is RunOutcome.INSTR_LIMIT:
                local_outcome[0] = real_run(local,
                                            max_guest_instructions=20_000)
            return outcome

        dst.run = timesharing_run
        result = migrator.migrate_and_run(vm)
        dst.run = real_run

        while local_outcome[0] is RunOutcome.INSTR_LIMIT:
            local_outcome[0] = real_run(local, max_guest_instructions=200_000)

        assert result.outcome is RunOutcome.SHUTDOWN
        assert local_outcome[0] is RunOutcome.SHUTDOWN
        assert_correct([result.dest_vm, local], pages=28, passes=2500)

        # Both owners actually claimed faults off the shared chain.
        claims = {
            name: dst.registry.counter(f"core.ept_dispatch.{name}").value
            for name in ("swap_in", "postcopy_fetch")
        }
        assert claims["swap_in"] > 0, claims
        assert claims["postcopy_fetch"] > 0, claims
        # And nothing of the migrant leaked into the chain afterwards.
        assert "postcopy_fetch" not in [n for n, _ in dst._ept_fault_handlers]

    def test_legacy_hook_adapter_claims_all_then_restores(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = hv.create_vm(GuestConfig(name="legacy", memory_bytes=GUEST_MEM,
                                      virt_mode=VirtMode.HW_ASSIST,
                                      mmu_mode=MMUVirtMode.NESTED,
                                      prealloc=False))
        seen = []

        def hook(fault_vm, gfn, access):
            seen.append(gfn)
            fault_vm.guest_mem.map_page(gfn, hv.allocator.alloc())

        hv.ept_fault_hook = hook
        assert hv._dispatch_ept_fault(vm, 7, "w") == "legacy_hook"
        assert seen == [7]
        hv.ept_fault_hook = None
        assert hv._dispatch_ept_fault(vm, 8, "w") == "demand_zero"
        assert vm.guest_mem.is_mapped(8)


class TestMemoryPressureController:
    def _admit(self, hv, controller, n):
        vms = []
        for i in range(n):
            controller.reclaim(ADMIT_FRAMES)
            vm = boot(hv, f"oc{i}")
            controller.manage(vm)
            vms.append(vm)
        return vms

    def test_overcommitted_admission_without_swap(self):
        """Three 16 MiB guests on a 36 MiB host: balloon + sharing must
        make room with zero last-resort swap-ins, and every guest stays
        bit-correct."""
        hv = Hypervisor(memory_bytes=36 * MIB)
        controller = MemoryPressureController(hv)
        vms = self._admit(hv, controller, 3)
        outcomes = run_all(hv, vms, controller)
        assert all(o is RunOutcome.SHUTDOWN for o in outcomes.values())
        assert_correct(vms)
        assert controller.swap.swap_ins == 0
        merged = sum(r.pages_merged for r in controller.tick_log)
        ballooned = sum(sum(r.inflated.values())
                        for r in controller.tick_log)
        assert merged > 0
        assert ballooned > 0

    def test_targets_converge_under_static_wss(self):
        hv = Hypervisor(memory_bytes=36 * MIB)
        controller = MemoryPressureController(hv)
        vms = self._admit(hv, controller, 3)
        run_all(hv, vms, controller)
        # Guests are done: WSS is static, so targets must stabilize
        # and the hysteresis band must stop all balloon traffic.
        for _ in range(4):
            controller.tick()
        last, prev = controller.tick_log[-1], controller.tick_log[-2]
        assert last.targets == prev.targets
        assert last.inflated == {}
        assert last.swap_evictions == 0

    def test_fault_sites_fire_and_replay_deterministically(self):
        def plan():
            return FaultPlan(seed=77, specs=[
                FaultSpec("overcommit.scan_stall", rate=1.0, after=0,
                          count=1),
                FaultSpec("overcommit.balloon_refuse", rate=1.0, after=0,
                          count=1),
            ])

        def one_run(injector):
            hv = Hypervisor(memory_bytes=36 * MIB)
            hv.injector = injector
            controller = MemoryPressureController(hv)
            vms = self._admit(hv, controller, 3)
            run_all(hv, vms, controller)
            assert_correct(vms)
            return controller.serialized_log()

        inj = FaultInjector(plan())
        log = one_run(inj)
        assert sum(r["scan_stalled"] for r in log) == 1
        assert sum(r["balloon_refusals"] for r in log) == 1

        replay_inj = FaultInjector(plan())
        assert one_run(replay_inj) == log
        assert inj.trace_bytes() == replay_inj.trace_bytes()

    def test_manage_rejects_duplicates(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        controller = MemoryPressureController(hv)
        vm = boot(hv, "dup")
        controller.manage(vm)
        with pytest.raises(ConfigError):
            controller.manage(vm)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ControllerConfig(hysteresis_pages=-1).validate()
        with pytest.raises(ConfigError):
            ControllerConfig(max_balloon_per_tick=0).validate()
        ControllerConfig().validate()
