"""GuestConfig validation and GuestMemory semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.modes import MMUVirtMode, VirtMode
from repro.core.vm import GuestConfig, GuestMemory
from repro.mem.physmem import PhysicalMemory
from repro.util.errors import ConfigError, MemoryError_
from repro.util.units import MIB, PAGE_SIZE


class TestGuestConfig:
    def test_defaults_validate(self):
        GuestConfig().validate()

    def test_unaligned_memory_rejected(self):
        with pytest.raises(ConfigError):
            GuestConfig(memory_bytes=PAGE_SIZE + 1).validate()

    def test_native_mode_rejected(self):
        with pytest.raises(ConfigError):
            GuestConfig(virt_mode=VirtMode.NATIVE).validate()

    @pytest.mark.parametrize("mode", [
        VirtMode.TRAP_EMULATE,
        VirtMode.BINARY_TRANSLATION,
        VirtMode.PARAVIRT,
    ])
    def test_nested_requires_hw_assist(self, mode):
        with pytest.raises(ConfigError):
            GuestConfig(virt_mode=mode, mmu_mode=MMUVirtMode.NESTED).validate()

    def test_demand_paging_requires_nested(self):
        with pytest.raises(ConfigError):
            GuestConfig(
                virt_mode=VirtMode.HW_ASSIST,
                mmu_mode=MMUVirtMode.SHADOW,
                prealloc=False,
            ).validate()


class TestGuestMemory:
    @pytest.fixture
    def gm(self):
        pm = PhysicalMemory(2 * MIB)
        gm = GuestMemory(pm, num_pages=16)
        for gfn in range(16):
            gm.map_page(gfn, gfn + 100)
        return gm

    def test_translation(self, gm):
        assert gm.gpa_to_hpa(0) == 100 * PAGE_SIZE
        assert gm.gpa_to_hpa(3 * PAGE_SIZE + 17) == 103 * PAGE_SIZE + 17

    def test_unmapped_raises(self, gm):
        gm.unmap_page(5)
        with pytest.raises(MemoryError_):
            gm.gpa_to_hpa(5 * PAGE_SIZE)
        with pytest.raises(MemoryError_):
            gm.unmap_page(5)

    def test_gfn_bounds(self, gm):
        with pytest.raises(MemoryError_):
            gm.map_page(16, 1)
        with pytest.raises(MemoryError_):
            gm.map_page(-1, 1)

    def test_scalar_roundtrip(self, gm):
        gm.write_u32(0x100, 0xABCD1234)
        assert gm.read_u32(0x100) == 0xABCD1234
        gm.write_u8(0x104, 0x7F)
        assert gm.read_u8(0x104) == 0x7F

    def test_page_crossing_bulk_access(self, gm):
        data = bytes(range(200)) * 30  # 6000 bytes, crosses pages
        gm.write_bytes(PAGE_SIZE - 100, data)
        assert gm.read_bytes(PAGE_SIZE - 100, len(data)) == data
        # And the underlying host frames really are discontiguous.
        assert gm.map[0] + 1 == gm.map[1]  # adjacency is incidental here

    def test_noncontiguous_backing(self):
        pm = PhysicalMemory(1 * MIB)
        gm = GuestMemory(pm, num_pages=2)
        gm.map_page(0, 50)
        gm.map_page(1, 10)  # backwards on purpose
        data = b"x" * 100 + b"y" * 100
        gm.write_bytes(PAGE_SIZE - 100, data)
        assert gm.read_bytes(PAGE_SIZE - 100, 200) == data
        assert pm.read_bytes(50 * PAGE_SIZE + PAGE_SIZE - 100, 100) == b"x" * 100
        assert pm.read_bytes(10 * PAGE_SIZE, 100) == b"y" * 100

    def test_write_hook_fires_per_touched_page(self, gm):
        touched = []
        gm.write_hook = touched.append
        gm.write_bytes(PAGE_SIZE - 4, b"12345678")  # spans pages 0 and 1
        assert touched == [0, 1]
        touched.clear()
        gm.write_u32(5 * PAGE_SIZE, 1)
        assert touched == [5]
        # reads never fire the hook
        touched.clear()
        gm.read_bytes(0, PAGE_SIZE)
        assert touched == []

    def test_gfn_page_accessors(self, gm):
        gm.write_gfn(2, b"q" * PAGE_SIZE)
        assert gm.read_gfn(2) == b"q" * PAGE_SIZE
        with pytest.raises(MemoryError_):
            gm.write_gfn(2, b"short")

    @given(st.integers(min_value=0, max_value=16 * PAGE_SIZE - 256),
           st.binary(min_size=1, max_size=256))
    def test_bulk_roundtrip_property(self, offset, data):
        pm = PhysicalMemory(2 * MIB)
        gm = GuestMemory(pm, num_pages=16)
        # scatter the mapping to stress page-crossing logic
        for gfn in range(16):
            gm.map_page(gfn, 200 + (gfn * 7) % 16)
        gm.write_bytes(offset, data)
        assert gm.read_bytes(offset, len(data)) == data
