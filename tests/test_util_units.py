"""Units and formatting."""

import pytest

from repro.util.units import (
    GIB,
    KIB,
    MIB,
    PAGE_SHIFT,
    PAGE_SIZE,
    bytes_to_pages,
    fmt_bytes,
    fmt_cycles,
    pages_to_bytes,
)


def test_constants_consistent():
    assert KIB == 1024
    assert MIB == 1024 * KIB
    assert GIB == 1024 * MIB
    assert PAGE_SIZE == 1 << PAGE_SHIFT == 4096


def test_pages_to_bytes_roundtrip():
    assert pages_to_bytes(0) == 0
    assert pages_to_bytes(3) == 3 * PAGE_SIZE
    assert bytes_to_pages(pages_to_bytes(7)) == 7


@pytest.mark.parametrize(
    "nbytes,pages",
    [(0, 0), (1, 1), (PAGE_SIZE, 1), (PAGE_SIZE + 1, 2), (10 * PAGE_SIZE, 10)],
)
def test_bytes_to_pages_rounds_up(nbytes, pages):
    assert bytes_to_pages(nbytes) == pages


def test_fmt_bytes_suffixes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(2048) == "2.0 KiB"
    assert fmt_bytes(512 * MIB) == "512.0 MiB"
    assert fmt_bytes(3 * GIB) == "3.0 GiB"


def test_fmt_cycles_suffixes():
    assert fmt_cycles(999) == "999 cyc"
    assert fmt_cycles(1500) == "1.5 Kcyc"
    assert fmt_cycles(2_500_000) == "2.5 Mcyc"
