"""Table renderer."""

import pytest
from hypothesis import given, strategies as st

from repro.util.table import Table


def test_render_alignment_and_content():
    table = Table("T", ["name", "value"])
    table.add_row("alpha", 1)
    table.add_row("b", 123456)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[2] and "value" in lines[2]
    assert "alpha" in text and "123,456" in text
    # all data rows have equal width
    widths = {len(line) for line in lines[2:]}
    assert len(widths) == 1


def test_row_arity_checked():
    table = Table("T", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_empty_columns_rejected():
    with pytest.raises(ValueError):
        Table("T", [])


def test_bool_and_float_formatting():
    table = Table("T", ["c"])
    table.add_row(True)
    table.add_row(False)
    table.add_row(0.000123)
    table.add_row(3.14159)
    table.add_row(12345.6)
    rows = table.rows
    assert rows[0] == ["yes"] and rows[1] == ["no"]
    assert rows[2] == ["0.000123"]
    assert rows[3] == ["3.14"]
    assert rows[4] == ["12,346"]


def test_rows_returns_copies():
    table = Table("T", ["c"])
    table.add_row(1)
    rows = table.rows
    rows[0][0] = "mutated"
    assert table.rows[0][0] == "1"


@given(st.lists(st.tuples(st.integers(), st.floats(allow_nan=False,
                                                   allow_infinity=False),
                          st.text(max_size=10)),
                min_size=0, max_size=10))
def test_render_never_crashes(rows):
    table = Table("fuzz", ["i", "f", "s"])
    for row in rows:
        table.add_row(*row)
    text = table.render()
    assert "fuzz" in text
