"""The obs.manifest shard-reduce step: merge, finalize, canonical bytes."""

import pytest

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    finalize_manifest,
    manifest_bytes,
    merge_manifests,
)
from repro.obs.registry import MetricsRegistry
from repro.util.errors import ConfigError


def _partial(counters=(), gauges=(), observations=(), experiment="X",
             time=0, samples=True):
    registry = MetricsRegistry()
    registry.clock.set(time)
    for name, value in counters:
        registry.counter(name).inc(value)
    for name, value in gauges:
        registry.gauge(name).set(value)
    for name, value in observations:
        registry.observe(name, value)
    return build_manifest(registry, experiment=experiment, samples=samples)


def test_counters_add():
    merged = merge_manifests([
        _partial(counters=[("c.total", 3), ("c.only_a", 1)]),
        _partial(counters=[("c.total", 4), ("c.only_b", 7)]),
    ])
    assert merged["metrics"]["c.total"]["value"] == 7
    assert merged["metrics"]["c.only_a"]["value"] == 1
    assert merged["metrics"]["c.only_b"]["value"] == 7


def test_gauges_take_max():
    merged = merge_manifests([
        _partial(gauges=[("g.level", 5.0)]),
        _partial(gauges=[("g.level", 3.0)]),
    ])
    assert merged["metrics"]["g.level"]["value"] == 5.0


def test_histograms_concatenate_and_resummarize():
    merged = merge_manifests([
        _partial(observations=[("h.lat", 1.0), ("h.lat", 2.0)], time=10),
        _partial(observations=[("h.lat", 9.0)], time=20),
    ])
    hist = merged["metrics"]["h.lat"]
    assert hist["count"] == 3
    assert hist["values"] == [1.0, 2.0, 9.0]
    assert hist["summary"]["maximum"] == 9.0
    assert hist["last_time"] == 20
    assert merged["time"] == 20  # time is the max of the operands


def test_histogram_merge_requires_samples():
    a = _partial(observations=[("h.lat", 1.0)], samples=False)
    b = _partial(observations=[("h.lat", 2.0)], samples=True)
    with pytest.raises(ConfigError, match="samples"):
        merge_manifests([a, b])


def test_kind_mismatch_rejected():
    a = _partial(counters=[("m.x", 1)])
    b = _partial(gauges=[("m.x", 1.0)])
    with pytest.raises(ConfigError, match="m.x"):
        merge_manifests([a, b])


def test_schema_version_mismatch_rejected():
    a = _partial()
    b = _partial()
    b["schema"] = "pyvisor.metrics.manifest/0"
    with pytest.raises(ConfigError, match="schema"):
        merge_manifests([a, b])
    with pytest.raises(ConfigError, match="schema"):
        merge_manifests([b])


def test_experiment_and_timebase_mismatch_rejected():
    with pytest.raises(ConfigError, match="experiments"):
        merge_manifests([_partial(experiment="A"), _partial(experiment="B")])
    a, b = _partial(), _partial()
    b["timebase"] = "cycles"
    with pytest.raises(ConfigError, match="timebase"):
        merge_manifests([a, b])


def test_empty_merge_rejected():
    with pytest.raises(ConfigError):
        merge_manifests([])


def test_merge_associative():
    parts = [
        _partial(counters=[("c.n", 1)], gauges=[("g.l", 2.0)],
                 observations=[("h.v", 1.0)]),
        _partial(counters=[("c.n", 2)], gauges=[("g.l", 9.0)],
                 observations=[("h.v", 5.0)]),
        _partial(counters=[("c.n", 4)], observations=[("h.v", 3.0)]),
    ]
    left = merge_manifests([merge_manifests(parts[:2]), parts[2]])
    right = merge_manifests([parts[0], merge_manifests(parts[1:])])
    assert manifest_bytes(left) == manifest_bytes(right)
    assert left["metrics"]["c.n"]["value"] == 7


def test_single_operand_is_normalized_not_aliased():
    part = _partial(counters=[("c.n", 5)], observations=[("h.v", 2.0)])
    merged = merge_manifests([part])
    assert merged["metrics"]["c.n"]["value"] == 5
    assert merged is not part
    assert manifest_bytes(merged) == manifest_bytes(
        merge_manifests([part, _partial(experiment="X")]))


def test_finalize_drops_samples_and_bytes_are_canonical():
    merged = merge_manifests([
        _partial(observations=[("h.v", 1.0), ("h.v", 2.0)]),
        _partial(observations=[("h.v", 3.0)]),
    ])
    final = finalize_manifest(merged)
    assert "values" not in final["metrics"]["h.v"]
    assert final["metrics"]["h.v"]["count"] == 3
    assert final["schema"] == MANIFEST_SCHEMA
    payload = manifest_bytes(final)
    assert payload.endswith(b"\n")
    assert b" " not in payload.splitlines()[0]  # compact separators
    assert manifest_bytes(final) == payload  # stable serialization


def test_extras_union_and_collide():
    a = _partial()
    a["extra"] = {"alpha": 1}
    b = _partial()
    b["extra"] = {"beta": 2}
    merged = merge_manifests([a, b])
    assert merged["extra"] == {"alpha": 1, "beta": 2}
    c = _partial()
    c["extra"] = {"alpha": 9}
    with pytest.raises(ConfigError, match="collide"):
        merge_manifests([a, c])
