"""Hypervisor exit tracing via EventLog."""

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.cpu.assembler import Assembler
from repro.util.eventlog import EventLog
from repro.util.units import MIB


def test_exits_are_traced_with_details():
    hv = Hypervisor(memory_bytes=64 * MIB)
    hv.trace = EventLog(capacity=1000)
    vm = hv.create_vm(GuestConfig(name="t", memory_bytes=16 * MIB,
                                  virt_mode=VirtMode.HW_ASSIST,
                                  mmu_mode=MMUVirtMode.NESTED))
    prog = Assembler().assemble("""
.org 0x1000
    li a0, 88
    out 0x10, a0
    li a0, 1
    out 0xf0, a0
    hlt
""")
    hv.load_program(vm, prog)
    hv.reset_vcpu(vm, 0x1000)
    hv.run(vm, max_guest_instructions=1000)

    events = list(hv.trace.filter(category="vmexit"))
    assert len(events) == vm.exit_stats.total_exits
    console_writes = [e for e in events if e.payload.get("detail") == "port_0x10"]
    assert len(console_writes) == 1
    assert console_writes[0].payload["vm"] == "t"
    assert console_writes[0].payload["cycles"] > 0
    # Times are monotone non-decreasing.
    times = [e.time for e in events]
    assert times == sorted(times)


def test_tracing_disabled_by_default():
    hv = Hypervisor(memory_bytes=64 * MIB)
    assert hv.trace is None
