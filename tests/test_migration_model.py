"""DES migration models: convergence, downtime shapes, policies."""

import pytest

from repro.migration.model import (
    MigrationConfig,
    PreCopyStopPolicy,
    simulate_postcopy,
    simulate_precopy,
    simulate_stop_and_copy,
    unique_pages_dirtied,
)
from repro.sim.kernel import SEC, Simulator
from repro.sim.link import NetworkLink
from repro.util.errors import MigrationError
from repro.util.units import MIB, PAGE_SIZE

LINK_BPS = 125 * MIB  # ~1 Gbps => ~32k pages/s


def fresh_link():
    return NetworkLink(Simulator(), bandwidth_bytes_per_sec=LINK_BPS,
                       latency=100)


def cfg(**kw):
    base = dict(vm_pages=32768, dirty_rate_pps=4000.0)
    base.update(kw)
    return MigrationConfig(**base)


class TestDirtyModel:
    def test_zero_interval_or_rate(self):
        assert unique_pages_dirtied(cfg(), 0) == 0
        assert unique_pages_dirtied(cfg(dirty_rate_pps=0), SEC) == 0

    def test_unique_pages_saturate(self):
        c = cfg(vm_pages=1000, dirty_rate_pps=1e9)
        assert unique_pages_dirtied(c, SEC) == 1000

    def test_monotone_in_time(self):
        c = cfg()
        values = [unique_pages_dirtied(c, t) for t in
                  (1000, 10_000, 100_000, SEC)]
        assert values == sorted(values)

    def test_hot_set_rewrites_are_free(self):
        # Concentrating writes on a small hot set dirties fewer unique
        # pages than spreading them.
        hot = cfg(hot_fraction=0.01, hot_write_fraction=0.99)
        spread = cfg(hot_fraction=0.5, hot_write_fraction=0.5)
        assert (unique_pages_dirtied(hot, SEC)
                < unique_pages_dirtied(spread, SEC))

    def test_validation(self):
        with pytest.raises(MigrationError):
            MigrationConfig(vm_pages=0).validate()
        with pytest.raises(MigrationError):
            MigrationConfig(hot_fraction=1.5).validate()
        with pytest.raises(MigrationError):
            MigrationConfig(dirty_rate_pps=-1).validate()


class TestPreCopy:
    def test_idle_vm_single_round(self):
        result = simulate_precopy(cfg(dirty_rate_pps=0), fresh_link())
        assert result.rounds == 1
        assert result.converged
        assert result.pages_sent == 32768
        # Downtime is just CPU state + nothing.
        assert result.downtime_us < 5000

    def test_downtime_grows_with_dirty_rate(self):
        downtimes = []
        for rate in (0, 8000, 40000):
            result = simulate_precopy(cfg(dirty_rate_pps=rate), fresh_link())
            downtimes.append(result.downtime_us)
        assert downtimes == sorted(downtimes)
        assert downtimes[-1] > 10 * downtimes[0]

    def test_nonconvergence_past_link_rate(self):
        result = simulate_precopy(cfg(dirty_rate_pps=40000), fresh_link())
        assert not result.converged
        assert result.rounds == cfg().max_rounds

    def test_round_sizes_decrease_when_converging(self):
        result = simulate_precopy(cfg(dirty_rate_pps=4000), fresh_link())
        assert result.converged
        assert result.round_sizes[0] == 32768
        assert result.round_sizes[-1] <= cfg().threshold_pages

    def test_total_time_exceeds_first_copy(self):
        result = simulate_precopy(cfg(), fresh_link())
        floor = 32768 * PAGE_SIZE / LINK_BPS * SEC
        assert result.total_time_us >= floor

    def test_diminishing_policy_stops_early(self):
        aggressive = simulate_precopy(
            cfg(dirty_rate_pps=40000,
                stop_policy=PreCopyStopPolicy.DIMINISHING),
            fresh_link(),
        )
        assert aggressive.rounds < cfg().max_rounds


class TestPostCopy:
    def test_downtime_independent_of_dirty_rate(self):
        d1 = simulate_postcopy(cfg(dirty_rate_pps=0), fresh_link())
        d2 = simulate_postcopy(cfg(dirty_rate_pps=50000), fresh_link())
        assert d1.downtime_us == d2.downtime_us

    def test_downtime_is_cpu_state_only(self):
        result = simulate_postcopy(cfg(), fresh_link())
        expected = fresh_link().transmission_time(cfg().cpu_state_bytes)
        assert result.downtime_us == expected

    def test_every_page_sent_once_plus_faults(self):
        result = simulate_postcopy(cfg(), fresh_link())
        assert result.pages_sent == cfg().vm_pages + result.remote_faults
        assert result.remote_faults > 0

    def test_faster_touching_means_more_faults(self):
        slow = simulate_postcopy(cfg(touch_rate_pps=1000), fresh_link())
        fast = simulate_postcopy(cfg(touch_rate_pps=100000), fresh_link())
        assert fast.remote_faults > slow.remote_faults


class TestStopAndCopy:
    def test_downtime_equals_total(self):
        result = simulate_stop_and_copy(cfg(), fresh_link())
        assert result.downtime_us == result.total_time_us
        assert result.pages_sent == cfg().vm_pages

    def test_worst_downtime_of_all(self):
        link_cfg = cfg(dirty_rate_pps=4000)
        sc = simulate_stop_and_copy(link_cfg, fresh_link())
        pre = simulate_precopy(link_cfg, fresh_link())
        post = simulate_postcopy(link_cfg, fresh_link())
        assert sc.downtime_us > pre.downtime_us
        assert sc.downtime_us > post.downtime_us


class TestTradeoffs:
    def test_precopy_vs_postcopy_crossover(self):
        # Below the link page rate pre-copy's downtime is small; above
        # it post-copy wins decisively on downtime.
        high = cfg(dirty_rate_pps=45000)
        pre = simulate_precopy(high, fresh_link())
        post = simulate_postcopy(high, fresh_link())
        assert post.downtime_us < pre.downtime_us / 10
        # ... but post-copy pays a degradation window instead.
        assert post.degraded_time_us > 0
