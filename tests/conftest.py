"""Shared fixtures: memory systems, machines, hypervisors, kernels.

Kernel images are pure functions of their options, so the two common
builds are assembled once per session.
"""

import pytest

from repro.core import GuestConfig, Hypervisor, Machine, MMUVirtMode, VirtMode
from repro.guest import KernelOptions, build_kernel
from repro.mem.costs import CostModel
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.util.units import MIB

GUEST_MEM = 16 * MIB
HOST_MEM = 64 * MIB


@pytest.fixture
def physmem():
    return PhysicalMemory(1 * MIB)


@pytest.fixture
def allocator(physmem):
    return FrameAllocator(physmem, reserved_frames=4)


@pytest.fixture
def costs():
    return CostModel()


@pytest.fixture
def machine():
    return Machine(memory_bytes=GUEST_MEM)


@pytest.fixture
def hypervisor():
    return Hypervisor(memory_bytes=HOST_MEM)


@pytest.fixture(scope="session")
def hvm_kernel():
    return build_kernel(KernelOptions(memory_bytes=GUEST_MEM))


@pytest.fixture(scope="session")
def pv_kernel():
    return build_kernel(KernelOptions(pv=True, memory_bytes=GUEST_MEM))


@pytest.fixture(scope="session")
def hvm_kernel_timer():
    return build_kernel(
        KernelOptions(memory_bytes=GUEST_MEM, timer_period=150_000)
    )


def make_vm(hv, name="vm", virt_mode=VirtMode.HW_ASSIST,
            mmu_mode=MMUVirtMode.NESTED, **kwargs):
    return hv.create_vm(
        GuestConfig(name=name, memory_bytes=GUEST_MEM,
                    virt_mode=virt_mode, mmu_mode=mmu_mode, **kwargs)
    )
