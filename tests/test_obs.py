"""The repro.obs observability substrate."""

import pytest

from repro.core import (
    GuestConfig,
    Hypervisor,
    MMUVirtMode,
    VirtMode,
    VMScheduler,
)
from repro.core.hypervisor import RunOutcome
from repro.core.stats import ExitStats, VMStats
from repro.cpu.exits import ExitReason
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_cpu_bound
from repro.obs import (
    CycleClock,
    ManualClock,
    MetricsRegistry,
    SimClock,
    Tracer,
    build_manifest,
    register_baseline,
    subsystem_of,
)
from repro.sim.kernel import Simulator, Timeout
from repro.util.errors import ConfigError
from repro.util.eventlog import EventLog
from repro.util.units import MIB

GUEST_MEM = 16 * MIB


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("vm.web.exits.vmcall")
        a.inc(3)
        assert reg.counter("vm.web.exits.vmcall") is a
        assert reg.value("vm.web.exits.vmcall") == 3

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("sched.dispatches")
        with pytest.raises(ConfigError):
            reg.gauge("sched.dispatches")
        with pytest.raises(ConfigError):
            reg.histogram("sched.dispatches")

    def test_name_structure_enforced(self):
        reg = MetricsRegistry()
        for bad in ("", ".lead", "trail.", "a..b"):
            with pytest.raises(ConfigError):
                reg.counter(bad)
        # Segments carry user labels: spaces are legal inside one.
        reg.counter("vm.e9b-full BT.exits.vmcall")

    def test_values_prefix_and_strip(self):
        reg = MetricsRegistry()
        reg.counter("vm.a.exits.vmcall").inc(2)
        reg.counter("vm.a.exits.io_out").inc(1)
        reg.counter("vm.b.exits.vmcall").inc(9)
        assert reg.values("vm.a.exits.", strip=True) == {
            "vmcall": 2, "io_out": 1,
        }

    def test_scope_nesting_qualifies_names(self):
        reg = MetricsRegistry()
        dev = reg.scope("vm").scope("web").scope("dev")
        dev.counter("block.reads").inc()
        assert reg.value("vm.web.dev.block.reads") == 1
        assert dev.values() == {"block.reads": 1}

    def test_reset_drops_only_the_prefix(self):
        reg = MetricsRegistry()
        reg.counter("vm.a.exits.vmcall").inc()
        reg.counter("vm.ab.exits.vmcall").inc()
        assert reg.reset("vm.a.") == 1
        assert "vm.a.exits.vmcall" not in reg
        assert reg.value("vm.ab.exits.vmcall") == 1

    def test_merge_adds_counters_and_extends_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("migration.rounds").inc(2)
        b.counter("migration.rounds").inc(3)
        b.gauge("overcommit.balloon.pages").set(7)
        b.histogram("span.round").observe(1.0)
        a.merge(b)
        assert a.value("migration.rounds") == 5
        assert a.value("overcommit.balloon.pages") == 7
        assert a.histogram("span.round").count == 1

    def test_merge_under_prefix(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("faults.injected.total").inc(4)
        a.merge(b, prefix="host0")
        assert a.value("host0.faults.injected.total") == 4


class TestClocks:
    def test_manual_clock_rejects_regression(self):
        clk = ManualClock()
        clk.advance(5)
        assert clk.now() == 5
        with pytest.raises(ValueError):
            clk.advance(-1)
        with pytest.raises(ValueError):
            clk.set(3)

    def test_cycle_clock_tracks_source(self):
        cycles = [0]
        clk = CycleClock(lambda: cycles[0])
        assert clk.timebase == "cycles"
        cycles[0] = 1234
        assert clk.now() == 1234

    def test_sim_clock_tracks_simulator(self):
        sim = Simulator()
        clk = SimClock(sim)
        assert clk.timebase == "us"

        def proc():
            yield Timeout(25)

        sim.spawn(proc())
        sim.run()
        assert clk.now() == sim.now == 25

    def test_histogram_stamped_with_registry_clock(self):
        clk = ManualClock()
        reg = MetricsRegistry(clock=clk)
        clk.advance(42)
        reg.observe("sched.wake_latency_us", 3.0)
        assert reg.histogram("sched.wake_latency_us").last_time == 42
        snap = reg.snapshot()
        assert snap["timebase"] == "ticks"
        assert snap["time"] == 42


class TestTracer:
    def test_span_nesting_depths_in_eventlog(self):
        log = EventLog(capacity=64)
        clk = ManualClock()
        tracer = Tracer(log=log, clock=clk)
        with tracer.span("migration.round", vm="web"):
            clk.advance(10)
            with tracer.span("migration.batch"):
                clk.advance(5)
        events = list(tracer.spans())
        phases = [(e.message, e.payload["phase"], e.payload["depth"])
                  for e in events]
        assert phases == [
            ("migration.round", "begin", 0),
            ("migration.batch", "begin", 1),
            ("migration.batch", "end", 1),
            ("migration.round", "end", 0),
        ]
        assert events[-1].payload["duration"] == 15
        assert events[-1].payload["vm"] == "web"
        assert tracer.depth == 0

    def test_span_durations_land_in_metrics(self):
        reg = MetricsRegistry()
        clk = ManualClock()
        tracer = Tracer(clock=clk, metrics=reg)
        with tracer.span("migration.round"):
            clk.advance(7)
        hist = reg.histogram("span.migration.round")
        assert hist.values == [7]

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("inside")
        assert tracer.depth == 0
        phases = [e.payload["phase"] for e in tracer.spans("boom")]
        assert phases == ["begin", "end"]


class TestStatsViews:
    def test_exit_stats_is_a_registry_view(self):
        reg = MetricsRegistry()
        stats = ExitStats(reg.scope("vm.web"))
        stats.record(ExitReason.VMCALL, 100)
        stats.record(ExitReason.VMCALL, 50)
        stats.record(ExitReason.IO_OUT, 30, detail="console")
        assert stats.counts["vmcall"] == 2
        assert stats.cycles["vmcall"] == 150
        assert stats.total_exits == 3
        # The view and the registry agree on storage.
        assert reg.value("vm.web.exits.vmcall") == 2
        assert reg.value("vm.web.exit_cycles.io_out:console") == 30

    def test_vm_stats_attrs_are_registry_counters(self):
        reg = MetricsRegistry()
        stats = VMStats(reg.scope("vm.web"))
        stats.world_switches += 2
        stats.vmm_cycles += 500
        stats.guest_cycles = 1000  # assignment (snapshot restore path)
        assert stats.world_switches == 2
        assert reg.value("vm.web.world_switches") == 2
        assert reg.value("vm.web.vmm_cycles") == 500
        assert reg.value("vm.web.guest_cycles") == 1000
        assert stats.total_cycles == 1500


class TestManifest:
    def test_subsystem_mapping(self):
        assert subsystem_of("vm.web.exits.vmcall") == "core"
        assert subsystem_of("vm.web.dev.block.reads") == "devices"
        assert subsystem_of("sched.credit.preemptions") == "sched"
        assert subsystem_of("span.migration.round") == "trace"
        assert subsystem_of("surprise.counter") == "other"

    def test_baseline_covers_six_subsystems(self):
        reg = register_baseline(MetricsRegistry())
        manifest = build_manifest(reg, experiment="T0")
        assert manifest["schema"].startswith("pyvisor.metrics.manifest/")
        for subsystem in ("core", "devices", "sched", "migration",
                          "overcommit", "faults"):
            assert subsystem in manifest["subsystems"]
        assert manifest["experiment"] == "T0"
        assert (manifest["metrics"]["faults.injected.total"]["value"] == 0)


def _make_guest(hv, name, workload):
    vm = hv.create_vm(GuestConfig(name=name, memory_bytes=GUEST_MEM,
                                  virt_mode=VirtMode.HW_ASSIST,
                                  mmu_mode=MMUVirtMode.NESTED))
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEM))
    hv.load_program(vm, kernel)
    hv.load_program(vm, workload)
    hv.reset_vcpu(vm, kernel.entry)
    return vm


class TestHypervisorIntegration:
    def test_vm_metrics_live_in_shared_registry(self):
        reg = MetricsRegistry()
        hv = Hypervisor(memory_bytes=96 * MIB, registry=reg)
        vm = _make_guest(hv, "obs", workloads.cpu_bound(5_000))
        outcome = hv.run(vm, max_guest_instructions=80_000_000)
        assert outcome is RunOutcome.SHUTDOWN
        # Views and registry agree.
        assert reg.value("vm.obs.vmm_cycles") == vm.stats.vmm_cycles
        assert reg.value("core.vms_created") == 1
        assert reg.value("devices.attached") == len(vm.devices)
        total_exits = sum(
            reg.values("vm.obs.exits.", strip=True).values()
        )
        assert total_exits == vm.exit_stats.total_exits

    def test_recreated_vm_restarts_counters(self):
        reg = MetricsRegistry()
        hv = Hypervisor(memory_bytes=96 * MIB, registry=reg)
        vm = _make_guest(hv, "cycle", workloads.cpu_bound(2_000))
        hv.run(vm, max_guest_instructions=80_000_000)
        assert reg.value("vm.cycle.world_switches") > 0
        hv.destroy_vm(vm)
        vm2 = _make_guest(hv, "cycle", workloads.cpu_bound(2_000))
        # Same name, fresh telemetry: exactly the pre-registry behaviour.
        assert vm2.stats.world_switches == 0

    def test_vmscheduler_flags_hung_vm_per_entry(self):
        reg = MetricsRegistry()
        hv = Hypervisor(memory_bytes=96 * MIB, registry=reg)
        iterations = 30_000
        stalls = _make_guest(hv, "stalls", workloads.cpu_bound(iterations))
        healthy = _make_guest(hv, "healthy", workloads.cpu_bound(iterations))
        hv.injector = FaultInjector(
            FaultPlan(seed=7, specs=[
                # First pump opportunity belongs to the first dispatched
                # VM: rate=1.0, count=1 wedges exactly that one.
                FaultSpec("vcpu.stall", rate=1.0, after=0, count=1),
            ]),
            metrics=reg.scope("faults"),
        )
        sched = VMScheduler(hv, quantum_cycles=20_000, watchdog_limit=4)
        sched.add(stalls)
        sched.add(healthy)
        report = sched.run()
        assert report.outcomes["stalls"] is RunOutcome.HUNG
        assert report.outcomes["healthy"] is RunOutcome.SHUTDOWN
        assert read_diag(healthy.guest_mem).user_result == (
            expected_cpu_bound(iterations)
        )
        assert reg.value("sched.vmsched.hangs") == 1
        assert reg.value("faults.watchdog.stalls.hangs_detected") == 1
        assert reg.value("faults.watchdog.healthy.hangs_detected") == 0
        assert reg.value("faults.injected.vcpu.stall") == 1
