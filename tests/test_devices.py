"""Device models: bus, PIC, timer, console, power."""

import pytest

from repro.cpu.isa import Cause
from repro.devices.bus import PortBus, PortDevice
from repro.devices.console import CONS_STATUS, CONS_TX, ConsoleDevice
from repro.devices.irq import (
    IRQ_TIMER_LINE,
    InterruptController,
    PIC_STATUS,
)
from repro.devices.power import POWER_BASE, PowerControl
from repro.devices.timer import (
    MODE_PERIODIC,
    TIMER_CTRL,
    TIMER_PERIOD,
    TimerDevice,
)
from repro.util.errors import DeviceError


class SinkStub:
    def __init__(self):
        self.irqs = []

    def assert_irq(self, cause):
        self.irqs.append(cause)


class TestPortBus:
    def test_routing(self):
        class Echo(PortDevice):
            def __init__(self):
                self.last = None

            def port_read(self, port):
                return port * 2

            def port_write(self, port, value):
                self.last = (port, value)

        bus = PortBus()
        dev = Echo()
        bus.register(dev, 0x10, 2)
        bus.io_out(0x11, 5)
        assert dev.last == (0x11, 5)
        assert bus.io_in(0x10) == 0x20
        assert bus.reads == 1 and bus.writes == 1

    def test_unclaimed_port_open_bus(self):
        bus = PortBus()
        assert bus.io_in(0x99) == 0
        bus.io_out(0x99, 1)  # discarded

    def test_strict_mode_raises(self):
        bus = PortBus(strict=True)
        with pytest.raises(DeviceError):
            bus.io_in(0x99)

    def test_overlapping_registration_rejected(self):
        bus = PortBus()
        bus.register(PortDevice(), 0x10, 4)
        with pytest.raises(DeviceError):
            bus.register(PortDevice(), 0x12, 1)

    def test_base_device_rejects_everything(self):
        dev = PortDevice()
        with pytest.raises(DeviceError):
            dev.port_read(0)
        with pytest.raises(DeviceError):
            dev.port_write(0, 1)


class TestInterruptController:
    def test_line_zero_is_timer_cause(self):
        sink = SinkStub()
        pic = InterruptController(sink)
        pic.raise_line(0)
        pic.raise_line(3)
        assert sink.irqs == [Cause.IRQ_TIMER, Cause.IRQ_DEVICE]

    def test_status_port_and_ack(self):
        pic = InterruptController(SinkStub())
        pic.raise_line(1)
        pic.raise_line(4)
        assert pic.port_read(PIC_STATUS) == (1 << 1) | (1 << 4)
        pic.port_write(PIC_STATUS, 1 << 1)  # ack line 1
        assert pic.port_read(PIC_STATUS) == 1 << 4
        assert pic.highest_pending() == 4

    def test_line_bounds(self):
        pic = InterruptController()
        with pytest.raises(DeviceError):
            pic.raise_line(16)
        with pytest.raises(DeviceError):
            pic.line(-1)

    def test_irqline_handle(self):
        sink = SinkStub()
        pic = InterruptController(sink)
        line = pic.line(IRQ_TIMER_LINE)
        line.raise_()
        assert pic.pending[0]


class TestTimer:
    def _timer(self):
        pic = InterruptController(SinkStub())
        return TimerDevice(pic.line(0)), pic

    def test_oneshot_fires_once(self):
        timer, pic = self._timer()
        timer.program(100, periodic=False, now_cycles=0)
        assert timer.tick(50) == 0
        assert timer.tick(100) == 1
        assert timer.tick(500) == 0
        assert timer.expirations == 1

    def test_periodic_catches_up(self):
        timer, pic = self._timer()
        timer.program(100, periodic=True, now_cycles=0)
        assert timer.tick(350) == 3  # 100, 200, 300 all elapsed
        assert timer.next_deadline() == 400

    def test_port_interface_arms_via_rebase(self):
        timer, pic = self._timer()
        timer.port_write(TIMER_PERIOD, 200)
        timer.port_write(TIMER_CTRL, MODE_PERIODIC)
        timer.rebase_if_armed(1000)
        assert timer.next_deadline() == 1200
        assert timer.port_read(TIMER_CTRL) == 1

    def test_arming_without_period_rejected(self):
        timer, _ = self._timer()
        with pytest.raises(DeviceError):
            timer.port_write(TIMER_CTRL, MODE_PERIODIC)

    def test_disarm(self):
        timer, _ = self._timer()
        timer.program(10, periodic=True, now_cycles=0)
        timer.disarm()
        assert timer.tick(100) == 0


class TestConsole:
    def test_captures_text(self):
        console = ConsoleDevice()
        for ch in b"ok\n":
            console.port_write(CONS_TX, ch)
        assert console.text == "ok\n"
        assert console.lines() == ["ok"]
        assert console.port_read(CONS_STATUS) == 1

    def test_capacity_bound(self):
        console = ConsoleDevice(capacity=2)
        for ch in b"abcd":
            console.port_write(CONS_TX, ch)
        assert console.text == "ab"
        assert console.chars_written == 4

    def test_clear(self):
        console = ConsoleDevice()
        console.port_write(CONS_TX, ord("x"))
        console.clear()
        assert console.text == ""


class TestPower:
    def test_latch(self):
        power = PowerControl()
        assert power.port_read(POWER_BASE) == 0
        power.port_write(POWER_BASE, 3)
        assert power.shutdown_requested and power.code == 3
        assert power.port_read(POWER_BASE) == 1

    def test_zero_write_ignored(self):
        power = PowerControl()
        power.port_write(POWER_BASE, 0)
        assert not power.shutdown_requested
