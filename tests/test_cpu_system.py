"""System instructions: traps, CSRs, privilege, interrupts, I/O."""

import pytest

from repro.cpu.assembler import Assembler
from repro.cpu.interp import CPUCore, StopReason
from repro.cpu.isa import CSR, Cause, MODE_KERNEL, MODE_USER
from repro.cpu.mmu import BareMMU
from repro.mem.costs import CostModel
from repro.mem.paging import AddressSpace, PTE_USER, PTE_WRITABLE
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.util.units import MIB


class PortStub:
    def __init__(self):
        self.writes = []
        self.value = 0x77

    def io_out(self, port, value):
        self.writes.append((port, value))

    def io_in(self, port):
        return self.value


def build(src, port_bus=None):
    prog = Assembler().assemble(".org 0x1000\n" + src)
    pm = PhysicalMemory(1 * MIB)
    prog.load(pm)
    cpu = CPUCore(BareMMU(pm, CostModel()), port_bus=port_bus)
    cpu.reset(0x1000)
    cpu.regs[13] = 0x80000
    return cpu, pm


class TestTrapsAndIret:
    def test_syscall_roundtrip(self):
        cpu, _ = build("""
    li a0, vec
    csrw VBAR, a0
    syscall 5
    li a3, 99          ; must execute after iret
    hlt
vec:
    csrr a1, ECAUSE
    csrr a2, EVAL
    iret
""")
        cpu.run(max_instructions=100)
        assert cpu.regs[2] == int(Cause.SYSCALL)
        assert cpu.regs[3] == 5
        assert cpu.regs[4] == 99

    def test_trap_saves_and_restores_mode_and_ie(self):
        cpu, _ = build("""
    li a0, vec
    csrw VBAR, a0
    sti
    syscall 1
    csrr a2, IE        ; IE restored by iret
    hlt
vec:
    csrr a1, IE        ; IE cleared during handler
    iret
""")
        cpu.run(max_instructions=100)
        assert cpu.regs[2] == 0  # inside handler
        assert cpu.regs[3] == 1  # restored after iret
        assert cpu.mode == MODE_KERNEL

    def test_estatus_encodes_prior_state(self):
        cpu, _ = build("""
    li a0, vec
    csrw VBAR, a0
    sti
    syscall 0
    hlt
vec:
    csrr a1, ESTATUS
    iret
""")
        cpu.run(max_instructions=100)
        assert cpu.regs[2] == (MODE_KERNEL | (1 << 1))


class TestPrivilege:
    def _user_setup(self, body_user, body_vec):
        """Run kernel that drops to user mode at 0x3000."""
        src = f"""
    li a0, vec
    csrw VBAR, a0
    li a0, user
    csrw EPC, a0
    li a0, 1           ; prior mode = user, IE off
    csrw ESTATUS, a0
    iret
vec:
{body_vec}
.space 64
user:
{body_user}
"""
        cpu, pm = build(src)
        # Identity map everything user-accessible so user code can run.
        alloc = FrameAllocator(pm, reserved_frames=64)
        space = AddressSpace(pm, alloc)
        for page in range(0, 0x30):
            space.map(page * 4096, page * 4096, PTE_WRITABLE | PTE_USER)
        cpu.mmu.set_root(space.root_pa)
        return cpu

    def test_privileged_instruction_traps_in_user_mode(self):
        cpu = self._user_setup(
            body_user="    csrw VBAR, a0\n    hlt\n",
            body_vec="    csrr a1, ECAUSE\n    hlt\n",
        )
        cpu.run(max_instructions=100)
        assert cpu.regs[2] == int(Cause.PRIV)
        assert cpu.mode == MODE_KERNEL

    def test_privileged_csr_read_traps_in_user_mode(self):
        cpu = self._user_setup(
            body_user="    csrr a0, PTBR\n    hlt\n",
            body_vec="    csrr a1, ECAUSE\n    hlt\n",
        )
        cpu.run(max_instructions=100)
        assert cpu.regs[2] == int(Cause.PRIV)

    def test_sensitive_instructions_silently_misbehave(self):
        # STI in user mode is ignored; CSRR MODE reads the real mode.
        cpu = self._user_setup(
            body_user="""
    sti
    csrr a1, IE
    csrr a2, MODE
    syscall 0
""",
            body_vec="    hlt\n",
        )
        cpu.run(max_instructions=100)
        assert cpu.regs[2] == 0  # STI had no effect
        assert cpu.regs[3] == MODE_USER  # hardware mode leaked
        assert cpu.csr[CSR.IE] == 0

    def test_public_counters_readable_from_user(self):
        cpu = self._user_setup(
            body_user="    csrr a1, CYCLES\n    csrr a2, INSTRET\n    syscall 0\n",
            body_vec="    hlt\n",
        )
        cpu.run(max_instructions=100)
        assert cpu.regs[2] > 0 and cpu.regs[3] > 0


class TestCSRs:
    def test_readonly_csr_write_is_illegal(self):
        cpu, _ = build("""
    li a0, vec
    csrw VBAR, a0
    csrw CYCLES, a0
    hlt
vec:
    csrr a1, ECAUSE
    hlt
""")
        cpu.run(max_instructions=100)
        assert cpu.regs[2] == int(Cause.ILLEGAL)

    def test_scratch_roundtrip(self):
        cpu, _ = build("""
    li a0, 0x1234
    csrw SCRATCH, a0
    csrr a1, SCRATCH
    hlt
""")
        cpu.run(max_instructions=100)
        assert cpu.regs[2] == 0x1234

    def test_ptbr_write_installs_root(self):
        cpu, pm = build("    hlt\n")
        alloc = FrameAllocator(pm, reserved_frames=64)
        space = AddressSpace(pm, alloc)
        space.map(0x1000, 0x1000, PTE_WRITABLE)
        cpu.csr[CSR.VBAR] = 0  # irrelevant
        cpu.regs[1] = space.root_pa
        prog = Assembler().assemble(".org 0x1000\n    csrw PTBR, a0\n    hlt\n")
        prog.load(pm)
        cpu.reset(0x1000)
        cpu.regs[1] = space.root_pa
        cpu.run(max_instructions=10)
        assert cpu.mmu.paging_enabled
        assert cpu.mmu.root_pa == space.root_pa


class TestInterrupts:
    def test_irq_delivered_when_enabled(self):
        cpu, _ = build("""
    li a0, vec
    csrw VBAR, a0
    sti
spin:
    jmp spin
vec:
    csrr a1, ECAUSE
    hlt
""")
        cpu.run(max_instructions=10)
        cpu.assert_irq(Cause.IRQ_TIMER)
        cpu.run(max_instructions=50)
        assert cpu.regs[2] == int(Cause.IRQ_TIMER)

    def test_irq_held_while_disabled(self):
        cpu, _ = build("""
    li a0, vec
    csrw VBAR, a0
spin:
    jmp spin
vec:
    hlt
""")
        cpu.assert_irq(Cause.IRQ_TIMER)
        result = cpu.run(max_instructions=30)
        assert result.stop is StopReason.INSTR_LIMIT  # never delivered
        assert Cause.IRQ_TIMER in cpu.pending_irqs

    def test_timer_priority_over_device(self):
        cpu, _ = build("""
    li a0, vec
    csrw VBAR, a0
    sti
spin:
    jmp spin
vec:
    csrr a1, ECAUSE
    hlt
""")
        cpu.assert_irq(Cause.IRQ_DEVICE)
        cpu.assert_irq(Cause.IRQ_TIMER)
        cpu.run(max_instructions=100)
        assert cpu.regs[2] == int(Cause.IRQ_TIMER)
        assert Cause.IRQ_DEVICE in cpu.pending_irqs

    def test_hlt_wakes_on_irq(self):
        cpu, _ = build("""
    li a0, vec
    csrw VBAR, a0
    sti
    hlt
    li a2, 7
    hlt
vec:
    csrr a1, ECAUSE
    iret
""")
        result = cpu.run(max_instructions=100)
        assert result.stop is StopReason.HALT
        cpu.assert_irq(Cause.IRQ_TIMER)
        cpu.run(max_instructions=100)
        # woke, vectored, returned to the instruction after hlt
        assert cpu.regs[2] == int(Cause.IRQ_TIMER)
        assert cpu.regs[3] == 7

    def test_invalid_irq_cause_rejected(self):
        cpu, _ = build("hlt\n")
        with pytest.raises(ValueError):
            cpu.assert_irq(Cause.SYSCALL)


class TestPortIO:
    def test_out_reaches_bus(self):
        stub = PortStub()
        cpu, _ = build("""
    li a0, 0xAB
    out 0x40, a0
    hlt
""", port_bus=stub)
        cpu.run(max_instructions=10)
        assert stub.writes == [(0x40, 0xAB)]

    def test_in_reads_bus(self):
        stub = PortStub()
        cpu, _ = build("    in a1, 0x50\n    hlt\n", port_bus=stub)
        cpu.run(max_instructions=10)
        assert cpu.regs[2] == 0x77

    def test_io_without_bus_reads_zero(self):
        cpu, _ = build("    li a1, 5\n    in a1, 0x50\n    out 0x10, a1\n    hlt\n")
        cpu.run(max_instructions=10)
        assert cpu.regs[2] == 0

    def test_io_charges_cycles(self):
        costs = CostModel()
        stub = PortStub()
        cpu, _ = build("    in a1, 0x50\n    hlt\n", port_bus=stub)
        cpu.run(max_instructions=10)
        assert cpu.cycles >= costs.io_port_cycles


class TestBreakpoint:
    def test_brk_traps(self):
        cpu, _ = build("""
    li a0, vec
    csrw VBAR, a0
    brk
    li a2, 1
    hlt
vec:
    csrr a1, ECAUSE
    iret
""")
        cpu.run(max_instructions=100)
        assert cpu.regs[2] == int(Cause.BREAK)
        assert cpu.regs[3] == 1  # resumed after brk
