"""Fleet generation."""

import pytest

from repro.cluster import (
    DEFAULT_CATALOGUE,
    HostSpec,
    fleet_summary,
    generate_fleet,
    plan_consolidation,
)
from repro.util.errors import ConfigError
from repro.util.units import GIB


def test_reproducible_from_seed():
    a = generate_fleet(40, seed=7)
    b = generate_fleet(40, seed=7)
    assert [(v.name, v.cpu_demand, v.memory_bytes) for v in a] == \
           [(v.name, v.cpu_demand, v.memory_bytes) for v in b]
    c = generate_fleet(40, seed=8)
    assert [v.cpu_demand for v in a] != [v.cpu_demand for v in c]


def test_zipf_skew_favors_small_classes():
    fleet = generate_fleet(300, seed=3)
    counts = {}
    for vm in fleet:
        klass = vm.name.rsplit("-", 1)[0]
        counts[klass] = counts.get(klass, 0) + 1
    assert counts.get("util", 0) > counts.get("db", 0)
    assert counts.get("util", 0) > counts.get("cache", 0)


def test_jitter_varies_demand_within_class():
    fleet = generate_fleet(200, seed=5)
    utils = [vm.cpu_demand for vm in fleet if vm.name.startswith("util-")]
    assert len(set(utils)) > 5
    base = 0.5
    assert all(base * 0.8 <= d <= base * 1.2 for d in utils)


def test_zero_jitter_exact_catalogue_values():
    fleet = generate_fleet(50, seed=1, jitter=0.0)
    allowed = {k.cpu_demand for k in DEFAULT_CATALOGUE}
    assert all(vm.cpu_demand in allowed for vm in fleet)


def test_generated_fleet_is_placeable():
    fleet = generate_fleet(60, seed=11)
    spec = HostSpec(cores=16, cpu_capacity=16.0, memory_bytes=64 * GIB)
    placement = plan_consolidation(fleet, spec, cpu_overcommit=1.5)
    assert placement.total_vms == 60
    assert placement.hosts_used < 60


def test_summary():
    fleet = generate_fleet(30, seed=2)
    summary = fleet_summary(fleet)
    assert summary["count"] == 30
    assert summary["total_cpu"] > 0
    assert summary["interactive"] >= 1


def test_validation():
    with pytest.raises(ConfigError):
        generate_fleet(0)
    with pytest.raises(ConfigError):
        generate_fleet(5, catalogue=[])
    with pytest.raises(ConfigError):
        generate_fleet(5, jitter=1.5)
