"""Differential tests: closure-compiled blocks vs the reference interpreter.

Every test runs the same program twice -- ``CPUCore(jit=False)`` (the
oracle) and ``CPUCore(jit=True)`` -- and asserts the full architectural
state is bit-identical: regs, CSRs, cycles, instret, pc, halted, the
trap sequence, memory, and (when paging) TLB statistics, contents, and
LRU order.
"""

import pytest

from repro.cpu.assembler import Assembler
from repro.cpu.interp import CPUCore, StopReason
from repro.cpu.isa import CSR, Op, encode
from repro.cpu.mmu import BareMMU
from repro.mem.costs import CostModel
from repro.mem.paging import (
    AddressSpace,
    PTE_PRESENT,
    PTE_WRITABLE,
)
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.util.units import MIB, PAGE_SIZE

VEC = 0x3000


def _make_cpu(jit: bool, tlb_entries: int = 64):
    pm = PhysicalMemory(1 * MIB)
    cpu = CPUCore(BareMMU(pm, CostModel(), tlb_entries=tlb_entries), jit=jit)
    cpu.reset(0x1000)
    return cpu, pm


def _snapshot(cpu, pm):
    tlb = cpu.mmu.tlb
    return {
        "regs": tuple(cpu.regs),
        "csr": tuple(cpu.csr),
        "cycles": cpu.cycles,
        "instret": cpu.instret,
        "pc": cpu.pc,
        "halted": cpu.halted,
        "tlb_stats": (
            tlb.stats.hits,
            tlb.stats.misses,
            tlb.stats.evictions,
            tlb.stats.invalidations,
            tlb.stats.flushes,
        ),
        "tlb_lru": tuple(tlb._entries.items()),
        "mem": pm.read_bytes(0, pm.size),
    }


def _run_pair(image, *, setup=None, max_instructions=50_000, org=0x1000,
              tlb_entries=64):
    """Run ``image`` on both engines; assert identical outcomes."""
    outcomes = []
    cpus = []
    for jit in (False, True):
        cpu, pm = _make_cpu(jit, tlb_entries=tlb_entries)
        pm.write_bytes(org, image)
        pm.write_bytes(VEC, encode(Op.HLT))
        cpu.csr[CSR.VBAR] = VEC
        if setup is not None:
            setup(cpu, pm)
        traps = []
        orig = cpu.deliver_trap

        def record(info, _orig=orig, _traps=traps):
            _traps.append((int(info.cause), info.value, info.epc))
            return _orig(info)

        cpu.deliver_trap = record
        error = None
        result = None
        try:
            result = cpu.run(max_instructions=max_instructions)
        except Exception as exc:  # compared, not suppressed
            error = type(exc).__name__
        outcomes.append(
            {
                "stop": result.stop if result else None,
                "error": error,
                "traps": tuple(traps),
                **_snapshot(cpu, pm),
            }
        )
        cpus.append(cpu)
    interp_out, jit_out = outcomes
    for key in interp_out:
        assert interp_out[key] == jit_out[key], f"divergence in {key}"
    return cpus[1], jit_out


def _asm(src: str):
    return Assembler().assemble(src).data


class TestStraightLine:
    def test_alu_block(self):
        image = _asm(
            """
.org 0x1000
    li s0, 123456789
    mul s1, s0, 31
    add s1, s1, s0
    xor s2, s1, s0
    shl s2, s2, 7
    sar t0, s2, 3
    slt t1, t0, s0
    sltu t2, t0, s0
    hlt
"""
        )
        cpu, out = _run_pair(image)
        assert out["stop"] is StopReason.HALT
        assert cpu.jit_stats()["blocks_compiled"] >= 1

    def test_loop_block(self):
        image = _asm(
            """
.org 0x1000
    li s0, 500
    li s1, 0
loop:
    mul s1, s1, 31
    add s1, s1, s0
    sub s0, s0, 1
    bnez s0, loop
    hlt
"""
        )
        cpu, out = _run_pair(image)
        assert out["stop"] is StopReason.HALT
        # The hot loop executes as one compiled block per iteration.
        assert cpu.jit_stats()["blocks_compiled"] >= 2

    def test_mem_ops_paging_off(self):
        image = _asm(
            """
.org 0x1000
    li s0, 0x8000
    li s1, 0xDEADBEEF
    st [s0+0], s1
    ld s2, [s0+0]
    stb [s0+8], s1
    ldb t0, [s0+8]
    st [s0-4], s2
    ld t1, [s0-4]
    hlt
"""
        )
        _run_pair(image)

    def test_jal_jalr_links(self):
        image = _asm(
            """
.org 0x1000
    call sub1
    li t0, 7
    hlt
sub1:
    li s2, 9
    ret
"""
        )
        _, out = _run_pair(image)
        assert out["stop"] is StopReason.HALT
        assert out["regs"][11] == 9 and out["regs"][5] == 7

    def test_div0_trap_mid_block(self):
        image = _asm(
            """
.org 0x1000
    li s0, 99
    li s1, 0
    add s2, s0, 1
    divu t0, s0, s1
    li t1, 1
    hlt
"""
        )
        _, out = _run_pair(image)
        assert len(out["traps"]) == 1
        cause, value, epc = out["traps"][0]
        assert value == 0

    def test_div_by_immediate_zero_falls_back(self):
        # Constant DIV0 is left to the reference path; behaviour must
        # still match exactly.
        image = b"".join(
            [
                encode(Op.MOVI, rd=5, imm32=7),
                encode(Op.DIVU, rd=6, ra=5, imm32=0),
                encode(Op.HLT),
            ]
        )
        _, out = _run_pair(image)
        assert len(out["traps"]) == 1

    def test_instruction_limit_mid_block(self):
        image = _asm(
            """
.org 0x1000
    li s0, 100000
loop:
    add s1, s1, 1
    add s2, s2, 2
    xor t0, s1, s2
    sub s0, s0, 1
    bnez s0, loop
    hlt
"""
        )
        for limit in (1, 2, 3, 7, 50, 101):
            outcomes = []
            for jit in (False, True):
                cpu, pm = _make_cpu(jit)
                pm.write_bytes(0x1000, image)
                result = cpu.run(max_instructions=limit)
                outcomes.append(
                    (result.stop, result.instructions, cpu.cycles,
                     cpu.instret, cpu.pc, tuple(cpu.regs))
                )
            assert outcomes[0] == outcomes[1], f"limit={limit}"
            assert outcomes[0][0] is StopReason.INSTR_LIMIT


class TestSelfModifyingCode:
    def test_store_into_later_block(self):
        # Patch an instruction several blocks ahead, then jump to it.
        patch = int.from_bytes(encode(Op.MOV, rd=5, ra=6), "little")
        image = b"".join(
            [
                encode(Op.MOVI, rd=1, imm32=patch),     # 0x1000
                encode(Op.MOVI, rd=2, imm32=0x1020),    # 0x1008
                encode(Op.ST, ra=2, rb=1, simm12=0),    # 0x1010 patches 0x1020
                encode(Op.JAL, rd=0, imm32=0x1020),     # 0x1014
                encode(Op.NOP),                          # 0x1018
                encode(Op.NOP),                          # 0x101C
                encode(Op.NOP),                          # 0x1020 <- patched
                encode(Op.HLT),                          # 0x1024
            ]
        )

        def setup(cpu, pm):
            cpu.regs[6] = 777

        cpu, out = _run_pair(image, setup=setup)
        assert out["regs"][5] == 777  # the patched MOV executed

    def test_store_into_own_block(self):
        # The store lands *later in the same basic block*: the reference
        # interpreter re-fetches each instruction so it executes the new
        # bytes; the compiled block must bail at the store boundary.
        patch = int.from_bytes(encode(Op.MOV, rd=5, ra=6), "little")
        image = b"".join(
            [
                encode(Op.MOVI, rd=1, imm32=patch),     # 0x1000
                encode(Op.MOVI, rd=2, imm32=0x1014),    # 0x1008
                encode(Op.ST, ra=2, rb=1, simm12=0),    # 0x1010 patches 0x1014
                encode(Op.NOP),                          # 0x1014 <- patched
                encode(Op.HLT),                          # 0x1018
            ]
        )

        def setup(cpu, pm):
            cpu.regs[6] = 4242

        cpu, out = _run_pair(image, setup=setup)
        assert out["regs"][5] == 4242
        assert cpu.jit_stats()["blocks_invalidated"] >= 1

    def test_decode_cache_invalidated_on_code_write(self):
        cpu, pm = _make_cpu(jit=False)
        pm.write_bytes(0x1000, encode(Op.MOVI, rd=3, imm32=1))
        pm.write_bytes(0x1008, encode(Op.HLT))
        cpu.run(max_instructions=10)
        assert any(key[0] == 0x1000 for key in cpu._decode_cache)
        # Overwrite the cached code page; targeted entries must go.
        pm.write_u32(0x1000, int.from_bytes(encode(Op.NOP), "little"))
        assert not any(key[0] == 0x1000 for key in cpu._decode_cache)


class TestPaging:
    @staticmethod
    def _setup_paging(cpu, pm, pages=80, data_va=0x100000):
        allocator = FrameAllocator(pm, reserved_frames=64)
        space = AddressSpace(pm, allocator)
        flags = PTE_PRESENT | PTE_WRITABLE
        # Identity-map low memory (code, vector, stack).
        for page in range(16):
            space.map(page * PAGE_SIZE, page * PAGE_SIZE, flags)
        for i in range(pages):
            frame = allocator.alloc(zero=True)
            space.map(data_va + i * PAGE_SIZE, frame << 12, flags)
        cpu.mmu.set_root(space.root_pa)

    def test_store_walk_differential(self):
        # More mapped pages than TLB entries: the data walks evict TLB
        # entries (including the code page), exercising the epoch guard.
        image = _asm(
            """
.org 0x1000
    li t0, 2
outer:
    li s0, 0x100000
    li s1, 80
loop:
    st [s0+0], s1
    ld s2, [s0+0]
    add s0, s0, 4096
    sub s1, s1, 1
    bnez s1, loop
    sub t0, t0, 1
    bnez t0, outer
    hlt
"""
        )
        cpu, out = _run_pair(image, setup=self._setup_paging)
        assert out["stop"] is StopReason.HALT
        assert out["tlb_stats"][2] > 0  # evictions actually happened

    def test_page_fault_mid_block(self):
        # One unmapped page in the middle of the walk: PF_WRITE must be
        # delivered from inside a compiled block with exact state.
        def setup(cpu, pm):
            allocator = FrameAllocator(pm, reserved_frames=64)
            space = AddressSpace(pm, allocator)
            flags = PTE_PRESENT | PTE_WRITABLE
            for page in range(16):
                space.map(page * PAGE_SIZE, page * PAGE_SIZE, flags)
            space.map(0x100000, allocator.alloc() << 12, flags)
            # 0x101000 deliberately unmapped.
            cpu.mmu.set_root(space.root_pa)

        image = _asm(
            """
.org 0x1000
    li s0, 0x100000
    li s1, 55
    st [s0+0], s1
    ld s2, [s0+0]
    add s0, s0, 4096
    st [s0+0], s1
    li t1, 1
    hlt
"""
        )
        _, out = _run_pair(image, setup=setup)
        assert len(out["traps"]) == 1
        cause, value, _epc = out["traps"][0]
        assert value == 0x101000

    def test_invlpg_differential(self):
        image = _asm(
            """
.org 0x1000
    li s0, 0x100000
    li s1, 3
loop:
    st [s0+0], s1
    invlpg s0
    ld s2, [s0+0]
    sub s1, s1, 1
    bnez s1, loop
    hlt
"""
        )
        _, out = _run_pair(image, setup=self._setup_paging)
        assert out["tlb_stats"][3] > 0  # invalidations happened

    def test_set_root_mid_run(self):
        # Two address spaces alias the same code but different data
        # frames; switching PTBR mid-run must flush the EXEC memo.
        def setup(cpu, pm):
            allocator = FrameAllocator(pm, reserved_frames=64)
            flags = PTE_PRESENT | PTE_WRITABLE
            roots = []
            for _ in range(2):
                space = AddressSpace(pm, allocator)
                for page in range(16):
                    space.map(page * PAGE_SIZE, page * PAGE_SIZE, flags)
                space.map(0x100000, allocator.alloc(zero=True) << 12, flags)
                roots.append(space.root_pa)
            cpu.mmu.set_root(roots[0])
            cpu.regs[12] = roots[1]  # fp holds the second root

        image = _asm(
            """
.org 0x1000
    li s0, 0x100000
    li s1, 11
    st [s0+0], s1
    csrw PTBR, fp
    li s1, 22
    st [s0+0], s1
    ld s2, [s0+0]
    hlt
"""
        )
        _, out = _run_pair(image, setup=setup)
        assert out["stop"] is StopReason.HALT
        assert out["regs"][11] == 22  # load came from the *second* space


class TestInlineCacheEdges:
    """Edge cases of the compiled-block inline-cache fast path."""

    def test_guard_bailout_replays_tail_exactly_once(self):
        # TLB capacity 4 but six data pages touched by one straight-line
        # block: the data walks evict the code-page entry mid-block, the
        # code-page guard trips after the slow-path translate, and the
        # tail of the block replays through the dispatcher. Cycles, TLB
        # stats, and memory must come out identical -- the replayed ops
        # must be charged exactly once.
        image = _asm(
            """
.org 0x1000
    li t1, 77
    li s0, 0x100000
    st [s0+0], t1
    add s0, s0, 4096
    st [s0+0], t1
    add s0, s0, 4096
    st [s0+0], t1
    add s0, s0, 4096
    st [s0+0], t1
    add s0, s0, 4096
    st [s0+0], t1
    add s0, s0, 4096
    st [s0+0], t1
    add t1, t1, 1
    hlt
"""
        )
        cpu, out = _run_pair(
            image,
            setup=lambda c, p: TestPaging._setup_paging(c, p, pages=8),
            tlb_entries=4,
        )
        assert out["stop"] is StopReason.HALT
        assert out["tlb_stats"][2] > 0  # evictions actually happened
        assert cpu.jit_stats()["blocks_compiled"] > 0

    def test_self_loop_under_constant_code_page_eviction(self):
        # The inner loop is a self-looping compiled block whose data
        # walk keeps evicting its own code page from the 4-entry TLB,
        # so it can never settle into the in-closure loop for long.
        image = _asm(
            """
.org 0x1000
    li t0, 6
outer:
    li s0, 0x100000
    li s1, 6
page:
    st [s0+0], s1
    ld s2, [s0+0]
    add s0, s0, 4096
    sub s1, s1, 1
    bnez s1, page
    sub t0, t0, 1
    bnez t0, outer
    hlt
"""
        )
        cpu, out = _run_pair(
            image,
            setup=lambda c, p: TestPaging._setup_paging(c, p, pages=8),
            tlb_entries=4,
        )
        assert out["stop"] is StopReason.HALT
        assert out["tlb_stats"][2] > 0
        assert cpu.jit_stats()["blocks_compiled"] > 0

    def test_epoch_counter_overflow(self):
        # TLB epochs only ever increment; pre-seed the counter just
        # below 2**63 so the eviction-heavy run carries it across the
        # boundary while compiled blocks are live. Python ints don't
        # wrap, but the compiled code must keep agreeing with the
        # interpreter while epochs exceed any fixed word size.
        def setup(cpu, pm):
            TestPaging._setup_paging(cpu, pm, pages=8)
            cpu.mmu.tlb.epoch = (1 << 63) - 2

        image = _asm(
            """
.org 0x1000
    li t0, 4
outer:
    li s0, 0x100000
    li s1, 8
page:
    st [s0+0], s1
    add s0, s0, 4096
    sub s1, s1, 1
    bnez s1, page
    sub t0, t0, 1
    bnez t0, outer
    hlt
"""
        )
        cpu, out = _run_pair(image, setup=setup, tlb_entries=4)
        assert out["stop"] is StopReason.HALT
        assert cpu.mmu.tlb.epoch >= (1 << 63)

    # -- warm-state resume (migration / micro-reboot analogues) -----------

    _RESUME_IMAGE = """
.org 0x1000
    li t0, 12
outer:
    li s0, 0x100000
    li s1, 20
page:
    st [s0+0], s1
    ld s2, [s0+0]
    add s0, s0, 4096
    sub s1, s1, 1
    bnez s1, page
    sub t0, t0, 1
    bnez t0, outer
    hlt
"""

    @classmethod
    def _boot(cls, image):
        cpu, pm = _make_cpu(jit=True)
        pm.write_bytes(0x1000, image)
        pm.write_bytes(VEC, encode(Op.HLT))
        cpu.csr[CSR.VBAR] = VEC
        TestPaging._setup_paging(cpu, pm)
        return cpu, pm

    @staticmethod
    def _restore_into(dst_cpu, dst_pm, src_cpu, src_pm):
        """Copy full simulated state, the way ``restore_vm`` does for
        architectural state -- plus TLB/walker state, which at this
        layer is part of the deterministic contract."""
        dst_pm.write_bytes(0, src_pm.read_bytes(0, src_pm.size))
        dst_cpu.regs = list(src_cpu.regs)
        dst_cpu.pc = src_cpu.pc
        dst_cpu.csr = list(src_cpu.csr)
        dst_cpu.cycles = src_cpu.cycles
        dst_cpu.instret = src_cpu.instret
        dst_cpu.halted = src_cpu.halted
        dst_cpu.mmu.root_pa = src_cpu.mmu.root_pa
        dst_cpu.mmu.paging_enabled = src_cpu.mmu.paging_enabled
        dst_tlb, src_tlb = dst_cpu.mmu.tlb, src_cpu.mmu.tlb
        # In-place: the compiled fast path holds bound references to
        # the entry table.
        dst_tlb._entries.clear()
        dst_tlb._entries.update(src_tlb._entries)
        dst_tlb.epoch = src_tlb.epoch
        for f in ("hits", "misses", "flushes", "invalidations", "evictions"):
            setattr(dst_tlb.stats, f, getattr(src_tlb.stats, f))
        dst_cpu.mmu.walker.walks = src_cpu.mmu.walker.walks
        dst_cpu.mmu.walker.faults = src_cpu.mmu.walker.faults

    def test_warm_ic_continuation_equals_cold_resume(self):
        # Live-migration resume analogue: stop mid-workload with warm
        # inline caches, clone the full state into a never-run core
        # (whose JIT is cold, as after restore_vm), finish both. The
        # warm ICs must be pure cache: final state bit-identical.
        image = _asm(self._RESUME_IMAGE)
        warm, warm_pm = self._boot(image)
        warm.run(max_instructions=500)
        assert not warm.halted
        assert warm.jit_stats()["blocks_compiled"] > 0  # ICs are warm
        cold, cold_pm = self._boot(image)
        self._restore_into(cold, cold_pm, warm, warm_pm)
        warm.run(max_instructions=50_000)
        cold.run(max_instructions=50_000)
        assert _snapshot(warm, warm_pm) == _snapshot(cold, cold_pm)

    def test_restore_over_warm_core_invalidates_stale_ics(self):
        # Micro-reboot analogue with a twist: the receiving core has
        # *already* compiled blocks and trained ICs for the same code
        # pages. Restoring rewrites guest memory, which must fire the
        # code-page write watcher and invalidate every stale block; the
        # rebooted core then has to agree with an uninterrupted run.
        image = _asm(self._RESUME_IMAGE)
        ref, ref_pm = self._boot(image)
        ref.run(max_instructions=50_000)
        assert ref.halted

        warm, warm_pm = self._boot(image)
        warm.run(max_instructions=500)
        target, target_pm = self._boot(image)
        target.run(max_instructions=300)  # trains ICs at a *different* point
        assert target.jit_stats()["blocks_compiled"] > 0
        self._restore_into(target, target_pm, warm, warm_pm)
        target.run(max_instructions=50_000)
        assert _snapshot(target, target_pm) == _snapshot(ref, ref_pm)


class TestEngineManagement:
    def test_jit_disabled_never_compiles(self):
        cpu, pm = _make_cpu(jit=False)
        pm.write_bytes(0x1000, encode(Op.MOVI, rd=3, imm32=5))
        pm.write_bytes(0x1008, encode(Op.HLT))
        cpu.run(max_instructions=100)
        stats = cpu.jit_stats()
        assert stats["enabled"] == 0 and stats["active"] == 0
        assert stats["blocks_compiled"] == 0

    def test_policy_forces_reference_path(self):
        from repro.cpu.interp import VirtPolicy

        cpu, pm = _make_cpu(jit=True)
        cpu.policy = VirtPolicy()
        pm.write_bytes(0x1000, encode(Op.MOVI, rd=3, imm32=5))
        pm.write_bytes(0x1008, encode(Op.HLT))
        cpu.run(max_instructions=100)
        assert cpu.jit_stats()["blocks_compiled"] == 0

    def test_cost_model_change_flushes_blocks(self):
        cpu, pm = _make_cpu(jit=True)
        pm.write_bytes(0x1000, encode(Op.MOVI, rd=3, imm32=5))
        pm.write_bytes(0x1008, encode(Op.HLT))
        cpu.run(max_instructions=100)
        jit = cpu._jit
        assert jit and jit.stats()["blocks_cached"] > 0
        import dataclasses

        cpu.costs = dataclasses.replace(
            cpu.costs, instr_cycles=cpu.costs.instr_cycles + 1
        )
        jit.check_costs()
        assert jit.stats()["blocks_cached"] == 0

    def test_decode_cache_bounded_eviction(self, monkeypatch):
        import repro.cpu.interp as interp

        monkeypatch.setattr(interp, "_DECODE_CACHE_MAX", 32)
        monkeypatch.setattr(interp, "_DECODE_EVICT", 8)
        cpu, pm = _make_cpu(jit=False)
        # 64 distinct MOVI instructions then HLT: more than the cap.
        addr = 0x1000
        for i in range(64):
            pm.write_bytes(addr, encode(Op.MOVI, rd=3, imm32=i))
            addr += 8
        pm.write_bytes(addr, encode(Op.HLT))
        result = cpu.run(max_instructions=1000)
        assert result.stop is StopReason.HALT
        assert cpu.regs[3] == 63
        assert len(cpu._decode_cache) <= 33
        # The frame index stays consistent with the cache contents.
        indexed = {k for keys in cpu._decode_frames.values() for k in keys}
        assert indexed == set(cpu._decode_cache)

    def test_mid_run_invalidation_then_recompile(self):
        cpu, pm = _make_cpu(jit=True)
        pm.write_bytes(0x1000, encode(Op.MOVI, rd=3, imm32=5))
        pm.write_bytes(0x1008, encode(Op.HLT))
        cpu.run(max_instructions=100)
        compiled_before = cpu.jit_stats()["blocks_compiled"]
        assert compiled_before >= 1
        # External write to the code page (e.g. DMA) drops the block...
        pm.write_bytes(0x1000, encode(Op.MOVI, rd=3, imm32=9))
        assert cpu.jit_stats()["blocks_invalidated"] >= 1
        # ...and a re-run recompiles and executes the new code.
        cpu.reset(0x1000)
        cpu.run(max_instructions=100)
        assert cpu.regs[3] == 9
        assert cpu.jit_stats()["blocks_compiled"] > compiled_before


class TestCompiledMatchesOracleOnWorkloads:
    @pytest.mark.parametrize("workload_name,args", [
        ("cpu_bound", (400,)),
        ("memtouch", (8, 2)),
        ("syscall_storm", (25,)),
    ])
    def test_native_nanoos_differential(self, workload_name, args):
        from repro.core.machine import Machine
        from repro.guest import KernelOptions, boot_native, build_kernel
        from repro.guest import workloads

        kernel = build_kernel(
            KernelOptions(pv=False, memory_bytes=16 * MIB, timer_period=0)
        )
        workload = getattr(workloads, workload_name)(*args)
        states = []
        for jit in (False, True):
            machine = Machine(memory_bytes=16 * MIB, jit=jit)
            diag = boot_native(machine, kernel, workload)
            tlb = machine.mmu.tlb
            states.append(
                (
                    diag,
                    machine.cpu.cycles,
                    machine.cpu.instret,
                    tuple(machine.cpu.regs),
                    tuple(machine.cpu.csr),
                    (tlb.stats.hits, tlb.stats.misses, tlb.stats.evictions),
                    tuple(tlb._entries.items()),
                )
            )
        assert states[0] == states[1]
