"""Native machine: baseline semantics and device pump."""

import pytest

from repro.core.machine import Machine, MachineOutcome
from repro.cpu.assembler import Assembler
from repro.util.units import MIB


def run_native(src, max_instructions=100_000):
    machine = Machine(memory_bytes=16 * MIB)
    prog = Assembler().assemble(".org 0x1000\n" + src)
    machine.load_program(prog)
    machine.cpu.reset(0x1000)
    outcome = machine.run(max_instructions=max_instructions)
    return machine, outcome


def test_shutdown_outcome():
    machine, outcome = run_native("""
    li a0, 1
    out 0xf0, a0
    hlt
""")
    assert outcome is MachineOutcome.SHUTDOWN


def test_halted_outcome_without_wakeups():
    _, outcome = run_native("    hlt\n")
    assert outcome is MachineOutcome.HALTED


def test_instruction_limit_outcome():
    _, outcome = run_native("loop: jmp loop\n", max_instructions=2000)
    assert outcome is MachineOutcome.INSTR_LIMIT


def test_console_output_native():
    machine, _ = run_native("""
    li a0, 79
    out 0x10, a0
    li a0, 75
    out 0x10, a0
    li a0, 1
    out 0xf0, a0
    hlt
""")
    assert machine.console.text == "OK"


def test_timer_interrupt_native():
    machine, outcome = run_native("""
    li a0, vec
    csrw VBAR, a0
    li t0, 2000
    out 0x40, t0
    li t0, 2
    out 0x41, t0         ; periodic
    sti
    li s0, 0
wait:
    li t0, 3
    bltu s0, t0, wait    ; spin until 3 ticks observed
    li a0, 1
    out 0xf0, a0
    hlt
vec:
    add s0, s0, 1
    in t1, 0x20
    out 0x20, t1
    iret
""")
    assert outcome is MachineOutcome.SHUTDOWN
    assert machine.timer.expirations >= 3
    assert machine.cpu.regs[9] >= 3


def test_idle_fast_forward_to_timer():
    machine, outcome = run_native("""
    li a0, vec
    csrw VBAR, a0
    li t0, 1000000
    out 0x40, t0
    li t0, 1
    out 0x41, t0
    sti
    hlt
    li a0, 1
    out 0xf0, a0
    hlt
vec:
    in t1, 0x20
    out 0x20, t1
    iret
""", max_instructions=5000)
    # The million-cycle sleep must not burn a million instructions.
    assert outcome is MachineOutcome.SHUTDOWN
    assert machine.cpu.cycles >= 1_000_000
    assert machine.cpu.instret < 5000


def test_block_device_dma_native():
    machine, _ = run_native("""
    li a0, 0x20000
    li a1, 0x11223344
    st [a0+0], a1
    out 0x52, a0         ; DMA address
    li a1, 0
    out 0x50, a1         ; sector 0
    li a1, 1
    out 0x51, a1         ; one sector
    li a1, 2
    out 0x53, a1         ; write command
    li a0, 1
    out 0xf0, a0
    hlt
""")
    assert machine.block.read_sectors(0, 1)[:4] == bytes.fromhex("44332211")
