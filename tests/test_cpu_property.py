"""Property-based CPU tests: ALU oracle, disasm/asm fuzz, determinism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.assembler import Assembler
from repro.cpu.disasm import disassemble_one
from repro.cpu.interp import CPUCore
from repro.cpu.isa import CSR, Op, encode
from repro.cpu.mmu import BareMMU
from repro.mem.costs import CostModel
from repro.mem.physmem import PhysicalMemory
from repro.util.units import MIB

_U32 = 0xFFFFFFFF


def _signed(v):
    v &= _U32
    return v - (1 << 32) if v & 0x80000000 else v


#: Python oracle for each ALU operation.
_ORACLE = {
    Op.ADD: lambda a, b: (a + b) & _U32,
    Op.SUB: lambda a, b: (a - b) & _U32,
    Op.MUL: lambda a, b: (a * b) & _U32,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: (a << (b & 31)) & _U32,
    Op.SHR: lambda a, b: a >> (b & 31),
    Op.SAR: lambda a, b: (_signed(a) >> (b & 31)) & _U32,
    Op.SLT: lambda a, b: int(_signed(a) < _signed(b)),
    Op.SLTU: lambda a, b: int(a < b),
    Op.DIVU: lambda a, b: (a // b) & _U32 if b else None,
    Op.REMU: lambda a, b: (a % b) & _U32 if b else None,
}


def fresh_cpu():
    pm = PhysicalMemory(1 * MIB)
    cpu = CPUCore(BareMMU(pm, CostModel()))
    cpu.reset(0x1000)
    return cpu, pm


class TestALUOracle:
    @settings(max_examples=300, deadline=None)
    @given(
        st.sampled_from(sorted(_ORACLE)),
        st.integers(min_value=0, max_value=_U32),
        st.integers(min_value=0, max_value=_U32),
    )
    def test_register_form_matches_oracle(self, op, a, b):
        expected = _ORACLE[op](a, b)
        if expected is None:
            return  # division by zero traps; covered elsewhere
        cpu, pm = fresh_cpu()
        pm.write_bytes(0x1000, encode(op, rd=3, ra=1, rb=2))
        cpu.regs[1], cpu.regs[2] = a, b
        cpu.step()
        assert cpu.regs[3] == expected
        assert cpu.pc == 0x1004

    @settings(max_examples=150, deadline=None)
    @given(
        st.sampled_from(sorted(_ORACLE)),
        st.integers(min_value=0, max_value=_U32),
        st.integers(min_value=0, max_value=_U32),
    )
    def test_immediate_form_matches_register_form(self, op, a, imm):
        if _ORACLE[op](a, imm) is None:
            return
        cpu, pm = fresh_cpu()
        pm.write_bytes(0x1000, encode(op, rd=3, ra=1, imm32=imm))
        cpu.regs[1] = a
        cpu.step()
        assert cpu.regs[3] == _ORACLE[op](a, imm)
        assert cpu.pc == 0x1008  # two-word instruction

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=_U32),
           st.integers(min_value=0, max_value=_U32))
    def test_branch_consistency_with_slt(self, a, b):
        # BLT taken  <=>  SLT == 1, for all operand pairs.
        cpu, pm = fresh_cpu()
        pm.write_bytes(0x1000, encode(Op.SLT, rd=3, ra=1, rb=2))
        pm.write_bytes(0x1004, encode(Op.BLT, ra=1, rb=2, imm32=0x2000))
        cpu.regs[1], cpu.regs[2] = a, b
        cpu.step()
        cpu.step()
        taken = cpu.pc == 0x2000
        assert taken == bool(cpu.regs[3])


# Instruction generators that zero every architecturally-unused field,
# so a disassemble -> reassemble round trip must be byte-identical.
_REG = st.integers(min_value=0, max_value=15)
_IMM32 = st.integers(min_value=0, max_value=_U32)
_DISP = st.integers(min_value=-2048, max_value=2047)
_PORT = st.integers(min_value=0, max_value=0xFF)
_CSRNUM = st.sampled_from([int(c) for c in CSR])


def _alu_ins(draw):
    op = draw(st.sampled_from([Op.ADD, Op.SUB, Op.MUL, Op.DIVU, Op.REMU,
                               Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
                               Op.SAR, Op.SLT, Op.SLTU]))
    if draw(st.booleans()):
        return encode(op, rd=draw(_REG), ra=draw(_REG), imm32=draw(_IMM32))
    return encode(op, rd=draw(_REG), ra=draw(_REG), rb=draw(_REG))


@st.composite
def any_instruction(draw):
    kind = draw(st.sampled_from(
        ["alu", "mov", "movi", "ld", "st", "jal", "jalr", "branch",
         "syscall", "vmcall", "csrr", "csrw", "out", "in", "invlpg",
         "bare"]))
    if kind == "alu":
        return _alu_ins(draw)
    if kind == "mov":
        return encode(Op.MOV, rd=draw(_REG), ra=draw(_REG))
    if kind == "movi":
        return encode(Op.MOVI, rd=draw(_REG), imm32=draw(_IMM32))
    if kind == "ld":
        op = draw(st.sampled_from([Op.LD, Op.LDB]))
        return encode(op, rd=draw(_REG), ra=draw(_REG), simm12=draw(_DISP))
    if kind == "st":
        op = draw(st.sampled_from([Op.ST, Op.STB]))
        return encode(op, ra=draw(_REG), rb=draw(_REG), simm12=draw(_DISP))
    if kind == "jal":
        return encode(Op.JAL, rd=draw(_REG), imm32=draw(_IMM32))
    if kind == "jalr":
        return encode(Op.JALR, rd=draw(_REG), ra=draw(_REG))
    if kind == "branch":
        op = draw(st.sampled_from([Op.BEQ, Op.BNE, Op.BLT, Op.BGE,
                                   Op.BLTU, Op.BGEU]))
        return encode(op, ra=draw(_REG), rb=draw(_REG), imm32=draw(_IMM32))
    if kind == "syscall":
        return encode(Op.SYSCALL, simm12=draw(st.integers(0, 2047)))
    if kind == "vmcall":
        return encode(Op.VMCALL, simm12=draw(st.integers(0, 2047)))
    if kind == "csrr":
        return encode(Op.CSRR, rd=draw(_REG), simm12=draw(_CSRNUM))
    if kind == "csrw":
        return encode(Op.CSRW, ra=draw(_REG), simm12=draw(_CSRNUM))
    if kind == "out":
        return encode(Op.OUT, ra=draw(_REG), simm12=draw(_PORT))
    if kind == "in":
        return encode(Op.IN, rd=draw(_REG), simm12=draw(_PORT))
    if kind == "invlpg":
        return encode(Op.INVLPG, ra=draw(_REG))
    op = draw(st.sampled_from([Op.NOP, Op.IRET, Op.HLT, Op.STI, Op.CLI,
                               Op.BRK]))
    return encode(op)


class TestRoundTripFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(any_instruction(), min_size=1, max_size=12))
    def test_disassemble_reassemble_identity(self, chunks):
        image = b"".join(chunks)
        lines = []
        offset = 0
        while offset < len(image):
            text, length = disassemble_one(image, offset)
            lines.append(text)
            offset += length
        source = ".org 0x1000\n" + "\n".join(lines) + "\n"
        reassembled = Assembler().assemble(source)
        assert reassembled.data == image


class TestDeterminism:
    def test_identical_runs_identical_state(self):
        src = """
.org 0x1000
    li a0, vec
    csrw VBAR, a0
    li s0, 500
loop:
    mul t0, s0, 17
    st [sp+0], t0
    syscall 3
    sub s0, s0, 1
    bnez s0, loop
    hlt
vec:
    csrr t1, EVAL
    iret
"""
        def run():
            prog = Assembler().assemble(src)
            pm = PhysicalMemory(1 * MIB)
            prog.load(pm)
            cpu = CPUCore(BareMMU(pm, CostModel()))
            cpu.reset(0x1000)
            cpu.regs[13] = 0x80000
            cpu.run(max_instructions=100_000)
            return (cpu.cycles, cpu.instret, tuple(cpu.regs), cpu.pc)

        assert run() == run()


# ---------------------------------------------------------------------------
# Differential fuzz: reference interpreter vs closure-compiled blocks.
#
# Cases come from the shared ``repro.fuzz`` directed-random generator --
# the same generator and corpus format `python -m repro fuzz` uses -- under
# pinned seeds, so a failure here replays exactly as
# ``run_bare(build_image(generate_case(seed, index)), jit=...)``.
# ---------------------------------------------------------------------------

from repro.fuzz import gen as fuzz_gen
from repro.fuzz.corpus import entry_spec, make_entry
from repro.fuzz.diff import compare_bare, run_bare

_PINNED_CASES = [(101, i) for i in range(12)] + [(202, i) for i in range(12)]


class TestJITDifferential:
    """Directed-random guest programs must behave bit-identically with
    the block compiler on and off: regs, CSRs, cycles, instret, pc, the
    TLB/walker statistics, and all of physical memory."""

    @pytest.mark.parametrize("root_seed,case_index", _PINNED_CASES)
    def test_fuzz_case_differential(self, root_seed, case_index):
        spec = fuzz_gen.generate_case(root_seed, case_index)
        segments = fuzz_gen.build_image(spec)
        ref = run_bare(segments, jit=False)
        jit = run_bare(segments, jit=True)
        mismatched = compare_bare(ref, jit)
        assert mismatched == [], (
            f"interp vs jit diverged on {mismatched} "
            f"(seed={root_seed} case={case_index} "
            f"templates={spec.template_counts})"
        )

    def test_generated_cases_cover_templates(self):
        # The pinned set must actually exercise the interesting
        # templates, or the differential above tests very little.
        seen = set()
        for root_seed, case_index in _PINNED_CASES:
            spec = fuzz_gen.generate_case(root_seed, case_index)
            seen.update(spec.template_counts)
        for name in ("smc_loop", "store_wild", "branch", "syscall"):
            assert name in seen

    def test_corpus_format_round_trip(self):
        # The corpus entry format used by the fuzz CLI is the same one
        # these tests consume: identity -> layout, cells -> image.
        spec = fuzz_gen.generate_case(303, 0)
        entry = make_entry(303, 0, spec.cells, {"bug": None},
                           {"kind": "ok"})
        again = entry_spec(entry)
        assert again.cells == spec.cells
        assert fuzz_gen.build_image(again) == fuzz_gen.build_image(spec)
