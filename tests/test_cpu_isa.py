"""ISA encoding/decoding and sensitivity classification."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu.isa import (
    CSR,
    Cause,
    DecodeError,
    IMM_FLAG,
    Op,
    PRIVILEGED_OPS,
    PUBLIC_CSRS,
    SENSITIVE_UNPRIV_OPS,
    decode,
    encode,
    is_privileged,
    is_sensitive,
)


def _decode_bytes(data: bytes):
    word = int.from_bytes(data[:4], "little")
    imm = int.from_bytes(data[4:8], "little") if len(data) > 4 else 0
    return decode(word, imm)


class TestEncodeDecode:
    def test_simple_roundtrip(self):
        ins = _decode_bytes(encode(Op.ADD, rd=1, ra=2, rb=3))
        assert ins.op is Op.ADD
        assert (ins.rd, ins.ra, ins.rb) == (1, 2, 3)
        assert not ins.has_imm32 and ins.length == 4

    def test_imm32_roundtrip(self):
        ins = _decode_bytes(encode(Op.ADD, rd=1, ra=2, imm32=0xDEADBEEF))
        assert ins.has_imm32 and ins.length == 8
        assert ins.imm32 == 0xDEADBEEF
        is_imm, value = ins.operand_b
        assert is_imm and value == 0xDEADBEEF

    def test_simm12_sign_extension(self):
        ins = _decode_bytes(encode(Op.LD, rd=1, ra=2, simm12=-4))
        assert ins.simm12 == -4
        ins = _decode_bytes(encode(Op.LD, rd=1, ra=2, simm12=2047))
        assert ins.simm12 == 2047

    def test_operand_b_register_form(self):
        ins = _decode_bytes(encode(Op.SUB, rd=1, ra=2, rb=7))
        is_imm, value = ins.operand_b
        assert not is_imm and value == 7

    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            encode(Op.ADD, rd=16)
        with pytest.raises(ValueError):
            encode(Op.ADD, ra=-1)

    def test_simm12_range_checked(self):
        with pytest.raises(ValueError):
            encode(Op.LD, simm12=2048)
        with pytest.raises(ValueError):
            encode(Op.LD, simm12=-2049)

    def test_invalid_opcode_rejected(self):
        with pytest.raises(DecodeError):
            decode(0x7F << 24)

    @given(
        st.sampled_from(sorted(Op)),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=-2048, max_value=2047),
        st.one_of(st.none(), st.integers(min_value=0, max_value=0xFFFFFFFF)),
    )
    def test_roundtrip_property(self, op, rd, ra, rb, simm12, imm32):
        data = encode(op, rd, ra, rb, simm12, imm32)
        ins = _decode_bytes(data)
        assert ins.op is op
        assert (ins.rd, ins.ra, ins.rb, ins.simm12) == (rd, ra, rb, simm12)
        if imm32 is None:
            assert not ins.has_imm32 and len(data) == 4
        else:
            assert ins.imm32 == imm32 and len(data) == 8


class TestSensitivityClassification:
    def test_privileged_ops(self):
        for op in PRIVILEGED_OPS:
            assert is_privileged(op)
        assert not is_privileged(Op.ADD)
        assert not is_privileged(Op.SYSCALL)  # traps by design, not priv

    def test_csrr_split_by_register(self):
        assert not is_privileged(Op.CSRR, int(CSR.MODE))
        assert not is_privileged(Op.CSRR, int(CSR.CYCLES))
        assert is_privileged(Op.CSRR, int(CSR.PTBR))
        assert is_privileged(Op.CSRR, int(CSR.ECAUSE))
        assert is_privileged(Op.CSRR, 999)  # unknown CSR

    def test_sensitive_unprivileged_set(self):
        assert is_sensitive(Op.STI)
        assert is_sensitive(Op.CLI)
        assert is_sensitive(Op.CSRR, int(CSR.MODE))
        assert is_sensitive(Op.CSRR, int(CSR.IE))
        assert not is_sensitive(Op.CSRR, int(CSR.CYCLES))
        assert not is_sensitive(Op.CSRW, int(CSR.IE))  # traps: fine

    def test_popek_goldberg_violation_exists(self):
        # The ISA deliberately has sensitive instructions that are not
        # privileged -- the premise of E1.
        violators = set(SENSITIVE_UNPRIV_OPS)
        assert violators and not (violators & PRIVILEGED_OPS)

    def test_public_csrs_include_the_trap(self):
        assert CSR.MODE in PUBLIC_CSRS and CSR.IE in PUBLIC_CSRS


def test_cause_values_distinct():
    values = [int(c) for c in Cause]
    assert len(values) == len(set(values))


def test_imm_flag_bit():
    data = encode(Op.MOVI, rd=1, imm32=5)
    assert data[3] & IMM_FLAG
