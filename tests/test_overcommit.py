"""Overcommit: sharing, swap, WSS estimation, balloon policy, model."""

import pytest

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.overcommit import (
    BalloonPolicy,
    HostSwap,
    PageSharer,
    PolicyKind,
    VMDemand,
    clear_access_bits,
    count_accessed,
    estimate_wss,
    evaluate_policy,
)
from repro.util.errors import ConfigError, MemoryError_
from repro.util.units import MIB

GUEST_MEM = 16 * MIB


def start_vm(hv, name, mmu_mode=MMUVirtMode.NESTED, pages=16, passes=2000,
             warmup=100_000):
    vm = hv.create_vm(GuestConfig(name=name, memory_bytes=GUEST_MEM,
                                  virt_mode=VirtMode.HW_ASSIST,
                                  mmu_mode=mmu_mode))
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEM))
    hv.load_program(vm, kernel)
    hv.load_program(vm, workloads.memtouch(pages, passes))
    hv.reset_vcpu(vm, kernel.entry)
    hv.run(vm, max_guest_instructions=warmup)
    return vm


class TestPageSharer:
    def test_scan_merges_identical_frames(self):
        hv = Hypervisor(memory_bytes=96 * MIB)
        vms = [start_vm(hv, f"v{i}") for i in range(2)]
        free_before = hv.allocator.free_frames
        sharer = PageSharer(hv)
        result = sharer.scan()
        assert result.pages_merged > 1000  # two near-identical guests
        assert hv.allocator.free_frames == free_before + result.frames_freed
        assert sharer.shared_mappings > 0

    def test_guests_stay_correct_through_cow(self):
        hv = Hypervisor(memory_bytes=96 * MIB)
        vms = [start_vm(hv, f"v{i}", passes=1200) for i in range(2)]
        sharer = PageSharer(hv)
        sharer.scan()
        for vm in vms:
            outcome = hv.run(vm, max_guest_instructions=60_000_000)
            diag = read_diag(vm.guest_mem)
            assert outcome is RunOutcome.SHUTDOWN
            assert diag.user_result == expected_memtouch(16, 1200)
        assert sharer.cow_breaks > 0

    def test_cow_write_isolates_content(self):
        hv = Hypervisor(memory_bytes=96 * MIB)
        a = start_vm(hv, "a")
        b = start_vm(hv, "b")
        sharer = PageSharer(hv)
        sharer.scan()
        # Find a gfn shared between the two VMs.
        shared_gfn = next(
            gfn for gfn in range(a.num_pages)
            if sharer.handles(a, gfn) and sharer.handles(b, gfn)
            and a.guest_mem.map.get(gfn) == b.guest_mem.map.get(gfn)
        )
        sharer.on_write_fault(a, shared_gfn)
        a.guest_mem.write_u32(shared_gfn * 4096, 0xAAAA5555)
        assert b.guest_mem.read_u32(shared_gfn * 4096) != 0xAAAA5555
        assert a.guest_mem.map[shared_gfn] != b.guest_mem.map[shared_gfn]

    def test_destroy_with_shared_frames_no_double_free(self):
        hv = Hypervisor(memory_bytes=96 * MIB)
        vms = [start_vm(hv, f"v{i}") for i in range(2)]
        sharer = PageSharer(hv)
        sharer.scan()
        for vm in vms:
            hv.destroy_vm(vm)
        assert hv.allocator.allocated_frames == 0

    def test_cow_on_unshared_page_rejected(self):
        hv = Hypervisor(memory_bytes=96 * MIB)
        vm = start_vm(hv, "v")
        sharer = PageSharer(hv)
        with pytest.raises(MemoryError_):
            sharer.on_write_fault(vm, 0)


class TestHostSwap:
    @pytest.mark.parametrize("mmu_mode", [MMUVirtMode.NESTED,
                                          MMUVirtMode.SHADOW])
    def test_evict_and_transparent_pagein(self, mmu_mode):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = start_vm(hv, "s", mmu_mode=mmu_mode, pages=20, passes=8000)
        swap = HostSwap(hv)
        swap.install(vm)
        evicted = swap.evict_some(200)
        assert evicted == 200
        outcome = hv.run(vm, max_guest_instructions=60_000_000)
        diag = read_diag(vm.guest_mem)
        assert outcome is RunOutcome.SHUTDOWN
        assert diag.user_result == expected_memtouch(20, 8000)
        assert swap.swap_ins > 0

    def test_swap_out_frees_host_frame(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = start_vm(hv, "s")
        swap = HostSwap(hv)
        swap.install(vm)
        free_before = hv.allocator.free_frames
        swap.swap_out(vm, 2000)  # cold high page
        assert hv.allocator.free_frames == free_before + 1
        assert swap.is_swapped(vm, 2000)
        assert not vm.guest_mem.is_mapped(2000)

    def test_swap_in_restores_content(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = start_vm(hv, "s")
        vm.guest_mem.write_u32(2000 * 4096, 0xFEEDFACE)
        swap = HostSwap(hv)
        swap.install(vm)
        swap.swap_out(vm, 2000)
        swap.swap_in(vm, 2000)
        assert vm.guest_mem.read_u32(2000 * 4096) == 0xFEEDFACE

    def test_double_swap_out_rejected(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = start_vm(hv, "s")
        swap = HostSwap(hv)
        swap.install(vm)
        swap.swap_out(vm, 2000)
        with pytest.raises(MemoryError_):
            swap.swap_out(vm, 2000)
        with pytest.raises(MemoryError_):
            swap.swap_in(vm, 1999)


class TestWSS:
    def test_estimate_tracks_working_set(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = start_vm(hv, "w", pages=30, passes=100_000)
        samples = estimate_wss(hv, vm, sample_instructions=15_000, samples=2)
        # ~30 heap pages plus a handful of kernel pages per interval.
        for touched in samples:
            assert 25 <= touched <= 60

    def test_clear_and_count_roundtrip(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = start_vm(hv, "w", pages=10, passes=100_000)
        assert count_accessed(vm) > 0
        cleared = clear_access_bits(vm)
        assert cleared > 0
        assert count_accessed(vm) == 0


class TestBalloonPolicy:
    def test_no_pressure_keeps_allocations(self):
        policy = BalloonPolicy(host_pages=10_000)
        policy.add_vm("a", current_pages=3000, wss_pages=1000)
        policy.add_vm("b", current_pages=3000, wss_pages=1000)
        targets = {t.name: t for t in policy.compute_targets()}
        assert targets["a"].target_pages == 3000
        assert targets["a"].inflate_pages == 0

    def test_pressure_taxes_idle_memory(self):
        policy = BalloonPolicy(host_pages=10_000)
        policy.add_vm("idle", current_pages=6000, wss_pages=1000)
        policy.add_vm("busy", current_pages=6000, wss_pages=5000)
        targets = {t.name: t for t in policy.compute_targets()}
        assert targets["idle"].inflate_pages > targets["busy"].inflate_pages
        total = sum(t.target_pages for t in targets.values())
        assert total <= 10_000
        # Working sets always survive.
        assert targets["idle"].target_pages >= 1000
        assert targets["busy"].target_pages >= 5000

    def test_overload_scales_wss_proportionally(self):
        policy = BalloonPolicy(host_pages=6000)
        policy.add_vm("a", current_pages=8000, wss_pages=4000)
        policy.add_vm("b", current_pages=8000, wss_pages=8000)
        targets = {t.name: t for t in policy.compute_targets()}
        assert targets["b"].target_pages == pytest.approx(
            2 * targets["a"].target_pages, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigError):
            BalloonPolicy(host_pages=0)
        policy = BalloonPolicy(host_pages=100)
        with pytest.raises(ConfigError):
            policy.add_vm("x", 10, 5, shares=0)


class TestModel:
    def _vms(self, n):
        return [VMDemand(f"vm{i}", configured_pages=1000, wss_pages=400,
                         shareable_fraction=0.5) for i in range(n)]

    def test_undercommitted_all_full_speed(self):
        for kind in PolicyKind:
            outcome = evaluate_policy(10_000, self._vms(4), kind)
            assert outcome.min_throughput == pytest.approx(1.0)

    def test_swap_only_collapses_first(self):
        vms = self._vms(6)  # 6000 configured on 4000: 1.5x overcommit
        swap = evaluate_policy(4000, vms, PolicyKind.SWAP_ONLY)
        balloon = evaluate_policy(4000, vms, PolicyKind.BALLOON)
        assert swap.min_throughput < 0.1
        assert balloon.min_throughput == pytest.approx(1.0)

    def test_sharing_extends_past_balloon(self):
        vms = self._vms(12)  # WSS sum = 4800 > 4000
        balloon = evaluate_policy(4000, vms, PolicyKind.BALLOON)
        share = evaluate_policy(4000, vms, PolicyKind.BALLOON_SHARE)
        assert balloon.min_throughput < 0.1
        assert share.min_throughput == pytest.approx(1.0)
        assert share.shared_saved_pages > 0

    def test_overcommit_ratio_reported(self):
        outcome = evaluate_policy(4000, self._vms(8), PolicyKind.BALLOON)
        assert outcome.overcommit_ratio == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            evaluate_policy(0, self._vms(1), PolicyKind.BALLOON)
        with pytest.raises(ConfigError):
            VMDemand("x", configured_pages=10, wss_pages=20).validate()


class TestSharerAliases:
    @staticmethod
    def _forge_alias(hv, vm, g1, g2):
        """Map ``g2`` at ``g1``'s host frame, as a buggy balloon or
        migration path might leave behind; returns that frame."""
        h1 = vm.guest_mem.map[g1]
        mmu = vm.vcpus[0].cpu.mmu
        if mmu.ept.lookup(g2 << 12) is not None:
            mmu.ept_unmap(g2)
        hv.allocator.free(vm.guest_mem.unmap_page(g2))
        vm.guest_mem.map_page(g2, h1)
        return h1

    def test_alias_of_canonical_frame_is_tracked_and_cow_safe(self):
        """A second gfn already mapping the canonical frame must be
        write-protected, refcounted, and tracked by the scan -- an
        untracked alias would let a guest write mutate the shared frame
        under every other sharer."""
        hv = Hypervisor(memory_bytes=96 * MIB)
        vm = start_vm(hv, "alias")
        g1, g2 = sorted(vm.guest_mem.map)[-2:]
        # Unique content keeps this merge group down to the two
        # aliases, making the aliased frame itself the canonical one.
        vm.guest_mem.write_u32(g1 * 4096, 0x51A50001)
        h1 = self._forge_alias(hv, vm, g1, g2)

        sharer = PageSharer(hv)
        sharer.scan()
        assert sharer.handles(vm, g1)
        assert sharer.handles(vm, g2)
        assert vm.guest_mem.map[g2] == h1
        # Refcount reflects every live mapping of the canonical frame.
        assert sharer.refcount[h1] == 2

        # Breaking COW on the alias isolates it without touching g1.
        before = vm.guest_mem.read_gfn(g1)
        sharer.on_write_fault(vm, g2)
        assert vm.guest_mem.map[g2] != vm.guest_mem.map[g1]
        vm.guest_mem.write_u32(g2 * 4096, 0xDEAD1234)
        assert vm.guest_mem.read_gfn(g1) == before

    def test_alias_of_noncanonical_frame_is_not_double_freed(self):
        """Aliases whose shared frame merges *into* another canonical
        frame must free that frame exactly once."""
        hv = Hypervisor(memory_bytes=96 * MIB)
        vm = start_vm(hv, "alias2")
        # Zero pages: the aliased frame joins the huge zero-content
        # group and is non-canonical there.
        g1, g2 = sorted(vm.guest_mem.map)[-2:]
        self._forge_alias(hv, vm, g1, g2)

        sharer = PageSharer(hv)
        sharer.scan()  # double free would raise MemoryError_ here
        assert sharer.handles(vm, g1)
        assert sharer.handles(vm, g2)
        canon = vm.guest_mem.map[g1]
        assert vm.guest_mem.map[g2] == canon
        live = sum(1 for v in hv.vms.values()
                   for hfn in v.guest_mem.map.values() if hfn == canon)
        assert sharer.refcount[canon] == live

    def test_refcount_equals_live_mapping_count(self):
        """Invariant: every shared hfn's refcount equals the number of
        live gfn mappings pointing at it, through scans and COW."""
        hv = Hypervisor(memory_bytes=96 * MIB)
        vms = [start_vm(hv, f"p{i}", passes=1200) for i in range(3)]
        sharer = PageSharer(hv)
        for _ in range(3):
            sharer.scan()
            for vm in vms:
                hv.run(vm, max_guest_instructions=150_000)
        mapping_count = {}
        for vm in hv.vms.values():
            for hfn in vm.guest_mem.map.values():
                mapping_count[hfn] = mapping_count.get(hfn, 0) + 1
        assert sharer.refcount  # scans actually merged something
        for hfn, rc in sharer.refcount.items():
            assert rc == mapping_count.get(hfn, 0), hfn
        # And every tracked sharer still maps a refcounted frame.
        for name, gfn in sharer._sharers:
            hfn = hv.vms[name].guest_mem.map[gfn]
            assert hfn in sharer.refcount, (name, gfn)


class TestHostSwapEdgeCases:
    def test_swap_in_nothing_evictable_raises_typed_error(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = start_vm(hv, "dry")
        swap = HostSwap(hv)
        swap.install(vm)
        gfn = sorted(vm.guest_mem.map)[10]
        content = vm.guest_mem.read_gfn(gfn)
        swap.swap_out(vm, gfn)
        while hv.allocator.free_frames:
            hv.allocator.alloc()
        # Simulate every resident page being pinned/shared: nothing the
        # LRU can give back.
        swap._resident_lru.clear()
        with pytest.raises(MemoryError_, match="nothing evictable"):
            swap.swap_in(vm, gfn)
        # The only copy of the page must survive the failed page-in.
        assert swap.is_swapped(vm, gfn)
        assert swap._store[(vm.name, gfn)] == content

    def test_install_is_idempotent(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = start_vm(hv, "twice")
        swap = HostSwap(hv)
        swap.install(vm)
        order = list(swap._resident_lru)
        swap.evict_some(5)
        after_evict = list(swap._resident_lru)
        swap.install(vm)  # second install: no re-seed, no re-wire
        assert list(swap._resident_lru) == after_evict
        assert len(after_evict) == len(order) - 5

    def test_two_owners_cannot_clobber_each_other(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        swap = HostSwap(hv)
        with pytest.raises(ConfigError):
            hv.register_ept_fault_handler(swap._ept_fault, name="swap_in")


class TestBalloonPolicyValidation:
    def test_duplicate_vm_rejected(self):
        policy = BalloonPolicy(host_pages=1000)
        policy.add_vm("a", 100, 50)
        with pytest.raises(ConfigError):
            policy.add_vm("a", 200, 80)

    def test_reserve_pages_validated(self):
        with pytest.raises(ConfigError):
            BalloonPolicy(host_pages=100, reserve_pages=100)
        with pytest.raises(ConfigError):
            BalloonPolicy(host_pages=100, reserve_pages=-1)
        # Boundary: reserve strictly below host is fine even with zero
        # total WSS (used to divide by zero).
        policy = BalloonPolicy(host_pages=100, reserve_pages=99)
        policy.add_vm("a", 200, 0)
        policy.add_vm("b", 200, 0)
        targets = {t.name: t.target_pages for t in policy.compute_targets()}
        assert sum(targets.values()) <= 1

    def test_negative_pages_rejected(self):
        policy = BalloonPolicy(host_pages=1000)
        with pytest.raises(ConfigError):
            policy.add_vm("a", -1, 0)
        with pytest.raises(ConfigError):
            policy.add_vm("b", 10, -5)

    def test_scaled_wss_floor_respects_available(self):
        # 9 VMs on a 10-page host: the per-VM floor of one page would
        # push the aggregate past what is available; the overshoot must
        # be trimmed from the largest targets.
        policy = BalloonPolicy(host_pages=10)
        policy.add_vm("big", 2000, 1000)
        for i in range(8):
            policy.add_vm(f"s{i}", 100, 1)
        targets = {t.name: t.target_pages for t in policy.compute_targets()}
        assert sum(targets.values()) <= 10
        assert all(t >= 1 for t in targets.values())
        assert targets["big"] >= targets["s0"]
