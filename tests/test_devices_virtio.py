"""Virtio split rings and the paravirtual block/net devices.

These tests drive the rings exactly as a guest driver would: build
descriptor chains in memory, publish them in the avail ring, kick, and
read completions from the used ring.
"""

import pytest

from repro.devices.irq import InterruptController
from repro.devices.virtio import (
    BLK_S_OK,
    BLK_T_READ,
    BLK_T_WRITE,
    DESC_F_NEXT,
    DESC_F_WRITE,
    OFF_AVAIL,
    OFF_DESC,
    OFF_KICK,
    OFF_SIZE,
    OFF_STATUS,
    OFF_USED,
    VIRTIO_BLK_BASE,
    VIRTIO_NET_BASE,
    VirtQueue,
    VirtioBlockDevice,
    VirtioNetDevice,
)
from repro.mem.physmem import PhysicalMemory
from repro.util.errors import DeviceError
from repro.util.units import MIB

DESC = 0x10000
AVAIL = 0x10100
USED = 0x10200
HDR = 0x10300
STATUS_BUF = 0x10400
DATA = 0x11000


class SinkStub:
    def __init__(self):
        self.count = 0

    def assert_irq(self, cause):
        self.count += 1


@pytest.fixture
def env():
    pm = PhysicalMemory(1 * MIB)
    sink = SinkStub()
    pic = InterruptController(sink)
    return pm, pic, sink


def write_desc(pm, index, addr, length, flags, next_=0):
    base = DESC + index * 16
    pm.write_u32(base, addr)
    pm.write_u32(base + 4, length)
    pm.write_u32(base + 8, flags)
    pm.write_u32(base + 12, next_)


def configure(dev, base, pm):
    dev.port_write(base + OFF_DESC, DESC)
    dev.port_write(base + OFF_AVAIL, AVAIL)
    dev.port_write(base + OFF_USED, USED)
    dev.port_write(base + OFF_SIZE, 16)


def publish(pm, slot_values):
    idx = pm.read_u32(AVAIL)
    for i, head in enumerate(slot_values):
        pm.write_u32(AVAIL + 4 + ((idx + i) % 16) * 4, head)
    pm.write_u32(AVAIL, idx + len(slot_values))


def blk_request(pm, req_index, req_type, sector, count=1):
    """Build the canonical 3-descriptor chain; returns the head index."""
    hdr = HDR + req_index * 16
    pm.write_u32(hdr, req_type)
    pm.write_u32(hdr + 4, sector)
    pm.write_u32(hdr + 8, count)
    d = req_index * 3
    write_desc(pm, d, hdr, 12, DESC_F_NEXT, d + 1)
    data_flags = DESC_F_WRITE if req_type == BLK_T_READ else 0
    write_desc(pm, d + 1, DATA, 512 * count, data_flags | DESC_F_NEXT, d + 2)
    write_desc(pm, d + 2, STATUS_BUF + req_index, 1, DESC_F_WRITE)
    return d


class TestVirtQueue:
    def test_chain_collection_and_loop_detection(self, env):
        pm, _, _ = env
        queue = VirtQueue(pm)
        queue.desc_gpa, queue.avail_gpa, queue.used_gpa, queue.size = (
            DESC, AVAIL, USED, 16)
        write_desc(pm, 0, 0x100, 10, DESC_F_NEXT, 1)
        write_desc(pm, 1, 0x200, 20, 0)
        chain = queue.collect_chain(0)
        assert chain == [(0x100, 10, DESC_F_NEXT), (0x200, 20, 0)]
        # self-loop must be detected
        write_desc(pm, 2, 0x300, 1, DESC_F_NEXT, 2)
        with pytest.raises(DeviceError):
            queue.collect_chain(2)

    def test_pop_avail_in_order(self, env):
        pm, _, _ = env
        queue = VirtQueue(pm)
        queue.desc_gpa, queue.avail_gpa, queue.used_gpa, queue.size = (
            DESC, AVAIL, USED, 16)
        publish(pm, [4, 9])
        assert queue.pop_avail() == 4
        assert queue.pop_avail() == 9
        assert queue.pop_avail() is None

    def test_pop_avail_rejects_corrupt_index(self, env):
        # Found by the differential fuzzer: a wild guest store (or a
        # corrupt descriptor steering completion writes into the avail
        # ring) can push avail.idx arbitrarily far ahead; chasing it
        # wedged the host in the kick drain loop forever. More pending
        # entries than the ring holds is always driver corruption.
        pm, _, _ = env
        queue = VirtQueue(pm)
        queue.desc_gpa, queue.avail_gpa, queue.used_gpa, queue.size = (
            DESC, AVAIL, USED, 16)
        pm.write_u32(AVAIL, 17)  # 17 pending > 16 slots
        with pytest.raises(DeviceError, match="corrupt index"):
            queue.pop_avail()
        # Exactly ring-size pending is still legal (full ring).
        pm.write_u32(AVAIL, 16)
        for slot in range(16):
            pm.write_u32(AVAIL + 4 + slot * 4, slot % 3)
        assert queue.pop_avail() == 0

    def test_push_used_advances_index(self, env):
        pm, _, _ = env
        queue = VirtQueue(pm)
        queue.desc_gpa, queue.avail_gpa, queue.used_gpa, queue.size = (
            DESC, AVAIL, USED, 16)
        queue.push_used(7, 100)
        assert pm.read_u32(USED) == 1
        assert pm.read_u32(USED + 4) == 7
        assert pm.read_u32(USED + 8) == 100


class TestVirtioBlock:
    def test_write_and_read(self, env):
        pm, pic, sink = env
        dev = VirtioBlockDevice(pm, pic.line(3), capacity_sectors=32)
        configure(dev, VIRTIO_BLK_BASE, pm)
        assert dev.port_read(VIRTIO_BLK_BASE + OFF_STATUS) == 1

        payload = bytes([i % 251 for i in range(512)])
        pm.write_bytes(DATA, payload)
        head = blk_request(pm, 0, BLK_T_WRITE, sector=5)
        publish(pm, [head])
        dev.port_write(VIRTIO_BLK_BASE + OFF_KICK, 0)
        assert dev.read_sectors(5, 1) == payload
        assert pm.read_u8(STATUS_BUF) == BLK_S_OK
        assert pm.read_u32(USED) == 1
        assert sink.count == 1

        # read it back into a cleared buffer
        pm.write_bytes(DATA, b"\x00" * 512)
        head = blk_request(pm, 1, BLK_T_READ, sector=5)
        publish(pm, [head])
        dev.port_write(VIRTIO_BLK_BASE + OFF_KICK, 0)
        assert pm.read_bytes(DATA, 512) == payload

    def test_batch_processes_all_with_one_kick_one_irq(self, env):
        pm, pic, sink = env
        dev = VirtioBlockDevice(pm, pic.line(3), capacity_sectors=32)
        configure(dev, VIRTIO_BLK_BASE, pm)
        pm.write_bytes(DATA, b"Z" * 512)
        heads = [blk_request(pm, i, BLK_T_WRITE, sector=i) for i in range(4)]
        publish(pm, heads)
        dev.port_write(VIRTIO_BLK_BASE + OFF_KICK, 0)
        assert dev.writes == 4
        assert pm.read_u32(USED) == 4
        assert sink.count == 1  # the whole batch completes with one IRQ
        assert dev.queue.kicks == 1

    def test_out_of_range_request_errors(self, env):
        pm, pic, _ = env
        dev = VirtioBlockDevice(pm, pic.line(3), capacity_sectors=4)
        configure(dev, VIRTIO_BLK_BASE, pm)
        head = blk_request(pm, 0, BLK_T_WRITE, sector=100)
        publish(pm, [head])
        dev.port_write(VIRTIO_BLK_BASE + OFF_KICK, 0)
        assert pm.read_u8(STATUS_BUF) == 1  # BLK_S_ERROR
        assert dev.errors == 1

    def test_kick_before_configuration_rejected(self, env):
        pm, pic, _ = env
        dev = VirtioBlockDevice(pm, pic.line(3))
        with pytest.raises(DeviceError):
            dev.port_write(VIRTIO_BLK_BASE + OFF_KICK, 0)


class TestVirtioNet:
    def test_tx_batch(self, env):
        pm, pic, sink = env
        sent = []
        dev = VirtioNetDevice(pm, pic.line(4), tx_sink=sent.append)
        configure(dev, VIRTIO_NET_BASE, pm)  # tx queue
        pm.write_bytes(DATA, b"frame-a!")
        for i in range(3):
            write_desc(pm, i, DATA, 8, 0)
        publish(pm, [0, 1, 2])
        dev.port_write(VIRTIO_NET_BASE + OFF_KICK, 0)
        assert dev.tx_frames == 3 and len(sent) == 3
        assert sink.count == 1

    def test_rx_fill(self, env):
        pm, pic, _ = env
        dev = VirtioNetDevice(pm, pic.line(4))
        rx_base = VIRTIO_NET_BASE + 8
        configure_offsets = {
            OFF_DESC: DESC, OFF_AVAIL: AVAIL, OFF_USED: USED, OFF_SIZE: 16,
        }
        for off, value in configure_offsets.items():
            dev.port_write(rx_base + off, value)
        write_desc(pm, 0, DATA, 64, DESC_F_WRITE)
        publish(pm, [0])
        assert dev.inject_rx(b"ping")
        assert pm.read_bytes(DATA, 4) == b"ping"
        assert pm.read_u32(USED) == 1

    def test_rx_drop_without_buffers(self, env):
        pm, pic, _ = env
        dev = VirtioNetDevice(pm, pic.line(4))
        assert not dev.inject_rx(b"lost")
        assert dev.rx_dropped == 1
