"""Deterministic RNG behaviour and statistical sanity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.rng import DeterministicRNG


def test_same_seed_same_stream():
    a = DeterministicRNG(42)
    b = DeterministicRNG(42)
    assert [a.next_u64() for _ in range(50)] == [b.next_u64() for _ in range(50)]


def test_different_seeds_differ():
    a = DeterministicRNG(1)
    b = DeterministicRNG(2)
    assert [a.next_u64() for _ in range(10)] != [b.next_u64() for _ in range(10)]


def test_zero_seed_is_remapped():
    rng = DeterministicRNG(0)
    assert rng.next_u64() != 0


def test_fork_streams_are_independent():
    base = DeterministicRNG(7)
    f1 = base.fork(1)
    f2 = base.fork(2)
    s1 = [f1.next_u64() for _ in range(10)]
    s2 = [f2.next_u64() for _ in range(10)]
    assert s1 != s2


@given(st.integers(min_value=-100, max_value=100),
       st.integers(min_value=0, max_value=200))
def test_randint_in_range(lo, span):
    rng = DeterministicRNG(lo * 1000 + span + 5)
    hi = lo + span
    for _ in range(20):
        assert lo <= rng.randint(lo, hi) <= hi


def test_randint_empty_range_rejected():
    with pytest.raises(ValueError):
        DeterministicRNG(1).randint(5, 4)


def test_random_unit_interval():
    rng = DeterministicRNG(3)
    values = [rng.random() for _ in range(1000)]
    assert all(0.0 <= v < 1.0 for v in values)
    mean = sum(values) / len(values)
    assert 0.45 < mean < 0.55  # crude uniformity


def test_choice_and_empty_choice():
    rng = DeterministicRNG(9)
    items = ["a", "b", "c"]
    assert all(rng.choice(items) in items for _ in range(20))
    with pytest.raises(ValueError):
        rng.choice([])


def test_shuffle_is_permutation():
    rng = DeterministicRNG(11)
    items = list(range(30))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert shuffled != items  # astronomically unlikely to be identity


def test_zipf_skews_toward_low_indices():
    rng = DeterministicRNG(13)
    counts = [0] * 16
    for _ in range(4000):
        counts[rng.sample_zipf(16, alpha=1.0)] += 1
    assert counts[0] > counts[8] > 0
    assert sum(counts) == 4000


def test_zipf_bounds_and_errors():
    rng = DeterministicRNG(17)
    assert rng.sample_zipf(1) == 0
    for _ in range(100):
        assert 0 <= rng.sample_zipf(5, alpha=0.5) < 5
    with pytest.raises(ValueError):
        rng.sample_zipf(0)


def test_expovariate_positive_and_mean():
    rng = DeterministicRNG(19)
    values = [rng.expovariate(2.0) for _ in range(2000)]
    assert all(v >= 0 for v in values)
    mean = sum(values) / len(values)
    assert 0.4 < mean < 0.6  # mean should be ~1/rate = 0.5
    with pytest.raises(ValueError):
        rng.expovariate(0)
