"""Physical memory and the frame allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.util.errors import MemoryError_
from repro.util.units import PAGE_SIZE


class TestPhysicalMemory:
    def test_u32_roundtrip_little_endian(self):
        pm = PhysicalMemory(PAGE_SIZE)
        pm.write_u32(0, 0x12345678)
        assert pm.read_u32(0) == 0x12345678
        assert pm.read_u8(0) == 0x78
        assert pm.read_u8(3) == 0x12

    def test_u8_masking(self):
        pm = PhysicalMemory(PAGE_SIZE)
        pm.write_u8(5, 0x1FF)
        assert pm.read_u8(5) == 0xFF

    def test_u32_masking(self):
        pm = PhysicalMemory(PAGE_SIZE)
        pm.write_u32(8, 0x1_FFFF_FFFF)
        assert pm.read_u32(8) == 0xFFFFFFFF

    def test_bounds_checked(self):
        pm = PhysicalMemory(PAGE_SIZE)
        with pytest.raises(MemoryError_):
            pm.read_u32(PAGE_SIZE - 2)
        with pytest.raises(MemoryError_):
            pm.write_u8(-1, 0)
        with pytest.raises(MemoryError_):
            pm.read_bytes(PAGE_SIZE - 1, 2)

    def test_size_must_be_page_multiple(self):
        with pytest.raises(MemoryError_):
            PhysicalMemory(PAGE_SIZE + 1)
        with pytest.raises(MemoryError_):
            PhysicalMemory(0)

    def test_frame_accessors(self):
        pm = PhysicalMemory(4 * PAGE_SIZE)
        data = bytes(range(256)) * 16
        pm.write_frame(2, data)
        assert pm.read_frame(2) == data
        pm.zero_frame(2)
        assert pm.read_frame(2) == b"\x00" * PAGE_SIZE
        with pytest.raises(MemoryError_):
            pm.write_frame(0, b"short")

    def test_fingerprint_tracks_content(self):
        pm = PhysicalMemory(4 * PAGE_SIZE)
        pm.write_frame(0, b"a" * PAGE_SIZE)
        pm.write_frame(1, b"a" * PAGE_SIZE)
        pm.write_frame(2, b"b" * PAGE_SIZE)
        assert pm.frame_fingerprint(0) == pm.frame_fingerprint(1)
        assert pm.frame_fingerprint(0) != pm.frame_fingerprint(2)

    @given(st.integers(min_value=0, max_value=PAGE_SIZE - 4),
           st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_u32_roundtrip_everywhere(self, offset, value):
        pm = PhysicalMemory(PAGE_SIZE)
        pm.write_u32(offset, value)
        assert pm.read_u32(offset) == value

    @given(st.binary(min_size=0, max_size=64),
           st.integers(min_value=0, max_value=PAGE_SIZE - 64))
    def test_bytes_roundtrip(self, data, offset):
        pm = PhysicalMemory(PAGE_SIZE)
        pm.write_bytes(offset, data)
        assert pm.read_bytes(offset, len(data)) == data


class TestFrameAllocator:
    def test_reserved_frames_never_allocated(self):
        pm = PhysicalMemory(8 * PAGE_SIZE)
        alloc = FrameAllocator(pm, reserved_frames=3)
        seen = {alloc.alloc() for _ in range(alloc.free_frames)}
        assert all(pfn >= 3 for pfn in seen)
        assert len(seen) == 5

    def test_alloc_zeroes_by_default(self):
        pm = PhysicalMemory(4 * PAGE_SIZE)
        alloc = FrameAllocator(pm)
        pfn = alloc.alloc()
        pm.write_frame(pfn, b"x" * PAGE_SIZE)
        alloc.free(pfn)
        pfn2 = alloc.alloc()
        assert pfn2 == pfn
        assert pm.read_frame(pfn2) == b"\x00" * PAGE_SIZE

    def test_alloc_no_zero(self):
        pm = PhysicalMemory(4 * PAGE_SIZE)
        alloc = FrameAllocator(pm)
        pfn = alloc.alloc()
        pm.write_frame(pfn, b"x" * PAGE_SIZE)
        alloc.free(pfn)
        assert pm.read_frame(alloc.alloc(zero=False)) == b"x" * PAGE_SIZE

    def test_exhaustion(self):
        pm = PhysicalMemory(2 * PAGE_SIZE)
        alloc = FrameAllocator(pm)
        alloc.alloc()
        alloc.alloc()
        with pytest.raises(MemoryError_):
            alloc.alloc()

    def test_double_free_detected(self):
        pm = PhysicalMemory(2 * PAGE_SIZE)
        alloc = FrameAllocator(pm)
        pfn = alloc.alloc()
        alloc.free(pfn)
        with pytest.raises(MemoryError_):
            alloc.free(pfn)

    def test_foreign_free_detected(self):
        pm = PhysicalMemory(4 * PAGE_SIZE)
        alloc = FrameAllocator(pm, reserved_frames=1)
        with pytest.raises(MemoryError_):
            alloc.free(0)

    def test_contiguous_allocation(self):
        pm = PhysicalMemory(16 * PAGE_SIZE)
        alloc = FrameAllocator(pm)
        first = alloc.alloc_contiguous(4)
        assert all(alloc.is_allocated(first + i) for i in range(4))

    def test_contiguous_respects_fragmentation(self):
        pm = PhysicalMemory(6 * PAGE_SIZE)
        alloc = FrameAllocator(pm)
        frames = [alloc.alloc() for _ in range(6)]
        # free a non-contiguous pattern: 0, 2, 4
        for pfn in sorted(frames)[::2]:
            alloc.free(pfn)
        with pytest.raises(MemoryError_):
            alloc.alloc_contiguous(2)

    def test_counters(self):
        pm = PhysicalMemory(4 * PAGE_SIZE)
        alloc = FrameAllocator(pm, reserved_frames=1)
        assert alloc.free_frames == 3
        pfn = alloc.alloc()
        assert alloc.free_frames == 2 and alloc.allocated_frames == 1
        alloc.free(pfn)
        assert alloc.free_frames == 3 and alloc.allocated_frames == 0

    def test_invalid_reserved(self):
        pm = PhysicalMemory(2 * PAGE_SIZE)
        with pytest.raises(MemoryError_):
            FrameAllocator(pm, reserved_frames=3)
