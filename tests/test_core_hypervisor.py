"""Hypervisor: VM lifecycle, exits, hypercalls, ballooning."""

import pytest

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import HypercallNumbers, RunOutcome, shared_info_gfn
from repro.cpu.assembler import Assembler
from repro.util.errors import ConfigError, GuestError
from repro.util.units import MIB

GUEST_MEM = 16 * MIB


def make_vm(hv, name="vm", virt_mode=VirtMode.HW_ASSIST,
            mmu_mode=MMUVirtMode.NESTED, **kw):
    return hv.create_vm(GuestConfig(name=name, memory_bytes=GUEST_MEM,
                                    virt_mode=virt_mode, mmu_mode=mmu_mode,
                                    **kw))


def load_and_run(hv, vm, src, max_instructions=100_000):
    prog = Assembler().assemble(".org 0x1000\n" + src)
    hv.load_program(vm, prog)
    hv.reset_vcpu(vm, prog.entry if prog.symbols.get("start") else 0x1000)
    return hv.run(vm, max_guest_instructions=max_instructions)


class TestLifecycle:
    def test_create_allocates_guest_memory(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        free_before = hv.allocator.free_frames
        vm = make_vm(hv)
        assert free_before - hv.allocator.free_frames >= vm.num_pages
        assert vm.name in hv.vms

    def test_duplicate_name_rejected(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        make_vm(hv, name="x")
        with pytest.raises(ConfigError):
            make_vm(hv, name="x")

    def test_destroy_returns_all_frames(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        before = hv.allocator.allocated_frames
        vm = make_vm(hv)
        hv.destroy_vm(vm)
        assert hv.allocator.allocated_frames == before
        assert vm.name not in hv.vms

    def test_device_accessor(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        assert vm.device("console") is vm.devices["console"]
        with pytest.raises(ConfigError):
            vm.device("flux_capacitor")

    def test_multiple_vms_isolated_memory(self):
        hv = Hypervisor(memory_bytes=96 * MIB)
        a = make_vm(hv, name="a")
        b = make_vm(hv, name="b")
        a.guest_mem.write_u32(0x1000, 0xAAAA)
        b.guest_mem.write_u32(0x1000, 0xBBBB)
        assert a.guest_mem.read_u32(0x1000) == 0xAAAA
        assert b.guest_mem.read_u32(0x1000) == 0xBBBB


class TestRunLoop:
    def test_shutdown_via_power_port(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        outcome = load_and_run(hv, vm, """
    li a0, 1
    out 0xf0, a0
    hlt
""")
        assert outcome is RunOutcome.SHUTDOWN
        assert vm.devices["power"].code == 1

    def test_halted_when_idle_without_timer(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        outcome = load_and_run(hv, vm, "    hlt\n")
        assert outcome is RunOutcome.HALTED

    def test_instruction_limit(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        outcome = load_and_run(hv, vm, "loop: jmp loop\n",
                               max_instructions=5000)
        assert outcome is RunOutcome.INSTR_LIMIT

    def test_io_exit_reaches_virtual_device(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        load_and_run(hv, vm, """
    li a0, 72
    out 0x10, a0
    li a0, 1
    out 0xf0, a0
    hlt
""")
        assert vm.devices["console"].text == "H"
        assert vm.exit_stats.counts.get("io_out:port_0x10") == 1

    def test_in_exit_returns_device_value(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        load_and_run(hv, vm, """
    in a1, 0x11          ; console status port reads 1
    li a0, 1
    out 0xf0, a0
    hlt
""")
        assert vm.vcpus[0].cpu.regs[2] == 1

    def test_triple_fault_is_guest_error(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        with pytest.raises(GuestError, match="triple fault"):
            load_and_run(hv, vm, "    syscall 0\n    hlt\n")

    def test_timer_wakes_halted_guest(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        outcome = load_and_run(hv, vm, """
    li a0, vec
    csrw VBAR, a0
    li t0, 5000
    out 0x40, t0         ; timer period (cycles)
    li t0, 1
    out 0x41, t0         ; one-shot
    sti
    hlt                  ; sleep until the timer fires
    li a0, 1
    out 0xf0, a0         ; shutdown proves we woke
    hlt
vec:
    in t1, 0x20
    out 0x20, t1         ; ack
    iret
""")
        assert outcome is RunOutcome.SHUTDOWN
        assert vm.devices["timer"].expirations == 1


class TestHypercalls:
    def test_console_putc_hypercall(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        load_and_run(hv, vm, f"""
    li a0, 80            ; 'P'
    vmcall {int(HypercallNumbers.CONSOLE_PUTC)}
    li a0, 1
    out 0xf0, a0
    hlt
""")
        assert vm.devices["console"].text == "P"
        assert vm.stats.hypercalls == 1

    def test_unknown_hypercall_returns_minus_one(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        load_and_run(hv, vm, """
    vmcall 999
    mov a3, a0
    li a0, 1
    out 0xf0, a0
    hlt
""")
        assert vm.vcpus[0].cpu.regs[4] == 0xFFFFFFFF

    def test_halt_hypercall(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        outcome = load_and_run(hv, vm, f"""
    vmcall {int(HypercallNumbers.HALT)}
    hlt
""")
        assert outcome is RunOutcome.HALTED

    def test_balloon_give_and_take(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        free_before = hv.allocator.free_frames
        # Give away gfn 2000 (unused high memory), then take it back.
        load_and_run(hv, vm, f"""
    li a0, 2000
    vmcall {int(HypercallNumbers.BALLOON_GIVE)}
    mov a3, a0
    li a0, 1
    out 0xf0, a0
    hlt
""")
        assert vm.vcpus[0].cpu.regs[4] == 0
        assert 2000 in vm.ballooned_gfns
        assert hv.allocator.free_frames == free_before + 1
        assert not vm.guest_mem.is_mapped(2000)

    def test_balloon_give_bad_gfn_fails(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        load_and_run(hv, vm, f"""
    li a0, 999999
    vmcall {int(HypercallNumbers.BALLOON_GIVE)}
    mov a3, a0
    li a0, 1
    out 0xf0, a0
    hlt
""")
        assert vm.vcpus[0].cpu.regs[4] == 0xFFFFFFFF


class TestSharedInfo:
    def test_shared_info_gfn_is_top_page(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv, virt_mode=VirtMode.PARAVIRT,
                     mmu_mode=MMUVirtMode.SHADOW)
        assert shared_info_gfn(vm) == vm.num_pages - 1


class TestExitAccounting:
    def test_exit_stats_cycles_match_vmm_cycles(self):
        hv = Hypervisor(memory_bytes=64 * MIB)
        vm = make_vm(hv)
        load_and_run(hv, vm, """
    li a0, 65
    out 0x10, a0
    li a0, 1
    out 0xf0, a0
    hlt
""")
        assert vm.exit_stats.total_cycles == vm.stats.vmm_cycles
        assert vm.exit_stats.total_exits == vm.stats.world_switches
