"""Nested MMU: 2-D walks, EPT violations, dirty logging, walk costs."""

import pytest

from repro.core.nested import NestedMMU
from repro.core.vm import GuestMemory
from repro.cpu.exits import ExitReason, VMExit
from repro.mem.costs import CostModel
from repro.mem.paging import (
    AccessType,
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    PageFault,
    make_pte,
    split_vaddr,
)
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.util.units import MIB, PAGE_SIZE

GUEST_PAGES = 64
ROOT_GPA = 0x10000
PT_GPA = 0x11000


class NestedEnv:
    def __init__(self, prealloc=True):
        self.pm = PhysicalMemory(4 * MIB)
        self.alloc = FrameAllocator(self.pm, reserved_frames=8)
        self.gm = GuestMemory(self.pm, GUEST_PAGES)
        self.mmu = NestedMMU(self.pm, self.alloc, self.gm, CostModel())
        if prealloc:
            for gfn in range(GUEST_PAGES):
                hfn = self.alloc.alloc()
                self.gm.map_page(gfn, hfn)
                self.mmu.ept_map(gfn, hfn)

    def guest_map(self, va, gfn, flags):
        dir_idx, tbl_idx, _ = split_vaddr(va)
        pde_gpa = ROOT_GPA + dir_idx * 4
        pde = self.gm.read_u32(pde_gpa)
        if not pde & PTE_PRESENT:
            self.gm.write_u32(
                pde_gpa,
                make_pte(PT_GPA >> 12, PTE_PRESENT | PTE_WRITABLE | PTE_USER),
            )
        self.gm.write_u32(PT_GPA + tbl_idx * 4,
                          make_pte(gfn, flags | PTE_PRESENT))


def test_real_mode_goes_through_ept():
    env = NestedEnv()
    pa, cycles = env.mmu.translate(0x2000, AccessType.READ, user=False)
    assert pa == env.gm.gpa_to_hpa(0x2000)
    assert cycles > 0  # one EPT walk


def test_two_dimensional_walk_cost():
    env = NestedEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.mmu.set_root(ROOT_GPA)
    costs = env.mmu.costs
    pa, cycles = env.mmu.translate(0x40000050, AccessType.READ, user=True)
    assert pa == (env.gm.map[5] << 12) | 0x50
    # 2 guest levels x (2 EPT + 1 entry read) + final 2 EPT refs = 8,
    # plus A-bit write-backs go through 2-ref EPT walks each (PDE+PTE).
    base_refs = 8
    ad_refs = 4  # first touch sets A on both guest levels
    assert cycles == costs.tlb_hit_cycles + (base_refs + ad_refs) * costs.mem_ref_cycles
    # Second access hits the TLB.
    _, c2 = env.mmu.translate(0x40000054, AccessType.READ, user=True)
    assert c2 == costs.tlb_hit_cycles


def test_guest_ad_bits_maintained():
    env = NestedEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.mmu.set_root(ROOT_GPA)
    env.mmu.translate(0x40000000, AccessType.READ, user=True)
    _d, tbl_idx, _ = split_vaddr(0x40000000)
    pte = env.gm.read_u32(PT_GPA + tbl_idx * 4)
    assert pte & PTE_ACCESSED and not pte & PTE_DIRTY
    env.mmu.translate(0x40000000, AccessType.WRITE, user=True)
    pte = env.gm.read_u32(PT_GPA + tbl_idx * 4)
    assert pte & PTE_DIRTY


def test_guest_fault_is_guest_visible():
    env = NestedEnv()
    env.mmu.set_root(ROOT_GPA)
    with pytest.raises(PageFault):
        env.mmu.translate(0x40000000, AccessType.READ, user=True)


def test_guest_permission_checks():
    env = NestedEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE)  # kernel only
    env.mmu.set_root(ROOT_GPA)
    with pytest.raises(PageFault):
        env.mmu.translate(0x40000000, AccessType.READ, user=True)
    env.mmu.translate(0x40000000, AccessType.READ, user=False)


def test_ept_violation_on_unmapped_gfn():
    env = NestedEnv(prealloc=False)
    with pytest.raises(VMExit) as info:
        env.mmu.translate(0x3000, AccessType.READ, user=False)
    assert info.value.reason is ExitReason.PAGE_FAULT
    assert info.value.qual("kind") == "ept_violation"
    assert info.value.qual("gpa") == 0x3000


def test_dirty_log_protect_and_unprotect():
    env = NestedEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.mmu.set_root(ROOT_GPA)
    env.mmu.translate(0x40000000, AccessType.WRITE, user=True)
    env.mmu.write_protect_gfn(5)
    with pytest.raises(VMExit) as info:
        env.mmu.translate(0x40000000, AccessType.WRITE, user=True)
    assert info.value.qual("kind") == "dirty_log"
    assert info.value.qual("gfn") == 5
    # reads still fine
    env.mmu.translate(0x40000000, AccessType.READ, user=True)
    env.mmu.unprotect_gfn(5)
    env.mmu.translate(0x40000000, AccessType.WRITE, user=True)


def test_dirty_logging_catches_guest_pt_pages_via_ad_writes():
    # Setting the guest A bit writes guest PT memory, which must respect
    # EPT write protection -- PT pages get dirty-logged automatically.
    env = NestedEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.mmu.set_root(ROOT_GPA)
    pt_gfn = PT_GPA >> 12
    env.mmu.write_protect_gfn(pt_gfn)
    with pytest.raises(VMExit) as info:
        env.mmu.translate(0x40000000, AccessType.READ, user=True)
    assert info.value.qual("kind") == "dirty_log"
    assert info.value.qual("gfn") == pt_gfn


def test_ept_unmap_forces_refault():
    env = NestedEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.mmu.set_root(ROOT_GPA)
    env.mmu.translate(0x40000000, AccessType.READ, user=True)
    env.mmu.ept_unmap(5)
    with pytest.raises(VMExit):
        env.mmu.translate(0x40000000, AccessType.READ, user=True)


def test_set_root_flushes_tlb():
    env = NestedEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.mmu.set_root(ROOT_GPA)
    env.mmu.translate(0x40000000, AccessType.READ, user=True)
    assert len(env.mmu.tlb) > 0
    env.mmu.set_root(ROOT_GPA)
    assert len(env.mmu.tlb) == 0


def test_lazy_write_caching_after_dirty_round():
    # After a read fill, the TLB entry is not write-permitting, so the
    # next write re-walks (and can be caught by dirty logging).
    env = NestedEnv()
    env.guest_map(0x40000000, gfn=5, flags=PTE_WRITABLE | PTE_USER)
    env.mmu.set_root(ROOT_GPA)
    env.mmu.translate(0x40000000, AccessType.READ, user=True)
    env.mmu.write_protect_gfn(5)
    with pytest.raises(VMExit):
        env.mmu.translate(0x40000000, AccessType.WRITE, user=True)
