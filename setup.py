"""Setup shim.

The environment this project targets can be fully offline; pip then
cannot fetch the `wheel` package that PEP 517 editable installs need.
With this shim (and no [build-system] table in pyproject.toml),
``pip install -e .`` uses the legacy setuptools develop path, which
works with a bare setuptools.
"""

from setuptools import setup

setup()
