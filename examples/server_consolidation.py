#!/usr/bin/env python3
"""Plan a server-consolidation project and quantify the savings.

A fleet of 50 service VMs currently runs one-per-host. This example
packs them onto as few hosts as first-fit-decreasing allows (memory as
the hard constraint, 1.5x CPU overcommit), evaluates contention on the
densest host, rebalances with migration-costed moves, and reports the
annual power + cooling savings.

Run:  python examples/server_consolidation.py
"""

from repro.cluster import (
    Host,
    HostSpec,
    LoadBalancer,
    Placement,
    PowerModel,
    VMSpec,
    consolidation_savings,
    host_performance,
    plan_consolidation,
)
from repro.sim.kernel import Simulator
from repro.sim.link import NetworkLink
from repro.util.units import GIB, MIB


def build_fleet(n: int = 50):
    return [
        VMSpec(
            f"svc{i:02d}",
            cpu_demand=1.0 + (i % 3) * 0.5,
            memory_bytes=(2 + i % 4) * GIB,
            interactive=(i % 5 == 0),
        )
        for i in range(n)
    ]


def main() -> None:
    spec = HostSpec(name="r740", cores=8, cpu_capacity=8.0,
                    memory_bytes=32 * GIB, idle_watts=120, peak_watts=280)
    vms = build_fleet()

    # Status quo: one VM per host.
    before_hosts = []
    for i, vm in enumerate(vms):
        host = Host(spec, index=100 + i)
        host.place(vm)
        before_hosts.append(host)
    before = Placement(hosts=before_hosts)

    after = plan_consolidation(vms, spec, cpu_overcommit=1.5)
    savings = consolidation_savings(before, after, PowerModel())

    print(f"hosts: {savings.hosts_before} -> {savings.hosts_after} "
          f"({savings.consolidation_ratio:.1f}:1 consolidation)")
    print(f"power: {savings.watts_before / 1000:.2f} kW -> "
          f"{savings.watts_after / 1000:.2f} kW")
    print(f"annual saving: {savings.annual_saving:,.0f} EUR "
          f"({savings.saving_per_retired_host:,.0f} EUR per retired host)")

    print("\nper-host load after consolidation:")
    for host in after.hosts:
        perf = host_performance(host)
        print(f"  {host.name}: {len(host.vms)} VMs, "
              f"cpu {host.cpu_demand:.1f}/{host.spec.cpu_capacity:.0f}, "
              f"aggregate thpt {perf.aggregate_throughput:.2f}, "
              f"saturated={perf.saturated}")

    # Consolidating to 1.5x CPU leaves hot spots; add two spare hosts
    # and let the balancer spread the saturated ones via live migration.
    spare_base = len(after.hosts)
    after.hosts.extend(Host(spec, index=spare_base + i) for i in range(2))
    sim = Simulator()
    link = NetworkLink(sim, bandwidth_bytes_per_sec=125 * MIB, latency=100)
    balancer = LoadBalancer(link, high_watermark=0.95, low_watermark=0.85)
    report = balancer.rebalance(after)
    print(f"\nrebalancing: {report.migration_count} migrations, "
          f"imbalance {report.imbalance_before:.3f} -> "
          f"{report.imbalance_after:.3f}, total downtime "
          f"{report.total_downtime_us / 1000:.1f} ms")
    for vm_name, src, dst in report.migrations:
        print(f"  migrated {vm_name}: {src} -> {dst}")


if __name__ == "__main__":
    main()
