#!/usr/bin/env python3
"""Live-migrate a running VM between two hypervisors.

Boots NanoOS with a page-dirtying workload on a source hypervisor, lets
it run into the middle of its computation, then performs real iterative
pre-copy (dirty logging through shadow/EPT write protection, rounds
interleaved with guest execution, stop-and-copy of the residual set),
resumes the guest on the destination host, and verifies it finishes
with the correct result.

Run:  python examples/live_migration.py
"""

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.migration import LiveMigrator
from repro.util.units import MIB

PAGES, PASSES = 40, 3000


def main() -> None:
    source = Hypervisor(memory_bytes=64 * MIB)
    destination = Hypervisor(memory_bytes=64 * MIB)

    vm = source.create_vm(
        GuestConfig(
            name="worker",
            memory_bytes=16 * MIB,
            virt_mode=VirtMode.HW_ASSIST,
            mmu_mode=MMUVirtMode.NESTED,
        )
    )
    kernel = build_kernel(KernelOptions(memory_bytes=16 * MIB))
    source.load_program(vm, kernel)
    source.load_program(vm, workloads.memtouch(PAGES, PASSES))
    source.reset_vcpu(vm, kernel.entry)

    print("running guest on source host ...")
    source.run(vm, max_guest_instructions=100_000)
    print(f"  guest at pc={vm.vcpus[0].cpu.pc:#x}, "
          f"{vm.vcpus[0].cpu.instret:,} instructions in")

    print("migrating ...")
    migrator = LiveMigrator(source, destination, bytes_per_cycle=4.0)
    result = migrator.migrate(vm, quantum_instructions=40_000)
    print(f"  rounds          : {result.rounds}")
    print(f"  round sizes     : {result.round_sizes} pages")
    print(f"  pages copied    : {result.pages_copied:,}")
    print(f"  downtime        : {result.downtime_cycles:,} cycles")
    print(f"  guest ran       : {result.guest_instructions_during:,} "
          "instructions during migration")

    print("resuming on destination host ...")
    outcome = destination.run(result.dest_vm, max_guest_instructions=80_000_000)
    diag = read_diag(result.dest_vm.guest_mem)
    expected = expected_memtouch(PAGES, PASSES)
    print(f"  outcome  : {outcome.value}")
    print(f"  result   : {diag.user_result} (expected {expected})")
    print(f"  correct  : {diag.user_result == expected}")
    print(f"  console  : {result.dest_vm.devices['console'].text!r}")


if __name__ == "__main__":
    main()
