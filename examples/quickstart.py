#!/usr/bin/env python3
"""Quickstart: boot a guest OS inside a VM and inspect what happened.

Creates a hypervisor, a hardware-assisted VM with nested paging, builds
the NanoOS kernel and a hello-world user program, boots it, and prints
the console output plus the VM-exit accounting.

Run:  python examples/quickstart.py
"""

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.guest import KernelOptions, boot_vm, build_kernel, workloads
from repro.util.units import MIB


def main() -> None:
    hypervisor = Hypervisor(memory_bytes=64 * MIB)
    vm = hypervisor.create_vm(
        GuestConfig(
            name="quickstart",
            memory_bytes=16 * MIB,
            virt_mode=VirtMode.HW_ASSIST,
            mmu_mode=MMUVirtMode.NESTED,
        )
    )

    kernel = build_kernel(KernelOptions(memory_bytes=16 * MIB))
    diag = boot_vm(hypervisor, vm, kernel, workloads.hello())

    console = vm.devices["console"]
    print("=== guest console ===")
    print(console.text, end="")
    print("=====================")
    print(f"guest booted cleanly : {diag.clean}")
    print(f"user program result  : {diag.user_result}")
    print(f"syscalls handled     : {diag.syscalls}")
    print(f"guest instructions   : {vm.vcpus[0].cpu.instret:,}")
    print(f"guest cycles         : {vm.vcpus[0].cpu.cycles:,}")
    print(f"VMM cycles           : {vm.stats.vmm_cycles:,}")
    print(f"world switches       : {vm.stats.world_switches}")
    print("VM exits by reason   :")
    for reason, count in sorted(vm.exit_stats.counts.items()):
        print(f"  {reason:30s} {count}")


if __name__ == "__main__":
    main()
