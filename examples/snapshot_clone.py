#!/usr/bin/env python3
"""Snapshot a running VM, serialize it, and clone it twice.

Pauses a guest mid-computation, captures a snapshot (zero pages and
untouched disks elided), round-trips it through the binary codec, and
restores it twice: once on the original host and once on a second
hypervisor. All three instances -- original and both clones -- finish
independently with the same correct result.

Run:  python examples/snapshot_clone.py
"""

from repro.core import (
    GuestConfig,
    Hypervisor,
    MMUVirtMode,
    VirtMode,
    VMSnapshot,
    restore_vm,
    snapshot_vm,
)
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.util.units import MIB

PAGES, PASSES = 24, 2500


def main() -> None:
    host_a = Hypervisor(memory_bytes=96 * MIB)
    host_b = Hypervisor(memory_bytes=64 * MIB)

    vm = host_a.create_vm(
        GuestConfig(name="original", memory_bytes=16 * MIB,
                    virt_mode=VirtMode.HW_ASSIST,
                    mmu_mode=MMUVirtMode.NESTED)
    )
    kernel = build_kernel(KernelOptions(memory_bytes=16 * MIB))
    host_a.load_program(vm, kernel)
    host_a.load_program(vm, workloads.memtouch(PAGES, PASSES))
    host_a.reset_vcpu(vm, kernel.entry)
    host_a.run(vm, max_guest_instructions=150_000)
    print(f"paused 'original' mid-run at pc={vm.vcpus[0].cpu.pc:#x}")

    snap = snapshot_vm(vm)
    blob = snap.to_bytes()
    print(f"snapshot: {len(blob):,} bytes "
          f"({len(snap.pages)} non-zero pages of {len(snap.mapped_gfns)})")

    decoded = VMSnapshot.from_bytes(blob)
    clone_local = restore_vm(host_a, decoded, name="clone-local")
    clone_remote = restore_vm(host_b, decoded, name="clone-remote")

    expected = expected_memtouch(PAGES, PASSES)
    for host, instance in ((host_a, vm), (host_a, clone_local),
                           (host_b, clone_remote)):
        outcome = host.run(instance, max_guest_instructions=80_000_000)
        diag = read_diag(instance.guest_mem)
        print(f"{instance.name:12s}: outcome={outcome.value} "
              f"result={diag.user_result} "
              f"correct={diag.user_result == expected}")


if __name__ == "__main__":
    main()
