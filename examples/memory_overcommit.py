#!/usr/bin/env python3
"""Run more guest memory than the host has, without breaking guests.

Boots two identical VMs mid-workload, then demonstrates the overcommit
toolbox on live state:

1. a KSM-style scan merges byte-identical frames across the VMs
   (copy-on-write protected);
2. host swap evicts cold frames and transparently pages them back on
   the guests' next touch;
3. working-set estimation by access-bit sampling over the guests' own
   page tables;
4. both guests still finish with bit-correct results.

Run:  python examples/memory_overcommit.py
"""

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.overcommit import HostSwap, PageSharer, estimate_wss
from repro.util.units import MIB

PAGES, PASSES = 24, 4000


def main() -> None:
    hv = Hypervisor(memory_bytes=96 * MIB)
    kernel = build_kernel(KernelOptions(memory_bytes=16 * MIB))
    vms = []
    for i in range(2):
        vm = hv.create_vm(
            GuestConfig(name=f"guest{i}", memory_bytes=16 * MIB,
                        virt_mode=VirtMode.HW_ASSIST,
                        mmu_mode=MMUVirtMode.NESTED)
        )
        hv.load_program(vm, kernel)
        hv.load_program(vm, workloads.memtouch(PAGES, PASSES))
        hv.reset_vcpu(vm, kernel.entry)
        hv.run(vm, max_guest_instructions=120_000)
        vms.append(vm)
    print(f"two 16 MiB guests running; host free frames: "
          f"{hv.allocator.free_frames:,}")

    print("\n-- working-set estimation (access-bit sampling) --")
    samples = estimate_wss(hv, vms[0], sample_instructions=20_000, samples=3)
    print(f"  {vms[0].name}: pages touched per interval: {samples}")

    print("\n-- content-based page sharing --")
    sharer = PageSharer(hv)
    scan = sharer.scan()
    print(f"  scanned {scan.frames_scanned:,} frames, merged "
          f"{scan.pages_merged:,}, freed {scan.bytes_saved // MIB} MiB")
    print(f"  host free frames now: {hv.allocator.free_frames:,}")

    print("\n-- host swap --")
    swap = HostSwap(hv)
    for vm in vms:
        swap.install(vm)
    evicted = swap.evict_some(300)
    print(f"  evicted {evicted} frames to host swap")

    print("\n-- guests keep running correctly --")
    expected = expected_memtouch(PAGES, PASSES)
    for vm in vms:
        outcome = hv.run(vm, max_guest_instructions=80_000_000)
        diag = read_diag(vm.guest_mem)
        print(f"  {vm.name}: outcome={outcome.value} "
              f"result={diag.user_result} correct={diag.user_result == expected}")
    print(f"  COW breaks: {sharer.cow_breaks}, swap-ins: {swap.swap_ins}")


if __name__ == "__main__":
    main()
