#!/usr/bin/env python3
"""Compare every CPU-virtualization technique on the same guest.

Runs a syscall-heavy NanoOS workload natively and under trap-and-
emulate, binary translation, paravirtualization, and hardware
assistance (shadow and nested paging), then prints the E1-style
comparison: exit counts, cycle overhead versus native, and whether the
Popek-Goldberg correctness probes passed.

Watch the trap-and-emulate row: it is the only mode where the guest
silently observes host state (correct = no) -- VISA, like x86, has
sensitive instructions that do not trap.

Run:  python examples/mode_comparison.py
"""

from repro.bench import run_e1


def main() -> None:
    result = run_e1(syscalls=300)
    print(result.render())
    print()
    te = result.raw["modes"]["trap-emulate"]
    bt = result.raw["modes"]["bin-transl"]
    print(
        "Trap-and-emulate took "
        f"{te.exits} exits and FAILED the sensitive-instruction probes "
        f"(mode_ok={te.diag.mode_ok}, ie_ok={te.diag.ie_ok});\n"
        f"binary translation took {bt.exits} exits and passed "
        f"(mode_ok={bt.diag.mode_ok}, ie_ok={bt.diag.ie_ok})."
    )


if __name__ == "__main__":
    main()
