"""E11: software vs hardware MMU crossover along the PT-mod-rate axis."""

import json

from repro.bench import run_e11


def test_e11_crossover(benchmark, show):
    result = benchmark.pedantic(run_e11, iterations=1, rounds=1)
    show(result)
    points = result.raw["points"]

    # The finding: shadow paging wins the low-churn end, H-mode
    # two-stage paging wins the high-churn end, with one crossover
    # point in between (no flip-flopping along the sweep).
    assert points[0]["winner"] == "shadow"
    assert points[-1]["winner"] == "hmode"
    winners = [p["winner"] for p in points]
    flip = winners.index("hmode")
    assert all(w == "shadow" for w in winners[:flip])
    assert all(w == "hmode" for w in winners[flip:])
    assert result.raw["crossover_maps"] == points[flip]["maps"]
    assert result.raw["crossover_rate"] == points[flip]["pt_mod_rate"]

    # Why each side wins: H-mode runs PT churn exit-free, so its exit
    # count is flat across the sweep while shadow's grows with churn.
    assert points[-1]["hmode_exits"] == points[0]["hmode_exits"]
    assert points[-1]["shadow_exits"] > 2 * points[0]["shadow_exits"]

    # The H-mode advantage at the churn-heavy end is substantial.
    assert points[-1]["shadow_cycles"] > 1.3 * points[-1]["hmode_cycles"]
    # ...and shadow's cheap one-stage fills win the miss-heavy end.
    assert points[0]["hmode_cycles"] > 1.2 * points[0]["shadow_cycles"]

    # Byte-reproducible: a second run serializes identically, and the
    # manifest embeds the sweep so the CI artifact is self-describing.
    again = run_e11()
    assert (json.dumps(result.manifest(), sort_keys=True)
            == json.dumps(again.manifest(), sort_keys=True))
    assert result.manifest()["extra"]["e11"]["points"] == points
