"""E5 (Figure 5): proportional-share scheduling and boost latency."""

from repro.bench import run_e5
from repro.sim.kernel import SEC


def test_e5_schedulers(benchmark, show):
    result = benchmark.pedantic(run_e5, kwargs={"duration_us": 8 * SEC},
                                iterations=1, rounds=1)
    show(result, result.raw["latency_table"])

    credit = result.raw["credit"]
    stride = result.raw["stride"]
    rr = result.raw["round-robin"]

    # Proportional schedulers hit the 1:2:4 weights; round robin cannot.
    assert credit.share_error < 0.01
    assert stride.share_error < 0.01
    assert rr.share_error > 0.1
    assert credit.fairness > 0.99 and stride.fairness > 0.99
    assert rr.fairness < 0.9

    # Achieved shares track the weights.
    assert credit.achieved_share["vm2"] > 2.5 * credit.achieved_share["vm0"]

    # BOOST: orders of magnitude on interactive wake latency.
    boosted = result.raw["boost=True"]
    plain = result.raw["boost=False"]
    assert boosted.p50 < 200
    assert plain.p50 > 1000
    assert boosted.mean * 10 < plain.mean
