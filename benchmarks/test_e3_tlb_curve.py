"""E3 (Figure 3): nested walk amplification vs working-set size."""

from repro.bench import run_e3


def test_e3_tlb_curve(benchmark, show):
    result = benchmark.pedantic(
        run_e3,
        kwargs={"working_sets": (8, 32, 64, 128, 256, 512),
                "accesses": 9000, "baseline_accesses": 3000},
        iterations=1, rounds=1,
    )
    show(result)
    raw = result.raw

    # Under TLB coverage (64 entries) the modes are indistinguishable.
    for pages in (8, 32):
        assert raw[pages]["nested"] <= raw[pages]["native"] * 1.1
        assert raw[pages]["shadow"] <= raw[pages]["native"] * 1.1

    # Past coverage, nested paging's 2-D walk amplifies per-access cost;
    # the ratio grows with working set toward the walk-length ratio (4x).
    ratios = [raw[p]["nested"] / raw[p]["native"] for p in (128, 256, 512)]
    assert all(r > 2.0 for r in ratios)
    assert ratios == sorted(ratios)
    assert ratios[-1] < 4.5  # bounded by the walk amplification

    # Shadow paging's steady state tracks native (its whole point).
    for pages in (128, 256, 512):
        assert raw[pages]["shadow"] <= raw[pages]["native"] * 1.15

    # The curve itself rises past the TLB-coverage knee.
    assert raw[512]["native"] > 3 * raw[32]["native"]
