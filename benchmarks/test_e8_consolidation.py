"""E8 (Figure 8): consolidation knee + power/cost savings."""

from repro.bench import run_e8


def test_e8_consolidation(benchmark, show):
    result = benchmark.pedantic(run_e8, iterations=1, rounds=1)
    show(result, result.raw["fleet_table"])
    knee = result.raw["knee"]

    # Aggregate throughput climbs linearly then flattens at the knee
    # (4 cores, 1-core VMs: knee between 3 and 4 VMs with the virt tax).
    assert knee[1].aggregate_throughput < knee[2].aggregate_throughput
    assert knee[2].aggregate_throughput < knee[3].aggregate_throughput
    assert knee[8].aggregate_throughput <= knee[4].aggregate_throughput * 1.01
    assert not knee[3].saturated and knee[5].saturated

    # Per-VM throughput degrades past the knee; latency explodes.
    assert knee[8].throughput["v1"] < 0.6
    assert knee[6].latency_factor["v0"] > 10 * knee[1].latency_factor["v0"]

    # The 50-VM fleet consolidates several-to-one with real savings.
    savings = result.raw["savings"]
    assert savings.consolidation_ratio > 3
    assert savings.watts_after < savings.watts_before / 2
    assert savings.annual_saving > 0
    assert 100 < savings.saving_per_retired_host < 2000  # EUR/host/year
