"""Host throughput: closure-compiled blocks vs the reference interpreter.

Unlike E1-E10 this benchmark measures *host* wall-clock speed
(guest-MIPS), so absolute numbers depend on the machine; the shape
assertions stick to what is hardware-independent. Bit-identical
simulated state between the two engines is asserted inside the harness
itself (it raises on any cycles/instret divergence).
"""

import json

from repro.bench import run_host_throughput


def test_host_throughput_quick(benchmark, show):
    result = benchmark.pedantic(
        run_host_throughput, kwargs={"quick": True}, iterations=1, rounds=1
    )
    show(result)

    # Every native workload ran on both engines, plus the bt pair.
    layers = {(row.layer, row.workload, row.engine) for row in result.rows}
    for workload in ("cpu_bound", "memtouch", "syscall_storm"):
        assert ("native", workload, "interp") in layers
        assert ("native", workload, "compiled") in layers

    # Compute-bound code is where closure compilation pays off most;
    # this ratio is stable even at quick scale.
    assert result.speedups["native/cpu_bound"] > 2.0

    # The compiler actually engaged and reported its counters, and
    # system instructions went through the reference fallback path.
    assert result.jit_counters["blocks_compiled"] > 0
    assert result.jit_counters["fallback_steps"] > 0

    # The JSON payload is complete and serializable.
    payload = json.loads(json.dumps(result.to_json()))
    assert payload["schema"] == "pyvisor.bench.host/1"
    assert payload["speedups"]["native/cpu_bound"] > 2.0
    assert all(row["guest_mips"] > 0 for row in payload["rows"])
