"""Benchmark harness conventions.

Each ``test_e*`` module regenerates one of the paper-style tables or
figures. Run them with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` lets each experiment print its rendered table, so the output
can be read side by side with EXPERIMENTS.md. Every benchmark also
asserts the *shape* of its result (orderings, crossovers, correctness
flags) -- not absolute numbers, which depend on the cost model.
"""

import pytest


@pytest.fixture
def show():
    """Print an ExperimentResult's table(s) under -s."""

    def _show(result, *extra_tables):
        print()
        print(result.render())
        for table in extra_tables:
            print()
            print(table.render())
        chart = result.raw.get("chart")
        if chart:
            print()
            print(chart)

    return _show
