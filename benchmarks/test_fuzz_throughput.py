"""Differential fuzzing: campaign throughput and verdict shape.

Measures host-side throughput of the five-backend differential harness
(cases/second) and asserts the campaign's structural properties: clean
at HEAD, deterministic manifest identity, and a healthy outcome mix
(most generated guests must actually halt -- a generator that mostly
hangs or aborts is stressing the cycle guard, not the backends).
"""

from repro.fuzz.campaign import manifest_identity, run_campaign
from repro.fuzz.diff import default_opts

_SEED = 1
_CASES = 12


def test_fuzz_campaign_throughput(benchmark):
    out = benchmark.pedantic(
        run_campaign, args=(_SEED, _CASES),
        kwargs={"jobs": 1, "opts": default_opts()},
        iterations=1, rounds=1,
    )
    fz = out["manifest"]["extra"]["fuzz"]
    assert fz["cases"] == _CASES
    assert fz["failures"] == []

    classes = fz["outcome_classes"]
    # Each case contributes one outcome class per backend group; the
    # generator's exit tail should land most cases at a clean halt.
    assert classes.get("halted", 0) >= _CASES // 2
    assert classes.get("hang", 0) == 0

    # Re-running the same campaign serially must be byte-identical.
    again = run_campaign(_SEED, _CASES, jobs=1, opts=default_opts())
    assert (manifest_identity(out["manifest"])
            == manifest_identity(again["manifest"]))
