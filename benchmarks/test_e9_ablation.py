"""E9 (Table 9): world-switch cost sweep and BT structure ablation."""

from repro.bench import run_e9_bt, run_e9_exit_cost


def test_e9a_exit_cost_sweep(benchmark, show):
    result = benchmark.pedantic(run_e9_exit_cost, iterations=1, rounds=1)
    show(result)
    raw = result.raw
    costs = sorted(raw)

    # The E1 conclusions hold at every world-switch cost across 16x:
    for cost in costs:
        row = raw[cost]
        assert row["hw+nested"] < row["paravirt"] < row["trap-emulate"]

    # Binary translation takes no hardware world switches, so it is
    # invariant to the sweep -- and overtakes PV once exits get pricey.
    bt = [raw[c]["bin-transl"] for c in costs]
    assert len(set(bt)) == 1
    assert raw[costs[0]]["bin-transl"] < raw[costs[0]]["paravirt"]

    # Exit-bound modes scale with the cost; compute-bound overheads do not.
    assert raw[costs[-1]]["trap-emulate"] > 5 * raw[costs[0]]["trap-emulate"]
    assert raw[costs[-1]]["hw+nested"] < 3 * raw[costs[0]]["hw+nested"]


def test_e9b_bt_ablation(benchmark, show):
    result = benchmark.pedantic(run_e9_bt, iterations=1, rounds=1)
    show(result)
    raw = result.raw

    full = raw["full BT"]
    no_chain = raw["no chaining"]
    no_cache = raw["no cache"]

    # The cache is the big win: without it every block re-translates.
    assert no_cache.bt_translated_instructions > 10 * full.bt_translated_instructions
    assert no_cache.total_cycles > 2 * full.total_cycles

    # Chaining shaves dispatch cost without changing translation work.
    assert no_chain.bt_translated_instructions == full.bt_translated_instructions
    assert no_chain.total_cycles > full.total_cycles
    assert full.bt_chained > 0 and no_chain.bt_chained == 0

    # All three configurations stay correct.
    for metrics in raw.values():
        assert metrics.correct
