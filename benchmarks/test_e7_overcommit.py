"""E7 (Table 7): overcommit policies + functional page sharing."""

from repro.bench import run_e7, run_e7_functional
from repro.overcommit import PolicyKind


def test_e7_overcommit_policies(benchmark, show):
    result = benchmark.pedantic(run_e7, iterations=1, rounds=1)
    show(result)
    raw = result.raw

    # Undercommitted: everyone runs at full speed.
    assert raw[2][PolicyKind.SWAP_ONLY].min_throughput == 1.0

    # The canonical progression: swap-only collapses right past 1.0x,
    # ballooning survives until working sets stop fitting, and sharing
    # pushes the cliff further still.
    assert raw[6][PolicyKind.SWAP_ONLY].min_throughput < 0.1
    assert raw[6][PolicyKind.BALLOON].min_throughput == 1.0
    assert raw[10][PolicyKind.BALLOON].min_throughput == 1.0
    assert raw[12][PolicyKind.BALLOON].min_throughput < 0.1
    assert raw[12][PolicyKind.BALLOON_SHARE].min_throughput == 1.0

    # Sharing savings grow with the VM count.
    savings = [raw[n][PolicyKind.BALLOON_SHARE].shared_saved_pages
               for n in sorted(raw)]
    assert savings == sorted(savings)


def test_e7_functional_page_sharing(benchmark, show):
    result = benchmark.pedantic(run_e7_functional, iterations=1, rounds=1)
    show(result)
    # Two near-identical guests: the scanner reclaims most frames, and
    # the runner asserted both guests still compute correct results.
    assert result.raw["frames_freed"] > 2000
    assert result.raw["cow_breaks"] > 0


def test_e7_controller_closed_loop(benchmark, show):
    from repro.bench import run_e7_controller

    result = benchmark.pedantic(run_e7_controller, kwargs={"quick": True},
                                iterations=1, rounds=1)
    show(result)
    raw = result.raw
    # The closed loop must strictly dominate swap-only on worst-case
    # guest-visible cycles at every overcommit ratio, replay an
    # identical tick log, and replay pinned faults byte-for-byte.
    assert raw["dominates_all"]
    assert raw["deterministic"]
    assert raw["fault_replay_identical"]
    for n, case in raw.items():
        if not isinstance(n, int):
            continue
        # Balloon + sharing reclaim everything; swap stays idle.
        assert case["controller"]["swap_ins"] == 0
        assert case["swap_only"]["swap_ins"] > 0
