"""E10: fault injection, detection, and recovery."""

from repro.bench import run_e10, run_e10_cascade


def test_e10_resilience(benchmark, show):
    result = benchmark.pedantic(run_e10, iterations=1, rounds=1)
    show(result)
    raw = result.raw

    # (a) Migration survived an injected link drop: the backoff-resume
    # path re-sent only the CRC-flagged corrupt pages, far fewer than a
    # from-scratch restart would have, and the guest stayed correct
    # (the runner raises on a wrong result).
    mig = raw["migration"]
    assert mig["faulted"].retries >= 1
    assert mig["faulted"].corrupt_pages_detected == 2
    assert mig["resume_beats_restart"]
    assert mig["resent_pages"] < 256  # pages a restart would re-send
    assert mig["correct"]
    # Fixed seed => byte-identical injection schedule on replay.
    assert mig["deterministic"]

    # (b) The hung VM was caught by the progress watchdog and
    # micro-rebooted from its snapshot with guest progress intact.
    wd = raw["watchdog"]
    assert wd["hung_detected"] and wd["hangs"] == 1
    assert wd["reboots"] == 1
    assert wd["progress_preserved"]
    assert wd["correct"]

    # (c) The crashed host's VMs were all re-placed on survivors.
    fo = raw["failover"]
    report = fo["report"]
    assert fo["crashed"] and fo["stranded"] > 0
    assert len(report.recovered) == fo["stranded"]
    assert not report.lost
    assert fo["all_on_survivors"]


def test_e10_cascade_sweep(benchmark, show):
    result = benchmark.pedantic(run_e10_cascade, iterations=1, rounds=1)
    show(result)
    raw = result.raw
    ks = sorted(raw["baseline"])

    # The same seeded cascade replayed twice lands identically.
    assert raw["deterministic"]

    for k in ks:
        base, prot = raw["baseline"][k], raw["protected"][k]
        # N+1 admission control refused part of the tail up front...
        assert prot["admitted"] < base["admitted"]
        assert prot["rejected"] and not base["rejected"]
        # ...and every recovery run reached a verified quiescent state
        # despite the mid-recovery cascade.
        assert base["report"].verified and prot["report"].verified
        assert base["report"].cascade_failures
        assert prot["report"].cascade_failures

    # The headline: anti-affinity + N+1 reservation strictly dominates
    # the unconstrained baseline on admitted VMs lost at every k >= 2.
    assert raw["dominates"]
    for k in ks:
        if k >= 2:
            assert raw["protected"][k]["lost"] < raw["baseline"][k]["lost"]

    # Rack-spread keeps every service up through a single-rack-scale
    # event; the packed baseline loses whole services.
    base1, prot1 = raw["baseline"][1], raw["protected"][1]
    assert prot1["availability"] > base1["availability"]
    assert prot1["availability"] == 1.0
