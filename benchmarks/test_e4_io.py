"""E4 (Table 4): emulated vs virtio I/O."""

from repro.bench import run_e4


def test_e4_io_virtualization(benchmark, show):
    result = benchmark.pedantic(run_e4, kwargs={"requests": 64},
                                iterations=1, rounds=1)
    show(result)
    cases = result.raw["cases"]
    requests = result.raw["requests"]

    def exits_per_req(name):
        metrics = cases[name]["virt"]
        io = sum(v for k, v in metrics.exit_breakdown.items()
                 if k.startswith("io_") or k.startswith("vmcall"))
        return io / requests

    # The emulated disk needs several register exits per request; virtio
    # with batching amortizes to about one exit per batch.
    assert exits_per_req("blk-emulated") > 4
    assert exits_per_req("blk-virtio-b1") < exits_per_req("blk-emulated")
    assert exits_per_req("blk-virtio-b4") < 2
    assert exits_per_req("blk-virtio-b4") < exits_per_req("blk-virtio-b1") / 2

    # Same structure for the NIC.
    assert exits_per_req("net-virtio-b8") < exits_per_req("net-emulated") / 3

    # Cycle overhead versus native follows the exit counts.
    def overhead(name):
        return (cases[name]["virt"].total_cycles
                / cases[name]["native"].total_cycles)

    assert overhead("blk-virtio-b4") < overhead("blk-emulated")
    assert overhead("net-virtio-b8") < overhead("net-emulated")

    # Data actually reached the devices in every configuration.
    for name, pair in cases.items():
        assert pair["virt"].diag.fault_cause == 0
