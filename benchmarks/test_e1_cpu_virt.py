"""E1 (Table 1): CPU virtualization across execution modes."""

from repro.bench import run_e1, run_e1_workloads


def test_e1_cpu_virtualization(benchmark, show):
    result = benchmark.pedantic(run_e1, kwargs={"syscalls": 300},
                                iterations=1, rounds=1)
    show(result)
    modes = result.raw["modes"]

    # Native is the floor; every virtualized mode pays something.
    native = modes["native"].total_cycles
    for label, metrics in modes.items():
        if label != "native":
            assert metrics.total_cycles > native, label

    # Ordering of total overhead (Adams & Agesen / Barham shapes):
    # HW assist < BT < PV < trap-and-emulate for a syscall workload.
    assert modes["hw+nested"].total_cycles < modes["bin-transl"].total_cycles
    assert modes["hw+shadow"].total_cycles < modes["bin-transl"].total_cycles
    assert modes["bin-transl"].total_cycles < modes["paravirt"].total_cycles
    assert modes["paravirt"].total_cycles < modes["trap-emulate"].total_cycles

    # Exit counts: T&E is the chattiest; BT avoids hardware exits.
    assert modes["trap-emulate"].exits > modes["paravirt"].exits
    assert modes["trap-emulate"].exits > 3 * modes["bin-transl"].exits
    assert modes["hw+nested"].exits < 50

    # Popek-Goldberg: only trap-and-emulate is incorrect.
    assert not modes["trap-emulate"].correct
    for label in ("bin-transl", "paravirt", "hw+shadow", "hw+nested"):
        assert modes[label].correct, label

    # Every mode computed the same (correct) user result.
    results = {m.diag.user_result for m in modes.values()}
    assert len(results) == 1


def test_e1b_workload_classes(benchmark, show):
    result = benchmark.pedantic(run_e1_workloads, iterations=1, rounds=1)
    show(result)
    overheads = result.raw["overheads"]
    summary = result.raw["geomean"]

    # Compute-bound guests barely notice virtualization in ANY mode;
    # memory- and syscall-dense guests pay the real tax.
    for mode, value in overheads["compute"].items():
        assert value < 2.0, mode
    assert overheads["syscall"]["trap-emulate"] > 10
    assert overheads["memory"]["hw+shadow"] > 3  # demand-paging PT tax
    assert overheads["memory"]["hw+nested"] < overheads["memory"]["hw+shadow"]

    # Geomean ordering matches the headline E1 story.
    assert (summary["hw+nested"] < summary["hw+shadow"]
            < summary["bin-transl"] < summary["paravirt"]
            < summary["trap-emulate"])
