"""E2 (Table 2): shadow vs nested paging crossover."""

from repro.bench import run_e2


def test_e2_mmu_virtualization(benchmark, show):
    result = benchmark.pedantic(
        run_e2,
        kwargs={"pt_cycles": 250, "walk_pages": 256, "walk_accesses": 10000},
        iterations=1, rounds=1,
    )
    show(result)
    raw = result.raw

    # PT-update-heavy: shadow pays trapped PT writes, nested pays zero
    # MMU exits -- nested wins by a large factor.
    pt = raw["pt_stress"]
    assert pt["shadow"].total_cycles > 3 * pt["nested"].total_cycles
    assert pt["shadow"].shadow_pt_writes > 100
    assert pt["nested"].ept_violations == 0
    assert pt["nested"].shadow_pt_writes == 0

    # TLB-miss-heavy: nested 2-D walks lose to shadow's direct walks.
    walk = raw["random_walk"]
    assert walk["nested"].total_cycles > 1.2 * walk["shadow"].total_cycles

    # The crossover is the finding: each MMU wins one workload.
    assert (pt["nested"].total_cycles < pt["shadow"].total_cycles)
    assert (walk["shadow"].total_cycles < walk["nested"].total_cycles)
