"""E6 (Figure 6): live migration curves + functional pre-copy."""

from repro.bench import run_e6, run_e6_functional


def test_e6_migration_curves(benchmark, show):
    result = benchmark.pedantic(run_e6, iterations=1, rounds=1)
    show(result)
    raw = result.raw
    rates = sorted(k for k in raw if isinstance(k, int))

    # Pre-copy downtime is monotone-ish in dirty rate and explodes past
    # the link's page rate (~32k pages/s here).
    low = raw[rates[0]]["pre"]
    high = raw[rates[-1]]["pre"]
    assert high.downtime_us > 20 * low.downtime_us
    assert low.converged and not high.converged

    # Post-copy: constant downtime regardless of dirty rate, but a real
    # degradation window.
    post_downtimes = {raw[r]["post"].downtime_us for r in rates}
    assert len(post_downtimes) == 1
    assert all(raw[r]["post"].degraded_time_us > 0 for r in rates)

    # Stop-and-copy downtime equals its total time (the naive baseline)
    # and exceeds pre-copy's downtime everywhere.
    for rate in rates:
        sc = raw[rate]["stop_copy"]
        assert sc.downtime_us == sc.total_time_us
        assert sc.downtime_us > raw[rate]["pre"].downtime_us

    # Pre-copy total time grows with dirty rate (more rounds).
    totals = [raw[r]["pre"].total_time_us for r in rates]
    assert totals == sorted(totals)


def test_e6_functional_live_migration(benchmark, show):
    result = benchmark.pedantic(run_e6_functional, iterations=1, rounds=1)
    show(result)
    mig = result.raw["result"]
    # Iterative rounds tracked the guest's working set; the runner
    # itself asserts end-to-end correctness of the migrated guest.
    assert mig.rounds > 1
    assert mig.round_sizes[0] > 100 * mig.round_sizes[-1]
    assert mig.guest_instructions_during > 0
