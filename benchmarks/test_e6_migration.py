"""E6 (Figure 6): live migration curves + functional pre-copy."""

from repro.bench import run_e6, run_e6_faults, run_e6_functional


def test_e6_migration_curves(benchmark, show):
    result = benchmark.pedantic(run_e6, iterations=1, rounds=1)
    show(result)
    raw = result.raw
    rates = sorted(k for k in raw if isinstance(k, int))

    # Pre-copy downtime is monotone-ish in dirty rate and explodes past
    # the link's page rate (~32k pages/s here).
    low = raw[rates[0]]["pre"]
    high = raw[rates[-1]]["pre"]
    assert high.downtime_us > 20 * low.downtime_us
    assert low.converged and not high.converged

    # Post-copy: constant downtime regardless of dirty rate, but a real
    # degradation window.
    post_downtimes = {raw[r]["post"].downtime_us for r in rates}
    assert len(post_downtimes) == 1
    assert all(raw[r]["post"].degraded_time_us > 0 for r in rates)

    # Stop-and-copy downtime equals its total time (the naive baseline)
    # and exceeds pre-copy's downtime everywhere.
    for rate in rates:
        sc = raw[rate]["stop_copy"]
        assert sc.downtime_us == sc.total_time_us
        assert sc.downtime_us > raw[rate]["pre"].downtime_us

    # Pre-copy total time grows with dirty rate (more rounds).
    totals = [raw[r]["pre"].total_time_us for r in rates]
    assert totals == sorted(totals)


def test_e6_functional_live_migration(benchmark, show):
    result = benchmark.pedantic(run_e6_functional, iterations=1, rounds=1)
    show(result)
    mig = result.raw["result"]
    # Iterative rounds tracked the guest's working set; the runner
    # itself asserts end-to-end correctness of the migrated guest.
    assert mig.rounds > 1
    assert mig.round_sizes[0] > 100 * mig.round_sizes[-1]
    assert mig.guest_instructions_during > 0


def test_e6_fault_curves(benchmark, show):
    result = benchmark.pedantic(run_e6_faults, iterations=1, rounds=1)
    show(result)
    raw = result.raw
    drops = sorted(k for k in raw if isinstance(k, int))
    policy = raw["retry_policy"]

    # Threading a retry policy with no injector must not perturb the
    # model: the zero-drop point is bit-identical to the plain run.
    assert raw["fault_free_identical"]

    # Below the retry budget every drop is absorbed: one retry per
    # drop, capped-exponential backoff, and the migration still lands.
    for n in drops:
        res = raw[n]["result"]
        assert raw[n]["deterministic"]  # seeded replay is byte-stable
        if 0 < n <= policy.max_retries:
            assert res.retries == n
            assert res.backoff_us == policy.cumulative_backoff_cycles(n)
            assert res.stalls == 1
            assert not res.gave_up and res.downtime_us > 0

    # Past the budget the migration is abandoned: guest stays on the
    # source, so no downtime is charged.
    over = [n for n in drops if n > policy.max_retries]
    assert over, "sweep must cross the retry budget"
    for n in over:
        res = raw[n]["result"]
        assert res.gave_up and not res.converged
        assert res.retries == policy.max_retries
        assert res.downtime_us == 0

    # Total time grows with absorbed drops (burned wire time + backoff).
    absorbed = [raw[n]["result"].total_time_us
                for n in drops if n <= policy.max_retries]
    assert absorbed == sorted(absorbed)
