"""Shared experiment plumbing: run a workload in any execution mode."""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core import (
    GuestConfig,
    Hypervisor,
    Machine,
    MMUVirtMode,
    VirtMode,
)
from repro.core.hypervisor import RunOutcome
from repro.core.machine import MachineOutcome
from repro.cpu.assembler import Program
from repro.guest import (
    DiagReport,
    KernelOptions,
    boot_native,
    boot_vm,
    build_kernel,
)
from repro.mem.costs import CostModel
from repro.obs.manifest import build_manifest, register_baseline
from repro.obs.registry import MetricsRegistry
from repro.util.errors import GuestError
from repro.util.table import Table
from repro.util.units import MIB

GUEST_MEMORY = 16 * MIB
HOST_MEMORY = 64 * MIB


def new_run_registry() -> MetricsRegistry:
    """A fresh per-run registry pre-seeded with the baseline counters.

    Every experiment that wants a metrics manifest creates one of these,
    threads it through its hypervisors/migrators/hosts, and stores it on
    its :class:`ExperimentResult` so the CLI can emit the manifest.
    """
    registry = MetricsRegistry()
    register_baseline(registry)
    return registry

#: (label, virt mode, mmu mode, pv kernel) -- the E1 mode matrix.
MODE_MATRIX = [
    ("native", None, None, False),
    ("trap-emulate", VirtMode.TRAP_EMULATE, MMUVirtMode.SHADOW, False),
    ("bin-transl", VirtMode.BINARY_TRANSLATION, MMUVirtMode.SHADOW, False),
    ("paravirt", VirtMode.PARAVIRT, MMUVirtMode.SHADOW, True),
    ("hw+shadow", VirtMode.HW_ASSIST, MMUVirtMode.SHADOW, False),
    ("hw+nested", VirtMode.HW_ASSIST, MMUVirtMode.NESTED, False),
    ("hw+hmode", VirtMode.HW_ASSIST, MMUVirtMode.HMODE, False),
]


@dataclass
class ModeMetrics:
    """Everything measured from one guest run."""

    label: str
    diag: DiagReport
    guest_cycles: int
    vmm_cycles: int
    total_cycles: int
    exits: int
    exit_breakdown: Dict[str, int]
    shadow_fills: int = 0
    shadow_pt_writes: int = 0
    ept_violations: int = 0
    hypercalls: int = 0
    bt_callouts: int = 0
    bt_translated_instructions: int = 0
    bt_block_hits: int = 0
    bt_block_misses: int = 0
    bt_chained: int = 0
    correct: bool = True


@dataclass
class ExperimentResult:
    """A rendered table plus its raw rows for shape assertions."""

    experiment: str
    table: Table
    raw: Dict[str, Any] = field(default_factory=dict)
    #: The run's shared registry, when the experiment threads one.
    metrics: Optional[MetricsRegistry] = None
    #: A pre-built manifest, for sharded experiments whose metrics live
    #: in per-shard registries and arrive already merged+finalized.
    manifest_data: Optional[Dict[str, Any]] = None

    def render(self) -> str:
        return self.table.render()

    def manifest(self, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The run's metrics as a JSON-ready manifest.

        Experiments that did not thread a registry still produce a
        valid (baseline-only) manifest, so ``--json`` works uniformly.
        Sharded experiments set :attr:`manifest_data` instead, and it
        is returned as-is -- its extras were fixed at merge time.
        """
        if self.manifest_data is not None:
            return self.manifest_data
        registry = self.metrics if self.metrics is not None else new_run_registry()
        return build_manifest(registry, experiment=self.experiment, extra=extra)


def run_guest_workload(
    label: str,
    workload: Program,
    virt_mode: Optional[VirtMode],
    mmu_mode: Optional[MMUVirtMode],
    pv: bool,
    costs: Optional[CostModel] = None,
    timer_period: int = 0,
    max_instructions: int = 30_000_000,
    bt_cache: bool = True,
    bt_chaining: bool = True,
    registry: Optional[MetricsRegistry] = None,
) -> ModeMetrics:
    """Boot NanoOS with ``workload`` in the given mode; return metrics."""
    kernel = build_kernel(
        KernelOptions(pv=pv, memory_bytes=GUEST_MEMORY, timer_period=timer_period)
    )
    if virt_mode is None:
        machine = Machine(memory_bytes=GUEST_MEMORY, costs=costs)
        diag = boot_native(machine, kernel, workload, max_instructions)
        if not diag.clean:
            raise GuestError(f"native run unclean: {diag}")
        return ModeMetrics(
            label=label,
            diag=diag,
            guest_cycles=machine.cpu.cycles,
            vmm_cycles=0,
            total_cycles=machine.cpu.cycles,
            exits=0,
            exit_breakdown={},
        )

    hv = Hypervisor(memory_bytes=HOST_MEMORY, costs=costs, registry=registry)
    vm = hv.create_vm(
        GuestConfig(
            name=label,
            memory_bytes=GUEST_MEMORY,
            virt_mode=virt_mode,
            mmu_mode=mmu_mode,
        )
    )
    if vm.bt is not None:
        vm.bt.cache_enabled = bt_cache
        vm.bt.chaining_enabled = bt_chaining
    diag = boot_vm(hv, vm, kernel, workload, max_instructions)
    if not diag.clean:
        raise GuestError(f"{label} run unclean: {diag}")
    cpu = vm.vcpus[0].cpu
    return ModeMetrics(
        label=label,
        diag=diag,
        guest_cycles=cpu.cycles,
        vmm_cycles=vm.stats.vmm_cycles,
        total_cycles=cpu.cycles + vm.stats.vmm_cycles,
        exits=vm.exit_stats.total_exits,
        exit_breakdown=dict(vm.exit_stats.counts),
        shadow_fills=vm.stats.shadow_fills,
        shadow_pt_writes=vm.stats.shadow_pt_writes,
        ept_violations=vm.stats.ept_violations,
        hypercalls=vm.stats.hypercalls,
        bt_callouts=vm.stats.bt_callouts,
        bt_translated_instructions=vm.stats.bt_translated_instructions,
        bt_block_hits=vm.stats.bt_block_hits,
        bt_block_misses=vm.stats.bt_block_misses,
        bt_chained=vm.stats.bt_chained,
        correct=diag.correct_virtualization,
    )
