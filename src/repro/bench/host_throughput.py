"""Host-throughput benchmark: guest-MIPS, interpreter vs. compiled.

Unlike E1-E10, which measure *simulated* cycles (the paper's data), this
bench measures the **simulator itself**: how many guest instructions per
host wall-clock second each execution engine retires. Two comparisons:

* ``native`` rows -- bare-metal NanoOS runs with the closure compiler
  (:mod:`repro.cpu.jit`) off vs. on;
* ``bt`` rows -- binary-translation guests with the per-item block walk
  vs. fused block closures (``BTEngine.compile_enabled``).

Every pair is also a differential test: the simulated cycles, instret,
and workload result must be bit-identical between engines, so the bench
fails loudly if the fast path ever diverges from the oracle. Results are
emitted as ``BENCH_HOST.json`` (schema ``pyvisor.bench.host/1``) for the
CI regression gate, which compares *speedup ratios* (hardware-
independent) against a committed baseline.
"""

import json
import platform
import sys
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.common import (
    GUEST_MEMORY,
    HOST_MEMORY,
    new_run_registry,
)
from repro.core import GuestConfig, Hypervisor, Machine, MMUVirtMode, VirtMode
from repro.cpu.assembler import Program
from repro.guest import KernelOptions, boot_native, boot_vm, build_kernel
from repro.guest import workloads
from repro.obs.manifest import build_manifest
from repro.obs.registry import MetricsRegistry
from repro.util.errors import GuestError
from repro.util.table import Table

BENCH_SCHEMA = "pyvisor.bench.host/1"

#: Default output file name for ``python -m repro perf``.
DEFAULT_OUTPUT = "BENCH_HOST.json"

#: Fraction of the baseline speedup a run may drop to before the gate
#: fails (the ">20% regression" contract).
REGRESSION_TOLERANCE = 0.8

#: (name, quick builder, full builder) -- native workload matrix.
_NATIVE_WORKLOADS: List[Tuple[str, Callable[[], Program], Callable[[], Program]]] = [
    (
        "cpu_bound",
        lambda: workloads.cpu_bound(8000),
        lambda: workloads.cpu_bound(120000),
    ),
    (
        # Full mode runs long enough (~700k instret) that one-time
        # block-compile and boot cost stop dominating the compiled run;
        # the memtouch floor is gated on full mode only for this reason.
        "memtouch",
        lambda: workloads.memtouch(48, 8),
        lambda: workloads.memtouch(192, 512),
    ),
    (
        "syscall_storm",
        lambda: workloads.syscall_storm(250),
        lambda: workloads.syscall_storm(2500),
    ),
]

#: Workloads also run under binary translation (kernel-heavy subset).
_BT_WORKLOADS = ("cpu_bound", "syscall_storm")


@dataclass
class EngineRow:
    """One (workload, engine) measurement."""

    workload: str
    layer: str  # "native" | "bt"
    engine: str  # "interp" | "compiled"
    wall_s: float
    instructions: int
    sim_cycles: int
    guest_mips: float

    def to_json(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "layer": self.layer,
            "engine": self.engine,
            "wall_s": round(self.wall_s, 6),
            "instructions": self.instructions,
            "sim_cycles": self.sim_cycles,
            "guest_mips": round(self.guest_mips, 4),
        }


@dataclass
class HostBenchResult:
    """All measurements plus the JSON payload and rendered tables."""

    quick: bool
    rows: List[EngineRow]
    speedups: Dict[str, float]  # "<layer>/<workload>" -> compiled/interp
    jit_counters: Dict[str, int]
    table: Table
    metrics: Optional[MetricsRegistry] = None
    raw: Dict[str, Any] = field(default_factory=dict)
    #: Top-N cProfile hotspots when the run was profiled (None = off).
    profile: Optional[List[Dict[str, Any]]] = None

    def render(self) -> str:
        return self.table.render()

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": BENCH_SCHEMA,
            "quick": self.quick,
            "host": {
                "python": sys.version.split()[0],
                "implementation": platform.python_implementation(),
                "machine": platform.machine(),
            },
            "rows": [row.to_json() for row in self.rows],
            "speedups": {k: round(v, 4) for k, v in self.speedups.items()},
            "jit": dict(self.jit_counters),
        }
        if self.profile is not None:
            payload["profile"] = self.profile
            if self.metrics is not None:
                payload["manifest"] = build_manifest(
                    self.metrics,
                    experiment="host-throughput",
                    extra={"profile": self.profile},
                )
        return payload

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n")

    def check_baseline(self, baseline: Dict[str, Any]) -> List[str]:
        """Compare speedup ratios against a committed baseline.

        Returns a list of failure strings (empty = pass). Only ratios
        are compared -- absolute guest-MIPS depend on the host machine.
        Floors under ``speedups`` are always gated; floors under
        ``speedups_full`` only gate full (non-quick) runs, for ratios
        that quick runs cannot measure honestly (short quick runs are
        dominated by one-time block-compile cost).
        """
        failures = []
        gated = dict(baseline.get("speedups", {}))
        if not self.quick:
            gated.update(baseline.get("speedups_full", {}))
        for key, floor in sorted(gated.items()):
            got = self.speedups.get(key)
            if got is None:
                failures.append(f"{key}: missing from this run")
                continue
            if got < floor * REGRESSION_TOLERANCE:
                failures.append(
                    f"{key}: speedup {got:.2f}x is more than 20% below "
                    f"the baseline {floor:.2f}x"
                )
        return failures

    def baseline_table(self, baseline: Dict[str, Any]) -> str:
        """Render a floors-vs-measured diff table for every gated row
        (the CI failure artifact: shows *which* floor regressed and by
        how much, not just that one did)."""
        gated = dict(baseline.get("speedups", {}))
        if not self.quick:
            gated.update(baseline.get("speedups_full", {}))
        header = (f"{'workload':>24} | {'floor':>7} | {'min ok':>7} | "
                  f"{'measured':>8} | status")
        lines = [header, "-" * len(header)]
        for key, floor in sorted(gated.items()):
            got = self.speedups.get(key)
            min_ok = floor * REGRESSION_TOLERANCE
            if got is None:
                measured, status = "missing", "FAIL"
            else:
                measured = f"{got:.2f}x"
                status = "ok" if got >= min_ok else "FAIL"
            lines.append(f"{key:>24} | {floor:>6.2f}x | {min_ok:>6.2f}x | "
                         f"{measured:>8} | {status}")
        return "\n".join(lines)


def _measure_native(
    kernel: Program, workload: Program, jit: bool
) -> Tuple[EngineRow, Machine]:
    machine = Machine(memory_bytes=GUEST_MEMORY, jit=jit)
    start = perf_counter()
    diag = boot_native(machine, kernel, workload, max_instructions=200_000_000)
    wall = perf_counter() - start
    if not diag.clean:
        raise GuestError(f"host bench native run unclean: {diag}")
    cpu = machine.cpu
    return (
        EngineRow(
            workload="",
            layer="native",
            engine="compiled" if jit else "interp",
            wall_s=wall,
            instructions=cpu.instret,
            sim_cycles=cpu.cycles,
            guest_mips=cpu.instret / wall / 1e6 if wall > 0 else 0.0,
        ),
        machine,
    )


def _measure_bt(
    kernel: Program, workload: Program, fused: bool
) -> Tuple[EngineRow, Any]:
    hv = Hypervisor(memory_bytes=HOST_MEMORY)
    vm = hv.create_vm(
        GuestConfig(
            name="hostbench",
            memory_bytes=GUEST_MEMORY,
            virt_mode=VirtMode.BINARY_TRANSLATION,
            mmu_mode=MMUVirtMode.SHADOW,
        )
    )
    vm.bt.compile_enabled = fused
    start = perf_counter()
    diag = boot_vm(hv, vm, kernel, workload, max_guest_instructions=200_000_000)
    wall = perf_counter() - start
    if not diag.clean:
        raise GuestError(f"host bench BT run unclean: {diag}")
    cpu = vm.vcpus[0].cpu
    return (
        EngineRow(
            workload="",
            layer="bt",
            engine="compiled" if fused else "interp",
            wall_s=wall,
            instructions=cpu.instret,
            sim_cycles=cpu.cycles,
            guest_mips=cpu.instret / wall / 1e6 if wall > 0 else 0.0,
        ),
        vm,
    )


def _assert_identical(name: str, interp: EngineRow, compiled: EngineRow) -> None:
    """The differential bar: host speed is the only permitted delta."""
    if (interp.instructions, interp.sim_cycles) != (
        compiled.instructions,
        compiled.sim_cycles,
    ):
        raise GuestError(
            f"{name}: compiled engine diverged from the interpreter "
            f"(instret {interp.instructions} vs {compiled.instructions}, "
            f"cycles {interp.sim_cycles} vs {compiled.sim_cycles})"
        )


def _top_hotspots(profiler, top: int) -> List[Dict[str, Any]]:
    """Extract the top-``top`` functions by cumulative time."""
    import pstats

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    hotspots: List[Dict[str, Any]] = []
    for func in stats.fcn_list[:top]:
        _cc, ncalls, tottime, cumtime, _callers = stats.stats[func]
        filename, lineno, name = func
        # Trim host-specific prefixes so manifests diff cleanly across
        # machines.
        short = filename
        if "/repro/" in short:
            short = "repro/" + short.rsplit("/repro/", 1)[1]
        hotspots.append(
            {
                "function": name,
                "file": short,
                "line": lineno,
                "ncalls": ncalls,
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            }
        )
    return hotspots


def run_host_throughput(
    quick: bool = False,
    registry: Optional[MetricsRegistry] = None,
    profile_top: int = 0,
) -> HostBenchResult:
    """Measure guest-MIPS for every engine pair; returns all rows.

    ``profile_top`` > 0 wraps the measurement loops in cProfile and
    attaches that many hotspots (by cumulative time) to the result and
    to the obs run manifest, so a gated regression ships with
    attribution. Profiling skews absolute wall times (both engines
    equally); profiled runs are for diagnosis, not for ratio floors.
    """
    registry = registry if registry is not None else new_run_registry()
    kernel = build_kernel(
        KernelOptions(pv=False, memory_bytes=GUEST_MEMORY, timer_period=0)
    )
    profiler = None
    if profile_top:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    rows: List[EngineRow] = []
    speedups: Dict[str, float] = {}
    jit_counters: Dict[str, int] = {
        "blocks_compiled": 0,
        "blocks_invalidated": 0,
        "fallback_steps": 0,
    }
    results: Dict[str, int] = {}

    for name, quick_builder, full_builder in _NATIVE_WORKLOADS:
        builder = quick_builder if quick else full_builder
        interp_row, _ = _measure_native(kernel, builder(), jit=False)
        compiled_row, machine = _measure_native(kernel, builder(), jit=True)
        interp_row.workload = compiled_row.workload = name
        _assert_identical(f"native/{name}", interp_row, compiled_row)
        rows += [interp_row, compiled_row]
        speedups[f"native/{name}"] = (
            compiled_row.guest_mips / interp_row.guest_mips
            if interp_row.guest_mips
            else 0.0
        )
        for key in jit_counters:
            jit_counters[key] += machine.cpu.jit_stats()[key]
        results[name] = machine.cpu.instret

    bt_names = _BT_WORKLOADS[:1] if quick else _BT_WORKLOADS
    for name, quick_builder, full_builder in _NATIVE_WORKLOADS:
        if name not in bt_names:
            continue
        builder = quick_builder if quick else full_builder
        interp_row, _ = _measure_bt(kernel, builder(), fused=False)
        compiled_row, _vm = _measure_bt(kernel, builder(), fused=True)
        interp_row.workload = compiled_row.workload = name
        _assert_identical(f"bt/{name}", interp_row, compiled_row)
        rows += [interp_row, compiled_row]
        speedups[f"bt/{name}"] = (
            compiled_row.guest_mips / interp_row.guest_mips
            if interp_row.guest_mips
            else 0.0
        )

    hotspots: Optional[List[Dict[str, Any]]] = None
    if profiler is not None:
        profiler.disable()
        hotspots = _top_hotspots(profiler, profile_top)

    scope = registry.scope("host.jit")
    for key, value in jit_counters.items():
        scope.counter(key).inc(value)

    table = Table(
        "Host throughput: guest-MIPS by execution engine",
        [
            "workload", "layer", "engine", "wall s",
            "instructions", "guest-MIPS", "speedup",
        ],
    )
    for row in rows:
        key = f"{row.layer}/{row.workload}"
        table.add_row(
            row.workload,
            row.layer,
            row.engine,
            f"{row.wall_s:.3f}",
            row.instructions,
            f"{row.guest_mips:.3f}",
            f"{speedups[key]:.2f}x" if row.engine == "compiled" else "",
        )
    return HostBenchResult(
        quick=quick,
        rows=rows,
        speedups=speedups,
        jit_counters=jit_counters,
        table=table,
        metrics=registry,
        raw={"results": results},
        profile=hotspots,
    )
