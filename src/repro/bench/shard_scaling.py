"""Shard-scaling benchmark: wall-clock versus worker count.

Runs one fixed sharded cluster configuration at increasing ``--jobs``
and reports wall-clock speedup over the single-worker run, plus the
merged-manifest sha256 per point -- which must be identical at every
point (``parity_ok``), the whole point of the determinism contract.

The payload lands in ``BENCH_SHARD.json``. Speedup is a property of
the machine: the recorded ``cpu_count`` travels with the numbers, and
:meth:`ShardBenchResult.check_baseline` only gates on speedup when the
baseline was measured on a machine with the same core count (a 1-core
CI runner cannot regress a 8-core baseline's parallel speedup).
"""

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.coordinator import ClusterSimConfig, run_sharded_cluster
from repro.util.table import Table

BENCH_SHARD_SCHEMA = "pyvisor.bench.shard/1"

#: A run must keep >= 80% of the baseline's speedup at each jobs count.
REGRESSION_TOLERANCE = 0.8

#: Seed for the scaling measurement; independent of E8s's sweep.
SHARD_BENCH_SEED = 5209


@dataclass
class ShardBenchResult:
    """Scaling points plus the JSON payload and rendered table."""

    quick: bool
    shards: int
    fleet_size: int
    epochs: int
    cpu_count: int
    points: List[Dict[str, Any]]  # {jobs, wall_s, speedup, manifest_sha}
    parity_ok: bool
    table: Table
    raw: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return self.table.render()

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": BENCH_SHARD_SCHEMA,
            "quick": self.quick,
            "shards": self.shards,
            "fleet_size": self.fleet_size,
            "epochs": self.epochs,
            "cpu_count": self.cpu_count,
            "host": {
                "python": sys.version.split()[0],
                "implementation": platform.python_implementation(),
                "machine": platform.machine(),
            },
            "points": [
                {**p, "wall_s": round(p["wall_s"], 4),
                 "speedup": round(p["speedup"], 4)}
                for p in self.points
            ],
            "parity_ok": self.parity_ok,
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.to_json(), indent=2, sort_keys=True)
                     + "\n")

    def check_baseline(self, baseline: Dict[str, Any]) -> List[str]:
        """Gate on manifest parity always; on speedup only same-machine.

        Parity is a correctness property and machine-independent.
        Speedup is hardware: comparing against a baseline recorded on
        a different core count would fail every heterogeneous CI
        runner, so those points are skipped (with no failure). Points
        where the baseline itself saw no speedup (< 1.0x, e.g. any
        jobs > 1 on a single-core machine) are skipped too: there is
        no parallel win to regress, only fork-overhead noise.
        """
        failures: List[str] = []
        if not self.parity_ok:
            failures.append("manifest parity broken across --jobs values")
        if baseline.get("cpu_count") != self.cpu_count:
            return failures
        floors = {p["jobs"]: p["speedup"]
                  for p in baseline.get("points", [])}
        mine = {p["jobs"]: p["speedup"] for p in self.points}
        for jobs, floor in sorted(floors.items()):
            got = mine.get(jobs)
            if got is None:
                failures.append(f"jobs={jobs}: missing from this run")
            elif floor < 1.0:
                continue
            elif got < floor * REGRESSION_TOLERANCE:
                failures.append(
                    f"jobs={jobs}: speedup {got:.2f}x is more than 20% "
                    f"below the baseline {floor:.2f}x")
        return failures


def run_shard_scaling(
    quick: bool = False,
    fleet_size: Optional[int] = None,
    shards: int = 8,
    epochs: Optional[int] = None,
    jobs_list: Optional[Sequence[int]] = None,
) -> ShardBenchResult:
    """Measure wall-clock vs ``jobs`` at a fixed shard count."""
    if fleet_size is None:
        fleet_size = 400 if quick else 4000
    if epochs is None:
        epochs = 3 if quick else 6
    if jobs_list is None:
        jobs_list = (1, 2, 4) if quick else (1, 2, 4, 8)
    config = ClusterSimConfig(
        fleet_size=fleet_size, shards=shards, epochs=epochs,
        seed=SHARD_BENCH_SEED, crash_rate=0.01, arrivals_per_epoch=4)

    cpu_count = os.cpu_count() or 1
    table = Table(
        f"shard scaling: {fleet_size} VMs, {shards} shards, "
        f"{epochs} epochs on {cpu_count} cores"
        f"{' (quick)' if quick else ''}",
        ["jobs", "wall s", "speedup", "manifest sha", "parity"],
    )
    points: List[Dict[str, Any]] = []
    base_wall = None
    base_sha = None
    for jobs in jobs_list:
        report = run_sharded_cluster(config, jobs=jobs, experiment="E8s")
        if base_wall is None:
            base_wall = report.wall_s
            base_sha = report.sha256
        points.append({
            "jobs": jobs,
            "wall_s": report.wall_s,
            "speedup": base_wall / report.wall_s if report.wall_s else 1.0,
            "manifest_sha": report.sha256,
        })
        table.add_row(jobs, round(report.wall_s, 2),
                      f"{points[-1]['speedup']:.2f}x",
                      report.sha256[:12], report.sha256 == base_sha)
    parity_ok = all(p["manifest_sha"] == base_sha for p in points)
    return ShardBenchResult(
        quick=quick, shards=shards, fleet_size=fleet_size, epochs=epochs,
        cpu_count=cpu_count, points=points, parity_ok=parity_ok,
        table=table)
