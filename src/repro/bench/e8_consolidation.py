"""E8 (Figure 8): consolidation density and the power/cost story.

Part A: CPU-bound VMs packed onto a 4-core host -- aggregate throughput
climbs linearly and flattens at the capacity knee while per-VM
throughput and interactive latency degrade past it.

Part B: a 50-VM fleet placed 1:1 on physical hosts versus consolidated
by first-fit decreasing -- hosts used, consolidation ratio, and annual
power+cooling cost saving.
"""

from typing import Dict, List

from repro.bench.common import ExperimentResult
from repro.cluster import (
    ConsolidationSavings,
    Host,
    HostSpec,
    Placement,
    PowerModel,
    VMSpec,
    consolidation_savings,
    host_performance,
    plan_consolidation,
)
from repro.util.chart import ascii_chart
from repro.util.table import Table
from repro.util.units import GIB


def run_e8(
    densities: List[int] = (1, 2, 3, 4, 5, 6, 8),
    fleet_size: int = 50,
) -> ExperimentResult:
    knee_spec = HostSpec(cores=4, cpu_capacity=4.0, memory_bytes=64 * GIB)
    raw: Dict[str, object] = {"knee": {}}
    table = Table(
        "E8a: VMs per 4-core host (1 core demand each)",
        ["VMs/host", "aggregate thpt", "per-VM thpt", "latency factor",
         "saturated"],
    )
    for n in densities:
        host = Host(knee_spec, 0)
        for i in range(n):
            host.place(VMSpec(f"v{i}", cpu_demand=1.0, memory_bytes=1 * GIB,
                              interactive=(i == 0)))
        perf = host_performance(host)
        raw["knee"][n] = perf
        table.add_row(
            n,
            perf.aggregate_throughput,
            perf.throughput["v1" if n > 1 else "v0"],
            perf.latency_factor["v0"],
            perf.saturated,
        )

    # Part B: fleet consolidation.
    fleet_spec = HostSpec(cores=8, cpu_capacity=8.0, memory_bytes=32 * GIB)
    vms = [
        VMSpec(f"vm{i}", cpu_demand=1.0 + (i % 3) * 0.5,
               memory_bytes=(2 + i % 4) * GIB)
        for i in range(fleet_size)
    ]
    before_hosts = []
    for i, vm in enumerate(vms):
        host = Host(fleet_spec, index=1000 + i)
        host.place(vm)
        before_hosts.append(host)
    before = Placement(hosts=before_hosts)
    after = plan_consolidation(vms, fleet_spec, cpu_overcommit=1.5)
    savings = consolidation_savings(before, after, PowerModel())
    raw["savings"] = savings

    fleet_table = Table(
        f"E8b: consolidating {fleet_size} VMs (first-fit decreasing)",
        ["hosts before", "hosts after", "ratio", "kW before", "kW after",
         "annual saving EUR", "per retired host EUR"],
    )
    fleet_table.add_row(
        savings.hosts_before,
        savings.hosts_after,
        savings.consolidation_ratio,
        savings.watts_before / 1000.0,
        savings.watts_after / 1000.0,
        savings.annual_saving,
        savings.saving_per_retired_host,
    )
    result = ExperimentResult("E8", table, raw=raw)
    result.raw["fleet_table"] = fleet_table
    result.raw["chart"] = ascii_chart(
        {
            "aggregate": [
                (n, raw["knee"][n].aggregate_throughput) for n in densities
            ],
            "per-VM": [
                (n, raw["knee"][n].throughput[f"v{min(n - 1, 1)}"])
                for n in densities
            ],
        },
        title="Figure 8: throughput vs VMs per 4-core host",
        x_label="VMs/host",
        y_label="core-units",
    )
    return result
