"""E6 (Figure 6): live migration downtime/total time versus dirty rate.

A 512 MiB VM over a 1 Gbps link (~32k pages/s). Pre-copy downtime stays
in single-digit milliseconds while the dirty rate is below the link's
page rate, then explodes as iterations stop converging; post-copy
downtime is constant (CPU state only) but trades it for a degradation
window; stop-and-copy pays the whole image as downtime (Clark NSDI'05;
Hines VEE'09).

``run_e6_functional`` additionally migrates a *real* instruction-engine
VM mid-workload and reports round sizes and correctness.
"""

from typing import Dict, List

from repro.bench.common import ExperimentResult, GUEST_MEMORY, HOST_MEMORY
from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.migration import (
    LiveMigrator,
    MigrationConfig,
    simulate_postcopy,
    simulate_precopy,
    simulate_stop_and_copy,
)
from repro.sim.kernel import Simulator
from repro.sim.link import NetworkLink
from repro.util.chart import ascii_chart
from repro.util.errors import GuestError
from repro.util.table import Table
from repro.util.units import MIB


def _fresh_link():
    sim = Simulator()
    return NetworkLink(sim, bandwidth_bytes_per_sec=125 * MIB, latency=100)


def run_e6(
    dirty_rates: List[int] = (0, 2000, 8000, 16000, 24000, 32000, 40000),
    vm_pages: int = 131072,
) -> ExperimentResult:
    raw: Dict[int, Dict[str, object]] = {}
    table = Table(
        "E6: 512 MiB VM over 1 Gbps; downtime (ms) and total time (s) vs dirty rate",
        ["dirty pages/s", "pre down", "pre total", "pre rounds", "converged",
         "post down", "post degraded", "s&c down"],
    )
    for rate in dirty_rates:
        cfg = MigrationConfig(vm_pages=vm_pages, dirty_rate_pps=float(rate))
        pre = simulate_precopy(cfg, _fresh_link())
        post = simulate_postcopy(cfg, _fresh_link())
        sc = simulate_stop_and_copy(cfg, _fresh_link())
        raw[rate] = {"pre": pre, "post": post, "stop_copy": sc}
        table.add_row(
            rate,
            pre.downtime_us / 1000.0,
            pre.total_time_us / 1e6,
            pre.rounds,
            pre.converged,
            post.downtime_us / 1000.0,
            post.degraded_time_us / 1e6,
            sc.downtime_us / 1e6,
        )
    result = ExperimentResult("E6", table, raw=raw)
    positive_rates = [r for r in dirty_rates if r > 0]
    result.raw["chart"] = ascii_chart(
        {
            "pre-copy": [
                (r, raw[r]["pre"].downtime_us / 1000.0)
                for r in positive_rates
            ],
            "post-copy": [
                (r, raw[r]["post"].downtime_us / 1000.0)
                for r in positive_rates
            ],
        },
        title="Figure 6: downtime (ms, log y) vs dirty rate",
        x_label="dirty pages/s",
        y_label="downtime ms",
        log_y=True,
    )
    return result


def run_e6_functional(
    virt_mode: VirtMode = VirtMode.HW_ASSIST,
    mmu_mode: MMUVirtMode = MMUVirtMode.NESTED,
    pages: int = 40,
    passes: int = 3000,
) -> ExperimentResult:
    src = Hypervisor(memory_bytes=HOST_MEMORY)
    dst = Hypervisor(memory_bytes=HOST_MEMORY)
    vm = src.create_vm(
        GuestConfig(name="mig-src", memory_bytes=GUEST_MEMORY,
                    virt_mode=virt_mode, mmu_mode=mmu_mode)
    )
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEMORY))
    src.load_program(vm, kernel)
    src.load_program(vm, workloads.memtouch(pages, passes))
    src.reset_vcpu(vm, kernel.entry)
    src.run(vm, max_guest_instructions=100_000)  # get mid-workload

    migrator = LiveMigrator(src, dst, bytes_per_cycle=4.0)
    result = migrator.migrate(vm, quantum_instructions=40_000, max_rounds=6,
                              threshold_pages=4)
    outcome = dst.run(result.dest_vm, max_guest_instructions=80_000_000)
    diag = read_diag(result.dest_vm.guest_mem)
    expected = expected_memtouch(pages, passes)
    if outcome is not RunOutcome.SHUTDOWN or diag.user_result != expected:
        raise GuestError(
            f"functional migration corrupted the guest: outcome={outcome}, "
            f"result={diag.user_result}, expected={expected}"
        )
    table = Table(
        "E6-functional: real pre-copy of a running guest "
        f"({virt_mode.value}/{mmu_mode.value})",
        ["rounds", "round sizes", "downtime cyc", "pages copied",
         "guest instr during", "result correct"],
    )
    table.add_row(
        result.rounds,
        " ".join(str(s) for s in result.round_sizes),
        result.downtime_cycles,
        result.pages_copied,
        result.guest_instructions_during,
        True,
    )
    return ExperimentResult("E6-functional", table, raw={"result": result})
