"""E6 (Figure 6): live migration downtime/total time versus dirty rate.

A 512 MiB VM over a 1 Gbps link (~32k pages/s). Pre-copy downtime stays
in single-digit milliseconds while the dirty rate is below the link's
page rate, then explodes as iterations stop converging; post-copy
downtime is constant (CPU state only) but trades it for a degradation
window; stop-and-copy pays the whole image as downtime (Clark NSDI'05;
Hines VEE'09).

``run_e6_functional`` additionally migrates a *real* instruction-engine
VM mid-workload and reports round sizes and correctness.
"""

from typing import Dict, List, Sequence

from repro.bench.common import (
    ExperimentResult,
    GUEST_MEMORY,
    HOST_MEMORY,
    new_run_registry,
)
from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.faults import FaultInjector, FaultPlan, FaultSpec, RetryPolicy
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.migration import (
    LiveMigrator,
    MigrationConfig,
    simulate_postcopy,
    simulate_precopy,
    simulate_stop_and_copy,
)
from repro.sim.kernel import Simulator
from repro.sim.link import NetworkLink
from repro.sim.shard import parallel_map
from repro.util.chart import ascii_chart
from repro.util.errors import GuestError
from repro.util.table import Table
from repro.util.units import MIB


def _fresh_link():
    sim = Simulator()
    return NetworkLink(sim, bandwidth_bytes_per_sec=125 * MIB, latency=100)


def _e6_point(task):
    """One sweep point; pure in (rate, vm_pages) -- each model gets a
    fresh simulator and link, so points parallelize freely."""
    rate, vm_pages = task
    cfg = MigrationConfig(vm_pages=vm_pages, dirty_rate_pps=float(rate))
    return rate, {
        "pre": simulate_precopy(cfg, _fresh_link()),
        "post": simulate_postcopy(cfg, _fresh_link()),
        "stop_copy": simulate_stop_and_copy(cfg, _fresh_link()),
    }


def _e6_shard(tasks):
    return [_e6_point(t) for t in tasks]


def run_e6(
    dirty_rates: List[int] = (0, 2000, 8000, 16000, 24000, 32000, 40000),
    vm_pages: int = 131072,
    shards: int = 1,
    jobs: int = 1,
) -> ExperimentResult:
    """The dirty-rate sweep, optionally fanned out over workers.

    ``shards`` partitions the sweep points round-robin into
    independently runnable groups and ``jobs`` maps groups over
    processes; both default to the historical inline path, and neither
    changes a byte of the results (points never share state).
    """
    groups = [tuple((rate, vm_pages) for rate in dirty_rates[s::shards])
              for s in range(shards)]
    point_results = [p for group in parallel_map(_e6_shard, groups, jobs=jobs)
                     for p in group]
    by_rate = dict(point_results)

    raw: Dict[int, Dict[str, object]] = {}
    table = Table(
        "E6: 512 MiB VM over 1 Gbps; downtime (ms) and total time (s) vs dirty rate",
        ["dirty pages/s", "pre down", "pre total", "pre rounds", "converged",
         "post down", "post degraded", "s&c down"],
    )
    for rate in dirty_rates:
        pre = by_rate[rate]["pre"]
        post = by_rate[rate]["post"]
        sc = by_rate[rate]["stop_copy"]
        raw[rate] = by_rate[rate]
        table.add_row(
            rate,
            pre.downtime_us / 1000.0,
            pre.total_time_us / 1e6,
            pre.rounds,
            pre.converged,
            post.downtime_us / 1000.0,
            post.degraded_time_us / 1e6,
            sc.downtime_us / 1e6,
        )
    result = ExperimentResult("E6", table, raw=raw)
    positive_rates = [r for r in dirty_rates if r > 0]
    result.raw["chart"] = ascii_chart(
        {
            "pre-copy": [
                (r, raw[r]["pre"].downtime_us / 1000.0)
                for r in positive_rates
            ],
            "post-copy": [
                (r, raw[r]["post"].downtime_us / 1000.0)
                for r in positive_rates
            ],
        },
        title="Figure 6: downtime (ms, log y) vs dirty rate",
        x_label="dirty pages/s",
        y_label="downtime ms",
        log_y=True,
    )
    return result


def run_e6_functional(
    virt_mode: VirtMode = VirtMode.HW_ASSIST,
    mmu_mode: MMUVirtMode = MMUVirtMode.NESTED,
    pages: int = 40,
    passes: int = 3000,
) -> ExperimentResult:
    src = Hypervisor(memory_bytes=HOST_MEMORY)
    dst = Hypervisor(memory_bytes=HOST_MEMORY)
    vm = src.create_vm(
        GuestConfig(name="mig-src", memory_bytes=GUEST_MEMORY,
                    virt_mode=virt_mode, mmu_mode=mmu_mode)
    )
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEMORY))
    src.load_program(vm, kernel)
    src.load_program(vm, workloads.memtouch(pages, passes))
    src.reset_vcpu(vm, kernel.entry)
    src.run(vm, max_guest_instructions=100_000)  # get mid-workload

    migrator = LiveMigrator(src, dst, bytes_per_cycle=4.0)
    result = migrator.migrate(vm, quantum_instructions=40_000, max_rounds=6,
                              threshold_pages=4)
    outcome = dst.run(result.dest_vm, max_guest_instructions=80_000_000)
    diag = read_diag(result.dest_vm.guest_mem)
    expected = expected_memtouch(pages, passes)
    if outcome is not RunOutcome.SHUTDOWN or diag.user_result != expected:
        raise GuestError(
            f"functional migration corrupted the guest: outcome={outcome}, "
            f"result={diag.user_result}, expected={expected}"
        )
    table = Table(
        "E6-functional: real pre-copy of a running guest "
        f"({virt_mode.value}/{mmu_mode.value})",
        ["rounds", "round sizes", "downtime cyc", "pages copied",
         "guest instr during", "result correct"],
    )
    table.add_row(
        result.rounds,
        " ".join(str(s) for s in result.round_sizes),
        result.downtime_cycles,
        result.pages_copied,
        result.guest_instructions_during,
        True,
    )
    return ExperimentResult("E6-functional", table, raw={"result": result})


#: Seed for the E6 fault-curve sweep; independent of E10's so the two
#: experiments' injection schedules never couple.
E6_FAULT_SEED = 2203


def _drop_plan(drops: int) -> FaultPlan:
    """Pin exactly ``drops`` stream drops (plus one round stall)."""
    specs = [FaultSpec("migrate.link_drop", rate=1.0, after=0, count=drops)]
    if drops:
        # One source-side hiccup early on, so the stall path is
        # exercised alongside the drop/retry path.
        specs.append(FaultSpec("migrate.round_stall", rate=1.0, after=0,
                               count=1))
    return FaultPlan(seed=E6_FAULT_SEED, specs=specs)


def run_e6_faults(
    drop_counts: Sequence[int] = (0, 1, 2, 4, 6, 8),
    dirty_rate: float = 8000.0,
    vm_pages: int = 131072,
) -> ExperimentResult:
    """E6-faults: the pre-copy retry/giveup curve under injected drops.

    Sweeps a pinned number of consecutive ``migrate.link_drop`` firings
    against a fixed :class:`RetryPolicy` budget. Below the budget the
    migrator backs off and resumes (total time grows by the burned
    serialization time plus backoff); past it the migration is
    abandoned with the guest still on the source (``gave up``). Every
    faulted point is run twice from the same seed and must replay to a
    byte-identical injection trace and an identical result
    (``deterministic``); the zero-drop point must be bit-identical to
    the fault-free model (``fault-free identical`` in ``raw``).
    """
    policy = RetryPolicy(max_retries=6)
    registry = new_run_registry()
    mig_scope = registry.scope("migration")
    faults_scope = registry.scope("faults")
    cfg = MigrationConfig(vm_pages=vm_pages, dirty_rate_pps=dirty_rate)

    baseline = simulate_precopy(cfg, _fresh_link())
    plain = simulate_precopy(cfg, _fresh_link(), metrics=mig_scope,
                             retry_policy=policy)
    fault_free_identical = plain == baseline

    raw: Dict[int, Dict[str, object]] = {}
    table = Table(
        "E6-faults: pre-copy vs pinned stream drops "
        f"(512 MiB, {dirty_rate:.0f} dirty pages/s, retry budget "
        f"{policy.max_retries}, seed={E6_FAULT_SEED})",
        ["drops", "retries", "backoff ms", "stalls", "total s",
         "downtime ms", "rounds", "gave up", "deterministic"],
    )
    for drops in drop_counts:
        if drops == 0:
            raw[0] = {
                "result": plain,
                "deterministic": fault_free_identical,
                "trace_bytes": b"",
            }
            table.add_row(0, 0, 0.0, 0, plain.total_time_us / 1e6,
                          plain.downtime_us / 1000.0, plain.rounds,
                          False, fault_free_identical)
            continue
        inj = FaultInjector(_drop_plan(drops), metrics=faults_scope)
        res = simulate_precopy(cfg, _fresh_link(), metrics=mig_scope,
                               injector=inj, retry_policy=policy)
        replay_inj = FaultInjector(_drop_plan(drops))
        replay = simulate_precopy(cfg, _fresh_link(), injector=replay_inj,
                                  retry_policy=policy)
        deterministic = (res == replay
                         and inj.trace_bytes() == replay_inj.trace_bytes())
        raw[drops] = {
            "result": res,
            "deterministic": deterministic,
            "trace_bytes": inj.trace_bytes(),
        }
        table.add_row(drops, res.retries, res.backoff_us / 1000.0,
                      res.stalls, res.total_time_us / 1e6,
                      res.downtime_us / 1000.0, res.rounds, res.gave_up,
                      deterministic)
    result = ExperimentResult("E6-faults", table, raw=raw, metrics=registry)
    result.raw["fault_free_identical"] = fault_free_identical
    result.raw["retry_policy"] = policy
    return result
