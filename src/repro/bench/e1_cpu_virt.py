"""E1 (Table 1): CPU virtualization cost and correctness across modes.

``run_e1`` measures the syscall-dense worst case in detail;
``run_e1_workloads`` (Table 1b) normalizes total cycles against native
across three workload classes -- compute-bound, memory-touching, and
syscall-dense -- and reports the geometric-mean overhead per mode, the
single-number summary papers quote.

For each execution mode, run a syscall-heavy guest workload and report
exit counts, cycle breakdown, normalized overhead versus native, and
whether the sensitive-instruction probes passed (Popek-Goldberg).

Expected shape (Adams & Agesen '06, Barham '03):

* native is fastest; every virtualized mode costs more;
* trap-and-emulate has the most exits *and* fails the correctness
  probes (sensitive non-trapping instructions);
* binary translation is correct with far fewer world switches;
* paravirt is correct, with exits only at explicit hypercalls;
* hardware assistance is correct with exits only at I/O.
"""

from typing import Dict

from repro.bench.common import (
    ExperimentResult,
    MODE_MATRIX,
    ModeMetrics,
    new_run_registry,
    run_guest_workload,
)
from repro.guest import workloads
from repro.util.stats import geomean
from repro.util.table import Table

SYSCALLS = 400


def run_e1(syscalls: int = SYSCALLS) -> ExperimentResult:
    workload_builder = lambda: workloads.syscall_storm(syscalls)  # noqa: E731
    registry = new_run_registry()
    rows: Dict[str, ModeMetrics] = {}
    for label, vmode, mmode, pv in MODE_MATRIX:
        rows[label] = run_guest_workload(
            label, workload_builder(), vmode, mmode, pv, registry=registry
        )

    native_cycles = rows["native"].total_cycles
    table = Table(
        f"E1: CPU virtualization, {syscalls} guest syscalls",
        [
            "mode", "exits", "exits/syscall", "guest cyc", "vmm cyc",
            "total cyc", "vs native", "correct",
        ],
    )
    for label, m in rows.items():
        table.add_row(
            label,
            m.exits,
            m.exits / syscalls,
            m.guest_cycles,
            m.vmm_cycles,
            m.total_cycles,
            m.total_cycles / native_cycles,
            m.correct,
        )
    return ExperimentResult("E1", table, raw={"modes": rows, "syscalls": syscalls},
                            metrics=registry)


def run_e1_workloads() -> ExperimentResult:
    """Table 1b: normalized overhead by workload class, with geomean."""
    classes = {
        "compute": lambda: workloads.cpu_bound(8000),
        "memory": lambda: workloads.memtouch(48, 4),
        "syscall": lambda: workloads.syscall_storm(250),
    }
    registry = new_run_registry()
    overheads: Dict[str, Dict[str, float]] = {}
    for wname, builder in classes.items():
        native = run_guest_workload(f"{wname}-native", builder(), None, None,
                                    False)
        per_mode: Dict[str, float] = {}
        for label, vmode, mmode, pv in MODE_MATRIX:
            if label == "native":
                continue
            metrics = run_guest_workload(f"{wname}-{label}", builder(),
                                         vmode, mmode, pv, registry=registry)
            per_mode[label] = metrics.total_cycles / native.total_cycles
        overheads[wname] = per_mode

    mode_labels = [label for label, *_ in MODE_MATRIX if label != "native"]
    table = Table(
        "E1b: total-cycle overhead vs native, by workload class",
        ["mode"] + list(classes) + ["geomean"],
    )
    summary: Dict[str, float] = {}
    for label in mode_labels:
        values = [overheads[w][label] for w in classes]
        summary[label] = geomean(values)
        table.add_row(label, *values, summary[label])
    return ExperimentResult(
        "E1b", table, raw={"overheads": overheads, "geomean": summary},
        metrics=registry,
    )
