"""E5 (Figure 5): proportional-share vCPU scheduling.

Part A: three CPU-bound vCPUs with weights 1:2:4 on one core -- the
credit and stride schedulers deliver shares matching the weights, round
robin does not (the share-error column).

Part B: an interactive vCPU competing with CPU hogs -- the credit
scheduler's BOOST priority (with wake preemption) collapses wake-to-run
latency versus boost-off (Xen credit scheduler; Cherkasova et al.).
"""

from typing import Dict

from repro.sched import (
    CpuBoundWork,
    CreditScheduler,
    InteractiveWork,
    RoundRobinScheduler,
    StrideScheduler,
    VCpuTask,
    run_schedule,
)
from repro.bench.common import ExperimentResult, new_run_registry
from repro.sim.kernel import MSEC, SEC
from repro.util.table import Table


def _hogs(weights):
    return [
        VCpuTask(f"vm{i}", weight=w, workload=CpuBoundWork())
        for i, w in enumerate(weights)
    ]


def run_e5(duration_us: int = 10 * SEC) -> ExperimentResult:
    weights = [1, 2, 4]
    registry = new_run_registry()
    sched_scope = registry.scope("sched")
    raw: Dict[str, object] = {}
    table = Table(
        "E5a: achieved CPU share vs weight (1:2:4, one core)",
        ["scheduler", "vm0", "vm1", "vm2", "share error", "fairness"],
    )
    for name, factory in (
        ("credit", CreditScheduler),
        ("stride", StrideScheduler),
        ("round-robin", RoundRobinScheduler),
    ):
        stats = run_schedule(factory(), _hogs(weights), duration_us,
                             metrics=sched_scope)
        raw[name] = stats
        table.add_row(
            name,
            stats.achieved_share["vm0"],
            stats.achieved_share["vm1"],
            stats.achieved_share["vm2"],
            stats.share_error,
            stats.fairness,
        )

    latency_table = Table(
        "E5b: interactive wake latency under 3 CPU hogs (credit)",
        ["boost", "p50 us", "p95 us", "mean us", "wakeups"],
    )
    for boost in (True, False):
        tasks = _hogs([256, 256, 256]) + [
            VCpuTask(
                "io",
                weight=256,
                workload=InteractiveWork(burst_us=500, block_us=5 * MSEC),
            )
        ]
        stats = run_schedule(
            CreditScheduler(boost=boost), tasks, duration_us // 2,
            metrics=sched_scope,
        )
        lat = stats.wake_latency["io"]
        raw[f"boost={boost}"] = lat
        latency_table.add_row(boost, lat.p50, lat.p95, lat.mean, lat.count)

    result = ExperimentResult("E5", table, raw=raw, metrics=registry)
    result.raw["latency_table"] = latency_table
    return result
