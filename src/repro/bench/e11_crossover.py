"""E11: the software-vs-hardware MMU crossover under H-mode.

Adams & Agesen's finding, reproduced on VISA: whether a software MMU
(shadow paging) or a hardware MMU (H-mode two-stage translation) wins
depends on the guest's page-table modification rate relative to its
raw memory intensity.

* Shadow paging pays per **PT modification** (every guest PTE store
  traps, every INVLPG exits) but its TLB fills are cheap one-stage
  walks of the shadow table.
* H-mode two-stage paging runs PT modifications **natively** (zero
  exits) but every combined-TLB miss pays the two-dimensional walk:
  each guest page-table reference is itself G-stage translated, so a
  miss costs ``guest_refs * mem_ref + gstage_refs * gstage_ref``
  instead of the shadow walker's two references.

The sweep holds memory intensity fixed (``accesses`` LCG-random reads
over a TLB-thrashing working set) and raises the map/unmap churn count,
moving the PT-modification rate from negligible to dominant. Shadow
must win the low-churn end, H-mode the high-churn end, and the raw
result records where the lines cross.
"""

from typing import Sequence, Tuple

from repro.bench.common import (
    ExperimentResult,
    new_run_registry,
    run_guest_workload,
)
from repro.core import MMUVirtMode, VirtMode
from repro.guest import workloads
from repro.obs.manifest import build_manifest
from repro.util.errors import GuestError
from repro.util.table import Table

#: Map/unmap churn counts swept against the fixed access count. The
#: low end is memory-intensity-dominated (shadow territory), the high
#: end is churn-dominated (H-mode territory).
#: NanoOS's frame pool is a bump allocator (unmap does not recycle), so
#: the sweep's top end plus the working-set demand faults must stay
#: inside the pool; 448 churn cycles + 256 demand pages leaves margin.
DEFAULT_SWEEP: Tuple[int, ...] = (8, 48, 192, 448)


def run_e11(maps_sweep: Sequence[int] = DEFAULT_SWEEP,
            accesses: int = 12000, pages: int = 256) -> ExperimentResult:
    registry = new_run_registry()
    table = Table(
        "E11: software vs hardware MMU crossover (hw-assist CPU)",
        [
            "pt mods", "pt-mod rate", "shadow cyc", "hmode cyc",
            "hmode/shadow", "shadow exits", "hmode exits", "winner",
        ],
    )
    points = []
    crossover_maps = None
    crossover_rate = None
    for maps in maps_sweep:
        expected = workloads.expected_pt_mix(maps, accesses, pages)
        metrics = {}
        for mmu_label, mmode in (("shadow", MMUVirtMode.SHADOW),
                                 ("hmode", MMUVirtMode.HMODE)):
            m = run_guest_workload(
                f"mix{maps}-{mmu_label}",
                workloads.pt_mix(maps, accesses, pages),
                VirtMode.HW_ASSIST,
                mmode,
                False,
                registry=registry,
            )
            if m.diag.user_result != expected:
                raise GuestError(
                    f"pt_mix({maps}) under {mmu_label}: exit value "
                    f"{m.diag.user_result} != oracle {expected}"
                )
            metrics[mmu_label] = m
        rate = maps / (maps + accesses)
        shadow, hmode = metrics["shadow"], metrics["hmode"]
        winner = ("shadow" if shadow.total_cycles < hmode.total_cycles
                  else "hmode")
        if winner == "hmode" and crossover_maps is None:
            crossover_maps = maps
            crossover_rate = rate
        table.add_row(
            maps,
            rate,
            shadow.total_cycles,
            hmode.total_cycles,
            hmode.total_cycles / shadow.total_cycles,
            shadow.exits,
            hmode.exits,
            winner,
        )
        points.append({
            "maps": maps,
            "accesses": accesses,
            "pt_mod_rate": rate,
            "shadow_cycles": shadow.total_cycles,
            "hmode_cycles": hmode.total_cycles,
            "shadow_exits": shadow.exits,
            "hmode_exits": hmode.exits,
            "winner": winner,
        })
    raw = {
        "points": points,
        "crossover_maps": crossover_maps,
        "crossover_rate": crossover_rate,
    }
    # The crossover sweep itself rides in the manifest so the CI
    # artifact is self-describing and its byte-reproducibility check
    # covers the experiment's actual finding, not just the counters.
    manifest_data = build_manifest(registry, experiment="E11",
                                   extra={"e11": raw})
    return ExperimentResult("E11", table, raw=raw, metrics=registry,
                            manifest_data=manifest_data)
