"""E7 (Table 7): memory overcommit -- how far each stack stretches.

Model part: a 4 GiB host running 2..12 identical 1 GiB VMs (WSS 40 %,
50 % shareable content). Swap-only collapses as soon as configured
memory exceeds the host; ballooning holds full speed until working sets
no longer fit; balloon + sharing pushes the cliff further out
(Waldspurger OSDI'02).

Functional part: two real VMs, a scan pass, measured frames freed and
COW breaks with both guests still computing correct results.
"""

from typing import Dict, List

from repro.bench.common import ExperimentResult, GUEST_MEMORY
from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.overcommit import PageSharer, PolicyKind, VMDemand, evaluate_policy
from repro.util.errors import GuestError
from repro.util.table import Table
from repro.util.units import GIB, MIB


def run_e7(
    vm_counts: List[int] = (2, 4, 6, 8, 10, 12),
    host_pages: int = (4 * GIB) >> 12,
    vm_pages: int = (1 * GIB) >> 12,
    wss_fraction: float = 0.4,
    shareable: float = 0.5,
) -> ExperimentResult:
    raw: Dict[int, Dict[PolicyKind, object]] = {}
    table = Table(
        "E7: 1 GiB VMs on a 4 GiB host; min per-VM throughput by policy",
        ["VMs", "overcommit", "swap-only", "balloon", "balloon+share",
         "shared saved (MiB)"],
    )
    for n in vm_counts:
        vms = [
            VMDemand(
                name=f"vm{i}",
                configured_pages=vm_pages,
                wss_pages=int(vm_pages * wss_fraction),
                shareable_fraction=shareable,
            )
            for i in range(n)
        ]
        outcomes = {
            kind: evaluate_policy(host_pages, vms, kind)
            for kind in PolicyKind
        }
        raw[n] = outcomes
        table.add_row(
            n,
            outcomes[PolicyKind.BALLOON].overcommit_ratio,
            outcomes[PolicyKind.SWAP_ONLY].min_throughput,
            outcomes[PolicyKind.BALLOON].min_throughput,
            outcomes[PolicyKind.BALLOON_SHARE].min_throughput,
            (outcomes[PolicyKind.BALLOON_SHARE].shared_saved_pages * 4096)
            // MIB,
        )
    return ExperimentResult("E7", table, raw=raw)


def run_e7_functional(pages: int = 16, passes: int = 1500) -> ExperimentResult:
    hv = Hypervisor(memory_bytes=96 * MIB)
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEMORY))
    vms = []
    for i in range(2):
        vm = hv.create_vm(
            GuestConfig(name=f"share{i}", memory_bytes=GUEST_MEMORY,
                        virt_mode=VirtMode.HW_ASSIST,
                        mmu_mode=MMUVirtMode.NESTED)
        )
        hv.load_program(vm, kernel)
        hv.load_program(vm, workloads.memtouch(pages, passes))
        hv.reset_vcpu(vm, kernel.entry)
        hv.run(vm, max_guest_instructions=80_000)
        vms.append(vm)

    free_before = hv.allocator.free_frames
    sharer = PageSharer(hv)
    scan = sharer.scan()
    freed_frames = hv.allocator.free_frames - free_before

    expected = expected_memtouch(pages, passes)
    for vm in vms:
        outcome = hv.run(vm, max_guest_instructions=60_000_000)
        diag = read_diag(vm.guest_mem)
        if outcome is not RunOutcome.SHUTDOWN or diag.user_result != expected:
            raise GuestError(
                f"sharing corrupted {vm.name}: {outcome}, "
                f"result={diag.user_result} != {expected}"
            )

    table = Table(
        "E7-functional: KSM scan over two live 16 MiB VMs",
        ["frames scanned", "pages merged", "frames freed", "MiB saved",
         "COW breaks", "guests correct"],
    )
    table.add_row(
        scan.frames_scanned,
        scan.pages_merged,
        freed_frames,
        (freed_frames * 4096) // MIB,
        sharer.cow_breaks,
        True,
    )
    return ExperimentResult(
        "E7-functional", table,
        raw={"scan": scan, "cow_breaks": sharer.cow_breaks,
             "frames_freed": freed_frames},
    )
