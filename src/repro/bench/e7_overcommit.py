"""E7 (Table 7): memory overcommit -- how far each stack stretches.

Model part: a 4 GiB host running 2..12 identical 1 GiB VMs (WSS 40 %,
50 % shareable content). Swap-only collapses as soon as configured
memory exceeds the host; ballooning holds full speed until working sets
no longer fit; balloon + sharing pushes the cliff further out
(Waldspurger OSDI'02).

Functional part: two real VMs, a scan pass, measured frames freed and
COW breaks with both guests still computing correct results.
"""

from typing import Dict, List, Optional

from repro.bench.common import ExperimentResult, GUEST_MEMORY, new_run_registry
from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.overcommit import (
    HostSwap,
    MemoryPressureController,
    PageSharer,
    PolicyKind,
    VMDemand,
    evaluate_policy,
)
from repro.util.errors import GuestError
from repro.util.table import Table
from repro.util.units import GIB, MIB


def run_e7(
    vm_counts: List[int] = (2, 4, 6, 8, 10, 12),
    host_pages: int = (4 * GIB) >> 12,
    vm_pages: int = (1 * GIB) >> 12,
    wss_fraction: float = 0.4,
    shareable: float = 0.5,
) -> ExperimentResult:
    raw: Dict[int, Dict[PolicyKind, object]] = {}
    table = Table(
        "E7: 1 GiB VMs on a 4 GiB host; min per-VM throughput by policy",
        ["VMs", "overcommit", "swap-only", "balloon", "balloon+share",
         "shared saved (MiB)"],
    )
    for n in vm_counts:
        vms = [
            VMDemand(
                name=f"vm{i}",
                configured_pages=vm_pages,
                wss_pages=int(vm_pages * wss_fraction),
                shareable_fraction=shareable,
            )
            for i in range(n)
        ]
        outcomes = {
            kind: evaluate_policy(host_pages, vms, kind)
            for kind in PolicyKind
        }
        raw[n] = outcomes
        table.add_row(
            n,
            outcomes[PolicyKind.BALLOON].overcommit_ratio,
            outcomes[PolicyKind.SWAP_ONLY].min_throughput,
            outcomes[PolicyKind.BALLOON].min_throughput,
            outcomes[PolicyKind.BALLOON_SHARE].min_throughput,
            (outcomes[PolicyKind.BALLOON_SHARE].shared_saved_pages * 4096)
            // MIB,
        )
    return ExperimentResult("E7", table, raw=raw)


def run_e7_functional(pages: int = 16, passes: int = 1500) -> ExperimentResult:
    hv = Hypervisor(memory_bytes=96 * MIB)
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEMORY))
    vms = []
    for i in range(2):
        vm = hv.create_vm(
            GuestConfig(name=f"share{i}", memory_bytes=GUEST_MEMORY,
                        virt_mode=VirtMode.HW_ASSIST,
                        mmu_mode=MMUVirtMode.NESTED)
        )
        hv.load_program(vm, kernel)
        hv.load_program(vm, workloads.memtouch(pages, passes))
        hv.reset_vcpu(vm, kernel.entry)
        hv.run(vm, max_guest_instructions=80_000)
        vms.append(vm)

    free_before = hv.allocator.free_frames
    sharer = PageSharer(hv)
    scan = sharer.scan()
    freed_frames = hv.allocator.free_frames - free_before

    expected = expected_memtouch(pages, passes)
    for vm in vms:
        outcome = hv.run(vm, max_guest_instructions=60_000_000)
        diag = read_diag(vm.guest_mem)
        if outcome is not RunOutcome.SHUTDOWN or diag.user_result != expected:
            raise GuestError(
                f"sharing corrupted {vm.name}: {outcome}, "
                f"result={diag.user_result} != {expected}"
            )

    table = Table(
        "E7-functional: KSM scan over two live 16 MiB VMs",
        ["frames scanned", "pages merged", "frames freed", "MiB saved",
         "COW breaks", "guests correct"],
    )
    table.add_row(
        scan.frames_scanned,
        scan.pages_merged,
        freed_frames,
        (freed_frames * 4096) // MIB,
        sharer.cow_breaks,
        True,
    )
    return ExperimentResult(
        "E7-functional", table,
        raw={"scan": scan, "cow_breaks": sharer.cow_breaks,
             "frames_freed": freed_frames},
    )


#: Seed for the E7 controller fault replay; independent of E6/E10.
E7C_FAULT_SEED = 2207

#: Host sized so three 16 MiB guests already overcommit configured
#: memory (48 MiB configured on 36 MiB physical = 1.33x).
_E7C_HOST = 36 * MIB
_E7C_VM_PAGES = GUEST_MEMORY >> 12
#: Frames one admission actually consumes (guest pages + EPT tables,
#: with slack); the reclaim target before each create.
_E7C_ADMIT_FRAMES = _E7C_VM_PAGES + 128


def _e7c_fault_plan() -> FaultPlan:
    """Pin one scan stall and one balloon refusal, deterministically."""
    return FaultPlan(seed=E7C_FAULT_SEED, specs=[
        FaultSpec("overcommit.scan_stall", rate=1.0, after=0, count=1),
        FaultSpec("overcommit.balloon_refuse", rate=1.0, after=0, count=1),
    ])


def _e7c_case(
    n_vms: int,
    passes: int,
    closed_loop: bool,
    registry=None,
    injector: Optional[FaultInjector] = None,
) -> Dict[str, object]:
    """Admit and run ``n_vms`` guests under one reclaim policy.

    ``closed_loop=False`` is the static baseline: host swap is the only
    reclaim mechanism, invoked directly when an admission needs frames.
    ``closed_loop=True`` runs the :class:`MemoryPressureController`
    (balloon + sharing first, swap as watermark last resort), ticked
    once per round-robin execution round.
    """
    hv = Hypervisor(memory_bytes=_E7C_HOST, registry=registry)
    hv.injector = injector
    controller = MemoryPressureController(hv) if closed_loop else None
    swap = controller.swap if closed_loop else HostSwap(hv)
    # counter_attr counters live in the (possibly shared) registry:
    # report this case's delta, not the run's cumulative total.
    swap_ins0, swap_outs0 = swap.swap_ins, swap.swap_outs
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEMORY))
    vms = []
    for i in range(n_vms):
        if closed_loop:
            controller.reclaim(_E7C_ADMIT_FRAMES)
        else:
            shortfall = _E7C_ADMIT_FRAMES - hv.allocator.free_frames
            if shortfall > 0:
                swap.evict_some(shortfall)
        vm = hv.create_vm(
            GuestConfig(name=f"oc{i}", memory_bytes=GUEST_MEMORY,
                        virt_mode=VirtMode.HW_ASSIST,
                        mmu_mode=MMUVirtMode.NESTED)
        )
        hv.load_program(vm, kernel)
        hv.load_program(vm, workloads.memtouch(64, passes))
        hv.reset_vcpu(vm, kernel.entry)
        if closed_loop:
            controller.manage(vm)
        else:
            swap.install(vm)
        vms.append(vm)

    outcomes: Dict[str, RunOutcome] = {}
    pending = list(vms)
    while pending:
        still = []
        for vm in pending:
            outcome = hv.run(vm, max_guest_instructions=100_000)
            if outcome is RunOutcome.INSTR_LIMIT:
                still.append(vm)
            else:
                outcomes[vm.name] = outcome
        if closed_loop:
            controller.tick()
        pending = still

    expected = expected_memtouch(64, passes)
    for vm in vms:
        diag = read_diag(vm.guest_mem)
        if outcomes[vm.name] is not RunOutcome.SHUTDOWN \
                or diag.user_result != expected:
            raise GuestError(
                f"overcommit corrupted {vm.name} "
                f"({'controller' if closed_loop else 'swap-only'}): "
                f"{outcomes[vm.name]}, result={diag.user_result} "
                f"!= {expected}"
            )

    per_vm = {vm.name: vm.vcpus[0].cpu.cycles + vm.stats.vmm_cycles
              for vm in vms}
    case = {
        "policy": "controller" if closed_loop else "swap-only",
        "max_cycles": max(per_vm.values()),
        "per_vm_cycles": per_vm,
        "swap_ins": swap.swap_ins - swap_ins0,
        "swap_outs": swap.swap_outs - swap_outs0,
        "correct": True,
    }
    if closed_loop:
        case["ticks"] = controller.ticks
        case["ballooned"] = sum(
            sum(r.inflated.values()) for r in controller.tick_log)
        case["pages_merged"] = sum(
            r.pages_merged for r in controller.tick_log)
        case["tick_log"] = controller.serialized_log()
    return case


def run_e7_controller(quick: bool = False,
                      passes: int = 40) -> ExperimentResult:
    """E7-controller: closed-loop pressure control vs static swap-only.

    Sweeps N identical 16 MiB guests on a 36 MiB host. The swap-only
    arm reclaims admission frames by LRU eviction and pays the 200k-
    cycle swap-in on every refault; the controller arm balloons cold
    zero pages, deduplicates by scanning, and only swaps below the
    free-frame watermark, so its refaults take the cheap demand-zero
    path. The closed loop must strictly dominate on worst-case
    guest-visible cycles at every overcommit ratio.

    Determinism: the first controller case is run twice and must
    produce identical tick logs; a pinned fault plan (one scan stall,
    one balloon refusal) is also replayed to a byte-identical injection
    trace (``fault_replay_identical``).
    """
    vm_counts = (3, 4) if quick else (3, 4, 5, 6)
    registry = new_run_registry()
    host_pages = _E7C_HOST >> 12
    raw: Dict[object, object] = {}
    table = Table(
        "E7-controller: 16 MiB guests on a 36 MiB host; worst-case "
        "guest-visible cycles by reclaim policy",
        ["VMs", "overcommit", "swap-only", "swap-ins", "controller",
         "ballooned", "merged", "ctl swap-ins", "dominates"],
    )
    dominates_all = True
    for n in vm_counts:
        static = _e7c_case(n, passes, closed_loop=False, registry=registry)
        closed = _e7c_case(n, passes, closed_loop=True, registry=registry)
        dominates = closed["max_cycles"] < static["max_cycles"]
        dominates_all &= dominates
        raw[n] = {"swap_only": static, "controller": closed,
                  "dominates": dominates}
        table.add_row(
            n,
            round(n * _E7C_VM_PAGES / host_pages, 2),
            static["max_cycles"],
            static["swap_ins"],
            closed["max_cycles"],
            closed["ballooned"],
            closed["pages_merged"],
            closed["swap_ins"],
            dominates,
        )

    first = vm_counts[0]
    replay = _e7c_case(first, passes, closed_loop=True)
    deterministic = (
        replay["tick_log"] == raw[first]["controller"]["tick_log"]
        and replay["max_cycles"] == raw[first]["controller"]["max_cycles"]
    )

    inj = FaultInjector(_e7c_fault_plan(),
                        metrics=registry.scope("faults"))
    faulted = _e7c_case(first, passes, closed_loop=True, injector=inj)
    replay_inj = FaultInjector(_e7c_fault_plan())
    faulted_replay = _e7c_case(first, passes, closed_loop=True,
                               injector=replay_inj)
    fault_replay_identical = (
        faulted["tick_log"] == faulted_replay["tick_log"]
        and inj.trace_bytes() == replay_inj.trace_bytes()
    )
    stalls = sum(r["scan_stalled"] for r in faulted["tick_log"])
    refusals = sum(r["balloon_refusals"] for r in faulted["tick_log"])

    raw["dominates_all"] = dominates_all
    raw["deterministic"] = deterministic
    raw["fault_replay_identical"] = fault_replay_identical
    raw["faulted"] = {"case": faulted, "scan_stalls": stalls,
                      "balloon_refusals": refusals,
                      "trace_bytes": inj.trace_bytes()}
    table.add_row("—", "faulted", f"stalls={stalls}",
                  f"refusals={refusals}", faulted["max_cycles"],
                  faulted["ballooned"], faulted["pages_merged"],
                  f"det={deterministic}",
                  f"replay={fault_replay_identical}")
    return ExperimentResult("E7-controller", table, raw=raw,
                            metrics=registry)
