"""Experiment runners: one module per reconstructed table/figure.

Each ``run_*`` function executes the experiment deterministically and
returns an :class:`ExperimentResult` holding the rendered table plus
raw rows, so the pytest-benchmark harness can both print the table and
assert the expected *shape* (who wins, where crossovers fall).
"""

from repro.bench.common import ExperimentResult, ModeMetrics, run_guest_workload
from repro.bench.e1_cpu_virt import run_e1, run_e1_workloads
from repro.bench.e2_mmu import run_e2
from repro.bench.e3_tlb import run_e3
from repro.bench.e4_io import run_e4
from repro.bench.e5_sched import run_e5
from repro.bench.e6_migration import run_e6, run_e6_faults, run_e6_functional
from repro.bench.e7_overcommit import (
    run_e7,
    run_e7_controller,
    run_e7_functional,
)
from repro.bench.e8_consolidation import run_e8
from repro.bench.e8_scale import run_e8_scale
from repro.bench.e9_ablation import run_e9_exit_cost, run_e9_bt
from repro.bench.e10_resilience import run_e10, run_e10_cascade
from repro.bench.e11_crossover import run_e11
from repro.bench.host_throughput import HostBenchResult, run_host_throughput
from repro.bench.shard_scaling import ShardBenchResult, run_shard_scaling

__all__ = [
    "HostBenchResult",
    "run_host_throughput",
    "ShardBenchResult",
    "run_shard_scaling",
    "ExperimentResult",
    "ModeMetrics",
    "run_guest_workload",
    "run_e1",
    "run_e1_workloads",
    "run_e2",
    "run_e3",
    "run_e4",
    "run_e5",
    "run_e6",
    "run_e6_faults",
    "run_e6_functional",
    "run_e7",
    "run_e7_controller",
    "run_e7_functional",
    "run_e8",
    "run_e8_scale",
    "run_e9_exit_cost",
    "run_e9_bt",
    "run_e10",
    "run_e10_cascade",
    "run_e11",
]
