"""E4 (Table 4): I/O virtualization -- emulated versus virtio.

Block writes and NIC sends through both device flavours, under
hardware-assisted execution. The emulated disk costs 5 port accesses
(= 5 exits) per request and the emulated NIC 3; virtio posts a batch
and kicks once, so exits-per-request falls as 1/batch (Barham '03,
Russell's virtio paper). Native rows show the same devices with zero
exits -- the overhead is pure virtualization.
"""

from typing import Dict

from repro.bench.common import ExperimentResult, ModeMetrics, run_guest_workload
from repro.core import MMUVirtMode, VirtMode
from repro.guest import workloads
from repro.util.table import Table


def run_e4(requests: int = 64) -> ExperimentResult:
    cases = {
        "blk-emulated": (lambda: workloads.blk_write(requests), requests),
        "blk-virtio-b1": (lambda: workloads.vblk_write(requests, 1), requests),
        "blk-virtio-b4": (
            lambda: workloads.vblk_write(requests // 4, 4), requests),
        "net-emulated": (lambda: workloads.net_send(requests), requests),
        "net-virtio-b8": (
            lambda: workloads.vnet_send(requests // 8, 8), requests),
    }
    raw: Dict[str, Dict[str, ModeMetrics]] = {}
    table = Table(
        f"E4: I/O virtualization, {requests} requests/frames",
        ["device", "io exits", "exits/req", "virt cyc/req", "native cyc/req",
         "overhead"],
    )
    for name, (builder, count) in cases.items():
        native = run_guest_workload(f"{name}-native", builder(), None, None, False)
        virt = run_guest_workload(
            f"{name}-hv", builder(), VirtMode.HW_ASSIST, MMUVirtMode.NESTED, False
        )
        raw[name] = {"native": native, "virt": virt}
        io_exits = sum(
            v for k, v in virt.exit_breakdown.items()
            if k.startswith("io_") or k.startswith("vmcall")
        )
        table.add_row(
            name,
            io_exits,
            io_exits / count,
            virt.total_cycles / count,
            native.total_cycles / count,
            virt.total_cycles / native.total_cycles,
        )
    return ExperimentResult("E4", table, raw={"cases": raw, "requests": requests})
