"""E2 (Table 2): shadow versus nested paging under hardware assistance.

Two workloads expose the trade-off (Adams & Agesen; Bhargava et al.):

* ``pt_stress`` -- maximal page-table update rate. Shadow paging traps
  every guest PT write (plus INVLPG exits); nested paging runs it with
  **zero** MMU exits.
* ``random_walk`` -- a TLB-thrashing working set with *no* PT updates.
  Shadow walks cost 2 memory references per miss; nested 2-D walks
  cost 8, so nested loses here.

The crossover between the two rows is the experiment's finding.
"""

from repro.bench.common import ExperimentResult, run_guest_workload
from repro.core import MMUVirtMode, VirtMode
from repro.guest import workloads
from repro.util.table import Table


def run_e2(pt_cycles: int = 300, walk_pages: int = 256,
           walk_accesses: int = 12000) -> ExperimentResult:
    cases = {
        "pt_stress": lambda: workloads.pt_stress(pt_cycles),
        "random_walk": lambda: workloads.random_walk(walk_pages, walk_accesses),
    }
    raw = {}
    table = Table(
        "E2: MMU virtualization (hardware-assisted CPU)",
        [
            "workload", "mmu", "total cyc", "mmu exits", "pt-write exits",
            "fills/violations", "vs other",
        ],
    )
    for wname, builder in cases.items():
        metrics = {}
        for mmu_label, mmode in (("shadow", MMUVirtMode.SHADOW),
                                 ("nested", MMUVirtMode.NESTED)):
            metrics[mmu_label] = run_guest_workload(
                f"{wname}-{mmu_label}", builder(), VirtMode.HW_ASSIST, mmode, False
            )
        raw[wname] = metrics
        for mmu_label, m in metrics.items():
            other = metrics["nested" if mmu_label == "shadow" else "shadow"]
            mmu_exits = sum(
                v for k, v in m.exit_breakdown.items() if "page_fault" in k
                or "pt" in k or "invlpg" in k
            )
            table.add_row(
                wname,
                mmu_label,
                m.total_cycles,
                mmu_exits,
                m.shadow_pt_writes,
                m.shadow_fills + m.ept_violations,
                m.total_cycles / other.total_cycles,
            )
    return ExperimentResult("E2", table, raw=raw)
