"""E9 (Table 9): ablations of the design parameters DESIGN.md calls out.

Part A: sweep the world-switch cost (``vmexit_cycles``) across an order
of magnitude and show the E1 *ordering* (PV < HW < T&E in total cycles
for a syscall workload; BT insensitive because it takes no hardware
world switches) is stable -- the conclusions do not hinge on the cost
constant.

Part B: binary-translation ablation -- translation-block caching and
block chaining each removed, measuring re-translation work and dispatch
cost (Adams & Agesen's translator structure).
"""

from typing import Dict, List

from repro.bench.common import ExperimentResult, run_guest_workload
from repro.core import MMUVirtMode, VirtMode
from repro.guest import workloads
from repro.mem.costs import CostModel
from repro.util.table import Table


def run_e9_exit_cost(
    exit_costs: List[int] = (300, 600, 1200, 2400, 4800),
    syscalls: int = 150,
) -> ExperimentResult:
    raw: Dict[int, Dict[str, int]] = {}
    table = Table(
        "E9a: total cycles vs world-switch cost (syscall workload)",
        ["exit cyc", "trap-emulate", "paravirt", "hw+nested", "bin-transl",
         "t&e/pv"],
    )
    for cost in exit_costs:
        costs = CostModel().with_(
            vmexit_cycles=cost, hypercall_cycles=int(cost * 0.75)
        )
        row: Dict[str, int] = {}
        for label, vmode, mmode, pv in (
            ("trap-emulate", VirtMode.TRAP_EMULATE, MMUVirtMode.SHADOW, False),
            ("paravirt", VirtMode.PARAVIRT, MMUVirtMode.SHADOW, True),
            ("hw+nested", VirtMode.HW_ASSIST, MMUVirtMode.NESTED, False),
            ("bin-transl", VirtMode.BINARY_TRANSLATION, MMUVirtMode.SHADOW, False),
        ):
            m = run_guest_workload(
                f"e9-{label}-{cost}", workloads.syscall_storm(syscalls),
                vmode, mmode, pv, costs=costs,
            )
            row[label] = m.total_cycles
        raw[cost] = row
        table.add_row(
            cost,
            row["trap-emulate"],
            row["paravirt"],
            row["hw+nested"],
            row["bin-transl"],
            row["trap-emulate"] / row["paravirt"],
        )
    return ExperimentResult("E9a", table, raw=raw)


def run_e9_bt(syscalls: int = 300) -> ExperimentResult:
    raw = {}
    table = Table(
        "E9b: binary-translation ablation (syscall workload)",
        ["config", "total cyc", "translated instr", "block hits",
         "block misses", "chained dispatches"],
    )
    for label, cache, chain in (
        ("full BT", True, True),
        ("no chaining", True, False),
        ("no cache", False, True),
    ):
        m = run_guest_workload(
            f"e9b-{label}", workloads.syscall_storm(syscalls),
            VirtMode.BINARY_TRANSLATION, MMUVirtMode.SHADOW, False,
            bt_cache=cache, bt_chaining=chain,
        )
        raw[label] = m
        table.add_row(
            label,
            m.total_cycles,
            m.bt_translated_instructions,
            m.bt_block_hits,
            m.bt_block_misses,
            m.bt_chained,
        )
    return ExperimentResult("E9b", table, raw=raw)
