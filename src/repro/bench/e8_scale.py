"""E8s: datacenter-scale consolidation on the sharded simulator.

Where E8 measures the consolidation knee on one host, E8s runs the
whole control loop -- demand wobble, host crashes, coordinator-driven
evacuation, DRS rebalancing, admission control -- over fleets up to
10k VMs by partitioning hosts across shards
(:mod:`repro.cluster.coordinator`). The table reports the end state
per fleet size; ``raw['reports']`` keeps the full
:class:`ClusterSimReport` per point, including the merged-manifest
sha256 that the shard-parity CI job byte-compares across ``--jobs``
values.
"""

from typing import Dict, Optional, Sequence

from repro.bench.common import ExperimentResult
from repro.cluster.coordinator import ClusterSimConfig, run_sharded_cluster
from repro.util.table import Table

#: Seed for the scale sweep; independent of every other experiment's.
E8S_SEED = 4099


def _scale_config(fleet_size: int, shards: int, epochs: int) -> ClusterSimConfig:
    return ClusterSimConfig(
        fleet_size=fleet_size,
        shards=shards,
        epochs=epochs,
        seed=E8S_SEED,
        crash_rate=0.01,
        arrivals_per_epoch=4,
    )


def run_e8_scale(
    fleet_sizes: Optional[Sequence[int]] = None,
    shards: int = 8,
    jobs: int = 1,
    epochs: int = 6,
    quick: bool = False,
) -> ExperimentResult:
    """Sweep fleet sizes through the sharded cluster simulation.

    ``shards`` is part of the experiment's identity (it partitions the
    RNG streams); ``jobs`` is pure mechanism and never changes a byte
    of the output. ``quick`` shrinks the sweep for CI.
    """
    if fleet_sizes is None:
        fleet_sizes = (200, 1000) if quick else (200, 1000, 4000, 10000)
    if quick:
        epochs = min(epochs, 4)

    table = Table(
        f"E8s: sharded cluster simulation (shards={shards}, jobs={jobs}, "
        f"epochs={epochs}, seed={E8S_SEED}{', quick' if quick else ''})",
        ["VMs", "hosts", "alive", "resident", "messages", "faults",
         "balancer moves", "wall s", "manifest sha"],
    )
    raw: Dict[str, object] = {"reports": {}, "shards": shards, "jobs": jobs}
    last_report = None
    for fleet_size in fleet_sizes:
        config = _scale_config(fleet_size, shards, epochs)
        report = run_sharded_cluster(config, jobs=jobs, experiment="E8s")
        raw["reports"][fleet_size] = report
        last_report = report
        metrics = report.manifest["metrics"]

        def metric(name: str) -> float:
            snap = metrics.get(name)
            return snap["value"] if snap else 0

        table.add_row(
            fleet_size,
            report.stats["hosts"],
            report.stats["hosts_alive"],
            report.stats["vms_resident"],
            report.stats["messages"],
            int(metric("faults.injected.total")),
            int(metric("cluster.coordinator.balancer.moves")),
            round(report.wall_s, 2),
            report.sha256[:12],
        )

    result = ExperimentResult(
        "E8s", table, raw=raw,
        # The largest point's merged manifest stands for the run; the
        # parity job byte-compares it across --jobs values.
        manifest_data=last_report.manifest if last_report else None,
    )
    return result
