"""E3 (Figure 3): nested-paging walk amplification versus working set.

Sweeps the ``random_walk`` working set across the TLB capacity (64
entries). Under the TLB-coverage point the MMU modes tie; past it,
every access misses and nested paging's 8-reference 2-D walk pulls away
from shadow/native's 2-reference walk -- the curve flattens to the
walk-cost ratio (Bhargava et al., ASPLOS'08).
"""

from typing import Dict, List

from repro.bench.common import ExperimentResult, run_guest_workload
from repro.core import MMUVirtMode, VirtMode
from repro.guest import workloads
from repro.util.chart import ascii_chart
from repro.util.table import Table


def run_e3(
    working_sets: List[int] = (8, 32, 64, 128, 256, 512),
    accesses: int = 10000,
    baseline_accesses: int = 2000,
) -> ExperimentResult:
    """Steady-state cycles/access by differencing two access counts.

    Boot, demand paging, and one-time shadow fills are identical in
    both runs and cancel, leaving the pure translation cost per access.
    """
    delta = accesses - baseline_accesses
    raw: Dict[int, Dict[str, float]] = {}
    table = Table(
        f"E3: steady-state cycles/access vs working set (64-entry TLB)",
        ["pages", "native", "shadow", "nested", "nested/native",
         "nested/shadow"],
    )
    for pages in working_sets:
        row: Dict[str, float] = {}
        for label, vmode, mmode in (
            ("native", None, None),
            ("shadow", VirtMode.HW_ASSIST, MMUVirtMode.SHADOW),
            ("nested", VirtMode.HW_ASSIST, MMUVirtMode.NESTED),
        ):
            big = run_guest_workload(
                f"e3-{label}-{pages}-big",
                workloads.random_walk(pages, accesses),
                vmode, mmode, False,
            )
            small = run_guest_workload(
                f"e3-{label}-{pages}-small",
                workloads.random_walk(pages, baseline_accesses),
                vmode, mmode, False,
            )
            row[label] = (big.total_cycles - small.total_cycles) / delta
        raw[pages] = row
        table.add_row(
            pages,
            row["native"],
            row["shadow"],
            row["nested"],
            row["nested"] / row["native"],
            row["nested"] / row["shadow"],
        )
    result = ExperimentResult("E3", table, raw=raw)
    result.raw["chart"] = ascii_chart(
        {
            mode: [(pages, raw[pages][mode]) for pages in working_sets]
            for mode in ("native", "shadow", "nested")
        },
        title="Figure 3: cycles/access vs working set (log x)",
        x_label="working-set pages",
        y_label="cycles/access",
        log_x=True,
    )
    return result
