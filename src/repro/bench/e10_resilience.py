"""E10: fault injection, detection, and recovery.

Three scenarios, each driven by a seeded, deterministic
:class:`~repro.faults.injector.FaultPlan`:

A. **Migration under link faults.** A real pre-copy migration takes an
   injected stream drop plus two in-flight page corruptions. The
   migrator backs off and resumes from the pending suffix + dirty
   bitmap, so the pages re-sent (corrupt resends only) stay far below
   what a from-scratch restart would re-send; the migrated guest still
   computes the correct result. The same seeded plan replayed twice
   yields a byte-identical injection trace.
B. **Hung-VM detection and micro-reboot.** A ``vcpu.stall`` fault wedges
   the guest (cycles burn, nothing retires); the progress watchdog
   flags the flat-lined instruction counter and the VM is ReHype-style
   micro-rebooted -- hypervisor-private state rebuilt, guest memory and
   registers preserved -- after which the workload runs to the correct
   completion.
C. **Host crash and failover.** One host of a packed fleet dies; every
   stranded VM is re-placed onto the survivors.
"""

from typing import Dict

from repro.bench.common import (
    ExperimentResult,
    GUEST_MEMORY,
    HOST_MEMORY,
    new_run_registry,
)
from repro.cluster import (
    AdmissionError,
    ConstraintSet,
    EvacuationConfig,
    Host,
    HostSpec,
    Placement,
    ResilienceController,
    VMSpec,
    failover,
    first_fit,
)
from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    GuestProgressWatchdog,
    MicroRebooter,
    RetryPolicy,
)
from repro.guest import KernelOptions, build_kernel, read_diag, workloads
from repro.guest.workloads import expected_memtouch
from repro.migration import LiveMigrator
from repro.obs.registry import MetricsRegistry
from repro.sim.shard import parallel_map
from repro.util.errors import GuestError
from repro.util.table import Table
from repro.util.units import GIB

#: One seed drives every scenario; change it and every schedule moves
#: together, reproducibly.
E10_SEED = 1109


def _boot_memtouch(hv: Hypervisor, name: str, pages: int, passes: int):
    vm = hv.create_vm(
        GuestConfig(name=name, memory_bytes=GUEST_MEMORY,
                    virt_mode=VirtMode.HW_ASSIST, mmu_mode=MMUVirtMode.NESTED)
    )
    kernel = build_kernel(KernelOptions(memory_bytes=GUEST_MEMORY))
    hv.load_program(vm, kernel)
    hv.load_program(vm, workloads.memtouch(pages, passes))
    hv.reset_vcpu(vm, kernel.entry)
    return vm


def _migration_plan() -> FaultPlan:
    return FaultPlan(seed=E10_SEED, specs=[
        # Pin one stream drop at the 257th page send and two wire
        # corruptions early in round 0: rate=1.0 with after/count makes
        # the schedule exact, not probabilistic.
        FaultSpec("migration.xfer_drop", rate=1.0, after=256, count=1),
        FaultSpec("migration.page_corrupt", rate=1.0, after=64, count=2),
    ])


def _migrate_once(pages: int, passes: int, injector, registry=None):
    src = Hypervisor(memory_bytes=HOST_MEMORY, registry=registry)
    dst = Hypervisor(memory_bytes=HOST_MEMORY, registry=registry)
    vm = _boot_memtouch(src, "e10-mig", pages, passes)
    src.run(vm, max_guest_instructions=100_000)  # get mid-workload
    migrator = LiveMigrator(src, dst, bytes_per_cycle=4.0, injector=injector,
                            retry_policy=RetryPolicy(max_retries=6))
    result = migrator.migrate(vm, quantum_instructions=40_000, max_rounds=6,
                              threshold_pages=4)
    outcome = dst.run(result.dest_vm, max_guest_instructions=80_000_000)
    diag = read_diag(result.dest_vm.guest_mem)
    return result, outcome, diag


def _migration_scenario(pages: int, passes: int,
                        registry=None) -> Dict[str, object]:
    expected = expected_memtouch(pages, passes)
    faults_scope = registry.scope("faults") if registry is not None else None
    baseline, b_out, b_diag = _migrate_once(pages, passes, None, registry)

    inj = FaultInjector(_migration_plan(), metrics=faults_scope)
    faulted, f_out, f_diag = _migrate_once(pages, passes, inj, registry)
    replay = FaultInjector(_migration_plan(), metrics=faults_scope)
    _migrate_once(pages, passes, replay, registry)

    correct = (
        b_out is RunOutcome.SHUTDOWN and b_diag.user_result == expected
        and f_out is RunOutcome.SHUTDOWN and f_diag.user_result == expected
    )
    if not correct:
        raise GuestError(
            f"E10 migration corrupted the guest: baseline=({b_out}, "
            f"{b_diag.user_result}), faulted=({f_out}, "
            f"{f_diag.user_result}), expected={expected}"
        )
    # A from-scratch restart after the drop would re-send everything
    # already delivered (the 256 pages before the drop) on top of a
    # full second migration.
    restart_pages = 256 + baseline.pages_copied
    return {
        "baseline": baseline,
        "faulted": faulted,
        "correct": correct,
        "resent_pages": faulted.pages_copied - baseline.pages_copied,
        "restart_pages_hypothetical": restart_pages,
        "resume_beats_restart": faulted.pages_copied < restart_pages,
        "deterministic": inj.trace_bytes() == replay.trace_bytes(),
        "trace_bytes": inj.trace_bytes(),
    }


def _watchdog_scenario(pages: int, passes: int,
                       registry=None) -> Dict[str, object]:
    hv = Hypervisor(memory_bytes=HOST_MEMORY, registry=registry)
    vm = _boot_memtouch(hv, "e10-hang", pages, passes)
    hv.injector = FaultInjector(FaultPlan(seed=E10_SEED, specs=[
        # The first run consumes 5 pump opportunities; the stall lands
        # a few pumps into the watched run.
        FaultSpec("vcpu.stall", rate=1.0, after=8, count=1),
    ]), metrics=hv.registry.scope("faults"))
    rebooter = MicroRebooter(hv)

    hv.run(vm, max_guest_instructions=20_000)  # healthy progress first
    rebooter.checkpoint(vm)
    instret_before_hang = vm.vcpus[0].cpu.instret

    watchdog = GuestProgressWatchdog(
        idle_pump_limit=6, metrics=hv.registry.scope("faults.watchdog")
    )
    outcome = hv.run(vm, max_guest_instructions=80_000_000, watchdog=watchdog)
    hung_detected = outcome is RunOutcome.HUNG

    recovered = rebooter.reboot(vm)
    preserved = recovered.vcpus[0].cpu.instret >= instret_before_hang
    final = hv.run(recovered, max_guest_instructions=80_000_000,
                   watchdog=watchdog)
    diag = read_diag(recovered.guest_mem)
    expected = expected_memtouch(pages, passes)
    correct = final is RunOutcome.SHUTDOWN and diag.user_result == expected
    if not (hung_detected and correct):
        raise GuestError(
            f"E10 watchdog scenario failed: hang outcome={outcome}, "
            f"final={final}, result={diag.user_result}, expected={expected}"
        )
    return {
        "hung_detected": hung_detected,
        "hangs": watchdog.hangs_detected,
        "reboots": rebooter.reboots,
        "progress_preserved": preserved,
        "correct": correct,
    }


def _failover_scenario(n_hosts: int = 6, n_vms: int = 12,
                       registry=None) -> Dict[str, object]:
    spec = HostSpec(name="host", cores=8, cpu_capacity=8.0,
                    memory_bytes=16 * GIB)
    cluster = registry.scope("cluster") if registry is not None else None
    hosts = [
        Host(spec, i,
             metrics=(cluster.scope(f"host.{spec.name}-{i}")
                      if cluster is not None else None))
        for i in range(n_hosts)
    ]
    vms = [VMSpec(name=f"vm{i:02d}", cpu_demand=1.0, memory_bytes=2 * GIB)
           for i in range(n_vms)]
    placement = first_fit(vms, hosts)

    injector = FaultInjector(FaultPlan(seed=E10_SEED, specs=[
        # after=0, count=1: the first host polled dies -- the one
        # first-fit packed fullest.
        FaultSpec("host.crash", rate=1.0, after=0, count=1),
    ]), metrics=registry.scope("faults") if registry is not None else None)
    crashed = [h.name for h in hosts if h.maybe_crash(injector)]
    stranded = sum(len(h.vms) for h in hosts if not h.alive)
    report = failover(placement)
    lost_names = set(report.lost_names)
    all_on_survivors = all(
        placement.host_of(vm.name) is not None
        and placement.host_of(vm.name).alive
        for vm in vms if vm.name not in lost_names
    )
    return {
        "crashed": crashed,
        "stranded": stranded,
        "report": report,
        "all_on_survivors": all_on_survivors,
    }


def run_e10(quick: bool = False) -> ExperimentResult:
    pages, passes = (12, 400) if quick else (40, 2000)
    registry = new_run_registry()
    migration = _migration_scenario(pages, passes, registry)
    watchdog = _watchdog_scenario(pages, passes, registry)
    fail = _failover_scenario(registry=registry)

    table = Table(
        "E10: fault injection / detection / recovery "
        f"(seed={E10_SEED}{', quick' if quick else ''})",
        ["scenario", "fault", "detected", "recovered", "detail"],
    )
    faulted = migration["faulted"]
    table.add_row(
        "migration", "link drop + 2 corrupt pages",
        f"{faulted.retries} retries, {faulted.corrupt_pages_detected} crc",
        "resume from dirty bitmap",
        f"resent {migration['resent_pages']} vs "
        f"{migration['restart_pages_hypothetical']} restart; "
        f"deterministic={migration['deterministic']}",
    )
    table.add_row(
        "hung vm", "vcpu.stall", f"watchdog ({watchdog['hangs']} hang)",
        f"micro-reboot x{watchdog['reboots']}",
        f"progress preserved={watchdog['progress_preserved']}, "
        f"result correct={watchdog['correct']}",
    )
    report = fail["report"]
    table.add_row(
        "host crash", f"{', '.join(fail['crashed'])} down",
        f"{fail['stranded']} VMs stranded",
        f"{len(report.recovered)} re-placed, {len(report.lost)} lost",
        f"all on survivors={fail['all_on_survivors']}",
    )
    return ExperimentResult(
        "E10",
        table,
        raw={"migration": migration, "watchdog": watchdog, "failover": fail},
        metrics=registry,
    )


#: Seed for the cascade sweep; independent of E10_SEED so scenario A-C
#: schedules stay untouched when the sweep evolves.
E10_CASCADE_SEED = 1733

#: The cascade fleet: 6 x 16 GiB hosts in 3 racks, 11 two-replica
#: services of 4 GiB VMs (88 GiB of demand on 96 GiB of metal).
_CASCADE_SERVICES = 11
_CASCADE_REPLICAS = ("a", "b")


def _cascade_fleet():
    spec = HostSpec(name="host", cores=8, cpu_capacity=8.0,
                    memory_bytes=16 * GIB)
    hosts = [Host(spec, i, domain=f"rack{i // 2}") for i in range(6)]
    groups = {
        f"svc{s:02d}": tuple(f"svc{s:02d}-{r}" for r in _CASCADE_REPLICAS)
        for s in range(_CASCADE_SERVICES)
    }
    # Replica-major deploy order (every primary before any secondary),
    # so when N+1 admission control refuses the tail, the refusals hit
    # secondaries of services that already run -- not whole services.
    vms = [VMSpec(name=f"svc{s:02d}-{r}", cpu_demand=1.0,
                  memory_bytes=4 * GIB)
           for r in _CASCADE_REPLICAS for s in range(_CASCADE_SERVICES)]
    return hosts, vms, groups


def _cascade_case(k: int, protected: bool,
                  registry=None) -> Dict[str, object]:
    """One sweep point: ``k`` simultaneous crashes + one mid-recovery
    cascade, recovered by a :class:`ResilienceController`."""
    hosts, vms, groups = _cascade_fleet()
    constraints = (
        ConstraintSet(anti_affinity_groups=groups, max_per_domain=1,
                      reserve_failures=1)
        if protected else None
    )
    placement = Placement(hosts=hosts)
    rejected = []
    if protected:
        for vm in vms:
            try:
                placement = first_fit([vm], hosts, constraints=constraints)
            except AdmissionError:
                rejected.append(vm.name)
    else:
        placement = first_fit(vms, hosts)

    # The k fullest hosts die at once (worst case, deterministic ties).
    for host in sorted(hosts, key=lambda h: (-h.memory_used, h.index))[:k]:
        host.fail()

    injector = FaultInjector(FaultPlan(seed=E10_CASCADE_SEED, specs=[
        # One extra host dies while the controller is mid-evacuation:
        # the cascade both configs are (or are not) provisioned for.
        FaultSpec("host.crash", rate=1.0, after=2, count=1),
    ]), metrics=registry.scope("faults") if registry is not None else None)
    controller = ResilienceController(
        placement,
        constraints=constraints,
        evacuate=EvacuationConfig(),
        injector=injector,
        metrics=(registry.scope("cluster.resilience")
                 if registry is not None else None),
    )
    report = controller.run()

    alive_vms = {name for h in hosts if h.alive for name in h.vms}
    services_up = sum(
        1 for members in groups.values()
        if any(m in alive_vms for m in members)
    )
    return {
        "admitted": len(vms) - len(rejected),
        "rejected": rejected,
        "report": report,
        "lost": len(report.lost),
        "services_up": services_up,
        "availability": services_up / len(groups),
        "recovery_s": report.evacuation_time_us / 1e6,
    }


def _cascade_case_with_registry(task):
    """Worker-side sweep point: runs one case against its own fresh
    registry, which the parent folds into the run registry in sweep
    order -- the shared-registry result, reconstructed shard by shard
    (counters add, gauges take the later value, histograms extend)."""
    k, protected = task
    registry = MetricsRegistry()
    case = _cascade_case(k, protected, registry)
    return case, registry


def _cascade_shard(tasks):
    return [_cascade_case_with_registry(t) for t in tasks]


def run_e10_cascade(quick: bool = False, shards: int = 1,
                    jobs: int = 1) -> ExperimentResult:
    """E10-cascade: availability vs simultaneous-failure count.

    For each ``k``, the unconstrained baseline is recovered next to a
    *protected* config (rack anti-affinity + N+1 admission control)
    under an identical cascade plan. Admission control trades ~2 VMs of
    utilization up front for headroom, so the protected fleet must lose
    strictly fewer admitted VMs than the baseline at every ``k >= 2``
    (asserted by the benchmark suite as ``raw['dominates']``).

    Cases are pure in ``(k, protected)``: each runs against a private
    registry, and the parent merges per-case registries in sweep order,
    so ``shards``/``jobs`` fan the sweep out without changing a byte.
    """
    ks = (1, 2) if quick else (1, 2, 3)
    cases = [(k, protected) for k in ks for protected in (False, True)]
    groups = [tuple(cases[s::shards]) for s in range(shards)]
    flat = [r for group in parallel_map(_cascade_shard, groups, jobs=jobs)
            for r in group]
    by_case = {case: result
               for case, result in zip([c for g in groups for c in g], flat)}

    registry = new_run_registry()
    table = Table(
        "E10-cascade: k simultaneous host failures + 1 mid-recovery "
        f"cascade (6 hosts / 3 racks, seed={E10_CASCADE_SEED}"
        f"{', quick' if quick else ''})",
        ["fail k", "config", "admitted", "cascades", "recovered", "lost",
         "svc up", "availability", "recovery s", "verified"],
    )
    raw: Dict[str, object] = {"baseline": {}, "protected": {}}
    for k in ks:
        for label, protected in (("baseline", False), ("protected", True)):
            case, case_registry = by_case[(k, protected)]
            registry.merge(case_registry)
            raw[label][k] = case
            report = case["report"]
            table.add_row(
                k, label, case["admitted"], len(report.cascade_failures),
                len(report.recovered), case["lost"], case["services_up"],
                f"{case['availability']:.0%}", case["recovery_s"],
                report.verified,
            )
    raw["dominates"] = all(
        raw["protected"][k]["lost"] < raw["baseline"][k]["lost"]
        for k in ks if k >= 2
    )
    # Replay one point from the same seed: the schedule must be
    # byte-stable for the sweep to be a measurement, not a dice roll.
    again = _cascade_case(2, True)
    first = raw["protected"][2]["report"]
    raw["deterministic"] = (
        again["report"].moves == first.moves
        and again["report"].lost_names == first.lost_names
        and again["report"].cascade_failures == first.cascade_failures
        and again["report"].evacuation_time_us == first.evacuation_time_us
    )
    return ExperimentResult("E10-cascade", table, raw=raw, metrics=registry)
