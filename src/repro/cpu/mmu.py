"""MMU interface between the interpreter and the memory system.

The CPU calls :meth:`MMUBase.translate` for every fetch, load, and
store. Swapping the MMU object is how the hypervisor interposes on
address translation:

* :class:`BareMMU` -- native execution and hardware-assisted guests with
  nested paging disabled: walks the tables named by PTBR directly.
* ``ShadowMMU`` / ``NestedMMU`` (in :mod:`repro.core.shadow` and
  :mod:`repro.core.nested`) -- virtualized translation.

``translate`` returns ``(physical_address, extra_cycles)``; it raises
:class:`repro.mem.paging.PageFault` for guest-visible faults and may
raise :class:`repro.cpu.exits.VMExit` for faults the VMM must service.
"""

from typing import Tuple

from repro.mem.costs import CostModel
from repro.mem.paging import (
    AccessType,
    PTE_DIRTY,
    PTE_NOEXEC,
    PTE_USER,
    PTE_WRITABLE,
    PageTableWalker,
)
from repro.mem.physmem import PhysicalMemory
from repro.mem.tlb import TLB
from repro.util.units import PAGE_SHIFT

_WD = PTE_WRITABLE | PTE_DIRTY


class MMUBase:
    """Abstract translation interface used by :class:`CPUCore`."""

    def translate(self, va: int, access: AccessType, user: bool) -> Tuple[int, int]:
        """Translate ``va``; return (pa, cycles). May raise PageFault/VMExit."""
        raise NotImplementedError

    def set_root(self, root_pa: int) -> None:
        """Install a new page-table base (CSRW PTBR)."""
        raise NotImplementedError

    def invlpg(self, va: int) -> None:
        """Invalidate one TLB entry (INVLPG)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Invalidate the whole TLB."""
        raise NotImplementedError


class BareMMU(MMUBase):
    """Directly walks the page tables named by the current root.

    This is "the hardware MMU": a TLB in front of a 2-level walker.
    With ``paging_enabled`` False (reset state, before the kernel loads
    PTBR) addresses pass through untranslated, which is how boot code
    runs before enabling paging.
    """

    def __init__(
        self,
        physmem: PhysicalMemory,
        costs: CostModel,
        tlb_entries: int = 64,
    ):
        self.physmem = physmem
        self.costs = costs
        self.walker = PageTableWalker(physmem)
        self.tlb = TLB(tlb_entries)
        self.root_pa = 0
        self.paging_enabled = False

    def translate(self, va: int, access: AccessType, user: bool) -> Tuple[int, int]:
        if not self.paging_enabled:
            return va & 0xFFFFFFFF, 0
        va &= 0xFFFFFFFF
        vpn = va >> PAGE_SHIFT
        # Inlined TLB.lookup (this is the hottest call chain in the
        # whole simulator): same hit conditions, same hit/miss stats,
        # same LRU touch.
        tlb = self.tlb
        pte = tlb._entries.get(vpn)
        if pte is not None and (
            (not user or pte & PTE_USER)
            and (access is not AccessType.WRITE or pte & _WD == _WD)
            and (access is not AccessType.EXEC or not pte & PTE_NOEXEC)
        ):
            tlb._entries.move_to_end(vpn)
            tlb.stats.hits += 1
            return (pte >> PAGE_SHIFT << PAGE_SHIFT) | (va & 0xFFF), self.costs.tlb_hit_cycles
        tlb.stats.misses += 1
        # walk_quick is the allocation-free twin of walker.walk: same
        # counters, same fault order, same A/D write visibility. The
        # frame bits of the returned PTE equal WalkResult.paddr's frame
        # (A/D updates never touch the frame field).
        pte = self.walker.walk_quick(self.root_pa, va, access, user)
        tlb.insert(vpn, pte)
        return (pte >> PAGE_SHIFT << PAGE_SHIFT) | (va & 0xFFF), self.costs.tlb_miss_cycles

    def set_root(self, root_pa: int) -> None:
        self.root_pa = root_pa & ~0xFFF
        self.paging_enabled = True
        self.tlb.flush()

    def invlpg(self, va: int) -> None:
        self.tlb.invalidate((va & 0xFFFFFFFF) >> PAGE_SHIFT)

    def flush(self) -> None:
        self.tlb.flush()
