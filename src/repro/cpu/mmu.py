"""MMU interface between the interpreter and the memory system.

The CPU calls :meth:`MMUBase.translate` for every fetch, load, and
store. Swapping the MMU object is how the hypervisor interposes on
address translation:

* :class:`BareMMU` -- native execution and hardware-assisted guests with
  nested paging disabled: walks the tables named by PTBR directly.
* ``ShadowMMU`` / ``NestedMMU`` (in :mod:`repro.core.shadow` and
  :mod:`repro.core.nested`) -- virtualized translation.

``translate`` returns ``(physical_address, extra_cycles)``; it raises
:class:`repro.mem.paging.PageFault` for guest-visible faults and may
raise :class:`repro.cpu.exits.VMExit` for faults the VMM must service.
"""

from typing import Callable, Optional, Set, Tuple

from repro.cpu.exits import ExitReason, VMExit
from repro.mem.costs import CostModel
from repro.mem.paging import (
    AccessType,
    AddressSpace,
    GStageFault,
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_NOEXEC,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    PageTableWalker,
    TwoStageWalker,
)
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.mem.tlb import TLB
from repro.util.units import PAGE_SHIFT

_WD = PTE_WRITABLE | PTE_DIRTY


class MMUBase:
    """Abstract translation interface used by :class:`CPUCore`."""

    def translate(self, va: int, access: AccessType, user: bool) -> Tuple[int, int]:
        """Translate ``va``; return (pa, cycles). May raise PageFault/VMExit."""
        raise NotImplementedError

    def set_root(self, root_pa: int) -> None:
        """Install a new page-table base (CSRW PTBR)."""
        raise NotImplementedError

    def invlpg(self, va: int) -> None:
        """Invalidate one TLB entry (INVLPG)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Invalidate the whole TLB."""
        raise NotImplementedError


class BareMMU(MMUBase):
    """Directly walks the page tables named by the current root.

    This is "the hardware MMU": a TLB in front of a 2-level walker.
    With ``paging_enabled`` False (reset state, before the kernel loads
    PTBR) addresses pass through untranslated, which is how boot code
    runs before enabling paging.
    """

    def __init__(
        self,
        physmem: PhysicalMemory,
        costs: CostModel,
        tlb_entries: int = 64,
    ):
        self.physmem = physmem
        self.costs = costs
        self.walker = PageTableWalker(physmem)
        self.tlb = TLB(tlb_entries)
        self.root_pa = 0
        self.paging_enabled = False

    def translate(self, va: int, access: AccessType, user: bool) -> Tuple[int, int]:
        if not self.paging_enabled:
            return va & 0xFFFFFFFF, 0
        va &= 0xFFFFFFFF
        vpn = va >> PAGE_SHIFT
        # Inlined TLB.lookup (this is the hottest call chain in the
        # whole simulator): same hit conditions, same hit/miss stats,
        # same LRU touch.
        tlb = self.tlb
        pte = tlb._entries.get(vpn)
        if pte is not None and (
            (not user or pte & PTE_USER)
            and (access is not AccessType.WRITE or pte & _WD == _WD)
            and (access is not AccessType.EXEC or not pte & PTE_NOEXEC)
        ):
            tlb._entries.move_to_end(vpn)
            tlb.stats.hits += 1
            return (pte >> PAGE_SHIFT << PAGE_SHIFT) | (va & 0xFFF), self.costs.tlb_hit_cycles
        tlb.stats.misses += 1
        # walk_quick is the allocation-free twin of walker.walk: same
        # counters, same fault order, same A/D write visibility. The
        # frame bits of the returned PTE equal WalkResult.paddr's frame
        # (A/D updates never touch the frame field).
        pte = self.walker.walk_quick(self.root_pa, va, access, user)
        tlb.insert(vpn, pte)
        return (pte >> PAGE_SHIFT << PAGE_SHIFT) | (va & 0xFFF), self.costs.tlb_miss_cycles

    def set_root(self, root_pa: int) -> None:
        self.root_pa = root_pa & ~0xFFF
        self.paging_enabled = True
        self.tlb.flush()

    def invlpg(self, va: int) -> None:
        self.tlb.invalidate((va & 0xFFFFFFFF) >> PAGE_SHIFT)

    def flush(self) -> None:
        self.tlb.flush()


class HModeMMU(MMUBase):
    """Hardware two-stage translation for H-mode guests.

    The architected "hardware" MMU of the H-mode extension: guest VA ->
    guest PA through the guest's own tables, guest PA -> host PA through
    a host-owned G-stage table, both walked by the
    :class:`~repro.mem.paging.TwoStageWalker` with combined translations
    cached in one TLB. The guest keeps PTBR/INVLPG native (no MMU
    exits); the host programs the G-stage exactly like an EPT, so this
    class deliberately duck-types :class:`~repro.core.nested.NestedMMU`'s
    host-control surface (``ept``/``ept_map``/``ept_unmap``/
    ``write_protect_gfn``/``unprotect_gfn``) and raises the same
    ``ept_violation``/``dirty_log`` exits -- demand paging, ballooning,
    dirty logging and post-copy compose unchanged. It lives in the CPU
    package because H-mode makes two-stage translation part of the
    architecture, not a VMM construction.
    """

    def __init__(
        self,
        host_physmem: PhysicalMemory,
        host_allocator: FrameAllocator,
        guest_mem,
        costs: CostModel,
        tlb_entries: int = 64,
    ):
        self.physmem = host_physmem
        self.costs = costs
        self.guest_mem = guest_mem
        self.tlb = TLB(tlb_entries)
        #: The G-stage table (gPA -> hPA), host-owned.
        self.gstage = AddressSpace(host_physmem, host_allocator)
        self.walker = TwoStageWalker(host_physmem)
        self.guest_root: Optional[int] = None
        #: gfns whose G-stage entry is write-protected for dirty logging.
        self.write_protected_gfns: Set[int] = set()
        #: Optional fault-injection hook (``hmode.gstage_stall``):
        #: called once per two-stage TLB miss, returns extra cycles.
        self.stall_fn: Optional[Callable[[], int]] = None

        self.two_stage_walks = 0
        self.walk_mem_refs = 0  # guest page-table entry reads
        self.gstage_mem_refs = 0  # G-stage page-table entry reads

    # -- G-stage management (host side, NestedMMU-compatible) ----------------

    @property
    def ept(self) -> AddressSpace:
        """The G-stage table under its EPT-compatible name."""
        return self.gstage

    def ept_map(self, gfn: int, hfn: int, writable: bool = True) -> None:
        flags = PTE_PRESENT | PTE_USER | (PTE_WRITABLE if writable else 0)
        self.gstage.map(gfn << PAGE_SHIFT, hfn << PAGE_SHIFT, flags)

    def ept_unmap(self, gfn: int) -> None:
        self.gstage.unmap(gfn << PAGE_SHIFT)
        self.tlb.flush()  # conservatively drop combined translations

    def write_protect_gfn(self, gfn: int) -> None:
        pte = self.gstage.lookup(gfn << PAGE_SHIFT)
        if pte is None:
            return
        self.write_protected_gfns.add(gfn)
        self.gstage.protect(gfn << PAGE_SHIFT, (pte & 0xFFF) & ~PTE_WRITABLE)
        self.tlb.flush()

    def unprotect_gfn(self, gfn: int) -> None:
        self.write_protected_gfns.discard(gfn)
        pte = self.gstage.lookup(gfn << PAGE_SHIFT)
        if pte is not None:
            self.gstage.protect(gfn << PAGE_SHIFT, (pte & 0xFFF) | PTE_WRITABLE)

    # -- MMUBase interface ----------------------------------------------------

    def translate(self, va: int, access: AccessType, user: bool) -> Tuple[int, int]:
        va &= 0xFFFFFFFF
        vpn = va >> PAGE_SHIFT
        pte = self.tlb.lookup(vpn, access, user)
        if pte is not None:
            return (
                (pte >> PAGE_SHIFT << PAGE_SHIFT) | (va & 0xFFF),
                self.costs.tlb_hit_cycles,
            )
        self.two_stage_walks += 1
        stall = self.stall_fn() if self.stall_fn is not None else 0
        costs = self.costs
        if self.guest_root is None:
            # Guest paging off: VA is a gPA; one G-stage walk.
            try:
                hpa, refs = self.walker.gstage_walk(
                    self.gstage.root_pa, va, access
                )
            except GStageFault as fault:
                raise self._gstage_exit(fault) from None
            flags = PTE_PRESENT | PTE_USER | PTE_ACCESSED
            if access is AccessType.WRITE:
                flags |= PTE_WRITABLE | PTE_DIRTY
            self.tlb.insert(vpn, ((hpa >> PAGE_SHIFT) << PAGE_SHIFT) | flags)
            self.gstage_mem_refs += refs
            return hpa, (
                costs.tlb_hit_cycles + refs * costs.gstage_ref_cycles + stall
            )

        try:
            res = self.walker.walk(
                self.gstage.root_pa, self.guest_root, va, access, user
            )
        except GStageFault as fault:
            raise self._gstage_exit(fault) from None
        flags = PTE_PRESENT | PTE_ACCESSED
        flags |= res.combined & PTE_USER
        flags |= res.pte & PTE_NOEXEC
        if access is AccessType.WRITE:
            # Lazy-W: cache write permission only once D is set, so the
            # next write after a dirty-log round re-walks.
            flags |= PTE_WRITABLE | PTE_DIRTY
        self.tlb.insert(
            vpn, ((res.hpaddr >> PAGE_SHIFT) << PAGE_SHIFT) | flags
        )
        self.walk_mem_refs += res.guest_refs
        self.gstage_mem_refs += res.gstage_refs
        return res.hpaddr, (
            costs.tlb_hit_cycles
            + res.guest_refs * costs.mem_ref_cycles
            + res.gstage_refs * costs.gstage_ref_cycles
            + stall
        )

    def set_root(self, root_pa: int) -> None:
        """Guest PTBR write: entirely guest-local under two-stage paging."""
        self.guest_root = root_pa & ~0xFFF
        self.tlb.flush()

    def invlpg(self, va: int) -> None:
        self.tlb.invalidate((va & 0xFFFFFFFF) >> PAGE_SHIFT)

    def flush(self) -> None:
        self.tlb.flush()

    def destroy(self) -> None:
        self.gstage.destroy()
        self.tlb.flush()

    # -- internals -------------------------------------------------------------

    def _gstage_exit(self, fault: GStageFault) -> VMExit:
        """Map a G-stage fault onto the architected exit kinds."""
        gfn = fault.gpa >> PAGE_SHIFT
        kind = (
            "dirty_log"
            if fault.present and gfn in self.write_protected_gfns
            else "ept_violation"
        )
        return VMExit(
            ExitReason.PAGE_FAULT, kind=kind,
            gpa=fault.gpa, gfn=gfn, access=fault.access,
        )
