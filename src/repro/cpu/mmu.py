"""MMU interface between the interpreter and the memory system.

The CPU calls :meth:`MMUBase.translate` for every fetch, load, and
store. Swapping the MMU object is how the hypervisor interposes on
address translation:

* :class:`BareMMU` -- native execution and hardware-assisted guests with
  nested paging disabled: walks the tables named by PTBR directly.
* ``ShadowMMU`` / ``NestedMMU`` (in :mod:`repro.core.shadow` and
  :mod:`repro.core.nested`) -- virtualized translation.

``translate`` returns ``(physical_address, extra_cycles)``; it raises
:class:`repro.mem.paging.PageFault` for guest-visible faults and may
raise :class:`repro.cpu.exits.VMExit` for faults the VMM must service.
"""

from typing import Tuple

from repro.mem.costs import CostModel
from repro.mem.paging import AccessType, PageTableWalker
from repro.mem.physmem import PhysicalMemory
from repro.mem.tlb import TLB
from repro.util.units import PAGE_SHIFT


class MMUBase:
    """Abstract translation interface used by :class:`CPUCore`."""

    def translate(self, va: int, access: AccessType, user: bool) -> Tuple[int, int]:
        """Translate ``va``; return (pa, cycles). May raise PageFault/VMExit."""
        raise NotImplementedError

    def set_root(self, root_pa: int) -> None:
        """Install a new page-table base (CSRW PTBR)."""
        raise NotImplementedError

    def invlpg(self, va: int) -> None:
        """Invalidate one TLB entry (INVLPG)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Invalidate the whole TLB."""
        raise NotImplementedError


class BareMMU(MMUBase):
    """Directly walks the page tables named by the current root.

    This is "the hardware MMU": a TLB in front of a 2-level walker.
    With ``paging_enabled`` False (reset state, before the kernel loads
    PTBR) addresses pass through untranslated, which is how boot code
    runs before enabling paging.
    """

    def __init__(
        self,
        physmem: PhysicalMemory,
        costs: CostModel,
        tlb_entries: int = 64,
    ):
        self.physmem = physmem
        self.costs = costs
        self.walker = PageTableWalker(physmem)
        self.tlb = TLB(tlb_entries)
        self.root_pa = 0
        self.paging_enabled = False

    def translate(self, va: int, access: AccessType, user: bool) -> Tuple[int, int]:
        if not self.paging_enabled:
            return va & 0xFFFFFFFF, 0
        vpn = (va & 0xFFFFFFFF) >> PAGE_SHIFT
        pte = self.tlb.lookup(vpn, access, user)
        if pte is not None:
            return (pte >> PAGE_SHIFT << PAGE_SHIFT) | (va & 0xFFF), self.costs.tlb_hit_cycles
        result = self.walker.walk(self.root_pa, va, access, user)
        self.tlb.insert(vpn, result.pte)
        cycles = self.costs.tlb_hit_cycles + result.mem_refs * self.costs.mem_ref_cycles
        return result.paddr, cycles

    def set_root(self, root_pa: int) -> None:
        self.root_pa = root_pa & ~0xFFF
        self.paging_enabled = True
        self.tlb.flush()

    def invlpg(self, va: int) -> None:
        self.tlb.invalidate((va & 0xFFFFFFFF) >> PAGE_SHIFT)

    def flush(self) -> None:
        self.tlb.flush()
