"""The VISA interpreter core.

One :class:`CPUCore` executes instructions against a pluggable MMU and
port bus, charging cycles from a :class:`~repro.mem.costs.CostModel`.
Virtualization interposes through a :class:`VirtPolicy`: every
architecturally sensitive point (traps, CSR access, I/O, HLT, VMCALL,
INVLPG) first offers the event to the policy, which can

* return :data:`NATIVE` -- the CPU applies bare-hardware semantics;
* return a replacement value / handled marker -- the policy emulated the
  event against virtual state;
* raise :class:`~repro.cpu.exits.VMExit` -- a world switch to the VMM.

With ``policy=None`` the core is exactly a bare machine; this is the
"native" baseline in experiment E1.
"""

import enum
from dataclasses import dataclass
from itertools import islice
from typing import Dict, List, Optional, Set, Tuple

from repro.cpu.exits import ExitReason, VMExit
from repro.cpu.isa import (
    CSR,
    Cause,
    Instruction,
    MODE_KERNEL,
    MODE_USER,
    Op,
    PUBLIC_CSRS,
    decode,
)
from repro.cpu.mmu import BareMMU, MMUBase
from repro.mem.costs import CostModel
from repro.mem.paging import AccessType, PageFault
from repro.util.errors import GuestError

#: Sentinel returned by policy hooks meaning "apply native semantics".
NATIVE = object()
#: Sentinel returned by policy hooks meaning "event fully handled".
HANDLED = object()

#: Decode-cache sizing: evict the oldest ``_DECODE_EVICT`` entries once
#: the cache passes ``_DECODE_CACHE_MAX`` instead of dropping everything.
_DECODE_CACHE_MAX = 65536
_DECODE_EVICT = 8192

_READONLY_CSRS = frozenset(
    {int(CSR.MODE), int(CSR.CYCLES), int(CSR.INSTRET), int(CSR.CPUID)}
)

#: IRQ delivery priority (first match wins).
_IRQ_PRIORITY = (Cause.IRQ_TIMER, Cause.IRQ_DEVICE)


@dataclass(frozen=True)
class TrapInfo:
    """A trap that is about to be (or was) delivered."""

    cause: Cause
    value: int
    epc: int


class StopReason(enum.Enum):
    HALT = "halt"
    INSTR_LIMIT = "instr_limit"
    CYCLE_LIMIT = "cycle_limit"
    VMEXIT = "vmexit"
    #: An attached EventSchedule fired with ``exit_on_fire`` set: the
    #: caller (a VMM pump) gets control to inject before re-entry.
    EVENT = "event"


@dataclass
class RunResult:
    """Outcome of one :meth:`CPUCore.run` call."""

    stop: StopReason
    instructions: int
    cycles: int
    exit: Optional[VMExit] = None


class VirtPolicy:
    """Default policy: everything native. VMM policies override hooks.

    Hooks may raise :class:`VMExit`; any other return contract is given
    per method. ``cpu`` is the calling core.
    """

    def trap(self, cpu: "CPUCore", info: TrapInfo, ins: Optional[Instruction]):
        """A trap is about to be delivered to the guest vector."""
        return NATIVE

    def csr_read(self, cpu: "CPUCore", csr: int, user: bool):
        """Return the value to load, or NATIVE."""
        return NATIVE

    def csr_write(self, cpu: "CPUCore", csr: int, value: int):
        """Return HANDLED if emulated, or NATIVE."""
        return NATIVE

    def io(self, cpu: "CPUCore", is_in: bool, port: int, value: int):
        """For IN return the value read; for OUT return HANDLED; or NATIVE."""
        return NATIVE

    def vmcall(self, cpu: "CPUCore", num: int):
        """Return HANDLED / a result, or NATIVE (VMCALL is then illegal)."""
        return NATIVE

    def hlt(self, cpu: "CPUCore"):
        """Return HANDLED to swallow the halt, or NATIVE to stop the loop."""
        return NATIVE

    def invlpg(self, cpu: "CPUCore", va: int):
        """Return HANDLED if emulated, or NATIVE."""
        return NATIVE

    def sensitive(self, cpu: "CPUCore", op: Op):
        """User-mode STI/CLI. Return HANDLED to emulate, NATIVE to ignore."""
        return NATIVE


class CPUCore:
    """One VISA hardware thread."""

    def __init__(
        self,
        mmu: MMUBase,
        costs: Optional[CostModel] = None,
        port_bus=None,
        cpu_id: int = 0,
        jit: Optional[bool] = None,
    ):
        self.mmu = mmu
        self.costs = costs or CostModel()
        self.port_bus = port_bus
        self.policy: Optional[VirtPolicy] = None

        self.regs: List[int] = [0] * 16
        self.pc = 0
        self.csr: List[int] = [0] * 16
        self.csr[CSR.CPUID] = cpu_id
        self.cycles = 0
        self.instret = 0
        self.pending_irqs = set()
        self.halted = False
        #: Optional :class:`~repro.devices.schedule.EventSchedule`:
        #: asynchronous device events keyed on this core's retire count,
        #: fired at exact instruction edges by every run loop. None
        #: means no schedule (the common case).
        self.events = None
        #: Budget ceilings published for self-looping compiled blocks:
        #: absolute instret/cycles values past which a block must return
        #: to the dispatcher instead of looping in place. Set per run by
        #: :meth:`_run_compiled`; the sentinel means "no budget".
        self._loop_stop = 1 << 62
        self._cycle_stop = 1 << 62

        self._decode_cache: Dict[Tuple[int, int], Instruction] = {}
        #: pfn -> decode-cache keys living in that frame (for targeted
        #: invalidation when a store lands on cached code).
        self._decode_frames: Dict[int, Set[Tuple[int, int]]] = {}
        #: Frames holding cached decodes and/or compiled blocks; the
        #: physmem write watcher fires :meth:`_on_code_write` for these.
        self._code_pfns: Set[int] = set()
        #: True/False = explicit; None = default on. The compiled path
        #: additionally requires a plain BareMMU and no policy.
        self.jit_enabled = True if jit is None else jit
        self._jit = None  # lazily: BlockJIT, or False if unsupported
        physmem = getattr(mmu, "physmem", None)
        if physmem is not None and hasattr(physmem, "watch_writes"):
            physmem.watch_writes(self._code_pfns, self._on_code_write)

    # -- architectural helpers ----------------------------------------------

    @property
    def mode(self) -> int:
        return self.csr[CSR.MODE]

    @property
    def user_mode(self) -> bool:
        return self.csr[CSR.MODE] == MODE_USER

    def set_mode(self, mode: int) -> None:
        self.csr[CSR.MODE] = mode

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = value & 0xFFFFFFFF

    def assert_irq(self, cause: Cause) -> None:
        """Latch an interrupt for delivery at the next instruction edge."""
        if cause not in (Cause.IRQ_TIMER, Cause.IRQ_DEVICE):
            raise ValueError(f"{cause} is not an interrupt cause")
        self.pending_irqs.add(cause)
        self.halted = False

    def reset(self, pc: int) -> None:
        """Architectural reset: kernel mode, paging off, IRQs clear."""
        self.regs = [0] * 16
        self.pc = pc & 0xFFFFFFFF
        cpu_id = self.csr[CSR.CPUID]
        self.csr = [0] * 16
        self.csr[CSR.CPUID] = cpu_id
        self.csr[CSR.MODE] = MODE_KERNEL
        self.pending_irqs.clear()
        self.halted = False

    # -- memory access (through the MMU) -------------------------------------

    def load_u32(self, va: int) -> int:
        pa, cyc = self.mmu.translate(va, AccessType.READ, self.user_mode)
        self.cycles += cyc
        return self.mmu.physmem.read_u32(pa)

    def store_u32(self, va: int, value: int) -> None:
        pa, cyc = self.mmu.translate(va, AccessType.WRITE, self.user_mode)
        self.cycles += cyc
        self.mmu.physmem.write_u32(pa, value)

    def load_u8(self, va: int) -> int:
        pa, cyc = self.mmu.translate(va, AccessType.READ, self.user_mode)
        self.cycles += cyc
        return self.mmu.physmem.read_u8(pa)

    def store_u8(self, va: int, value: int) -> None:
        pa, cyc = self.mmu.translate(va, AccessType.WRITE, self.user_mode)
        self.cycles += cyc
        self.mmu.physmem.write_u8(pa, value)

    # -- trap machinery -----------------------------------------------------

    def deliver_trap(self, info: TrapInfo) -> None:
        """Unconditionally vector a trap into the (guest) kernel.

        Public because VMMs use it to *inject* events (reflected traps,
        virtual interrupts) exactly the way hardware event injection
        works on VM entry.
        """
        vbar = self.csr[CSR.VBAR]
        if vbar == 0:
            if self.policy is not None:
                raise VMExit(ExitReason.TRIPLE_FAULT, guest_pc=self.pc,
                             cause=info.cause, value=info.value)
            raise GuestError(
                f"triple fault: trap {info.cause.name} with no vector "
                f"installed (pc={self.pc:#x}, value={info.value:#x})"
            )
        self.csr[CSR.ESTATUS] = self.csr[CSR.MODE] | (self.csr[CSR.IE] << 1)
        self.csr[CSR.MODE] = MODE_KERNEL
        self.csr[CSR.IE] = 0
        self.csr[CSR.EPC] = info.epc & 0xFFFFFFFF
        self.csr[CSR.ECAUSE] = int(info.cause)
        self.csr[CSR.EVAL] = info.value & 0xFFFFFFFF
        self.pc = vbar
        self.cycles += self.costs.trap_cycles

    def _trap(self, cause: Cause, value: int, epc: int,
              ins: Optional[Instruction] = None) -> None:
        info = TrapInfo(cause, value, epc)
        if self.policy is not None:
            outcome = self.policy.trap(self, info, ins)
            if outcome is HANDLED:
                return
            assert outcome is NATIVE, f"bad trap-hook return {outcome!r}"
        self.deliver_trap(info)

    # -- fetch/decode ---------------------------------------------------------

    def fetch(self, va: int) -> Instruction:
        """Fetch and decode the instruction at ``va`` (charges MMU cycles)."""
        pa, cyc = self.mmu.translate(va, AccessType.EXEC, self.user_mode)
        self.cycles += cyc
        word = self.mmu.physmem.read_u32(pa)
        cached = self._decode_cache.get((pa, word))
        if cached is not None and not cached.has_imm32:
            return cached
        imm_word = 0
        if (word >> 24) & 0x80:
            imm_va = va + 4
            if (va & 0xFFF) + 8 > 0x1000:
                imm_pa, cyc2 = self.mmu.translate(
                    imm_va, AccessType.EXEC, self.user_mode
                )
                self.cycles += cyc2
            else:
                imm_pa = pa + 4
            imm_word = self.mmu.physmem.read_u32(imm_pa)
        key = (pa, word)
        cached = self._decode_cache.get(key)
        if cached is not None and cached.imm32 == (imm_word & 0xFFFFFFFF):
            return cached
        ins = decode(word, imm_word)
        if len(self._decode_cache) > _DECODE_CACHE_MAX:
            self._evict_decode_entries()
        self._decode_cache[key] = ins
        pfn = pa >> 12
        frames = self._decode_frames.get(pfn)
        if frames is None:
            frames = self._decode_frames[pfn] = set()
            self._code_pfns.add(pfn)
        frames.add(key)
        return ins

    def _evict_decode_entries(self) -> None:
        """Drop the oldest decode entries (dict preserves insert order)."""
        cache = self._decode_cache
        frames = self._decode_frames
        for key in list(islice(iter(cache), _DECODE_EVICT)):
            del cache[key]
            pfn = key[0] >> 12
            keys = frames.get(pfn)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del frames[pfn]
                    self._unwatch_pfn_if_unused(pfn)

    def _unwatch_pfn_if_unused(self, pfn: int) -> None:
        if pfn in self._decode_frames:
            return
        jit = self._jit
        if jit and pfn in jit._frame_keys:
            return
        self._code_pfns.discard(pfn)

    def _on_code_write(self, pfn: int) -> None:
        """Physmem write watcher: a store landed on cached code."""
        keys = self._decode_frames.pop(pfn, None)
        if keys:
            cache = self._decode_cache
            for key in keys:
                cache.pop(key, None)
        jit = self._jit
        if jit:
            jit.invalidate_pfn(pfn)
        self._code_pfns.discard(pfn)

    # -- execution -------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction (or deliver one pending interrupt)."""
        if self.csr[CSR.IE] and self.pending_irqs:
            for cause in _IRQ_PRIORITY:
                if cause in self.pending_irqs:
                    self.pending_irqs.discard(cause)
                    self._trap(cause, 0, epc=self.pc)
                    return
        pc = self.pc
        try:
            ins = self.fetch(pc)
        except PageFault as fault:
            self.cycles += self.costs.instr_cycles
            if pc == self.csr[CSR.VBAR] and not self.user_mode:
                # The kernel-mode fetch of the trap vector itself faulted:
                # delivering PF_EXEC would re-enter the vector with
                # identical translation state and fault again, forever
                # (so run() would never terminate -- no instruction ever
                # retires). Same terminal condition as a trap with no
                # vector installed.
                if self.policy is not None:
                    raise VMExit(ExitReason.TRIPLE_FAULT, guest_pc=pc,
                                 cause=Cause.PF_EXEC, value=fault.vaddr)
                raise GuestError(
                    f"triple fault: PF_EXEC fetching the trap vector "
                    f"(pc={pc:#x}, value={fault.vaddr:#x})"
                )
            self._trap(Cause.PF_EXEC, fault.vaddr, epc=pc)
            return
        self.cycles += self.costs.instr_cycles
        self.execute(ins)

    def execute(self, ins: Instruction) -> None:
        """Execute one decoded instruction at the current pc.

        Exposed (not underscored) because the binary translator drives
        it directly for innocuous instructions.
        """
        self.instret += 1
        pc = self.pc
        next_pc = (pc + ins.length) & 0xFFFFFFFF
        op = ins.op
        regs = self.regs

        if op.value <= Op.MOVI.value:  # ALU / moves
            if op is Op.MOVI:
                self.write_reg(ins.rd, ins.imm32)
            elif op is Op.MOV:
                self.write_reg(ins.rd, regs[ins.ra])
            elif op is Op.NOP:
                pass
            else:
                a = regs[ins.ra]
                is_imm, bsrc = ins.operand_b
                b = bsrc if is_imm else regs[bsrc]
                value = self._alu(op, a, b, pc)
                if value is None:  # DIV0 trap was raised
                    return
                self.write_reg(ins.rd, value)
            self.pc = next_pc
            return

        if op.value <= Op.STB.value:  # loads/stores
            addr = (regs[ins.ra] + ins.simm12) & 0xFFFFFFFF
            try:
                if op is Op.LD:
                    self.write_reg(ins.rd, self.load_u32(addr))
                elif op is Op.ST:
                    self.store_u32(addr, regs[ins.rb])
                elif op is Op.LDB:
                    self.write_reg(ins.rd, self.load_u8(addr))
                else:
                    self.store_u8(addr, regs[ins.rb] & 0xFF)
            except PageFault as fault:
                cause = (
                    Cause.PF_WRITE
                    if fault.access is AccessType.WRITE
                    else Cause.PF_READ
                )
                self._trap(cause, fault.vaddr, epc=pc, ins=ins)
                return
            except VMExit:
                # The monitor services the exit (shadow fill, dirty
                # log, PT-write emulation) and the instruction either
                # re-executes or is completed by the emulator; either
                # way this attempt did not retire. Compiled blocks
                # restore the same boundary state on their exception
                # path, keeping instret bit-identical across engines.
                self.instret -= 1
                raise
            self.pc = next_pc
            return

        if op.value <= Op.BGEU.value:  # control transfer
            self._control(ins, op, next_pc)
            return

        self._system(ins, op, pc, next_pc)

    def run(
        self,
        max_instructions: Optional[int] = None,
        max_cycles: Optional[int] = None,
        cycle_guard: Optional[int] = None,
    ) -> RunResult:
        """Run until halt, a limit, or a VM exit.

        Dispatches to the compiled-block engine when it can reproduce
        the reference semantics bit-for-bit (plain BareMMU, no policy,
        no cycle budget); otherwise runs the reference interpreter loop.

        ``cycle_guard`` is a coarse safety net against guests that burn
        cycles without retiring instructions (trap-delivery livelock):
        unlike ``max_cycles`` it does not demote the core to the
        reference interpreter, and the compiled engine only honours it
        at block boundaries. A guard trip returns
        :data:`StopReason.CYCLE_LIMIT`; the precise stop state is *not*
        part of the bit-identical interp/JIT contract (the differential
        fuzzer compares guard trips by class only).
        """
        if self.jit_enabled and max_cycles is None and self.policy is None:
            jit = self._jit
            if jit is None:
                jit = self._jit_setup()
            if jit:
                return self._run_compiled(jit, max_instructions, cycle_guard)
        return self._run_interp(max_instructions, max_cycles, cycle_guard)

    def _jit_setup(self):
        """Probe once whether this core supports compiled blocks."""
        if type(self.mmu) is BareMMU:
            from repro.cpu.jit import BlockJIT

            self._jit = BlockJIT(self)
        else:
            self._jit = False
        return self._jit

    def _run_compiled(
        self,
        jit,
        max_instructions: Optional[int],
        cycle_guard: Optional[int] = None,
    ) -> RunResult:
        """Block-at-a-time loop; falls back to :meth:`step` per slow case."""
        jit.check_costs()
        start_instr = self.instret
        start_cycles = self.cycles
        limit = max_instructions
        events = self.events
        limit_stop = start_instr + limit if limit is not None else 1 << 62
        # Self-looping closures honour _loop_stop at every loop edge, so
        # folding the next event edge into it is the irq-poll guard: the
        # closure returns to this dispatcher exactly at the due edge.
        self._loop_stop = (
            min(limit_stop, events.next_due) if events is not None
            else limit_stop
        )
        self._cycle_stop = (
            start_cycles + cycle_guard if cycle_guard is not None else 1 << 62
        )
        lookup = jit.lookup
        step = self.step
        csr = self.csr
        ie = int(CSR.IE)
        mo = int(CSR.MODE)
        while True:
            if events is not None and self.instret >= events.next_due:
                events.fire_due(self.instret)
                self._loop_stop = min(limit_stop, events.next_due)
            if cycle_guard is not None and (
                self.cycles - start_cycles >= cycle_guard
            ):
                return RunResult(
                    StopReason.CYCLE_LIMIT,
                    self.instret - start_instr,
                    self.cycles - start_cycles,
                )
            if self.halted:
                if csr[ie] and self.pending_irqs:
                    self.halted = False
                else:
                    return RunResult(
                        StopReason.HALT,
                        self.instret - start_instr,
                        self.cycles - start_cycles,
                    )
            try:
                if csr[ie] and self.pending_irqs:
                    if limit is not None and (
                        self.instret - start_instr >= limit
                    ):
                        return RunResult(
                            StopReason.INSTR_LIMIT,
                            self.instret - start_instr,
                            self.cycles - start_cycles,
                        )
                    step()
                    continue
                if limit is None:
                    blk = lookup(self.pc, csr[mo])
                    if blk is None or (
                        events is not None
                        and blk[1] > events.next_due - self.instret
                    ):
                        # No straight-line block may retire past a due
                        # event edge: fall back to stepping so the edge
                        # lands between instructions, like the oracle.
                        step()
                    else:
                        blk[0](self)
                else:
                    done = self.instret - start_instr
                    if done >= limit:
                        return RunResult(
                            StopReason.INSTR_LIMIT,
                            done,
                            self.cycles - start_cycles,
                        )
                    blk = lookup(self.pc, csr[mo])
                    if blk is None or blk[1] > limit - done or (
                        events is not None
                        and blk[1] > events.next_due - self.instret
                    ):
                        step()
                    else:
                        blk[0](self)
            except VMExit as exit_:
                return RunResult(
                    StopReason.VMEXIT,
                    self.instret - start_instr,
                    self.cycles - start_cycles,
                    exit=exit_,
                )

    def jit_stats(self) -> Dict[str, int]:
        """Host-compiler counters (all zero when the JIT never engaged)."""
        stats = {
            "enabled": int(self.jit_enabled),
            "active": int(bool(self._jit)),
            "decode_cache_entries": len(self._decode_cache),
            "blocks_compiled": 0,
            "blocks_invalidated": 0,
            "fallback_steps": 0,
            "blocks_cached": 0,
            "ic_hits": 0,
            "pc_cache_entries": 0,
        }
        if self._jit:
            stats.update(self._jit.stats())
        return stats

    def _run_interp(
        self,
        max_instructions: Optional[int] = None,
        max_cycles: Optional[int] = None,
        cycle_guard: Optional[int] = None,
    ) -> RunResult:
        """The reference interpreter loop (the correctness oracle)."""
        start_instr = self.instret
        start_cycles = self.cycles
        if cycle_guard is not None and (
            max_cycles is None or cycle_guard < max_cycles
        ):
            max_cycles = cycle_guard
        events = self.events
        while True:
            if events is not None and self.instret >= events.next_due:
                # The architected delivery rule: an event due at retire
                # edge N is raised after instruction N retires and, if
                # unmasked, delivered (inside step) before the fetch of
                # N+1. Firing precedes the halt check so a raise can
                # wake a halted core.
                if events.fire_due(self.instret) and events.exit_on_fire:
                    return RunResult(
                        StopReason.EVENT,
                        self.instret - start_instr,
                        self.cycles - start_cycles,
                    )
            if self.halted:
                if self.csr[CSR.IE] and self.pending_irqs:
                    self.halted = False
                else:
                    return RunResult(
                        StopReason.HALT,
                        self.instret - start_instr,
                        self.cycles - start_cycles,
                    )
            if max_instructions is not None and (
                self.instret - start_instr >= max_instructions
            ):
                return RunResult(
                    StopReason.INSTR_LIMIT,
                    self.instret - start_instr,
                    self.cycles - start_cycles,
                )
            if max_cycles is not None and (
                self.cycles - start_cycles >= max_cycles
            ):
                return RunResult(
                    StopReason.CYCLE_LIMIT,
                    self.instret - start_instr,
                    self.cycles - start_cycles,
                )
            try:
                self.step()
            except VMExit as exit_:
                return RunResult(
                    StopReason.VMEXIT,
                    self.instret - start_instr,
                    self.cycles - start_cycles,
                    exit=exit_,
                )

    # -- opcode groups -----------------------------------------------------

    def _alu(self, op: Op, a: int, b: int, pc: int) -> Optional[int]:
        if op is Op.ADD:
            return (a + b) & 0xFFFFFFFF
        if op is Op.SUB:
            return (a - b) & 0xFFFFFFFF
        if op is Op.AND:
            return a & b
        if op is Op.OR:
            return a | b
        if op is Op.XOR:
            return a ^ b
        if op is Op.SHL:
            return (a << (b & 31)) & 0xFFFFFFFF
        if op is Op.SHR:
            return (a & 0xFFFFFFFF) >> (b & 31)
        if op is Op.SAR:
            return (_signed(a) >> (b & 31)) & 0xFFFFFFFF
        if op is Op.SLT:
            return 1 if _signed(a) < _signed(b) else 0
        if op is Op.SLTU:
            return 1 if (a & 0xFFFFFFFF) < (b & 0xFFFFFFFF) else 0
        if op is Op.MUL:
            self.cycles += self.costs.mul_extra_cycles
            return (a * b) & 0xFFFFFFFF
        if op is Op.DIVU or op is Op.REMU:
            self.cycles += self.costs.div_extra_cycles
            if b == 0:
                self._trap(Cause.DIV0, 0, epc=pc)
                return None
            return (a // b if op is Op.DIVU else a % b) & 0xFFFFFFFF
        raise AssertionError(f"not an ALU op: {op}")

    def _control(self, ins: Instruction, op: Op, next_pc: int) -> None:
        regs = self.regs
        if op is Op.JAL:
            self.write_reg(ins.rd, next_pc)
            self.pc = ins.imm32
            return
        if op is Op.JALR:
            target = regs[ins.ra]
            self.write_reg(ins.rd, next_pc)
            self.pc = target & 0xFFFFFFFF
            return
        a, b = regs[ins.ra], regs[ins.rb]
        if op is Op.BEQ:
            taken = a == b
        elif op is Op.BNE:
            taken = a != b
        elif op is Op.BLT:
            taken = _signed(a) < _signed(b)
        elif op is Op.BGE:
            taken = _signed(a) >= _signed(b)
        elif op is Op.BLTU:
            taken = a < b
        else:  # BGEU
            taken = a >= b
        self.pc = ins.imm32 if taken else next_pc

    def _system(self, ins: Instruction, op: Op, pc: int, next_pc: int) -> None:
        user = self.user_mode
        policy = self.policy

        if op is Op.SYSCALL:
            # EPC points past the instruction so IRET resumes after it.
            self._trap(Cause.SYSCALL, ins.simm12 & 0xFFF, epc=next_pc, ins=ins)
            return
        if op is Op.BRK:
            self._trap(Cause.BREAK, 0, epc=next_pc, ins=ins)
            return
        if op is Op.VMCALL:
            if policy is not None:
                outcome = policy.vmcall(self, ins.simm12 & 0xFFF)
                if outcome is not NATIVE:
                    self.pc = next_pc
                    return
            self._trap(Cause.ILLEGAL, 0, epc=pc, ins=ins)
            return

        if op is Op.STI or op is Op.CLI:
            if user:
                # Sensitive, non-trapping: silently ignored in user mode
                # (the Popek-Goldberg violation), unless a policy fixes it.
                if policy is not None:
                    policy.sensitive(self, op)
                self.pc = next_pc
                return
            self.csr[CSR.IE] = 1 if op is Op.STI else 0
            self.pc = next_pc
            return

        if op is Op.CSRR:
            self._csr_read(ins, pc, next_pc, user)
            return
        if op is Op.CSRW:
            self._csr_write(ins, pc, next_pc, user)
            return

        # Remaining ops are privileged: trap from user mode.
        if user:
            self._trap(Cause.PRIV, int(op), epc=pc, ins=ins)
            return

        if op is Op.IRET:
            estatus = self.csr[CSR.ESTATUS]
            self.csr[CSR.MODE] = estatus & 1
            self.csr[CSR.IE] = (estatus >> 1) & 1
            self.pc = self.csr[CSR.EPC]
            self.cycles += self.costs.iret_cycles
            return
        if op is Op.HLT:
            if policy is not None:
                outcome = policy.hlt(self)
                if outcome is HANDLED:
                    self.pc = next_pc
                    return
            self.pc = next_pc
            self.halted = True
            return
        if op is Op.INVLPG:
            va = self.regs[ins.ra]
            if policy is not None:
                outcome = policy.invlpg(self, va)
                if outcome is HANDLED:
                    self.pc = next_pc
                    return
            self.mmu.invlpg(va)
            self.pc = next_pc
            return
        if op is Op.OUT or op is Op.IN:
            self._io(ins, op, next_pc)
            return
        raise AssertionError(f"unhandled system op {op}")

    def _csr_read(self, ins: Instruction, pc: int, next_pc: int, user: bool) -> None:
        csr = ins.simm12 & 0xFFF
        try:
            is_public = CSR(csr) in PUBLIC_CSRS
        except ValueError:
            is_public = False
        if user and not is_public:
            # Non-public CSR from user mode: privileged trap.
            self._trap(Cause.PRIV, int(Op.CSRR), epc=pc, ins=ins)
            return
        if self.policy is not None:
            outcome = self.policy.csr_read(self, csr, user)
            if outcome is not NATIVE:
                self.write_reg(ins.rd, int(outcome) & 0xFFFFFFFF)
                self.pc = next_pc
                return
        if csr == CSR.CYCLES:
            value = self.cycles & 0xFFFFFFFF
        elif csr == CSR.INSTRET:
            value = self.instret & 0xFFFFFFFF
        elif 0 <= csr < len(self.csr):
            value = self.csr[csr]
        else:
            self._trap(Cause.ILLEGAL, csr, epc=pc, ins=ins)
            return
        self.write_reg(ins.rd, value)
        self.pc = next_pc

    def _csr_write(self, ins: Instruction, pc: int, next_pc: int, user: bool) -> None:
        csr = ins.simm12 & 0xFFF
        value = self.regs[ins.ra]
        if user:
            self._trap(Cause.PRIV, int(Op.CSRW), epc=pc, ins=ins)
            return
        if self.policy is not None:
            outcome = self.policy.csr_write(self, csr, value)
            if outcome is HANDLED:
                self.pc = next_pc
                return
        if csr in _READONLY_CSRS or not 0 <= csr < len(self.csr):
            self._trap(Cause.ILLEGAL, csr, epc=pc, ins=ins)
            return
        self.csr[csr] = value & 0xFFFFFFFF
        if csr == CSR.PTBR:
            self.mmu.set_root(value)
        self.pc = next_pc

    def _io(self, ins: Instruction, op: Op, next_pc: int) -> None:
        port = ins.simm12 & 0xFFF
        self.cycles += self.costs.io_port_cycles
        if op is Op.OUT:
            value = self.regs[ins.ra]
            if self.policy is not None:
                outcome = self.policy.io(self, False, port, value)
                if outcome is HANDLED:
                    self.pc = next_pc
                    return
            if self.port_bus is not None:
                self.port_bus.io_out(port, value)
            self.pc = next_pc
            return
        # IN
        if self.policy is not None:
            outcome = self.policy.io(self, True, port, 0)
            if outcome is not NATIVE:
                self.write_reg(ins.rd, int(outcome) & 0xFFFFFFFF)
                self.pc = next_pc
                return
        value = self.port_bus.io_in(port) if self.port_bus is not None else 0
        self.write_reg(ins.rd, value & 0xFFFFFFFF)
        self.pc = next_pc


def _signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value & 0x80000000 else value
