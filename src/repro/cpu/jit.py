"""Host-side block compiler: guest basic blocks become Python closures.

The interpreter pays a per-instruction host tax -- fetch, two dict
probes, an ``Op`` dispatch chain -- for every simulated instruction.
This module applies the binary-translation idea one level down: decode a
guest basic block **once**, then emit a single specialized Python
function for it with operands, immediates and dispatch resolved at
compile time. Constant cycle charges (fetch hit, base instruction cost,
MUL/DIV extras) are pre-summed per block; only dynamic MMU charges are
accumulated at run time.

Three fast-path layers stack on top of the block closures (see
DESIGN.md, "JIT memory fast path"):

* **Inline caches** -- each load/store site in a paging block owns a
  ``(vpn, pte, frame_base)`` slot in a per-closure list. A hit requires
  the site's cached vpn to match *and* the TLB to still cache the same
  leaf PTE for it (one dict probe + integer compare); then the access
  skips ``mmu.translate`` entirely while replaying the exact bookkeeping
  a TLB hit performs (LRU touch, hit count, hit cycles).
* **Access forwarding** -- consecutive memory ops often land on the same
  page (push/pop runs, load-after-store). The compiler threads the last
  translation through locals and forwards it when the page matches,
  without even an IC probe. Nothing between two adjacent accesses can
  touch the TLB, so presence is guaranteed; only a store forwarding from
  a load re-checks W|D bits (a clean page must miss and walk to set D).
* **Self-looping blocks** -- a conditional branch whose taken target is
  its own block start re-enters the closure without going through the
  dispatcher, re-arming only the per-iteration counters. Instruction
  and cycle budgets are honoured at each loop edge via limits the
  dispatcher publishes on the core (``_loop_stop`` / ``_cycle_stop``).

Correctness contract (enforced by the differential tests): simulated
``cycles``/``instret``/register/CSR state, TLB statistics and TLB LRU
order are **bit-identical** to the reference interpreter. Anything the
straight-line fast path cannot reproduce exactly -- traps, page faults,
VM exits, self-modifying code, TLB eviction of the executing code page,
instruction-budget boundaries -- restores the precise architectural
boundary state and either delivers the trap exactly as the interpreter
would or falls back to :meth:`CPUCore.step`.

Two consumers:

* :class:`BlockJIT` -- per-core engine behind ``CPUCore.run()``. Blocks
  are keyed by *physical* start address (content-addressed), validated
  against physmem write watchers (self-modifying code) and a per-pc
  dispatch cache revalidated by PTE compare (so ``set_root``,
  ``invlpg``, flushes and evictions all stop the fast path until the
  next successful re-probe).
* :func:`compile_bt_block` -- fuses a :class:`TranslatedBlock`'s item
  list (native runs inlined, callouts as captured calls) so the binary
  translator stops re-walking its tag list on every execution. The BT
  layer keeps the conservative translate-per-access path: its MMU is
  virtualized and may exit to the monitor.
"""

import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.cpu.exits import VMExit
from repro.cpu.isa import Cause, DecodeError, Instruction, Op, decode
from repro.cpu.mmu import BareMMU
from repro.mem.paging import AccessType, PageFault, PTE_DIRTY, PTE_WRITABLE
from repro.util.errors import MemoryError_

__all__ = ["BlockJIT", "compile_bt_block"]

#: Maximum instructions fused into one compiled block.
MAX_BLOCK_INSTRUCTIONS = 32

#: Dispatch/pc-cache size bound (cleared wholesale when exceeded).
_PC_CACHE_MAX = 16384

_MEM_OPS = frozenset({Op.LD, Op.ST, Op.LDB, Op.STB})
_STORE_OPS = frozenset({Op.ST, Op.STB})
_TERMINATORS = frozenset(
    {Op.JAL, Op.JALR, Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU}
)
_BRANCH_COND = {
    Op.BEQ: ("==", False),
    Op.BNE: ("!=", False),
    Op.BLT: ("<", True),
    Op.BGE: (">=", True),
    Op.BLTU: ("<", False),
    Op.BGEU: (">=", False),
}

#: Store-forwarding W|D mask: a store may reuse a load's translation
#: only if the cached PTE is already writable *and* dirty (otherwise the
#: reference lookup misses and walks to set D).
_WD = PTE_WRITABLE | PTE_DIRTY

#: Negative-cache marker for "starts with something we cannot compile".
_UNCOMPILABLE: Tuple = ()

_U32 = struct.Struct("<I")


def _sgn(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value & 0x80000000 else value


def _r(index: int) -> str:
    """Register read expression; r0 folds to the literal 0."""
    return "0" if index == 0 else f"regs[{index}]"


def _addr_expr(ins: Instruction) -> str:
    if ins.ra == 0:
        return str(ins.simm12 & 0xFFFFFFFF)
    return f"(regs[{ins.ra}] + {ins.simm12}) & 0xFFFFFFFF"


def _alu_expr(op: Op, ins: Instruction) -> str:
    """Expression for a pure ALU result (DIVU/REMU handled by caller)."""
    a = _r(ins.ra)
    is_imm, b = ins.operand_b
    bx = str(b) if is_imm else _r(b)
    if op is Op.ADD:
        return f"({a} + {bx}) & 0xFFFFFFFF"
    if op is Op.SUB:
        return f"({a} - {bx}) & 0xFFFFFFFF"
    if op is Op.MUL:
        return f"({a} * {bx}) & 0xFFFFFFFF"
    if op is Op.AND:
        return f"{a} & {bx}"
    if op is Op.OR:
        return f"{a} | {bx}"
    if op is Op.XOR:
        return f"{a} ^ {bx}"
    if op is Op.SHL:
        sh = str(b & 31) if is_imm else f"({bx} & 31)"
        return f"({a} << {sh}) & 0xFFFFFFFF"
    if op is Op.SHR:
        sh = str(b & 31) if is_imm else f"({bx} & 31)"
        return f"{a} >> {sh}"
    if op is Op.SAR:
        sh = str(b & 31) if is_imm else f"({bx} & 31)"
        return f"(_sgn({a}) >> {sh}) & 0xFFFFFFFF"
    if op is Op.SLT:
        bs = str(_sgn(b)) if is_imm else f"_sgn({bx})"
        return f"(1 if _sgn({a}) < {bs} else 0)"
    if op is Op.SLTU:
        return f"(1 if {a} < {bx} else 0)"
    if op is Op.MOV:
        return a
    if op is Op.MOVI:
        return str(ins.imm32)
    raise AssertionError(f"not a pure ALU op: {op}")


class _Src:
    """Indented source accumulator."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _item_const_cycles(costs, kind: str, ins: Instruction, fetch_c: int) -> int:
    """Compile-time-known cycle charge for one block item."""
    if kind == "callout":
        return costs.bt_callout_cycles
    c = costs.instr_cycles + fetch_c
    if ins.op is Op.MUL:
        c += costs.mul_extra_cycles
    elif ins.op in (Op.DIVU, Op.REMU):
        c += costs.div_extra_cycles
    return c


def _compile_items(
    costs,
    items: List[Tuple[str, Instruction, int]],
    *,
    layer: str,  # "cpu" | "bt"
    paging: bool = False,
    vpn: int = 0,
    epoch_cell: Optional[list] = None,
    ic_cell: Optional[list] = None,
    callout: Optional[Callable[[Instruction], bool]] = None,
) -> Callable:
    """Generate and compile one block closure from classified items.

    ``items`` is a list of ("native" | "callout", instruction, va); the
    cycle/instret/trap semantics produced are bit-identical to the
    reference paths (``CPUCore.step`` / ``BTEngine._execute_block``).
    """
    n = len(items)
    track_tlb = layer == "cpu" and paging
    fetch_c = costs.tlb_hit_cycles if track_tlb else 0
    hit_c = costs.tlb_hit_cycles

    pre = [0]
    reta: List[int] = []  # retired instruction count *after* item k
    retired = 0
    for kind, ins, _va in items:
        pre.append(pre[-1] + _item_const_cycles(costs, kind, ins, fetch_c))
        # Callouts retire too (the bump itself happens inside
        # BTEngine._callout, shared with the reference walk): a guest
        # instruction rewritten into monitor emulation still retires
        # architecturally, exactly as its intercepted-and-emulated
        # counterpart does under hardware assist.
        retired += 1
        reta.append(retired)

    mem_indices = [
        k for k, (kind, ins, _va) in enumerate(items)
        if kind == "native" and ins.op in _MEM_OPS
    ]
    has_mem = bool(mem_indices)
    has_store = any(
        k == "native" and i.op in _STORE_OPS for k, i, _ in items
    )
    has_div_reg = any(
        k == "native" and i.op in (Op.DIVU, Op.REMU) and not i.has_imm32
        for k, i, _ in items
    )
    has_callout = any(k == "callout" for k, i, _ in items)
    guarded = has_mem  # only memory accesses can raise mid-block
    snapshot = guarded or has_div_reg or has_callout
    # Both layers bail at a store that invalidated compiled code (the
    # BT engine shares its invalidation epoch the same way the bare
    # core's BlockJIT does), so rewritten code is fetched fresh.
    smc_check = has_store and epoch_cell is not None
    # Inline-cached translations: only for directly-walked paging blocks
    # (the BT/virtualized MMUs may VM-exit inside translate).
    fast_mem = track_tlb and has_mem
    # A conditional branch back to the block's own start re-enters the
    # closure directly (budgets permitting) instead of re-dispatching.
    last_kind, last_ins, _lv = items[-1]
    selfloop = (
        layer == "cpu"
        and last_kind == "native"
        and last_ins.op in _BRANCH_COND
        and last_ins.imm32 == items[0][2]
    )
    # Self-looping blocks are hot by construction, so their IC-miss
    # slow path additionally inlines the whole reference translate
    # (TLB probe + 2-level walk + insert/evict bookkeeping) straight
    # into the closure, replicating translate/walk_quick/TLB.insert
    # statement for statement. Dispatcher-bound blocks keep the plain
    # `tr()` call: their preamble must stay cheap.
    deep = fast_mem and selfloop
    miss_c = costs.tlb_miss_cycles

    # Static forwarding plan: memory op k may reuse the translation of
    # the previous memory op (cross-iteration in self-looping blocks:
    # the first op forwards from the last, since nothing between the
    # last access and the loop edge can touch the TLB).
    prev_mem: Dict[int, int] = {}
    if fast_mem:
        for j, k in enumerate(mem_indices):
            if j > 0:
                prev_mem[k] = mem_indices[j - 1]
            elif selfloop:
                prev_mem[k] = mem_indices[-1]
    site_slot = {k: 1 + 3 * j for j, k in enumerate(mem_indices)}
    need_fwd = bool(prev_mem)

    def _is_store(k: int) -> bool:
        return items[k][1].op in _STORE_OPS

    # A store forwarding from a load must re-check W|D on the cached
    # PTE, so every path then has to keep the last PTE in a local.
    need_lt = any(
        _is_store(k) and not _is_store(p) for k, p in prev_mem.items()
    )

    src = _Src()
    src.emit(0, "def _block(cpu):")
    src.emit(1, "regs = cpu.regs")
    if track_tlb:
        src.emit(1, "te = cpu.mmu.tlb")
        src.emit(1, "st = te.stats")
        src.emit(1, "mv = te._entries.move_to_end")
        if has_mem:
            src.emit(1, "eg = te.entry_get")
    if smc_check:
        src.emit(1, "j0 = _jw[0]")
    # With callouts in the block, monitor emulation could in principle
    # change the real MODE csr mid-block, so the user flag for translate
    # must be read live instead of hoisted.
    u_expr = "u"
    if has_mem:
        if layer == "bt" or paging:
            src.emit(1, "mmu = cpu.mmu")
            src.emit(1, "tr = mmu.translate")
            if has_callout:
                u_expr = "cpu.csr[0] == 1"
            else:
                src.emit(1, "u = cpu.csr[0] == 1")
            src.emit(1, "pm = mmu.physmem")
        else:
            src.emit(1, "pm = cpu.mmu.physmem")
        ops_used = {i.op for k, i, _ in items if k == "native"}
        if Op.LD in ops_used:
            src.emit(1, "r32 = pm.read_u32")
        if Op.ST in ops_used:
            src.emit(1, "w32 = pm.write_u32")
        if Op.LDB in ops_used:
            src.emit(1, "r8 = pm.read_u8")
        if Op.STB in ops_used:
            src.emit(1, "w8 = pm.write_u8")
    if fast_mem:
        # Entry guards: snapshot the code page's cached PTE (every fetch
        # in the block must keep hitting exactly this translation) and
        # drop the site caches if the privilege mode changed since fill.
        src.emit(1, f"cpte = eg({vpn})")
        src.emit(1, "if u is not _ic[0]:")
        src.emit(2, "_ic[1:] = _ICR")
        src.emit(2, "_ic[0] = u")
        if deep:
            src.emit(1, "_e = te._entries")
            src.emit(1, "_wk = mmu.walker")
            src.emit(1, "_rpa = mmu.root_pa")
            src.emit(1, "_cap = te.capacity")
            src.emit(1, "_mb = pm._data")
            src.emit(1, "_msz = pm.size")
            src.emit(1, "pr32 = pm.read_u32")
            src.emit(1, "pw32 = pm.write_u32")
        if need_fwd:
            src.emit(1, "_lp = -1")
            src.emit(1, "_lb = 0")
            if need_lt:
                src.emit(1, "_lt = 0")
    if selfloop:
        src.emit(1, "_is = cpu._loop_stop")
        src.emit(1, "_cs = cpu._cycle_stop")
    if guarded:
        src.emit(1, "try:")
    depth = 2 if guarded else 1
    if selfloop:
        src.emit(depth, "while 1:")
        depth += 1
    if snapshot:
        src.emit(depth, "c0 = cpu.cycles")
        src.emit(depth, "i0 = cpu.instret")
        src.emit(depth, "mc = 0")
    if fast_mem:
        src.emit(depth, "_h = 0")
    if guarded:
        src.emit(depth, "_n = -1")

    def counters(d: int, j: int, ret: int, mv_mode: Optional[str]) -> None:
        """Commit cycles/instret (+TLB fetch stats) at boundary ``j``."""
        hits_extra = f" + _h * {hit_c}" if fast_mem and hit_c else ""
        if snapshot:
            src.emit(d, f"cpu.cycles = c0 + {pre[j]} + mc{hits_extra}")
            src.emit(d, f"cpu.instret = i0 + {ret}")
        else:
            src.emit(d, f"cpu.cycles += {pre[j]}")
            src.emit(d, f"cpu.instret += {ret}")
        if track_tlb:
            if fast_mem:
                src.emit(d, f"st.hits += {j} + _h")
                src.emit(d, "_ich[0] += _h")
            else:
                src.emit(d, f"st.hits += {j}")
            if mv_mode == "plain":
                src.emit(d, f"mv({vpn})")
            elif mv_mode == "guarded":
                src.emit(d, f"if {vpn} in te._entries:")
                src.emit(d + 1, f"mv({vpn})")

    for k, (kind, ins, va) in enumerate(items):
        op = ins.op
        nxt = (va + ins.length) & 0xFFFFFFFF
        last = k == n - 1

        if kind == "callout":
            src.emit(depth, f"cpu.cycles = c0 + {pre[k + 1]} + mc")
            # reta[k] - 1: everything *before* this callout; _co itself
            # retires the callout instruction (BTEngine._callout).
            src.emit(depth, f"cpu.instret = i0 + {reta[k] - 1}")
            src.emit(depth, f"cpu.pc = {va}")
            if guarded:
                src.emit(depth, "_n = -1")
            if last:
                # The callout (emulation / reflection / IRET) leaves pc
                # and cycles in their final architectural state.
                src.emit(depth, f"_co(_I[{k}])")
                src.emit(depth, "return")
            else:
                src.emit(depth, f"if _co(_I[{k}]):")
                src.emit(depth + 1, "return")
                src.emit(depth, f"mc = cpu.cycles - c0 - {pre[k + 1]}")
            continue

        if op in _MEM_OPS:
            is_store = op in _STORE_OPS

            def access_stmt(loc: str) -> str:
                if op is Op.LD:
                    tgt = f"regs[{ins.rd}] = " if ins.rd else ""
                    return f"{tgt}r32({loc})"
                if op is Op.LDB:
                    tgt = f"regs[{ins.rd}] = " if ins.rd else ""
                    return f"{tgt}r8({loc})"
                if op is Op.ST:
                    return f"w32({loc}, {_r(ins.rb)})"
                return f"w8({loc}, {_r(ins.rb)} & 0xFF)"

            if not fast_mem:
                # Conservative path (BT layer, paging-off blocks): every
                # access goes through translate / direct physmem.
                src.emit(depth, f"_n = {k}")
                if track_tlb:
                    src.emit(depth, f"mv({vpn})")
                addr = _addr_expr(ins)
                if layer == "bt" or paging:
                    at = "_AW" if is_store else "_AR"
                    src.emit(depth, f"_a, _c = tr({addr}, {at}, {u_expr})")
                    src.emit(depth, "mc += _c")
                    loc = "_a"
                else:
                    loc = addr
                src.emit(depth, access_stmt(loc))
                # Stores may have hit compiled code (jit epoch); bail at
                # the exact boundary so the next fetch re-validates.
                if is_store and smc_check and not last:
                    src.emit(depth, "if _jw[0] != j0:")
                    counters(depth + 1, k + 1, reta[k], None)
                    src.emit(depth + 1, f"cpu.pc = {nxt}")
                    src.emit(depth + 1, "return")
                continue

            # Inline-cached path. Order per access, mirroring the
            # interpreter: fetch LRU touch, translate (forward / IC /
            # translate), access, then guard bailouts.
            b = site_slot[k]
            at = "_AW" if is_store else "_AR"
            src.emit(depth, f"_n = {k}")
            src.emit(depth, f"mv({vpn})")
            src.emit(depth, f"_va = {_addr_expr(ins)}")
            src.emit(depth, "_vp = _va >> 12")

            def smc_bail(d: int) -> None:
                if is_store and not last:
                    src.emit(d, "if _jw[0] != j0:")
                    counters(d + 1, k + 1, reta[k], None)
                    src.emit(d + 1, f"cpu.pc = {nxt}")
                    src.emit(d + 1, "return")

            prev = prev_mem.get(k)
            head = "if"
            if prev is not None:
                cond = "_vp == _lp"
                if is_store and not _is_store(prev):
                    cond += f" and _lt & {_WD} == {_WD}"
                src.emit(depth, f"if {cond}:")
                src.emit(depth + 1, "mv(_vp)")
                src.emit(depth + 1, "_h += 1")
                src.emit(depth + 1, access_stmt("_lb | (_va & 0xFFF)"))
                smc_bail(depth + 1)
                head = "elif"
            src.emit(
                depth, f"{head} _ic[{b}] == _vp and eg(_vp) == _ic[{b + 1}]:"
            )
            src.emit(depth + 1, "mv(_vp)")
            src.emit(depth + 1, "_h += 1")
            if need_fwd:
                src.emit(depth + 1, "_lp = _vp")
                src.emit(depth + 1, f"_lb = _ic[{b + 2}]")
                if need_lt:
                    src.emit(depth + 1, f"_lt = _ic[{b + 1}]")
                src.emit(depth + 1, access_stmt("_lb | (_va & 0xFFF)"))
            else:
                src.emit(depth + 1, access_stmt(f"_ic[{b + 2}] | (_va & 0xFFF)"))
            smc_bail(depth + 1)
            src.emit(depth, "else:")
            if deep:
                # Inline replica of BareMMU.translate on this access
                # class: probe (reference lookup conditions + stats +
                # LRU), then walk_quick (raw reads, fault order, A/D
                # write visibility), then TLB.insert (LRU refresh or
                # evict + epoch), then the IC/forwarding fill.
                hit_cond = "not u or _pte & 4"
                if is_store:
                    hit_cond = f"({hit_cond}) and _pte & 18 == 18"
                src.emit(depth + 1, "_pte = _e.get(_vp)")
                src.emit(depth + 1, f"if _pte is not None and ({hit_cond}):")
                src.emit(depth + 2, "mv(_vp)")
                src.emit(depth + 2, "st.hits += 1")
                if hit_c:
                    src.emit(depth + 2, f"mc += {hit_c}")
                src.emit(depth + 2, "_fb = _pte & 0xFFFFF000")
                src.emit(depth + 1, "else:")
                d = depth + 2
                src.emit(d, "st.misses += 1")
                src.emit(d, "_wk.walks += 1")
                src.emit(d, "_p1 = _rpa + ((_va >> 22) & 0x3FF) * 4")
                src.emit(d, "if _p1 + 4 > _msz:")
                src.emit(d + 1, "pr32(_p1)")
                src.emit(d, "_pde = _up(_mb, _p1)[0]")
                src.emit(d, "if not _pde & 1:")
                src.emit(d + 1, "_wk.faults += 1")
                src.emit(d + 1, f"raise _PF(_va, {at}, u, False)")
                src.emit(d, "_p2 = (_pde >> 12 << 12) + ((_va >> 12) & 0x3FF) * 4")
                src.emit(d, "if _p2 + 4 > _msz:")
                src.emit(d + 1, "pr32(_p2)")
                src.emit(d, "_pte = _up(_mb, _p2)[0]")
                src.emit(d, "if not _pte & 1:")
                src.emit(d + 1, "_wk.faults += 1")
                src.emit(d + 1, f"raise _PF(_va, {at}, u, False)")
                src.emit(d, "if u and not _pde & _pte & 4:")
                src.emit(d + 1, "_wk.faults += 1")
                src.emit(d + 1, f"raise _PF(_va, {at}, u, True)")
                if is_store:
                    src.emit(d, "if not _pde & _pte & 2:")
                    src.emit(d + 1, "_wk.faults += 1")
                    src.emit(d + 1, f"raise _PF(_va, {at}, u, True)")
                src.emit(d, "if not _pde & 8:")
                src.emit(d + 1, "pw32(_p1, _pde | 8)")
                src.emit(d, f"_t = _pte | {24 if is_store else 8}")
                src.emit(d, "if _t != _pte:")
                src.emit(d + 1, "pw32(_p2, _t)")
                src.emit(d + 1, "_pte = _t")
                src.emit(d, "if _vp in _e:")
                src.emit(d + 1, "mv(_vp)")
                src.emit(d + 1, "if _e[_vp] != _pte:")
                src.emit(d + 2, "te.epoch += 1")
                src.emit(d + 1, "_e[_vp] = _pte")
                src.emit(d, "else:")
                src.emit(d + 1, "if len(_e) >= _cap:")
                src.emit(d + 2, "_e.popitem(last=False)")
                src.emit(d + 2, "st.evictions += 1")
                src.emit(d + 2, "te.epoch += 1")
                src.emit(d + 1, "_e[_vp] = _pte")
                src.emit(d, f"mc += {miss_c}")
                src.emit(d, "_fb = _pte & 0xFFFFF000")
                src.emit(depth + 1, f"_ic[{b}] = _vp")
                src.emit(depth + 1, f"_ic[{b + 1}] = _pte")
                src.emit(depth + 1, f"_ic[{b + 2}] = _fb")
                if need_fwd:
                    src.emit(depth + 1, "_lp = _vp")
                    src.emit(depth + 1, "_lb = _fb")
                    if need_lt:
                        src.emit(depth + 1, "_lt = _pte")
                src.emit(depth + 1, access_stmt("_fb | (_va & 0xFFF)"))
            else:
                src.emit(depth + 1, f"_a, _c = tr(_va, {at}, u)")
                src.emit(depth + 1, "mc += _c")
                src.emit(depth + 1, f"_ic[{b}] = _vp")
                if need_lt:
                    src.emit(depth + 1, "_lt = eg(_vp)")
                    src.emit(depth + 1, f"_ic[{b + 1}] = _lt")
                else:
                    src.emit(depth + 1, f"_ic[{b + 1}] = eg(_vp)")
                src.emit(depth + 1, f"_ic[{b + 2}] = _a & 0xFFFFF000")
                if need_fwd:
                    src.emit(depth + 1, "_lp = _vp")
                    src.emit(depth + 1, f"_lb = _ic[{b + 2}]")
                src.emit(depth + 1, access_stmt("_a"))
            # The translate may have evicted or changed the executing
            # code page's entry (so the next fetch would miss); stores
            # may also have hit compiled code. Bail at the boundary.
            conds = [f"eg({vpn}) != cpte"]
            if is_store and smc_check:
                conds.append("_jw[0] != j0")
            if not last:
                src.emit(depth + 1, f"if {' or '.join(conds)}:")
                counters(depth + 2, k + 1, reta[k], None)
                src.emit(depth + 2, f"cpu.pc = {nxt}")
                src.emit(depth + 2, "return")
            continue

        if op in (Op.DIVU, Op.REMU) and not ins.has_imm32:
            src.emit(depth, f"_b = {_r(ins.rb)}")
            src.emit(depth, "if not _b:")
            counters(depth + 1, k + 1, reta[k], "guarded" if track_tlb else None)
            src.emit(depth + 1, f"cpu.pc = {va}")
            if guarded:
                # Everything is committed (the DIV0 retires, like the
                # interpreter's _alu path).  Under a deprivileging
                # policy _trap raises VMExit(GUEST_TRAP), which would
                # land in our own except-_VX handler and roll state
                # back to the last *memory* op's boundary -- disarm it,
                # exactly as the callout path does.
                src.emit(depth + 1, "_n = -1")
            src.emit(depth + 1, f"cpu._trap(_DIV0, 0, {va})")
            src.emit(depth + 1, "return")
            if ins.rd:
                sym = "//" if op is Op.DIVU else "%"
                src.emit(depth, f"regs[{ins.rd}] = {_r(ins.ra)} {sym} _b")
            continue

        if op in (Op.DIVU, Op.REMU):  # immediate divisor, known nonzero
            if ins.rd:
                sym = "//" if op is Op.DIVU else "%"
                src.emit(depth, f"regs[{ins.rd}] = {_r(ins.ra)} {sym} {ins.imm32}")
            continue

        if op in _TERMINATORS:
            mv_mode = "plain" if track_tlb else None
            counters(depth, n, reta[-1], mv_mode)
            if op is Op.JAL:
                if ins.rd:
                    src.emit(depth, f"regs[{ins.rd}] = {nxt}")
                src.emit(depth, f"cpu.pc = {ins.imm32}")
            elif op is Op.JALR:
                src.emit(depth, f"_t = {_r(ins.ra)}")
                if ins.rd:
                    src.emit(depth, f"regs[{ins.rd}] = {nxt}")
                src.emit(depth, "cpu.pc = _t")
            else:
                sym, signed = _BRANCH_COND[op]
                a, b = _r(ins.ra), _r(ins.rb)
                if signed:
                    a, b = f"_sgn({a})", f"_sgn({b})"
                if selfloop:
                    # Loop back without re-dispatching while both budget
                    # ceilings allow a whole further iteration; any
                    # other condition returns to the dispatcher, which
                    # re-validates everything before the next entry.
                    src.emit(depth, f"if {a} {sym} {b}:")
                    src.emit(depth + 1, f"cpu.pc = {ins.imm32}")
                    src.emit(
                        depth + 1,
                        f"if cpu.instret + {n} <= _is and cpu.cycles < _cs:",
                    )
                    src.emit(depth + 2, "continue")
                    src.emit(depth + 1, "return")
                    src.emit(depth, f"cpu.pc = {nxt}")
                    src.emit(depth, "return")
                    continue
                src.emit(
                    depth,
                    f"cpu.pc = {ins.imm32} if {a} {sym} {b} else {nxt}",
                )
            src.emit(depth, "return")
            continue

        # Pure ALU / moves.
        if op is Op.NOP or ins.rd == 0:
            continue
        src.emit(depth, f"regs[{ins.rd}] = {_alu_expr(op, ins)}")

    # Fall-through block end (size/page limit, or trailing non-stop
    # callout which already left pc == end va).
    if not (last_kind == "native" and last_ins.op in _TERMINATORS):
        if last_kind == "callout":
            pass  # everything committed around the callout
        else:
            end_va = (items[-1][2] + items[-1][1].length) & 0xFFFFFFFF
            mv_mode = (
                "plain"
                if track_tlb and last_ins.op not in _MEM_OPS
                else None
            )
            counters(depth, n, reta[-1], mv_mode)
            src.emit(depth, f"cpu.pc = {end_va}")
            src.emit(depth, "return")

    if guarded:
        # A page fault retires the faulting access (the trap is
        # delivered with it architecturally complete), but a VMExit is
        # serviced by the monitor and the instruction re-executes or is
        # finished by the emulator -- that attempt does not retire,
        # mirroring the interpreter's rollback in CPUCore.execute.
        for handler, retired, tail in (
            (
                "except _PF as f:",
                "_RA[_n]",
                f"cpu._trap(_PFW if f.access is _AW else _PFR, "
                f"f.vaddr, _V[_n], _I[_n])",
            ),
            ("except _VX:", "_RA[_n] - 1", "raise"),
            ("except BaseException:", "_RA[_n]", "raise"),
        ):
            src.emit(1, handler)
            src.emit(2, "if _n < 0:")
            src.emit(3, "raise")
            hits_extra = f" + _h * {hit_c}" if fast_mem and hit_c else ""
            src.emit(2, f"cpu.cycles = c0 + _P[_n + 1] + mc{hits_extra}")
            src.emit(2, f"cpu.instret = i0 + {retired}")
            if track_tlb:
                if fast_mem:
                    src.emit(2, "st.hits += _n + 1 + _h")
                    src.emit(2, "_ich[0] += _h")
                else:
                    src.emit(2, "st.hits += _n + 1")
                src.emit(2, f"if {vpn} in te._entries:")
                src.emit(3, f"mv({vpn})")
            src.emit(2, "cpu.pc = _V[_n]")
            src.emit(2, tail)
            if tail != "raise":
                src.emit(2, "return")

    ns: Dict[str, object] = {
        "_P": tuple(pre),
        "_V": tuple(va for _, _, va in items),
        "_I": tuple(ins for _, ins, _ in items),
        "_RA": tuple(reta),
        "_PF": PageFault,
        "_VX": VMExit,
        "_AW": AccessType.WRITE,
        "_AR": AccessType.READ,
        "_PFW": Cause.PF_WRITE,
        "_PFR": Cause.PF_READ,
        "_DIV0": Cause.DIV0,
        "_sgn": _sgn,
        "_jw": epoch_cell,
        "_co": callout,
    }
    if fast_mem:
        nsites = len(mem_indices)
        # [mode, site0_vpn, site0_pte, site0_base, site1_vpn, ...]
        ns["_ic"] = [False] + [-1, 0, 0] * nsites
        ns["_ICR"] = (-1, 0, 0) * nsites
        ns["_ich"] = ic_cell if ic_cell is not None else [0]
        if deep:
            ns["_up"] = _U32.unpack_from
    exec(compile(src.text(), "<pyvisor-jit>", "exec"), ns)  # noqa: S102
    return ns["_block"]  # type: ignore[return-value]


def compile_bt_block(engine, block) -> Callable:
    """Fuse a :class:`~repro.core.bt.TranslatedBlock` into one closure.

    Semantics are bit-identical to ``BTEngine._execute_block``: natives
    charge ``instr_cycles`` (+ALU extras) and execute inline; callouts
    charge ``bt_callout_cycles`` and call ``engine._callout`` with
    cycles/instret/pc committed, so emulation sees live state.
    """
    items: List[Tuple[str, Instruction, int]] = []
    va = block.start_va
    for kind, ins in block.items:
        items.append((kind, ins, va))
        va = (va + ins.length) & 0xFFFFFFFF
    return _compile_items(
        engine.costs, items, layer="bt", callout=engine._callout,
        epoch_cell=engine._epoch,
    )


class BlockJIT:
    """Per-core compiled-block cache behind ``CPUCore.run()``.

    Supported only over :class:`BareMMU` (native machines); virtualized
    MMUs conservatively stay on the reference interpreter. Blocks are
    keyed ``(pa, va, paging)`` -- content-addressed by physical start so
    a root switch never runs stale code -- and dropped when a physmem
    write watcher reports a store into their frame. Dispatch goes
    through a per-``(pc, mode)`` cache revalidated by one PTE compare
    against the live TLB entry, so flush / invlpg / eviction / PTE
    change all force a fresh EXEC probe before any stale block runs.
    """

    def __init__(self, cpu) -> None:
        self.cpu = cpu
        self.mmu: BareMMU = cpu.mmu
        self.physmem = cpu.mmu.physmem
        self._blocks: Dict[Tuple[int, int, bool], Tuple] = {}
        self._frame_keys: Dict[int, set] = {}
        #: Dispatch caches: (pc << 1) | mode -> (block, vpn, pte) under
        #: paging; pc -> block with paging off. Entries self-invalidate
        #: by PTE compare; SMC and cost changes clear them wholesale.
        self._pc_pg: Dict[int, Tuple] = {}
        self._pc_bare: Dict[int, Tuple] = {}
        self._epoch_cell = [0]
        #: Shared across closures: data accesses served by inline caches
        #: or forwarding (host-side telemetry; sim stats are unaffected).
        self._ic_cell = [0]
        self._costs_sig = self._sig()
        self.blocks_compiled = 0
        self.blocks_invalidated = 0
        self.fallback_steps = 0

    # -- bookkeeping -----------------------------------------------------

    def _sig(self) -> Tuple[int, int, int, int]:
        c = self.cpu.costs
        return (
            c.instr_cycles,
            c.mul_extra_cycles,
            c.div_extra_cycles,
            c.tlb_hit_cycles,
        )

    def check_costs(self) -> None:
        """Drop compiled code if the cost model changed since compile."""
        sig = self._sig()
        if sig != self._costs_sig:
            self._costs_sig = sig
            self.flush()

    def flush(self) -> None:
        self._blocks.clear()
        self._frame_keys.clear()
        self._pc_pg.clear()
        self._pc_bare.clear()
        self._epoch_cell[0] += 1

    def invalidate_pfn(self, pfn: int) -> None:
        """A store hit a frame with compiled code: drop its blocks."""
        keys = self._frame_keys.pop(pfn, None)
        if not keys:
            return
        blocks = self._blocks
        for key in keys:
            if blocks.pop(key, None):
                self.blocks_invalidated += 1
        # The dispatch caches hold direct references to dropped blocks.
        self._pc_pg.clear()
        self._pc_bare.clear()
        self._epoch_cell[0] += 1

    def stats(self) -> Dict[str, int]:
        return {
            "blocks_compiled": self.blocks_compiled,
            "blocks_invalidated": self.blocks_invalidated,
            "fallback_steps": self.fallback_steps,
            "blocks_cached": len(self._blocks),
            "ic_hits": self._ic_cell[0],
            "pc_cache_entries": len(self._pc_pg) + len(self._pc_bare),
        }

    # -- dispatch --------------------------------------------------------

    def lookup(self, pc: int, mode: int = 0) -> Optional[Tuple]:
        """Return ``(closure, n_instructions)`` for ``pc``, or None.

        None means "take one reference-interpreter step": EXEC
        translation not cached right now (TLB miss -- the step will
        walk and refill), or the block starts with something the
        compiler does not handle (system ops, page-straddling code).
        ``mode`` is the live MODE csr (privilege is part of the key).
        """
        mmu = self.mmu
        if mmu.paging_enabled:
            key = (pc << 1) | mode
            ent = self._pc_pg.get(key)
            if ent is not None and mmu.tlb.entry_get(ent[1]) == ent[2]:
                blk = ent[0]
            else:
                vpn = pc >> 12
                pte = mmu.tlb.peek(vpn, AccessType.EXEC, mode == 1)
                if pte is None:
                    self.fallback_steps += 1
                    return None
                pa = (pte >> 12 << 12) | (pc & 0xFFF)
                bkey = (pa, pc, True)
                blk = self._blocks.get(bkey)
                if blk is None:
                    blk = self._compile(bkey, pa, pc, True)
                if len(self._pc_pg) > _PC_CACHE_MAX:
                    self._pc_pg.clear()
                self._pc_pg[key] = (blk, vpn, pte)
        else:
            blk = self._pc_bare.get(pc)
            if blk is None:
                pa = pc & 0xFFFFFFFF
                bkey = (pa, pc, False)
                blk = self._blocks.get(bkey)
                if blk is None:
                    blk = self._compile(bkey, pa, pc, False)
                if len(self._pc_bare) > _PC_CACHE_MAX:
                    self._pc_bare.clear()
                self._pc_bare[pc] = blk
        if blk:
            return blk
        self.fallback_steps += 1
        return None

    def _compile(self, key, pa: int, va: int, paging: bool) -> Tuple:
        physmem = self.physmem
        items: List[Tuple[str, Instruction, int]] = []
        off = va & 0xFFF
        cursor_pa, cursor_va = pa, va
        try:
            while len(items) < MAX_BLOCK_INSTRUCTIONS and off + 4 <= 0x1000:
                word = physmem.read_u32(cursor_pa)
                has_imm = bool((word >> 24) & 0x80)
                length = 8 if has_imm else 4
                if off + length > 0x1000:
                    break  # straddles the page: interpreter handles it
                imm_word = physmem.read_u32(cursor_pa + 4) if has_imm else 0
                ins = decode(word, imm_word)
                op = ins.op
                if op.value > Op.BGEU.value:
                    break  # system ops take the reference path
                if op in (Op.DIVU, Op.REMU) and ins.has_imm32 and not ins.imm32:
                    break  # constant DIV0 always traps: reference path
                items.append(("native", ins, cursor_va))
                off += length
                cursor_pa += length
                cursor_va = (cursor_va + length) & 0xFFFFFFFF
                if op in _TERMINATORS:
                    break
        except (DecodeError, MemoryError_):
            pass  # undecodable/unmapped tail: block ends before it
        if items:
            fn = _compile_items(
                self.cpu.costs,
                items,
                layer="cpu",
                paging=paging,
                vpn=va >> 12,
                epoch_cell=self._epoch_cell,
                ic_cell=self._ic_cell,
            )
            blk: Tuple = (fn, len(items))
            self.blocks_compiled += 1
        else:
            blk = _UNCOMPILABLE
        self._blocks[key] = blk
        pfn = pa >> 12
        self._frame_keys.setdefault(pfn, set()).add(key)
        self.cpu._code_pfns.add(pfn)
        return blk
