"""Host-side block compiler: guest basic blocks become Python closures.

The interpreter pays a per-instruction host tax -- fetch, two dict
probes, an ``Op`` dispatch chain -- for every simulated instruction.
This module applies the binary-translation idea one level down: decode a
guest basic block **once**, then emit a single specialized Python
function for it with operands, immediates and dispatch resolved at
compile time. Constant cycle charges (fetch hit, base instruction cost,
MUL/DIV extras) are pre-summed per block; only dynamic MMU charges are
accumulated at run time.

Correctness contract (enforced by the differential tests): simulated
``cycles``/``instret``/register/CSR state, TLB statistics and TLB LRU
order are **bit-identical** to the reference interpreter. Anything the
straight-line fast path cannot reproduce exactly -- traps, page faults,
VM exits, self-modifying code, TLB eviction of the executing code page,
instruction-budget boundaries -- restores the precise architectural
boundary state and either delivers the trap exactly as the interpreter
would or falls back to :meth:`CPUCore.step`.

Two consumers:

* :class:`BlockJIT` -- per-core engine behind ``CPUCore.run()``. Blocks
  are keyed by *physical* start address (content-addressed), validated
  against physmem write watchers (self-modifying code) and a per-page
  EXEC-translation memo guarded by the TLB epoch (so ``set_root``,
  ``invlpg``, flushes and evictions all stop the fast path until the
  next successful re-probe).
* :func:`compile_bt_block` -- fuses a :class:`TranslatedBlock`'s item
  list (native runs inlined, callouts as captured calls) so the binary
  translator stops re-walking its tag list on every execution.
"""

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.cpu.exits import VMExit
from repro.cpu.isa import Cause, DecodeError, Instruction, Op, decode
from repro.cpu.mmu import BareMMU
from repro.mem.paging import AccessType, PageFault
from repro.util.errors import MemoryError_

__all__ = ["BlockJIT", "compile_bt_block"]

#: Maximum instructions fused into one compiled block.
MAX_BLOCK_INSTRUCTIONS = 32

_MEM_OPS = frozenset({Op.LD, Op.ST, Op.LDB, Op.STB})
_STORE_OPS = frozenset({Op.ST, Op.STB})
_TERMINATORS = frozenset(
    {Op.JAL, Op.JALR, Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU}
)
_BRANCH_COND = {
    Op.BEQ: ("==", False),
    Op.BNE: ("!=", False),
    Op.BLT: ("<", True),
    Op.BGE: (">=", True),
    Op.BLTU: ("<", False),
    Op.BGEU: (">=", False),
}

#: Negative-cache marker for "starts with something we cannot compile".
_UNCOMPILABLE: Tuple = ()


def _sgn(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value & 0x80000000 else value


def _r(index: int) -> str:
    """Register read expression; r0 folds to the literal 0."""
    return "0" if index == 0 else f"regs[{index}]"


def _addr_expr(ins: Instruction) -> str:
    if ins.ra == 0:
        return str(ins.simm12 & 0xFFFFFFFF)
    return f"(regs[{ins.ra}] + {ins.simm12}) & 0xFFFFFFFF"


def _alu_expr(op: Op, ins: Instruction) -> str:
    """Expression for a pure ALU result (DIVU/REMU handled by caller)."""
    a = _r(ins.ra)
    is_imm, b = ins.operand_b
    bx = str(b) if is_imm else _r(b)
    if op is Op.ADD:
        return f"({a} + {bx}) & 0xFFFFFFFF"
    if op is Op.SUB:
        return f"({a} - {bx}) & 0xFFFFFFFF"
    if op is Op.MUL:
        return f"({a} * {bx}) & 0xFFFFFFFF"
    if op is Op.AND:
        return f"{a} & {bx}"
    if op is Op.OR:
        return f"{a} | {bx}"
    if op is Op.XOR:
        return f"{a} ^ {bx}"
    if op is Op.SHL:
        sh = str(b & 31) if is_imm else f"({bx} & 31)"
        return f"({a} << {sh}) & 0xFFFFFFFF"
    if op is Op.SHR:
        sh = str(b & 31) if is_imm else f"({bx} & 31)"
        return f"{a} >> {sh}"
    if op is Op.SAR:
        sh = str(b & 31) if is_imm else f"({bx} & 31)"
        return f"(_sgn({a}) >> {sh}) & 0xFFFFFFFF"
    if op is Op.SLT:
        bs = str(_sgn(b)) if is_imm else f"_sgn({bx})"
        return f"(1 if _sgn({a}) < {bs} else 0)"
    if op is Op.SLTU:
        return f"(1 if {a} < {bx} else 0)"
    if op is Op.MOV:
        return a
    if op is Op.MOVI:
        return str(ins.imm32)
    raise AssertionError(f"not a pure ALU op: {op}")


class _Src:
    """Indented source accumulator."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _item_const_cycles(costs, kind: str, ins: Instruction, fetch_c: int) -> int:
    """Compile-time-known cycle charge for one block item."""
    if kind == "callout":
        return costs.bt_callout_cycles
    c = costs.instr_cycles + fetch_c
    if ins.op is Op.MUL:
        c += costs.mul_extra_cycles
    elif ins.op in (Op.DIVU, Op.REMU):
        c += costs.div_extra_cycles
    return c


def _compile_items(
    costs,
    items: List[Tuple[str, Instruction, int]],
    *,
    layer: str,  # "cpu" | "bt"
    paging: bool = False,
    vpn: int = 0,
    epoch_cell: Optional[list] = None,
    callout: Optional[Callable[[Instruction], bool]] = None,
) -> Callable:
    """Generate and compile one block closure from classified items.

    ``items`` is a list of ("native" | "callout", instruction, va); the
    cycle/instret/trap semantics produced are bit-identical to the
    reference paths (``CPUCore.step`` / ``BTEngine._execute_block``).
    """
    n = len(items)
    track_tlb = layer == "cpu" and paging
    fetch_c = costs.tlb_hit_cycles if track_tlb else 0

    pre = [0]
    reta: List[int] = []  # retired instruction count *after* item k
    retired = 0
    for kind, ins, _va in items:
        pre.append(pre[-1] + _item_const_cycles(costs, kind, ins, fetch_c))
        if kind == "native":
            retired += 1
        reta.append(retired)

    has_mem = any(
        k == "native" and i.op in _MEM_OPS for k, i, _ in items
    )
    has_store = any(
        k == "native" and i.op in _STORE_OPS for k, i, _ in items
    )
    has_div_reg = any(
        k == "native" and i.op in (Op.DIVU, Op.REMU) and not i.has_imm32
        for k, i, _ in items
    )
    has_callout = any(k == "callout" for k, i, _ in items)
    guarded = has_mem  # only memory accesses can raise mid-block
    snapshot = guarded or has_div_reg or has_callout
    smc_check = layer == "cpu" and has_store

    src = _Src()
    src.emit(0, "def _block(cpu):")
    src.emit(1, "regs = cpu.regs")
    if track_tlb:
        src.emit(1, "te = cpu.mmu.tlb")
        src.emit(1, "st = te.stats")
        src.emit(1, "mv = te._entries.move_to_end")
        if has_mem:
            src.emit(1, "ep0 = te.epoch")
    if smc_check:
        src.emit(1, "j0 = _jw[0]")
    # With callouts in the block, monitor emulation could in principle
    # change the real MODE csr mid-block, so the user flag for translate
    # must be read live instead of hoisted.
    u_expr = "u"
    if has_mem:
        if layer == "bt" or paging:
            src.emit(1, "mmu = cpu.mmu")
            src.emit(1, "tr = mmu.translate")
            if has_callout:
                u_expr = "cpu.csr[0] == 1"
            else:
                src.emit(1, "u = cpu.csr[0] == 1")
            src.emit(1, "pm = mmu.physmem")
        else:
            src.emit(1, "pm = cpu.mmu.physmem")
        ops_used = {i.op for k, i, _ in items if k == "native"}
        if Op.LD in ops_used:
            src.emit(1, "r32 = pm.read_u32")
        if Op.ST in ops_used:
            src.emit(1, "w32 = pm.write_u32")
        if Op.LDB in ops_used:
            src.emit(1, "r8 = pm.read_u8")
        if Op.STB in ops_used:
            src.emit(1, "w8 = pm.write_u8")
    if snapshot:
        src.emit(1, "c0 = cpu.cycles")
        src.emit(1, "i0 = cpu.instret")
        src.emit(1, "mc = 0")
    if guarded:
        src.emit(1, "_n = -1")
        src.emit(1, "try:")
    depth = 2 if guarded else 1

    def counters(d: int, j: int, ret: int, mv_mode: Optional[str]) -> None:
        """Commit cycles/instret (+TLB fetch stats) at boundary ``j``."""
        if snapshot:
            src.emit(d, f"cpu.cycles = c0 + {pre[j]} + mc")
            src.emit(d, f"cpu.instret = i0 + {ret}")
        else:
            src.emit(d, f"cpu.cycles += {pre[j]}")
            src.emit(d, f"cpu.instret += {ret}")
        if track_tlb:
            src.emit(d, f"st.hits += {j}")
            if mv_mode == "plain":
                src.emit(d, f"mv({vpn})")
            elif mv_mode == "guarded":
                src.emit(d, f"if {vpn} in te._entries:")
                src.emit(d + 1, f"mv({vpn})")

    for k, (kind, ins, va) in enumerate(items):
        op = ins.op
        nxt = (va + ins.length) & 0xFFFFFFFF
        last = k == n - 1

        if kind == "callout":
            src.emit(depth, f"cpu.cycles = c0 + {pre[k + 1]} + mc")
            src.emit(depth, f"cpu.instret = i0 + {reta[k]}")
            src.emit(depth, f"cpu.pc = {va}")
            if guarded:
                src.emit(depth, "_n = -1")
            if last:
                # The callout (emulation / reflection / IRET) leaves pc
                # and cycles in their final architectural state.
                src.emit(depth, f"_co(_I[{k}])")
                src.emit(depth, "return")
            else:
                src.emit(depth, f"if _co(_I[{k}]):")
                src.emit(depth + 1, "return")
                src.emit(depth, f"mc = cpu.cycles - c0 - {pre[k + 1]}")
            continue

        if op in _MEM_OPS:
            src.emit(depth, f"_n = {k}")
            if track_tlb:
                src.emit(depth, f"mv({vpn})")
            addr = _addr_expr(ins)
            is_store = op in _STORE_OPS
            if layer == "bt" or paging:
                at = "_AW" if is_store else "_AR"
                src.emit(depth, f"_a, _c = tr({addr}, {at}, {u_expr})")
                src.emit(depth, "mc += _c")
                loc = "_a"
            else:
                loc = addr
            if op is Op.LD:
                tgt = f"regs[{ins.rd}] = " if ins.rd else ""
                src.emit(depth, f"{tgt}r32({loc})")
            elif op is Op.LDB:
                tgt = f"regs[{ins.rd}] = " if ins.rd else ""
                src.emit(depth, f"{tgt}r8({loc})")
            elif op is Op.ST:
                src.emit(depth, f"w32({loc}, {_r(ins.rb)})")
            else:
                src.emit(depth, f"w8({loc}, {_r(ins.rb)} & 0xFF)")
            # Re-validate the fast-path assumptions the interpreter
            # re-establishes on every fetch: the EXEC translation may
            # have been evicted/changed (TLB epoch) and stores may have
            # hit compiled code (jit epoch). Bail at the exact boundary.
            conds = []
            if track_tlb:
                conds.append("te.epoch != ep0")
            if is_store and smc_check:
                conds.append("_jw[0] != j0")
            if conds and not last:
                src.emit(depth, f"if {' or '.join(conds)}:")
                counters(depth + 1, k + 1, reta[k], None)
                src.emit(depth + 1, f"cpu.pc = {nxt}")
                src.emit(depth + 1, "return")
            continue

        if op in (Op.DIVU, Op.REMU) and not ins.has_imm32:
            src.emit(depth, f"_b = {_r(ins.rb)}")
            src.emit(depth, "if not _b:")
            counters(depth + 1, k + 1, reta[k], "guarded" if track_tlb else None)
            src.emit(depth + 1, f"cpu.pc = {va}")
            src.emit(depth + 1, f"cpu._trap(_DIV0, 0, {va})")
            src.emit(depth + 1, "return")
            if ins.rd:
                sym = "//" if op is Op.DIVU else "%"
                src.emit(depth, f"regs[{ins.rd}] = {_r(ins.ra)} {sym} _b")
            continue

        if op in (Op.DIVU, Op.REMU):  # immediate divisor, known nonzero
            if ins.rd:
                sym = "//" if op is Op.DIVU else "%"
                src.emit(depth, f"regs[{ins.rd}] = {_r(ins.ra)} {sym} {ins.imm32}")
            continue

        if op in _TERMINATORS:
            mv_mode = "plain" if track_tlb else None
            counters(depth, n, reta[-1], mv_mode)
            if op is Op.JAL:
                if ins.rd:
                    src.emit(depth, f"regs[{ins.rd}] = {nxt}")
                src.emit(depth, f"cpu.pc = {ins.imm32}")
            elif op is Op.JALR:
                src.emit(depth, f"_t = {_r(ins.ra)}")
                if ins.rd:
                    src.emit(depth, f"regs[{ins.rd}] = {nxt}")
                src.emit(depth, "cpu.pc = _t")
            else:
                sym, signed = _BRANCH_COND[op]
                a, b = _r(ins.ra), _r(ins.rb)
                if signed:
                    a, b = f"_sgn({a})", f"_sgn({b})"
                src.emit(
                    depth,
                    f"cpu.pc = {ins.imm32} if {a} {sym} {b} else {nxt}",
                )
            src.emit(depth, "return")
            continue

        # Pure ALU / moves.
        if op is Op.NOP or ins.rd == 0:
            continue
        src.emit(depth, f"regs[{ins.rd}] = {_alu_expr(op, ins)}")

    # Fall-through block end (size/page limit, or trailing non-stop
    # callout which already left pc == end va).
    last_kind, last_ins, _last_va = items[-1]
    if not (last_kind == "native" and last_ins.op in _TERMINATORS):
        if last_kind == "callout":
            pass  # everything committed around the callout
        else:
            end_va = (items[-1][2] + items[-1][1].length) & 0xFFFFFFFF
            mv_mode = (
                "plain"
                if track_tlb and last_ins.op not in _MEM_OPS
                else None
            )
            counters(depth, n, reta[-1], mv_mode)
            src.emit(depth, f"cpu.pc = {end_va}")
            src.emit(depth, "return")

    if guarded:
        hit_fix = "st.hits += _n + 1" if track_tlb else None
        # A page fault retires the faulting access (the trap is
        # delivered with it architecturally complete), but a VMExit is
        # serviced by the monitor and the instruction re-executes or is
        # finished by the emulator -- that attempt does not retire,
        # mirroring the interpreter's rollback in CPUCore.execute.
        for handler, retired, tail in (
            (
                "except _PF as f:",
                "_RA[_n]",
                f"cpu._trap(_PFW if f.access is _AW else _PFR, "
                f"f.vaddr, _V[_n], _I[_n])",
            ),
            ("except _VX:", "_RA[_n] - 1", "raise"),
            ("except BaseException:", "_RA[_n]", "raise"),
        ):
            src.emit(1, handler)
            src.emit(2, "if _n < 0:")
            src.emit(3, "raise")
            src.emit(2, "cpu.cycles = c0 + _P[_n + 1] + mc")
            src.emit(2, f"cpu.instret = i0 + {retired}")
            if hit_fix:
                src.emit(2, hit_fix)
                src.emit(2, f"if {vpn} in te._entries:")
                src.emit(3, f"mv({vpn})")
            src.emit(2, "cpu.pc = _V[_n]")
            src.emit(2, tail)
            if tail != "raise":
                src.emit(2, "return")

    ns: Dict[str, object] = {
        "_P": tuple(pre),
        "_V": tuple(va for _, _, va in items),
        "_I": tuple(ins for _, ins, _ in items),
        "_RA": tuple(reta),
        "_PF": PageFault,
        "_VX": VMExit,
        "_AW": AccessType.WRITE,
        "_AR": AccessType.READ,
        "_PFW": Cause.PF_WRITE,
        "_PFR": Cause.PF_READ,
        "_DIV0": Cause.DIV0,
        "_sgn": _sgn,
        "_jw": epoch_cell,
        "_co": callout,
    }
    exec(compile(src.text(), "<pyvisor-jit>", "exec"), ns)  # noqa: S102
    return ns["_block"]  # type: ignore[return-value]


def compile_bt_block(engine, block) -> Callable:
    """Fuse a :class:`~repro.core.bt.TranslatedBlock` into one closure.

    Semantics are bit-identical to ``BTEngine._execute_block``: natives
    charge ``instr_cycles`` (+ALU extras) and execute inline; callouts
    charge ``bt_callout_cycles`` and call ``engine._callout`` with
    cycles/instret/pc committed, so emulation sees live state.
    """
    items: List[Tuple[str, Instruction, int]] = []
    va = block.start_va
    for kind, ins in block.items:
        items.append((kind, ins, va))
        va = (va + ins.length) & 0xFFFFFFFF
    return _compile_items(
        engine.costs, items, layer="bt", callout=engine._callout
    )


class BlockJIT:
    """Per-core compiled-block cache behind ``CPUCore.run()``.

    Supported only over :class:`BareMMU` (native machines); virtualized
    MMUs conservatively stay on the reference interpreter. Blocks are
    keyed ``(pa, va, paging)`` -- content-addressed by physical start so
    a root switch never runs stale code -- and dropped when a physmem
    write watcher reports a store into their frame. The EXEC-translation
    memo (``(vpn, user) -> pa_base``) is revalidated against the TLB
    epoch, which advances on flush / invlpg / eviction / PTE change.
    """

    def __init__(self, cpu) -> None:
        self.cpu = cpu
        self.mmu: BareMMU = cpu.mmu
        self.physmem = cpu.mmu.physmem
        self._blocks: Dict[Tuple[int, int, bool], Tuple] = {}
        self._frame_keys: Dict[int, Set[Tuple[int, int, bool]]] = {}
        self._memo: Dict[Tuple[int, bool], Tuple[int, int]] = {}
        self._epoch_cell = [0]
        self._costs_sig = self._sig()
        self.blocks_compiled = 0
        self.blocks_invalidated = 0
        self.fallback_steps = 0

    # -- bookkeeping -----------------------------------------------------

    def _sig(self) -> Tuple[int, int, int, int]:
        c = self.cpu.costs
        return (
            c.instr_cycles,
            c.mul_extra_cycles,
            c.div_extra_cycles,
            c.tlb_hit_cycles,
        )

    def check_costs(self) -> None:
        """Drop compiled code if the cost model changed since compile."""
        sig = self._sig()
        if sig != self._costs_sig:
            self._costs_sig = sig
            self.flush()

    def flush(self) -> None:
        self._blocks.clear()
        self._frame_keys.clear()
        self._memo.clear()
        self._epoch_cell[0] += 1

    def invalidate_pfn(self, pfn: int) -> None:
        """A store hit a frame with compiled code: drop its blocks."""
        keys = self._frame_keys.pop(pfn, None)
        if not keys:
            return
        blocks = self._blocks
        for key in keys:
            if blocks.pop(key, None):
                self.blocks_invalidated += 1
        self._epoch_cell[0] += 1

    def stats(self) -> Dict[str, int]:
        return {
            "blocks_compiled": self.blocks_compiled,
            "blocks_invalidated": self.blocks_invalidated,
            "fallback_steps": self.fallback_steps,
            "blocks_cached": len(self._blocks),
        }

    # -- dispatch --------------------------------------------------------

    def lookup(self, pc: int) -> Optional[Tuple]:
        """Return ``(closure, n_instructions)`` for ``pc``, or None.

        None means "take one reference-interpreter step": EXEC
        translation not memoizable right now (TLB miss -- the step will
        walk and refill), or the block starts with something the
        compiler does not handle (system ops, page-straddling code).
        """
        mmu = self.mmu
        if mmu.paging_enabled:
            user = self.cpu.csr[0] == 1
            vpn = pc >> 12
            tlb = mmu.tlb
            memo_key = (vpn, user)
            m = self._memo.get(memo_key)
            if m is None or m[1] != tlb.epoch:
                pte = tlb.peek(vpn, AccessType.EXEC, user)
                if pte is None:
                    self.fallback_steps += 1
                    return None
                m = ((pte >> 12) << 12, tlb.epoch)
                if len(self._memo) > 4096:
                    self._memo.clear()
                self._memo[memo_key] = m
            pa = m[0] | (pc & 0xFFF)
            key = (pa, pc, True)
        else:
            pa = pc & 0xFFFFFFFF
            key = (pa, pc, False)
        blk = self._blocks.get(key)
        if blk is None:
            blk = self._compile(key, pa, pc, key[2])
        if not blk:
            self.fallback_steps += 1
            return None
        return blk

    def _compile(self, key, pa: int, va: int, paging: bool) -> Tuple:
        physmem = self.physmem
        items: List[Tuple[str, Instruction, int]] = []
        off = va & 0xFFF
        cursor_pa, cursor_va = pa, va
        try:
            while len(items) < MAX_BLOCK_INSTRUCTIONS and off + 4 <= 0x1000:
                word = physmem.read_u32(cursor_pa)
                has_imm = bool((word >> 24) & 0x80)
                length = 8 if has_imm else 4
                if off + length > 0x1000:
                    break  # straddles the page: interpreter handles it
                imm_word = physmem.read_u32(cursor_pa + 4) if has_imm else 0
                ins = decode(word, imm_word)
                op = ins.op
                if op.value > Op.BGEU.value:
                    break  # system ops take the reference path
                if op in (Op.DIVU, Op.REMU) and ins.has_imm32 and not ins.imm32:
                    break  # constant DIV0 always traps: reference path
                items.append(("native", ins, cursor_va))
                off += length
                cursor_pa += length
                cursor_va = (cursor_va + length) & 0xFFFFFFFF
                if op in _TERMINATORS:
                    break
        except (DecodeError, MemoryError_):
            pass  # undecodable/unmapped tail: block ends before it
        if items:
            fn = _compile_items(
                self.cpu.costs,
                items,
                layer="cpu",
                paging=paging,
                vpn=va >> 12,
                epoch_cell=self._epoch_cell,
            )
            blk: Tuple = (fn, len(items))
            self.blocks_compiled += 1
        else:
            blk = _UNCOMPILABLE
        self._blocks[key] = blk
        pfn = pa >> 12
        self._frame_keys.setdefault(pfn, set()).add(key)
        self.cpu._code_pfns.add(pfn)
        return blk
