"""VISA instruction-set definition: encoding, decoding, register names.

Instruction encoding (little-endian 32-bit words)::

    31       24 23    20 19    16 15    12 11            0
    +----------+--------+--------+--------+---------------+
    |  opcode  |   rd   |   ra   |   rb   |    simm12     |
    +----------+--------+--------+--------+---------------+

If bit 7 of the opcode (:data:`IMM_FLAG`) is set, a 32-bit immediate
word follows and replaces the ``rb`` operand. Instructions are therefore
4 or 8 bytes long.

Register r0 is hardwired to zero (writes are discarded), RISC-V style.
"""

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

MODE_KERNEL = 0
MODE_USER = 1

#: Opcode bit marking a trailing 32-bit immediate word.
IMM_FLAG = 0x80


class Op(enum.IntEnum):
    """Base opcodes (immediate variants are ``op | IMM_FLAG``)."""

    NOP = 0x00
    ADD = 0x01
    SUB = 0x02
    MUL = 0x03
    DIVU = 0x04
    REMU = 0x05
    AND = 0x06
    OR = 0x07
    XOR = 0x08
    SHL = 0x09
    SHR = 0x0A
    SAR = 0x0B
    SLT = 0x0C
    SLTU = 0x0D
    MOV = 0x0E
    MOVI = 0x0F

    LD = 0x10
    ST = 0x11
    LDB = 0x12
    STB = 0x13

    JAL = 0x18
    JALR = 0x19
    BEQ = 0x1A
    BNE = 0x1B
    BLT = 0x1C
    BGE = 0x1D
    BLTU = 0x1E
    BGEU = 0x1F

    SYSCALL = 0x20
    IRET = 0x21
    HLT = 0x22
    CSRR = 0x23
    CSRW = 0x24
    OUT = 0x25
    IN = 0x26
    VMCALL = 0x27
    INVLPG = 0x28
    STI = 0x29
    CLI = 0x2A
    BRK = 0x2B


class CSR(enum.IntEnum):
    """Control and status registers."""

    MODE = 0  # current privilege (read-only architectural view)
    PTBR = 1  # page-table base (physical address of the page directory)
    VBAR = 2  # trap vector base (single entry point)
    IE = 3  # interrupt-enable flag
    EPC = 4  # exception PC
    ECAUSE = 5  # exception cause (Cause value)
    EVAL = 6  # exception value (faulting address / syscall number)
    SCRATCH = 7  # kernel scratch word
    CYCLES = 8  # free-running cycle counter (read-only)
    INSTRET = 9  # retired-instruction counter (read-only)
    ESTATUS = 10  # saved (mode | IE<<1) at trap entry; consumed by IRET
    CPUID = 11  # core identifier (read-only)
    HEDELEG = 12  # H-mode: exception-cause delegation bitmap (bit = Cause)
    HIDELEG = 13  # H-mode: interrupt-cause delegation bitmap (bit = Cause)


#: CSRs readable from user mode *without trapping*. MODE and IE are the
#: deliberate Popek-Goldberg violation: a deprivileged guest kernel reads
#: them and silently observes the *hardware* values (user mode, host IE)
#: instead of its virtual ones. CYCLES/INSTRET/CPUID are benign reads.
PUBLIC_CSRS = frozenset({CSR.MODE, CSR.IE, CSR.CYCLES, CSR.INSTRET, CSR.CPUID})

#: Instructions that trap with Cause.PRIV when executed in user mode.
PRIVILEGED_OPS = frozenset(
    {Op.IRET, Op.HLT, Op.CSRW, Op.OUT, Op.IN, Op.INVLPG}
)

#: Sensitive-but-unprivileged instructions: execute in user mode without
#: trapping and silently misbehave (STI/CLI are ignored; CSRR of MODE/IE
#: reads hardware state). These are what break pure trap-and-emulate.
SENSITIVE_UNPRIV_OPS = frozenset({Op.STI, Op.CLI})


class Cause(enum.IntEnum):
    """Trap causes, written to ECAUSE on delivery."""

    NONE = 0
    SYSCALL = 1
    PF_READ = 2
    PF_WRITE = 3
    PF_EXEC = 4
    PRIV = 5
    ILLEGAL = 6
    IRQ_TIMER = 7
    IRQ_DEVICE = 8
    DIV0 = 9
    BREAK = 10


#: HEDELEG with every synchronous exception cause delegated to the guest
#: (hardware-assisted guests handle their own faults without a VM exit).
#: IRQ causes live in HIDELEG, so they are excluded here.
HEDELEG_ALL = (
    (1 << Cause.SYSCALL)
    | (1 << Cause.PF_READ)
    | (1 << Cause.PF_WRITE)
    | (1 << Cause.PF_EXEC)
    | (1 << Cause.PRIV)
    | (1 << Cause.ILLEGAL)
    | (1 << Cause.DIV0)
    | (1 << Cause.BREAK)
)

#: HIDELEG with both interrupt causes delegated to the guest.
HIDELEG_ALL = (1 << Cause.IRQ_TIMER) | (1 << Cause.IRQ_DEVICE)

#: Causes controlled by HIDELEG (everything else consults HEDELEG).
IRQ_CAUSES = frozenset({Cause.IRQ_TIMER, Cause.IRQ_DEVICE})


class Reg(enum.IntEnum):
    """Register numbers with ABI aliases (see assembler for names)."""

    ZERO = 0
    A0 = 1
    A1 = 2
    A2 = 3
    A3 = 4
    T0 = 5
    T1 = 6
    T2 = 7
    T3 = 8
    S0 = 9
    S1 = 10
    S2 = 11
    FP = 12
    SP = 13
    LR = 14
    K0 = 15


#: name -> register number (assembler input, disassembler output).
REG_NAMES: Dict[str, int] = {f"r{i}": i for i in range(16)}
REG_NAMES.update(
    {
        "zero": 0,
        "a0": 1,
        "a1": 2,
        "a2": 3,
        "a3": 4,
        "t0": 5,
        "t1": 6,
        "t2": 7,
        "t3": 8,
        "s0": 9,
        "s1": 10,
        "s2": 11,
        "fp": 12,
        "sp": 13,
        "lr": 14,
        "k0": 15,
    }
)

#: register number -> preferred alias for disassembly.
REG_ALIASES: Dict[int, str] = {
    0: "zero", 1: "a0", 2: "a1", 3: "a2", 4: "a3",
    5: "t0", 6: "t1", 7: "t2", 8: "t3",
    9: "s0", 10: "s1", 11: "s2",
    12: "fp", 13: "sp", 14: "lr", 15: "k0",
}


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction."""

    op: Op
    rd: int
    ra: int
    rb: int
    simm12: int
    imm32: int  # meaningful only when has_imm32
    has_imm32: bool
    length: int  # 4 or 8 bytes

    @property
    def operand_b(self) -> Tuple[bool, int]:
        """(is_immediate, value-or-register): the B operand source."""
        if self.has_imm32:
            return True, self.imm32
        return False, self.rb


class DecodeError(Exception):
    """Raised when bytes do not decode to a valid instruction."""


def _sext12(value: int) -> int:
    value &= 0xFFF
    return value - 0x1000 if value & 0x800 else value


def encode(
    op: Op,
    rd: int = 0,
    ra: int = 0,
    rb: int = 0,
    simm12: int = 0,
    imm32: int = None,
) -> bytes:
    """Encode one instruction to 4 or 8 little-endian bytes."""
    for name, reg in (("rd", rd), ("ra", ra), ("rb", rb)):
        if not 0 <= reg <= 15:
            raise ValueError(f"{name}={reg} out of register range")
    if not -2048 <= simm12 <= 2047:
        raise ValueError(f"simm12={simm12} out of 12-bit signed range")
    opcode = int(op)
    if imm32 is not None:
        opcode |= IMM_FLAG
    word = (
        (opcode << 24)
        | (rd << 20)
        | (ra << 16)
        | (rb << 12)
        | (simm12 & 0xFFF)
    )
    out = word.to_bytes(4, "little")
    if imm32 is not None:
        out += (imm32 & 0xFFFFFFFF).to_bytes(4, "little")
    return out


def decode(word: int, imm_word: int = 0) -> Instruction:
    """Decode from the first word (and the immediate word if flagged).

    The caller fetches ``imm_word`` only when ``word``'s opcode has
    :data:`IMM_FLAG` set; interpreters typically fetch 4 bytes, test the
    flag, then fetch 4 more.
    """
    raw_op = (word >> 24) & 0xFF
    has_imm = bool(raw_op & IMM_FLAG)
    base = raw_op & ~IMM_FLAG
    try:
        op = Op(base)
    except ValueError:
        raise DecodeError(f"invalid opcode {raw_op:#x}") from None
    return Instruction(
        op=op,
        rd=(word >> 20) & 0xF,
        ra=(word >> 16) & 0xF,
        rb=(word >> 12) & 0xF,
        simm12=_sext12(word),
        imm32=imm_word & 0xFFFFFFFF,
        has_imm32=has_imm,
        length=8 if has_imm else 4,
    )


def is_privileged(op: Op, csr: int = -1) -> bool:
    """True if this (op, csr) combination traps in user mode.

    CSRR is privileged only for non-public CSRs; the public ones are the
    sensitive non-trapping reads.
    """
    if op in PRIVILEGED_OPS:
        return True
    if op is Op.CSRR:
        try:
            return CSR(csr) not in PUBLIC_CSRS
        except ValueError:
            return True  # unknown CSR: privileged (and will fault anyway)
    return False


def is_sensitive(op: Op, csr: int = -1) -> bool:
    """True for Popek-Goldberg-violating instructions (user-mode silent).

    These execute in user mode without trapping yet read or (fail to)
    write privileged state: STI, CLI, and CSRR of MODE/IE.
    """
    if op in SENSITIVE_UNPRIV_OPS:
        return True
    if op is Op.CSRR and csr in (int(CSR.MODE), int(CSR.IE)):
        return True
    return False
