"""The VISA CPU: ISA definition, assembler, interpreter, MMU interface.

VISA is a 32-bit RISC-like ISA designed to expose the exact structure
that CPU-virtualization results depend on (Popek & Goldberg 1974):

* **privileged** instructions (CSRW, IRET, HLT, IN/OUT, INVLPG, and CSRR
  of privileged registers) trap when executed in user mode;
* **sensitive but unprivileged** instructions (STI, CLI, and CSRR of the
  MODE/IE registers) execute in user mode *without trapping* and observe
  or silently fail to change privileged state -- the deliberate
  Popek-Goldberg violation, mirroring x86's 17 non-virtualizable
  instructions, that motivates binary translation and paravirtualization;
* everything else is innocuous.

The interpreter charges cycles from :class:`repro.mem.costs.CostModel`
and delegates every translation to a pluggable MMU object, which is how
the hypervisor layers in shadow or nested paging without touching the
interpreter.
"""

from repro.cpu.isa import (
    Op,
    CSR,
    Cause,
    Reg,
    Instruction,
    decode,
    encode,
    MODE_KERNEL,
    MODE_USER,
    PRIVILEGED_OPS,
    SENSITIVE_UNPRIV_OPS,
    PUBLIC_CSRS,
)
from repro.cpu.exits import VMExit, ExitReason
from repro.cpu.assembler import Assembler, Program, AssemblyError
from repro.cpu.disasm import disassemble, disassemble_one
from repro.cpu.mmu import MMUBase, BareMMU
from repro.cpu.interp import CPUCore, RunResult, StopReason, TrapInfo, VirtPolicy

__all__ = [
    "Op",
    "CSR",
    "Cause",
    "Reg",
    "Instruction",
    "decode",
    "encode",
    "MODE_KERNEL",
    "MODE_USER",
    "PRIVILEGED_OPS",
    "SENSITIVE_UNPRIV_OPS",
    "PUBLIC_CSRS",
    "VMExit",
    "ExitReason",
    "Assembler",
    "Program",
    "AssemblyError",
    "disassemble",
    "disassemble_one",
    "MMUBase",
    "BareMMU",
    "CPUCore",
    "RunResult",
    "StopReason",
    "TrapInfo",
    "VirtPolicy",
]
