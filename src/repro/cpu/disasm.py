"""VISA disassembler (debugging aid and round-trip test oracle)."""

from typing import List, Tuple

from repro.cpu.isa import CSR, Instruction, Op, REG_ALIASES, decode


def _reg(n: int) -> str:
    return REG_ALIASES.get(n, f"r{n}")


def _csr(n: int) -> str:
    try:
        return CSR(n).name
    except ValueError:
        return str(n)


def format_instruction(ins: Instruction) -> str:
    """Render one decoded instruction in assembler syntax."""
    imm, bval = ins.operand_b
    b = f"{bval:#x}" if imm else _reg(bval)

    op = ins.op
    if op is Op.NOP:
        return "nop"
    if op in (Op.ADD, Op.SUB, Op.MUL, Op.DIVU, Op.REMU, Op.AND, Op.OR,
              Op.XOR, Op.SHL, Op.SHR, Op.SAR, Op.SLT, Op.SLTU):
        return f"{op.name.lower()} {_reg(ins.rd)}, {_reg(ins.ra)}, {b}"
    if op is Op.MOV:
        return f"mov {_reg(ins.rd)}, {_reg(ins.ra)}"
    if op is Op.MOVI:
        return f"li {_reg(ins.rd)}, {ins.imm32:#x}"
    if op in (Op.LD, Op.LDB):
        return f"{op.name.lower()} {_reg(ins.rd)}, [{_reg(ins.ra)}{ins.simm12:+d}]"
    if op in (Op.ST, Op.STB):
        return f"{op.name.lower()} [{_reg(ins.ra)}{ins.simm12:+d}], {_reg(ins.rb)}"
    if op is Op.JAL:
        if ins.rd == 0:
            return f"jmp {ins.imm32:#x}"
        return f"jal {_reg(ins.rd)}, {ins.imm32:#x}"
    if op is Op.JALR:
        if ins.rd == 0:
            return "ret" if ins.ra == 14 else f"jalr zero, {_reg(ins.ra)}"
        return f"jalr {_reg(ins.rd)}, {_reg(ins.ra)}"
    if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU):
        return (
            f"{op.name.lower()} {_reg(ins.ra)}, {_reg(ins.rb)}, {ins.imm32:#x}"
        )
    if op is Op.SYSCALL:
        return f"syscall {ins.simm12}"
    if op is Op.VMCALL:
        return f"vmcall {ins.simm12}"
    if op is Op.CSRR:
        return f"csrr {_reg(ins.rd)}, {_csr(ins.simm12)}"
    if op is Op.CSRW:
        return f"csrw {_csr(ins.simm12)}, {_reg(ins.ra)}"
    if op is Op.OUT:
        return f"out {ins.simm12:#x}, {_reg(ins.ra)}"
    if op is Op.IN:
        return f"in {_reg(ins.rd)}, {ins.simm12:#x}"
    if op is Op.INVLPG:
        return f"invlpg {_reg(ins.ra)}"
    return op.name.lower()  # iret, hlt, sti, cli, brk


def disassemble_one(data: bytes, offset: int = 0) -> Tuple[str, int]:
    """Disassemble the instruction at ``offset``; return (text, length)."""
    word = int.from_bytes(data[offset : offset + 4], "little")
    imm_word = 0
    if (word >> 24) & 0x80:
        imm_word = int.from_bytes(data[offset + 4 : offset + 8], "little")
    ins = decode(word, imm_word)
    return format_instruction(ins), ins.length


def disassemble(data: bytes, base: int = 0) -> List[str]:
    """Disassemble a whole image; one "addr: text" line per instruction."""
    lines: List[str] = []
    offset = 0
    while offset + 4 <= len(data):
        try:
            text, length = disassemble_one(data, offset)
        except Exception:
            word = int.from_bytes(data[offset : offset + 4], "little")
            text, length = f".word {word:#010x}", 4
        lines.append(f"{base + offset:#010x}: {text}")
        offset += length
    return lines
