"""Two-pass VISA assembler.

Accepts the syntax used throughout :mod:`repro.guest`::

    ; comment                  # comment
    .org  0x1000               ; set location counter (also the load base)
    .equ  STACK_TOP, 0x9000    ; named constant
    .word 0xdeadbeef           ; literal 32-bit data
    .space 64                  ; zero-filled bytes

    start:
        li    a0, 42           ; load 32-bit immediate
        add   a1, a0, 8        ; immediate B operand -> imm32 form
        add   a1, a0, t0       ; register B operand
        ld    t1, [sp+4]
        st    [sp+0], t1
        beq   a0, zero, done   ; branch to label (absolute imm32)
        call  subroutine       ; jal lr, subroutine
        jmp   loop
        ret                    ; jalr zero, lr
        syscall 3
        vmcall  1
        csrw  PTBR, a0
        csrr  a0, ECAUSE
        out   0x40, a0
        in    a0, 0x40
        push  s0
        pop   s0

Expressions in immediate positions are ``term (('+'|'-') term)*`` where a
term is an integer literal (decimal, 0x hex, 0b binary, possibly negative)
or a symbol (label or .equ constant).

Pass 1 parses and sizes every statement (instruction length is decidable
syntactically: the B operand is an immediate iff its token is not a
register name); pass 2 resolves symbols and emits bytes.
"""

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cpu.isa import CSR, Op, REG_NAMES, encode

_MEM_RE = re.compile(r"^\[\s*([A-Za-z_][A-Za-z0-9_]*)\s*([+-]\s*[^\]]+)?\]$")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][A-Za-z0-9_.$]*):")
_INT_RE = re.compile(r"^-?(0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)$")


class AssemblyError(Exception):
    """Parse or resolution failure; message includes the source line."""

    def __init__(self, message: str, line_no: Optional[int] = None, line: str = ""):
        location = f" (line {line_no}: {line.strip()!r})" if line_no else ""
        super().__init__(message + location)
        self.line_no = line_no


@dataclass
class Program:
    """Assembled image."""

    base: int
    data: bytes
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = 0

    @property
    def size(self) -> int:
        return len(self.data)

    def load(self, physmem, pa: Optional[int] = None) -> int:
        """Copy the image into physical memory; returns the load address."""
        addr = self.base if pa is None else pa
        physmem.write_bytes(addr, self.data)
        return addr


@dataclass
class _Statement:
    line_no: int
    line: str
    addr: int = 0
    size: int = 0
    emit: Optional[Callable[["_Resolver"], bytes]] = None


class _Resolver:
    """Symbol/expression evaluation context for pass 2."""

    def __init__(self, symbols: Dict[str, int]):
        self.symbols = symbols

    def expr(self, text: str, line_no: int, line: str) -> int:
        text = text.strip()
        if not text:
            raise AssemblyError("empty expression", line_no, line)
        # A negative integer literal ("-4") must not be split into 0 - 4
        # (they are equivalent) but a leading sign is normalized by
        # prepending a zero term so the token stream alternates properly.
        if text[0] in "+-":
            text = "0" + text
        tokens = re.split(r"\s*([+-])\s*", text)
        if any(t == "" for t in tokens):
            raise AssemblyError(f"bad expression {text!r}", line_no, line)
        value = self._term(tokens[0], line_no, line)
        i = 1
        while i < len(tokens):
            sign, term = tokens[i], tokens[i + 1]
            term_val = self._term(term, line_no, line)
            value = value + term_val if sign == "+" else value - term_val
            i += 2
        return value

    def _term(self, token: str, line_no: int, line: str) -> int:
        token = token.strip()
        if _INT_RE.match(token):
            return int(token, 0)
        if token in self.symbols:
            return self.symbols[token]
        raise AssemblyError(f"undefined symbol {token!r}", line_no, line)


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self):
        self._symbols: Dict[str, int] = {}
        self._statements: List[_Statement] = []
        self._origin: Optional[int] = None
        self._pc = 0

    def assemble(self, source: str, base: int = 0) -> Program:
        """Assemble ``source``; ``base`` is used unless ``.org`` appears."""
        self._symbols = {}
        self._statements = []
        self._origin = None
        self._pc = base

        for line_no, raw in enumerate(source.splitlines(), start=1):
            self._parse_line(line_no, raw)

        resolver = _Resolver(self._symbols)
        chunks: List[bytes] = []
        for st in self._statements:
            if st.emit is None:
                continue
            data = st.emit(resolver)
            if len(data) != st.size:
                raise AssemblyError(
                    f"internal: sized {st.size} but emitted {len(data)}",
                    st.line_no,
                    st.line,
                )
            chunks.append(data)

        origin = self._origin if self._origin is not None else base
        program = Program(
            base=origin,
            data=b"".join(chunks),
            symbols=dict(self._symbols),
            entry=self._symbols.get("start", origin),
        )
        return program

    # -- pass 1 ------------------------------------------------------------

    def _parse_line(self, line_no: int, raw: str) -> None:
        line = raw.split(";")[0].split("#")[0].strip()
        while True:
            m = _LABEL_RE.match(line)
            if not m:
                break
            name = m.group(1)
            if name in self._symbols:
                raise AssemblyError(f"duplicate label {name!r}", line_no, raw)
            self._symbols[name] = self._pc
            line = line[m.end():].strip()
        if not line:
            return
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        operands = [op.strip() for op in _split_operands(rest)] if rest.strip() else []

        if mnemonic.startswith("."):
            self._directive(mnemonic, operands, line_no, raw)
            return

        for instr_size, emit in self._expand(mnemonic, operands, line_no, raw):
            st = _Statement(line_no, raw, addr=self._pc, size=instr_size, emit=emit)
            self._statements.append(st)
            self._pc += instr_size

    def _directive(
        self, name: str, operands: List[str], line_no: int, raw: str
    ) -> None:
        if name == ".org":
            if len(operands) != 1:
                raise AssemblyError(".org needs one operand", line_no, raw)
            value = int(operands[0], 0)
            if self._statements or self._origin is not None:
                raise AssemblyError(
                    ".org must appear once, before any code", line_no, raw
                )
            self._origin = value
            self._pc = value
        elif name == ".equ":
            if len(operands) != 2:
                raise AssemblyError(".equ needs NAME, VALUE", line_no, raw)
            symbol = operands[0]
            if symbol in self._symbols:
                raise AssemblyError(f"duplicate symbol {symbol!r}", line_no, raw)
            self._symbols[symbol] = int(operands[1], 0)
        elif name == ".word":
            for op_text in operands:
                self._emit_data(4, self._word_emitter(op_text, line_no, raw))
        elif name == ".space":
            if len(operands) != 1:
                raise AssemblyError(".space needs a byte count", line_no, raw)
            count = int(operands[0], 0)
            if count < 0:
                raise AssemblyError(".space count must be >= 0", line_no, raw)
            self._emit_data(count, lambda _r, n=count: b"\x00" * n)
        else:
            raise AssemblyError(f"unknown directive {name}", line_no, raw)

    def _word_emitter(self, text: str, line_no: int, raw: str):
        def emit(resolver: _Resolver) -> bytes:
            value = resolver.expr(text, line_no, raw)
            return (value & 0xFFFFFFFF).to_bytes(4, "little")

        return emit

    def _emit_data(self, size: int, emit) -> None:
        st = _Statement(0, "", addr=self._pc, size=size, emit=emit)
        self._statements.append(st)
        self._pc += size

    # -- instruction expansion ---------------------------------------------

    def _expand(
        self, mnemonic: str, ops: List[str], line_no: int, raw: str
    ) -> List[Tuple[int, Callable]]:
        """Return [(size, emit_fn), ...] -- pseudos expand to several."""
        err = lambda msg: AssemblyError(msg, line_no, raw)  # noqa: E731

        def reg(token: str) -> int:
            r = REG_NAMES.get(token.lower())
            if r is None:
                raise err(f"not a register: {token!r}")
            return r

        def is_reg(token: str) -> bool:
            return token.lower() in REG_NAMES

        def simple(op: Op, rd=0, ra=0, rb=0, simm12=0) -> Tuple[int, Callable]:
            return 4, lambda _r: encode(op, rd, ra, rb, simm12)

        def with_imm(op: Op, rd, ra, expr_text) -> Tuple[int, Callable]:
            def emit(resolver: _Resolver) -> bytes:
                value = resolver.expr(expr_text, line_no, raw)
                return encode(op, rd, ra, 0, 0, imm32=value)

            return 8, [emit][0]

        def alu3(op: Op) -> List[Tuple[int, Callable]]:
            if len(ops) != 3:
                raise err(f"{mnemonic} needs rd, ra, rb/imm")
            rd, ra = reg(ops[0]), reg(ops[1])
            if is_reg(ops[2]):
                return [simple(op, rd, ra, reg(ops[2]))]
            return [with_imm(op, rd, ra, ops[2])]

        def mem_operand(token: str) -> Tuple[int, str]:
            m = _MEM_RE.match(token)
            if not m:
                raise err(f"bad memory operand {token!r} (want [reg+off])")
            base_reg = reg(m.group(1))
            off_text = (m.group(2) or "+0").replace(" ", "")
            return base_reg, off_text

        def load_store(op: Op, data_first: bool) -> List[Tuple[int, Callable]]:
            if len(ops) != 2:
                raise err(f"{mnemonic} needs two operands")
            if data_first:  # ld rd, [ra+off]
                rd, (ra, off_text) = reg(ops[0]), mem_operand(ops[1])
                rb = 0
            else:  # st [ra+off], rb
                (ra, off_text), rb = mem_operand(ops[0]), reg(ops[1])
                rd = 0

            def emit(resolver: _Resolver) -> bytes:
                off = resolver.expr(off_text, line_no, raw)
                if not -2048 <= off <= 2047:
                    raise err(f"displacement {off} outside simm12")
                return encode(op, rd, ra, rb, off)

            return [(4, emit)]

        def branch(op: Op) -> List[Tuple[int, Callable]]:
            if len(ops) != 3:
                raise err(f"{mnemonic} needs ra, rb, target")
            ra, rb = reg(ops[0]), reg(ops[1])

            def emit(resolver: _Resolver) -> bytes:
                target = resolver.expr(ops[2], line_no, raw)
                return encode(op, 0, ra, rb, 0, imm32=target)

            return [(8, emit)]

        def small_imm(op: Op) -> List[Tuple[int, Callable]]:
            number = int(ops[0], 0) if ops else 0
            if not -2048 <= number <= 2047:
                raise err(f"{mnemonic} number {number} outside simm12")
            return [simple(op, simm12=number)]

        def csr_num(token: str) -> int:
            try:
                return int(CSR[token.upper()])
            except KeyError:
                pass
            if _INT_RE.match(token):
                return int(token, 0)
            raise err(f"unknown CSR {token!r}")

        table: Dict[str, Callable[[], List[Tuple[int, Callable]]]] = {
            "nop": lambda: [simple(Op.NOP)],
            "add": lambda: alu3(Op.ADD),
            "sub": lambda: alu3(Op.SUB),
            "mul": lambda: alu3(Op.MUL),
            "divu": lambda: alu3(Op.DIVU),
            "remu": lambda: alu3(Op.REMU),
            "and": lambda: alu3(Op.AND),
            "or": lambda: alu3(Op.OR),
            "xor": lambda: alu3(Op.XOR),
            "shl": lambda: alu3(Op.SHL),
            "shr": lambda: alu3(Op.SHR),
            "sar": lambda: alu3(Op.SAR),
            "slt": lambda: alu3(Op.SLT),
            "sltu": lambda: alu3(Op.SLTU),
            "ld": lambda: load_store(Op.LD, data_first=True),
            "st": lambda: load_store(Op.ST, data_first=False),
            "ldb": lambda: load_store(Op.LDB, data_first=True),
            "stb": lambda: load_store(Op.STB, data_first=False),
            "beq": lambda: branch(Op.BEQ),
            "bne": lambda: branch(Op.BNE),
            "blt": lambda: branch(Op.BLT),
            "bge": lambda: branch(Op.BGE),
            "bltu": lambda: branch(Op.BLTU),
            "bgeu": lambda: branch(Op.BGEU),
            "syscall": lambda: small_imm(Op.SYSCALL),
            "vmcall": lambda: small_imm(Op.VMCALL),
            "iret": lambda: [simple(Op.IRET)],
            "hlt": lambda: [simple(Op.HLT)],
            "sti": lambda: [simple(Op.STI)],
            "cli": lambda: [simple(Op.CLI)],
            "brk": lambda: [simple(Op.BRK)],
        }

        if mnemonic in table:
            return table[mnemonic]()

        # Forms with irregular operands:
        if mnemonic in ("li", "movi"):
            if len(ops) != 2:
                raise err("li needs rd, imm")
            return [with_imm(Op.MOVI, reg(ops[0]), 0, ops[1])]
        if mnemonic == "mov":
            if len(ops) != 2:
                raise err("mov needs rd, ra")
            return [simple(Op.MOV, reg(ops[0]), reg(ops[1]))]
        if mnemonic == "csrr":
            if len(ops) != 2:
                raise err("csrr needs rd, csr")
            return [simple(Op.CSRR, reg(ops[0]), simm12=csr_num(ops[1]))]
        if mnemonic == "csrw":
            if len(ops) != 2:
                raise err("csrw needs csr, ra")
            return [simple(Op.CSRW, ra=reg(ops[1]), simm12=csr_num(ops[0]))]
        if mnemonic == "out":
            if len(ops) != 2:
                raise err("out needs port, ra")
            return [simple(Op.OUT, ra=reg(ops[1]), simm12=int(ops[0], 0))]
        if mnemonic == "in":
            if len(ops) != 2:
                raise err("in needs rd, port")
            return [simple(Op.IN, rd=reg(ops[0]), simm12=int(ops[1], 0))]
        if mnemonic == "invlpg":
            if len(ops) != 1:
                raise err("invlpg needs ra")
            return [simple(Op.INVLPG, ra=reg(ops[0]))]
        if mnemonic == "jal":
            if len(ops) != 2:
                raise err("jal needs rd, target")
            return [with_imm(Op.JAL, reg(ops[0]), 0, ops[1])]
        if mnemonic == "jalr":
            if len(ops) != 2:
                raise err("jalr needs rd, ra")
            return [simple(Op.JALR, reg(ops[0]), reg(ops[1]))]

        # Pseudo-instructions:
        if mnemonic == "call":
            if len(ops) != 1:
                raise err("call needs a target")
            return [with_imm(Op.JAL, REG_NAMES["lr"], 0, ops[0])]
        if mnemonic == "jmp":
            if len(ops) != 1:
                raise err("jmp needs a target")
            return [with_imm(Op.JAL, 0, 0, ops[0])]
        if mnemonic == "ret":
            return [simple(Op.JALR, 0, REG_NAMES["lr"])]
        if mnemonic == "beqz":
            if len(ops) != 2:
                raise err("beqz needs ra, target")
            ra = reg(ops[0])
            return [
                (8, lambda r, ra=ra: encode(Op.BEQ, 0, ra, 0, 0,
                                            imm32=r.expr(ops[1], line_no, raw)))
            ]
        if mnemonic == "bnez":
            if len(ops) != 2:
                raise err("bnez needs ra, target")
            ra = reg(ops[0])
            return [
                (8, lambda r, ra=ra: encode(Op.BNE, 0, ra, 0, 0,
                                            imm32=r.expr(ops[1], line_no, raw)))
            ]
        if mnemonic == "push":
            if len(ops) != 1:
                raise err("push needs a register")
            sp, src = REG_NAMES["sp"], reg(ops[0])
            return [
                (8, lambda _r: encode(Op.ADD, sp, sp, 0, 0, imm32=-4 & 0xFFFFFFFF)),
                (4, lambda _r: encode(Op.ST, 0, sp, src, 0)),
            ]
        if mnemonic == "pop":
            if len(ops) != 1:
                raise err("pop needs a register")
            sp, dst = REG_NAMES["sp"], reg(ops[0])
            return [
                (4, lambda _r: encode(Op.LD, dst, sp, 0, 0)),
                (8, lambda _r: encode(Op.ADD, sp, sp, 0, 0, imm32=4)),
            ]

        raise err(f"unknown mnemonic {mnemonic!r}")


def _split_operands(text: str) -> List[str]:
    """Split on commas that are not inside [...] memory operands."""
    parts: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in (s.strip() for s in parts) if p]
