"""VM exits: the control transfers from guest execution to the VMM.

On real hardware these are defined by the virtualization extension
(VT-x exit reasons / SVM exit codes); placing them in the CPU package
mirrors that. The interpreter raises :class:`VMExit` at an exit point;
the hypervisor run loop catches it, handles it, and re-enters.
"""

import enum
from typing import Any, Dict, Optional


class ExitReason(enum.Enum):
    """Why the guest stopped running."""

    PRIV_INSTR = "priv_instr"  # trapping privileged instruction
    SENSITIVE = "sensitive"  # BT callout for a non-trapping sensitive op
    CSR_WRITE = "csr_write"  # write to an intercepted CSR (e.g. PTBR)
    IO_IN = "io_in"
    IO_OUT = "io_out"
    VMCALL = "vmcall"  # explicit hypercall
    HLT = "hlt"
    PAGE_FAULT = "page_fault"  # shadow fill or nested (EPT-style) violation
    GUEST_TRAP = "guest_trap"  # trap that must be reflected into the guest
    TRIPLE_FAULT = "triple_fault"
    EXTERNAL_IRQ = "external_irq"  # host interrupt while guest running
    PREEMPT = "preempt"  # scheduling quantum expired


class VMExit(Exception):
    """Raised inside guest execution to transfer control to the VMM.

    ``qualification`` carries reason-specific detail (faulting address,
    port number, CSR index, ...), mirroring the VMCS exit-qualification
    field.
    """

    def __init__(
        self,
        reason: ExitReason,
        guest_pc: int = 0,
        instruction_length: int = 0,
        **qualification: Any,
    ):
        super().__init__(reason.value)
        self.reason = reason
        self.guest_pc = guest_pc
        self.instruction_length = instruction_length
        self.qualification: Dict[str, Any] = qualification

    def qual(self, key: str, default: Optional[Any] = None) -> Any:
        return self.qualification.get(key, default)

    def __repr__(self) -> str:
        return (
            f"<VMExit {self.reason.value} @ {self.guest_pc:#x} "
            f"{self.qualification}>"
        )
