"""Directed-random VISA guest program generator.

Every fuzz case is a small self-contained guest image built from three
fixed parts plus a variable body:

* a **trap vector stub** (:data:`VEC_BASE`) that logs every trap to an
  in-memory ring, implements the exit protocol (``syscall 0x7FF`` ->
  ``hlt``), and otherwise skips the faulting instruction and ``iret``\\ s
  -- so page faults, privilege violations, illegal CSR accesses and
  division by zero are *survivable* and the program keeps running;
* a **preamble** (:data:`PRE_BASE`, the entry point) that installs the
  vector, configures the virtio-blk queue, optionally enables paging,
  and seeds the registers -- all with guest instructions, so the entire
  architectural setup is part of the image and needs no harness help;
* a **body** (:data:`BODY_BASE`) of fixed-size 32-byte *cells*, each
  emitted by one weighted template (ALU churn, loads, wild stores,
  branches, self-modifying code, trap-vector corruption, page-table
  root switches, TLB shootdowns, mode switches into a user stub,
  virtio kicks, inline-cache stress loops, interrupt-enabled
  preemption loops, delegation-CSR churn, two-stage paging stress,
  ...), NOP-padded, ending in a ``syscall 0x7FF`` tail.

Determinism contract: the layout (paging on/off, register seeds, alias
mappings, restricted-root flags) derives from ``fork(case_seed, 1)``
and the cells from ``fork(case_seed, 2)``, so a shrinker can delete or
simplify *cells* while the rest of the image stays byte-identical.

Interrupts are fair game: bodies enable IE with ``STI``, restore it
through ``IRET`` (ESTATUS writes are *not* masked), and run preemptable
loops while the harness's seeded
:class:`~repro.devices.schedule.EventSchedule` fires timer/virtio/
console interrupts at fixed retire counts. Asynchronous delivery is
still deterministic -- an event due at retire edge N lands before the
fetch of instruction N+1 in every engine -- so the comparison point
stays engine-independent. The vector stub irets in place for IRQ
causes, which also restores the interrupted IE state.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cpu.isa import CSR, Op, encode
from repro.util.rng import DeterministicRNG

# -- guest-physical layout (identity-mapped when paging is on) --------------

PAGE = 0x1000
MEM_BYTES = 0x100000  # 1 MiB of guest RAM, 256 pages

VEC_BASE = 0x1000  # trap vector stub (page 1)
PRE_BASE = 0x2000  # preamble = entry point (page 2)
BODY_BASE = 0x3000  # generated cells (pages 3..5)
USER_STUB = 0x6000  # fixed user-mode program (page 6, user-executable)
LOG_BASE = 0x7000  # trap log ring: count word, then 16-byte entries
DATA_BASE = 0x8000  # scratch data (pages 8..15; 8..9 user-readable)
DATA_END = 0x10000
STACK_TOP = 0x11000  # page 16 is the stack
RING_DESC = 0x11000  # virtio-blk descriptor table (page 17)
RING_AVAIL = 0x11400
RING_USED = 0x11800
RING_SIZE = 16
BUF_BASE = 0x12000  # virtio request buffers (page 18), 4 slots x 0x400
ALIAS_BASE = 0x40000  # alias VAs (pages 64..71) -> data frames

ROOT0 = 0x20000  # primary page directory
LEAF0 = 0x21000
ROOT1 = 0x24000  # restricted variant (RO/unmapped/NX tweaks)
LEAF1 = 0x25000

#: Guest-physical span holding page tables. The walker sets A/D bits in
#: these pages at *TLB-miss* time, which legitimately differs between
#: shadow and nested paging; differential comparison masks this span.
PT_SPAN = (0x20000, 0x28000)

CELL = 32  # bytes per body cell (8 words), templates are NOP-padded
MAX_CELLS = 40
EXIT_SYSCALL = 0x7FF  # syscall value the vector turns into HLT

# PTE bits (mirrors repro.mem.paging; duplicated to keep the generator
# importable without pulling the MMU in).
P, W, U, NX = 1, 2, 4, 32


def _pte(pfn: int, flags: int) -> int:
    return (pfn << 12) | flags


_NOP = encode(Op.NOP)

# Instruction ports
_CONS_TX = 0x10
_CONS_STATUS = 0x11
_VIRTIO = 0x70  # +0 desc, +1 avail, +2 used, +3 size, +4 kick, +5 status


# -- fixed code fragments ---------------------------------------------------


def _build_vector() -> bytes:
    """The trap vector stub. Clobbers r14/r15 only.

    Logs (ecause, eval, epc) into the LOG ring, halts on the exit
    syscall, irets in place for IRQs/BRK, and skips the faulting
    instruction (by its decoded length) for everything else.
    """
    E = encode
    not_sys = VEC_BASE + 120
    ret = VEC_BASE + 216
    code = b"".join([
        E(Op.MOVI, rd=14, imm32=LOG_BASE),            # 0
        E(Op.LD, rd=15, ra=14),                       # 8   count
        E(Op.ADD, rd=15, ra=15, imm32=1),             # 12
        E(Op.ST, ra=14, rb=15),                       # 20  count += 1
        E(Op.SUB, rd=15, ra=15, imm32=1),             # 24
        E(Op.AND, rd=15, ra=15, imm32=63),            # 32  idx mod 64
        E(Op.SHL, rd=15, ra=15, imm32=4),             # 40  idx * 16
        E(Op.ADD, rd=14, ra=14, rb=15),               # 48  entry base - 16
        E(Op.CSRR, rd=15, simm12=int(CSR.ECAUSE)),    # 52
        E(Op.ST, ra=14, rb=15, simm12=16),            # 56
        E(Op.CSRR, rd=15, simm12=int(CSR.EVAL)),      # 60
        E(Op.ST, ra=14, rb=15, simm12=20),            # 64
        E(Op.CSRR, rd=15, simm12=int(CSR.EPC)),       # 68
        E(Op.ST, ra=14, rb=15, simm12=24),            # 72
        E(Op.CSRR, rd=15, simm12=int(CSR.ECAUSE)),    # 76
        E(Op.MOVI, rd=14, imm32=1),                   # 80  Cause.SYSCALL
        E(Op.BNE, ra=15, rb=14, imm32=not_sys),       # 88
        E(Op.CSRR, rd=15, simm12=int(CSR.EVAL)),      # 96
        E(Op.MOVI, rd=14, imm32=EXIT_SYSCALL),        # 100
        E(Op.BNE, ra=15, rb=14, imm32=ret),           # 108  other syscalls iret
        E(Op.HLT),                                    # 116  exit protocol
        # not_sys (120): IRQs and BRK resume at EPC as-is
        E(Op.MOVI, rd=14, imm32=7),                   # 120  IRQ_TIMER
        E(Op.BEQ, ra=15, rb=14, imm32=ret),           # 128
        E(Op.MOVI, rd=14, imm32=8),                   # 136  IRQ_DEVICE
        E(Op.BEQ, ra=15, rb=14, imm32=ret),           # 144
        E(Op.MOVI, rd=14, imm32=10),                  # 152  BREAK
        E(Op.BEQ, ra=15, rb=14, imm32=ret),           # 160
        # faults: skip the faulting instruction (4 or 8 bytes by IMM_FLAG)
        E(Op.CSRR, rd=14, simm12=int(CSR.EPC)),       # 168
        E(Op.LD, rd=15, ra=14),                       # 172
        E(Op.SHR, rd=15, ra=15, imm32=24),            # 176
        E(Op.AND, rd=15, ra=15, imm32=0x80),          # 184
        E(Op.SHR, rd=15, ra=15, imm32=5),             # 192  0 or 4
        E(Op.ADD, rd=14, ra=14, rb=15),               # 200
        E(Op.ADD, rd=14, ra=14, imm32=4),             # 204
        E(Op.CSRW, ra=14, simm12=int(CSR.EPC)),       # 212
        # ret (216)
        E(Op.IRET),                                   # 216
    ])
    assert len(code) == 220, len(code)
    return code


def _build_user_stub() -> bytes:
    """Fixed user-mode program entered by the ``user`` template.

    Exercises user-side faults (privileged CSRW -> PRIV reflect),
    user loads of a user-mapped page, a mid-run syscall, and the exit
    syscall. A trailing self-loop catches a corrupted-vector skid.
    """
    E = encode
    off_loop = USER_STUB + 40
    code = b"".join([
        E(Op.ADD, rd=4, ra=4, imm32=7),                 # 0
        E(Op.CSRW, ra=4, simm12=int(CSR.SCRATCH)),      # 8  PRIV trap
        E(Op.MOVI, rd=5, imm32=DATA_BASE),              # 12
        E(Op.LD, rd=6, ra=5),                           # 20 user read
        E(Op.SYSCALL, simm12=0x33),                     # 24 logged + resumed
        E(Op.XOR, rd=4, ra=4, rb=6),                    # 28
        E(Op.SYSCALL, simm12=0x37),                     # 32
        E(Op.SYSCALL, simm12=EXIT_SYSCALL),             # 36
        E(Op.JAL, imm32=off_loop),                      # 40 self-loop
    ])
    return code


VECTOR_CODE = _build_vector()
USER_CODE = _build_user_stub()


def _build_rings() -> Dict[int, bytes]:
    """Pre-baked virtio-blk ring + 4 request buffers.

    Chains j=0..3 live at descriptors 3j..3j+2; even chains are reads,
    odd chains are writes. The avail ring is fully populated with
    ``ring[s] = 3*(s % 4)``; the guest only bumps ``avail.idx``.
    """
    desc = bytearray(RING_SIZE * 16)

    def put_desc(i, addr, length, flags, nxt):
        desc[i * 16:i * 16 + 16] = (
            addr.to_bytes(4, "little") + length.to_bytes(4, "little")
            + flags.to_bytes(4, "little") + nxt.to_bytes(4, "little")
        )

    buf = bytearray(PAGE)
    for j in range(4):
        slot = BUF_BASE + j * 0x400
        is_write = j % 2  # BLK_T_WRITE = 1
        put_desc(3 * j, slot, 12, 1, 3 * j + 1)  # header, F_NEXT
        data_flags = 1 | (0 if is_write else 2)  # reads need F_WRITE
        put_desc(3 * j + 1, slot + 0x10, 512, data_flags, 3 * j + 2)
        put_desc(3 * j + 2, slot + 0x3F0, 1, 2, 0)  # status, F_WRITE
        o = j * 0x400
        buf[o:o + 12] = (
            is_write.to_bytes(4, "little")
            + (j * 4).to_bytes(4, "little")  # sector
            + (1).to_bytes(4, "little")      # count
        )
        if is_write:
            pat = bytes((0x40 + j + (k % 29)) & 0xFF for k in range(512))
            buf[o + 0x10:o + 0x210] = pat

    avail = bytearray(4 + RING_SIZE * 4)
    for s in range(RING_SIZE):
        avail[4 + s * 4:8 + s * 4] = (3 * (s % 4)).to_bytes(4, "little")

    return {
        RING_DESC: bytes(desc),
        RING_AVAIL: bytes(avail),
        BUF_BASE: bytes(buf),
    }


RING_SEGMENTS = _build_rings()


# -- per-case layout --------------------------------------------------------

#: leaf-page flags for the primary root, keyed by virtual page number.
_BASE_MAP: Dict[int, int] = {
    1: P | W,           # vector
    2: P | W,           # preamble
    3: P | W, 4: P | W, 5: P | W,  # body
    6: P | U,           # user stub: user-executable, not writable
    7: P | W,           # trap log
    8: P | W | U, 9: P | W | U,    # user-visible data
    10: P | W, 11: P | W, 12: P | W, 13: P | W, 14: P | W, 15: P | W,
    16: P | W,          # stack
    17: P | W,          # virtio rings
    18: P | W,          # virtio buffers
}


@dataclass
class Layout:
    """Everything about a case that is *not* the body cells."""

    paging: bool
    reg_seeds: List[int]            # values for r1..r13
    aliases: List[Tuple[int, int, int, int]]  # (vpage, frame, flags0, flags1)


@dataclass
class CaseSpec:
    """One fuzz case: identity + layout + body cells.

    ``cells`` is the only mutable part (the shrinker edits it); layout
    re-derives from ``(root_seed, case_index)``.
    """

    root_seed: int
    case_index: int
    layout: Layout
    cells: List[bytes]
    template_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def body_instructions(self) -> int:
        """Upper bound on distinct body instructions (cells x 8 words)."""
        n = 0
        for cell in self.cells:
            i = 0
            while i < len(cell):
                word = int.from_bytes(cell[i:i + 4], "little")
                i += 8 if (word >> 24) & 0x80 else 4
                n += 1
        return n


def derive_layout(root_seed: int, case_index: int) -> Layout:
    """Layout is a pure function of the case identity (draw order fixed)."""
    rng = DeterministicRNG(root_seed).fork(case_index).fork(1)
    paging = rng.random() < 0.6
    seeds = []
    for _ in range(13):
        if rng.random() < 0.5:
            seeds.append(rng.choice([
                DATA_BASE, DATA_BASE + 0x1000, DATA_BASE + 0x4000,
                STACK_TOP - 0x100, LOG_BASE, RING_AVAIL, BUF_BASE,
                ALIAS_BASE, BODY_BASE,
            ]))
        else:
            seeds.append(rng.next_u64() & 0xFFFFFFFF)
    aliases = []
    for k in range(rng.randint(0, 6)):
        frame = rng.randint(8, 15)
        fl0 = P
        if rng.random() < 0.6:
            fl0 |= W
        if rng.random() < 0.4:
            fl0 |= U
        if rng.random() < 0.25:
            fl0 |= NX
        fl1 = P
        if rng.random() < 0.4:
            fl1 |= W
        if rng.random() < 0.4:
            fl1 |= U
        aliases.append((64 + k, frame, fl0, fl1))
    return Layout(paging=paging, reg_seeds=seeds, aliases=aliases)


def _build_page_tables(layout: Layout) -> Dict[int, bytes]:
    def leaf(restricted: bool) -> bytes:
        entries = [0] * 1024
        for vpn, flags in _BASE_MAP.items():
            if restricted:
                if vpn in (12, 13, 14, 15):
                    continue  # unmapped
                if vpn in (10, 11):
                    flags &= ~W
                if vpn == 9:
                    flags &= ~U
                if vpn == 5:
                    flags |= NX
            entries[vpn] = _pte(vpn, flags)
        for vpage, frame, fl0, fl1 in layout.aliases:
            entries[vpage] = _pte(frame, fl1 if restricted else fl0)
        return b"".join(e.to_bytes(4, "little") for e in entries)

    def root(leaf_pa: int) -> bytes:
        entries = [0] * 1024
        entries[0] = _pte(leaf_pa >> 12, P | W | U)
        return b"".join(e.to_bytes(4, "little") for e in entries)

    return {
        ROOT0: root(LEAF0), LEAF0: leaf(False),
        ROOT1: root(LEAF1), LEAF1: leaf(True),
    }


def _build_preamble(layout: Layout) -> bytes:
    E = encode
    parts = [
        E(Op.MOVI, rd=15, imm32=VEC_BASE),
        E(Op.CSRW, ra=15, simm12=int(CSR.VBAR)),
        E(Op.MOVI, rd=15, imm32=RING_DESC),
        E(Op.OUT, ra=15, simm12=_VIRTIO + 0),
        E(Op.MOVI, rd=15, imm32=RING_AVAIL),
        E(Op.OUT, ra=15, simm12=_VIRTIO + 1),
        E(Op.MOVI, rd=15, imm32=RING_USED),
        E(Op.OUT, ra=15, simm12=_VIRTIO + 2),
        E(Op.MOVI, rd=15, imm32=RING_SIZE),
        E(Op.OUT, ra=15, simm12=_VIRTIO + 3),
    ]
    if layout.paging:
        parts += [
            E(Op.MOVI, rd=15, imm32=ROOT0),
            E(Op.CSRW, ra=15, simm12=int(CSR.PTBR)),
        ]
    for i, value in enumerate(layout.reg_seeds, start=1):
        parts.append(E(Op.MOVI, rd=i, imm32=value))
    parts += [
        E(Op.MOVI, rd=14, imm32=0),
        E(Op.MOVI, rd=15, imm32=0),
        E(Op.JAL, imm32=BODY_BASE),
    ]
    return b"".join(parts)


# -- body templates ---------------------------------------------------------

_ALU_OPS = [Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
            Op.SAR, Op.MUL, Op.SLT, Op.SLTU, Op.MOV]
_BRANCHES = [Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU]
#: benign 4-byte instruction words the SMC template writes over code.
_SMC_PAYLOAD_OPS = [Op.NOP, Op.ADD, Op.XOR, Op.OR, Op.MOV]


def _cell_addr(index: int) -> int:
    return BODY_BASE + index * CELL


class _BodyGen:
    def __init__(self, rng: DeterministicRNG, layout: Layout, ncells: int):
        self.rng = rng
        self.layout = layout
        self.ncells = ncells
        self.counts: Dict[str, int] = {}

    # helpers

    def _reg(self, lo=1, hi=13) -> int:
        return self.rng.randint(lo, hi)

    def _target_cell(self) -> int:
        # ncells == the tail cell, a legal branch target
        return _cell_addr(self.rng.randint(0, self.ncells))

    def _safe_addr(self) -> int:
        pool = [
            DATA_BASE + 4 * self.rng.randint(0, (DATA_END - DATA_BASE) // 4 - 1),
            STACK_TOP - 4 * self.rng.randint(1, 64),
            LOG_BASE + 0x800 + 4 * self.rng.randint(0, 64),
            BUF_BASE + 4 * self.rng.randint(0, 255),
        ]
        if self.layout.paging and self.layout.aliases:
            vpage, _f, _a, _b = self.rng.choice(self.layout.aliases)
            pool.append((vpage << 12) + 4 * self.rng.randint(0, 1023))
        return self.rng.choice(pool)

    # templates: each returns instruction bytes (<= CELL)

    def t_alu(self):
        parts = []
        for _ in range(self.rng.randint(2, 4)):
            op = self.rng.choice(_ALU_OPS)
            if self.rng.random() < 0.4:
                parts.append(encode(op, rd=self._reg(), ra=self._reg(),
                                    imm32=self.rng.next_u64() & 0xFFFFFFFF))
            else:
                parts.append(encode(op, rd=self._reg(), ra=self._reg(),
                                    rb=self._reg()))
        return b"".join(parts)

    def t_movi(self):
        return encode(Op.MOVI, rd=self._reg(),
                      imm32=self.rng.next_u64() & 0xFFFFFFFF)

    def t_load(self):
        op = self.rng.choice([Op.LD, Op.LD, Op.LD, Op.LDB])
        if self.rng.random() < 0.5:  # known-good address
            return (encode(Op.MOVI, rd=14, imm32=self._safe_addr())
                    + encode(op, rd=self._reg(), ra=14))
        return encode(op, rd=self._reg(), ra=self._reg(),
                      simm12=self.rng.randint(-2048, 2047))

    def t_store_safe(self):
        op = self.rng.choice([Op.ST, Op.ST, Op.ST, Op.STB])
        return (encode(Op.MOVI, rd=14, imm32=self._safe_addr())
                + encode(op, ra=14, rb=self._reg()))

    def t_store_wild(self):
        op = self.rng.choice([Op.ST, Op.STB])
        return encode(op, ra=self._reg(), rb=self._reg(),
                      simm12=self.rng.randint(-2048, 2047))

    def t_branch(self):
        return encode(self.rng.choice(_BRANCHES), ra=self._reg(),
                      rb=self._reg(), imm32=self._target_cell())

    def t_jal(self):
        rd = self.rng.choice([0, 0, self._reg()])
        return encode(Op.JAL, rd=rd, imm32=self._target_cell())

    def t_jalr(self):
        return (encode(Op.MOVI, rd=14, imm32=self._target_cell())
                + encode(Op.JALR, rd=self.rng.choice([0, 0, 13]), ra=14))

    def t_jalr_wild(self):
        return encode(Op.JALR, ra=self._reg())

    def t_smc(self, index: int):
        # write a benign word over a cell >= 8 cells away, then jump to
        # the next cell so the write is never inside the executing block
        far = [i for i in range(self.ncells) if abs(i - index) >= 8]
        if not far:
            return self.t_alu()
        tcell = self.rng.choice(far)
        word_off = self.rng.randint(0, 7) * 4
        payload = encode(self.rng.choice(_SMC_PAYLOAD_OPS),
                         rd=self._reg(), ra=self._reg(), rb=self._reg())
        return (encode(Op.MOVI, rd=14, imm32=_cell_addr(tcell) + word_off)
                + encode(Op.MOVI, rd=15,
                         imm32=int.from_bytes(payload[:4], "little"))
                + encode(Op.ST, ra=14, rb=15)
                + encode(Op.JAL, imm32=_cell_addr(index + 1)))

    def t_smc_loop(self, index: int):
        """Three-cell prime/overwrite/re-enter self-modifying construction.

        A translation-caching engine only runs stale code when a block
        *keyed at the overwritten address* was cached before the store
        and re-dispatched after it; sequential fallthrough never does
        that, so this template forces the sequence explicitly:

        * cell A (``index``) holds the 8-byte victim at ``A+8`` -- an
          always-untaken-at-first ``BNE r15`` escape -- plus a real
          escape branch and a jump to the control cell,
        * cell B (``index+1``) primes a block keyed exactly at the
          victim address (jump to ``A+8`` with ``r15 == 0``) and on the
          second arrival dispatches to the writer,
        * cell W (``index+2``) overwrites the victim with
          ``MOVI rd, marker`` (two word stores) and jumps back to
          ``A+8``.

        Correct engines re-decode and set ``rd = marker``; an engine
        that kept the stale block takes the old ``BNE`` (``r15`` is the
        nonzero payload word by then) and skips the marker, leaving
        ``rd`` at its seeded value.
        """
        a = _cell_addr(index)
        b = _cell_addr(index + 1)
        w = _cell_addr(index + 2)
        escape = _cell_addr(index + 3)
        victim = a + 8
        rd = self._reg()
        marker = (self.rng.next_u64() & 0x7FFFFFFF) | 1
        payload = encode(Op.MOVI, rd=rd, imm32=marker)
        lo = int.from_bytes(payload[:4], "little")
        hi = int.from_bytes(payload[4:], "little")
        cell_a = (encode(Op.XOR, rd=14, ra=14, rb=14)
                  + encode(Op.XOR, rd=15, ra=15, rb=15)
                  + encode(Op.BNE, ra=15, rb=0, imm32=escape)   # victim
                  + encode(Op.BNE, ra=15, rb=0, imm32=escape)   # post-SMC
                  + encode(Op.JAL, imm32=b))
        cell_b = (encode(Op.BNE, ra=14, rb=0, imm32=w)
                  + encode(Op.MOVI, rd=14, imm32=victim)
                  + encode(Op.JAL, imm32=victim))               # prime
        cell_w = (encode(Op.MOVI, rd=15, imm32=lo)
                  + encode(Op.ST, ra=14, rb=15)
                  + encode(Op.MOVI, rd=15, imm32=hi)
                  + encode(Op.ST, ra=14, rb=15, simm12=4)
                  + encode(Op.JAL, imm32=victim))               # re-enter
        return [_pad_cell(cell_a), _pad_cell(cell_b), _pad_cell(cell_w)]

    def t_ic_loop(self, index: int):
        """Bounded load/store self-loop stressing the JIT inline caches.

        Cell S seeds a trip counter (r13) and a data pointer (r12);
        cell L is a tight load/store loop whose backward branch targets
        its own start, so the block JIT compiles it as a self-looping
        closure with per-site inline caches -- then drops one chaos op
        into every iteration, chosen per-case:

        * ``tight``       -- extra load only: steady-state IC hits and
          store->load forwarding,
        * ``invlpg``      -- INVLPG on the touched page: the cached
          translation dies every iteration, forcing the IC miss path,
        * ``invlpg_wild`` -- INVLPG on an unrelated page: must *not*
          disturb the IC for the touched page,
        * ``root``        -- CSRW PTBR mid-loop: a full TLB flush per
          iteration (sometimes the restricted root, so the accesses
          themselves start faulting),
        * ``smc``         -- store a NOP word into the body page's dead
          tail: fires the code-page write watcher and invalidates the
          loop's own block every iteration,
        * ``syscall``     -- a trap/IRET round-trip mid-loop: MODE is
          rewritten twice per iteration and the block re-enters through
          the partial-progress accounting path,
        * ``user``        -- after the loop drains, IRET into the user
          stub, which re-reads the just-touched data page in user mode.

        Only r9..r13 are used: the trap vector clobbers r14/r15, and
        the faulting variants must keep the trip counter alive so the
        loop always terminates.
        """
        variants = ["tight", "syscall", "smc"]
        if self.layout.paging:
            variants += ["invlpg", "invlpg_wild", "root"]
        if self.ncells - index >= 3:
            variants.append("user")
        kind = self.rng.choice(variants)

        trips = self.rng.randint(4, 10)
        setup = [
            encode(Op.MOVI, rd=13, imm32=trips),
            encode(Op.MOVI, rd=12, imm32=self._safe_addr()),
        ]
        loop_va = _cell_addr(index + 1)
        body = [
            encode(Op.LD, rd=11, ra=12),
            encode(Op.ST, ra=12, rb=11, simm12=4),
        ]
        if kind == "invlpg":
            body.append(encode(Op.INVLPG, ra=12))
        elif kind == "invlpg_wild":
            other = self.rng.choice([VEC_BASE, LOG_BASE, ALIAS_BASE,
                                     STACK_TOP - PAGE])
            setup.append(encode(Op.MOVI, rd=10, imm32=other))
            body.append(encode(Op.INVLPG, ra=10))
        elif kind == "root":
            root = self.rng.choice([ROOT0, ROOT0, ROOT1])
            setup.append(encode(Op.MOVI, rd=10, imm32=root))
            body.append(encode(Op.CSRW, ra=10, simm12=int(CSR.PTBR)))
        elif kind == "smc":
            # Dead tail: past build_tail(), inside the (executed, hence
            # write-watched) body page, never fetched.
            dead = (_cell_addr(self.ncells) + 16
                    + 4 * self.rng.randint(0, 16))
            setup.append(encode(Op.MOVI, rd=10, imm32=dead))
            setup.append(encode(Op.MOVI, rd=9,
                                imm32=int.from_bytes(_NOP, "little")))
            body.append(encode(Op.ST, ra=10, rb=9))
        elif kind == "syscall":
            body.append(encode(Op.SYSCALL, simm12=0x41))
        else:  # tight / user
            body.append(encode(Op.LD, rd=10, ra=12, simm12=8))
        body.append(encode(Op.SUB, rd=13, ra=13, imm32=1))
        body.append(encode(Op.BNE, ra=13, rb=0, imm32=loop_va))

        cells = [_pad_cell(b"".join(setup)), _pad_cell(b"".join(body))]
        if kind == "user":
            off = self.rng.choice([0, 12])  # 12 skips the PRIV fault
            cells.append(_pad_cell(
                encode(Op.MOVI, rd=14, imm32=1)
                + encode(Op.CSRW, ra=14, simm12=int(CSR.ESTATUS))
                + encode(Op.MOVI, rd=14, imm32=USER_STUB + off)
                + encode(Op.CSRW, ra=14, simm12=int(CSR.EPC))
                + encode(Op.IRET)))
        return cells

    def t_vbar(self):
        target = self.rng.choice([0, 0x500, DATA_BASE + 0x2000, VEC_BASE,
                                  VEC_BASE])
        return (encode(Op.MOVI, rd=14, imm32=target)
                + encode(Op.CSRW, ra=14, simm12=int(CSR.VBAR)))

    def t_ptbr(self):
        root = self.rng.choice([ROOT0, ROOT0, ROOT1])
        return (encode(Op.MOVI, rd=14, imm32=root)
                + encode(Op.CSRW, ra=14, simm12=int(CSR.PTBR)))

    def t_invlpg(self):
        va = self.rng.choice([DATA_BASE, DATA_BASE + 0x7000, BODY_BASE,
                              ALIAS_BASE, STACK_TOP - PAGE,
                              self.rng.next_u64() & 0xFFFFF000])
        return (encode(Op.MOVI, rd=14, imm32=va)
                + encode(Op.INVLPG, ra=14))

    def t_csrw(self):
        csr = self.rng.choice([CSR.SCRATCH, CSR.SCRATCH, CSR.EPC, CSR.EVAL,
                               CSR.ECAUSE, CSR.ESTATUS])
        value = self.rng.next_u64() & 0xFFFFFFFF
        if csr is CSR.EPC:
            # keep EPC pointing at harmless ground if something irets
            value = self.rng.choice([DATA_BASE + (value & 0x3FFC),
                                     _cell_addr(self.rng.randint(0, self.ncells))])
        return (encode(Op.MOVI, rd=14, imm32=value)
                + encode(Op.CSRW, ra=14, simm12=int(csr)))

    def t_csrr(self):
        csr = self.rng.choice([CSR.MODE, CSR.PTBR, CSR.VBAR, CSR.IE,
                               CSR.EPC, CSR.ECAUSE, CSR.EVAL, CSR.SCRATCH,
                               CSR.ESTATUS, CSR.CPUID])
        return encode(Op.CSRR, rd=self._reg(), simm12=int(csr))

    def t_syscall(self):
        return encode(Op.SYSCALL, simm12=self.rng.randint(0, 0x7FE))

    def t_brk(self):
        return encode(Op.BRK)

    def t_div0(self):
        op = self.rng.choice([Op.DIVU, Op.REMU])
        return (encode(Op.MOVI, rd=14, imm32=0)
                + encode(op, rd=self._reg(), ra=self._reg(), rb=14))

    def t_user(self):
        return (encode(Op.MOVI, rd=14, imm32=1)
                + encode(Op.CSRW, ra=14, simm12=int(CSR.ESTATUS))
                + encode(Op.MOVI, rd=14, imm32=USER_STUB)
                + encode(Op.CSRW, ra=14, simm12=int(CSR.EPC))
                + encode(Op.IRET))

    def t_kick(self):
        return (encode(Op.MOVI, rd=14, imm32=RING_AVAIL)
                + encode(Op.LD, rd=15, ra=14)
                + encode(Op.ADD, rd=15, ra=15, imm32=1)
                + encode(Op.ST, ra=14, rb=15)
                + encode(Op.OUT, ra=15, simm12=_VIRTIO + 4))

    def t_console(self):
        ch = self.rng.randint(0x21, 0x7E)
        return (encode(Op.MOVI, rd=14, imm32=ch)
                + encode(Op.OUT, ra=14, simm12=_CONS_TX))

    def t_in(self):
        port = self.rng.choice([_CONS_STATUS, _VIRTIO + 3, _VIRTIO + 5])
        return encode(Op.IN, rd=self._reg(), simm12=port)

    def t_hlt(self):
        return encode(Op.HLT)

    # interrupt-enabled templates: these run with IE set so the seeded
    # event schedule actually *delivers* -- preemption points, handler
    # round-trips and IE restore paths all become differential surface.

    def t_sti_cli(self):
        """IE churn: delivery windows open and close between cells."""
        parts = []
        for _ in range(self.rng.randint(2, 6)):
            parts.append(encode(self.rng.choice([Op.STI, Op.STI, Op.CLI])))
        return b"".join(parts)

    def t_irq_loop(self, index: int):
        """Timer-preemption loop: STI, then a counted self-loop.

        The JIT compiles cell L as a self-looping closure; a schedule
        event due mid-loop must still land at its exact retire edge
        (the closure's loop-edge ``_loop_stop`` check is the poll), and
        the handler's IRET drops straight back into the loop body.
        """
        trips = self.rng.randint(8, 24)
        loop_va = _cell_addr(index + 1)
        setup = (encode(Op.MOVI, rd=13, imm32=trips)
                 + encode(Op.STI))
        body = (encode(Op.ADD, rd=12, ra=12, imm32=1)
                + encode(Op.SUB, rd=13, ra=13, imm32=1)
                + encode(Op.BNE, ra=13, rb=0, imm32=loop_va))
        return [_pad_cell(setup), _pad_cell(body)]

    def t_iret_ie(self, index: int):
        """IRET that *sets* IE: ESTATUS=2 (kernel, IE), EPC=next cell."""
        return (encode(Op.MOVI, rd=14, imm32=2)
                + encode(Op.CSRW, ra=14, simm12=int(CSR.ESTATUS))
                + encode(Op.MOVI, rd=14, imm32=_cell_addr(index + 1))
                + encode(Op.CSRW, ra=14, simm12=int(CSR.EPC))
                + encode(Op.IRET))

    def t_kick_storm(self):
        """Virtio kick with IE open: the completion IRQ delivers."""
        return encode(Op.STI) + self.t_kick()

    # H-mode surface: the delegation CSRs are plain storage to a guest
    # in every engine (native CSR-file slots under hardware assist,
    # virtualized into vcsr by the H-mode policy and the software
    # monitors), and page-table churn is exactly where the two-stage
    # walker's behaviour must stay invisible.

    def t_hdeleg(self):
        """Delegation-CSR churn: write HEDELEG/HIDELEG, read one back.

        The read-back lands in a compared register, so any engine that
        masks, traps on, or leaks host state through CSRs 12/13
        diverges immediately.
        """
        wcsr = self.rng.choice([CSR.HEDELEG, CSR.HIDELEG])
        rcsr = self.rng.choice([CSR.HEDELEG, CSR.HIDELEG])
        value = self.rng.next_u64() & 0xFFFFFFFF
        return (encode(Op.MOVI, rd=14, imm32=value)
                + encode(Op.CSRW, ra=14, simm12=int(wcsr))
                + encode(Op.CSRR, rd=self._reg(), simm12=int(rcsr)))

    def t_two_stage(self):
        """Root switch + touch + shootdown in one cell.

        Under H-mode the whole cell runs exit-free against the combined
        TLB (the load right after the PTBR write re-walks both stages);
        shadow engines exit on the CSRW *and* the INVLPG. Restricted
        roots make the touch itself fault sometimes -- survivable via
        the vector, and the fault cause must agree everywhere.
        """
        root = self.rng.choice([ROOT0, ROOT0, ROOT1])
        addr = self._safe_addr()
        return (encode(Op.MOVI, rd=14, imm32=root)
                + encode(Op.CSRW, ra=14, simm12=int(CSR.PTBR))
                + encode(Op.MOVI, rd=14, imm32=addr)
                + encode(Op.LD, rd=self._reg(), ra=14)
                + encode(Op.INVLPG, ra=14))


#: (name, weight, needs_paging) -- weights tuned so a typical case mixes
#: heavy ALU/memory churn with a steady drip of control-plane chaos.
_TEMPLATES = [
    ("alu", 20, False),
    ("movi", 8, False),
    ("load", 10, False),
    ("store_safe", 10, False),
    ("store_wild", 4, False),
    ("branch", 8, False),
    ("jal", 5, False),
    ("jalr", 3, False),
    ("jalr_wild", 1, False),
    ("smc", 2, False),
    ("smc_loop", 4, False),
    ("ic_loop", 6, False),
    ("vbar", 2, False),
    ("ptbr", 3, True),
    ("invlpg", 3, True),
    ("csrw", 4, False),
    ("csrr", 3, False),
    ("syscall", 3, False),
    ("brk", 1, False),
    ("div0", 2, False),
    ("user", 2, False),
    ("kick", 3, False),
    ("console", 2, False),
    ("in", 1, False),
    ("hlt", 1, False),
    ("sti_cli", 4, False),
    ("irq_loop", 5, False),
    ("iret_ie", 3, False),
    ("kick_storm", 3, False),
    ("hdeleg", 2, False),
    ("two_stage", 3, True),
]


def _pad_cell(code: bytes) -> bytes:
    assert len(code) <= CELL
    return code + _NOP * ((CELL - len(code)) // 4)


def build_tail(ncells: int) -> bytes:
    """Exit tail appended after the last generated cell."""
    addr = _cell_addr(ncells)
    return (encode(Op.SYSCALL, simm12=EXIT_SYSCALL)
            + encode(Op.HLT)
            + encode(Op.JAL, imm32=addr))  # skid guard: loop back


def generate_case(root_seed: int, case_index: int) -> CaseSpec:
    """Generate one case; pure function of ``(root_seed, case_index)``."""
    layout = derive_layout(root_seed, case_index)
    rng = DeterministicRNG(root_seed).fork(case_index).fork(2)
    ncells = rng.randint(4, MAX_CELLS)
    gen = _BodyGen(rng, layout, ncells)

    total = sum(w for _n, w, need_pg in _TEMPLATES
                if layout.paging or not need_pg)
    cells: List[bytes] = []
    while len(cells) < ncells:
        index = len(cells)
        pick = rng.randint(1, total)
        for name, weight, need_pg in _TEMPLATES:
            if need_pg and not layout.paging:
                continue
            pick -= weight
            if pick <= 0:
                break
        if name == "smc_loop":
            if ncells - index < 3:
                name = "alu"
                code = gen.t_alu()
            else:
                gen.counts[name] = gen.counts.get(name, 0) + 1
                cells.extend(gen.t_smc_loop(index))
                continue
        elif name == "ic_loop":
            if ncells - index < 2:
                name = "alu"
                code = gen.t_alu()
            else:
                gen.counts[name] = gen.counts.get(name, 0) + 1
                cells.extend(gen.t_ic_loop(index))
                continue
        elif name == "irq_loop":
            if ncells - index < 2:
                name = "alu"
                code = gen.t_alu()
            else:
                gen.counts[name] = gen.counts.get(name, 0) + 1
                cells.extend(gen.t_irq_loop(index))
                continue
        elif name == "smc":
            code = gen.t_smc(index)
        elif name == "iret_ie":
            code = gen.t_iret_ie(index)
        else:
            code = getattr(gen, "t_" + name)()
        gen.counts[name] = gen.counts.get(name, 0) + 1
        cells.append(_pad_cell(code))
    return CaseSpec(root_seed=root_seed, case_index=case_index,
                    layout=layout, cells=cells,
                    template_counts=dict(sorted(gen.counts.items())))


# -- image assembly ---------------------------------------------------------


def build_image(spec: CaseSpec) -> Dict[int, bytes]:
    """Assemble the guest-physical segments for a case.

    Returns ``{gpa: bytes}``; the harness copies each into guest RAM
    and starts the vCPU at :data:`PRE_BASE`. Everything else (vector
    install, virtio config, paging, register seeding) happens in-guest.
    """
    segments: Dict[int, bytes] = {
        VEC_BASE: VECTOR_CODE,
        PRE_BASE: _build_preamble(spec.layout),
        BODY_BASE: b"".join(spec.cells) + build_tail(len(spec.cells)),
        USER_STUB: USER_CODE,
    }
    segments.update(RING_SEGMENTS)
    if spec.layout.paging:
        segments.update(_build_page_tables(spec.layout))
    return segments
