"""Automatic shrinking of failing differential cases.

Classic delta debugging specialized for the cell-structured body:
whole-cell deletion at halving granularity (ddmin), then cell-level
NOP-out (preserves addresses, so address-dependent failures survive),
then word-level NOP-out inside the remaining cells. Acceptance keeps a
candidate only if it still fails with the *same verdict class*
``(kind, group)`` as the original; every probe is a full deterministic
re-execution across all five backends, so the output is a pure
function of ``(root_seed, case_index, opts)`` -- byte-identical cells
on every rerun.
"""

from typing import Dict, List, Optional

from repro.fuzz import gen
from repro.fuzz.diff import run_case_spec

#: Probe budget. Each probe re-runs the case on all five backends, so
#: this bounds shrink cost; passes simply stop improving when it runs
#: out and the best-so-far candidate is returned.
MAX_EVALS = 160

_NOP_CELL = gen._NOP * (gen.CELL // 4)


def _verdict_key(result: Dict):
    return (result["verdict"]["kind"], result["verdict"]["group"])


def shrink_case(root_seed: int, case_index: int,
                opts: Optional[Dict] = None,
                original: Optional[Dict] = None,
                max_evals: int = MAX_EVALS) -> Dict:
    """Shrink one failing case; returns the minimal cells + stats."""
    spec = gen.generate_case(root_seed, case_index)
    if original is None:
        original = run_case_spec(spec, opts)
    key = _verdict_key(original)
    if key[0] == "ok":
        raise ValueError("shrink_case called on a passing case")

    evals = 0

    def probe(cells: List[bytes]) -> Optional[Dict]:
        nonlocal evals
        if evals >= max_evals:
            return None
        evals += 1
        candidate = gen.CaseSpec(root_seed=root_seed, case_index=case_index,
                                 layout=spec.layout, cells=list(cells))
        result = run_case_spec(candidate, opts)
        return result if _verdict_key(result) == key else None

    cells = list(spec.cells)
    best = original

    # pass 1: delete chunks of cells, halving the chunk size
    granularity = max(1, len(cells) // 2)
    while granularity >= 1:
        i = 0
        while i < len(cells):
            if len(cells) <= 1:
                break
            candidate = cells[:i] + cells[i + granularity:]
            result = probe(candidate) if candidate else None
            if result is not None:
                cells, best = candidate, result  # retry the same offset
            else:
                i += granularity
        granularity //= 2

    # pass 2: blank whole cells in place (keeps later addresses stable)
    for i in range(len(cells)):
        if cells[i] == _NOP_CELL:
            continue
        candidate = cells[:i] + [_NOP_CELL] + cells[i + 1:]
        result = probe(candidate)
        if result is not None:
            cells, best = candidate, result

    # pass 3: blank individual instructions inside surviving cells
    for i in range(len(cells)):
        offset = 0
        while offset < gen.CELL:
            word = int.from_bytes(cells[i][offset:offset + 4], "little")
            length = 8 if (word >> 24) & 0x80 else 4
            if word != 0:
                patched = (cells[i][:offset] + gen._NOP * (length // 4)
                           + cells[i][offset + length:])
                candidate = cells[:i] + [patched] + cells[i + 1:]
                result = probe(candidate)
                if result is not None:
                    cells, best = candidate, result
                    length = 4  # the slot is NOPs now; rescan finely
            offset += length

    shrunk = gen.CaseSpec(root_seed=root_seed, case_index=case_index,
                          layout=spec.layout, cells=cells)
    return {
        "cells": cells,
        "result": best,
        "evals": evals,
        "original_cells": len(spec.cells),
        "shrunk_cells": len(cells),
        "body_instructions": shrunk.body_instructions,
    }
