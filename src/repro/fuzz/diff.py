"""Differential execution of one fuzz case across every backend.

Two comparison groups run the same guest image:

* **bare** -- the reference interpreter vs. the block JIT on a raw
  :class:`~repro.cpu.mmu.BareMMU` machine. The JIT's contract is
  bit-identical state *including* cycles, instret, TLB statistics and
  the full memory image, so everything is compared exactly.
* **vmm** -- four full-virtualization configs under the hypervisor:
  hardware-assist with shadow paging, hardware-assist with nested
  paging, hardware-assist with H-mode two-stage paging (delegated
  traps deliver natively; the delegation CSRs are virtualized), and
  binary translation (shadow). Only *guest-visible* state is
  compared: registers, pc, the guest CSR view, halt state, pending
  interrupt causes, console output, and guest memory with the
  page-table span masked (the walker sets accessed/dirty bits at
  TLB-miss time, which legitimately differs between shadow fills,
  nested walks and the hardware two-stage walker). Cycle counts are
  never compared across configs -- cost models differ by design.
  instret *is* comparable everywhere (BT monitor callouts retire,
  mirroring intercepted-and-emulated instructions under hardware
  assist), though against BT only on clean halts: at an instruction
  limit BT overshoots to a block boundary.

Each case also carries a seeded :class:`~repro.devices.schedule.
EventSchedule` (``opts["events"]``, on by default): timer, virtio and
console interrupts fire at fixed retire counts, so asynchronous
delivery itself is differentially tested -- a pending, unmasked IRQ
latched at retire edge N must be delivered before the fetch of
instruction N+1 in *every* engine, and with a nonzero fault rate the
``irq.*`` sites perturb that schedule identically across backends.

Outcomes are normalized to classes first; a cycle-guard trip is a
``hang`` (always a failure: some backend stopped making progress), and
aborts (guest triple faults, runaway accesses past RAM) must at least
be symmetric across a group.

TRAP_EMULATE is deliberately excluded: VISA's sensitive-but-
unprivileged instructions make it architecturally *wrong* (that is the
paper's point), so differential equality cannot hold there.
"""

from typing import Dict, List, Optional, Tuple

from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.cpu.interp import CPUCore, StopReason
from repro.cpu.isa import CSR, DecodeError
from repro.cpu.mmu import BareMMU
from repro.devices.irq import InterruptController
from repro.devices.schedule import EventSchedule
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.fuzz import gen
from repro.mem.costs import CostModel
from repro.mem.paging import PageFault
from repro.mem.physmem import PhysicalMemory
from repro.util.errors import ReproError

DEFAULT_MAX_INSTRUCTIONS = 600

#: IRQ-path fault sites armed (with the virtio site) when a case runs
#: with a nonzero fault rate. All are keyed to architected points --
#: line raises and retire-count edges -- so the same plan replays
#: identically in every backend.
IRQ_FAULT_SITES = ("irq.lost", "irq.spurious", "irq.storm", "irq.delayed")

#: H-mode fault sites armed in *every* config's plan. Per-site forked
#: streams mean the extra specs perturb nothing: configs without an
#: H-mode vCPU never evaluate these sites, and where they do fire the
#: effects are host-timing-only (``gstage_stall``) or re-injected
#: bit-identically (``delegation_miss``), so guest state still agrees.
HMODE_FAULT_SITES = ("hmode.delegation_miss", "hmode.gstage_stall")

#: CSRs that form the guest-visible control state (counters excluded).
#: HEDELEG/HIDELEG are plain storage to a guest in every engine --
#: native CSR-file slots under hardware assist, virtualized into vcsr
#: by the H-mode policy and the software monitors -- so their values
#: are comparable across all four configs.
GUEST_CSRS = (CSR.MODE, CSR.PTBR, CSR.VBAR, CSR.IE, CSR.EPC, CSR.ECAUSE,
              CSR.EVAL, CSR.SCRATCH, CSR.ESTATUS, CSR.HEDELEG, CSR.HIDELEG)

VMM_CONFIGS: Tuple[Tuple[str, VirtMode, MMUVirtMode], ...] = (
    ("hw-shadow", VirtMode.HW_ASSIST, MMUVirtMode.SHADOW),
    ("hw-nested", VirtMode.HW_ASSIST, MMUVirtMode.NESTED),
    ("hw-hmode", VirtMode.HW_ASSIST, MMUVirtMode.HMODE),
    ("bt-shadow", VirtMode.BINARY_TRANSLATION, MMUVirtMode.SHADOW),
)

_ABORTS = (ReproError, PageFault, DecodeError)


def bare_cycle_guard(max_instructions: int) -> int:
    """Generous ceiling: ~400 cycles/instruction plus slack. Tripping
    it means some engine stopped retiring (a hang), not a tight run."""
    return max_instructions * 400 + 50_000


def vmm_cycle_guard(max_instructions: int) -> int:
    """VMM runs pay world switches (1200c) and shadow fills (500c) per
    instruction in the worst case; still a hang detector, not a race."""
    return max_instructions * 4_000 + 400_000


def _mask_pt_span(mem: bytes) -> bytes:
    lo, hi = gen.PT_SPAN
    return mem[:lo] + b"\x00" * (hi - lo) + mem[hi:]


def _irq_injector(fault_rate: float, fault_seed: int) -> Optional[FaultInjector]:
    if fault_rate <= 0.0:
        return None
    return FaultInjector(FaultPlan(
        seed=fault_seed,
        specs=[FaultSpec(site, rate=fault_rate) for site in IRQ_FAULT_SITES],
    ))


# -- bare group -------------------------------------------------------------


def run_bare(segments: Dict[int, bytes], jit: bool,
             max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
             event_seed: Optional[int] = None,
             fault_rate: float = 0.0, fault_seed: int = 0) -> Dict:
    costs = CostModel()
    pm = PhysicalMemory(gen.MEM_BYTES)
    for addr in sorted(segments):
        pm.write_bytes(addr, segments[addr])
    mmu = BareMMU(pm, costs, tlb_entries=64)
    cpu = CPUCore(mmu, costs, port_bus=None, jit=jit)
    cpu.reset(gen.PRE_BASE)
    if event_seed is not None:
        # A bare machine still has a PIC in front of the core: the
        # schedule raises lines on it and the sink latches causes. No
        # port bus, so lines stay pending -- irrelevant to comparison,
        # which sees only the latched causes.
        injector = _irq_injector(fault_rate, fault_seed)
        pic = InterruptController(sink=cpu, injector=injector)
        cpu.events = EventSchedule.seeded(
            event_seed, horizon=max_instructions, controller=pic,
            injector=injector,
        )

    outcome, abort = None, None
    try:
        result = cpu.run(max_instructions=max_instructions,
                         cycle_guard=bare_cycle_guard(max_instructions))
        outcome = {
            StopReason.HALT: "halted",
            StopReason.INSTR_LIMIT: "instr_limit",
            StopReason.CYCLE_LIMIT: "hang",  # only the guard stops on cycles
        }[result.stop]
    except _ABORTS as exc:
        outcome = "abort"
        abort = f"{type(exc).__name__}: {exc}"

    return {
        "name": "jit" if jit else "interp",
        "outcome": outcome,
        "abort": abort,
        "pc": cpu.pc,
        "halted": cpu.halted,
        "regs": list(cpu.regs),
        "csr": list(cpu.csr),
        "pending": sorted(c.name for c in cpu.pending_irqs),
        "cycles": cpu.cycles,
        "instret": cpu.instret,
        "tlb": {
            "hits": mmu.tlb.stats.hits,
            "misses": mmu.tlb.stats.misses,
            "flushes": mmu.tlb.stats.flushes,
            "invalidations": mmu.tlb.stats.invalidations,
            "evictions": mmu.tlb.stats.evictions,
        },
        "walker": {"walks": mmu.walker.walks, "faults": mmu.walker.faults},
        "mem": pm.read_bytes(0, gen.MEM_BYTES),
    }


#: fields compared exactly between the interpreter and the JIT.
_BARE_FIELDS = ("pc", "halted", "regs", "csr", "pending", "cycles",
                "instret", "tlb", "walker", "mem")


def compare_bare(a: Dict, b: Dict) -> List[str]:
    if a["outcome"] != b["outcome"]:
        return ["outcome"]
    if a["outcome"] == "abort":
        # Abort points are not microarchitecturally aligned (a compiled
        # block may die mid-block); the abort itself must match.
        return [] if a["abort"] == b["abort"] else ["abort"]
    return [f for f in _BARE_FIELDS if a[f] != b[f]]


# -- vmm group --------------------------------------------------------------


def run_vmm(segments: Dict[int, bytes], config_name: str,
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
            fault_rate: float = 0.0, fault_seed: int = 0,
            event_seed: Optional[int] = None) -> Dict:
    virt_mode, mmu_mode = next(
        (v, m) for n, v, m in VMM_CONFIGS if n == config_name
    )
    hv = Hypervisor(memory_bytes=8 * gen.MEM_BYTES, costs=CostModel(),
                    tlb_entries=64)
    vm = hv.create_vm(GuestConfig(
        name="fuzz", memory_bytes=gen.MEM_BYTES, virt_mode=virt_mode,
        mmu_mode=mmu_mode, tlb_entries=64, prealloc=True,
        with_virtio=True, with_emulated_io=False,
    ))
    if fault_rate > 0.0:
        # All sites key to architected points (virtio kicks are
        # synchronous, IRQ faults draw per line raise / retire edge,
        # hmode sites per trap delivery / two-stage fill), so the same
        # plan fires identically in every config.
        injector = FaultInjector(FaultPlan(
            seed=fault_seed,
            specs=[FaultSpec("virtio.ring_stuck", rate=fault_rate)]
            + [FaultSpec(site, rate=fault_rate) for site in IRQ_FAULT_SITES]
            + [FaultSpec(site, rate=fault_rate) for site in HMODE_FAULT_SITES],
        ))
        vm.devices["virtio_blk"].injector = injector
        vm.pic.injector = injector
        hv.injector = injector
    else:
        injector = None
    for addr in sorted(segments):
        vm.guest_mem.write_bytes(addr, segments[addr])
    hv.reset_vcpu(vm, gen.PRE_BASE)

    vcpu = vm.vcpus[0]
    cpu = vcpu.cpu
    if event_seed is not None:
        # Hardware-assist delivers natively from cpu.pending_irqs; the
        # other modes must bounce to the pump so the monitor can inject
        # the virtual interrupt at the exact retire edge.
        cpu.events = EventSchedule.seeded(
            event_seed, horizon=max_instructions, controller=vm.pic,
            console=vm.devices["console"], injector=injector,
            exit_on_fire=virt_mode is not VirtMode.HW_ASSIST,
        )
    hw = virt_mode is VirtMode.HW_ASSIST
    outcome, abort = None, None
    try:
        res = hv.run(vm, max_guest_instructions=max_instructions,
                     max_cycles=vmm_cycle_guard(max_instructions))
        outcome = {
            "halted": "halted",
            "shutdown": "shutdown",
            "instr_limit": "instr_limit",
            "cycle_limit": "hang",
            "hung": "hang",
        }[res.value]
    except _ABORTS as exc:
        outcome = "abort"
        abort = f"{type(exc).__name__}: {exc}"

    csr_src = cpu.csr if hw else vcpu.vcsr
    pending = cpu.pending_irqs if hw else vm.pending_virqs
    csr_view = {c.name: csr_src[c] for c in GUEST_CSRS}
    if mmu_mode is MMUVirtMode.HMODE:
        # The H-mode policy virtualizes the delegation CSRs into vcsr
        # (the native slots hold the *host's* masks conceptually); the
        # guest-visible values live beside the software monitors'.
        for c in (CSR.HEDELEG, CSR.HIDELEG):
            csr_view[c.name] = vcpu.vcsr[c]
    return {
        "name": config_name,
        "outcome": outcome,
        "abort": abort,
        "pc": cpu.pc,
        "halted": bool(cpu.halted or vcpu.halted),
        "regs": list(cpu.regs),
        "csr_view": csr_view,
        "pending": sorted(c.name for c in pending),
        "console": vm.devices["console"].text,
        "instret": cpu.instret,
        "mem": vm.guest_mem.read_bytes(0, gen.MEM_BYTES),
    }


#: guest-visible fields compared across VMM configs ("mem" is masked).
_VMM_FIELDS = ("pc", "halted", "regs", "csr_view", "pending", "console")


def compare_vmm(results: List[Dict]) -> Tuple[Optional[str], List[str],
                                              Optional[Tuple[str, str]]]:
    """Return (failure_kind, differing_fields, (name_a, name_b)).

    failure_kind is None (agreement), "hang" (any backend tripped the
    cycle guard), or "divergence".
    """
    by_name = {r["name"]: r for r in results}
    if any(r["outcome"] == "hang" for r in results):
        hung = [r["name"] for r in results if r["outcome"] == "hang"]
        return "hang", ["outcome"], (hung[0], hung[0])

    base = results[0]
    for other in results[1:]:
        if other["outcome"] != base["outcome"]:
            return "divergence", ["outcome"], (base["name"], other["name"])

    outcome = base["outcome"]
    if outcome in ("abort", "shutdown"):
        # Abort details and shutdown points are backend-timed; symmetric
        # classes are all we require.
        return None, [], None

    def diff_state(a: Dict, b: Dict, with_instret: bool) -> List[str]:
        fields = [f for f in _VMM_FIELDS if a[f] != b[f]]
        if _mask_pt_span(a["mem"]) != _mask_pt_span(b["mem"]):
            fields.append("mem")
        if with_instret and a["instret"] != b["instret"]:
            fields.append("instret")
        return fields

    hw_s, bt = by_name["hw-shadow"], by_name["bt-shadow"]
    for other_name in ("hw-nested", "hw-hmode"):
        fields = diff_state(hw_s, by_name[other_name], with_instret=True)
        if fields:
            return "divergence", fields, ("hw-shadow", other_name)
    if outcome == "halted":
        # BT stops at the same architectural point on a halt; at an
        # instruction limit it legitimately overshoots (its run loop is
        # cycle-bounded), so BT state is only checked on clean exits.
        # instret is compared too: monitor callouts retire exactly like
        # their intercepted-and-emulated hardware-assist counterparts.
        fields = diff_state(hw_s, bt, with_instret=True)
        if fields:
            return "divergence", fields, ("hw-shadow", "bt-shadow")
    return None, [], None


# -- one full case ----------------------------------------------------------


def default_opts() -> Dict:
    return {"max_instructions": DEFAULT_MAX_INSTRUCTIONS,
            "fault_rate": 0.0, "bug": None, "events": True}


def run_case_spec(spec: gen.CaseSpec, opts: Optional[Dict] = None) -> Dict:
    """Execute one generated (or shrunk) case everywhere and compare."""
    opts = {**default_opts(), **(opts or {})}
    segments = gen.build_image(spec)
    max_instructions = opts["max_instructions"]
    fault_seed = spec.root_seed ^ (spec.case_index * 2654435761)
    # A distinct stream from the fault plan: the schedule's shape must
    # not correlate with which faults fire on it.
    event_seed = (fault_seed ^ 0x9E3779B9) if opts["events"] else None

    from repro.fuzz.bugs import apply_bug

    with apply_bug(opts.get("bug")):
        interp = run_bare(segments, jit=False, max_instructions=max_instructions,
                          event_seed=event_seed,
                          fault_rate=opts["fault_rate"], fault_seed=fault_seed)
        jit = run_bare(segments, jit=True, max_instructions=max_instructions,
                       event_seed=event_seed,
                       fault_rate=opts["fault_rate"], fault_seed=fault_seed)
        vmm = [
            run_vmm(segments, name, max_instructions=max_instructions,
                    fault_rate=opts["fault_rate"], fault_seed=fault_seed,
                    event_seed=event_seed)
            for name, _v, _m in VMM_CONFIGS
        ]

    verdict = {"kind": "ok", "group": None, "fields": [], "pair": None}
    bare_fields = compare_bare(interp, jit)
    if interp["outcome"] == "hang" or jit["outcome"] == "hang":
        verdict = {"kind": "hang", "group": "bare", "fields": ["outcome"],
                   "pair": ("interp", "jit")}
    elif bare_fields:
        verdict = {"kind": "divergence", "group": "bare",
                   "fields": bare_fields, "pair": ("interp", "jit")}
    else:
        kind, fields, pair = compare_vmm(vmm)
        if kind is not None:
            verdict = {"kind": kind, "group": "vmm", "fields": fields,
                       "pair": pair}

    return {
        "index": spec.case_index,
        "root_seed": spec.root_seed,
        "ncells": len(spec.cells),
        "body_instructions": spec.body_instructions,
        "paging": spec.layout.paging,
        "template_counts": spec.template_counts,
        "verdict": verdict,
        "outcomes": {r["name"]: r["outcome"]
                     for r in [interp, jit] + vmm},
        "aborts": {r["name"]: r["abort"]
                   for r in [interp, jit] + vmm if r["abort"]},
    }


def run_case(root_seed: int, case_index: int,
             opts: Optional[Dict] = None) -> Dict:
    """Generate + execute case ``case_index``; pure in its arguments."""
    return run_case_spec(gen.generate_case(root_seed, case_index), opts)
