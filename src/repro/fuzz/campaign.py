"""Fuzz campaigns: parallel differential execution + shrinking + manifest.

A campaign runs ``cases`` generated programs, each a pure function of
``(root_seed, case_index, opts)``, across all five backends. Cases
fan out over ``multiprocessing`` workers; because every case carries
its identity, scheduling is irrelevant to the results and a campaign's
manifest is byte-identical for ``--jobs 1`` and ``--jobs 8`` (modulo
the manifest's wall-clock timing block, which identity comparison
strips -- see :func:`manifest_identity`).

Failing cases are shrunk (optional) and written to the output
directory as corpus JSON plus standalone repro scripts; the manifest
summarizes outcomes, per-template coverage counters and shrink stats
under the ``fuzz.*`` metrics scope.
"""

import json
import multiprocessing
import os
from typing import Dict, List, Optional

from repro.fuzz.corpus import make_entry, save_entry, write_repro_script
from repro.fuzz.diff import default_opts, run_case
from repro.fuzz.shrink import shrink_case
from repro.obs.manifest import build_manifest
from repro.obs.registry import MetricsRegistry


def _run_one(args) -> Dict:
    root_seed, index, opts = args
    return run_case(root_seed, index, opts)


def run_campaign(root_seed: int, cases: int, jobs: int = 1,
                 opts: Optional[Dict] = None, shrink: bool = True,
                 out_dir: Optional[str] = None,
                 registry: Optional[MetricsRegistry] = None,
                 log=None) -> Dict:
    """Run a campaign; returns ``{"manifest", "results", "failures"}``."""
    opts = {**default_opts(), **(opts or {})}
    work = [(root_seed, i, opts) for i in range(cases)]

    if jobs > 1:
        # fork keeps the loaded package; chunking keeps dispatch cheap.
        ctx = multiprocessing.get_context("fork")
        chunk = max(1, cases // (jobs * 8))
        with ctx.Pool(processes=jobs) as pool:
            results = pool.map(_run_one, work, chunksize=chunk)
    else:
        results = [_run_one(w) for w in work]
    results.sort(key=lambda r: r["index"])

    failures = [r for r in results if r["verdict"]["kind"] != "ok"]
    if log and failures:
        for f in failures:
            log(f"case {f['index']}: {f['verdict']['kind']} "
                f"({f['verdict']['group']}, fields={f['verdict']['fields']})")

    shrunk: List[Dict] = []
    if shrink:
        for failure in failures:
            s = shrink_case(root_seed, failure["index"], opts,
                            original=failure)
            entry = make_entry(root_seed, failure["index"], s["cells"],
                               opts, s["result"]["verdict"],
                               shrink_evals=s["evals"])
            shrunk.append({"entry": entry, "stats": s})
            if log:
                log(f"case {failure['index']}: shrunk "
                    f"{s['original_cells']} -> {s['shrunk_cells']} cells "
                    f"({s['body_instructions']} instructions, "
                    f"{s['evals']} probes)")

    registry = registry if registry is not None else MetricsRegistry()
    scope = registry.scope("fuzz")
    scope.counter("cases").inc(len(results))
    scope.counter("divergences").inc(
        sum(1 for r in results if r["verdict"]["kind"] == "divergence"))
    scope.counter("hangs").inc(
        sum(1 for r in results if r["verdict"]["kind"] == "hang"))
    scope.counter("aborts").inc(
        sum(1 for r in results if r["outcomes"]["interp"] == "abort"))
    scope.counter("shrink.probes").inc(
        sum(s["stats"]["evals"] for s in shrunk))
    template_totals: Dict[str, int] = {}
    for r in results:
        for name, count in r["template_counts"].items():
            template_totals[name] = template_totals.get(name, 0) + count
    for name in sorted(template_totals):
        scope.counter(f"template.{name}").inc(template_totals[name])

    manifest = build_manifest(registry, experiment="fuzz", extra={
        "fuzz": {
            "root_seed": root_seed,
            "cases": cases,
            "opts": {k: v for k, v in sorted(opts.items())},
            "failures": [
                {"index": r["index"],
                 "verdict": r["verdict"],
                 "outcomes": r["outcomes"]}
                for r in failures
            ],
            "shrunk": [
                {"index": s["entry"]["case_index"],
                 "cells": s["entry"]["cells"],
                 "body_instructions": s["entry"]["body_instructions"],
                 "shrink_evals": s["entry"]["shrink_evals"]}
                for s in shrunk
            ],
            "outcome_classes": _outcome_histogram(results),
        },
    })

    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        with open(os.path.join(out_dir, "manifest.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        for s in shrunk:
            stem = f"repro-{root_seed}-{s['entry']['case_index']}"
            save_entry(os.path.join(out_dir, stem + ".json"), s["entry"])
            write_repro_script(os.path.join(out_dir, stem + ".py"),
                               s["entry"])

    return {"manifest": manifest, "results": results,
            "failures": failures, "shrunk": shrunk}


def _outcome_histogram(results: List[Dict]) -> Dict[str, int]:
    hist: Dict[str, int] = {}
    for r in results:
        for outcome in r["outcomes"].values():
            hist[outcome] = hist.get(outcome, 0) + 1
    return dict(sorted(hist.items()))


def manifest_identity(manifest: Dict) -> str:
    """Deterministic serialization of a campaign manifest: everything
    except wall-clock fields. Two campaigns over the same inputs must
    agree on this string regardless of ``--jobs``."""
    stripped = {k: v for k, v in manifest.items()
                if k not in ("time", "timebase")}
    return json.dumps(stripped, sort_keys=True)
