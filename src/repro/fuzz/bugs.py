"""Reintroducible known bugs, as reversible monkeypatches.

The fuzzer's acceptance test is not "it runs" but "it *catches*": each
shim re-creates the exact shape of a bug this codebase really had, so
tests (and ``python -m repro fuzz --bug ...``) can assert that a
campaign finds it and that the shrinker reduces it to a tiny repro.
Committed corpus entries record which shim they diverge under, turning
the corpus into a regression suite: replay must flag the case with the
shim applied and pass clean without it.
"""

import contextlib
from typing import Dict, Iterator, Optional

from repro.cpu.interp import CPUCore, PageFault, _IRQ_PRIORITY
from repro.cpu.isa import CSR, Cause


def _step_without_triple_fault_guard(self) -> None:
    """``CPUCore.step`` as it was before the triple-fault guard: a
    kernel-mode fault fetching the trap vector is re-delivered forever
    (pc pinned at VBAR, nothing retires -- a classic vector-loop hang).
    """
    if self.csr[CSR.IE] and self.pending_irqs:
        for cause in _IRQ_PRIORITY:
            if cause in self.pending_irqs:
                self.pending_irqs.discard(cause)
                self._trap(cause, 0, epc=self.pc)
                return
    pc = self.pc
    try:
        ins = self.fetch(pc)
    except PageFault as fault:
        self.cycles += self.costs.instr_cycles
        self._trap(Cause.PF_EXEC, fault.vaddr, epc=pc)
        return
    self.cycles += self.costs.instr_cycles
    self.execute(ins)


@contextlib.contextmanager
def _pr5_vector_loop() -> Iterator[None]:
    from repro.core import bt as btmod

    orig_step = CPUCore.step
    orig_translate = btmod.BTEngine._translate

    def translate_without_guard(self, va):
        # Strip the matching BT-side guard: reflect the vector-fetch
        # fault instead of raising TRIPLE_FAULT, like the old code did.
        try:
            return orig_translate(self, va)
        except btmod.VMExit as exit_:
            if exit_.reason is btmod.ExitReason.TRIPLE_FAULT:
                self.vcpu.reflect_trap(btmod.TrapInfo(
                    Cause.PF_EXEC, exit_.qual("value"), epc=va))
                return None
            raise

    CPUCore.step = _step_without_triple_fault_guard
    btmod.BTEngine._translate = translate_without_guard
    try:
        yield
    finally:
        CPUCore.step = orig_step
        btmod.BTEngine._translate = orig_translate


@contextlib.contextmanager
def _bt_stale_smc() -> Iterator[None]:
    """Binary translator without self-modifying-code invalidation: the
    write watcher never fires, so stores into already-translated guest
    code keep executing the stale translation (the VMM trio diverges:
    both hardware-assist configs see the new code, BT does not)."""
    from repro.core import bt as btmod

    orig = btmod.BTEngine._watch_block
    btmod.BTEngine._watch_block = lambda self, block: None
    try:
        yield
    finally:
        btmod.BTEngine._watch_block = orig


_BUGS: Dict[str, object] = {
    "pr5-vector-loop": _pr5_vector_loop,
    "bt-stale-smc": _bt_stale_smc,
}


def known_bugs():
    return tuple(sorted(_BUGS))


@contextlib.contextmanager
def apply_bug(name: Optional[str]) -> Iterator[None]:
    """Reversibly apply the named bug shim (no-op for ``None``)."""
    if name is None:
        yield
        return
    if name not in _BUGS:
        raise ValueError(f"unknown bug {name!r}; known: {known_bugs()}")
    with _BUGS[name]():
        yield
