"""Corpus persistence: shrunk repros as replayable JSON + repro scripts.

One corpus entry is one shrunk failing case, stored as JSON under the
``pyvisor.fuzz.corpus/1`` schema. The entry pins the case *identity*
(``root_seed``/``case_index``: the layout re-derives from these), the
shrunk ``cells`` as hex, the options it ran under (including the bug
shim it diverges under, if any), and the recorded verdict. Replaying
an entry re-executes it across all five backends and checks the
verdict class still matches -- which makes a directory of entries a
regression suite: cases shrunk under a bug shim must still flag with
the shim applied and must pass clean at HEAD.

``write_repro_script`` additionally emits a standalone Python script
(with a disassembly of the body) for debugging a single case by hand.
"""

import json
import os
from typing import Dict, List

from repro.cpu.disasm import disassemble
from repro.fuzz import gen
from repro.fuzz.diff import run_case_spec

CORPUS_SCHEMA = "pyvisor.fuzz.corpus/1"


def make_entry(root_seed: int, case_index: int, cells: List[bytes],
               opts: Dict, verdict: Dict, shrink_evals: int = 0) -> Dict:
    spec = gen.CaseSpec(root_seed=root_seed, case_index=case_index,
                        layout=gen.derive_layout(root_seed, case_index),
                        cells=list(cells))
    return {
        "schema": CORPUS_SCHEMA,
        "root_seed": root_seed,
        "case_index": case_index,
        "opts": {k: v for k, v in sorted(opts.items())},
        "cells": [c.hex() for c in cells],
        "verdict": verdict,
        "shrink_evals": shrink_evals,
        "body_instructions": spec.body_instructions,
    }


def entry_spec(entry: Dict) -> gen.CaseSpec:
    if entry.get("schema") != CORPUS_SCHEMA:
        raise ValueError(f"not a corpus entry: schema={entry.get('schema')!r}")
    root_seed, case_index = entry["root_seed"], entry["case_index"]
    return gen.CaseSpec(
        root_seed=root_seed, case_index=case_index,
        layout=gen.derive_layout(root_seed, case_index),
        cells=[bytes.fromhex(c) for c in entry["cells"]],
    )


def save_entry(path: str, entry: Dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_entry(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def replay_entry(entry: Dict, with_bug: bool = True) -> Dict:
    """Re-execute a corpus entry; ``with_bug=False`` replays at HEAD
    behaviour (shim stripped), which committed repros must pass."""
    opts = dict(entry.get("opts") or {})
    if not with_bug:
        opts["bug"] = None
    return run_case_spec(entry_spec(entry), opts)


def load_corpus(directory: str) -> List[Dict]:
    entries = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            entries.append(load_entry(os.path.join(directory, name)))
    return entries


def write_repro_script(path: str, entry: Dict) -> None:
    """Emit a standalone repro script for one corpus entry."""
    spec = entry_spec(entry)
    body = b"".join(spec.cells)
    listing = "\n".join(
        "#   " + line for line in disassemble(body, base=gen.BODY_BASE)
    )
    opts_src = json.dumps(entry.get("opts") or {}, sort_keys=True)
    cells_src = ",\n    ".join(f'"{c.hex()}"' for c in spec.cells)
    verdict = json.dumps(entry["verdict"], sort_keys=True)
    script = f'''"""Auto-generated minimal repro (pyvisor fuzz shrinker).

Case root_seed={entry["root_seed"]} index={entry["case_index"]}
Recorded verdict: {verdict}

Body disassembly (base {gen.BODY_BASE:#x}):
{listing}
"""

import json

from repro.fuzz import corpus

ENTRY = {{
    "schema": "{CORPUS_SCHEMA}",
    "root_seed": {entry["root_seed"]},
    "case_index": {entry["case_index"]},
    "opts": json.loads({opts_src!r}),
    "cells": [{cells_src}],
    "verdict": json.loads({verdict!r}),
}}


def main() -> int:
    result = corpus.replay_entry(ENTRY)
    verdict = result["verdict"]
    print("verdict:", json.dumps(verdict, sort_keys=True))
    print("outcomes:", json.dumps(result["outcomes"], sort_keys=True))
    want = (ENTRY["verdict"]["kind"], ENTRY["verdict"]["group"])
    got = (verdict["kind"], verdict["group"])
    if got == want:
        print("reproduced.")
        return 1
    print(f"did not reproduce (wanted {{want}}, got {{got}}).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
'''
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(script)
