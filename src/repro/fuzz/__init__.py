"""Directed-random differential fuzzing (robustness harness).

Seeded guest-program generation (:mod:`repro.fuzz.gen`), differential
execution across the interpreter, JIT, binary translator and both
paging configurations (:mod:`repro.fuzz.diff`), parallel campaigns
with manifests (:mod:`repro.fuzz.campaign`), automatic shrinking of
failures (:mod:`repro.fuzz.shrink`), and a replayable corpus of
minimal repros (:mod:`repro.fuzz.corpus`). Known-bug shims for
catch-the-regression testing live in :mod:`repro.fuzz.bugs`.
"""

from repro.fuzz.campaign import manifest_identity, run_campaign
from repro.fuzz.corpus import (
    CORPUS_SCHEMA,
    load_corpus,
    load_entry,
    make_entry,
    replay_entry,
    save_entry,
    write_repro_script,
)
from repro.fuzz.diff import run_case, run_case_spec
from repro.fuzz.gen import CaseSpec, build_image, derive_layout, generate_case
from repro.fuzz.shrink import shrink_case

__all__ = [
    "CORPUS_SCHEMA",
    "CaseSpec",
    "build_image",
    "derive_layout",
    "generate_case",
    "load_corpus",
    "load_entry",
    "make_entry",
    "manifest_identity",
    "replay_entry",
    "run_campaign",
    "run_case",
    "run_case_spec",
    "save_entry",
    "shrink_case",
    "write_repro_script",
]
