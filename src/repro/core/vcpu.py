"""Virtual CPU: a core plus the virtual privileged state.

Under the deprivileged modes (trap-and-emulate, binary translation,
paravirt) the real core always runs in user mode and the guest's
privileged state -- its MODE, IE, VBAR, PTBR, trap CSRs -- lives here in
``vcsr``. Emulation callouts and exit handlers read and write ``vcsr``;
the real core's CSRs belong to the host.

Under HW_ASSIST the hardware tracks guest state natively, so the real
core's CSR file *is* the guest's and ``vcsr`` is unused.
"""

from typing import List, Optional

from repro.cpu.exits import ExitReason, VMExit
from repro.cpu.interp import CPUCore, TrapInfo
from repro.cpu.isa import CSR, Cause, MODE_KERNEL, MODE_USER
from repro.util.errors import GuestError


class VCPU:
    """One virtual CPU of a VM."""

    def __init__(self, vm, cpu: CPUCore, index: int = 0):
        self.vm = vm
        self.cpu = cpu
        self.index = index
        #: Virtual CSR file (deprivileged modes only).
        self.vcsr: List[int] = [0] * 16
        self.vcsr[CSR.MODE] = MODE_KERNEL
        self.halted = False
        #: Shadow MMU hook invoked when the *virtual* privilege changes
        #: (ring compression view switch); set by the hypervisor.
        self.on_virtual_mode_change = None
        #: Correctness probe: set when the guest observed hardware state
        #: that contradicts its virtual state (Popek-Goldberg violation
        #: under pure trap-and-emulate).
        self.incorrectness_observed = False
        #: Hypervisor-private fault state (``vcpu.stall`` injection): a
        #: stalled vCPU burns cycles without retiring instructions. Not
        #: guest-architectural, so snapshots and migration ignore it --
        #: a micro-reboot clears it by construction.
        self.stalled = False

    # -- virtual privilege ----------------------------------------------------

    @property
    def virtual_mode(self) -> int:
        return self.vcsr[CSR.MODE]

    @property
    def virtual_user(self) -> bool:
        return self.vcsr[CSR.MODE] == MODE_USER

    def set_virtual_mode(self, mode: int) -> None:
        if self.vcsr[CSR.MODE] != mode:
            self.vcsr[CSR.MODE] = mode
            if self.on_virtual_mode_change is not None:
                self.on_virtual_mode_change(mode == MODE_KERNEL)

    # -- trap reflection -----------------------------------------------------

    def reflect_trap(self, info: TrapInfo) -> None:
        """Deliver a trap into the guest using *virtual* state.

        This is what the VMM does after intercepting a guest-destined
        trap (syscall, guest page fault, virtual interrupt) in a
        deprivileged mode: perform, in software, exactly what the
        hardware trap-delivery microcode would have done.
        """
        vbar = self.vcsr[CSR.VBAR]
        if vbar == 0:
            raise VMExit(
                ExitReason.TRIPLE_FAULT,
                guest_pc=self.cpu.pc,
                cause=info.cause,
                value=info.value,
            )
        self.vcsr[CSR.ESTATUS] = self.vcsr[CSR.MODE] | (self.vcsr[CSR.IE] << 1)
        self.set_virtual_mode(MODE_KERNEL)
        self.vcsr[CSR.IE] = 0
        self.vcsr[CSR.EPC] = info.epc & 0xFFFFFFFF
        self.vcsr[CSR.ECAUSE] = int(info.cause)
        self.vcsr[CSR.EVAL] = info.value & 0xFFFFFFFF
        self.cpu.pc = vbar
        self.vm.stats.reflected_traps += 1

    def emulate_iret(self) -> None:
        """The guest kernel executed IRET; apply it to virtual state."""
        estatus = self.vcsr[CSR.ESTATUS]
        self.vcsr[CSR.IE] = (estatus >> 1) & 1
        self.set_virtual_mode(estatus & 1)
        self.cpu.pc = self.vcsr[CSR.EPC]

    # -- virtual interrupts ---------------------------------------------------

    def try_inject_virq(self) -> bool:
        """Inject one pending virtual IRQ if the guest's virtual IE allows.

        Returns True if an injection happened (guest pc now at its
        vector). Called by the VMM at entry boundaries.
        """
        if not self.vcsr[CSR.IE] or not self.vm.pending_virqs:
            return False
        for cause in (Cause.IRQ_TIMER, Cause.IRQ_DEVICE):
            if cause in self.vm.pending_virqs:
                self.vm.pending_virqs.discard(cause)
                self.reflect_trap(TrapInfo(cause, 0, epc=self.cpu.pc))
                self.vm.stats.injected_irqs += 1
                return True
        return False

    def __repr__(self) -> str:
        return f"<VCPU {self.vm.name}#{self.index} pc={self.cpu.pc:#x}>"
