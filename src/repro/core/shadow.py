"""Shadow page tables.

The VMM maintains, per (guest page-table root, privilege view), a
*shadow* page table mapping guest virtual addresses directly to host
physical addresses. The hardware (our TLB + walker) only ever sees
shadow tables. Coherence with the guest's own tables is maintained by:

* **demand fill** -- shadow entries are created lazily on the first
  access (a "shadow fill" VM exit);
* **write protection of guest page tables** -- frames discovered to hold
  guest page tables are mapped read-only in the shadow, so guest PT
  updates trap and the VMM applies them plus the matching shadow
  invalidation (the "PT-update tax" of experiment E2). Paravirtual
  guests disable this (``trap_pt_writes=False``) and instead notify the
  VMM through batched hypercalls;
* **lazy dirty bits** -- shadow entries are first mapped read-only even
  for guest-writable pages; the first write faults, the VMM sets the
  guest PTE's D bit and upgrades the shadow entry. This is also the
  hook live migration uses for dirty logging (``write_protected_gfns``).

**Ring compression**: under deprivileged execution the guest kernel runs
in real user mode, so its kernel-only pages must be user-accessible in
the shadow -- but only while the guest is virtually in kernel mode. The
VMM therefore keeps *two* shadow views per guest root (kernel view:
everything user-accessible; user view: guest U bits honored) and
switches on virtual privilege transitions, flushing the TLB each time --
a real, measured cost of software virtualization.
"""

from typing import Dict, Optional, Set, Tuple

from repro.cpu.exits import ExitReason, VMExit
from repro.cpu.mmu import MMUBase
from repro.mem.costs import CostModel
from repro.mem.paging import (
    AccessType,
    AddressSpace,
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_NOEXEC,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    PageFault,
    PageTableWalker,
    pte_frame,
    split_vaddr,
)
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.mem.tlb import TLB
from repro.util.errors import MemoryError_
from repro.util.units import PAGE_SHIFT


class _GuestWalk:
    """Result of a software walk of the guest's own page tables."""

    __slots__ = ("pde_gpa", "pte_gpa", "pde", "pte", "gfn", "pt_gfn")

    def __init__(self, pde_gpa, pte_gpa, pde, pte, gfn, pt_gfn):
        self.pde_gpa = pde_gpa
        self.pte_gpa = pte_gpa
        self.pde = pde
        self.pte = pte
        self.gfn = gfn  # target guest frame
        self.pt_gfn = pt_gfn  # guest frame holding the leaf page table


class ShadowMMU(MMUBase):
    """Shadow-paging MMU installed on a vCPU's core."""

    def __init__(
        self,
        host_physmem: PhysicalMemory,
        host_allocator: FrameAllocator,
        guest_mem,
        costs: CostModel,
        tlb_entries: int = 64,
        ring_compression: bool = True,
        trap_pt_writes: bool = True,
    ):
        self.physmem = host_physmem  # CPUCore reads/writes through this
        self.allocator = host_allocator
        self.guest_mem = guest_mem
        self.costs = costs
        self.walker = PageTableWalker(host_physmem)
        self.tlb = TLB(tlb_entries)
        self.ring_compression = ring_compression
        self.trap_pt_writes = trap_pt_writes

        self.guest_root: Optional[int] = None  # guest-physical PD address
        self.kernel_view = True
        #: Virtual privilege of the currently-running guest context;
        #: maintained by the VMM on virtual mode switches. Only
        #: meaningful when ring_compression is on.
        self.guest_user_mode = False

        self._spaces: Dict[Tuple[int, bool], AddressSpace] = {}
        self.pt_gfns: Set[int] = set()
        #: Migration dirty-logging: writes to these gfns exit.
        self.write_protected_gfns: Set[int] = set()
        #: Optional host page-in hook for swapped/shared frames:
        #: called with gfn, must leave guest_mem mapped or raise.
        self.page_in_hook = None

        self._writable_fills: Dict[int, Set[Tuple[Tuple[int, bool], int]]] = {}
        self._pt_backrefs: Dict[int, Set[Tuple[Tuple[int, bool], int]]] = {}

        self.fills = 0
        self.view_switches = 0
        self.root_switches = 0
        self.pt_invalidations = 0

    # -- MMUBase interface ----------------------------------------------------

    def translate(self, va: int, access: AccessType, user: bool) -> Tuple[int, int]:
        va &= 0xFFFFFFFF
        if self.guest_root is None:
            # Guest paging off ("real mode"): VA == gPA, direct map.
            return self.guest_mem.gpa_to_hpa(va), 0
        vpn = va >> PAGE_SHIFT
        pte = self.tlb.lookup(vpn, access, user)
        if pte is not None:
            return (pte_frame(pte) << PAGE_SHIFT) | (va & 0xFFF), self.costs.tlb_hit_cycles
        space = self._current_space()
        try:
            result = self.walker.walk(space.root_pa, va, access, user)
        except PageFault:
            self._miss(va, access, user)  # always raises
            raise AssertionError("unreachable")
        self.tlb.insert(vpn, result.pte)
        return (
            result.paddr,
            self.costs.tlb_hit_cycles + result.mem_refs * self.costs.mem_ref_cycles,
        )

    def set_root(self, root_pa: int) -> None:
        """CSRW PTBR reached the MMU: the operand is a *guest* PA."""
        self.switch_guest_root(root_pa)

    def invlpg(self, va: int) -> None:
        """Drop one translation from TLB and current shadow."""
        va &= 0xFFFFFFFF
        self.tlb.invalidate(va >> PAGE_SHIFT)
        if self.guest_root is not None:
            self._current_space().unmap(va & ~0xFFF)

    def flush(self) -> None:
        self.tlb.flush()

    # -- VMM-facing operations -----------------------------------------------

    def switch_guest_root(self, root_gpa: int) -> None:
        self.guest_root = root_gpa & ~0xFFF
        self._register_pt_gfn(self.guest_root >> PAGE_SHIFT)
        self._ensure_space()
        self.tlb.flush()
        self.root_switches += 1

    def set_view(self, kernel: bool) -> None:
        """Ring-compression view switch on virtual privilege change."""
        if not self.ring_compression:
            return
        self.guest_user_mode = not kernel
        if kernel == self.kernel_view:
            return
        self.kernel_view = kernel
        if self.guest_root is not None:
            self._ensure_space()
        self.tlb.flush()
        self.view_switches += 1

    def fill(self, va: int, access: AccessType) -> None:
        """Service a shadow-fill exit: create/upgrade the shadow entry."""
        va &= 0xFFFFFFFF
        walk = self._guest_walk(va, access)
        gfn = walk.gfn
        if not self.guest_mem.is_mapped(gfn) and self.page_in_hook is not None:
            self.page_in_hook(gfn)
        hfn = self.guest_mem.map.get(gfn)
        if hfn is None:
            raise MemoryError_(
                f"shadow fill: guest frame {gfn} has no host backing"
            )

        # Propagate accessed (and on writes, dirty) into the *guest* PTE,
        # as hardware would have done were the guest running bare.
        new_pte = walk.pte | PTE_ACCESSED
        writable = False
        if access is AccessType.WRITE:
            new_pte |= PTE_DIRTY
            writable = True
        if new_pte != walk.pte:
            self.guest_mem.write_u32(walk.pte_gpa, new_pte)
        if walk.pde & PTE_ACCESSED == 0:
            self.guest_mem.write_u32(walk.pde_gpa, walk.pde | PTE_ACCESSED)

        flags = PTE_PRESENT
        if walk.pte & PTE_NOEXEC:
            flags |= PTE_NOEXEC
        if self.ring_compression:
            flags |= PTE_USER if self.kernel_view else (walk.pde & walk.pte & PTE_USER)
        else:
            flags |= walk.pde & walk.pte & PTE_USER
        # Lazy dirty technique: map read-only until the first write.
        if writable:
            if gfn in self.pt_gfns and self.trap_pt_writes:
                raise AssertionError(
                    "fill(WRITE) on a guest PT page must go through "
                    "the pt_write handler"
                )
            if gfn not in self.write_protected_gfns:
                flags |= PTE_WRITABLE | PTE_DIRTY
        # Shadow A/D set by the hardware walker as it goes.

        space = self._current_space()
        space_key = self._space_key()
        page_va = va & ~0xFFF
        space.map(page_va, hfn << PAGE_SHIFT, flags)
        self.tlb.invalidate(va >> PAGE_SHIFT)
        if flags & PTE_WRITABLE:
            self._writable_fills.setdefault(gfn, set()).add((space_key, page_va))
        self._pt_backrefs.setdefault(walk.pt_gfn, set()).add(
            (space_key, split_vaddr(va)[0])
        )
        self.fills += 1

    def handle_guest_pt_write(self, gpa: int) -> None:
        """A trapped guest PT update was applied; invalidate shadows."""
        gfn = gpa >> PAGE_SHIFT
        entry_index = (gpa & 0xFFF) >> 2
        self.pt_invalidations += 1
        if self.guest_root is not None and gfn == self.guest_root >> PAGE_SHIFT:
            # Page-directory update: drop the whole 4 MiB subtree in
            # every view of this root.
            for view in (True, False):
                space = self._spaces.get((self.guest_root, view))
                if space is not None:
                    space.clear_pde(entry_index)
            self.tlb.flush()
            return
        for space_key, dir_idx in self._pt_backrefs.get(gfn, ()):
            space = self._spaces.get(space_key)
            if space is None:
                continue
            va = (dir_idx << 22) | (entry_index << 12)
            space.unmap(va)
            self.tlb.invalidate(va >> PAGE_SHIFT)

    def write_protect_gfn(self, gfn: int) -> None:
        """Start dirty-logging ``gfn`` (live migration)."""
        self.write_protected_gfns.add(gfn)
        self._downgrade_writable(gfn)

    def unprotect_gfn(self, gfn: int) -> None:
        self.write_protected_gfns.discard(gfn)

    def drop_gfn(self, gfn: int) -> None:
        """Remove every shadow mapping of a guest frame (balloon, swap,
        sharing break)."""
        for space_key, page_va in self._writable_fills.pop(gfn, set()):
            space = self._spaces.get(space_key)
            if space is not None:
                space.unmap(page_va)
            self.tlb.invalidate(page_va >> PAGE_SHIFT)
        # Read-only fills are not back-mapped individually, so sweep
        # every space for remaining mappings of this frame. Coarse but
        # safe; drop_gfn is off the hot path (balloon/swap/share only).
        for space in self._spaces.values():
            for va, pte in list(space.mappings()):
                if pte_frame(pte) == self.guest_mem.map.get(gfn, -1):
                    space.unmap(va)
        self.tlb.flush()

    def destroy(self) -> None:
        for space in self._spaces.values():
            space.destroy()
        self._spaces.clear()
        self.tlb.flush()

    # -- internals ---------------------------------------------------------

    def _effective_user(self, real_user: bool) -> bool:
        if self.ring_compression:
            return self.guest_user_mode
        return real_user

    def _miss(self, va: int, access: AccessType, real_user: bool) -> None:
        """Shadow walk failed: classify into guest fault or VMM work."""
        effective_user = self._effective_user(real_user)
        walk = self._guest_walk(va, access, effective_user)  # may raise PageFault
        gfn_written = walk.gfn
        if access is AccessType.WRITE:
            if gfn_written in self.pt_gfns and self.trap_pt_writes:
                raise VMExit(
                    ExitReason.PAGE_FAULT,
                    kind="pt_write",
                    va=va,
                    gpa=(gfn_written << PAGE_SHIFT) | (va & 0xFFF),
                    access=access,
                )
            if gfn_written in self.write_protected_gfns:
                raise VMExit(
                    ExitReason.PAGE_FAULT,
                    kind="dirty_log",
                    va=va,
                    gfn=gfn_written,
                    access=access,
                )
        raise VMExit(
            ExitReason.PAGE_FAULT, kind="shadow_fill", va=va, access=access
        )

    def _guest_walk(
        self, va: int, access: AccessType, effective_user: Optional[bool] = None
    ) -> _GuestWalk:
        """Software walk of the guest's tables in guest-physical space.

        Raises :class:`PageFault` (guest-visible, with the *virtual*
        privilege) when the guest's own tables forbid the access.
        """
        if effective_user is None:
            effective_user = self.guest_user_mode if self.ring_compression else False
        assert self.guest_root is not None
        dir_idx, tbl_idx, _ = split_vaddr(va)
        pde_gpa = self.guest_root + dir_idx * 4
        pde = self._read_guest_u32(pde_gpa)
        if not pde & PTE_PRESENT:
            raise PageFault(va, access, effective_user, present=False)
        pt_gfn = pte_frame(pde)
        self._register_pt_gfn(pt_gfn)
        pte_gpa = (pt_gfn << PAGE_SHIFT) + tbl_idx * 4
        pte = self._read_guest_u32(pte_gpa)
        if not pte & PTE_PRESENT:
            raise PageFault(va, access, effective_user, present=False)
        combined = pde & pte
        if effective_user and not combined & PTE_USER:
            raise PageFault(va, access, effective_user, present=True)
        if access is AccessType.WRITE and not combined & PTE_WRITABLE:
            raise PageFault(va, access, effective_user, present=True)
        if access is AccessType.EXEC and pte & PTE_NOEXEC:
            raise PageFault(va, access, effective_user, present=True)
        return _GuestWalk(pde_gpa, pte_gpa, pde, pte, pte_frame(pte), pt_gfn)

    def _read_guest_u32(self, gpa: int) -> int:
        """Read guest memory during a software walk, paging in swapped
        page-table frames through the host hook when needed."""
        gfn = gpa >> PAGE_SHIFT
        if not self.guest_mem.is_mapped(gfn) and self.page_in_hook is not None:
            self.page_in_hook(gfn)
        return self.guest_mem.read_u32(gpa)

    def _register_pt_gfn(self, gfn: int) -> None:
        if gfn in self.pt_gfns:
            return
        self.pt_gfns.add(gfn)
        if self.trap_pt_writes:
            self._downgrade_writable(gfn)

    def _downgrade_writable(self, gfn: int) -> None:
        """Make every existing writable shadow mapping of gfn read-only."""
        for space_key, page_va in self._writable_fills.pop(gfn, set()):
            space = self._spaces.get(space_key)
            if space is None:
                continue
            pte = space.lookup(page_va)
            if pte is None:
                continue
            space.protect(page_va, (pte & 0xFFF & ~PTE_WRITABLE) | PTE_PRESENT)
            self.tlb.invalidate(page_va >> PAGE_SHIFT)

    def _space_key(self) -> Tuple[int, bool]:
        view = self.kernel_view if self.ring_compression else True
        return (self.guest_root, view)

    def _ensure_space(self) -> AddressSpace:
        key = self._space_key()
        space = self._spaces.get(key)
        if space is None:
            space = AddressSpace(self.physmem, self.allocator)
            self._spaces[key] = space
        return space

    def _current_space(self) -> AddressSpace:
        return self._ensure_space()
