"""VM snapshot and restore.

A snapshot captures everything a paused VM is: configuration, vCPU
architectural + virtual state, device state, and guest memory (zero
pages are elided -- freshly booted guests are mostly zeros). Snapshots
serialize to a self-describing binary blob (`to_bytes`/`from_bytes`),
so they can be written to disk and restored into any hypervisor later
-- the same machinery real platforms use for suspend/resume, cloning,
and crash-consistent backups.

The format is a plain struct-based codec (no pickle): a tampered or
truncated blob fails loudly, and blobs are stable across Python
versions.
"""

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.modes import MMUVirtMode, VirtMode
from repro.core.nested import NestedMMU
from repro.cpu.mmu import HModeMMU
from repro.core.shadow import ShadowMMU
from repro.core.vm import GuestConfig, VirtualMachine
from repro.cpu.isa import CSR, Cause
from repro.util.errors import ConfigError
from repro.util.units import PAGE_SIZE

_MAGIC = b"PVSN"
_VERSION = 1
_ZERO_PAGE = b"\x00" * PAGE_SIZE

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


@dataclass
class VMSnapshot:
    """In-memory snapshot of one paused VM."""

    config: GuestConfig
    regs: List[int]
    pc: int
    csr: List[int]
    vcsr: List[int]
    cycles: int
    instret: int
    pending_irqs: Set[int]
    cpu_halted: bool
    vcpu_halted: bool
    pending_virqs: Set[int]
    ballooned_gfns: Set[int]
    console_text: str
    timer_state: Tuple[int, int, Optional[int], int]  # period, mode, deadline, expirations
    power_state: Tuple[bool, int]
    pic_pending: List[bool]
    block_data: bytes
    virtio_blk_data: bytes
    virtio_blk_queue: Tuple[int, int, int, int, int]
    #: non-zero guest pages only: gfn -> page bytes
    pages: Dict[int, bytes] = field(default_factory=dict)
    #: every mapped gfn (zero pages included by membership)
    mapped_gfns: Set[int] = field(default_factory=set)

    @property
    def stored_bytes(self) -> int:
        return len(self.pages) * PAGE_SIZE

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += _MAGIC
        out += _U32.pack(_VERSION)
        _pack_str(out, self.config.name)
        out += _U64.pack(self.config.memory_bytes)
        _pack_str(out, self.config.virt_mode.value)
        _pack_str(out, self.config.mmu_mode.value)
        out += bytes([
            int(self.config.with_virtio),
            int(self.config.with_emulated_io),
            int(self.cpu_halted),
            int(self.vcpu_halted),
            int(self.power_state[0]),
        ])
        for reg in self.regs:
            out += _U32.pack(reg & 0xFFFFFFFF)
        out += _U32.pack(self.pc)
        for value in self.csr:
            out += _U32.pack(value & 0xFFFFFFFF)
        for value in self.vcsr:
            out += _U32.pack(value & 0xFFFFFFFF)
        out += _U64.pack(self.cycles)
        out += _U64.pack(self.instret)
        _pack_u32_list(out, sorted(self.pending_irqs))
        _pack_u32_list(out, sorted(self.pending_virqs))
        _pack_u32_list(out, sorted(self.ballooned_gfns))
        _pack_str(out, self.console_text)
        period, mode, deadline, expirations = self.timer_state
        out += _U64.pack(period)
        out += _U32.pack(mode)
        out += _U64.pack(0xFFFFFFFFFFFFFFFF if deadline is None
                         else deadline)
        out += _U64.pack(expirations)
        out += _U32.pack(self.power_state[1])
        out += _U32.pack(len(self.pic_pending))
        out += bytes(int(p) for p in self.pic_pending)
        _pack_bytes(out, self.block_data)
        _pack_bytes(out, self.virtio_blk_data)
        for value in self.virtio_blk_queue:
            out += _U32.pack(value)
        _pack_u32_list(out, sorted(self.mapped_gfns))
        out += _U32.pack(len(self.pages))
        for gfn in sorted(self.pages):
            out += _U32.pack(gfn)
            out += self.pages[gfn]
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "VMSnapshot":
        reader = _Reader(blob)
        if reader.take(4) != _MAGIC:
            raise ConfigError("not a pyvisor snapshot (bad magic)")
        version = reader.u32()
        if version != _VERSION:
            raise ConfigError(f"unsupported snapshot version {version}")
        name = reader.string()
        memory_bytes = reader.u64()
        virt_mode = VirtMode(reader.string())
        mmu_mode = MMUVirtMode(reader.string())
        flags = reader.take(5)
        config = GuestConfig(
            name=name, memory_bytes=memory_bytes, virt_mode=virt_mode,
            mmu_mode=mmu_mode, with_virtio=bool(flags[0]),
            with_emulated_io=bool(flags[1]),
        )
        regs = [reader.u32() for _ in range(16)]
        pc = reader.u32()
        csr = [reader.u32() for _ in range(16)]
        vcsr = [reader.u32() for _ in range(16)]
        cycles = reader.u64()
        instret = reader.u64()
        pending_irqs = set(reader.u32_list())
        pending_virqs = set(reader.u32_list())
        ballooned = set(reader.u32_list())
        console_text = reader.string()
        period = reader.u64()
        mode = reader.u32()
        deadline_raw = reader.u64()
        deadline = None if deadline_raw == 0xFFFFFFFFFFFFFFFF else deadline_raw
        expirations = reader.u64()
        power_code = reader.u32()
        pic_len = reader.u32()
        pic_pending = [bool(b) for b in reader.take(pic_len)]
        block_data = reader.blob()
        vblk_data = reader.blob()
        vblk_queue = tuple(reader.u32() for _ in range(5))
        mapped = set(reader.u32_list())
        count = reader.u32()
        pages = {}
        for _ in range(count):
            gfn = reader.u32()
            pages[gfn] = reader.take(PAGE_SIZE)
        reader.expect_end()
        return cls(
            config=config, regs=regs, pc=pc, csr=csr, vcsr=vcsr,
            cycles=cycles, instret=instret, pending_irqs=pending_irqs,
            cpu_halted=bool(flags[2]), vcpu_halted=bool(flags[3]),
            pending_virqs=pending_virqs, ballooned_gfns=ballooned,
            console_text=console_text,
            timer_state=(period, mode, deadline, expirations),
            power_state=(bool(flags[4]), power_code),
            pic_pending=pic_pending, block_data=block_data,
            virtio_blk_data=vblk_data, virtio_blk_queue=vblk_queue,
            pages=pages, mapped_gfns=mapped,
        )


def snapshot_vm(vm: VirtualMachine) -> VMSnapshot:
    """Capture a paused VM (the caller must not run it concurrently)."""
    vcpu = vm.vcpus[0]
    cpu = vcpu.cpu
    timer = vm.devices["timer"]
    power = vm.devices["power"]
    block = vm.devices.get("block")
    vblk = vm.devices.get("virtio_blk")
    pages: Dict[int, bytes] = {}
    mapped: Set[int] = set()
    for gfn in vm.guest_mem.map:
        mapped.add(gfn)
        content = vm.guest_mem.read_gfn(gfn)
        if content != _ZERO_PAGE:
            pages[gfn] = content
    queue = (
        (vblk.queue.desc_gpa, vblk.queue.avail_gpa, vblk.queue.used_gpa,
         vblk.queue.size, vblk.queue.last_avail_idx)
        if vblk is not None else (0, 0, 0, 0, 0)
    )
    return VMSnapshot(
        config=vm.config,
        regs=list(cpu.regs),
        pc=cpu.pc,
        csr=list(cpu.csr),
        vcsr=list(vcpu.vcsr),
        cycles=cpu.cycles,
        instret=cpu.instret,
        pending_irqs={int(c) for c in cpu.pending_irqs},
        cpu_halted=cpu.halted,
        vcpu_halted=vcpu.halted,
        pending_virqs={int(c) for c in vm.pending_virqs},
        ballooned_gfns=set(vm.ballooned_gfns),
        console_text=vm.devices["console"].text,
        timer_state=(timer.period, timer.mode, timer.deadline,
                     timer.expirations),
        power_state=(power.shutdown_requested, power.code),
        pic_pending=list(vm.pic.pending),
        block_data=_elide_zeros(block.data) if block is not None else b"",
        virtio_blk_data=_elide_zeros(vblk.data) if vblk is not None else b"",
        virtio_blk_queue=queue,
        pages=pages,
        mapped_gfns=mapped,
    )


def restore_vm(hypervisor, snapshot: VMSnapshot,
               name: Optional[str] = None) -> VirtualMachine:
    """Materialize a snapshot as a fresh (paused) VM."""
    config = GuestConfig(
        name=name or snapshot.config.name,
        memory_bytes=snapshot.config.memory_bytes,
        virt_mode=snapshot.config.virt_mode,
        mmu_mode=snapshot.config.mmu_mode,
        with_virtio=snapshot.config.with_virtio,
        with_emulated_io=snapshot.config.with_emulated_io,
        prealloc=True,
    )
    vm = hypervisor.create_vm(config)
    # Drop frames that were not mapped at snapshot time (balloon).
    for gfn in list(vm.guest_mem.map):
        if gfn not in snapshot.mapped_gfns:
            mmu = vm.vcpus[0].cpu.mmu
            if isinstance(mmu, (NestedMMU, HModeMMU)):
                mmu.ept_unmap(gfn)
            hypervisor.allocator.free(vm.guest_mem.unmap_page(gfn))
    for gfn, content in snapshot.pages.items():
        vm.guest_mem.write_gfn(gfn, content)

    vcpu = vm.vcpus[0]
    cpu = vcpu.cpu
    cpu.regs = list(snapshot.regs)
    cpu.pc = snapshot.pc
    cpu.csr = list(snapshot.csr)
    cpu.cycles = snapshot.cycles
    cpu.instret = snapshot.instret
    cpu.pending_irqs = {Cause(c) for c in snapshot.pending_irqs}
    cpu.halted = snapshot.cpu_halted
    vcpu.vcsr = list(snapshot.vcsr)
    vcpu.halted = snapshot.vcpu_halted
    vm.pending_virqs = {Cause(c) for c in snapshot.pending_virqs}
    vm.ballooned_gfns = set(snapshot.ballooned_gfns)

    console = vm.devices["console"]
    console._chars = list(snapshot.console_text)
    timer = vm.devices["timer"]
    timer.period, timer.mode, timer.deadline, timer.expirations = (
        snapshot.timer_state
    )
    power = vm.devices["power"]
    power.shutdown_requested, power.code = snapshot.power_state
    vm.pic.pending = list(snapshot.pic_pending)
    if "block" in vm.devices and snapshot.block_data:
        vm.devices["block"].data[:] = snapshot.block_data
    if "virtio_blk" in vm.devices and snapshot.virtio_blk_data:
        vblk = vm.devices["virtio_blk"]
        vblk.data[:] = snapshot.virtio_blk_data
        (vblk.queue.desc_gpa, vblk.queue.avail_gpa, vblk.queue.used_gpa,
         vblk.queue.size, vblk.queue.last_avail_idx) = snapshot.virtio_blk_queue

    # Rebuild translation structures from the restored root.
    mmu = cpu.mmu
    if isinstance(mmu, ShadowMMU):
        root = (cpu.csr[CSR.PTBR]
                if config.virt_mode is VirtMode.HW_ASSIST
                else vcpu.vcsr[CSR.PTBR])
        if root:
            mmu.switch_guest_root(root)
            if mmu.ring_compression:
                mmu.set_view(kernel=not vcpu.virtual_user)
    elif isinstance(mmu, (NestedMMU, HModeMMU)):
        if cpu.csr[CSR.PTBR]:
            mmu.set_root(cpu.csr[CSR.PTBR])
    return vm


def _elide_zeros(data) -> bytes:
    """Untouched (all-zero) disk images need not be stored."""
    content = bytes(data)
    return b"" if content.count(0) == len(content) else content


# -- codec helpers -----------------------------------------------------------


def _pack_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    out += _U32.pack(len(data))
    out += data


def _pack_bytes(out: bytearray, data: bytes) -> None:
    out += _U32.pack(len(data))
    out += data


def _pack_u32_list(out: bytearray, values) -> None:
    out += _U32.pack(len(values))
    for value in values:
        out += _U32.pack(value)


class _Reader:
    def __init__(self, blob: bytes):
        self._blob = blob
        self._pos = 0

    def take(self, n: int) -> bytes:
        if self._pos + n > len(self._blob):
            raise ConfigError("truncated snapshot")
        data = self._blob[self._pos : self._pos + n]
        self._pos += n
        return data

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def string(self) -> str:
        return self.take(self.u32()).decode("utf-8")

    def blob(self) -> bytes:
        return self.take(self.u32())

    def u32_list(self):
        return [self.u32() for _ in range(self.u32())]

    def expect_end(self) -> None:
        if self._pos != len(self._blob):
            raise ConfigError(
                f"snapshot has {len(self._blob) - self._pos} trailing bytes"
            )
