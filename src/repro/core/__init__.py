"""The hypervisor (the paper's primary contribution).

Execution modes (experiment E1 compares all of them):

* ``NATIVE`` -- no VMM; the baseline.
* ``TRAP_EMULATE`` -- classic deprivileged trap-and-emulate. Complete
  for trapping instructions, but VISA (like x86) has sensitive
  *non-trapping* instructions, so pure T&E is not a faithful virtual
  machine (Popek-Goldberg); the platform measures both the cost and the
  correctness violation.
* ``BINARY_TRANSLATION`` -- guest kernel code is translated: sensitive
  and privileged instructions become inline callouts against virtual
  CPU state (no world switch); user code runs directly. Restores
  correctness and slashes exit counts (VMware-style software VMM).
* ``PARAVIRT`` -- the guest is modified to use hypercalls and a shared
  info page; page-table updates are batched (Xen-style).
* ``HW_ASSIST`` -- the CPU tracks guest privilege natively (VT-x-style);
  only configured events exit. Combine with ``MMUVirtMode.SHADOW`` or
  ``MMUVirtMode.NESTED`` for experiment E2/E3.

Memory virtualization:

* ``SHADOW`` -- the VMM maintains shadow page tables translating guest
  VA directly to host PA, kept coherent by write-protecting guest page
  tables (or by PV hypercalls).
* ``NESTED`` -- two-dimensional walks through guest tables and an
  EPT-style second level, with the classic walk-amplification cost.
* ``HMODE`` -- the H-mode extension: an architected hardware guest mode
  with HEDELEG/HIDELEG trap delegation and a hardware-walked two-stage
  translation path (:class:`repro.cpu.mmu.HModeMMU`). Combine with
  ``HW_ASSIST`` for the sixth engine configuration.
"""

from repro.core.modes import VirtMode, MMUVirtMode
from repro.core.stats import ExitStats, VMStats
from repro.core.vm import GuestConfig, GuestMemory, VirtualMachine
from repro.core.vcpu import VCPU
from repro.core.shadow import ShadowMMU
from repro.core.nested import NestedMMU
from repro.core.policies import HModePolicy
from repro.core.hypervisor import Hypervisor, HypercallNumbers
from repro.core.nestedvirt import (
    AliasedPhysicalMemory,
    NestedHost,
    build_nested_host,
    create_l2_vm,
    guest_ram_window,
)
from repro.core.machine import Machine
from repro.core.snapshot import VMSnapshot, restore_vm, snapshot_vm
from repro.core.schedule import ScheduleReport, VMScheduler

__all__ = [
    "VirtMode",
    "MMUVirtMode",
    "ExitStats",
    "VMStats",
    "GuestConfig",
    "GuestMemory",
    "VirtualMachine",
    "VCPU",
    "ShadowMMU",
    "NestedMMU",
    "HModePolicy",
    "Hypervisor",
    "HypercallNumbers",
    "AliasedPhysicalMemory",
    "NestedHost",
    "build_nested_host",
    "create_l2_vm",
    "guest_ram_window",
    "Machine",
    "VMSnapshot",
    "snapshot_vm",
    "restore_vm",
    "VMScheduler",
    "ScheduleReport",
]
