"""The hypervisor: VM construction, the run loop, exit handling.

One :class:`Hypervisor` owns host physical memory and any number of
VMs. :meth:`Hypervisor.run` executes a VM until it halts, shuts down,
or exhausts a budget, servicing VM exits as they arise:

* world-switch cycles are charged per exit (``vmexit_cycles``, or
  ``hypercall_cycles`` for VMCALL, or ``bt_reflect_cycles`` when the
  resident binary-translation monitor intercepts without a hardware
  world switch);
* every exit is recorded in the VM's :class:`~repro.core.stats.ExitStats`
  with its reason and handler detail -- the raw table behind E1.

The hypercall ABI (VMCALL with the number in the instruction, arguments
in a0..a3, result in a0) serves both paravirtual guests and PV drivers
inside HVM guests.
"""

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.bt import BTEngine
from repro.core.emulate import emulate_guest_store, emulate_privileged
from repro.core.modes import MMUVirtMode, VirtMode
from repro.core.nested import NestedMMU
from repro.core.policies import DeprivilegedPolicy, HModePolicy, HWAssistPolicy
from repro.core.shadow import ShadowMMU
from repro.core.vcpu import VCPU
from repro.core.vm import GuestConfig, GuestMemory, VirtualMachine
from repro.cpu.exits import ExitReason, VMExit
from repro.cpu.interp import CPUCore, StopReason, TrapInfo
from repro.cpu.isa import (
    CSR, Cause, HEDELEG_ALL, HIDELEG_ALL, MODE_KERNEL, Op,
)
from repro.cpu.mmu import HModeMMU
from repro.devices.block import BLOCK_BASE, BlockDevice
from repro.devices.bus import PortBus
from repro.devices.console import CONSOLE_BASE, ConsoleDevice
from repro.devices.irq import (
    IRQ_BLOCK_LINE,
    IRQ_CONSOLE_LINE,
    IRQ_NET_LINE,
    IRQ_TIMER_LINE,
    IRQ_VIRTIO_BLK_LINE,
    IRQ_VIRTIO_NET_LINE,
    InterruptController,
    PIC_BASE,
)
from repro.devices.net import NetDevice, NET_BASE
from repro.devices.power import POWER_BASE, PowerControl
from repro.devices.timer import TIMER_BASE, TimerDevice
from repro.devices.virtio import (
    VIRTIO_BLK_BASE,
    VIRTIO_NET_BASE,
    VirtioBlockDevice,
    VirtioNetDevice,
)
from repro.mem.costs import CostModel
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.obs.registry import MetricsRegistry
from repro.util.errors import ConfigError, GuestError, MemoryError_
from repro.util.units import MIB, PAGE_SHIFT, bytes_to_pages

#: Instructions to run between device pumps.
PUMP_SLICE = 4000

#: Without a watchdog attached, a stalled vCPU still terminates the run
#: loop after this many consecutive no-progress pumps (safety net so an
#: instruction budget -- which a stalled vCPU can never spend -- does
#: not spin forever).
STALL_HUNG_PUMPS = 64


class HypercallNumbers(enum.IntEnum):
    """The hypercall ABI."""

    SET_VBAR = 1
    SET_PTBR = 2
    #: a0 = gPA of an array of (gpa, value) u32 pairs, a1 = pair count.
    #: Applies all page-table updates in one exit (Xen-style multicall).
    MMU_BATCH = 3
    SET_IE = 4
    IRET = 5
    CONSOLE_PUTC = 6
    YIELD = 7
    HALT = 8
    INVLPG = 9
    #: a0 = gfn the guest's balloon driver surrenders.
    BALLOON_GIVE = 10
    #: a0 = gfn to re-populate (balloon deflate).
    BALLOON_TAKE = 11


class RunOutcome(enum.Enum):
    HALTED = "halted"  # guest idle with no wakeup source
    SHUTDOWN = "shutdown"  # guest requested power-off
    INSTR_LIMIT = "instr_limit"
    CYCLE_LIMIT = "cycle_limit"
    HUNG = "hung"  # no forward progress: watchdog fired (or stall limit)


#: gfn of the PV shared-info page (counted from the top of guest RAM).
def shared_info_gfn(vm: VirtualMachine) -> int:
    return vm.num_pages - 1


_SHARED_IE_OFFSET = 0


class Hypervisor:
    """A host machine running virtual machines."""

    def __init__(
        self,
        memory_bytes: int = 128 * MIB,
        costs: Optional[CostModel] = None,
        tlb_entries: int = 64,
        registry: Optional[MetricsRegistry] = None,
        physmem: Optional[PhysicalMemory] = None,
    ):
        self.costs = costs or CostModel()
        self.costs.validate()
        #: ``physmem`` lets a caller supply the backing store -- the
        #: hypervisor-under-hypervisor scenario aliases an *inner*
        #: hypervisor's "physical" memory onto a slice of an H-mode
        #: guest's RAM (memory_bytes is then ignored).
        self.physmem = physmem if physmem is not None else PhysicalMemory(memory_bytes)
        self.allocator = FrameAllocator(self.physmem, reserved_frames=16)
        self.tlb_entries = tlb_entries
        #: The run's metrics registry; every VM gets a ``vm.<name>``
        #: scope in it, and hypervisor-level counters live under
        #: ``core.*`` / ``overcommit.*``. A private registry is made
        #: when the caller (tests, ad-hoc scripts) does not share one.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.vms: Dict[str, VirtualMachine] = {}
        #: Per-VM dirty-page callbacks (registered by live migration):
        #: called with (vm, gfn) on each dirty-log exit.
        self.dirty_handlers: Dict[str, Callable] = {}
        #: Composable EPT-fault dispatch chain: ``(name, handler)``
        #: entries consulted in registration order on every EPT
        #: violation for an unbacked gfn. A handler returns True to
        #: *claim* the fault (and must leave the gfn mapped) or False
        #: to decline, passing it down the chain. Fallback-tier
        #: handlers run after every normal handler has declined; if
        #: nobody claims, the hypervisor demand-zeroes the page.
        self._ept_fault_handlers: List[Tuple[str, Callable]] = []
        self._ept_fault_fallbacks: List[Tuple[str, Callable]] = []
        self._legacy_ept_hook: Optional[Callable] = None
        self._legacy_ept_wrapper: Optional[Callable] = None
        #: Write-fault (dirty-log exit) dispatch chain, same claim /
        #: decline contract with ``(vm, gfn) -> bool`` handlers. The
        #: page sharer's copy-on-write break lives here.
        self._write_fault_handlers: List[Tuple[str, Callable]] = []
        #: Installed by repro.overcommit.sharing.PageSharer: the
        #: cross-subsystem shared-frame refcount protocol (swap and
        #: teardown consult it before freeing frames).
        self.sharing = None
        #: Optional repro.util.eventlog.EventLog: when set, every VM
        #: exit is traced with its reason, handler detail, and guest pc.
        self.trace = None
        #: Optional repro.faults.injector.FaultInjector: when set, the
        #: run loop evaluates the ``vcpu.stall`` site each pump (a hung
        #: guest: the vCPU burns cycles but retires nothing).
        self.injector = None

    # -- fault dispatch chains --------------------------------------------

    def register_ept_fault_handler(
        self, handler: Callable, name: Optional[str] = None,
        fallback: bool = False,
    ) -> Callable:
        """Add ``handler`` to the EPT-fault dispatch chain.

        ``handler(vm, gfn, access) -> bool`` claims the fault by
        returning True (it must leave ``gfn`` mapped) or declines with
        False so the next handler -- and ultimately the demand-zero
        default -- sees it. ``fallback=True`` queues the handler after
        every normal one (host swap's residency tracker uses this to
        observe demand allocations without shadowing anyone). The
        handler itself is the deregistration token. Multiple owners
        (host swap, post-copy) compose instead of clobbering a single
        hook slot.
        """
        label = name if name else getattr(handler, "__qualname__", "handler")
        chain = (self._ept_fault_fallbacks if fallback
                 else self._ept_fault_handlers)
        if any(h == handler for _n, h in chain):
            raise ConfigError(f"EPT fault handler {label!r} already registered")
        chain.append((label, handler))
        return handler

    def unregister_ept_fault_handler(self, handler: Callable) -> bool:
        """Remove ``handler`` from either chain tier; True if found."""
        for chain in (self._ept_fault_handlers, self._ept_fault_fallbacks):
            for i, (_name, h) in enumerate(chain):
                if h == handler:
                    del chain[i]
                    return True
        return False

    def register_write_fault_handler(
        self, handler: Callable, name: Optional[str] = None,
    ) -> Callable:
        """Add ``handler(vm, gfn) -> bool`` to the write-fault chain.

        Consulted on dirty-log exits after per-VM dirty logging; a
        claiming handler owns the fault (the sharer's COW break). The
        returned name labels the exit detail, so register COW breakers
        with ``name="cow_break"`` to keep exit tables stable.
        """
        label = name if name else getattr(handler, "__qualname__", "handler")
        if any(h == handler for _n, h in self._write_fault_handlers):
            raise ConfigError(f"write fault handler {label!r} already registered")
        self._write_fault_handlers.append((label, handler))
        return handler

    def unregister_write_fault_handler(self, handler: Callable) -> bool:
        for i, (_name, h) in enumerate(self._write_fault_handlers):
            if h == handler:
                del self._write_fault_handlers[i]
                return True
        return False

    @property
    def ept_fault_hook(self) -> Optional[Callable]:
        """Legacy single-owner hook, kept as a chain adapter.

        Assigning a callable registers a claim-everything handler (the
        old contract: the hook services every fault and leaves the gfn
        mapped); assigning None removes it. New code should register a
        chain handler with claim/decline semantics instead.
        """
        return self._legacy_ept_hook

    @ept_fault_hook.setter
    def ept_fault_hook(self, hook: Optional[Callable]) -> None:
        if self._legacy_ept_wrapper is not None:
            self.unregister_ept_fault_handler(self._legacy_ept_wrapper)
            self._legacy_ept_wrapper = None
        self._legacy_ept_hook = hook
        if hook is not None:
            def wrapper(vm, gfn, access, _hook=hook):
                _hook(vm, gfn, access)
                return True
            self._legacy_ept_wrapper = wrapper
            self.register_ept_fault_handler(wrapper, name="legacy_hook")

    def _dispatch_ept_fault(self, vm: VirtualMachine, gfn: int, access) -> str:
        """Walk the chain until a handler claims; demand-zero otherwise.

        Returns the claiming handler's name (``core.ept_dispatch.*``
        counts claims per owner, the raw table behind the E7 routing
        regression test).
        """
        for name, handler in self._ept_fault_handlers:
            if handler(vm, gfn, access):
                self.registry.counter(f"core.ept_dispatch.{name}").inc()
                return name
        for name, handler in self._ept_fault_fallbacks:
            if handler(vm, gfn, access):
                self.registry.counter(f"core.ept_dispatch.{name}").inc()
                return name
        vm.guest_mem.map_page(gfn, self.allocator.alloc())
        self.registry.counter("core.ept_dispatch.demand_zero").inc()
        return "demand_zero"

    # -- VM construction --------------------------------------------------

    def create_vm(self, config: GuestConfig) -> VirtualMachine:
        config.validate()
        if config.name in self.vms:
            raise ConfigError(f"duplicate VM name {config.name!r}")
        pages = bytes_to_pages(config.memory_bytes)
        guest_mem = GuestMemory(self.physmem, pages)
        # A VM recreated under the same name (micro-reboot, snapshot
        # restore) starts its telemetry from zero, exactly as the old
        # per-VM stat structs did.
        self.registry.reset(f"vm.{config.name}.")
        vm = VirtualMachine(
            config, guest_mem, metrics=self.registry.scope(f"vm.{config.name}")
        )
        self.registry.counter("core.vms_created").inc()

        if config.prealloc:
            for gfn in range(pages):
                guest_mem.map_page(gfn, self.allocator.alloc())

        if config.mmu_mode is MMUVirtMode.SHADOW:
            mmu = ShadowMMU(
                self.physmem,
                self.allocator,
                guest_mem,
                self.costs,
                tlb_entries=self.tlb_entries,
                ring_compression=config.virt_mode is not VirtMode.HW_ASSIST,
                trap_pt_writes=config.virt_mode is not VirtMode.PARAVIRT,
            )
        elif config.mmu_mode is MMUVirtMode.HMODE:
            mmu = HModeMMU(
                self.physmem,
                self.allocator,
                guest_mem,
                self.costs,
                tlb_entries=self.tlb_entries,
            )
            mmu.stall_fn = self._hmode_stall_cycles
            if config.prealloc:
                for gfn, hfn in guest_mem.map.items():
                    mmu.ept_map(gfn, hfn)
        else:
            mmu = NestedMMU(
                self.physmem,
                self.allocator,
                guest_mem,
                self.costs,
                tlb_entries=self.tlb_entries,
            )
            if config.prealloc:
                for gfn, hfn in guest_mem.map.items():
                    mmu.ept_map(gfn, hfn)

        cpu = CPUCore(mmu, self.costs, port_bus=None, cpu_id=0)
        vcpu = VCPU(vm, cpu, index=0)
        vm.vcpus.append(vcpu)

        if config.virt_mode is VirtMode.HW_ASSIST:
            if config.mmu_mode is MMUVirtMode.HMODE:
                cpu.policy = HModePolicy(
                    vcpu, HEDELEG_ALL, HIDELEG_ALL,
                    deleg_miss_fn=self._hmode_deleg_miss,
                )
                self.registry.counter("core.hmode.vms_created").inc()
            else:
                cpu.policy = HWAssistPolicy(
                    vcpu,
                    intercept_paging=config.mmu_mode is MMUVirtMode.SHADOW,
                )
        else:
            cpu.policy = DeprivilegedPolicy(vcpu)
            if isinstance(mmu, ShadowMMU):
                vcpu.on_virtual_mode_change = mmu.set_view
                mmu.set_view(kernel=True)

        self._attach_devices(vm)

        if config.virt_mode is VirtMode.BINARY_TRANSLATION:
            vm.bt = BTEngine(
                vcpu,
                self.costs,
                port_bus=vm.port_bus,
                hypercall_handler=lambda vc, num: self._do_hypercall(vm, vc, num),
            )
        else:
            vm.bt = None

        if config.virt_mode is VirtMode.PARAVIRT:
            # Shared info page: the guest reads/writes its virtual IE
            # here with plain loads/stores -- zero exits.
            guest_mem.write_u32(
                (shared_info_gfn(vm) << PAGE_SHIFT) + _SHARED_IE_OFFSET, 0
            )

        self.vms[config.name] = vm
        return vm

    def _attach_devices(self, vm: VirtualMachine) -> None:
        vm.port_bus = PortBus()
        dev_scope = vm.metrics.scope("dev")
        vm.pic = InterruptController(sink=vm, metrics=dev_scope.scope("irq"))
        vm.port_bus.register(vm.pic, PIC_BASE, 1)

        console = ConsoleDevice(irq=vm.pic.line(IRQ_CONSOLE_LINE))
        vm.port_bus.register(console, CONSOLE_BASE, 2)
        vm.devices["console"] = console

        timer = TimerDevice(vm.pic.line(IRQ_TIMER_LINE),
                            metrics=dev_scope.scope("timer"))
        vm.port_bus.register(timer, TIMER_BASE, 3)
        vm.devices["timer"] = timer

        power = PowerControl()
        vm.port_bus.register(power, POWER_BASE, 1)
        vm.devices["power"] = power

        mem = vm.guest_mem
        if vm.config.with_emulated_io:
            block = BlockDevice(mem, vm.pic.line(IRQ_BLOCK_LINE),
                                metrics=dev_scope.scope("block"))
            vm.port_bus.register(block, BLOCK_BASE, 6)
            vm.devices["block"] = block
            net = NetDevice(mem, vm.pic.line(IRQ_NET_LINE),
                            metrics=dev_scope.scope("net"))
            vm.port_bus.register(net, NET_BASE, 7)
            vm.devices["net"] = net
        if vm.config.with_virtio:
            vblock = VirtioBlockDevice(mem, vm.pic.line(IRQ_VIRTIO_BLK_LINE),
                                       metrics=dev_scope.scope("virtio_blk"))
            vm.port_bus.register(vblock, VIRTIO_BLK_BASE, 6)
            vm.devices["virtio_blk"] = vblock
            vnet = VirtioNetDevice(mem, vm.pic.line(IRQ_VIRTIO_NET_LINE),
                                   metrics=dev_scope.scope("virtio_net"))
            vm.port_bus.register(vnet, VIRTIO_NET_BASE, 14)
            vm.devices["virtio_net"] = vnet
        self.registry.counter("devices.attached").inc(len(vm.devices))

    def destroy_vm(self, vm: VirtualMachine) -> None:
        """Tear a VM down and return every host frame it held."""
        mmu = vm.vcpus[0].cpu.mmu
        if hasattr(mmu, "destroy"):
            mmu.destroy()
        for gfn in list(vm.guest_mem.map):
            hfn = vm.guest_mem.unmap_page(gfn)
            if self.sharing is None or self.sharing.drop_mapping(vm, gfn, hfn):
                self.allocator.free(hfn)
        self.vms.pop(vm.name, None)
        self.dirty_handlers.pop(vm.name, None)

    def load_program(self, vm: VirtualMachine, program) -> None:
        """Copy an assembled image into guest-physical memory."""
        vm.guest_mem.write_bytes(program.base, program.data)

    def reset_vcpu(self, vm: VirtualMachine, entry: int, index: int = 0) -> None:
        """Architectural reset of a vCPU to begin guest boot at ``entry``.

        Under HW_ASSIST the core really starts in kernel mode. Under the
        deprivileged modes the core is pinned to real *user* mode (the
        guest kernel never gets the hardware privilege) while the vCPU's
        virtual mode starts at kernel.
        """
        vcpu = vm.vcpus[index]
        cpu = vcpu.cpu
        cpu.reset(entry)
        vcpu.halted = False
        vcpu.vcsr = [0] * 16
        vcpu.vcsr[CSR.MODE] = MODE_KERNEL
        if vm.config.virt_mode is not VirtMode.HW_ASSIST:
            cpu.set_mode(1)  # MODE_USER: the guest is deprivileged
            mmu = cpu.mmu
            if isinstance(mmu, ShadowMMU) and mmu.ring_compression:
                mmu.set_view(kernel=True)

    # -- the run loop ---------------------------------------------------------

    def run(
        self,
        vm: VirtualMachine,
        max_guest_instructions: Optional[int] = None,
        max_cycles: Optional[int] = None,
        watchdog=None,
    ) -> RunOutcome:
        """Run vCPU 0 of ``vm`` until halt/shutdown/budget.

        ``watchdog`` (a
        :class:`~repro.faults.watchdog.GuestProgressWatchdog`) is beat
        with the retired-instruction counter immediately before each
        guest entry -- a legally idle (halted) VM never reaches that
        point without pending work, so it cannot false-positive. When
        the watchdog declares a hang, ``run`` returns
        :data:`RunOutcome.HUNG` and leaves the VM as-is for recovery
        (see :class:`~repro.faults.recovery.MicroRebooter`).
        """
        vcpu = vm.vcpus[0]
        cpu = vcpu.cpu
        start_instret = cpu.instret
        start_cycles = self._vm_time(vm)
        timer: TimerDevice = vm.devices["timer"]
        power: PowerControl = vm.devices["power"]
        stalled_pumps = 0

        while True:
            if power.shutdown_requested:
                return RunOutcome.SHUTDOWN
            if max_guest_instructions is not None and (
                cpu.instret - start_instret >= max_guest_instructions
            ):
                return RunOutcome.INSTR_LIMIT
            if max_cycles is not None and (
                self._vm_time(vm) - start_cycles >= max_cycles
            ):
                return RunOutcome.CYCLE_LIMIT

            timer.rebase_if_armed(cpu.cycles)
            timer.tick(cpu.cycles)

            # Retire-edge events due at the boundary we exited on must
            # fire before the idle check: an intercepted instruction
            # (e.g. a HLT exit) leaves the core's own run loop before
            # its top-of-loop poll can see an event due at that exact
            # edge, and a raise may be the only thing that wakes the
            # guest.
            events = cpu.events
            if events is not None and cpu.instret >= events.next_due:
                events.fire_due(cpu.instret)

            if self._vm_idle(vm, vcpu):
                deadline = timer.next_deadline()
                if deadline is None:
                    return RunOutcome.HALTED
                # Fast-forward idle time to the next timer expiry.
                cpu.cycles = max(cpu.cycles, deadline)
                timer.tick(cpu.cycles)

            if vm.config.virt_mode is not VirtMode.HW_ASSIST:
                self._maybe_inject(vm, vcpu)
                if self._vm_idle(vm, vcpu):
                    continue  # injection refused (virtual IE off): idle again

            if self.injector is not None and not vcpu.stalled and (
                self.injector.fires("vcpu.stall")
            ):
                vcpu.stalled = True

            if watchdog is not None and watchdog.beat(cpu.instret):
                return RunOutcome.HUNG
            if vcpu.stalled:
                stalled_pumps += 1
                if watchdog is None and stalled_pumps >= STALL_HUNG_PUMPS:
                    return RunOutcome.HUNG
            else:
                stalled_pumps = 0

            cycle_budget = None
            if max_cycles is not None:
                cycle_budget = max_cycles - (self._vm_time(vm) - start_cycles)
            try:
                self._enter_guest(vm, vcpu, max_guest_instructions,
                                  start_instret, cycle_budget)
            except VMExit as exit_:
                try:
                    self._handle_exit(vm, vcpu, exit_)
                except VMExit as nested:
                    # Servicing an exit can itself exit -- e.g. the
                    # emulator reflects a trap into a guest whose
                    # vector is gone (triple fault). One re-dispatch
                    # suffices: the only nested exit reflection can
                    # produce is TRIPLE_FAULT, which is terminal.
                    self._handle_exit(vm, vcpu, nested)

    def _enter_guest(self, vm, vcpu, max_guest_instructions, start_instret,
                     cycle_budget=None) -> None:
        cpu = vcpu.cpu
        slice_ = PUMP_SLICE
        if max_guest_instructions is not None:
            slice_ = min(
                slice_, max_guest_instructions - (cpu.instret - start_instret)
            )
        if vcpu.stalled:
            # A hung guest: wall-clock time passes but nothing retires.
            # The watchdog sees instret flat-lining and declares a hang.
            cpu.cycles += slice_
            return
        if (
            vm.bt is not None
            and vcpu.virtual_mode == MODE_KERNEL
            and not vcpu.halted
        ):
            bt_budget = slice_ * 4
            if cycle_budget is not None:
                bt_budget = min(bt_budget, cycle_budget)
            vm.bt.run(max_cycles=bt_budget)
            return
        # A per-entry cycle bound keeps ``max_cycles`` honest even when
        # the guest burns cycles without retiring instructions inside
        # one slice (trap-delivery livelock): without it the
        # instruction-bounded core run would never come back to the
        # pump loop's cycle check.
        result = cpu.run(max_instructions=slice_, cycle_guard=cycle_budget)
        if result.stop is StopReason.VMEXIT:
            raise result.exit
        if result.stop is StopReason.HALT:
            # Native HLT semantics can only be reached by HW_ASSIST
            # guests with nested paging and HLT interception off; treat
            # as a virtual halt either way.
            vcpu.halted = True

    def _vm_idle(self, vm: VirtualMachine, vcpu: VCPU) -> bool:
        if vm.config.virt_mode is VirtMode.HW_ASSIST:
            if (
                vcpu.cpu.halted
                and vcpu.cpu.pending_irqs
                and vcpu.cpu.csr[CSR.IE]
            ):
                return False  # core will wake on its own
            # With IE clear a pending IRQ cannot wake the core: entering
            # the guest would return HALT immediately and the pump loop
            # would spin forever. Architecturally dead, so: idle.
            return vcpu.cpu.halted or vcpu.halted
        if not (vcpu.halted or vcpu.cpu.halted):
            return False
        # A pending virq only makes the VM runnable if it can actually be
        # injected; with virtual IE clear the guest is architecturally
        # dead (mirrors the HW_ASSIST branch above).
        return not (vm.pending_virqs and self._guest_ie(vm, vcpu))

    # -- virtual interrupt injection ----------------------------------------

    def _guest_ie(self, vm: VirtualMachine, vcpu: VCPU) -> int:
        if vm.config.virt_mode is VirtMode.PARAVIRT:
            return vm.guest_mem.read_u32(
                (shared_info_gfn(vm) << PAGE_SHIFT) + _SHARED_IE_OFFSET
            )
        return vcpu.vcsr[CSR.IE]

    def _maybe_inject(self, vm: VirtualMachine, vcpu: VCPU) -> None:
        if not vm.pending_virqs or not self._guest_ie(vm, vcpu):
            return
        for cause in (Cause.IRQ_TIMER, Cause.IRQ_DEVICE):
            if cause in vm.pending_virqs:
                vm.pending_virqs.discard(cause)
                self._reflect(vm, vcpu, TrapInfo(cause, 0, epc=vcpu.cpu.pc))
                vm.stats.injected_irqs += 1
                vcpu.halted = False
                vcpu.cpu.halted = False
                return

    def _reflect(self, vm: VirtualMachine, vcpu: VCPU, info: TrapInfo) -> None:
        pv = vm.config.virt_mode is VirtMode.PARAVIRT
        shared_gpa = (shared_info_gfn(vm) << PAGE_SHIFT) if pv else 0
        if pv:
            # The shared page is the PV source of truth for IE; sync it
            # into vcsr so ESTATUS snapshots the right prior value.
            vcpu.vcsr[CSR.IE] = vm.guest_mem.read_u32(
                shared_gpa + _SHARED_IE_OFFSET
            )
        vcpu.reflect_trap(info)
        if pv:
            # Publish the trap block and disable events, Xen-style: the
            # guest reads cause/value/epc with plain loads (no exits).
            vm.guest_mem.write_u32(shared_gpa + _SHARED_IE_OFFSET, 0)
            vm.guest_mem.write_u32(shared_gpa + 4, vcpu.vcsr[CSR.ECAUSE])
            vm.guest_mem.write_u32(shared_gpa + 8, vcpu.vcsr[CSR.EVAL])
            vm.guest_mem.write_u32(shared_gpa + 12, vcpu.vcsr[CSR.EPC])

    # -- H-mode fault hooks -------------------------------------------------

    def _hmode_stall_cycles(self) -> int:
        """``hmode.gstage_stall`` site: extra cycles on a two-stage walk.

        Models contention on the hardware nested-walk path. Timing-only:
        guest-visible architectural state is untouched.
        """
        if self.injector is not None and self.injector.fires("hmode.gstage_stall"):
            self.registry.counter("core.hmode.gstage_stalls").inc()
            return 8 * self.costs.gstage_ref_cycles
        return 0

    def _hmode_deleg_miss(self) -> bool:
        """``hmode.delegation_miss`` site: one delegated trap exits anyway.

        The exit handler re-injects the trap, so the guest converges to
        the same architectural state; only the host pays a world switch.
        """
        if self.injector is not None and self.injector.fires("hmode.delegation_miss"):
            self.registry.counter("core.hmode.delegation_misses").inc()
            return True
        return False

    # -- exit dispatch -----------------------------------------------------

    def _vm_time(self, vm: VirtualMachine) -> int:
        return vm.vcpus[0].cpu.cycles + vm.stats.vmm_cycles

    def _handle_exit(self, vm: VirtualMachine, vcpu: VCPU, exit_: VMExit) -> None:
        costs = self.costs
        mode = vm.config.virt_mode
        reason = exit_.reason
        if reason is ExitReason.VMCALL:
            switch = costs.hypercall_cycles
            vm.stats.hypercalls += 1
        elif mode is VirtMode.BINARY_TRANSLATION:
            switch = costs.bt_reflect_cycles
        else:
            switch = costs.vmexit_cycles
        vm.stats.world_switches += 1
        handler_cycles = 0
        detail = ""

        if reason is ExitReason.GUEST_TRAP:
            info: TrapInfo = exit_.qual("trap")
            ins = exit_.qual("ins")
            if mode is VirtMode.HW_ASSIST:
                # H-mode: a non-delegated guest trap (or a delegation
                # miss injected by the fault site). Inject it exactly as
                # hardware event injection on VM entry would: the core's
                # own delivery microcode runs against real guest state,
                # so the result is bit-identical to native delegation.
                vcpu.cpu.deliver_trap(info)
                detail = info.cause.name.lower()
                if exit_.qual("deleg_miss"):
                    detail = f"deleg_miss.{detail}"
                handler_cycles = costs.emulate_cycles
                self.registry.counter("core.hmode.trap_exits").inc()
            elif info.cause is Cause.PRIV and not vcpu.virtual_user:
                # Only the guest *kernel* (deprivileged onto real user
                # mode) gets its privileged instructions emulated. A
                # PRIV trap raised while the virtual mode is user is the
                # guest's own application touching privileged state; the
                # hardware answer is a trap into the guest kernel, so
                # reflect it -- emulating here would be a guest-level
                # privilege escalation (and diverges from HW_ASSIST).
                if ins is None:
                    ins = vcpu.cpu.fetch(vcpu.cpu.pc)
                detail = emulate_privileged(vcpu, ins, port_bus=vm.port_bus)
                handler_cycles = costs.emulate_cycles
            else:
                self._reflect(vm, vcpu, info)
                detail = info.cause.name.lower()
                handler_cycles = costs.trap_cycles
        elif reason is ExitReason.VMCALL:
            detail = self._do_hypercall(vm, vcpu, exit_.qual("num"))
        elif reason in (ExitReason.IO_IN, ExitReason.IO_OUT):
            handler_cycles = costs.emulate_cycles
            port = exit_.qual("port")
            cpu = vcpu.cpu
            if reason is ExitReason.IO_OUT:
                vm.port_bus.io_out(port, exit_.qual("value"))
            else:
                ins = cpu.fetch(cpu.pc)
                cpu.write_reg(ins.rd, vm.port_bus.io_in(port))
            cpu.pc = (cpu.pc + 4) & 0xFFFFFFFF
            detail = f"port_{port:#x}"
        elif reason is ExitReason.CSR_WRITE:
            # HW-assist + shadow: intercepted PTBR write.
            value = exit_.qual("value")
            vcpu.cpu.csr[CSR.PTBR] = value & 0xFFFFFFFF
            vcpu.cpu.mmu.switch_guest_root(value)
            vcpu.cpu.pc = (vcpu.cpu.pc + 4) & 0xFFFFFFFF
            handler_cycles = costs.emulate_cycles
            detail = "ptbr"
        elif reason is ExitReason.PRIV_INSTR and exit_.qual("op") is Op.INVLPG:
            vcpu.cpu.mmu.invlpg(exit_.qual("va"))
            vcpu.cpu.pc = (vcpu.cpu.pc + 4) & 0xFFFFFFFF
            handler_cycles = costs.emulate_cycles
            detail = "invlpg"
        elif reason is ExitReason.HLT:
            vcpu.cpu.pc = (vcpu.cpu.pc + 4) & 0xFFFFFFFF
            vcpu.cpu.halted = True
            vcpu.halted = True
            detail = "hlt"
        elif reason is ExitReason.PAGE_FAULT:
            detail, handler_cycles = self._handle_memory_exit(vm, vcpu, exit_)
        elif reason is ExitReason.TRIPLE_FAULT:
            raise GuestError(
                f"VM {vm.name}: triple fault (cause="
                f"{exit_.qual('cause')}, value={exit_.qual('value'):#x}, "
                f"pc={exit_.guest_pc:#x})"
            )
        else:
            raise GuestError(f"unhandled VM exit {exit_!r}")

        vm.stats.vmm_cycles += switch + handler_cycles
        vm.exit_stats.record(reason, switch + handler_cycles, detail)
        if self.trace is not None:
            self.trace.emit(
                self._vm_time(vm), "vmexit", reason.value,
                vm=vm.name, detail=detail, pc=vcpu.cpu.pc,
                cycles=switch + handler_cycles,
            )

    def _handle_memory_exit(self, vm, vcpu, exit_):
        costs = self.costs
        kind = exit_.qual("kind")
        mmu = vcpu.cpu.mmu
        if kind == "shadow_fill":
            mmu.fill(exit_.qual("va"), exit_.qual("access"))
            vm.stats.shadow_fills += 1
            return "shadow_fill", costs.shadow_fill_cycles
        if kind == "pt_write":
            ins = vcpu.cpu.fetch(vcpu.cpu.pc)
            emulate_guest_store(vcpu, ins, vm.guest_mem, mmu)
            vm.stats.shadow_pt_writes += 1
            return "pt_write", costs.shadow_ptwrite_cycles
        if kind == "dirty_log":
            gfn = exit_.qual("gfn")
            handler = self.dirty_handlers.get(vm.name)
            if handler is not None:
                handler(vm, gfn)  # dirty logging sees every write, COW too
            for name, wf_handler in self._write_fault_handlers:
                if wf_handler(vm, gfn):
                    return name, costs.shadow_fill_cycles
            mmu.unprotect_gfn(gfn)
            return "dirty_log", costs.emulate_cycles
        if kind == "ept_violation":
            gpa = exit_.qual("gpa")
            gfn = gpa >> PAGE_SHIFT
            vm.stats.ept_violations += 1
            if gfn >= vm.num_pages:
                raise GuestError(
                    f"VM {vm.name}: access to gPA {gpa:#x} beyond guest RAM"
                )
            if not vm.guest_mem.is_mapped(gfn):
                claimant = self._dispatch_ept_fault(
                    vm, gfn, exit_.qual("access")
                )
                # Whatever re-backed the page (swap-in, post-copy
                # fetch, demand zero), the balloon no longer holds it.
                vm.ballooned_gfns.discard(gfn)
            hfn = vm.guest_mem.map.get(gfn)
            if hfn is None:
                raise MemoryError_(
                    f"EPT fault handler {claimant!r} left gfn {gfn} "
                    f"unmapped in {vm.name}"
                )
            if mmu.ept.lookup(gfn << PAGE_SHIFT) is None:
                mmu.ept_map(gfn, hfn)
            return "ept_violation", costs.shadow_fill_cycles
        raise GuestError(f"unknown memory exit kind {kind!r}")

    # -- hypercalls ---------------------------------------------------------

    def _do_hypercall(self, vm: VirtualMachine, vcpu: VCPU, num: int) -> str:
        cpu = vcpu.cpu
        a0, a1 = cpu.regs[1], cpu.regs[2]
        advance = True
        try:
            call = HypercallNumbers(num)
        except ValueError:
            cpu.write_reg(1, 0xFFFFFFFF)  # unknown hypercall: -1
            cpu.pc = (cpu.pc + 4) & 0xFFFFFFFF
            return "unknown"

        if call is HypercallNumbers.SET_VBAR:
            vcpu.vcsr[CSR.VBAR] = a0
        elif call is HypercallNumbers.SET_PTBR:
            vcpu.vcsr[CSR.PTBR] = a0
            cpu.mmu.set_root(a0)
        elif call is HypercallNumbers.MMU_BATCH:
            count = a1
            for i in range(count):
                gpa = vm.guest_mem.read_u32(a0 + i * 8)
                value = vm.guest_mem.read_u32(a0 + i * 8 + 4)
                vm.guest_mem.write_u32(gpa, value)
                if isinstance(cpu.mmu, ShadowMMU):
                    cpu.mmu.handle_guest_pt_write(gpa)
                vm.stats.vmm_cycles += 2 * self.costs.mem_ref_cycles
            cpu.write_reg(1, count)
        elif call is HypercallNumbers.SET_IE:
            vcpu.vcsr[CSR.IE] = a0 & 1
            if vm.config.virt_mode is VirtMode.PARAVIRT:
                vm.guest_mem.write_u32(
                    (shared_info_gfn(vm) << PAGE_SHIFT) + _SHARED_IE_OFFSET,
                    a0 & 1,
                )
        elif call is HypercallNumbers.IRET:
            vcpu.emulate_iret()
            if vm.config.virt_mode is VirtMode.PARAVIRT:
                vm.guest_mem.write_u32(
                    (shared_info_gfn(vm) << PAGE_SHIFT) + _SHARED_IE_OFFSET,
                    vcpu.vcsr[CSR.IE],
                )
            advance = False
        elif call is HypercallNumbers.CONSOLE_PUTC:
            vm.devices["console"].port_write(CONSOLE_BASE, a0)
        elif call is HypercallNumbers.YIELD:
            pass  # scheduling hint; meaningful under the DES scheduler
        elif call is HypercallNumbers.HALT:
            vcpu.halted = True
        elif call is HypercallNumbers.INVLPG:
            cpu.mmu.invlpg(a0)
        elif call is HypercallNumbers.BALLOON_GIVE:
            self._balloon_give(vm, vcpu, a0)
        elif call is HypercallNumbers.BALLOON_TAKE:
            self._balloon_take(vm, vcpu, a0)
        if advance:
            cpu.pc = (cpu.pc + 4) & 0xFFFFFFFF
        return call.name.lower()

    def _balloon_give(self, vm: VirtualMachine, vcpu: VCPU, gfn: int) -> None:
        ok = self.balloon_give(vm, gfn)
        vcpu.cpu.write_reg(1, 0 if ok else 0xFFFFFFFF)

    def _balloon_take(self, vm: VirtualMachine, vcpu: VCPU, gfn: int) -> None:
        ok = self.balloon_take(vm, gfn)
        vcpu.cpu.write_reg(1, 0 if ok else 0xFFFFFFFF)

    def balloon_give(self, vm: VirtualMachine, gfn: int) -> bool:
        """Balloon mechanism: surrender one backed guest frame.

        The hypercall handler and the host-side pressure controller
        (modelling a cooperating guest balloon driver) both land here.
        Shared frames route through the sharer's refcount, so a balloon
        give can never free a frame other VMs still map.
        """
        if gfn >= vm.num_pages or not vm.guest_mem.is_mapped(gfn):
            return False
        mmu = vm.vcpus[0].cpu.mmu
        if isinstance(mmu, ShadowMMU):
            mmu.drop_gfn(gfn)
        elif isinstance(mmu, (NestedMMU, HModeMMU)):
            if mmu.ept.lookup(gfn << PAGE_SHIFT) is not None:
                mmu.ept_unmap(gfn)
        hfn = vm.guest_mem.unmap_page(gfn)
        if self.sharing is None or self.sharing.drop_mapping(vm, gfn, hfn):
            self.allocator.free(hfn)
        vm.ballooned_gfns.add(gfn)
        self.registry.counter("overcommit.balloon.inflations").inc()
        self.registry.counter("overcommit.operations").inc()
        return True

    def balloon_take(self, vm: VirtualMachine, gfn: int) -> bool:
        """Balloon deflate: re-populate a previously surrendered gfn."""
        if gfn not in vm.ballooned_gfns:
            return False
        hfn = self.allocator.alloc()
        vm.guest_mem.map_page(gfn, hfn)
        vm.ballooned_gfns.discard(gfn)
        mmu = vm.vcpus[0].cpu.mmu
        if isinstance(mmu, (NestedMMU, HModeMMU)):
            mmu.ept_map(gfn, hfn)
        self.registry.counter("overcommit.balloon.deflations").inc()
        self.registry.counter("overcommit.operations").inc()
        return True
