"""A bare-metal machine: the native baseline of experiment E1.

Identical hardware to what a VM sees -- same CPU, same device models on
the same ports -- but with no VMM anywhere: the kernel runs in real
kernel mode, page tables are walked directly, port I/O reaches devices
without exits. Comparing a workload here against the same workload in a
VM isolates the virtualization tax.
"""

import enum
from typing import Optional

from repro.cpu.interp import CPUCore, StopReason
from repro.cpu.mmu import BareMMU
from repro.devices.block import BLOCK_BASE, BlockDevice
from repro.devices.bus import PortBus
from repro.devices.console import CONSOLE_BASE, ConsoleDevice
from repro.devices.irq import (
    IRQ_BLOCK_LINE,
    IRQ_NET_LINE,
    IRQ_TIMER_LINE,
    IRQ_VIRTIO_BLK_LINE,
    IRQ_VIRTIO_NET_LINE,
    InterruptController,
    PIC_BASE,
)
from repro.devices.net import NET_BASE, NetDevice
from repro.devices.power import POWER_BASE, PowerControl
from repro.devices.timer import TIMER_BASE, TimerDevice
from repro.devices.virtio import (
    VIRTIO_BLK_BASE,
    VIRTIO_NET_BASE,
    VirtioBlockDevice,
    VirtioNetDevice,
)
from repro.mem.costs import CostModel
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.util.units import MIB


class MachineOutcome(enum.Enum):
    HALTED = "halted"
    SHUTDOWN = "shutdown"
    INSTR_LIMIT = "instr_limit"


class Machine:
    """Physical machine: CPU + RAM + devices, no hypervisor."""

    PUMP_SLICE = 4000

    def __init__(
        self,
        memory_bytes: int = 16 * MIB,
        costs: Optional[CostModel] = None,
        tlb_entries: int = 64,
        jit: Optional[bool] = None,
    ):
        self.costs = costs or CostModel()
        self.physmem = PhysicalMemory(memory_bytes)
        self.allocator = FrameAllocator(self.physmem, reserved_frames=16)
        self.port_bus = PortBus()
        self.mmu = BareMMU(self.physmem, self.costs, tlb_entries=tlb_entries)
        self.cpu = CPUCore(self.mmu, self.costs, port_bus=self.port_bus, jit=jit)

        self.pic = InterruptController(sink=self.cpu)
        self.port_bus.register(self.pic, PIC_BASE, 1)
        self.console = ConsoleDevice()
        self.port_bus.register(self.console, CONSOLE_BASE, 2)
        self.timer = TimerDevice(self.pic.line(IRQ_TIMER_LINE))
        self.port_bus.register(self.timer, TIMER_BASE, 3)
        self.power = PowerControl()
        self.port_bus.register(self.power, POWER_BASE, 1)
        self.block = BlockDevice(self.physmem, self.pic.line(IRQ_BLOCK_LINE))
        self.port_bus.register(self.block, BLOCK_BASE, 6)
        self.net = NetDevice(self.physmem, self.pic.line(IRQ_NET_LINE))
        self.port_bus.register(self.net, NET_BASE, 7)
        self.virtio_blk = VirtioBlockDevice(
            self.physmem, self.pic.line(IRQ_VIRTIO_BLK_LINE)
        )
        self.port_bus.register(self.virtio_blk, VIRTIO_BLK_BASE, 6)
        self.virtio_net = VirtioNetDevice(
            self.physmem, self.pic.line(IRQ_VIRTIO_NET_LINE)
        )
        self.port_bus.register(self.virtio_net, VIRTIO_NET_BASE, 14)

    def load_program(self, program) -> None:
        program.load(self.physmem)

    def run(self, max_instructions: Optional[int] = None) -> MachineOutcome:
        """Run until shutdown, true idle, or the instruction budget."""
        cpu = self.cpu
        start = cpu.instret
        while True:
            if self.power.shutdown_requested:
                return MachineOutcome.SHUTDOWN
            if max_instructions is not None and (
                cpu.instret - start >= max_instructions
            ):
                return MachineOutcome.INSTR_LIMIT
            self.timer.rebase_if_armed(cpu.cycles)
            self.timer.tick(cpu.cycles)
            if cpu.halted and not cpu.pending_irqs:
                deadline = self.timer.next_deadline()
                if deadline is None:
                    return MachineOutcome.HALTED
                cpu.cycles = max(cpu.cycles, deadline)
                self.timer.tick(cpu.cycles)
                continue
            slice_ = self.PUMP_SLICE
            if max_instructions is not None:
                slice_ = min(slice_, max_instructions - (cpu.instret - start))
            deadline = self.timer.next_deadline()
            if deadline is not None and deadline > cpu.cycles:
                cpu.run(max_instructions=slice_, max_cycles=deadline - cpu.cycles)
            else:
                cpu.run(max_instructions=slice_)
