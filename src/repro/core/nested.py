"""Nested paging (two-dimensional walks; EPT/NPT-style).

The guest owns its page tables natively -- no PT write protection, no
fill exits, PTBR writes and INVLPG stay in the guest. The price is the
walk: a guest-TLB miss must walk the guest tables, but every guest
table *access* is itself a guest-physical address that must be walked
through the EPT. For 2-level guest tables and a 2-level EPT that is

    2 guest levels x (2 EPT refs + 1 entry read) + 2 final EPT refs = 8

memory references versus 2 for shadow/native -- the classic
(n+1)(m+1)-1 amplification measured in experiment E3.

EPT permissions double as the host-control plane: an unmapped guest
frame raises an *EPT violation* exit (demand allocation, post-copy
migration, swap-in), and a write to a read-only EPT entry raises a
*dirty-log* violation (pre-copy migration round tracking).
"""

from typing import Optional, Set, Tuple

from repro.cpu.exits import ExitReason, VMExit
from repro.cpu.mmu import MMUBase
from repro.mem.costs import CostModel
from repro.mem.paging import (
    AccessType,
    AddressSpace,
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_NOEXEC,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    PageFault,
    pte_frame,
    split_vaddr,
)
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.mem.tlb import TLB
from repro.util.units import PAGE_SHIFT


class NestedMMU(MMUBase):
    """Two-dimensional translation: guest tables over an EPT."""

    def __init__(
        self,
        host_physmem: PhysicalMemory,
        host_allocator: FrameAllocator,
        guest_mem,
        costs: CostModel,
        tlb_entries: int = 64,
    ):
        self.physmem = host_physmem
        self.costs = costs
        self.guest_mem = guest_mem
        self.tlb = TLB(tlb_entries)
        self.ept = AddressSpace(host_physmem, host_allocator)
        self.guest_root: Optional[int] = None
        #: gfns whose EPT entry is write-protected for dirty logging.
        self.write_protected_gfns: Set[int] = set()

        self.nested_walks = 0
        self.walk_mem_refs = 0

    # -- EPT management (host side) ------------------------------------------

    def ept_map(self, gfn: int, hfn: int, writable: bool = True) -> None:
        flags = PTE_PRESENT | PTE_USER | (PTE_WRITABLE if writable else 0)
        self.ept.map(gfn << PAGE_SHIFT, hfn << PAGE_SHIFT, flags)

    def ept_unmap(self, gfn: int) -> None:
        self.ept.unmap(gfn << PAGE_SHIFT)
        self.tlb.flush()  # conservatively drop combined translations

    def write_protect_gfn(self, gfn: int) -> None:
        pte = self.ept.lookup(gfn << PAGE_SHIFT)
        if pte is None:
            return
        self.write_protected_gfns.add(gfn)
        self.ept.protect(gfn << PAGE_SHIFT, (pte & 0xFFF) & ~PTE_WRITABLE)
        self.tlb.flush()

    def unprotect_gfn(self, gfn: int) -> None:
        self.write_protected_gfns.discard(gfn)
        pte = self.ept.lookup(gfn << PAGE_SHIFT)
        if pte is not None:
            self.ept.protect(gfn << PAGE_SHIFT, (pte & 0xFFF) | PTE_WRITABLE)

    # -- MMUBase interface ----------------------------------------------------

    def translate(self, va: int, access: AccessType, user: bool) -> Tuple[int, int]:
        va &= 0xFFFFFFFF
        vpn = va >> PAGE_SHIFT
        pte = self.tlb.lookup(vpn, access, user)
        if pte is not None:
            return (pte_frame(pte) << PAGE_SHIFT) | (va & 0xFFF), self.costs.tlb_hit_cycles

        refs = 0
        self.nested_walks += 1
        if self.guest_root is None:
            # Guest paging off: VA is a gPA; one EPT walk.
            hpa, r = self._ept_walk(va, access)
            refs += r
            flags = PTE_PRESENT | PTE_USER | PTE_ACCESSED
            if access is AccessType.WRITE:
                flags |= PTE_WRITABLE | PTE_DIRTY
            self.tlb.insert(vpn, ((hpa >> PAGE_SHIFT) << PAGE_SHIFT) | flags)
            self.walk_mem_refs += refs
            return hpa, self.costs.tlb_hit_cycles + refs * self.costs.mem_ref_cycles

        dir_idx, tbl_idx, offset = split_vaddr(va)

        # Level 1: guest PDE (its gPA goes through the EPT).
        pde_gpa = self.guest_root + dir_idx * 4
        pde_hpa, r = self._ept_walk(pde_gpa, AccessType.READ)
        refs += r + 1
        pde = self.physmem.read_u32(pde_hpa)
        if not pde & PTE_PRESENT:
            raise PageFault(va, access, user, present=False)

        # Level 2: guest PTE.
        pte_gpa = (pte_frame(pde) << PAGE_SHIFT) + tbl_idx * 4
        pte_hpa, r = self._ept_walk(pte_gpa, AccessType.READ)
        refs += r + 1
        gpte = self.physmem.read_u32(pte_hpa)
        if not gpte & PTE_PRESENT:
            raise PageFault(va, access, user, present=False)

        combined = pde & gpte
        if user and not combined & PTE_USER:
            raise PageFault(va, access, user, present=True)
        if access is AccessType.WRITE and not combined & PTE_WRITABLE:
            raise PageFault(va, access, user, present=True)
        if access is AccessType.EXEC and gpte & PTE_NOEXEC:
            raise PageFault(va, access, user, present=True)

        # Guest A/D updates. A write to a guest PT entry is itself a
        # guest-physical write and must respect EPT write permission --
        # which is exactly how page-table pages get captured by dirty
        # logging on real hardware.
        if not pde & PTE_ACCESSED:
            pde_hpa_w, r = self._ept_walk(pde_gpa, AccessType.WRITE)
            refs += r
            self.physmem.write_u32(pde_hpa_w, pde | PTE_ACCESSED)
        new_gpte = gpte | PTE_ACCESSED
        if access is AccessType.WRITE:
            new_gpte |= PTE_DIRTY
        if new_gpte != gpte:
            pte_hpa_w, r = self._ept_walk(pte_gpa, AccessType.WRITE)
            refs += r
            self.physmem.write_u32(pte_hpa_w, new_gpte)
            gpte = new_gpte

        # Final level: the data page itself through the EPT.
        gpa = (pte_frame(gpte) << PAGE_SHIFT) | offset
        hpa, r = self._ept_walk(gpa, access)
        refs += r

        flags = PTE_PRESENT | PTE_ACCESSED
        flags |= combined & PTE_USER
        flags |= gpte & PTE_NOEXEC
        if access is AccessType.WRITE:
            # Lazy-W: cache write permission only once D is set, so the
            # next write after a dirty-log round re-walks.
            flags |= PTE_WRITABLE | PTE_DIRTY
        self.tlb.insert(vpn, ((hpa >> PAGE_SHIFT) << PAGE_SHIFT) | flags)
        self.walk_mem_refs += refs
        return hpa, self.costs.tlb_hit_cycles + refs * self.costs.mem_ref_cycles

    def set_root(self, root_pa: int) -> None:
        """Guest PTBR write: entirely guest-local under nested paging."""
        self.guest_root = root_pa & ~0xFFF
        self.tlb.flush()

    def invlpg(self, va: int) -> None:
        self.tlb.invalidate((va & 0xFFFFFFFF) >> PAGE_SHIFT)

    def flush(self) -> None:
        self.tlb.flush()

    def destroy(self) -> None:
        self.ept.destroy()
        self.tlb.flush()

    # -- internals -------------------------------------------------------------

    def _ept_walk(self, gpa: int, access: AccessType) -> Tuple[int, int]:
        """Walk the EPT for one gPA; returns (hpa, mem_refs).

        Raises :class:`VMExit` (EPT violation) when unmapped or when a
        write hits a write-protected entry.
        """
        dir_idx, tbl_idx, offset = split_vaddr(gpa)
        pde = self.physmem.read_u32(self.ept.root_pa + dir_idx * 4)
        if not pde & PTE_PRESENT:
            raise VMExit(
                ExitReason.PAGE_FAULT, kind="ept_violation",
                gpa=gpa, access=access,
            )
        pte = self.physmem.read_u32((pte_frame(pde) << PAGE_SHIFT) + tbl_idx * 4)
        if not pte & PTE_PRESENT:
            raise VMExit(
                ExitReason.PAGE_FAULT, kind="ept_violation",
                gpa=gpa, access=access,
            )
        if access is AccessType.WRITE and not (pde & pte & PTE_WRITABLE):
            kind = (
                "dirty_log"
                if (gpa >> PAGE_SHIFT) in self.write_protected_gfns
                else "ept_violation"
            )
            raise VMExit(
                ExitReason.PAGE_FAULT, kind=kind,
                gpa=gpa, gfn=gpa >> PAGE_SHIFT, access=access,
            )
        return (pte_frame(pte) << PAGE_SHIFT) | offset, 2
