"""Virtualization mode enums."""

import enum


class VirtMode(enum.Enum):
    """How guest instructions are executed."""

    NATIVE = "native"
    TRAP_EMULATE = "trap_emulate"
    BINARY_TRANSLATION = "binary_translation"
    PARAVIRT = "paravirt"
    HW_ASSIST = "hw_assist"


class MMUVirtMode(enum.Enum):
    """How guest memory is virtualized."""

    SHADOW = "shadow"
    NESTED = "nested"
    #: Architected H-mode two-stage translation (hardware guest mode
    #: with delegated traps and a hardware-walked G-stage).
    HMODE = "hmode"
