"""Virtualization policies installed on guest cores.

A policy decides, at each architecturally sensitive point, whether the
event stays in the guest or becomes a VM exit. Two policies cover the
execution modes:

* :class:`HWAssistPolicy` -- VT-x style. Guest privilege is tracked by
  the hardware; only I/O, VMCALL, HLT and (under shadow paging) PTBR
  writes and INVLPG exit. Guest traps deliver natively.
* :class:`DeprivilegedPolicy` -- trap-and-emulate, binary translation
  and paravirt. The guest runs entirely in real user mode, so *every*
  trap exits to the VMM (which reflects or emulates), and VMCALL exits
  as a hypercall. Crucially, the sensitive non-trapping instructions
  (user-mode STI/CLI, CSRR of MODE/IE) stay native and silently observe
  host state -- the measured Popek-Goldberg violation. Binary
  translation avoids this not through the policy but by never executing
  those instructions directly (the translator rewrites them).
"""

from repro.cpu.exits import ExitReason, VMExit
from repro.cpu.interp import CPUCore, NATIVE, TrapInfo, VirtPolicy
from repro.cpu.isa import CSR, Op


class HWAssistPolicy(VirtPolicy):
    """Hardware-assisted execution: exit only on configured events."""

    def __init__(self, vcpu, intercept_paging: bool):
        #: True under shadow paging (PTBR writes and INVLPG must exit so
        #: the VMM can maintain shadows); False under nested paging.
        self.vcpu = vcpu
        self.intercept_paging = intercept_paging

    def io(self, cpu: CPUCore, is_in: bool, port: int, value: int):
        reason = ExitReason.IO_IN if is_in else ExitReason.IO_OUT
        raise VMExit(reason, guest_pc=cpu.pc, instruction_length=4,
                     port=port, value=value)

    def vmcall(self, cpu: CPUCore, num: int):
        raise VMExit(ExitReason.VMCALL, guest_pc=cpu.pc,
                     instruction_length=4, num=num)

    def hlt(self, cpu: CPUCore):
        raise VMExit(ExitReason.HLT, guest_pc=cpu.pc, instruction_length=4)

    def csr_write(self, cpu: CPUCore, csr: int, value: int):
        if csr == CSR.PTBR and self.intercept_paging:
            raise VMExit(ExitReason.CSR_WRITE, guest_pc=cpu.pc,
                         instruction_length=4, csr=csr, value=value)
        return NATIVE

    def invlpg(self, cpu: CPUCore, va: int):
        if self.intercept_paging:
            raise VMExit(ExitReason.PRIV_INSTR, guest_pc=cpu.pc,
                         instruction_length=4, op=Op.INVLPG, va=va)
        return NATIVE


class DeprivilegedPolicy(VirtPolicy):
    """Software virtualization: every trap is intercepted."""

    def __init__(self, vcpu):
        self.vcpu = vcpu

    def trap(self, cpu: CPUCore, info: TrapInfo, ins):
        raise VMExit(
            ExitReason.GUEST_TRAP,
            guest_pc=cpu.pc,
            instruction_length=ins.length if ins is not None else 0,
            trap=info,
            ins=ins,
        )

    def vmcall(self, cpu: CPUCore, num: int):
        raise VMExit(ExitReason.VMCALL, guest_pc=cpu.pc,
                     instruction_length=4, num=num)

    # Sensitive non-trapping instructions and public-CSR reads stay
    # NATIVE deliberately: the guest silently sees *hardware* state.
    # (Inherited VirtPolicy defaults.)
