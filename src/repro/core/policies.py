"""Virtualization policies installed on guest cores.

A policy decides, at each architecturally sensitive point, whether the
event stays in the guest or becomes a VM exit. Two policies cover the
execution modes:

* :class:`HWAssistPolicy` -- VT-x style. Guest privilege is tracked by
  the hardware; only I/O, VMCALL, HLT and (under shadow paging) PTBR
  writes and INVLPG exit. Guest traps deliver natively.
* :class:`HModePolicy` -- the H-mode extension on top of hardware
  assist: trap *delegation*. Causes whose HEDELEG/HIDELEG bit is set
  deliver natively in the guest with no VMM involvement at all; only
  non-delegated causes exit. Paging is never intercepted (the G-stage
  MMU handles memory virtualization in hardware).
* :class:`DeprivilegedPolicy` -- trap-and-emulate, binary translation
  and paravirt. The guest runs entirely in real user mode, so *every*
  trap exits to the VMM (which reflects or emulates), and VMCALL exits
  as a hypercall. Crucially, the sensitive non-trapping instructions
  (user-mode STI/CLI, CSRR of MODE/IE) stay native and silently observe
  host state -- the measured Popek-Goldberg violation. Binary
  translation avoids this not through the policy but by never executing
  those instructions directly (the translator rewrites them).
"""

from typing import Callable, Optional

from repro.cpu.exits import ExitReason, VMExit
from repro.cpu.interp import CPUCore, HANDLED, NATIVE, TrapInfo, VirtPolicy
from repro.cpu.isa import CSR, IRQ_CAUSES, Op


class HWAssistPolicy(VirtPolicy):
    """Hardware-assisted execution: exit only on configured events."""

    def __init__(self, vcpu, intercept_paging: bool):
        #: True under shadow paging (PTBR writes and INVLPG must exit so
        #: the VMM can maintain shadows); False under nested paging.
        self.vcpu = vcpu
        self.intercept_paging = intercept_paging

    def io(self, cpu: CPUCore, is_in: bool, port: int, value: int):
        reason = ExitReason.IO_IN if is_in else ExitReason.IO_OUT
        raise VMExit(reason, guest_pc=cpu.pc, instruction_length=4,
                     port=port, value=value)

    def vmcall(self, cpu: CPUCore, num: int):
        raise VMExit(ExitReason.VMCALL, guest_pc=cpu.pc,
                     instruction_length=4, num=num)

    def hlt(self, cpu: CPUCore):
        raise VMExit(ExitReason.HLT, guest_pc=cpu.pc, instruction_length=4)

    def csr_write(self, cpu: CPUCore, csr: int, value: int):
        if csr == CSR.PTBR and self.intercept_paging:
            raise VMExit(ExitReason.CSR_WRITE, guest_pc=cpu.pc,
                         instruction_length=4, csr=csr, value=value)
        return NATIVE

    def invlpg(self, cpu: CPUCore, va: int):
        if self.intercept_paging:
            raise VMExit(ExitReason.PRIV_INSTR, guest_pc=cpu.pc,
                         instruction_length=4, op=Op.INVLPG, va=va)
        return NATIVE


class HModePolicy(HWAssistPolicy):
    """H-mode guest execution: hardware trap delegation over HW assist.

    ``hedeleg``/``hideleg`` are the *host-programmed* delegation masks
    (bit = :class:`~repro.cpu.isa.Cause`): a delegated cause vectors
    straight into the guest kernel -- the policy returns NATIVE and the
    core's own :meth:`~repro.cpu.interp.CPUCore.deliver_trap` runs, so
    the guest-visible CSR/cycle effects are bit-identical to a bare
    machine. Non-delegated causes exit with the full trap context and
    the VMM re-injects (or handles) them.

    The guest's own view of CSRs HEDELEG/HIDELEG is virtualized against
    ``vcpu.vcsr``: reads and writes from the guest kernel never touch
    the host's masks (a guest cannot grant itself delegation), and the
    observable behaviour matches every other engine, where those CSR
    slots are plain storage.

    ``deleg_miss_fn`` is the ``hmode.delegation_miss`` fault hook: when
    it fires, one delegated trap spuriously exits anyway (modelling a
    microarchitectural delegation miss) and the VMM re-injects it --
    guest-visible state converges, only host-side timing differs.
    """

    def __init__(
        self,
        vcpu,
        hedeleg: int,
        hideleg: int,
        deleg_miss_fn: Optional[Callable[[], bool]] = None,
    ):
        super().__init__(vcpu, intercept_paging=False)
        self.hedeleg = hedeleg & 0xFFFFFFFF
        self.hideleg = hideleg & 0xFFFFFFFF
        self.deleg_miss_fn = deleg_miss_fn

    def trap(self, cpu: CPUCore, info: TrapInfo, ins):
        mask = self.hideleg if info.cause in IRQ_CAUSES else self.hedeleg
        if (mask >> int(info.cause)) & 1:
            extra = cpu.costs.hmode_deleg_extra_cycles
            if extra:
                # Charged whether delivery completes natively or via the
                # injected-after-spurious-exit path: the guest cycle
                # stream stays identical either way.
                cpu.cycles += extra
            if self.deleg_miss_fn is None or not self.deleg_miss_fn():
                return NATIVE
            raise VMExit(
                ExitReason.GUEST_TRAP,
                guest_pc=cpu.pc,
                instruction_length=ins.length if ins is not None else 0,
                trap=info,
                ins=ins,
                deleg_miss=True,
            )
        raise VMExit(
            ExitReason.GUEST_TRAP,
            guest_pc=cpu.pc,
            instruction_length=ins.length if ins is not None else 0,
            trap=info,
            ins=ins,
        )

    def csr_read(self, cpu: CPUCore, csr: int, user: bool):
        if csr in (int(CSR.HEDELEG), int(CSR.HIDELEG)):
            return self.vcpu.vcsr[csr]
        return NATIVE

    def csr_write(self, cpu: CPUCore, csr: int, value: int):
        if csr in (int(CSR.HEDELEG), int(CSR.HIDELEG)):
            self.vcpu.vcsr[csr] = value & 0xFFFFFFFF
            return HANDLED
        return super().csr_write(cpu, csr, value)


class DeprivilegedPolicy(VirtPolicy):
    """Software virtualization: every trap is intercepted."""

    def __init__(self, vcpu):
        self.vcpu = vcpu

    def trap(self, cpu: CPUCore, info: TrapInfo, ins):
        raise VMExit(
            ExitReason.GUEST_TRAP,
            guest_pc=cpu.pc,
            instruction_length=ins.length if ins is not None else 0,
            trap=info,
            ins=ins,
        )

    def vmcall(self, cpu: CPUCore, num: int):
        raise VMExit(ExitReason.VMCALL, guest_pc=cpu.pc,
                     instruction_length=4, num=num)

    # Sensitive non-trapping instructions and public-CSR reads stay
    # NATIVE deliberately: the guest silently sees *hardware* state.
    # (Inherited VirtPolicy defaults.)
