"""Binary translation engine (VMware-style software VMM).

Guest **kernel** code never executes directly: the translator decodes
basic blocks on first touch, classifies each instruction, and caches a
*translated block*:

* innocuous instructions are executed natively (interpreter fast path);
* privileged and sensitive instructions become **inline callouts** into
  monitor emulation against the vCPU's virtual state -- no hardware
  world switch, cost :attr:`~repro.mem.costs.CostModel.bt_callout_cycles`
  each. This both restores Popek-Goldberg correctness (user-mode STI /
  CLI / CSRR of MODE and IE are rewritten, so the guest sees virtual
  state) and removes the trap-per-instruction tax of trap-and-emulate.

Blocks end at control transfers. Block dispatch costs
``bt_dispatch_cycles`` (translation-cache hash lookup) unless the
(predecessor, successor) pair has been *chained*, after which dispatch
is free -- the measured benefit of chaining in experiment E9.

Guest **user** code still runs directly (traps exit to the VMM and are
reflected); the hypervisor switches between direct execution and the
translator on virtual privilege transitions.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.emulate import emulate_privileged
from repro.core.vcpu import VCPU
from repro.cpu.exits import ExitReason, VMExit
from repro.cpu.interp import TrapInfo
from repro.cpu.jit import _STORE_OPS, compile_bt_block
from repro.cpu.isa import CSR, Cause, Instruction, MODE_KERNEL, Op
from repro.mem.costs import CostModel
from repro.mem.paging import AccessType, PageFault

#: Maximum instructions per translated block.
MAX_BLOCK_INSTRUCTIONS = 32

#: Instructions that end a block (control transfers; the callout
#: terminators IRET/HLT/SYSCALL/VMCALL/BRK and PTBR writes end
#: blocks too).
_TERMINATORS = frozenset(
    {Op.JAL, Op.JALR, Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU}
)

#: Instructions rewritten into monitor callouts.
_CALLOUT_OPS = frozenset(
    {
        Op.CSRR,
        Op.CSRW,
        Op.IRET,
        Op.HLT,
        Op.STI,
        Op.CLI,
        Op.IN,
        Op.OUT,
        Op.INVLPG,
        Op.VMCALL,
        Op.SYSCALL,
        Op.BRK,
    }
)


@dataclass
class TranslatedBlock:
    """One guest basic block, translated."""

    start_va: int
    items: List[Tuple[str, Instruction]]  # ("native" | "callout", ins)
    code_gfns: Set[int] = field(default_factory=set)
    #: Fused host closure for the item list (compiled lazily on first
    #: execution; cleared when the cost model changes).
    fn: Optional[Callable] = None

    @property
    def num_instructions(self) -> int:
        return len(self.items)


class BTEngine:
    """Per-vCPU binary translator with block cache and chaining."""

    def __init__(
        self,
        vcpu: VCPU,
        costs: CostModel,
        port_bus=None,
        hypercall_handler: Optional[Callable[[VCPU, int], None]] = None,
        cache_enabled: bool = True,
        chaining_enabled: bool = True,
        compile_enabled: bool = True,
    ):
        self.vcpu = vcpu
        self.costs = costs
        self.port_bus = port_bus
        self.hypercall_handler = hypercall_handler
        self.cache_enabled = cache_enabled
        self.chaining_enabled = chaining_enabled
        #: When True, blocks execute as fused host closures; False keeps
        #: the per-item reference walk (the correctness oracle).
        self.compile_enabled = compile_enabled

        self._cache: Dict[Tuple[Optional[int], int], TranslatedBlock] = {}
        self._chains: Set[Tuple[int, int]] = set()
        self._gfn_blocks: Dict[int, Set[Tuple[Optional[int], int]]] = {}
        self._costs_sig = self._cost_signature()
        #: Self-modifying-code protection: host frames backing translated
        #: guest code, watched for writes on the physical memory (stores
        #: the translator runs natively, hypercall side effects and
        #: device DMA all land there). A write drops every translation
        #: backed by the written frame's guest page(s).
        self._watched_hfns: Set[int] = set()
        self._hfn_gfns: Dict[int, Set[int]] = {}
        #: Invalidation epoch, shared with fused closures: bumped on
        #: every cache invalidation so an in-flight block can bail at
        #: the store that rewrote translated code. The next fetch then
        #: re-translates from the new bytes -- same strict
        #: SMC-visible-at-next-fetch rule the bare-core JIT enforces.
        self._epoch = [0]
        self.vcpu.cpu.mmu.physmem.watch_writes(
            self._watched_hfns, self._on_code_write
        )

    # -- public API ------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> str:
        """Execute translated guest-kernel code until a stop condition.

        Returns ``"mode_switch"`` (guest dropped to virtual user mode),
        ``"halted"`` (virtual HLT), or ``"budget"``. VMExits raised
        during execution (guest faults, shadow fills) propagate to the
        hypervisor, which services them and re-enters here.
        """
        vm = self.vcpu.vm
        cpu = self.vcpu.cpu
        start_cycles = cpu.cycles
        prev_block_va: Optional[int] = None
        sig = self._cost_signature()
        if sig != self._costs_sig:
            self._costs_sig = sig
            for cached in self._cache.values():
                cached.fn = None  # closures bake costs in; recompile
        events = cpu.events
        while True:
            if events is not None and cpu.instret >= events.next_due:
                # Retire-edge event firing, before the halt check: a
                # raise can wake a virtually-halted guest, exactly as
                # the hardware-assist core wakes in its run loop.
                events.fire_due(cpu.instret)
            if vm.pending_virqs and self.vcpu.vcsr[CSR.IE]:
                # Unmasked pending virq: deliver before the next fetch
                # (the same edge the hardware-assist core delivers at).
                self.vcpu.halted = False
                self.vcpu.try_inject_virq()
                prev_block_va = None
                continue
            if self.vcpu.virtual_mode != MODE_KERNEL or self.vcpu.halted:
                break
            if max_cycles is not None and cpu.cycles - start_cycles >= max_cycles:
                return "budget"
            key = self._key(cpu.pc)
            block = self._cache.get(key) if self.cache_enabled else None
            if block is None:
                block = self._translate(cpu.pc)
                if block is None:
                    # First fetch of the block faulted: the PF_EXEC was
                    # reflected into the guest, whose pc now sits at its
                    # vector. Re-dispatch from there.
                    prev_block_va = None
                    continue
                vm.stats.bt_block_misses += 1
                if self.cache_enabled:
                    self._cache[key] = block
                    for gfn in block.code_gfns:
                        self._gfn_blocks.setdefault(gfn, set()).add(key)
                    self._watch_block(block)
            else:
                vm.stats.bt_block_hits += 1
            # Dispatch cost, unless chained from the previous block.
            if prev_block_va is not None:
                link = (prev_block_va, block.start_va)
                if self.chaining_enabled and link in self._chains:
                    vm.stats.bt_chained += 1
                else:
                    cpu.cycles += self.costs.bt_dispatch_cycles
                    if self.chaining_enabled:
                        self._chains.add(link)
            else:
                cpu.cycles += self.costs.bt_dispatch_cycles
            prev_block_va = block.start_va
            if (
                events is not None
                and block.num_instructions > events.next_due - cpu.instret
            ):
                # A scheduled edge falls inside this block: walk it
                # item-by-item so the event fires (and delivers) at the
                # exact retire edge instead of the block boundary.
                self._execute_block_edge(block, events)
            else:
                self._execute_block(block)
        return "halted" if self.vcpu.halted else "mode_switch"

    def invalidate_gfn(self, gfn: int) -> None:
        """Drop translations backed by a guest frame (self-modifying or
        re-used code pages)."""
        keys = self._gfn_blocks.pop(gfn, None)
        if not keys:
            return
        self._epoch[0] += 1
        for key in keys:
            self._cache.pop(key, None)
        # Drop only chains touching an invalidated block's entry point
        # (as predecessor or successor); unrelated links keep their
        # free-dispatch status instead of being rebuilt from scratch.
        dropped = {key[1] for key in keys}
        self._chains = {
            link
            for link in self._chains
            if link[0] not in dropped and link[1] not in dropped
        }

    def flush(self) -> None:
        self._epoch[0] += 1
        self._cache.clear()
        self._chains.clear()
        self._gfn_blocks.clear()
        self._watched_hfns.clear()
        self._hfn_gfns.clear()

    @property
    def cached_blocks(self) -> int:
        return len(self._cache)

    def _watch_block(self, block: TranslatedBlock) -> None:
        """Arm write-watching for the frames backing a cached block."""
        guest_map = self.vcpu.vm.guest_mem.map
        for gfn in block.code_gfns:
            hfn = guest_map.get(gfn)
            if hfn is None:
                continue
            self._hfn_gfns.setdefault(hfn, set()).add(gfn)
            self._watched_hfns.add(hfn)

    def _on_code_write(self, hfn: int) -> None:
        """Physmem write watcher: a store landed on translated code."""
        gfns = self._hfn_gfns.pop(hfn, None)
        self._watched_hfns.discard(hfn)
        if gfns:
            for gfn in gfns:
                self.invalidate_gfn(gfn)

    # -- internals -------------------------------------------------------

    def _cost_signature(self) -> Tuple[int, int, int, int]:
        c = self.costs
        return (
            c.instr_cycles,
            c.mul_extra_cycles,
            c.div_extra_cycles,
            c.bt_callout_cycles,
        )

    def _key(self, va: int) -> Tuple[Optional[int], int]:
        mmu = self.vcpu.cpu.mmu
        root = getattr(mmu, "guest_root", None)
        return (root, va)

    def _translate(self, va: int) -> Optional[TranslatedBlock]:
        """Decode one basic block starting at ``va``.

        Returns ``None`` when the *first* fetch takes a guest page
        fault: the fault is reflected into the guest exactly as a
        hardware instruction fetch would trap, and the caller
        re-dispatches from the guest's vector. A fault past the first
        instruction truncates the block at the faulting boundary --
        execution re-enters at the cursor and faults architecturally
        then. (Without this, a guest jump to a non-executable page
        escaped as a host-level PageFault instead of a guest trap.)
        """
        cpu = self.vcpu.cpu
        vm = self.vcpu.vm
        items: List[Tuple[str, Instruction]] = []
        code_gfns: Set[int] = set()
        cursor = va
        for _ in range(MAX_BLOCK_INSTRUCTIONS):
            try:
                ins = cpu.fetch(cursor)  # may raise VMExit (shadow fill)
            except PageFault as fault:
                if items:
                    break
                cpu.cycles += self.costs.trap_cycles
                if cursor == self.vcpu.vcsr[CSR.VBAR]:
                    # Fetching the guest's own trap vector faulted:
                    # reflecting would re-enter the vector and fault
                    # again forever. Same terminal condition as the
                    # hardware-assist triple-fault guard.
                    raise VMExit(ExitReason.TRIPLE_FAULT, guest_pc=cursor,
                                 cause=Cause.PF_EXEC, value=fault.vaddr)
                self.vcpu.reflect_trap(
                    TrapInfo(Cause.PF_EXEC, fault.vaddr, epc=cursor)
                )
                return None
            mmu = cpu.mmu
            if hasattr(mmu, "_guest_walk") and getattr(mmu, "guest_root", None) is not None:
                code_gfns.add(mmu._guest_walk(cursor, AccessType.EXEC).gfn)
            else:
                # Guest paging off: VA is the guest-physical address.
                code_gfns.add(cursor >> 12)
            if ins.op in _CALLOUT_OPS:
                items.append(("callout", ins))
                if ins.op in (Op.IRET, Op.HLT, Op.SYSCALL, Op.VMCALL, Op.BRK):
                    break
                if (ins.op is Op.CSRW
                        and ins.simm12 & 0xFFF == int(CSR.PTBR)):
                    # A PTBR write changes instruction-fetch translation;
                    # the rest of this block was decoded under the old
                    # root. End the block so dispatch re-fetches (and, if
                    # the new root does not map the next pc, re-faults)
                    # under the new root, exactly like hardware.
                    break
            else:
                items.append(("native", ins))
                if ins.op in _TERMINATORS:
                    break
            cursor += ins.length
        cpu.cycles += self.costs.bt_translate_cycles * len(items)
        vm.stats.bt_translated_instructions += len(items)
        return TranslatedBlock(start_va=va, items=items, code_gfns=code_gfns)

    def _execute_block(self, block: TranslatedBlock) -> None:
        if not self.compile_enabled:
            self._execute_block_interp(block)
            return
        fn = block.fn
        if fn is None:
            fn = block.fn = compile_bt_block(self, block)
        fn(self.vcpu.cpu)

    def _execute_block_edge(self, block: TranslatedBlock, events) -> None:
        """Per-item walk honouring retire-edge event delivery.

        Used instead of the fused closure when a scheduled event edge
        lands inside the block. Cycle charges are identical to
        :meth:`_execute_block_interp` (which the closures match
        cycle-for-cycle), so which executor ran is invisible to the
        differential comparison.
        """
        vcpu = self.vcpu
        cpu = vcpu.cpu
        vm = vcpu.vm
        costs = self.costs
        epoch = self._epoch
        e0 = epoch[0]
        last = block.items[-1]
        for item in block.items:
            kind, ins = item
            if cpu.instret >= events.next_due:
                events.fire_due(cpu.instret)
                if vm.pending_virqs and vcpu.vcsr[CSR.IE]:
                    vcpu.halted = False
                    vcpu.try_inject_virq()
                    return
            if kind == "native":
                cpu.cycles += costs.instr_cycles
                cpu.execute(ins)  # VMExit may propagate (guest fault)
                if ins.op in _STORE_OPS and epoch[0] != e0 and item is not last:
                    return
            else:
                cpu.cycles += costs.bt_callout_cycles
                if self._callout(ins):
                    return

    def _execute_block_interp(self, block: TranslatedBlock) -> None:
        """Reference per-item walk; the oracle the fused closures must
        match cycle-for-cycle (see tests/test_cpu_jit.py)."""
        cpu = self.vcpu.cpu
        costs = self.costs
        epoch = self._epoch
        e0 = epoch[0]
        last = block.items[-1]
        for item in block.items:
            kind, ins = item
            if kind == "native":
                cpu.cycles += costs.instr_cycles
                cpu.execute(ins)  # VMExit may propagate (guest fault)
                # The store may have rewritten translated code (ours
                # included): stop at the boundary so the next fetch
                # re-translates from the new bytes.
                if ins.op in _STORE_OPS and epoch[0] != e0 and item is not last:
                    return
            else:
                cpu.cycles += costs.bt_callout_cycles
                stop = self._callout(ins)
                if stop:
                    return

    def _callout(self, ins: Instruction) -> bool:
        """Run monitor logic for one rewritten instruction.

        Returns True when the block must stop (privilege change, halt,
        trap reflection).
        """
        vcpu = self.vcpu
        cpu = vcpu.cpu
        vm = vcpu.vm
        vm.stats.bt_callouts += 1
        # A rewritten instruction retires like any other guest
        # instruction. Under hardware assist the same instruction bumps
        # instret in the core before its intercept exit is serviced
        # (CPUCore.execute never rolls privileged exits back), so
        # retiring here keeps instret -- and everything metered by it:
        # run-loop instruction budgets, watchdog beats, guest CSRR
        # INSTRET -- comparable across virtualization engines instead
        # of silently undercounting emulated work.
        cpu.instret += 1
        op = ins.op

        if op is Op.SYSCALL or op is Op.BRK:
            cause = Cause.SYSCALL if op is Op.SYSCALL else Cause.BREAK
            cpu.cycles += self.costs.trap_cycles
            vcpu.reflect_trap(
                TrapInfo(cause, ins.simm12 & 0xFFF, epc=cpu.pc + ins.length)
            )
            return True

        if op is Op.VMCALL:
            if self.hypercall_handler is None:
                raise RuntimeError("BT guest issued VMCALL with no handler")
            vm.stats.hypercalls += 1
            cpu.cycles += self.costs.hypercall_cycles
            self.hypercall_handler(vcpu, ins.simm12 & 0xFFF)
            if vcpu.halted or vcpu.virtual_mode != MODE_KERNEL:
                return True
            return self._post_retire_inject()

        if op in (Op.IN, Op.OUT):
            cpu.cycles += self.costs.emulate_cycles
        emulate_privileged(vcpu, ins, port_bus=self.port_bus)
        if op is Op.IRET:
            if vcpu.virtual_mode != MODE_KERNEL:
                return True
        elif op is Op.HLT:
            return True
        return self._post_retire_inject()

    def _post_retire_inject(self) -> bool:
        """Delivery edge after a non-stopping callout retires.

        First fire any schedule event due at this retire edge (device
        raises from the emulated instruction itself come first, matching
        the hardware core's execute-then-fire order -- and keeping the
        timer-vs-device priority race identical), then deliver an
        unmasked pending virq before the next item executes. Returns
        True when an injection redirected the pc (the block must stop).
        """
        vcpu = self.vcpu
        cpu = vcpu.cpu
        events = cpu.events
        if events is not None and cpu.instret >= events.next_due:
            events.fire_due(cpu.instret)
        if vcpu.vm.pending_virqs and vcpu.vcsr[CSR.IE]:
            vcpu.try_inject_virq()
            return True
        return False
