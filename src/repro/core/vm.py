"""Virtual machine objects: configuration, guest-physical memory, the VM.

:class:`GuestMemory` is the gPA -> hPA indirection every other piece
builds on: shadow paging resolves guest frame numbers through it, device
DMA goes through it (and marks pages dirty for migration), ballooning
unmaps through it, page sharing re-points it.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.core.modes import MMUVirtMode, VirtMode
from repro.core.stats import ExitStats, VMStats
from repro.cpu.isa import Cause
from repro.obs.registry import MetricsRegistry
from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.util.errors import ConfigError, MemoryError_
from repro.util.units import MIB, PAGE_SHIFT, PAGE_SIZE, bytes_to_pages


@dataclass
class GuestConfig:
    """Static configuration of one VM."""

    name: str = "vm"
    memory_bytes: int = 4 * MIB
    virt_mode: VirtMode = VirtMode.HW_ASSIST
    mmu_mode: MMUVirtMode = MMUVirtMode.NESTED
    tlb_entries: int = 64
    #: Allocate and map all guest frames up front (False = demand-page
    #: through EPT violations; only meaningful with nested paging).
    prealloc: bool = True
    #: Attach virtio devices instead of (or in addition to) emulated ones.
    with_virtio: bool = True
    with_emulated_io: bool = True

    def validate(self) -> None:
        if self.memory_bytes <= 0 or self.memory_bytes % PAGE_SIZE:
            raise ConfigError(
                f"guest memory must be a positive multiple of {PAGE_SIZE}"
            )
        if self.virt_mode is VirtMode.NATIVE:
            raise ConfigError("NATIVE mode runs on a Machine, not in a VM")
        if (
            self.virt_mode is not VirtMode.HW_ASSIST
            and self.mmu_mode is not MMUVirtMode.SHADOW
        ):
            raise ConfigError(
                f"{self.virt_mode.value} requires shadow paging "
                f"({self.mmu_mode.value} paging needs hardware assistance)"
            )
        if not self.prealloc and self.mmu_mode is MMUVirtMode.SHADOW:
            raise ConfigError(
                "demand paging of guest RAM requires nested or hmode"
            )


class GuestMemory:
    """Guest-physical address space: a gfn -> hfn map over host RAM.

    All byte accessors accept arbitrary (possibly page-crossing) ranges.
    Writes optionally invoke ``write_hook(gfn)`` -- the dirty-tracking
    tap used by live migration for device DMA (CPU stores are tracked
    through page-table dirty bits instead).
    """

    def __init__(self, host_physmem: PhysicalMemory, num_pages: int):
        if num_pages <= 0:
            raise MemoryError_("guest needs at least one page")
        self.host = host_physmem
        self.num_pages = num_pages
        self.map: Dict[int, int] = {}  # gfn -> hfn
        self.write_hook: Optional[Callable[[int], None]] = None

    @property
    def size(self) -> int:
        return self.num_pages << PAGE_SHIFT

    def map_page(self, gfn: int, hfn: int) -> None:
        if not 0 <= gfn < self.num_pages:
            raise MemoryError_(f"gfn {gfn} outside guest of {self.num_pages} pages")
        self.map[gfn] = hfn

    def unmap_page(self, gfn: int) -> int:
        """Remove a mapping; returns the host frame it pointed to."""
        try:
            return self.map.pop(gfn)
        except KeyError:
            raise MemoryError_(f"gfn {gfn} not mapped") from None

    def is_mapped(self, gfn: int) -> bool:
        return gfn in self.map

    def gpa_to_hpa(self, gpa: int) -> int:
        gfn = gpa >> PAGE_SHIFT
        hfn = self.map.get(gfn)
        if hfn is None:
            raise MemoryError_(f"guest-physical {gpa:#x} not backed (gfn {gfn})")
        return (hfn << PAGE_SHIFT) | (gpa & (PAGE_SIZE - 1))

    # -- scalar accessors ------------------------------------------------

    def read_u32(self, gpa: int) -> int:
        return self.host.read_u32(self.gpa_to_hpa(gpa))

    def write_u32(self, gpa: int, value: int) -> None:
        self.host.write_u32(self.gpa_to_hpa(gpa), value)
        self._note_write(gpa >> PAGE_SHIFT)

    def read_u8(self, gpa: int) -> int:
        return self.host.read_u8(self.gpa_to_hpa(gpa))

    def write_u8(self, gpa: int, value: int) -> None:
        self.host.write_u8(self.gpa_to_hpa(gpa), value)
        self._note_write(gpa >> PAGE_SHIFT)

    # -- bulk accessors (page-crossing safe) --------------------------------

    def read_bytes(self, gpa: int, length: int) -> bytes:
        chunks = []
        while length > 0:
            in_page = min(length, PAGE_SIZE - (gpa & (PAGE_SIZE - 1)))
            chunks.append(self.host.read_bytes(self.gpa_to_hpa(gpa), in_page))
            gpa += in_page
            length -= in_page
        return b"".join(chunks)

    def write_bytes(self, gpa: int, data: bytes) -> None:
        offset = 0
        while offset < len(data):
            in_page = min(
                len(data) - offset, PAGE_SIZE - (gpa & (PAGE_SIZE - 1))
            )
            self.host.write_bytes(self.gpa_to_hpa(gpa), data[offset : offset + in_page])
            self._note_write(gpa >> PAGE_SHIFT)
            gpa += in_page
            offset += in_page

    def read_gfn(self, gfn: int) -> bytes:
        return self.read_bytes(gfn << PAGE_SHIFT, PAGE_SIZE)

    def write_gfn(self, gfn: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise MemoryError_("write_gfn needs exactly one page of data")
        self.write_bytes(gfn << PAGE_SHIFT, data)

    def _note_write(self, gfn: int) -> None:
        if self.write_hook is not None:
            self.write_hook(gfn)


class VirtualMachine:
    """One guest: memory, vCPUs, virtual devices, statistics.

    Construction wires nothing up -- :meth:`repro.core.hypervisor.
    Hypervisor.create_vm` is the factory that allocates memory, builds
    the MMU, attaches devices, and registers the VM.
    """

    def __init__(self, config: GuestConfig, guest_mem: GuestMemory,
                 metrics=None):
        config.validate()
        self.config = config
        self.name = config.name
        self.guest_mem = guest_mem
        self.vcpus: List = []
        self.port_bus = None  # virtual device bus (PortBus)
        self.pic = None  # virtual InterruptController
        self.bt = None  # BTEngine under BINARY_TRANSLATION
        self.devices: Dict[str, object] = {}
        if metrics is None:
            metrics = MetricsRegistry().scope(f"vm.{config.name}")
        #: this VM's namespace (``vm.<name>``) in the run's registry
        self.metrics = metrics
        self.exit_stats = ExitStats(metrics)
        self.stats = VMStats(metrics)
        #: virtual IRQ causes awaiting injection (deprivileged modes).
        self.pending_virqs: Set[Cause] = set()
        #: set by the balloon driver: gfns surrendered to the host.
        self.ballooned_gfns: Set[int] = set()

    @property
    def num_pages(self) -> int:
        return self.guest_mem.num_pages

    # The PIC's interrupt sink: route a coalesced interrupt toward the
    # vCPU. Under HW_ASSIST injection goes straight into the core's
    # pending set (hardware event injection); under deprivileged modes
    # the VMM reflects it at the next exit boundary, respecting the
    # guest's *virtual* IE.
    def assert_irq(self, cause: Cause) -> None:
        from repro.core.modes import VirtMode

        if self.config.virt_mode is VirtMode.HW_ASSIST:
            for vcpu in self.vcpus:
                vcpu.cpu.assert_irq(cause)
                vcpu.halted = False
        else:
            self.pending_virqs.add(cause)
            for vcpu in self.vcpus:
                vcpu.halted = False

    def device(self, name: str):
        try:
            return self.devices[name]
        except KeyError:
            raise ConfigError(
                f"VM {self.name!r} has no device {name!r}; "
                f"available: {sorted(self.devices)}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"<VirtualMachine {self.name} {self.config.virt_mode.value}/"
            f"{self.config.mmu_mode.value} {self.num_pages} pages>"
        )
