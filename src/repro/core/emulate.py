"""In-monitor emulation of guest privileged instructions.

Shared by the trap-and-emulate exit handler (after a PRIV exit) and the
binary translator (as inline callouts): decode-and-execute one guest
privileged instruction against the vCPU's *virtual* state.
"""

from typing import Optional

from repro.cpu.interp import TrapInfo
from repro.cpu.isa import CSR, Cause, Instruction, MODE_USER, Op
from repro.mem.paging import AccessType
from repro.util.errors import GuestError
from repro.util.units import PAGE_SHIFT

#: Virtual CSRs an emulated CSRR/CSRW accesses (everything else reads
#: through to the core: CYCLES, INSTRET, CPUID are shared with the host).
_VIRTUAL_CSRS = frozenset(
    {
        int(CSR.MODE),
        int(CSR.IE),
        int(CSR.PTBR),
        int(CSR.VBAR),
        int(CSR.EPC),
        int(CSR.ECAUSE),
        int(CSR.EVAL),
        int(CSR.SCRATCH),
        int(CSR.ESTATUS),
    }
)

_READONLY = frozenset({int(CSR.MODE), int(CSR.CYCLES),
                       int(CSR.INSTRET), int(CSR.CPUID)})


def emulate_privileged(vcpu, ins: Instruction, port_bus=None) -> str:
    """Apply one privileged/sensitive guest instruction to virtual state.

    Returns a short mnemonic for exit accounting. Advances the guest pc
    unless the instruction is itself a control transfer (IRET).
    """
    cpu = vcpu.cpu
    vcsr = vcpu.vcsr
    op = ins.op

    if op is Op.CSRR:
        csr = ins.simm12 & 0xFFF
        if csr in _VIRTUAL_CSRS:
            value = vcsr[csr]
        elif csr == CSR.CYCLES:
            value = cpu.cycles & 0xFFFFFFFF
        elif csr == CSR.INSTRET:
            value = cpu.instret & 0xFFFFFFFF
        elif csr == CSR.CPUID:
            value = cpu.csr[CSR.CPUID]
        elif csr < len(vcsr):
            # Architecturally-unassigned-but-in-range CSRs are guest
            # scratch on bare hardware; keep them in virtual state.
            value = vcsr[csr]
        else:
            # Native semantics: ILLEGAL trap into the *guest*, not a
            # host error -- guests probing CSR space must behave the
            # same under every virtualization mode.
            vcpu.reflect_trap(TrapInfo(Cause.ILLEGAL, csr, epc=cpu.pc))
            return "illegal_csr"
        cpu.write_reg(ins.rd, value)
        cpu.pc = (cpu.pc + ins.length) & 0xFFFFFFFF
        return "csrr"

    if op is Op.CSRW:
        csr = ins.simm12 & 0xFFF
        value = cpu.regs[ins.ra]
        if csr in _READONLY or csr >= len(vcsr):
            vcpu.reflect_trap(TrapInfo(Cause.ILLEGAL, csr, epc=cpu.pc))
            return "illegal_csr"
        vcsr[csr] = value & 0xFFFFFFFF
        if csr == CSR.PTBR:
            cpu.mmu.set_root(value)
        cpu.pc = (cpu.pc + ins.length) & 0xFFFFFFFF
        return "csrw"

    if op is Op.IRET:
        vcpu.emulate_iret()
        return "iret"

    if op is Op.HLT:
        vcpu.halted = True
        cpu.pc = (cpu.pc + ins.length) & 0xFFFFFFFF
        return "hlt"

    if op is Op.STI or op is Op.CLI:
        vcsr[CSR.IE] = 1 if op is Op.STI else 0
        cpu.pc = (cpu.pc + ins.length) & 0xFFFFFFFF
        return "sti" if op is Op.STI else "cli"

    if op is Op.INVLPG:
        cpu.mmu.invlpg(cpu.regs[ins.ra])
        cpu.pc = (cpu.pc + ins.length) & 0xFFFFFFFF
        return "invlpg"

    if op is Op.OUT:
        if port_bus is None:
            raise GuestError("guest OUT with no virtual port bus")
        port_bus.io_out(ins.simm12 & 0xFFF, cpu.regs[ins.ra])
        cpu.pc = (cpu.pc + ins.length) & 0xFFFFFFFF
        return "out"

    if op is Op.IN:
        if port_bus is None:
            raise GuestError("guest IN with no virtual port bus")
        cpu.write_reg(ins.rd, port_bus.io_in(ins.simm12 & 0xFFF))
        cpu.pc = (cpu.pc + ins.length) & 0xFFFFFFFF
        return "in"

    raise GuestError(f"cannot emulate {op.name} (pc={cpu.pc:#x})")


def emulate_guest_store(vcpu, ins: Instruction, guest_mem, shadow) -> int:
    """Emulate a trapped guest store to a write-protected PT page.

    Performs the store in guest-physical memory, tells the shadow MMU to
    invalidate the affected entries, and advances the pc. Returns the
    written guest-physical address.
    """
    cpu = vcpu.cpu
    if ins.op not in (Op.ST, Op.STB):
        raise GuestError(
            f"PT write trap on non-store instruction {ins.op.name} "
            f"at pc={cpu.pc:#x}"
        )
    va = (cpu.regs[ins.ra] + ins.simm12) & 0xFFFFFFFF
    walk = shadow._guest_walk(va, AccessType.WRITE)
    gpa = (walk.gfn << PAGE_SHIFT) | (va & 0xFFF)
    if ins.op is Op.ST:
        guest_mem.write_u32(gpa, cpu.regs[ins.rb])
    else:
        guest_mem.write_u8(gpa, cpu.regs[ins.rb] & 0xFF)
    shadow.handle_guest_pt_write(gpa)
    cpu.pc = (cpu.pc + ins.length) & 0xFFFFFFFF
    # The trapped store retires here (the faulting attempt rolled its
    # increment back before exiting), keeping instret honest vs. a
    # config where the same store runs unintercepted.
    cpu.instret += 1
    return gpa
