"""Cycle-quantum scheduling of multiple VMs on the instruction engine.

The DES scheduler (:mod:`repro.sched`) studies policies at scale; this
module closes the loop on the *functional* side: several real VMs share
one simulated physical core, dispatched in credit-weighted cycle quanta
by the hypervisor. Guests genuinely interleave -- device state, exits,
and memory behaviour all progress a quantum at a time -- so
consolidation effects (weighted progress, idle VMs yielding their
share) are observable on real workloads, not task models.

With ``watchdog_limit`` set, every entry carries its own
:class:`~repro.faults.watchdog.GuestProgressWatchdog`: a VM whose vCPU
stalls is flagged ``HUNG`` and retired from the rotation after one
detection window, so its neighbours keep their shares instead of the
whole run spinning against a dead guest.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.hypervisor import Hypervisor, RunOutcome
from repro.core.vm import VirtualMachine
from repro.faults.watchdog import GuestProgressWatchdog
from repro.util.errors import SchedulerError


@dataclass
class ScheduleReport:
    """What one scheduling run produced."""

    cycles: Dict[str, int] = field(default_factory=dict)
    instructions: Dict[str, int] = field(default_factory=dict)
    outcomes: Dict[str, RunOutcome] = field(default_factory=dict)
    dispatches: Dict[str, int] = field(default_factory=dict)
    finish_order: List[str] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(self.cycles.values())

    def share_of(self, name: str) -> float:
        total = self.total_cycles
        return self.cycles[name] / total if total else 0.0


class _Entry:
    __slots__ = ("vm", "weight", "credits", "done", "outcome",
                 "start_cycles", "start_instret", "watchdog")

    def __init__(self, vm: VirtualMachine, weight: int,
                 watchdog: Optional[GuestProgressWatchdog] = None):
        self.vm = vm
        self.weight = weight
        self.credits = 0.0
        self.done = False
        self.outcome: Optional[RunOutcome] = None
        self.start_cycles = self._time(vm)
        self.start_instret = vm.vcpus[0].cpu.instret
        self.watchdog = watchdog

    @staticmethod
    def _time(vm: VirtualMachine) -> int:
        return vm.vcpus[0].cpu.cycles + vm.stats.vmm_cycles

    def consumed(self) -> int:
        return self._time(self.vm) - self.start_cycles


class VMScheduler:
    """Credit-weighted dispatcher over one hypervisor's VMs.

    Each round, every live VM is refilled proportionally to its weight
    and the VM with the most credits runs one quantum. A VM whose guest
    shuts down leaves the rotation; a VM that reports HALTED with no
    wakeup source is parked (it consumes nothing -- exactly the
    work-conserving behaviour weighted schedulers promise).
    """

    def __init__(self, hypervisor: Hypervisor, quantum_cycles: int = 50_000,
                 watchdog_limit: Optional[int] = None):
        if quantum_cycles <= 0:
            raise SchedulerError("quantum must be positive")
        if watchdog_limit is not None and watchdog_limit <= 0:
            raise SchedulerError("watchdog_limit must be positive")
        self.hv = hypervisor
        self.quantum = quantum_cycles
        self.watchdog_limit = watchdog_limit
        self.metrics = hypervisor.registry.scope("sched.vmsched")
        self._entries: List[_Entry] = []

    def add(self, vm: VirtualMachine, weight: int = 256) -> None:
        if weight <= 0:
            raise SchedulerError("weight must be positive")
        if any(e.vm is vm for e in self._entries):
            raise SchedulerError(f"VM {vm.name} already scheduled")
        watchdog = None
        if self.watchdog_limit is not None:
            # Per-entry watchdog state: one hung VM cannot starve or
            # confuse hang detection for its neighbours.
            watchdog = GuestProgressWatchdog(
                self.watchdog_limit,
                metrics=self.hv.registry.scope(f"faults.watchdog.{vm.name}"),
            )
        self._entries.append(_Entry(vm, weight, watchdog))

    def run(
        self,
        max_total_cycles: Optional[int] = None,
        max_rounds: int = 1_000_000,
    ) -> ScheduleReport:
        """Dispatch until every VM finishes (or budgets run out)."""
        report = ScheduleReport()
        spent = 0
        for _ in range(max_rounds):
            live = [e for e in self._entries if not e.done]
            if not live:
                break
            if max_total_cycles is not None and spent >= max_total_cycles:
                break
            total_weight = sum(e.weight for e in live)
            for entry in live:
                entry.credits += self.quantum * entry.weight / total_weight
            entry = max(live, key=lambda e: e.credits)
            before = entry.consumed()
            outcome = self.hv.run(entry.vm, max_cycles=self.quantum,
                                  watchdog=entry.watchdog)
            used = entry.consumed() - before
            entry.credits -= used
            spent += used
            report.dispatches[entry.vm.name] = (
                report.dispatches.get(entry.vm.name, 0) + 1
            )
            self.hv.registry.counter("sched.dispatches").inc()
            if outcome in (RunOutcome.SHUTDOWN, RunOutcome.HALTED):
                entry.done = True
                entry.outcome = outcome
                report.finish_order.append(entry.vm.name)
            elif outcome is RunOutcome.HUNG:
                # Flagged per-entry: the dead guest leaves the rotation
                # (for recovery elsewhere) and everyone else runs on.
                entry.done = True
                entry.outcome = outcome
                self.metrics.counter("hangs").inc()
        for entry in self._entries:
            name = entry.vm.name
            report.cycles[name] = entry.consumed()
            report.instructions[name] = (
                entry.vm.vcpus[0].cpu.instret - entry.start_instret
            )
            report.outcomes[name] = entry.outcome or RunOutcome.CYCLE_LIMIT
            # Mirror the report into the registry so manifests see the
            # same numbers the ScheduleReport view returns.
            self.metrics.counter(f"cycles.{name}").value = report.cycles[name]
            self.metrics.counter(f"instructions.{name}").value = (
                report.instructions[name]
            )
            self.metrics.counter(f"dispatches.{name}").value = (
                report.dispatches.get(name, 0)
            )
        return report
