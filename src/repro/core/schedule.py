"""Cycle-quantum scheduling of multiple VMs on the instruction engine.

The DES scheduler (:mod:`repro.sched`) studies policies at scale; this
module closes the loop on the *functional* side: several real VMs share
one simulated physical core, dispatched in credit-weighted cycle quanta
by the hypervisor. Guests genuinely interleave -- device state, exits,
and memory behaviour all progress a quantum at a time -- so
consolidation effects (weighted progress, idle VMs yielding their
share) are observable on real workloads, not task models.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.hypervisor import Hypervisor, RunOutcome
from repro.core.vm import VirtualMachine
from repro.util.errors import SchedulerError


@dataclass
class ScheduleReport:
    """What one scheduling run produced."""

    cycles: Dict[str, int] = field(default_factory=dict)
    instructions: Dict[str, int] = field(default_factory=dict)
    outcomes: Dict[str, RunOutcome] = field(default_factory=dict)
    dispatches: Dict[str, int] = field(default_factory=dict)
    finish_order: List[str] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(self.cycles.values())

    def share_of(self, name: str) -> float:
        total = self.total_cycles
        return self.cycles[name] / total if total else 0.0


class _Entry:
    __slots__ = ("vm", "weight", "credits", "done", "outcome",
                 "start_cycles", "start_instret")

    def __init__(self, vm: VirtualMachine, weight: int):
        self.vm = vm
        self.weight = weight
        self.credits = 0.0
        self.done = False
        self.outcome: Optional[RunOutcome] = None
        self.start_cycles = self._time(vm)
        self.start_instret = vm.vcpus[0].cpu.instret

    @staticmethod
    def _time(vm: VirtualMachine) -> int:
        return vm.vcpus[0].cpu.cycles + vm.stats.vmm_cycles

    def consumed(self) -> int:
        return self._time(self.vm) - self.start_cycles


class VMScheduler:
    """Credit-weighted dispatcher over one hypervisor's VMs.

    Each round, every live VM is refilled proportionally to its weight
    and the VM with the most credits runs one quantum. A VM whose guest
    shuts down leaves the rotation; a VM that reports HALTED with no
    wakeup source is parked (it consumes nothing -- exactly the
    work-conserving behaviour weighted schedulers promise).
    """

    def __init__(self, hypervisor: Hypervisor, quantum_cycles: int = 50_000):
        if quantum_cycles <= 0:
            raise SchedulerError("quantum must be positive")
        self.hv = hypervisor
        self.quantum = quantum_cycles
        self._entries: List[_Entry] = []

    def add(self, vm: VirtualMachine, weight: int = 256) -> None:
        if weight <= 0:
            raise SchedulerError("weight must be positive")
        if any(e.vm is vm for e in self._entries):
            raise SchedulerError(f"VM {vm.name} already scheduled")
        self._entries.append(_Entry(vm, weight))

    def run(
        self,
        max_total_cycles: Optional[int] = None,
        max_rounds: int = 1_000_000,
    ) -> ScheduleReport:
        """Dispatch until every VM finishes (or budgets run out)."""
        report = ScheduleReport()
        spent = 0
        for _ in range(max_rounds):
            live = [e for e in self._entries if not e.done]
            if not live:
                break
            if max_total_cycles is not None and spent >= max_total_cycles:
                break
            total_weight = sum(e.weight for e in live)
            for entry in live:
                entry.credits += self.quantum * entry.weight / total_weight
            entry = max(live, key=lambda e: e.credits)
            before = entry.consumed()
            outcome = self.hv.run(entry.vm, max_cycles=self.quantum)
            used = entry.consumed() - before
            entry.credits -= used
            spent += used
            report.dispatches[entry.vm.name] = (
                report.dispatches.get(entry.vm.name, 0) + 1
            )
            if outcome in (RunOutcome.SHUTDOWN, RunOutcome.HALTED):
                entry.done = True
                entry.outcome = outcome
                report.finish_order.append(entry.vm.name)
        for entry in self._entries:
            name = entry.vm.name
            report.cycles[name] = entry.consumed()
            report.instructions[name] = (
                entry.vm.vcpus[0].cpu.instret - entry.start_instret
            )
            report.outcomes[name] = entry.outcome or RunOutcome.CYCLE_LIMIT
        return report
