"""Hypervisor-under-hypervisor: an inner VMM inside an H-mode guest.

The scenario the H-mode extension makes first-class: an L0 hypervisor
hosts an L1 guest under hardware-assisted virtualization with two-stage
paging, and the *software running in that guest* is itself a hypervisor
whose shadow/nested software MMU paths manage an L2 guest.

The simulator models the L1 hypervisor as a :class:`Hypervisor` whose
"physical" memory is the L1 guest's RAM: H-mode preallocation hands the
guest an ascending contiguous run of host frames (asserted by
:func:`guest_ram_window`), so the guest-physical address space is a flat
window of L0 RAM and :class:`AliasedPhysicalMemory` exposes exactly that
window, zero-copy. Every byte the inner VMM or its L2 guest touches is
a byte of the H-mode guest's RAM under the G-stage table, which keeps
L0-level machinery (snapshots, dirty logging, ballooning) truthful
about the nested state.

One caveat is inherent to the aliasing: stores through the inner view
bypass the *outer* memory's write watchers (the decode-cache
invalidation tap). That is fine here because the L1 vCPU does not
execute VISA code concurrently with the inner VMM -- the inner VMM *is*
the model of the L1 guest's software.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.hypervisor import Hypervisor
from repro.core.modes import MMUVirtMode, VirtMode
from repro.core.vm import GuestConfig, VirtualMachine
from repro.mem.costs import CostModel
from repro.mem.physmem import PhysicalMemory
from repro.util.errors import ConfigError, MemoryError_
from repro.util.units import MIB, PAGE_SHIFT, PAGE_SIZE


def guest_ram_window(vm: VirtualMachine) -> Tuple[int, int]:
    """The guest's backing as one host-physical window: ``(base, size)``.

    Requires every gfn mapped and the host frames ascending and
    contiguous -- what preallocation on a fresh hypervisor produces.
    Raises :class:`MemoryError_` otherwise (a ballooned, swapped, or
    shared guest has no flat window to alias).
    """
    mem = vm.guest_mem
    try:
        hfns = [mem.map[gfn] for gfn in range(mem.num_pages)]
    except KeyError as exc:
        raise MemoryError_(
            f"guest {vm.name!r} gfn {exc.args[0]} is unbacked; "
            f"nested hosting needs fully preallocated RAM"
        ) from None
    base = hfns[0]
    for i, hfn in enumerate(hfns):
        if hfn != base + i:
            raise MemoryError_(
                f"guest {vm.name!r} RAM is not physically contiguous at "
                f"gfn {i} (hfn {hfn}, expected {base + i})"
            )
    return base << PAGE_SHIFT, mem.num_pages << PAGE_SHIFT


class AliasedPhysicalMemory(PhysicalMemory):
    """A zero-copy :class:`PhysicalMemory` view of another's window.

    Reads and writes go straight to ``backing``'s bytes; there is no
    second copy to keep coherent. Addresses are window-relative, so a
    hypervisor built over the view sees an ordinary flat RAM starting
    at zero.
    """

    def __init__(self, backing: PhysicalMemory, base_pa: int, nbytes: int):
        if base_pa % PAGE_SIZE:
            raise MemoryError_(f"window base {base_pa:#x} not page aligned")
        backing._check(base_pa, nbytes)
        super().__init__(nbytes)
        self.backing = backing
        self.base_pa = base_pa
        self._data = memoryview(backing._data)[base_pa : base_pa + nbytes]


@dataclass
class NestedHost:
    """An L0 hypervisor, its H-mode L1 guest, and the inner VMM."""

    outer: Hypervisor
    l1_vm: VirtualMachine
    inner: Hypervisor
    #: The L1 guest's RAM as a host-physical window (base, size).
    window: Tuple[int, int]


def build_nested_host(
    outer_memory_bytes: int = 64 * MIB,
    l1_memory_bytes: int = 24 * MIB,
    costs: Optional[CostModel] = None,
    registry=None,
    l1_name: str = "l1",
) -> NestedHost:
    """Stand up the hypervisor-under-hypervisor stack.

    The L0 hypervisor hosts one H-mode guest (``l1_name``) with fully
    preallocated RAM; the returned inner :class:`Hypervisor` runs over
    that RAM and is ready for ``create_vm`` of L2 guests using the
    software shadow/nested MMU paths.
    """
    outer = Hypervisor(
        memory_bytes=outer_memory_bytes, costs=costs, registry=registry
    )
    l1_vm = outer.create_vm(
        GuestConfig(
            name=l1_name,
            memory_bytes=l1_memory_bytes,
            virt_mode=VirtMode.HW_ASSIST,
            mmu_mode=MMUVirtMode.HMODE,
            prealloc=True,
        )
    )
    base, size = guest_ram_window(l1_vm)
    inner_pm = AliasedPhysicalMemory(outer.physmem, base, size)
    inner = Hypervisor(costs=costs, physmem=inner_pm)
    return NestedHost(outer=outer, l1_vm=l1_vm, inner=inner,
                      window=(base, size))


def create_l2_vm(
    host: NestedHost,
    virt_mode: VirtMode,
    mmu_mode: MMUVirtMode,
    memory_bytes: int = 16 * MIB,
    name: str = "l2",
) -> VirtualMachine:
    """An L2 guest under the inner VMM's software MMU path.

    The inner hypervisor must not itself use H-mode -- the point of the
    scenario is the *software* shadow/nested paths running inside an
    H-mode guest (and recursion would model hardware the L1 "machine"
    does not expose to its guests).
    """
    if mmu_mode is MMUVirtMode.HMODE:
        raise ConfigError(
            "the inner hypervisor has no H-mode hardware; "
            "use shadow or nested for L2 guests"
        )
    return host.inner.create_vm(
        GuestConfig(
            name=name,
            memory_bytes=memory_bytes,
            virt_mode=virt_mode,
            mmu_mode=mmu_mode,
        )
    )
