"""Exit and runtime accounting -- the raw data behind experiment E1."""

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.cpu.exits import ExitReason


@dataclass
class ExitStats:
    """Per-reason exit counts and the cycles the VMM spent on them."""

    counts: Counter = field(default_factory=Counter)
    cycles: Counter = field(default_factory=Counter)

    def record(self, reason: ExitReason, cycles: int, detail: str = "") -> None:
        key = f"{reason.value}:{detail}" if detail else reason.value
        self.counts[key] += 1
        self.cycles[key] += cycles

    @property
    def total_exits(self) -> int:
        return sum(self.counts.values())

    @property
    def total_cycles(self) -> int:
        return sum(self.cycles.values())

    def by_reason(self) -> Dict[str, int]:
        return dict(self.counts)

    def merge(self, other: "ExitStats") -> None:
        self.counts.update(other.counts)
        self.cycles.update(other.cycles)


@dataclass
class VMStats:
    """Whole-VM accounting."""

    guest_instructions: int = 0
    guest_cycles: int = 0  # cycles spent executing guest code
    vmm_cycles: int = 0  # cycles spent in the VMM (exits, fills, emulation)
    world_switches: int = 0
    hypercalls: int = 0
    reflected_traps: int = 0
    injected_irqs: int = 0
    shadow_fills: int = 0
    shadow_pt_writes: int = 0
    ept_violations: int = 0
    bt_translated_instructions: int = 0
    bt_callouts: int = 0
    bt_block_hits: int = 0
    bt_block_misses: int = 0
    bt_chained: int = 0

    @property
    def total_cycles(self) -> int:
        return self.guest_cycles + self.vmm_cycles

    @property
    def overhead_ratio(self) -> float:
        """VMM cycles per guest cycle (0 = no virtualization tax)."""
        if self.guest_cycles == 0:
            return 0.0
        return self.vmm_cycles / self.guest_cycles
