"""Exit and runtime accounting -- the raw data behind experiment E1.

Since the ``repro.obs`` refactor these structs no longer own their
storage: every count lives in the run's :class:`MetricsRegistry` under
the VM's scope (``vm.<name>.exits.<reason>``, ``vm.<name>.vmm_cycles``,
...). :class:`ExitStats` and :class:`VMStats` are thin views that keep
the original public API -- ``record``, ``counts``/``cycles`` Counters,
plain ``int`` attributes -- byte-for-byte compatible while making the
same numbers visible to cross-layer tooling and run manifests.
"""

from collections import Counter
from typing import Dict, Optional, Tuple

from repro.cpu.exits import ExitReason
from repro.obs.registry import MetricsRegistry, MetricsScope, counter_attr
from repro.obs.registry import Counter as ObsCounter

_EXITS = "exits."
_EXIT_CYCLES = "exit_cycles."


def _private_scope() -> MetricsScope:
    """Standalone stats (no hypervisor) get their own tiny registry."""
    return MetricsRegistry().scope("vm")


class ExitStats:
    """Per-reason exit counts and the cycles the VMM spent on them."""

    def __init__(self, metrics: Optional[MetricsScope] = None):
        self.metrics = metrics if metrics is not None else _private_scope()
        # Hot path: one dict hit per recorded exit, not two registry walks.
        self._pairs: Dict[str, Tuple[ObsCounter, ObsCounter]] = {}

    def _pair(self, key: str) -> Tuple[ObsCounter, ObsCounter]:
        pair = self._pairs.get(key)
        if pair is None:
            pair = (self.metrics.counter(_EXITS + key),
                    self.metrics.counter(_EXIT_CYCLES + key))
            self._pairs[key] = pair
        return pair

    def record(self, reason: ExitReason, cycles: int, detail: str = "") -> None:
        key = f"{reason.value}:{detail}" if detail else reason.value
        count, spent = self._pair(key)
        count.value += 1
        spent.value += cycles

    @property
    def counts(self) -> Counter:
        return Counter(self.metrics.values(_EXITS))

    @property
    def cycles(self) -> Counter:
        return Counter(self.metrics.values(_EXIT_CYCLES))

    @property
    def total_exits(self) -> int:
        return sum(self.counts.values())

    @property
    def total_cycles(self) -> int:
        return sum(self.cycles.values())

    def by_reason(self) -> Dict[str, int]:
        return dict(self.counts)

    def merge(self, other: "ExitStats") -> None:
        for key, value in other.counts.items():
            self._pair(key)[0].value += value
        for key, value in other.cycles.items():
            self._pair(key)[1].value += value


class VMStats:
    """Whole-VM accounting (registry-backed ``int`` attributes)."""

    guest_instructions = counter_attr()
    guest_cycles = counter_attr()  # cycles spent executing guest code
    vmm_cycles = counter_attr()  # cycles spent in the VMM (exits, fills, emulation)
    world_switches = counter_attr()
    hypercalls = counter_attr()
    reflected_traps = counter_attr()
    injected_irqs = counter_attr()
    shadow_fills = counter_attr()
    shadow_pt_writes = counter_attr()
    ept_violations = counter_attr()
    bt_translated_instructions = counter_attr()
    bt_callouts = counter_attr()
    bt_block_hits = counter_attr()
    bt_block_misses = counter_attr()
    bt_chained = counter_attr()

    def __init__(self, metrics: Optional[MetricsScope] = None):
        self.metrics = metrics if metrics is not None else _private_scope()

    @property
    def total_cycles(self) -> int:
        return self.guest_cycles + self.vmm_cycles

    @property
    def overhead_ratio(self) -> float:
        """VMM cycles per guest cycle (0 = no virtualization tax)."""
        if self.guest_cycles == 0:
            return 0.0
        return self.vmm_cycles / self.guest_cycles
