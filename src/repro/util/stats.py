"""Summary statistics used by experiment harnesses and schedulers."""

import math
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Sequence


def percentile(values: Sequence[float], p: float) -> float:
    """Return the p-th percentile (0..100) by linear interpolation.

    Matches numpy's default ("linear") method so results line up with any
    external analysis a user does on exported data.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile {p} out of range [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def jain_fairness(shares: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n maximally unfair."""
    if not shares:
        raise ValueError("fairness of empty sequence")
    total = sum(shares)
    sq = sum(s * s for s in shares)
    if sq == 0:
        return 1.0  # everyone got exactly zero: degenerate but "fair"
    return (total * total) / (len(shares) * sq)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; standard for normalized-overhead summaries."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def of(cls, values: Iterable[float]) -> "Summary":
        data: List[float] = [float(v) for v in values]
        if not data:
            raise ValueError("summary of empty sequence")
        n = len(data)
        mean = sum(data) / n
        var = sum((v - mean) ** 2 for v in data) / n
        return cls(
            count=n,
            mean=mean,
            stdev=math.sqrt(var),
            minimum=min(data),
            p50=percentile(data, 50),
            p95=percentile(data, 95),
            p99=percentile(data, 99),
            maximum=max(data),
        )

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "Summary":
        """Alias of :meth:`of`; reads better at manifest call sites."""
        return cls.of(values)

    def to_dict(self) -> Dict[str, float]:
        """Plain JSON-serializable mapping (field name -> value)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "Summary":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


class RunningStats:
    """Welford accumulator: mean/variance without storing the sample.

    Used on hot paths (per-instruction, per-event) where materializing a
    list would dominate memory.
    """

    def __init__(self):
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._m2 / self._n

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._min

    @property
    def maximum(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._max

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel Welford)."""
        if other._n == 0:
            return
        if self._n == 0:
            self._n, self._mean, self._m2 = other._n, other._mean, other._m2
            self._min, self._max = other._min, other._max
            return
        n = self._n + other._n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._n * other._n / n
        self._mean += delta * other._n / n
        self._n = n
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
