"""Exception hierarchy for pyvisor.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. Subsystems raise their own subclass;
``raise ... from`` is used at subsystem boundaries to preserve causes.
"""


class ReproError(Exception):
    """Base class for all pyvisor errors."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration supplied by the caller."""


class GuestError(ReproError):
    """The guest performed an unrecoverable action (triple fault etc.)."""


class MemoryError_(ReproError):
    """Physical or virtual memory subsystem failure (OOM, bad mapping).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`, which signals interpreter heap exhaustion and
    must stay catchable separately.
    """


class DeviceError(ReproError):
    """A device model rejected an operation (bad port, full ring, ...)."""


class MigrationError(ReproError):
    """Live migration could not make progress or was misconfigured."""


class SchedulerError(ReproError):
    """Scheduler invariant violation or invalid scheduling parameter."""


class LinkError(ReproError):
    """A network link dropped, stalled, or partitioned mid-transfer.

    Transient by design: callers with a retry budget (live migration,
    the load balancer) catch this and back off; it only escalates to
    :class:`MigrationError` (``raise ... from``) when the budget is
    exhausted.
    """


class FaultError(ReproError):
    """An injected fault fired (raised by the fault-injection harness).

    Only the fault-injection framework raises this directly; subsystems
    that surface an injected failure to their callers re-wrap it in
    their own error class with ``raise ... from``.
    """
