"""Common infrastructure shared by every pyvisor subsystem.

This package is dependency-free (standard library only) and provides:

* :mod:`repro.util.errors` -- the exception hierarchy.
* :mod:`repro.util.units` -- byte-size and cycle-count helpers.
* :mod:`repro.util.rng` -- the deterministic random number generator that
  every stochastic component must use (no ``random`` / ``numpy.random``
  module-level state anywhere in measurement paths).
* :mod:`repro.util.stats` -- summary statistics, percentiles, Jain's
  fairness index, and running accumulators.
* :mod:`repro.util.eventlog` -- a bounded structured trace buffer.
* :mod:`repro.util.table` -- a plain-text table renderer used by the
  benchmark harness to print paper-style tables.
"""

from repro.util.errors import (
    ReproError,
    ConfigError,
    GuestError,
    MemoryError_,
    DeviceError,
    MigrationError,
    SchedulerError,
)
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    PAGE_SIZE,
    PAGE_SHIFT,
    pages_to_bytes,
    bytes_to_pages,
    fmt_bytes,
    fmt_cycles,
)
from repro.util.rng import DeterministicRNG
from repro.util.stats import (
    Summary,
    RunningStats,
    percentile,
    jain_fairness,
    geomean,
)
from repro.util.eventlog import EventLog, Event
from repro.util.table import Table
from repro.util.chart import ascii_chart

__all__ = [
    "ReproError",
    "ConfigError",
    "GuestError",
    "MemoryError_",
    "DeviceError",
    "MigrationError",
    "SchedulerError",
    "KIB",
    "MIB",
    "GIB",
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "pages_to_bytes",
    "bytes_to_pages",
    "fmt_bytes",
    "fmt_cycles",
    "DeterministicRNG",
    "Summary",
    "RunningStats",
    "percentile",
    "jain_fairness",
    "geomean",
    "EventLog",
    "Event",
    "Table",
    "ascii_chart",
]
