"""Plain-text table renderer for paper-style output.

The benchmark harness prints each regenerated table/figure as an aligned
text table so ``pytest benchmarks/ --benchmark-only -s`` output can be
compared side by side with the paper.
"""

from typing import Any, List, Optional, Sequence


class Table:
    """Accumulate rows, then render aligned columns."""

    def __init__(self, title: str, columns: Sequence[str]):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self._rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append one row; cell count must match the header."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append([_fmt(c) for c in cells])

    @property
    def rows(self) -> List[List[str]]:
        return [list(r) for r in self._rows]

    def render(self) -> str:
        """Return the table as an aligned multi-line string."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self._rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell: Any, float_digits: Optional[int] = 3) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1000:
            return f"{cell:,.0f}"
        if magnitude >= 1:
            return f"{cell:.{float_digits}g}" if float_digits else str(cell)
        return f"{cell:.3g}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)
