"""Bounded structured event trace.

Subsystems append :class:`Event` records (timestamp, category, message,
payload); tests and debugging tools filter them. The buffer is bounded so
long simulations cannot exhaust memory; when full, the oldest events are
dropped and ``dropped`` counts them.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, Optional


@dataclass(frozen=True)
class Event:
    """One trace record."""

    time: int
    category: str
    message: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = f" {self.payload}" if self.payload else ""
        return f"[{self.time}] {self.category}: {self.message}{extra}"


class EventLog:
    """Append-only bounded trace buffer."""

    def __init__(self, capacity: int = 100_000, enabled: bool = True):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._events: Deque[Event] = deque(maxlen=capacity)
        self.enabled = enabled
        self.dropped = 0
        self.total = 0

    def emit(self, time: int, category: str, message: str, **payload: Any) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        self.total += 1
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(Event(time, category, message, payload))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def filter(self, category: Optional[str] = None, since: int = 0) -> Iterator[Event]:
        """Yield retained events matching the category at/after ``since``."""
        for ev in self._events:
            if ev.time < since:
                continue
            if category is not None and ev.category != category:
                continue
            yield ev

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self.total = 0
