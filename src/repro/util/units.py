"""Byte-size and cycle-count units and formatting helpers.

The whole platform uses a 4 KiB page; changing :data:`PAGE_SIZE` is not
supported because guest page-table formats encode the 10/10/12 split of
32-bit virtual addresses (see :mod:`repro.mem.paging`).
"""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Size of one physical/virtual page in bytes.
PAGE_SIZE = 4 * KIB
#: log2(PAGE_SIZE); offset width of a virtual address.
PAGE_SHIFT = 12

assert 1 << PAGE_SHIFT == PAGE_SIZE


def pages_to_bytes(pages: int) -> int:
    """Return the byte count covered by ``pages`` whole pages."""
    return pages << PAGE_SHIFT


def bytes_to_pages(nbytes: int) -> int:
    """Return the number of pages needed to hold ``nbytes`` (rounds up)."""
    return (nbytes + PAGE_SIZE - 1) >> PAGE_SHIFT


def fmt_bytes(nbytes: int) -> str:
    """Render a byte count with a binary suffix, e.g. ``"512.0 MiB"``."""
    value = float(nbytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_cycles(cycles: int) -> str:
    """Render a cycle count compactly, e.g. ``"1.2 Mcyc"``."""
    value = float(cycles)
    for suffix in ("cyc", "Kcyc", "Mcyc", "Gcyc"):
        if abs(value) < 1000.0 or suffix == "Gcyc":
            if suffix == "cyc":
                return f"{int(value)} cyc"
            return f"{value:.1f} {suffix}"
        value /= 1000.0
    raise AssertionError("unreachable")
