"""Deterministic random number generation.

Every stochastic decision in pyvisor (workload address streams, device
latencies, scheduler tie-breaking, page contents for the sharing scanner)
draws from a :class:`DeterministicRNG` that the caller seeds explicitly.
Results are therefore a pure function of (configuration, seed), which is
what lets every table in EXPERIMENTS.md regenerate bit-identically.

The generator is xorshift64* -- tiny, fast in pure Python, and with far
better statistical behaviour than a raw LCG. It is *not* cryptographic
and must never be used for anything security-sensitive.
"""

from typing import List, Sequence, TypeVar

_T = TypeVar("_T")

_MASK64 = (1 << 64) - 1
_MULT = 0x2545F4914F6CDD1D


class DeterministicRNG:
    """Seedable xorshift64* generator with a small convenience API."""

    def __init__(self, seed: int = 1):
        if seed == 0:
            # xorshift has an all-zero fixed point; remap like SplitMix does.
            seed = 0x9E3779B97F4A7C15
        self._state = seed & _MASK64

    def fork(self, salt: int) -> "DeterministicRNG":
        """Return an independent generator derived from this one.

        Forking (rather than sharing) keeps component streams decoupled:
        adding a draw in one subsystem does not perturb another's stream.
        The (state, salt) pair is passed through the SplitMix64 finalizer
        so that nearby states or salts -- e.g. plan seeds 42 and 43 --
        still yield unrelated child streams.
        """
        z = (self._state ^ ((salt * _MULT) & _MASK64)) & _MASK64
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        z ^= z >> 31
        return DeterministicRNG(z)

    def fork_seed(self, salt: int) -> int:
        """A derived 64-bit seed for a child component.

        Components that take an integer seed (fault plans, shard
        states) rather than an RNG instance use this to derive
        decoupled per-component seeds from one root: it is the state a
        :meth:`fork` child would start from.
        """
        return self.fork(salt)._state

    def next_u64(self) -> int:
        """Return the next raw 64-bit value."""
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * _MULT) & _MASK64

    def randint(self, lo: int, hi: int) -> int:
        """Return a uniform integer in the inclusive range [lo, hi]."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        return lo + self.next_u64() % span

    def random(self) -> float:
        """Return a uniform float in [0, 1)."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def choice(self, seq: Sequence[_T]) -> _T:
        """Return a uniformly chosen element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def shuffle(self, items: List[_T]) -> None:
        """Fisher-Yates shuffle in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def sample_zipf(self, n: int, alpha: float = 1.0) -> int:
        """Return an index in [0, n) with a Zipf(alpha) popularity skew.

        Used by workload generators to produce realistic hot/cold page
        access patterns. Implemented by inverse-CDF over the harmonic
        weights; O(n) set-up cost is avoided by rejection sampling for
        alpha == 1 and small n is handled directly.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if n == 1:
            return 0
        # Rejection sampling (Devroye) works for alpha > 0 generally but
        # is fiddly; for simulator purposes a cached-CDF approach is fine.
        cdf = self._zipf_cdf(n, alpha)
        u = self.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # A tiny per-instance cache: workloads call sample_zipf in a loop with
    # constant (n, alpha), and recomputing the CDF per draw would be O(n)
    # per sample.
    def _zipf_cdf(self, n: int, alpha: float) -> List[float]:
        key = (n, alpha)
        cache = getattr(self, "_zipf_cache", None)
        if cache is None:
            cache = {}
            self._zipf_cache = cache
        cdf = cache.get(key)
        if cdf is None:
            weights = [1.0 / (i + 1) ** alpha for i in range(n)]
            total = sum(weights)
            acc = 0.0
            cdf = []
            for w in weights:
                acc += w / total
                cdf.append(acc)
            cdf[-1] = 1.0
            cache[key] = cdf
        return cdf

    def expovariate(self, rate: float) -> float:
        """Return an exponential deviate with the given rate (1/mean)."""
        import math

        if rate <= 0:
            raise ValueError("rate must be positive")
        u = 1.0 - self.random()  # avoid log(0)
        return -math.log(u) / rate
