"""ASCII line charts for figure-style experiment output.

The paper's *figures* (E3, E6, E8) deserve figure-shaped output, not
just tables: the bench harness renders each curve family as an ASCII
chart so the knee/crossover/blow-up is visible in test logs.
"""

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: Markers assigned to series in insertion order.
MARKERS = "*o+x#%@&"

Point = Tuple[float, float]


def ascii_chart(
    series: Dict[str, Sequence[Point]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Render point series onto a character grid.

    Each series gets a marker from :data:`MARKERS`; the legend maps them
    back. Log scales reject non-positive coordinates loudly rather than
    silently dropping points.
    """
    if not series:
        raise ValueError("ascii_chart needs at least one series")
    if width < 16 or height < 4:
        raise ValueError("chart too small to be legible")

    def tx(v: float) -> float:
        if log_x:
            if v <= 0:
                raise ValueError(f"log x-axis cannot place {v}")
            return math.log10(v)
        return v

    def ty(v: float) -> float:
        if log_y:
            if v <= 0:
                raise ValueError(f"log y-axis cannot place {v}")
            return math.log10(v)
        return v

    points = [(tx(x), ty(y)) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("ascii_chart needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    legend = []
    for index, (name, pts) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append(f"{marker} = {name}")
        for x, y in pts:
            place(tx(x), ty(y), marker)

    def fmt(v: float, log: bool) -> str:
        value = 10 ** v if log else v
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.0f}"
        return f"{value:.2g}"

    gutter = max(len(fmt(y_hi, log_y)), len(fmt(y_lo, log_y))) + 1
    lines: List[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"[y: {y_label}]")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = fmt(y_hi, log_y)
        elif row_index == height - 1:
            label = fmt(y_lo, log_y)
        elif row_index == height // 2:
            label = fmt((y_hi + y_lo) / 2, log_y)
        else:
            label = ""
        lines.append(label.rjust(gutter) + " |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)
    left = fmt(x_lo, log_x)
    right = fmt(x_hi, log_x)
    mid = fmt((x_lo + x_hi) / 2, log_x)
    axis = left + mid.center(width - len(left) - len(right)) + right
    lines.append(" " * gutter + "  " + axis)
    if x_label:
        lines.append(" " * gutter + "  " + f"[x: {x_label}]".center(width))
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)
