"""Per-run JSON manifest built from a registry snapshot.

The bench harness gives every experiment run one registry; at the end it
snapshots the registry into a manifest that groups metric names by
subsystem. ``register_baseline`` pre-registers one canonical counter per
subsystem so the manifest always declares the full telemetry surface --
an experiment that never migrates still reports ``migration.*`` at zero
rather than omitting the subsystem, which keeps downstream regression
tooling schema-stable across experiments.
"""

from typing import Dict, List, Optional

from repro.obs.registry import MetricsRegistry

__all__ = [
    "MANIFEST_SCHEMA",
    "SUBSYSTEMS",
    "subsystem_of",
    "register_baseline",
    "build_manifest",
]

MANIFEST_SCHEMA = "pyvisor.metrics.manifest/1"

#: Canonical subsystem groups, in the order the manifest reports them.
SUBSYSTEMS = (
    "core", "devices", "sched", "migration", "overcommit", "faults",
    "fuzz", "cluster", "sim", "trace", "host",
)

#: One always-present counter per subsystem (incremented by the layer
#: that owns it, or left at zero when the run never touches that layer).
_BASELINE_COUNTERS = (
    "core.vms_created",
    "devices.attached",
    "sched.dispatches",
    "migration.migrations",
    "overcommit.operations",
    "faults.injected.total",
)


def subsystem_of(name: str) -> str:
    """Map a dotted metric name to its subsystem group.

    Per-VM metrics live under ``vm.<name>.*``: device counters nest as
    ``vm.<name>.dev.<device>.*`` and everything else on the VM (exits,
    VMM cycles) belongs to the core engine.
    """
    if name.startswith("vm."):
        return "devices" if ".dev." in name else "core"
    head = name.split(".", 1)[0]
    if head == "dev":
        return "devices"
    if head == "span":
        return "trace"
    return head if head in SUBSYSTEMS else "other"


def register_baseline(registry: MetricsRegistry) -> MetricsRegistry:
    """Pre-register the schema-stable baseline counters; returns registry."""
    for name in _BASELINE_COUNTERS:
        registry.counter(name)
    return registry


def build_manifest(registry: MetricsRegistry,
                   experiment: Optional[str] = None,
                   extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Snapshot ``registry`` into a JSON-serializable run manifest."""
    snap = registry.snapshot()
    groups: Dict[str, List[str]] = {}
    for name in snap["metrics"]:
        groups.setdefault(subsystem_of(name), []).append(name)
    ordered = {s: sorted(groups[s]) for s in SUBSYSTEMS if s in groups}
    for subsystem in sorted(groups):
        if subsystem not in ordered:
            ordered[subsystem] = sorted(groups[subsystem])
    manifest: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "experiment": experiment,
        "timebase": snap["timebase"],
        "time": snap["time"],
        "subsystems": ordered,
        "metrics": snap["metrics"],
    }
    if extra:
        manifest["extra"] = extra
    return manifest
