"""Per-run JSON manifest built from a registry snapshot.

The bench harness gives every experiment run one registry; at the end it
snapshots the registry into a manifest that groups metric names by
subsystem. ``register_baseline`` pre-registers one canonical counter per
subsystem so the manifest always declares the full telemetry surface --
an experiment that never migrates still reports ``migration.*`` at zero
rather than omitting the subsystem, which keeps downstream regression
tooling schema-stable across experiments.

Sharded runs produce one *partial* manifest per shard (built with
``samples=True`` so histograms carry raw values) and reduce them with
:func:`merge_manifests` -- an associative merge (counters add, gauges
take the maximum, histogram samples concatenate) whose output depends
only on the operand order, never on worker scheduling.
:func:`finalize_manifest` then drops the raw samples, and
:func:`manifest_bytes` serializes canonically so two runs can be
compared byte-for-byte.
"""

import json
from typing import Dict, List, Optional, Sequence

from repro.obs.registry import MetricsRegistry
from repro.util.errors import ConfigError
from repro.util.stats import Summary

__all__ = [
    "MANIFEST_SCHEMA",
    "SUBSYSTEMS",
    "subsystem_of",
    "register_baseline",
    "build_manifest",
    "merge_manifests",
    "finalize_manifest",
    "manifest_bytes",
]

MANIFEST_SCHEMA = "pyvisor.metrics.manifest/1"

#: Canonical subsystem groups, in the order the manifest reports them.
SUBSYSTEMS = (
    "core", "devices", "sched", "migration", "overcommit", "faults",
    "fuzz", "cluster", "sim", "trace", "host",
)

#: One always-present counter per subsystem (incremented by the layer
#: that owns it, or left at zero when the run never touches that layer).
_BASELINE_COUNTERS = (
    "core.vms_created",
    "devices.attached",
    "sched.dispatches",
    "migration.migrations",
    "overcommit.operations",
    "faults.injected.total",
)


def subsystem_of(name: str) -> str:
    """Map a dotted metric name to its subsystem group.

    Per-VM metrics live under ``vm.<name>.*``: device counters nest as
    ``vm.<name>.dev.<device>.*`` and everything else on the VM (exits,
    VMM cycles) belongs to the core engine.
    """
    if name.startswith("vm."):
        return "devices" if ".dev." in name else "core"
    head = name.split(".", 1)[0]
    if head == "dev":
        return "devices"
    if head == "span":
        return "trace"
    return head if head in SUBSYSTEMS else "other"


def register_baseline(registry: MetricsRegistry) -> MetricsRegistry:
    """Pre-register the schema-stable baseline counters; returns registry."""
    for name in _BASELINE_COUNTERS:
        registry.counter(name)
    return registry


def _group_subsystems(names) -> Dict[str, List[str]]:
    groups: Dict[str, List[str]] = {}
    for name in names:
        groups.setdefault(subsystem_of(name), []).append(name)
    ordered = {s: sorted(groups[s]) for s in SUBSYSTEMS if s in groups}
    for subsystem in sorted(groups):
        if subsystem not in ordered:
            ordered[subsystem] = sorted(groups[subsystem])
    return ordered


def build_manifest(registry: MetricsRegistry,
                   experiment: Optional[str] = None,
                   extra: Optional[Dict[str, object]] = None,
                   samples: bool = False) -> Dict[str, object]:
    """Snapshot ``registry`` into a JSON-serializable run manifest.

    ``samples=True`` produces a *partial* manifest whose histograms
    carry raw values, the mergeable form shards hand to
    :func:`merge_manifests`.
    """
    snap = registry.snapshot(samples=samples)
    manifest: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "experiment": experiment,
        "timebase": snap["timebase"],
        "time": snap["time"],
        "subsystems": _group_subsystems(snap["metrics"]),
        "metrics": snap["metrics"],
    }
    if extra:
        manifest["extra"] = extra
    return manifest


# -- the shard reduce step --------------------------------------------------


def _merge_histograms(name: str, a: Dict[str, object],
                      b: Dict[str, object]) -> Dict[str, object]:
    if "values" not in a or "values" not in b:
        raise ConfigError(
            f"histogram {name!r} collides across manifests but lacks raw "
            "samples; build partial manifests with samples=True"
        )
    values = list(a["values"]) + list(b["values"])
    times = [t for t in (a["last_time"], b["last_time"]) if t is not None]
    return {
        "type": "histogram",
        "count": len(values),
        "last_time": max(times) if times else None,
        "summary": Summary.of(values).to_dict() if values else None,
        "values": values,
    }


def _merge_metric(name: str, a: Dict[str, object],
                  b: Dict[str, object]) -> Dict[str, object]:
    if a["type"] != b["type"]:
        raise ConfigError(
            f"metric {name!r} is a {a['type']} in one manifest and a "
            f"{b['type']} in another"
        )
    if a["type"] == "counter":
        return {"type": "counter", "value": a["value"] + b["value"]}
    if a["type"] == "gauge":
        # Max is the one associative, order-free reduction that needs no
        # extra state. Shards namespace their gauges (cluster.shard.*),
        # so a genuine collision is an aggregate level where max is the
        # conservative answer.
        return {"type": "gauge", "value": max(a["value"], b["value"])}
    return _merge_histograms(name, a, b)


def _merge_two(a: Dict[str, object], b: Dict[str, object]) -> Dict[str, object]:
    for manifest in (a, b):
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise ConfigError(
                f"cannot merge manifest with schema "
                f"{manifest.get('schema')!r}; this build speaks "
                f"{MANIFEST_SCHEMA!r}"
            )
    if a["timebase"] != b["timebase"]:
        raise ConfigError(
            f"cannot merge manifests with timebases {a['timebase']!r} "
            f"and {b['timebase']!r}"
        )
    experiments = {m["experiment"] for m in (a, b)} - {None}
    if len(experiments) > 1:
        raise ConfigError(
            f"cannot merge manifests from different experiments: "
            f"{sorted(experiments)}"
        )
    metrics: Dict[str, Dict[str, object]] = {}
    names = sorted(set(a["metrics"]) | set(b["metrics"]))
    for name in names:
        in_a, in_b = a["metrics"].get(name), b["metrics"].get(name)
        if in_a is not None and in_b is not None:
            metrics[name] = _merge_metric(name, in_a, in_b)
        else:
            metrics[name] = dict(in_a if in_a is not None else in_b)
    merged: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "experiment": next(iter(experiments)) if experiments else None,
        "timebase": a["timebase"],
        "time": max(a["time"], b["time"]),
        "subsystems": _group_subsystems(names),
        "metrics": metrics,
    }
    extras = [m["extra"] for m in (a, b) if "extra" in m]
    if extras:
        combined: Dict[str, object] = {}
        for extra in extras:
            overlap = combined.keys() & extra.keys()
            if overlap:
                raise ConfigError(
                    f"manifest extra keys collide on merge: {sorted(overlap)}"
                )
            combined.update(extra)
        merged["extra"] = {k: combined[k] for k in sorted(combined)}
    return merged


def merge_manifests(manifests: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Reduce per-shard partial manifests into one run manifest.

    Counters add, gauges take the maximum, histograms concatenate their
    raw samples (and re-summarize); ``time`` is the maximum of the
    operands. The merge is associative -- ``merge([a, merge([b, c])])``
    equals ``merge([merge([a, b]), c])`` -- so any reduction tree over
    a fixed operand order yields identical bytes. Manifests with a
    different schema string, timebase, or experiment are rejected.
    """
    if not manifests:
        raise ConfigError("nothing to merge")
    merged = manifests[0]
    if merged.get("schema") != MANIFEST_SCHEMA:
        raise ConfigError(
            f"cannot merge manifest with schema {merged.get('schema')!r}; "
            f"this build speaks {MANIFEST_SCHEMA!r}"
        )
    for other in manifests[1:]:
        merged = _merge_two(merged, other)
    if len(manifests) == 1:
        merged = _merge_two(merged, merged_identity(merged))
    return merged


def merged_identity(manifest: Dict[str, object]) -> Dict[str, object]:
    """The merge identity for ``manifest``: same shape, no metrics."""
    return {
        "schema": MANIFEST_SCHEMA,
        "experiment": manifest.get("experiment"),
        "timebase": manifest["timebase"],
        "time": manifest["time"],
        "subsystems": {},
        "metrics": {},
    }


def finalize_manifest(manifest: Dict[str, object]) -> Dict[str, object]:
    """Strip raw histogram samples from a merged manifest.

    Partial manifests carry samples so the reduce step is exact; the
    published manifest reports only the summaries.
    """
    final = dict(manifest)
    final["metrics"] = {
        name: {k: v for k, v in snap.items() if k != "values"}
        for name, snap in manifest["metrics"].items()
    }
    return final


def manifest_bytes(manifest: Dict[str, object]) -> bytes:
    """Canonical serialization for byte-for-byte comparison."""
    return (json.dumps(manifest, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")
