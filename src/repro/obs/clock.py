"""Timebase abstraction for metric stamping.

pyvisor has two execution worlds with incompatible notions of time: the
functional hypervisor counts *cycles* (``cpu.cycles`` plus VMM overhead)
while the discrete-event side runs on :class:`repro.sim.kernel.Simulator`
*microseconds*. A :class:`Clock` names its timebase explicitly so every
registry snapshot and span carries a declared unit instead of an ambiguous
integer.
"""

from typing import Callable

__all__ = ["Clock", "ManualClock", "CycleClock", "SimClock"]


class Clock:
    """A monotonic time source with a declared unit.

    Subclasses set :attr:`timebase` (a short unit string such as
    ``"cycles"`` or ``"us"``) and implement :meth:`now`.
    """

    timebase: str = "ticks"

    def now(self) -> int:
        raise NotImplementedError


class ManualClock(Clock):
    """Explicitly advanced clock; the default when no world is attached."""

    def __init__(self, timebase: str = "ticks", start: int = 0):
        self.timebase = timebase
        self._now = start

    def now(self) -> int:
        return self._now

    def advance(self, ticks: int = 1) -> None:
        if ticks < 0:
            raise ValueError("clocks do not run backwards")
        self._now += ticks

    def set(self, now: int) -> None:
        if now < self._now:
            raise ValueError("clocks do not run backwards")
        self._now = now


class CycleClock(Clock):
    """Cycle-time clock for the instruction engine.

    ``source`` is any zero-argument callable returning the current cycle
    count -- typically ``lambda: vcpu.cpu.cycles + vm.stats.vmm_cycles``
    or a hypervisor's virtual-time accessor.
    """

    timebase = "cycles"

    def __init__(self, source: Callable[[], int]):
        self._source = source

    def now(self) -> int:
        return int(self._source())


class SimClock(Clock):
    """Microsecond clock bound to a DES :class:`Simulator`."""

    timebase = "us"

    def __init__(self, sim):
        self._sim = sim

    def now(self) -> int:
        return int(self._sim.now)
