"""repro.obs: the unified observability substrate.

One :class:`MetricsRegistry` per run, dotted-path namespaced, stamped by
a :class:`Clock` whose timebase matches the world that owns it
(:class:`CycleClock` for the instruction engine, :class:`SimClock` for
the DES side), with :class:`Tracer` spans riding the existing
:class:`~repro.util.eventlog.EventLog`.
"""

from repro.obs.clock import Clock, CycleClock, ManualClock, SimClock
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    SUBSYSTEMS,
    build_manifest,
    register_baseline,
    subsystem_of,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
    counter_attr,
)
from repro.obs.tracing import Tracer

__all__ = [
    "Clock",
    "CycleClock",
    "ManualClock",
    "SimClock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "counter_attr",
    "Tracer",
    "MANIFEST_SCHEMA",
    "SUBSYSTEMS",
    "build_manifest",
    "register_baseline",
    "subsystem_of",
]
