"""Span tracing layered on :class:`repro.util.eventlog.EventLog`.

A span is a named, timed region (``with tracer.span("migration.round",
vm="web")``). Entry and exit are emitted as ordinary events under the
``"span"`` category -- ``phase="begin"`` / ``phase="end"`` with the
nesting ``depth`` -- so the existing EventLog filtering, bounding, and
drop accounting all apply unchanged. When the tracer is built with a
metrics registry/scope, every completed span also lands its duration in
a ``span.<name>`` histogram, linking the trace world to the metrics
world through one shared clock.
"""

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.clock import Clock, ManualClock
from repro.util.eventlog import EventLog

__all__ = ["Tracer"]


class Tracer:
    """Emits begin/end span events into an :class:`EventLog`."""

    def __init__(self, log: Optional[EventLog] = None,
                 clock: Optional[Clock] = None, metrics=None):
        self.log = log if log is not None else EventLog(capacity=4096)
        self.clock = clock if clock is not None else ManualClock()
        self.metrics = metrics
        self._depth = 0

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span)."""
        return self._depth

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[None]:
        """Trace one region; re-raising exceptions after closing the span."""
        start = self.clock.now()
        depth = self._depth
        self._depth += 1
        self.log.emit(start, "span", name, phase="begin", depth=depth, **attrs)
        try:
            yield
        finally:
            self._depth -= 1
            end = self.clock.now()
            duration = end - start
            self.log.emit(end, "span", name, phase="end", depth=depth,
                          duration=duration, **attrs)
            if self.metrics is not None:
                self.metrics.observe(f"span.{name}", duration)

    def spans(self, name: Optional[str] = None):
        """Retained span events, optionally limited to one span name."""
        for event in self.log.filter(category="span"):
            if name is None or event.message == name:
                yield event
