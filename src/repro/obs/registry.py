"""Hierarchical metrics registry shared by every pyvisor layer.

One :class:`MetricsRegistry` per run holds counters, gauges, and
histograms addressed by dotted paths (``vm.web.exits.hypercall``,
``sched.credit.preemptions``, ``faults.injected.block.io_error``).
Subsystems receive a :class:`MetricsScope` -- a prefix view over the
shared registry -- so they name metrics locally (``rounds``) while the
run sees the fully qualified path (``migration.rounds``).

Metrics are deliberately tiny wrappers around plain ints/lists: the
instruction engine bumps some of these on every VM exit, so there is no
locking, no label dicts, and the hot path is one attribute add.
:class:`counter_attr` exposes a registry-backed counter as an ordinary
``int`` attribute (``self.reads += 1`` keeps working) so device models
and stat structs can move their storage into the registry without
changing any call sites.
"""

from typing import Dict, Iterator, List, Optional, Tuple, Type, Union

from repro.obs.clock import Clock, ManualClock
from repro.util.errors import ConfigError
from repro.util.stats import Summary

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "counter_attr",
]


class Counter:
    """Monotonically growing tally (resettable only via its registry)."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Point-in-time level (free frames, queue depth, balloon size)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Sample distribution summarized via :class:`util.stats.Summary`.

    Each observation is stamped with the registry clock's current time;
    ``last_time`` keeps the most recent stamp so consumers can tell how
    stale a distribution is.
    """

    kind = "histogram"
    __slots__ = ("name", "values", "last_time")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []
        self.last_time: Optional[int] = None

    def observe(self, value: float, time: Optional[int] = None) -> None:
        self.values.append(value)
        if time is not None:
            self.last_time = time

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def summary(self) -> Optional[Summary]:
        return Summary.of(self.values) if self.values else None

    def snapshot(self, include_values: bool = False) -> Dict[str, object]:
        summary = self.summary
        snap: Dict[str, object] = {
            "type": "histogram",
            "count": self.count,
            "last_time": self.last_time,
            "summary": summary.to_dict() if summary else None,
        }
        if include_values:
            # Raw samples make the snapshot exactly mergeable: partial
            # (per-shard) manifests carry them so the reduce step can
            # concatenate and re-summarize; the finalized manifest
            # drops them again (see obs.manifest.finalize_manifest).
            snap["values"] = list(self.values)
        return snap


Metric = Union[Counter, Gauge, Histogram]


def _validate_name(name: str) -> None:
    # Segments carry user-supplied labels (VM names, exit details), so
    # anything goes inside one -- only the dotted structure is enforced.
    if not name or name.startswith(".") or name.endswith("."):
        raise ConfigError(f"invalid metric name {name!r}")
    if ".." in name:
        raise ConfigError(f"metric name {name!r} has an empty segment")


class MetricsRegistry:
    """Flat store of dotted-path metrics plus the run's clock.

    ``counter``/``gauge``/``histogram`` get-or-create; asking for an
    existing name as a different kind is a :class:`ConfigError` (two
    subsystems silently sharing one slot is always a bug).
    """

    def __init__(self, clock: Optional[Clock] = None):
        self.clock: Clock = clock if clock is not None else ManualClock()
        self._metrics: Dict[str, Metric] = {}

    # -- get-or-create -----------------------------------------------------

    def _get(self, name: str, cls: Type[Metric]) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            _validate_name(name)
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise ConfigError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested as {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram sample stamped with the registry clock."""
        self.histogram(name).observe(value, self.clock.now())

    # -- inspection --------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0) -> float:
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return default
        return metric.value

    def names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def items(self, prefix: str = "") -> Iterator[Tuple[str, Metric]]:
        for name in self.names(prefix):
            yield name, self._metrics[name]

    def values(self, prefix: str = "", strip: bool = False) -> Dict[str, float]:
        """Counter/gauge values under ``prefix`` (histograms excluded).

        With ``strip=True`` keys are relative to the prefix -- the shape
        the :class:`ExitStats`-style views rebuild their dicts from.
        """
        cut = len(prefix) if strip else 0
        return {
            name[cut:]: metric.value
            for name, metric in self.items(prefix)
            if not isinstance(metric, Histogram)
        }

    # -- structure ---------------------------------------------------------

    def scope(self, prefix: str) -> "MetricsScope":
        _validate_name(prefix)
        return MetricsScope(self, prefix)

    def reset(self, prefix: str = "") -> int:
        """Drop every metric under ``prefix``; returns how many were dropped.

        Used when a namespace is legitimately reborn -- e.g. a VM
        recreated under the same name after a micro-reboot starts its
        counters from zero, exactly as its pre-registry structs did.
        """
        doomed = [n for n in self._metrics if n.startswith(prefix)]
        for name in doomed:
            del self._metrics[name]
        return len(doomed)

    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold ``other`` into this registry, optionally under ``prefix``.

        Counters add, gauges take the incoming (newer) value, histograms
        concatenate samples. Lets per-shard registries roll up into one.
        """
        base = prefix + "." if prefix else ""
        for name, metric in other.items():
            if isinstance(metric, Counter):
                self.counter(base + name).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(base + name).set(metric.value)
            else:
                mine = self.histogram(base + name)
                mine.values.extend(metric.values)
                if metric.last_time is not None:
                    mine.last_time = metric.last_time

    def snapshot(self, samples: bool = False) -> Dict[str, object]:
        """Point-in-time dump stamped with the clock's declared timebase.

        With ``samples=True`` histogram snapshots carry their raw
        values, making the snapshot exactly mergeable downstream.
        """
        return {
            "timebase": self.clock.timebase,
            "time": self.clock.now(),
            "metrics": {
                name: (metric.snapshot(include_values=True)
                       if samples and isinstance(metric, Histogram)
                       else metric.snapshot())
                for name, metric in ((n, self._metrics[n])
                                     for n in sorted(self._metrics))
            },
        }


class MetricsScope:
    """Prefix view over a registry: local names, global storage."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self.registry = registry
        self.prefix = prefix

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self._qualify(name))

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(self._qualify(name))

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(self._qualify(name))

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(self._qualify(name), value)

    def value(self, name: str, default: float = 0) -> float:
        return self.registry.value(self._qualify(name), default)

    def values(self, prefix: str = "") -> Dict[str, float]:
        """Relative-name counter/gauge values under this scope."""
        full = self._qualify(prefix) if prefix else self.prefix + "."
        if prefix and not full.endswith("."):
            full += "."
        return self.registry.values(full, strip=True)

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self.registry, self._qualify(prefix))


class counter_attr:
    """Descriptor: an ``int``-looking attribute stored in the registry.

    The owning instance must expose ``self.metrics`` (a
    :class:`MetricsScope`) *before* the attribute is first touched. The
    bound :class:`Counter` is cached in the instance ``__dict__`` so the
    hot path is one dict hit, not a dotted-path lookup.
    """

    __slots__ = ("name", "_key")

    def __set_name__(self, owner, name: str) -> None:
        self.name = name
        self._key = "_counter_" + name

    def _counter(self, obj) -> Counter:
        cache = obj.__dict__
        ctr = cache.get(self._key)
        if ctr is None:
            ctr = obj.metrics.counter(self.name)
            cache[self._key] = ctr
        return ctr

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return self._counter(obj).value

    def __set__(self, obj, value) -> None:
        self._counter(obj).value = value
