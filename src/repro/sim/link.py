"""Point-to-point network link model.

Live migration and cluster rebalancing move bytes over a
:class:`NetworkLink` with a fixed bandwidth and propagation latency.
Transfers serialize on the link (FIFO), which is what makes concurrent
migrations slow each other down, as on a real management network.

Fault model (driven by an optional
:class:`~repro.faults.injector.FaultInjector`):

* ``link.drop`` -- the transfer dies partway: time burns for the bytes
  already serialized, nothing is delivered, :class:`LinkError` raised;
* ``link.degrade`` -- the transfer runs at ``1/degrade_factor`` of the
  link bandwidth (congestion, a flapping NIC);
* ``link.partition`` -- the link goes down for ``partition_ticks``;
  transfers attempted while partitioned fail immediately. ``heal()``
  clears a partition early.
"""

from dataclasses import dataclass
from typing import Generator, Optional

from repro.obs.clock import SimClock
from repro.obs.registry import MetricsRegistry, counter_attr
from repro.sim.kernel import SEC, Simulator, Timeout
from repro.sim.resources import Resource
from repro.util.errors import ConfigError, LinkError


@dataclass(frozen=True)
class TransferResult:
    """Completion record for one transfer."""

    nbytes: int
    started_at: int
    finished_at: int

    @property
    def duration(self) -> int:
        return self.finished_at - self.started_at


class NetworkLink:
    """A serialized link with bandwidth (bytes/s) and latency (ticks)."""

    bytes_sent = counter_attr()
    transfers = counter_attr()
    drops = counter_attr()
    degraded_transfers = counter_attr()
    partitions = counter_attr()

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bytes_per_sec: float,
        latency: int = 0,
        name: str = "link",
        injector=None,
        degrade_factor: float = 4.0,
        partition_ticks: int = 50 * 1000,
        metrics=None,
    ):
        if bandwidth_bytes_per_sec <= 0:
            raise ConfigError("bandwidth must be positive")
        if latency < 0:
            raise ConfigError("latency must be non-negative")
        if degrade_factor < 1.0:
            raise ConfigError("degrade_factor must be >= 1")
        if partition_ticks < 0:
            raise ConfigError("partition_ticks must be non-negative")
        self.sim = sim
        self.bandwidth = bandwidth_bytes_per_sec
        self.latency = latency
        self.name = name
        self.injector = injector
        self.degrade_factor = degrade_factor
        self.partition_ticks = partition_ticks
        #: ``sim.link.<name>.*`` counters, stamped in sim microseconds.
        self.metrics = (metrics if metrics is not None else
                        MetricsRegistry(clock=SimClock(sim)).scope(
                            f"sim.link.{name}"))
        self._channel = Resource(sim, capacity=1)
        self._partitioned_until = 0

    def transmission_time(self, nbytes: int) -> int:
        """Serialization + propagation time for ``nbytes``, in ticks."""
        if nbytes < 0:
            raise ConfigError("negative byte count")
        serialization = int(nbytes / self.bandwidth * SEC)
        return serialization + self.latency

    # -- partition state -----------------------------------------------------

    @property
    def partitioned(self) -> bool:
        return self.sim.now < self._partitioned_until

    def partition(self, duration: Optional[int] = None) -> None:
        """Take the link down for ``duration`` ticks (default configured)."""
        if duration is None:
            duration = self.partition_ticks
        if duration < 0:
            raise ConfigError("partition duration must be non-negative")
        self.partitions += 1
        self._partitioned_until = max(
            self._partitioned_until, self.sim.now + duration
        )

    def heal(self) -> None:
        """Clear any active partition immediately."""
        self._partitioned_until = 0

    # -- transfers -----------------------------------------------------------

    def transfer(self, nbytes: int) -> Generator:
        """Generator to ``yield from``; completes when bytes are delivered.

        Returns a :class:`TransferResult` (via the generator's return
        value, i.e. ``result = yield from link.transfer(n)``). Raises
        :class:`~repro.util.errors.LinkError` when an injected fault
        kills the transfer; simulated time consumed up to the failure
        point is kept (retries pay for what burned).
        """
        if nbytes < 0:
            raise ConfigError("negative byte count")
        yield from self._channel.acquire()
        started = self.sim.now
        try:
            if self.injector is not None and self.injector.fires("link.partition"):
                self.partition()
            if self.partitioned:
                self.drops += 1
                raise LinkError(
                    f"link {self.name} partitioned until "
                    f"t={self._partitioned_until}"
                )
            delay = self.transmission_time(nbytes)
            if self.injector is not None and self.injector.fires("link.degrade"):
                self.degraded_transfers += 1
                delay = self.latency + int(
                    (delay - self.latency) * self.degrade_factor
                )
            if self.injector is not None and self.injector.fires("link.drop"):
                # Carrier lost partway through serialization: a
                # deterministic fraction of the time burns, no delivery.
                lost_after = int(delay * (0.25 + 0.5 * self.injector.uniform("link.drop")))
                if lost_after > 0:
                    yield Timeout(lost_after)
                self.drops += 1
                raise LinkError(
                    f"link {self.name} dropped transfer of {nbytes} bytes "
                    f"after {lost_after} ticks"
                )
            if delay > 0:
                yield Timeout(delay)
        finally:
            self._channel.release()
        self.bytes_sent += nbytes
        self.transfers += 1
        return TransferResult(nbytes, started, self.sim.now)
