"""Point-to-point network link model.

Live migration and cluster rebalancing move bytes over a
:class:`NetworkLink` with a fixed bandwidth and propagation latency.
Transfers serialize on the link (FIFO), which is what makes concurrent
migrations slow each other down, as on a real management network.
"""

from dataclasses import dataclass
from typing import Generator

from repro.sim.kernel import SEC, Simulator, Timeout
from repro.sim.resources import Resource


@dataclass(frozen=True)
class TransferResult:
    """Completion record for one transfer."""

    nbytes: int
    started_at: int
    finished_at: int

    @property
    def duration(self) -> int:
        return self.finished_at - self.started_at


class NetworkLink:
    """A serialized link with bandwidth (bytes/s) and latency (ticks)."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bytes_per_sec: float,
        latency: int = 0,
        name: str = "link",
    ):
        if bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.bandwidth = bandwidth_bytes_per_sec
        self.latency = latency
        self.name = name
        self._channel = Resource(sim, capacity=1)
        self.bytes_sent = 0
        self.transfers = 0

    def transmission_time(self, nbytes: int) -> int:
        """Serialization + propagation time for ``nbytes``, in ticks."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        serialization = int(nbytes / self.bandwidth * SEC)
        return serialization + self.latency

    def transfer(self, nbytes: int) -> Generator:
        """Generator to ``yield from``; completes when bytes are delivered.

        Returns a :class:`TransferResult` (via the generator's return
        value, i.e. ``result = yield from link.transfer(n)``).
        """
        if nbytes < 0:
            raise ValueError("negative byte count")
        yield from self._channel.acquire()
        started = self.sim.now
        try:
            delay = self.transmission_time(nbytes)
            if delay > 0:
                yield Timeout(delay)
        finally:
            self._channel.release()
        self.bytes_sent += nbytes
        self.transfers += 1
        return TransferResult(nbytes, started, self.sim.now)
