"""Epoch-synchronous shard execution for partitioned simulations.

The cluster layer scales past one core by partitioning hosts into
**shards**. Each shard owns a private simulation clock, a private
forked RNG stream, a private fault injector, and a private metrics
registry; within an epoch a shard touches nothing outside its own
state, so shards execute concurrently. Everything that crosses a
shard boundary (a VM migrating between hosts on different shards, an
evacuation after a crash, a balancer decision) travels as a
:class:`ShardMessage` delivered at the next **epoch barrier**, where a
single-threaded coordinator runs the global decisions.

The determinism contract is the fuzz campaign's, lifted from cases to
epochs: an epoch step is a *pure function* of ``(shard state, epoch
inputs)``, results are re-ordered by shard index after the fan-out,
and messages are sorted by ``(time, src_shard, seq)`` -- a total order
that never consults the payload. Worker scheduling therefore cannot
influence any result, which is what makes merged manifests
byte-identical across ``--jobs`` values.

:class:`ShardExecutor` holds one ``fork``-context worker pool across
all epochs (forking per epoch would dominate the runtime);
``jobs=1`` degrades to an inline map, making the single-process path
the same code with no pool at all.
"""

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.util.errors import ConfigError

__all__ = [
    "COORDINATOR",
    "ShardMessage",
    "route_messages",
    "ShardExecutor",
    "parallel_map",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: ``dst_shard`` sentinel addressing the coordinator instead of a shard.
COORDINATOR = -1


@dataclass(frozen=True, order=True)
class ShardMessage:
    """One cross-shard event, delivered at an epoch barrier.

    The dataclass ordering key is field order: ``(time, src_shard,
    seq, ...)``. Within one source shard ``seq`` increments per
    message, so ``(time, src_shard, seq)`` is unique and the sort
    never has to compare ``kind`` or payloads -- delivery order is a
    pure function of *when and where* a message originated.

    ``payload`` is a tuple (hashable, immutable) of primitives and/or
    frozen dataclasses so messages pickle cheaply and cannot alias
    mutable shard state across the process boundary.
    """

    time: int
    src_shard: int
    seq: int
    kind: str = field(compare=False)
    dst_shard: int = field(compare=False)
    payload: Tuple = field(compare=False, default=())


def route_messages(messages: Sequence[ShardMessage],
                   shards: int) -> Tuple[List[List[ShardMessage]],
                                         List[ShardMessage]]:
    """Sort messages into per-shard inboxes plus the coordinator's.

    Returns ``(inboxes, to_coordinator)`` where ``inboxes[i]`` holds
    shard *i*'s deliveries in ``(time, src_shard, seq)`` order. A
    message addressed outside ``[0, shards)`` (other than
    :data:`COORDINATOR`) is a routing bug and raises
    :class:`ConfigError` rather than being dropped silently.
    """
    inboxes: List[List[ShardMessage]] = [[] for _ in range(shards)]
    to_coordinator: List[ShardMessage] = []
    for msg in sorted(messages):
        if msg.dst_shard == COORDINATOR:
            to_coordinator.append(msg)
        elif 0 <= msg.dst_shard < shards:
            inboxes[msg.dst_shard].append(msg)
        else:
            raise ConfigError(
                f"message {msg.kind!r} addressed to shard {msg.dst_shard} "
                f"but only {shards} shards exist"
            )
    return inboxes, to_coordinator


class ShardExecutor:
    """Maps a pure function over shard tasks, inline or across workers.

    One executor persists across every epoch of a run: the ``fork``
    pool is created on ``__enter__`` and torn down on ``__exit__``.
    ``fn`` must be a module-level function of one picklable argument
    (the same constraint the fuzz campaign's workers live under).
    Results come back in task order regardless of which worker ran
    what, so callers index them by shard.
    """

    def __init__(self, jobs: int = 1):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._pool = None

    def __enter__(self) -> "ShardExecutor":
        if self.jobs > 1:
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(processes=self.jobs)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def map(self, fn: Callable[[_T], _R], tasks: Sequence[_T]) -> List[_R]:
        """Apply ``fn`` to every task; results in task order."""
        if self._pool is None:
            return [fn(task) for task in tasks]
        # chunksize=1: shard epochs are coarse (thousands of simulated
        # events each), so dispatch overhead is negligible and eager
        # per-shard distribution beats batching.
        return self._pool.map(fn, tasks, chunksize=1)


def parallel_map(fn: Callable[[_T], _R], items: Sequence[_T],
                 jobs: int = 1) -> List[_R]:
    """One-shot ordered parallel map for independent work items.

    The convenience form for bench sweeps that fan out once (no
    epoch loop): partitions ``items`` across a short-lived pool and
    returns results in item order. ``jobs=1`` runs inline.
    """
    with ShardExecutor(jobs=jobs) as executor:
        return executor.map(fn, items)
