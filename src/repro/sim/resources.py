"""Shared resources for simulated processes.

:class:`Resource` is a counted semaphore with FIFO queueing (models CPU
slots, disk queue depth, migration worker threads). :class:`TokenBucket`
models rate limits (e.g. a capped vCPU, a throttled migration stream).
"""

from collections import deque
from typing import Deque, Generator

from repro.sim.kernel import SimEvent, Simulator, Timeout, WaitEvent


class Resource:
    """Counted resource with FIFO waiters.

    Usage from inside a process generator::

        yield from resource.acquire()
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[SimEvent] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> Generator:
        """Generator to ``yield from``; returns once a unit is held."""
        if self.in_use < self.capacity:
            self.in_use += 1
            return
        ev = self.sim.event()
        self._waiters.append(ev)
        yield WaitEvent(ev)
        # The releaser transferred its unit to us; in_use stays constant.

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError("release without acquire")
        if self._waiters:
            # Hand the unit directly to the first waiter (no decrement).
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    def __repr__(self) -> str:
        return f"<Resource {self.in_use}/{self.capacity}, {len(self._waiters)} waiting>"


class TokenBucket:
    """Token-bucket rate limiter over simulated time.

    ``rate`` is tokens per second of simulated time; ``burst`` is the
    bucket depth. ``consume(n)`` is a generator that waits until the
    tokens are available and then takes them.
    """

    def __init__(self, sim: Simulator, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.sim = sim
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last = sim.now

    def _refill(self) -> None:
        from repro.sim.kernel import SEC

        elapsed = self.sim.now - self._last
        self._last = self.sim.now
        self._tokens = min(self.burst, self._tokens + self.rate * elapsed / SEC)

    def peek(self) -> float:
        """Current token level (after refill)."""
        self._refill()
        return self._tokens

    def consume(self, tokens: float) -> Generator:
        """Generator to ``yield from``; waits until tokens are available."""
        from repro.sim.kernel import SEC

        if tokens <= 0:
            raise ValueError("tokens must be positive")
        if tokens > self.burst:
            raise ValueError(f"request {tokens} exceeds burst {self.burst}")
        while True:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return
            deficit = tokens - self._tokens
            wait = int(deficit / self.rate * SEC) + 1
            yield Timeout(wait)


