"""Generator-coroutine discrete-event simulator.

Design notes
------------

* Time is an ``int`` count of microseconds (:data:`USEC` = 1). Integer
  time makes event ordering exact; ties are broken by insertion sequence
  number so runs are fully deterministic.
* A :class:`Process` wraps a generator. The generator yields *commands*:

  - ``Timeout(delay)`` -- resume after ``delay`` ticks.
  - ``WaitEvent(ev)``  -- resume when ``ev.succeed(value)`` fires; the
    ``yield`` expression evaluates to ``value``.
  - ``WaitProcess(p)`` -- resume when process ``p`` terminates; evaluates
    to its return value.

* ``Process.interrupt(reason)`` throws :class:`Interrupted` into the
  generator at its current wait point (used e.g. to cancel a migration
  round or preempt a vCPU slice).

The kernel deliberately supports only what the upper layers need; it is
not a general simpy replacement.
"""

import heapq
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

#: One microsecond of simulated time (the base tick).
USEC = 1
#: One millisecond of simulated time.
MSEC = 1000 * USEC
#: One second of simulated time.
SEC = 1000 * MSEC


class Interrupted(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, reason: Any = None):
        super().__init__(reason)
        self.reason = reason


class SimEvent:
    """A one-shot event that processes can wait on.

    ``succeed(value)`` wakes every waiter; waiting on an already-succeeded
    event resumes immediately with the stored value.
    """

    __slots__ = ("sim", "fired", "value", "_waiters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.fired = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def succeed(self, value: Any = None) -> None:
        if self.fired:
            raise RuntimeError("event already fired")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule_resume(proc, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self.fired:
            self.sim._schedule_resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def _remove_waiter(self, proc: "Process") -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)


class Timeout:
    """Yield command: resume after ``delay`` ticks."""

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.delay = int(delay)


class WaitEvent:
    """Yield command: resume when the event fires."""

    __slots__ = ("event",)

    def __init__(self, event: SimEvent):
        self.event = event


class WaitProcess:
    """Yield command: resume when another process terminates."""

    __slots__ = ("process",)

    def __init__(self, process: "Process"):
        self.process = process


class Process:
    """A running generator coroutine inside the simulator."""

    __slots__ = (
        "sim",
        "name",
        "_gen",
        "alive",
        "result",
        "done_event",
        "_timer_entry",
        "_waiting_on",
    )

    def __init__(self, sim: "Simulator", gen: Generator, name: str):
        self.sim = sim
        self.name = name
        self._gen = gen
        self.alive = True
        self.result: Any = None
        self.done_event = SimEvent(sim)
        # The queue cell of a scheduled timer resume; cancelling an
        # interrupted sleep nulls the cell so the stale entry is skipped
        # without even advancing the clock.
        self._timer_entry: Optional[list] = None
        self._waiting_on: Optional[SimEvent] = None

    def interrupt(self, reason: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its wait point."""
        if not self.alive:
            return
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        if self._timer_entry is not None:
            self._timer_entry[0] = None  # cancel the pending timer resume
            self._timer_entry = None
        self.sim._schedule_throw(self, Interrupted(reason))

    def __repr__(self) -> str:
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The event loop: a priority queue of (time, seq, [action]).

    The action lives in a one-element list cell so a cancelled entry can
    be nulled in place; nulled entries are discarded without advancing
    the clock.
    """

    def __init__(self):
        self.now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, list]] = []
        self.processes: Dict[str, Process] = {}
        self._proc_counter = 0

    # -- public API ------------------------------------------------------

    def spawn(self, gen: Generator, name: Optional[str] = None) -> Process:
        """Register a generator as a process and start it at ``now``."""
        if name is None:
            name = f"proc-{self._proc_counter}"
        self._proc_counter += 1
        proc = Process(self, gen, name)
        self.processes[name] = proc
        self._push(self.now, lambda: self._step(proc, ("send", None)))
        return proc

    def event(self) -> SimEvent:
        """Create a fresh one-shot event bound to this simulator."""
        return SimEvent(self)

    def call_at(self, time: int, fn: Callable[[], None]) -> None:
        """Run a plain callback at an absolute simulated time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        self._push(time, fn)

    def call_after(self, delay: int, fn: Callable[[], None]) -> None:
        """Run a plain callback after a relative delay."""
        self.call_at(self.now + delay, fn)

    def run(self, until: Optional[int] = None) -> int:
        """Drain the event queue, optionally stopping at time ``until``.

        Returns the final simulated time.
        """
        while self._queue:
            time, _seq, cell = self._queue[0]
            if cell[0] is None:
                heapq.heappop(self._queue)
                continue
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = time
            cell[0]()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_until_process(self, proc: Process, limit: Optional[int] = None) -> Any:
        """Run until ``proc`` terminates; return its result.

        ``limit`` bounds simulated time as a safety net; exceeding it
        raises ``RuntimeError`` (the process is genuinely stuck or the
        workload was mis-sized).
        """
        while proc.alive and self._queue:
            time, _seq, cell = heapq.heappop(self._queue)
            if cell[0] is None:
                continue
            if limit is not None and time > limit:
                raise RuntimeError(
                    f"process {proc.name} still alive at time limit {limit}"
                )
            self.now = time
            cell[0]()
        if proc.alive:
            raise RuntimeError(f"process {proc.name} deadlocked (queue empty)")
        return proc.result

    # -- internals ---------------------------------------------------------

    def _push(self, time: int, action: Callable[[], None]) -> list:
        self._seq += 1
        cell = [action]
        heapq.heappush(self._queue, (time, self._seq, cell))
        return cell

    def _schedule_resume(self, proc: Process, value: Any) -> None:
        proc._waiting_on = None
        self._push(self.now, lambda: self._step(proc, ("send", value)))

    def _schedule_throw(self, proc: Process, exc: BaseException) -> None:
        self._push(self.now, lambda: self._step(proc, ("throw", exc)))

    def _step(self, proc: Process, resume: Tuple[str, Any]) -> None:
        if not proc.alive:
            return
        kind, payload = resume
        if kind == "timer":
            proc._timer_entry = None
            kind, payload = "send", None
        try:
            if kind == "send":
                command = proc._gen.send(payload)
            else:
                command = proc._gen.throw(payload)
        except StopIteration as stop:
            self._finish(proc, stop.value)
            return
        except Interrupted:
            # Process chose not to handle its interrupt: treat as death.
            self._finish(proc, None)
            return
        self._dispatch_command(proc, command)

    def _dispatch_command(self, proc: Process, command: Any) -> None:
        if isinstance(command, Timeout):
            proc._timer_entry = self._push(
                self.now + command.delay,
                lambda: self._step(proc, ("timer", None)),
            )
        elif isinstance(command, WaitEvent):
            proc._waiting_on = command.event
            command.event._add_waiter(proc)
        elif isinstance(command, WaitProcess):
            target = command.process
            if not target.alive:
                self._schedule_resume(proc, target.result)
            else:
                proc._waiting_on = target.done_event
                target.done_event._add_waiter(proc)
        else:
            raise TypeError(
                f"process {proc.name} yielded {command!r}; expected "
                "Timeout, WaitEvent, or WaitProcess"
            )

    def _finish(self, proc: Process, result: Any) -> None:
        proc.alive = False
        proc.result = result
        proc.done_event.succeed(result)
        self.processes.pop(proc.name, None)
