"""Discrete-event simulation kernel.

This is the timing engine behind the long-horizon experiments (scheduling,
live migration, overcommit, consolidation). It is a small simpy-style
kernel: processes are generator coroutines that ``yield`` commands
(:class:`Timeout`, :class:`WaitEvent`, ...) to the :class:`Simulator`.

Simulated time is an integer number of **microseconds** so that event
ordering is exact and runs are deterministic; helpers convert to/from
seconds for reporting.
"""

from repro.sim.kernel import (
    Simulator,
    Process,
    SimEvent,
    Timeout,
    WaitEvent,
    WaitProcess,
    Interrupted,
    USEC,
    MSEC,
    SEC,
)
from repro.sim.resources import Resource, TokenBucket
from repro.sim.link import NetworkLink, TransferResult
from repro.sim.shard import (
    COORDINATOR,
    ShardMessage,
    ShardExecutor,
    route_messages,
    parallel_map,
)

__all__ = [
    "Simulator",
    "Process",
    "SimEvent",
    "Timeout",
    "WaitEvent",
    "WaitProcess",
    "Interrupted",
    "USEC",
    "MSEC",
    "SEC",
    "Resource",
    "TokenBucket",
    "NetworkLink",
    "TransferResult",
    "COORDINATOR",
    "ShardMessage",
    "ShardExecutor",
    "route_messages",
    "parallel_map",
]
