"""pyvisor: a full-system virtualization platform in pure Python.

Subpackages (see README.md for the architecture overview):

* :mod:`repro.util` -- units, RNG, statistics, tracing, tables.
* :mod:`repro.sim` -- the discrete-event simulation kernel.
* :mod:`repro.cpu` -- the VISA ISA: interpreter, assembler, MMU interface.
* :mod:`repro.mem` -- physical memory, page tables, TLB, cost model.
* :mod:`repro.devices` -- port bus, PIC, timer, console, disk/NIC
  (emulated and virtio flavours).
* :mod:`repro.core` -- the hypervisor: execution modes, shadow/nested
  paging, the native machine, snapshots.
* :mod:`repro.guest` -- NanoOS (the guest kernel) and its workloads.
* :mod:`repro.sched` -- vCPU schedulers (credit, stride, round-robin).
* :mod:`repro.migration` -- live migration: models, functional pre-copy
  and post-copy.
* :mod:`repro.overcommit` -- ballooning, page sharing, host swap, WSS.
* :mod:`repro.cluster` -- placement, consolidation, power, balancing,
  host failover.
* :mod:`repro.faults` -- deterministic fault injection, watchdogs, and
  recovery (micro-reboot, retry/backoff).
* :mod:`repro.obs` -- the shared observability substrate: metrics
  registry, dual-timebase clocks, span tracing, run manifests.
* :mod:`repro.bench` -- experiment runners (E1-E10).

Command line: ``python -m repro list | run <exp> | boot``.

The exception hierarchy and the most commonly used entry points are
re-exported here, so ``import repro`` suffices for embedding:
``repro.Hypervisor``, ``repro.GuestConfig``, ``repro.FaultInjector``,
and every ``repro.*Error`` class (all deriving from
:class:`repro.ReproError`).
"""

from repro.util.errors import (
    ConfigError,
    DeviceError,
    FaultError,
    GuestError,
    LinkError,
    MemoryError_,
    MigrationError,
    ReproError,
    SchedulerError,
)
from repro.core import GuestConfig, Hypervisor, MMUVirtMode, VirtMode
from repro.core.hypervisor import RunOutcome
from repro.core.snapshot import VMSnapshot, restore_vm, snapshot_vm
from repro.faults import (
    DeviceTimeoutMonitor,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    GuestProgressWatchdog,
    MicroRebooter,
    RetryPolicy,
)
from repro.migration import LiveMigrator, LiveMigrationResult
from repro.obs import (
    CycleClock,
    ManualClock,
    MetricsRegistry,
    MetricsScope,
    SimClock,
    Tracer,
    build_manifest,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # exception hierarchy
    "ReproError",
    "ConfigError",
    "GuestError",
    "MemoryError_",
    "DeviceError",
    "MigrationError",
    "SchedulerError",
    "LinkError",
    "FaultError",
    # core entry points
    "Hypervisor",
    "GuestConfig",
    "VirtMode",
    "MMUVirtMode",
    "RunOutcome",
    "VMSnapshot",
    "snapshot_vm",
    "restore_vm",
    # migration
    "LiveMigrator",
    "LiveMigrationResult",
    # faults / detection / recovery
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "GuestProgressWatchdog",
    "DeviceTimeoutMonitor",
    "MicroRebooter",
    "RetryPolicy",
    # observability
    "MetricsRegistry",
    "MetricsScope",
    "ManualClock",
    "CycleClock",
    "SimClock",
    "Tracer",
    "build_manifest",
]
