"""pyvisor: a full-system virtualization platform in pure Python.

Subpackages (see README.md for the architecture overview):

* :mod:`repro.util` -- units, RNG, statistics, tracing, tables.
* :mod:`repro.sim` -- the discrete-event simulation kernel.
* :mod:`repro.cpu` -- the VISA ISA: interpreter, assembler, MMU interface.
* :mod:`repro.mem` -- physical memory, page tables, TLB, cost model.
* :mod:`repro.devices` -- port bus, PIC, timer, console, disk/NIC
  (emulated and virtio flavours).
* :mod:`repro.core` -- the hypervisor: execution modes, shadow/nested
  paging, the native machine, snapshots.
* :mod:`repro.guest` -- NanoOS (the guest kernel) and its workloads.
* :mod:`repro.sched` -- vCPU schedulers (credit, stride, round-robin).
* :mod:`repro.migration` -- live migration: models, functional pre-copy
  and post-copy.
* :mod:`repro.overcommit` -- ballooning, page sharing, host swap, WSS.
* :mod:`repro.cluster` -- placement, consolidation, power, balancing.
* :mod:`repro.bench` -- experiment runners (E1-E9).

Command line: ``python -m repro list | run <exp> | boot``.
"""

__version__ = "1.0.0"
