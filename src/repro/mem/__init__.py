"""Memory subsystem: physical frames, page tables, TLB, cost model.

Layout of the 32-bit virtual address space (4 KiB pages, 2-level tables,
exactly the classic x86 non-PAE split):

* bits 31..22 -- page-directory index (1024 entries)
* bits 21..12 -- page-table index (1024 entries)
* bits 11..0  -- page offset

Page-table entries (PTEs) and page-directory entries (PDEs) share one
32-bit format: frame number in bits 31..12, flag bits below (present,
writable, user, accessed, dirty, no-execute).
"""

from repro.mem.costs import CostModel
from repro.mem.physmem import PhysicalMemory, FrameAllocator
from repro.mem.paging import (
    PTE_PRESENT,
    PTE_WRITABLE,
    PTE_USER,
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_NOEXEC,
    make_pte,
    pte_frame,
    split_vaddr,
    AccessType,
    PageFault,
    PageTableWalker,
    AddressSpace,
)
from repro.mem.tlb import TLB, TLBStats

__all__ = [
    "CostModel",
    "PhysicalMemory",
    "FrameAllocator",
    "PTE_PRESENT",
    "PTE_WRITABLE",
    "PTE_USER",
    "PTE_ACCESSED",
    "PTE_DIRTY",
    "PTE_NOEXEC",
    "make_pte",
    "pte_frame",
    "split_vaddr",
    "AccessType",
    "PageFault",
    "PageTableWalker",
    "AddressSpace",
    "TLB",
    "TLBStats",
]
