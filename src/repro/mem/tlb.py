"""Software-simulated TLB with LRU replacement and full statistics.

The TLB caches (virtual page number -> leaf PTE) pairs. Separate entries
are *not* kept per access type; permission bits are re-checked from the
cached PTE on every hit, exactly as hardware does, so a write to a page
cached by a read still faults (or misses to set the dirty bit -- see
``write_requires_dirty``).
"""

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.mem.paging import (
    AccessType,
    PTE_DIRTY,
    PTE_NOEXEC,
    PTE_USER,
    PTE_WRITABLE,
)


@dataclass
class TLBStats:
    """Hit/miss/flush accounting."""

    hits: int = 0
    misses: int = 0
    flushes: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> "TLBStats":
        snapshot = TLBStats(
            self.hits, self.misses, self.flushes, self.invalidations, self.evictions
        )
        self.hits = self.misses = self.flushes = 0
        self.invalidations = self.evictions = 0
        return snapshot


class TLB:
    """Fixed-capacity, fully-associative, LRU translation cache."""

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, int]" = OrderedDict()  # vpn -> pte
        self.stats = TLBStats()
        #: Bumped whenever a cached translation disappears or changes
        #: (flush, invalidation, eviction, PTE update). Fast paths that
        #: memoize a translation snapshot the epoch and revalidate with
        #: one integer compare instead of a full lookup.
        self.epoch = 0
        #: Bound alias of ``self._entries.get``: the cached leaf PTE for
        #: a vpn (or None) with no permission check, no stats, no LRU
        #: touch. The JIT's inline caches revalidate by comparing this
        #: against the PTE they cached at fill time -- equality implies
        #: the reference :meth:`lookup` would hit with the identical
        #: outcome for the same (access, user), because the permission
        #: result is a pure function of the PTE value. Any invalidation
        #: source (invlpg, flush/root switch, eviction, PTE change)
        #: either removes the entry or changes its value, so the compare
        #: fails and the fast path falls back to the reference walk.
        self.entry_get = self._entries.get

    def lookup(self, vpn: int, access: AccessType, user: bool) -> Optional[int]:
        """Return the cached PTE if present and permitting; else None (miss).

        A cached entry lacking the dirty bit misses on writes, forcing a
        walk that sets D -- this is how hardware guarantees the dirty bit
        is set before the first store becomes visible, and it is what the
        migration dirty-tracking code relies on.
        """
        pte = self._entries.get(vpn)
        if pte is None:
            self.stats.misses += 1
            return None
        if user and not pte & PTE_USER:
            self.stats.misses += 1
            return None
        if access is AccessType.WRITE and (
            not pte & PTE_WRITABLE or not pte & PTE_DIRTY
        ):
            self.stats.misses += 1
            return None
        if access is AccessType.EXEC and pte & PTE_NOEXEC:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(vpn)
        self.stats.hits += 1
        return pte

    def peek(self, vpn: int, access: AccessType, user: bool) -> Optional[int]:
        """Like :meth:`lookup` but with **no side effects**.

        Does not count a hit or miss and does not refresh LRU order, so
        callers (the block-compiler's fetch memo) can probe the TLB
        without perturbing the simulated replacement behaviour.
        """
        pte = self._entries.get(vpn)
        if pte is None:
            return None
        if user and not pte & PTE_USER:
            return None
        if access is AccessType.WRITE and (
            not pte & PTE_WRITABLE or not pte & PTE_DIRTY
        ):
            return None
        if access is AccessType.EXEC and pte & PTE_NOEXEC:
            return None
        return pte

    def insert(self, vpn: int, pte: int) -> None:
        """Cache a translation, evicting LRU if full."""
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
            if self._entries[vpn] != pte:
                self.epoch += 1
            self._entries[vpn] = pte
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self.epoch += 1
        self._entries[vpn] = pte

    def invalidate(self, vpn: int) -> None:
        """Drop one translation (INVLPG)."""
        if self._entries.pop(vpn, None) is not None:
            self.stats.invalidations += 1
            self.epoch += 1

    def flush(self) -> None:
        """Drop everything (page-table base switch)."""
        self.stats.flushes += 1
        self._entries.clear()
        self.epoch += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries
