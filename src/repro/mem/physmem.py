"""Byte-addressable physical memory and the frame allocator."""

import struct
from typing import Callable, List, Optional, Set, Tuple

from repro.util.errors import MemoryError_
from repro.util.units import PAGE_SHIFT, PAGE_SIZE

_U32 = struct.Struct("<I")


class PhysicalMemory:
    """A flat physical address space backed by one ``bytearray``.

    All accessors bounds-check and raise :class:`MemoryError_` on
    out-of-range addresses -- a guest must never be able to corrupt the
    simulator by wandering off the end of RAM.
    """

    def __init__(self, nbytes: int):
        if nbytes <= 0 or nbytes % PAGE_SIZE != 0:
            raise MemoryError_(
                f"physical memory size must be a positive multiple of "
                f"{PAGE_SIZE}, got {nbytes}"
            )
        self.size = nbytes
        self.num_frames = nbytes >> PAGE_SHIFT
        self._data = bytearray(nbytes)
        #: Write watchers: (watched pfn set, callback(pfn)). The caller
        #: owns and mutates the set; the callback fires after any store
        #: that touches a watched frame. CPU cores use this to invalidate
        #: decode-cache entries and compiled blocks on code-page writes.
        self._watchers: List[Tuple[Set[int], Callable[[int], None]]] = []

    def watch_writes(
        self, frames: Set[int], callback: Callable[[int], None]
    ) -> None:
        """Register a write watcher over ``frames`` (a live, caller-owned set)."""
        self._watchers.append((frames, callback))

    def _notify(self, pa: int, length: int) -> None:
        first = pa >> PAGE_SHIFT
        last = (pa + length - 1) >> PAGE_SHIFT
        for frames, callback in self._watchers:
            if first in frames:
                callback(first)
            if last != first:
                for pfn in range(first + 1, last + 1):
                    if pfn in frames:
                        callback(pfn)

    # -- scalar access ----------------------------------------------------

    def read_u8(self, pa: int) -> int:
        self._check(pa, 1)
        return self._data[pa]

    def write_u8(self, pa: int, value: int) -> None:
        self._check(pa, 1)
        self._data[pa] = value & 0xFF
        if self._watchers:
            self._notify(pa, 1)

    def read_u32(self, pa: int) -> int:
        self._check(pa, 4)
        return _U32.unpack_from(self._data, pa)[0]

    def write_u32(self, pa: int, value: int) -> None:
        self._check(pa, 4)
        _U32.pack_into(self._data, pa, value & 0xFFFFFFFF)
        if self._watchers:
            self._notify(pa, 4)

    # -- bulk access --------------------------------------------------------

    def read_bytes(self, pa: int, length: int) -> bytes:
        self._check(pa, length)
        return bytes(self._data[pa : pa + length])

    def write_bytes(self, pa: int, data: bytes) -> None:
        self._check(pa, len(data))
        self._data[pa : pa + len(data)] = data
        if self._watchers and data:
            self._notify(pa, len(data))

    def read_frame(self, pfn: int) -> bytes:
        return self.read_bytes(pfn << PAGE_SHIFT, PAGE_SIZE)

    def write_frame(self, pfn: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise MemoryError_(f"frame write needs {PAGE_SIZE} bytes, got {len(data)}")
        self.write_bytes(pfn << PAGE_SHIFT, data)

    def zero_frame(self, pfn: int) -> None:
        base = pfn << PAGE_SHIFT
        self._check(base, PAGE_SIZE)
        self._data[base : base + PAGE_SIZE] = b"\x00" * PAGE_SIZE
        if self._watchers:
            self._notify(base, PAGE_SIZE)

    def frame_fingerprint(self, pfn: int) -> int:
        """Cheap content hash of one frame (used by the sharing scanner)."""
        base = pfn << PAGE_SHIFT
        self._check(base, PAGE_SIZE)
        return hash(bytes(self._data[base : base + PAGE_SIZE]))

    def _check(self, pa: int, length: int) -> None:
        if pa < 0 or pa + length > self.size:
            raise MemoryError_(
                f"physical access [{pa:#x}, {pa + length:#x}) outside "
                f"RAM of {self.size:#x} bytes"
            )


class FrameAllocator:
    """Free-list allocator over a :class:`PhysicalMemory`.

    Frames below ``reserved_frames`` are never handed out (firmware /
    VMM-owned low memory). Supports single-frame alloc/free and
    contiguous runs (for kernel images loaded at fixed physical bases).
    """

    def __init__(self, physmem: PhysicalMemory, reserved_frames: int = 0):
        if reserved_frames < 0 or reserved_frames > physmem.num_frames:
            raise MemoryError_(
                f"reserved_frames {reserved_frames} out of range "
                f"(0..{physmem.num_frames})"
            )
        self.physmem = physmem
        self.reserved_frames = reserved_frames
        self._free: List[int] = list(range(physmem.num_frames - 1, reserved_frames - 1, -1))
        self._allocated = set()

    @property
    def free_frames(self) -> int:
        return len(self._free)

    @property
    def allocated_frames(self) -> int:
        return len(self._allocated)

    def alloc(self, zero: bool = True) -> int:
        """Allocate one frame; returns its PFN."""
        if not self._free:
            raise MemoryError_("out of physical frames")
        pfn = self._free.pop()
        self._allocated.add(pfn)
        if zero:
            self.physmem.zero_frame(pfn)
        return pfn

    def alloc_contiguous(self, count: int, zero: bool = True) -> int:
        """Allocate ``count`` physically contiguous frames; returns first PFN.

        Linear scan over the free set -- fine at simulator scale, and only
        used at boot time for kernel images.
        """
        if count <= 0:
            raise MemoryError_("contiguous allocation needs count >= 1")
        free = set(self._free)
        candidates = sorted(free)
        run_start: Optional[int] = None
        run_len = 0
        for pfn in candidates:
            if run_start is not None and pfn == run_start + run_len:
                run_len += 1
            else:
                run_start, run_len = pfn, 1
            if run_len == count:
                first = run_start
                for p in range(first, first + count):
                    self._free.remove(p)
                    self._allocated.add(p)
                    if zero:
                        self.physmem.zero_frame(p)
                return first
        raise MemoryError_(f"no contiguous run of {count} frames available")

    def free(self, pfn: int) -> None:
        if pfn not in self._allocated:
            raise MemoryError_(f"double free or foreign frame {pfn}")
        self._allocated.remove(pfn)
        self._free.append(pfn)

    def is_allocated(self, pfn: int) -> bool:
        return pfn in self._allocated
